// Quickstart: the smallest end-to-end Tiamat program.
//
// Two instances come up on a simulated network; one outs a greeting into
// its local space, the other reads it through the *logical* tuple space
// (local + every visible instance) without knowing who produced it.

#include <cstdio>

#include "core/instance.h"
#include "sim/network.h"
#include "transport/sim_transport.h"

using namespace tiamat;  // NOLINT

int main() {
  // 1. A simulated world: event queue + RNG + radio network.
  sim::EventQueue queue;
  sim::Rng rng(/*seed=*/42);
  sim::Network net(queue, rng);
  transport::SimTransport tx(net);

  // 2. Two Tiamat instances join the environment. Each owns a local tuple
  //    space, a lease manager and a communications manager (Figure 2).
  core::Config alice_cfg;
  alice_cfg.name = "alice";
  core::Config bob_cfg;
  bob_cfg.name = "bob";
  core::Instance alice(tx, alice_cfg);
  core::Instance bob(tx, bob_cfg);

  // 3. Alice outs a tuple. By default out acts on her *local* space only.
  //    Every operation is leased (§2.5): this greeting is stored for ten
  //    minutes, after which alice's instance may reclaim it. (Without an
  //    explicit requester the instance's default lease applies — 10 s.)
  alice.out(tuples::Tuple{"greeting", "hello from alice"},
            lease::FlexibleRequester{lease::for_duration(sim::seconds(600))});
  std::printf("alice: out (\"greeting\", ...) -> her local space has %zu tuples\n",
              alice.local_space().size());

  // 4. Bob reads through the logical space: his local space plus every
  //    visible instance's. He neither knows nor cares that alice made it
  //    (identity decoupling).
  bob.rd(tuples::Pattern{"greeting", tuples::any_string()},
         [&](std::optional<core::ReadResult> r) {
           if (r) {
             std::printf("bob:   rd  matched %s (from node %u)\n",
                         r->tuple.to_string().c_str(), r->source);
           } else {
             std::printf("bob:   rd  returned nothing (lease expired)\n");
           }
         });

  // 5. Drive the simulation for a second of virtual time. (run_until_idle
  //    would also fast-forward through every pending lease expiry.)
  queue.run_for(sim::seconds(1));

  // 6. A destructive take: the tuple is removed from alice's space even
  //    though bob issued the operation.
  bob.in(tuples::Pattern{"greeting", tuples::any_string()},
         [&](std::optional<core::ReadResult> r) {
           std::printf("bob:   in  %s\n",
                       r ? "took the greeting" : "found nothing");
         });
  queue.run_for(sim::seconds(1));
  std::printf("alice: local space now has %zu tuple(s) (handle tuple only)\n",
              alice.local_space().size());
  return 0;
}
