// E2 — executable reproduction of Figure 2 ("A Tiamat Instance"): the
// lease manager is the first point of contact for every operation; a
// refused lease aborts the operation before the local tuple space or the
// communications manager do any work; a granted lease flows through the
// space and, for propagated operations, the communications manager.

#include <cstdio>
#include <cstdlib>

#include "core/instance.h"
#include "sim/network.h"
#include "transport/sim_transport.h"

using namespace tiamat;  // NOLINT

namespace {
int failures = 0;
void check(bool cond, const char* what) {
  std::printf("  %-62s %s\n", what, cond ? "ok" : "FAILED");
  if (!cond) ++failures;
}
}  // namespace

int main() {
  sim::EventQueue queue;
  sim::Rng rng(9);
  sim::Network net(queue, rng);
  transport::SimTransport tx(net);

  std::printf("Figure 2: lease manager -> local tuple space -> comms manager\n\n");

  // --- Path 1: lease refused => no further work -------------------------
  {
    core::Config cfg;
    cfg.name = "starved";
    core::Instance starved(tx, cfg,
                           std::make_unique<lease::DenyAllPolicy>());
    core::Instance peer(tx, core::Config{});
    peer.out(tuples::Tuple{"bait"});
    queue.run_for(sim::milliseconds(10));

    const auto space_reads_before = starved.local_space().stats().reads;
    const auto msgs_before = starved.endpoint().stats().sent;
    bool cb_fired = false;
    bool granted = starved.rd(tuples::Pattern{"bait"},
                              [&](auto) { cb_fired = true; });
    queue.run_for(sim::seconds(1));

    std::printf("(1) operation arrives, lease manager refuses:\n");
    check(!granted, "rd reports the lease refusal synchronously");
    check(!cb_fired, "no callback is ever invoked");
    check(starved.local_space().stats().reads == space_reads_before,
          "the local tuple space was never consulted");
    check(starved.endpoint().stats().sent == msgs_before,
          "the communications manager sent nothing");
    check(starved.leases().stats().refused_by_policy >= 1,
          "the refusal is accounted by the lease manager");
  }

  // --- Path 2: lease granted => space, then comms manager ---------------
  {
    core::Config cfg;
    cfg.name = "healthy";
    core::Instance healthy(tx, cfg);
    core::Instance remote(tx, core::Config{});
    remote.out(tuples::Tuple{"elsewhere"});
    queue.run_for(sim::milliseconds(10));

    bool got = false;
    bool granted =
        healthy.rdp(tuples::Pattern{"elsewhere"},
                    [&](std::optional<core::ReadResult> r) {
                      got = r.has_value();
                    });
    queue.run_for(sim::seconds(2));

    std::printf("(2) operation arrives, lease manager grants:\n");
    check(granted, "the lease negotiation succeeds");
    check(healthy.local_space().stats().reads >= 1,
          "the local tuple space is tried first");
    check(healthy.endpoint().stats().sent >= 1,
          "the comms manager propagated the miss to visible instances");
    check(got, "the operation was satisfied remotely");
    check(healthy.leases().stats().granted >= 1, "the grant is accounted");
  }

  // --- Path 3: the lease requester can refuse the offer ------------------
  {
    core::Config cfg;
    cfg.name = "negotiating";
    cfg.lease_caps.max_ttl = sim::seconds(1);  // instance offers at most 1 s
    core::Instance inst(tx, cfg);

    // The application insists on >= 90% of a 100 s lease: negotiation fails.
    lease::StrictRequester demanding(lease::for_duration(sim::seconds(100)),
                                     0.9);
    bool granted = inst.rd(tuples::Pattern{"x"}, [](auto) {}, demanding);
    std::printf("(3) the lease requester refuses the instance's offer:\n");
    check(!granted, "operation fails when the requester rejects the offer");
    check(inst.leases().stats().refused_by_requester == 1,
          "accounted as refused-by-requester");
  }

  // --- Resource factories (§3.1.1) ---------------------------------------
  {
    core::Config cfg;
    core::Instance inst(tx, cfg);
    auto& threads = inst.leases().pool("threads", 2);
    auto t1 = threads.try_acquire();
    auto t2 = threads.try_acquire();
    auto t3 = threads.try_acquire();
    std::printf("(4) managed resources come from lease-manager factories:\n");
    check(static_cast<bool>(t1) && static_cast<bool>(t2),
          "tokens granted while the pool has capacity");
    check(!t3, "an exhausted pool refuses further allocation");
  }

  if (failures != 0) {
    std::printf("\nFIGURE 2 REPRODUCTION FAILED (%d checks)\n", failures);
    return EXIT_FAILURE;
  }
  std::printf("\nFigure 2 behaviour reproduced: all checks passed.\n");
  return EXIT_SUCCESS;
}
