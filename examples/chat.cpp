// A pervasive-environment chat: mobile users exchange messages through the
// logical tuple space while wandering an arena. Messages are leased —
// undelivered chatter does not pile up on anyone's device — and delivery is
// fully decoupled: a message outlives its sender's visibility (and can
// outlive the sender) as long as its lease lasts.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/instance.h"
#include "sim/network.h"
#include "transport/sim_transport.h"
#include "sim/mobility.h"

using namespace tiamat;  // NOLINT

namespace {

class ChatUser {
 public:
  ChatUser(core::Instance& inst, std::string name, sim::EventQueue& queue)
      : inst_(inst), name_(std::move(name)), queue_(queue) {}

  void say(const std::string& to, const std::string& text) {
    // Messages live for 20 s; after that the space reclaims them.
    lease::LeaseTerms terms;
    terms.ttl = sim::seconds(20);
    inst_.out(tuples::Tuple{"chat", to, name_, text},
              lease::FlexibleRequester{terms});
    std::printf("[%5.2fs] %-5s -> %-5s : %s\n",
                sim::to_seconds(queue_.now()), name_.c_str(), to.c_str(),
                text.c_str());
  }

  void listen() {
    lease::LeaseTerms terms;
    terms.ttl = sim::seconds(15);
    inst_.in(
        tuples::Pattern{"chat", name_, tuples::any_string(),
                        tuples::any_string()},
        [this](std::optional<core::ReadResult> r) {
          if (r) {
            ++received_;
            std::printf("[%5.2fs] %-5s received from %-5s: %s\n",
                        sim::to_seconds(queue_.now()), name_.c_str(),
                        r->tuple[2].as_string().c_str(),
                        r->tuple[3].as_string().c_str());
          }
          listen();  // keep listening (lease renewed each round)
        },
        lease::FlexibleRequester{terms});
  }

  int received() const { return received_; }

 private:
  core::Instance& inst_;
  std::string name_;
  sim::EventQueue& queue_;
  int received_ = 0;
};

core::Config cfg(const char* name) {
  core::Config c;
  c.name = name;
  c.lease_caps.default_ttl = sim::seconds(15);
  c.lease_caps.max_ttl = sim::seconds(30);
  return c;
}

}  // namespace

int main() {
  sim::EventQueue queue;
  sim::Rng rng(77);
  sim::Network net(queue, rng);
  transport::SimTransport tx(net);
  net.set_radio_range(60.0);  // short-range radios in a 150x150 arena

  core::Instance ada_node(tx, cfg("ada"), nullptr, {10, 10});
  core::Instance bob_node(tx, cfg("bob"), nullptr, {140, 140});
  core::Instance cyn_node(tx, cfg("cyn"), nullptr, {75, 75});

  ChatUser ada(ada_node, "ada", queue);
  ChatUser bob(bob_node, "bob", queue);
  ChatUser cyn(cyn_node, "cyn", queue);
  ada.listen();
  bob.listen();
  cyn.listen();

  sim::RandomWaypointParams mp;
  mp.arena_w = 150;
  mp.arena_h = 150;
  mp.min_speed = 10;
  mp.max_speed = 25;
  sim::RandomWaypoint mob(net, rng, mp);
  mob.add(ada_node.node());
  mob.add(bob_node.node());
  mob.add(cyn_node.node());
  mob.start();

  // ada and bob start out of range of each other; cyn is between them.
  std::printf("ada@(10,10) bob@(140,140) cyn@(75,75), range 60\n\n");
  queue.schedule_after(sim::milliseconds(100),
                       [&] { ada.say("bob", "are you there?"); });
  queue.schedule_after(sim::seconds(2),
                       [&] { cyn.say("ada", "i can see you, ada"); });
  queue.schedule_after(sim::seconds(6),
                       [&] { bob.say("ada", "made it across the square"); });
  queue.schedule_after(sim::seconds(10),
                       [&] { ada.say("cyn", "thanks for relaying!"); });

  queue.run_for(sim::seconds(40));
  mob.stop();

  std::printf("\ndelivered: ada=%d bob=%d cyn=%d\n", ada.received(),
              bob.received(), cyn.received());
  std::printf("(undelivered messages were reclaimed when their leases "
              "expired — nobody's device holds stale chatter)\n");
  return 0;
}
