// The §3.2 web client / proxy scenario as a narrative demo:
//
//   1. a client fetches pages through the space (anonymous proxy);
//   2. a second proxy is added invisibly and shares the load;
//   3. the first proxy dies — the client never notices;
//   4. the client goes out of coverage, keeps issuing requests, and gets
//      the responses after walking back in ("between networks").

#include <cstdio>
#include <memory>

#include "apps/web.h"
#include "core/instance.h"
#include "sim/network.h"
#include "transport/sim_transport.h"

using namespace tiamat;  // NOLINT

namespace {
core::Config cfg(const char* name) {
  core::Config c;
  c.name = name;
  c.lease_caps.default_ttl = sim::seconds(30);
  c.lease_caps.max_ttl = sim::seconds(60);
  return c;
}
}  // namespace

int main() {
  sim::EventQueue queue;
  sim::Rng rng(2026);
  sim::Network net(queue, rng);
  transport::SimTransport tx(net);

  apps::web::OriginServer origin(queue, sim::milliseconds(25));
  origin.add_page("http://news/", "today's headlines");
  origin.add_page("http://mail/", "2 unread messages");
  origin.add_page("http://map/", "you are here");

  core::Instance client_node(tx, cfg("pda"));
  apps::web::WebClient client(client_node);

  auto p1_node = std::make_unique<core::Instance>(tx, cfg("proxy-1"));
  auto p1 = std::make_unique<apps::web::ProxyServer>(*p1_node, origin);
  p1->start();

  auto fetch = [&](const char* url) {
    client.get(url, [url, &queue](std::optional<std::string> body) {
      std::printf("[%6.2fs] client got %-14s -> %s\n",
                  sim::to_seconds(queue.now()), url,
                  body ? body->c_str() : "(nothing)");
    });
  };

  std::printf("-- one proxy serving --\n");
  fetch("http://news/");
  fetch("http://mail/");
  queue.run_for(sim::seconds(2));

  std::printf("-- second proxy added: invisible to the client --\n");
  core::Instance p2_node(tx, cfg("proxy-2"));
  apps::web::ProxyServer p2(p2_node, origin);
  p2.start();
  fetch("http://map/");
  fetch("http://news/");
  queue.run_for(sim::seconds(2));

  std::printf("-- proxy-1 fails; proxy-2 carries on; client unperturbed --\n");
  p1->stop();
  p1.reset();
  p1_node.reset();
  fetch("http://mail/");
  queue.run_for(sim::seconds(2));

  std::printf("-- client walks out of coverage and keeps requesting --\n");
  net.set_link(client_node.node(), p2_node.node(), false);
  fetch("http://news/");
  queue.run_for(sim::seconds(3));
  std::printf("[%6.2fs] (no response yet: request tuple waits in the "
              "client's local space)\n",
              sim::to_seconds(queue.now()));

  std::printf("-- client walks back into coverage --\n");
  net.clear_link_override(client_node.node(), p2_node.node());
  queue.run_for(sim::seconds(5));

  std::printf("\nproxy-2 served %llu requests; client completed %llu/%llu\n",
              static_cast<unsigned long long>(p2.stats().served),
              static_cast<unsigned long long>(client.stats().completed),
              static_cast<unsigned long long>(client.stats().issued));
  return client.stats().completed == client.stats().issued ? 0 : 1;
}
