// The §3.2 fractal generator: a master slices a Mandelbrot render into row
// tasks in the tuple space; anonymous workers take tasks and return rows.
// One worker joins late and one leaves mid-run — the master never notices.
// The finished set is printed as ASCII art.

#include <cstdio>
#include <memory>
#include <vector>

#include "apps/fractal.h"
#include "core/instance.h"
#include "sim/network.h"
#include "transport/sim_transport.h"

using namespace tiamat;  // NOLINT

namespace {
core::Config cfg(const std::string& name) {
  core::Config c;
  c.name = name;
  c.lease_caps.default_ttl = sim::seconds(60);
  c.lease_caps.max_ttl = sim::seconds(240);
  return c;
}
}  // namespace

int main() {
  sim::EventQueue queue;
  sim::Rng rng(1234);
  sim::Network net(queue, rng);
  transport::SimTransport tx(net);

  apps::fractal::Params params;
  params.width = 78;
  params.height = 24;
  params.max_iter = 96;
  params.x0 = -2.2;
  params.x1 = 0.8;
  params.y0 = -1.2;
  params.y1 = 1.2;

  core::Instance master_node(tx, cfg("master"));
  apps::fractal::Master master(master_node, params, /*job=*/1);
  master.reissue_interval = sim::seconds(3);

  std::vector<std::unique_ptr<core::Instance>> worker_nodes;
  std::vector<std::unique_ptr<apps::fractal::Worker>> workers;
  auto add_worker = [&](sim::Duration row_cost) {
    worker_nodes.push_back(std::make_unique<core::Instance>(
        tx, cfg("worker-" + std::to_string(workers.size()))));
    workers.push_back(std::make_unique<apps::fractal::Worker>(
        *worker_nodes.back(), row_cost));
    workers.back()->start();
  };

  // Heterogeneous devices: a fast workstation and a slow PDA.
  add_worker(sim::milliseconds(30));
  add_worker(sim::milliseconds(120));

  bool done = false;
  master.start([&] { done = true; });

  // Mid-run churn: the slow worker leaves, a fast one joins.
  queue.schedule_after(sim::milliseconds(400), [&] {
    std::printf("[%5.2fs] slow worker departs (rows so far: %zu)\n",
                sim::to_seconds(queue.now()), master.rows_done());
    workers[1]->stop();
    worker_nodes[1].reset();
  });
  queue.schedule_after(sim::milliseconds(700), [&] {
    std::printf("[%5.2fs] fresh worker joins (rows so far: %zu)\n",
                sim::to_seconds(queue.now()), master.rows_done());
    add_worker(sim::milliseconds(30));
  });

  queue.run_for(sim::seconds(120));
  if (!done) {
    std::printf("render did not complete!\n");
    return 1;
  }

  std::printf("[%5.2fs] render complete (%d x %d, reissues: %llu)\n\n",
              sim::to_seconds(queue.now()), params.width, params.height,
              static_cast<unsigned long long>(master.reissues()));

  static const char shades[] = " .:-=+*#%@";
  for (const auto& row : master.image()) {
    std::string line;
    for (std::uint16_t v : row) {
      const int idx =
          v >= params.max_iter
              ? 9
              : static_cast<int>(static_cast<double>(v) /
                                 params.max_iter * 8.0);
      line.push_back(shades[idx]);
    }
    std::printf("%s\n", line.c_str());
  }
  std::printf("\nrows computed per worker:");
  for (std::size_t i = 0; i < workers.size(); ++i) {
    std::printf(" w%zu=%llu", i,
                static_cast<unsigned long long>(
                    workers[i]->stats().rows_computed));
  }
  std::printf("\n");
  return 0;
}
