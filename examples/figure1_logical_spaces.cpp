// E1 — executable reproduction of Figure 1 ("Logical Tuple Space
// Operation"). The figure's three panels:
//
//   (a) two isolated instances: each logical space is its local space only;
//   (b) A and B become mutually visible: each sees the union of both;
//   (c) a third instance C becomes visible to B but not A: B's logical
//       space spans all three local spaces, while A's and C's each span
//       only their own plus B's — instances see *different* logical spaces
//       (Tiamat defines no global consistency).
//
// Every claim is asserted; the program prints the observed logical-space
// contents panel by panel and exits non-zero on any mismatch.

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "core/instance.h"
#include "sim/network.h"
#include "transport/sim_transport.h"

using namespace tiamat;  // NOLINT
using core::Instance;
using core::ReadResult;
using tuples::Pattern;
using tuples::Tuple;

namespace {

int failures = 0;

void check(bool cond, const char* what) {
  std::printf("  %-58s %s\n", what, cond ? "ok" : "FAILED");
  if (!cond) ++failures;
}

/// Can `reader` see a tuple tagged `tag` through its logical space?
bool sees(sim::EventQueue& queue, Instance& reader, const char* tag) {
  bool found = false;
  bool fired = false;
  reader.rdp(Pattern{tag}, [&](std::optional<ReadResult> r) {
    fired = true;
    found = r.has_value();
  });
  while (!fired && queue.step()) {
  }
  return found;
}

}  // namespace

int main() {
  sim::EventQueue queue;
  sim::Rng rng(7);
  sim::Network net(queue, rng);
  transport::SimTransport tx(net);
  net.set_radio_range(10.0);  // visibility derives from position

  core::Config ca, cb, cc;
  ca.name = "A";
  cb.name = "B";
  cc.name = "C";

  // Positions: A at 0, B far away at 100, C farther at 200 — all isolated.
  Instance a(tx, ca, nullptr, {0, 0});
  Instance b(tx, cb, nullptr, {100, 0});
  Instance c(tx, cc, nullptr, {200, 0});

  a.out(Tuple{"at-a"});
  b.out(Tuple{"at-b"});
  c.out(Tuple{"at-c"});

  std::printf("(a) isolated instances: logical space == local space\n");
  check(sees(queue, a, "at-a"), "A sees its own tuple");
  check(!sees(queue, a, "at-b"), "A does not see B's tuple");
  check(!sees(queue, b, "at-a"), "B does not see A's tuple");

  std::printf("(b) A and B become visible: logical space is the union\n");
  net.set_position(b.node(), {8, 0});  // B walks next to A
  check(sees(queue, a, "at-b"), "A now sees B's tuple");
  check(sees(queue, b, "at-a"), "B now sees A's tuple");
  check(!sees(queue, a, "at-c"), "A still does not see C's tuple");

  std::printf(
      "(c) C becomes visible to B only: instances see DIFFERENT logical "
      "spaces\n");
  net.set_position(c.node(), {16, 0});  // within 10 of B (at 8) but 16 from A
  assert(net.visible(b.node(), c.node()));
  assert(!net.visible(a.node(), c.node()));
  check(sees(queue, b, "at-a"), "B's logical space includes A's space");
  check(sees(queue, b, "at-c"), "B's logical space includes C's space");
  check(sees(queue, a, "at-b"), "A's logical space includes B's space");
  check(!sees(queue, a, "at-c"), "A's logical space excludes C's space");
  check(sees(queue, c, "at-b"), "C's logical space includes B's space");
  check(!sees(queue, c, "at-a"), "C's logical space excludes A's space");

  if (failures != 0) {
    std::printf("FIGURE 1 REPRODUCTION FAILED (%d checks)\n", failures);
    return EXIT_FAILURE;
  }
  std::printf("Figure 1 behaviour reproduced: all checks passed.\n");
  return EXIT_SUCCESS;
}
