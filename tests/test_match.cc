// Differential tests for the unified matching engine (src/tuple): the
// bucketed TupleIndex and the keyed WaiterIndex are checked against naive
// linear-scan oracles over randomized workloads covering every Field::Kind
// and arities 0–6, plus regression tests pinning the behavioural contract
// the spaces rely on: ascending-id match order, FIFO waiter priority, and
// seed-determined nondeterministic selection.

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "sim/random.h"
#include "space/local_space.h"
#include "tuple/index.h"
#include "tuple/matcher.h"
#include "tuple/pattern.h"
#include "tuple/tuple.h"
#include "tuple/waiter_index.h"

namespace {

using namespace tiamat;  // NOLINT
using tuples::Blob;
using tuples::CompiledPattern;
using tuples::Field;
using tuples::Pattern;
using tuples::Tuple;
using tuples::TupleId;
using tuples::TupleIndex;
using tuples::Type;
using tuples::Value;
using tuples::WaiterIndex;

// Values are drawn from a small pool so random patterns actually collide
// with stored tuples instead of matching nothing.
Value random_value(sim::Rng& rng) {
  switch (rng.index(5)) {
    case 0:
      return Value(rng.uniform(0, 5));
    case 1:
      return Value(0.5 + static_cast<double>(rng.uniform(0, 3)));
    case 2:
      return Value(rng.chance(0.5));
    case 3:
      return Value("k" + std::to_string(rng.uniform(0, 5)));
    default:
      return Value(Blob(static_cast<std::size_t>(rng.uniform(0, 2)),
                        std::uint8_t{0xab}));
  }
}

Tuple random_tuple(sim::Rng& rng) {
  std::vector<Value> fields;
  const std::size_t arity = rng.index(7);  // 0–6
  fields.reserve(arity);
  for (std::size_t i = 0; i < arity; ++i) fields.push_back(random_value(rng));
  return Tuple(std::move(fields));
}

// One random field, exercising every Field::Kind. When `hint` is set, the
// actual/prefix variants sometimes copy it so the pattern can really match.
Field random_field(sim::Rng& rng, const Value* hint) {
  switch (rng.index(5)) {
    case 0:  // actual
      if (hint != nullptr && rng.chance(0.6)) return Field(*hint);
      return Field(random_value(rng));
    case 1: {  // formal
      static const Type kTypes[] = {Type::kInt, Type::kDouble, Type::kBool,
                                    Type::kString, Type::kBlob};
      if (hint != nullptr && rng.chance(0.6)) {
        return Field::formal(hint->type());
      }
      return Field::formal(kTypes[rng.index(5)]);
    }
    case 2:
      return Field::wildcard();
    case 3: {  // range
      const double lo = static_cast<double>(rng.uniform(-2, 3));
      return Field::range(lo, lo + static_cast<double>(rng.uniform(0, 3)));
    }
    default: {  // prefix
      if (hint != nullptr && hint->is_string() && rng.chance(0.6)) {
        const std::string& s = hint->as_string();
        return Field::prefix(s.substr(0, rng.index(s.size() + 1)));
      }
      return Field::prefix("k");
    }
  }
}

// A pattern of the given arity, optionally aimed at `target` so a healthy
// fraction of random patterns match at least one stored tuple.
Pattern random_pattern(sim::Rng& rng, std::size_t arity,
                       const Tuple* target) {
  std::vector<Field> fields;
  fields.reserve(arity);
  for (std::size_t i = 0; i < arity; ++i) {
    const Value* hint =
        (target != nullptr && i < target->arity()) ? &(*target)[i] : nullptr;
    fields.push_back(random_field(rng, hint));
  }
  return Pattern(std::move(fields));
}

std::vector<TupleId> oracle_matches(const std::map<TupleId, Tuple>& store,
                                    const Pattern& p) {
  std::vector<TupleId> out;
  for (const auto& [id, t] : store) {
    if (p.matches(t)) out.push_back(id);
  }
  return out;
}

// ---- TupleIndex vs the oracle ---------------------------------------------

TEST(MatchEngine, DifferentialAgainstLinearScan) {
  sim::Rng rng(20260806);
  TupleIndex idx;
  std::map<TupleId, Tuple> shadow;  // ascending-id linear-scan oracle
  TupleId next_id = 1;

  for (int step = 0; step < 3000; ++step) {
    // Mutate: mostly inserts, some erases, so sizes drift up and down.
    const auto roll = rng.index(10);
    if (roll < 6 || shadow.empty()) {
      TupleId id = next_id++;
      Tuple t = random_tuple(rng);
      idx.insert(id, t);
      shadow.emplace(id, std::move(t));
    } else if (roll < 8) {
      auto it = shadow.begin();
      std::advance(it, static_cast<long>(rng.index(shadow.size())));
      auto erased = idx.erase(it->first);
      ASSERT_TRUE(erased.has_value());
      EXPECT_EQ(*erased, it->second);
      shadow.erase(it);
    }

    // Probe with a random pattern, sometimes aimed at a stored tuple.
    const Tuple* target = nullptr;
    if (!shadow.empty() && rng.chance(0.7)) {
      auto it = shadow.begin();
      std::advance(it, static_cast<long>(rng.index(shadow.size())));
      target = &it->second;
    }
    const std::size_t arity =
        target != nullptr && rng.chance(0.8) ? target->arity() : rng.index(7);
    Pattern p = random_pattern(rng, arity, target);
    const std::vector<TupleId> expect = oracle_matches(shadow, p);

    EXPECT_EQ(idx.find_matches(p), expect) << "pattern " << p.to_string();
    EXPECT_EQ(idx.count_matches(p), expect.size());
    auto first = idx.find_first(p);
    if (expect.empty()) {
      EXPECT_FALSE(first.has_value());
    } else {
      ASSERT_TRUE(first.has_value());
      EXPECT_EQ(*first, expect.front());
    }

    // The compiled pattern must agree with the interpreted one everywhere,
    // matched via the engine and via direct evaluation.
    CompiledPattern cp(p);
    EXPECT_EQ(idx.find_matches(cp), expect);
    if (target != nullptr) {
      EXPECT_EQ(cp.matches(*target), p.matches(*target));
    }
  }
  // The workload must have exercised both lookup paths.
  EXPECT_GT(idx.match_stats().bucket_probes, 0u);
  EXPECT_GT(idx.match_stats().scan_fallbacks, 0u);
}

TEST(MatchEngine, FindMatchesHonoursLimit) {
  sim::Rng rng(7);
  TupleIndex idx;
  for (TupleId id = 1; id <= 50; ++id) {
    idx.insert(id, Tuple{"k", static_cast<std::int64_t>(id)});
  }
  Pattern p{"k", tuples::any_int()};
  auto ids = idx.find_matches(p, 3);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids, (std::vector<TupleId>{1, 2, 3}));
  EXPECT_EQ(idx.count_matches(p), 50u);
}

// ---- WaiterIndex vs the oracle --------------------------------------------

TEST(WaiterIndexTest, CandidatesCoverEveryMatchingWaiter) {
  sim::Rng rng(99);
  WaiterIndex<int> waiters;
  std::map<std::uint64_t, Pattern> shadow;
  std::uint64_t next_id = 1;

  for (int step = 0; step < 1500; ++step) {
    const auto roll = rng.index(10);
    if (roll < 6 || shadow.empty()) {
      Pattern p = random_pattern(rng, rng.index(7), nullptr);
      std::uint64_t id = next_id++;
      waiters.add(id, CompiledPattern(p), 0);
      shadow.emplace(id, std::move(p));
    } else if (roll < 8) {
      auto it = shadow.begin();
      std::advance(it, static_cast<long>(rng.index(shadow.size())));
      EXPECT_TRUE(waiters.extract(it->first).has_value());
      shadow.erase(it);
    }

    Tuple t = random_tuple(rng);
    const std::vector<std::uint64_t> cands = waiters.candidates(t);
    // Ascending id == FIFO registration order.
    EXPECT_TRUE(std::is_sorted(cands.begin(), cands.end()));
    // Soundness: every waiter whose pattern matches t is in the list.
    for (const auto& [id, p] : shadow) {
      if (p.matches(t)) {
        EXPECT_TRUE(std::find(cands.begin(), cands.end(), id) != cands.end())
            << "waiter " << id << " (" << p.to_string()
            << ") missing for tuple " << t.to_string();
      }
    }
    // No dangling ids.
    for (std::uint64_t id : cands) EXPECT_TRUE(waiters.contains(id));
  }
}

// ---- Behavioural regressions the spaces depend on -------------------------

TEST(MatchRegression, OldestDestructiveWaiterWinsAcrossBuckets) {
  // A keyed waiter (bucketed) registered before an unkeyed one (overflow)
  // must win the race for a matching tuple — and vice versa. This pins the
  // merged keyed+overflow FIFO order of WaiterIndex::candidates.
  for (bool keyed_first : {true, false}) {
    sim::EventQueue q;
    sim::Rng rng(1);
    space::LocalTupleSpace space(q, rng);
    std::vector<int> fired;
    auto cb = [&fired](int who) {
      return [&fired, who](std::optional<Tuple> t) {
        if (t) fired.push_back(who);
      };
    };
    Pattern keyed{"evt", tuples::any_int()};
    Pattern unkeyed{tuples::any_string(), tuples::any_int()};
    if (keyed_first) {
      space.in(keyed, sim::kNever, cb(1));
      space.in(unkeyed, sim::kNever, cb(2));
    } else {
      space.in(unkeyed, sim::kNever, cb(2));
      space.in(keyed, sim::kNever, cb(1));
    }
    space.out(Tuple{"evt", 7});
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired.front(), keyed_first ? 1 : 2);
  }
}

TEST(MatchRegression, ReadersAllFireBeforeTheTake) {
  sim::EventQueue q;
  sim::Rng rng(1);
  space::LocalTupleSpace space(q, rng);
  int reads = 0;
  bool taken = false;
  space.rd(Pattern{"evt", tuples::any_int()}, sim::kNever,
           [&](auto t) { reads += t.has_value(); });
  space.in(Pattern{tuples::any_string(), 7}, sim::kNever,
           [&](auto t) { taken = t.has_value(); });
  space.rd(Pattern{tuples::any_string(), tuples::any_int()}, sim::kNever,
           [&](auto t) { reads += t.has_value(); });
  space.out(Tuple{"evt", 7});
  EXPECT_EQ(reads, 2);
  EXPECT_TRUE(taken);
  EXPECT_EQ(space.size(), 0u);
}

TEST(MatchRegression, SelectionIsDeterministicUnderFixedSeed) {
  // Nondeterministic selection (§2.4) draws from the seeded Rng over the
  // ascending-id candidate list; two identically seeded spaces must pick
  // identical sequences even though storage is hash-bucketed.
  auto run = [](std::uint64_t seed) {
    sim::EventQueue q;
    sim::Rng rng(seed);
    space::LocalTupleSpace space(q, rng);
    for (std::int64_t i = 0; i < 32; ++i) space.out(Tuple{"k", i});
    std::vector<std::int64_t> picks;
    for (int i = 0; i < 64; ++i) {
      auto t = space.rdp(Pattern{"k", tuples::any_int()});
      picks.push_back((*t)[1].as_int());
    }
    return picks;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));  // and the seed actually matters
}

}  // namespace
