// Shared fixtures/helpers for the test suites.

#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "sim/event_queue.h"
#include "sim/network.h"
#include "sim/random.h"
#include "transport/sim_transport.h"

namespace tiamat::testing {

/// A simulated world: queue + rng + network, plus the Transport facade over
/// it that protocol objects attach to. Link jitter/loss are disabled by
/// default so tests are easy to reason about; individual tests opt in.
struct World {
  explicit World(std::uint64_t seed = 42, sim::LinkModel model = quiet_links())
      : rng(seed), net(queue, rng, model), tx(net) {}

  static sim::LinkModel quiet_links() {
    sim::LinkModel m;
    m.base_latency = 2 * sim::kMillisecond;
    m.per_kilobyte = 0;
    m.jitter = 0;
    m.loss = 0.0;
    return m;
  }

  void run_all() { queue.run_until_idle(); }
  void run_for(sim::Duration d) { queue.run_for(d); }

  sim::EventQueue queue;
  sim::Rng rng;
  sim::Network net;
  transport::SimTransport tx;
};

}  // namespace tiamat::testing
