// Unit tests for the messaging layer: envelope codec, endpoint dispatch,
// correlation, multicast discovery, and the §3.1.3 responder list.

#include <gtest/gtest.h>

#include <memory>

#include "net/discovery.h"
#include "net/endpoint.h"
#include "net/message.h"
#include "net/responder_cache.h"
#include "net/rpc.h"
#include "tests/test_util.h"

namespace tiamat::net {
namespace {

using tiamat::testing::World;
using tuples::Pattern;
using tuples::Tuple;

// ---------------- Message codec ----------------

TEST(MessageCodec, RoundTripFull) {
  Message m;
  m.type = kOpRequest;
  m.op_id = 0xDEADBEEFCAFEull;
  m.origin = 42;
  m.h(7).h("hello").h(true).h(2.5);
  m.tuple = Tuple{"data", 1};
  m.pattern = Pattern{"data", tuples::any_int()};
  auto back = decode_message(encode_message(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, m.type);
  EXPECT_EQ(back->op_id, m.op_id);
  EXPECT_EQ(back->origin, m.origin);
  ASSERT_EQ(back->headers.size(), 4u);
  EXPECT_EQ(back->hint(0), 7);
  EXPECT_EQ(back->hstr(1), "hello");
  EXPECT_TRUE(back->hbool(2));
  EXPECT_EQ(back->hdouble(3), 2.5);
  EXPECT_EQ(*back->tuple, *m.tuple);
  EXPECT_EQ(*back->pattern, *m.pattern);
}

TEST(MessageCodec, RoundTripMinimal) {
  Message m;
  m.type = kProbe;
  auto back = decode_message(encode_message(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, kProbe);
  EXPECT_TRUE(back->headers.empty());
  EXPECT_FALSE(back->tuple.has_value());
  EXPECT_FALSE(back->pattern.has_value());
}

TEST(MessageCodec, RejectsTruncation) {
  Message m;
  m.type = kOpResponse;
  m.tuple = Tuple{"x", 1, 2, 3};
  auto bytes = encode_message(m);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    tuples::Bytes prefix(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(decode_message(prefix).has_value());
  }
}

TEST(MessageCodec, RejectsTrailingGarbage) {
  Message m;
  m.type = kProbe;
  auto bytes = encode_message(m);
  bytes.push_back(0xFF);
  EXPECT_FALSE(decode_message(bytes).has_value());
}

// ---------------- Endpoint ----------------

TEST(EndpointTest, DispatchesByType) {
  World w;
  auto a = w.net.add_node();
  auto b = w.net.add_node();
  Endpoint ea(w.tx, a), eb(w.tx, b);
  int got1 = 0, got2 = 0, other = 0;
  eb.on(1, [&](sim::NodeId, const Message&) { ++got1; });
  eb.on(2, [&](sim::NodeId, const Message&) { ++got2; });
  eb.set_default_handler([&](sim::NodeId, const Message&) { ++other; });
  Message m;
  m.type = 1;
  ea.send(b, m);
  m.type = 2;
  ea.send(b, m);
  m.type = 99;
  ea.send(b, m);
  w.run_all();
  EXPECT_EQ(got1, 1);
  EXPECT_EQ(got2, 1);
  EXPECT_EQ(other, 1);
  EXPECT_EQ(eb.stats().received, 3u);
  EXPECT_EQ(ea.stats().sent, 3u);
}

TEST(EndpointTest, GarbagePayloadCountsDecodeFailure) {
  World w;
  auto a = w.net.add_node();
  auto b = w.net.add_node();
  Endpoint eb(w.tx, b);
  w.net.send(a, b, sim::Payload{0xFF, 0xFF, 0x01});
  w.run_all();
  EXPECT_EQ(eb.stats().decode_failures, 1u);
  EXPECT_EQ(eb.stats().received, 0u);
}

TEST(EndpointTest, UnhandledTypeCounted) {
  World w;
  auto a = w.net.add_node();
  auto b = w.net.add_node();
  Endpoint ea(w.tx, a), eb(w.tx, b);
  Message m;
  m.type = 77;
  ea.send(b, m);
  w.run_all();
  EXPECT_EQ(eb.stats().unhandled, 1u);
}

TEST(EndpointTest, MulticastToGroup) {
  World w;
  auto a = w.net.add_node();
  auto b = w.net.add_node();
  auto c = w.net.add_node();
  Endpoint ea(w.tx, a), eb(w.tx, b), ec(w.tx, c);
  eb.join_group(5);
  int b_got = 0, c_got = 0;
  eb.on(1, [&](sim::NodeId, const Message&) { ++b_got; });
  ec.on(1, [&](sim::NodeId, const Message&) { ++c_got; });
  Message m;
  m.type = 1;
  ea.multicast(5, m);
  w.run_all();
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(c_got, 0);  // not a member
}

// ---------------- Correlator ----------------

TEST(CorrelatorTest, RoutesByOpId) {
  World w;
  Correlator c(w.queue);
  auto id = c.next_op_id();
  int calls = 0;
  c.expect(id, [&](sim::NodeId, const Message&) {
    ++calls;
    return true;  // stay open
  });
  Message m;
  m.op_id = id;
  EXPECT_TRUE(c.route(1, m));
  EXPECT_TRUE(c.route(2, m));
  EXPECT_EQ(calls, 2);
  m.op_id = id + 100;
  EXPECT_FALSE(c.route(1, m));  // unknown exchange
}

TEST(CorrelatorTest, HandlerReturningFalseFinishes) {
  World w;
  Correlator c(w.queue);
  auto id = c.next_op_id();
  c.expect(id, [&](sim::NodeId, const Message&) { return false; });
  Message m;
  m.op_id = id;
  EXPECT_TRUE(c.route(1, m));
  EXPECT_FALSE(c.active(id));
  EXPECT_FALSE(c.route(1, m));
}

TEST(CorrelatorTest, DeadlineFires) {
  World w;
  Correlator c(w.queue);
  auto id = c.next_op_id();
  bool timed_out = false;
  c.expect(
      id, [](sim::NodeId, const Message&) { return true; },
      w.queue.now() + sim::seconds(1), [&] { timed_out = true; });
  w.run_all();
  EXPECT_TRUE(timed_out);
  EXPECT_FALSE(c.active(id));
}

TEST(CorrelatorTest, FinishCancelsDeadline) {
  World w;
  Correlator c(w.queue);
  auto id = c.next_op_id();
  bool timed_out = false;
  c.expect(
      id, [](sim::NodeId, const Message&) { return true; },
      w.queue.now() + sim::seconds(1), [&] { timed_out = true; });
  EXPECT_TRUE(c.finish(id));
  w.run_all();
  EXPECT_FALSE(timed_out);
  EXPECT_FALSE(c.finish(id));
}

TEST(CorrelatorTest, HandlerMayRegisterNewExchanges) {
  World w;
  Correlator c(w.queue);
  auto id = c.next_op_id();
  bool inner_called = false;
  c.expect(id, [&](sim::NodeId, const Message&) {
    // Registering inside the handler must not invalidate the dispatch.
    for (int i = 0; i < 50; ++i) {
      c.expect(c.next_op_id(), [](sim::NodeId, const Message&) { return true; });
    }
    inner_called = true;
    return false;
  });
  Message m;
  m.op_id = id;
  c.route(1, m);
  EXPECT_TRUE(inner_called);
  EXPECT_EQ(c.open_count(), 50u);
}

// ---------------- ResponderCache ----------------

TEST(Cache, PaperListDiscipline) {
  ResponderCache cache;
  cache.add(10);
  cache.add(20);
  cache.add(30);
  EXPECT_EQ(cache.contact_order(), (std::vector<sim::NodeId>{10, 20, 30}));
  cache.add(20);  // duplicate: no move
  EXPECT_EQ(cache.contact_order(), (std::vector<sim::NodeId>{10, 20, 30}));
  cache.remove(10);  // non-responder dropped
  EXPECT_EQ(cache.contact_order(), (std::vector<sim::NodeId>{20, 30}));
  cache.add(10);  // re-appears at the bottom
  EXPECT_EQ(cache.contact_order(), (std::vector<sim::NodeId>{20, 30, 10}));
}

TEST(Cache, StableNodesDriftToTop) {
  // The §3.1.3 emergent property: flaky nodes get removed and re-added at
  // the bottom, so consistently-responding nodes end up on top.
  ResponderCache cache;
  cache.add(1);  // flaky
  cache.add(2);  // stable
  for (int round = 0; round < 3; ++round) {
    cache.remove(1);
    cache.add(1);
  }
  EXPECT_EQ(cache.contact_order().front(), 2u);
}

TEST(Cache, StabilityOrderingUsesHistory) {
  ResponderCache cache(ResponderCache::Ordering::kByStability);
  cache.add(1);
  cache.add(2);
  cache.add(3);
  for (int i = 0; i < 8; ++i) cache.record_success(3);
  for (int i = 0; i < 8; ++i) cache.record_failure(1);
  cache.record_success(1);
  auto order = cache.contact_order();
  EXPECT_EQ(order.front(), 3u);  // best history first
  EXPECT_EQ(order.back(), 1u);   // worst last
}

TEST(Cache, UnknownPeerRanksMidTable) {
  ResponderCache cache(ResponderCache::Ordering::kByStability);
  EXPECT_DOUBLE_EQ(cache.response_rate(99), 0.5);
}

// ---------------- Discovery ----------------

struct DiscoveryFixture : ::testing::Test {
  World w;

  struct Node {
    std::unique_ptr<Endpoint> ep;
    std::unique_ptr<ResponderCache> cache;
    std::unique_ptr<Discovery> disc;
  };

  Node make_node() {
    Node n;
    auto id = w.net.add_node();
    n.ep = std::make_unique<Endpoint>(w.tx, id);
    n.cache = std::make_unique<ResponderCache>();
    n.disc = std::make_unique<Discovery>(*n.ep, w.queue, *n.cache);
    n.disc->enable_responder();
    return n;
  }
};

TEST_F(DiscoveryFixture, ProbeFindsVisibleResponders) {
  auto a = make_node();
  auto b = make_node();
  auto c = make_node();
  std::size_t found = 0;
  a.disc->probe(sim::milliseconds(50), [&](std::size_t n) { found = n; });
  w.run_all();
  EXPECT_EQ(found, 2u);
  EXPECT_TRUE(a.cache->contains(b.ep->node()));
  EXPECT_TRUE(a.cache->contains(c.ep->node()));
}

TEST_F(DiscoveryFixture, SecondProbeFindsNothingNew) {
  auto a = make_node();
  auto b = make_node();
  std::size_t found = 99;
  a.disc->probe(sim::milliseconds(50), [&](std::size_t) {});
  w.run_all();
  a.disc->probe(sim::milliseconds(50), [&](std::size_t n) { found = n; });
  w.run_all();
  EXPECT_EQ(found, 0u);
}

TEST_F(DiscoveryFixture, ConcurrentProbesCoalesce) {
  auto a = make_node();
  auto b = make_node();
  int callbacks = 0;
  a.disc->probe(sim::milliseconds(50), [&](std::size_t) { ++callbacks; });
  a.disc->probe(sim::milliseconds(50), [&](std::size_t) { ++callbacks; });
  w.run_all();
  EXPECT_EQ(callbacks, 2);
  EXPECT_EQ(a.disc->stats().probes_sent, 1u) << "probes must coalesce";
}

TEST_F(DiscoveryFixture, UnavailableResponderStaysSilent) {
  auto a = make_node();
  auto id = w.net.add_node();
  Endpoint ep(w.tx, id);
  ResponderCache cache;
  Discovery disc(ep, w.queue, cache);
  disc.enable_responder([] { return false; });  // declines all probes
  std::size_t found = 99;
  a.disc->probe(sim::milliseconds(50), [&](std::size_t n) { found = n; });
  w.run_all();
  EXPECT_EQ(found, 0u);
}

TEST_F(DiscoveryFixture, OutOfRangeNodesNotDiscovered) {
  w.net.set_radio_range(10.0);
  auto a = make_node();
  auto b = make_node();
  w.net.set_position(b.ep->node(), {500, 0});
  std::size_t found = 99;
  a.disc->probe(sim::milliseconds(50), [&](std::size_t n) { found = n; });
  w.run_all();
  EXPECT_EQ(found, 0u);
  EXPECT_FALSE(a.cache->contains(b.ep->node()));
}


// Correlator teardown walks the open-exchange table cancelling deadline
// events; the table is ordered now so teardown is deterministic, and no
// cancelled deadline may fire afterwards.
TEST(CorrelatorTest, TeardownCancelsOpenDeadlines) {
  World w;
  bool timed_out = false;
  {
    Correlator c(w.queue);
    for (int i = 0; i < 8; ++i) {
      c.expect(
          c.next_op_id(), [](sim::NodeId, const Message&) { return true; },
          w.queue.now() + sim::seconds(1), [&] { timed_out = true; });
    }
  }
  w.run_all();
  EXPECT_FALSE(timed_out);
}
}  // namespace
}  // namespace tiamat::net
