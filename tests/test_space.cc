// Unit tests for the local tuple space: the six Linda operations, waiters,
// nondeterministic selection, tuple expiry, the tentative-removal protocol
// and the eval engine.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "space/eval.h"
#include "space/handle.h"
#include "space/local_space.h"
#include "tests/test_util.h"

namespace tiamat::space {
namespace {

using tuples::any;
using tuples::any_int;
using tuples::any_string;
using tiamat::testing::World;

struct SpaceFixture : ::testing::Test {
  World w;
  sim::Rng rng{7};
  LocalTupleSpace space{w.queue, rng};
};

// ---------------- out / rdp / inp ----------------

TEST_F(SpaceFixture, OutThenRdpFindsCopy) {
  space.out(Tuple{"greeting", "hello"});
  auto t = space.rdp(Pattern{"greeting", any_string()});
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ((*t)[1].as_string(), "hello");
  EXPECT_EQ(space.size(), 1u);  // rdp copies, does not remove
}

TEST_F(SpaceFixture, InpRemoves) {
  space.out(Tuple{"x", 1});
  auto t = space.inp(Pattern{"x", any_int()});
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(space.size(), 0u);
  EXPECT_FALSE(space.inp(Pattern{"x", any_int()}).has_value());
}

TEST_F(SpaceFixture, MissReturnsNothing) {
  EXPECT_FALSE(space.rdp(Pattern{"nope"}).has_value());
  EXPECT_FALSE(space.inp(Pattern{"nope"}).has_value());
}

TEST_F(SpaceFixture, SelectionIsNondeterministicButValid) {
  for (int i = 0; i < 20; ++i) space.out(Tuple{"k", i});
  std::set<std::int64_t> seen;
  for (int i = 0; i < 100; ++i) {
    auto t = space.rdp(Pattern{"k", any_int()});
    ASSERT_TRUE(t.has_value());
    seen.insert((*t)[1].as_int());
  }
  // With 100 draws over 20 tuples we expect to see several distinct ones.
  EXPECT_GT(seen.size(), 3u);
}

TEST_F(SpaceFixture, EachInpRemovesDistinctTuple) {
  for (int i = 0; i < 10; ++i) space.out(Tuple{"k", i});
  std::set<std::int64_t> taken;
  for (int i = 0; i < 10; ++i) {
    auto t = space.inp(Pattern{"k", any_int()});
    ASSERT_TRUE(t.has_value());
    EXPECT_TRUE(taken.insert((*t)[1].as_int()).second)
        << "tuple returned twice";
  }
  EXPECT_FALSE(space.inp(Pattern{"k", any_int()}).has_value());
}

// ---------------- Blocking rd / in ----------------

TEST_F(SpaceFixture, RdBlocksUntilOut) {
  std::optional<Tuple> got;
  auto wid = space.rd(Pattern{"later", any_int()}, sim::kNever,
                      [&](std::optional<Tuple> t) { got = t; });
  EXPECT_NE(wid, kNoWaiter);
  EXPECT_FALSE(got.has_value());
  space.out(Tuple{"later", 9});
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ((*got)[1].as_int(), 9);
  EXPECT_EQ(space.size(), 1u);  // rd left it there
}

TEST_F(SpaceFixture, InConsumesImmediatelyWhenPresent) {
  space.out(Tuple{"now", 1});
  std::optional<Tuple> got;
  auto wid = space.in(Pattern{"now", any_int()}, sim::kNever,
                      [&](std::optional<Tuple> t) { got = t; });
  EXPECT_EQ(wid, kNoWaiter);  // satisfied synchronously
  EXPECT_TRUE(got.has_value());
  EXPECT_EQ(space.size(), 0u);
}

TEST_F(SpaceFixture, BlockedInConsumesArrivingTupleBeforeStorage) {
  std::optional<Tuple> got;
  space.in(Pattern{"t", any_int()}, sim::kNever,
           [&](std::optional<Tuple> t) { got = t; });
  auto id = space.out(Tuple{"t", 5});
  EXPECT_EQ(id, tuples::kNoTuple);  // never stored
  EXPECT_TRUE(got.has_value());
  EXPECT_EQ(space.size(), 0u);
}

TEST_F(SpaceFixture, DeadlinePassingReturnsNothing) {
  std::optional<Tuple> got;
  bool fired = false;
  space.in(Pattern{"never"}, w.queue.now() + sim::seconds(1),
           [&](std::optional<Tuple> t) {
             fired = true;
             got = t;
           });
  w.run_all();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(space.stats().waiter_timed_out, 1u);
}

TEST_F(SpaceFixture, DeadlineAlreadyPassedFiresImmediately) {
  w.queue.run_until(sim::seconds(10));
  bool fired = false;
  space.rd(Pattern{"x"}, sim::seconds(5), [&](std::optional<Tuple> t) {
    fired = true;
    EXPECT_FALSE(t.has_value());
  });
  EXPECT_TRUE(fired);
}

TEST_F(SpaceFixture, MultipleRdWaitersAllSatisfiedByOneOut) {
  int fired = 0;
  for (int i = 0; i < 3; ++i) {
    space.rd(Pattern{"b"}, sim::kNever, [&](std::optional<Tuple> t) {
      EXPECT_TRUE(t.has_value());
      ++fired;
    });
  }
  space.out(Tuple{"b"});
  EXPECT_EQ(fired, 3);
}

TEST_F(SpaceFixture, OnlyOldestInWaiterConsumes) {
  int consumed = 0;
  int first_waiter = -1;
  for (int i = 0; i < 3; ++i) {
    space.in(Pattern{"c"}, sim::kNever, [&, i](std::optional<Tuple> t) {
      if (t) {
        ++consumed;
        if (first_waiter < 0) first_waiter = i;
      }
    });
  }
  space.out(Tuple{"c"});
  EXPECT_EQ(consumed, 1);
  EXPECT_EQ(first_waiter, 0);  // FIFO
  EXPECT_EQ(space.waiter_count(), 2u);
}

TEST_F(SpaceFixture, RdWaitersServedBeforeInConsumes) {
  bool rd_got = false, in_got = false;
  space.in(Pattern{"d"}, sim::kNever,
           [&](std::optional<Tuple> t) { in_got = t.has_value(); });
  space.rd(Pattern{"d"}, sim::kNever,
           [&](std::optional<Tuple> t) { rd_got = t.has_value(); });
  space.out(Tuple{"d"});
  EXPECT_TRUE(rd_got);  // reader saw it even though a taker was older
  EXPECT_TRUE(in_got);
}

TEST_F(SpaceFixture, CancelWaiterSuppressesCallback) {
  bool fired = false;
  auto wid = space.rd(Pattern{"z"}, sim::kNever,
                      [&](std::optional<Tuple>) { fired = true; });
  EXPECT_TRUE(space.cancel_waiter(wid));
  space.out(Tuple{"z"});
  EXPECT_FALSE(fired);
  EXPECT_FALSE(space.cancel_waiter(wid));  // already gone
}

// ---------------- Expiry ----------------

TEST_F(SpaceFixture, TupleExpiresAtLeaseEnd) {
  space.out(Tuple{"ttl", 1}, sim::seconds(2));
  EXPECT_EQ(space.size(), 1u);
  w.queue.run_until(sim::seconds(1));
  EXPECT_EQ(space.size(), 1u);
  w.queue.run_until(sim::seconds(3));
  EXPECT_EQ(space.size(), 0u);
  EXPECT_EQ(space.stats().tuples_expired, 1u);
}

TEST_F(SpaceFixture, OutWithPastExpiryNeverStored) {
  w.queue.run_until(sim::seconds(10));
  auto id = space.out(Tuple{"old"}, sim::seconds(5));
  EXPECT_EQ(id, tuples::kNoTuple);
  EXPECT_EQ(space.size(), 0u);
}

TEST_F(SpaceFixture, TakingTupleCancelsItsExpiry) {
  space.out(Tuple{"x"}, sim::seconds(1));
  auto t = space.inp(Pattern{"x"});
  ASSERT_TRUE(t.has_value());
  w.run_all();
  EXPECT_EQ(space.stats().tuples_expired, 0u);
}

TEST_F(SpaceFixture, SetTupleExpiryRenews) {
  auto id = space.out(Tuple{"renew"}, sim::seconds(1));
  EXPECT_TRUE(space.set_tuple_expiry(id, sim::seconds(5)));
  w.queue.run_until(sim::seconds(2));
  EXPECT_EQ(space.size(), 1u);
  w.queue.run_until(sim::seconds(6));
  EXPECT_EQ(space.size(), 0u);
}

TEST_F(SpaceFixture, ReclaimRemovesAndCounts) {
  auto id = space.out(Tuple{"r"});
  EXPECT_TRUE(space.contains(id));
  EXPECT_TRUE(space.reclaim(id));
  EXPECT_FALSE(space.contains(id));
  EXPECT_FALSE(space.reclaim(id));
  EXPECT_EQ(space.stats().tuples_expired, 1u);
}

TEST_F(SpaceFixture, PurgeExpiredSweepsLazily) {
  // Insert with expiries, then move the clock *without* running events
  // (purge must not rely on timers having fired).
  space.out(Tuple{"a"}, sim::seconds(1));
  space.out(Tuple{"b"}, sim::seconds(10));
  // Advance clock directly by scheduling nothing and forcing run_until past
  // t=1; timers will fire; so instead test the expiries map path:
  space.purge_expired();  // nothing expired yet
  EXPECT_EQ(space.size(), 2u);
}

// ---------------- Tentative removal ----------------

TEST_F(SpaceFixture, TentativeTakeHidesTuple) {
  space.out(Tuple{"t", 1});
  auto taken = space.take_tentative(Pattern{"t", any_int()});
  ASSERT_TRUE(taken.has_value());
  EXPECT_EQ(space.size(), 0u);
  EXPECT_EQ(space.tentative_count(), 1u);
  EXPECT_FALSE(space.rdp(Pattern{"t", any_int()}).has_value());
}

TEST_F(SpaceFixture, ReleaseRestoresVisibility) {
  space.out(Tuple{"t", 1});
  auto taken = space.take_tentative(Pattern{"t", any_int()});
  ASSERT_TRUE(taken);
  EXPECT_TRUE(space.release_tentative(taken->first));
  EXPECT_EQ(space.size(), 1u);
  EXPECT_EQ(space.tentative_count(), 0u);
  EXPECT_TRUE(space.rdp(Pattern{"t", any_int()}).has_value());
}

TEST_F(SpaceFixture, ConfirmMakesRemovalPermanent) {
  space.out(Tuple{"t", 1});
  auto taken = space.take_tentative(Pattern{"t", any_int()});
  ASSERT_TRUE(taken);
  EXPECT_TRUE(space.confirm_tentative(taken->first));
  EXPECT_EQ(space.size(), 0u);
  EXPECT_EQ(space.tentative_count(), 0u);
  EXPECT_FALSE(space.release_tentative(taken->first));  // gone for good
}

TEST_F(SpaceFixture, ReleasedTupleSatisfiesPendingWaiter) {
  space.out(Tuple{"t", 1});
  auto taken = space.take_tentative(Pattern{"t", any_int()});
  ASSERT_TRUE(taken);
  std::optional<Tuple> got;
  space.in(Pattern{"t", any_int()}, sim::kNever,
           [&](std::optional<Tuple> t) { got = t; });
  EXPECT_FALSE(got.has_value());  // hidden while tentative
  space.release_tentative(taken->first);
  EXPECT_TRUE(got.has_value());
  EXPECT_EQ(space.size(), 0u);  // consumed straight by the waiter
}

TEST_F(SpaceFixture, ReleasedTupleKeepsItsLease) {
  space.out(Tuple{"t", 1}, sim::seconds(2));
  auto taken = space.take_tentative(Pattern{"t", any_int()});
  ASSERT_TRUE(taken);
  space.release_tentative(taken->first);
  w.queue.run_until(sim::seconds(3));
  EXPECT_EQ(space.size(), 0u);  // still expired on schedule
  EXPECT_EQ(space.stats().tuples_expired, 1u);
}

TEST_F(SpaceFixture, ReleaseAfterLeaseLapseReclaims) {
  space.out(Tuple{"t", 1}, sim::seconds(1));
  auto taken = space.take_tentative(Pattern{"t", any_int()});
  ASSERT_TRUE(taken);
  w.queue.run_until(sim::seconds(2));  // lease lapsed while tentative
  EXPECT_TRUE(space.release_tentative(taken->first));
  EXPECT_EQ(space.size(), 0u);
}

TEST_F(SpaceFixture, TakeTentativeBlockingWaits) {
  std::optional<std::pair<tuples::TupleId, Tuple>> got;
  space.take_tentative_blocking(Pattern{"t"}, sim::kNever,
                                [&](auto r) { got = r; });
  EXPECT_FALSE(got.has_value());
  space.out(Tuple{"t"});
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(space.tentative_count(), 1u);
  space.release_tentative(got->first);
  EXPECT_EQ(space.size(), 1u);
}

// ---------------- Handle tuples ----------------

TEST(Handle, RoundTrip) {
  SpaceHandle h{7, "alpha", true};
  auto t = make_handle_tuple(h);
  EXPECT_TRUE(is_handle_tuple(t));
  auto back = parse_handle_tuple(t);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, h);
}

TEST(Handle, PatternMatchesOnlyHandles) {
  auto p = handle_pattern();
  EXPECT_TRUE(p.matches(make_handle_tuple({1, "x", false})));
  EXPECT_FALSE(p.matches(Tuple{"other", 1, "x", false}));
  EXPECT_FALSE(p.matches(Tuple{"req", 1}));
}

TEST(Handle, ParseRejectsNonHandles) {
  EXPECT_FALSE(parse_handle_tuple(Tuple{"x"}).has_value());
  EXPECT_FALSE(parse_handle_tuple(Tuple{kHandleTag, "no", "x", true})
                   .has_value());
}

// ---------------- Eval engine ----------------

struct EvalFixture : SpaceFixture {
  EvalEngine engine{w.queue, space};
};

TEST_F(EvalFixture, ComputationCompletesAfterCost) {
  ActiveTuple at;
  at.add("result");
  at.add([] { return tuples::Value(6 * 7); }, sim::seconds(1));
  engine.submit(std::move(at));
  EXPECT_EQ(space.size(), 0u);  // not available yet
  w.queue.run_until(sim::seconds(2));
  ASSERT_EQ(space.size(), 1u);
  auto t = space.rdp(Pattern{"result", any_int()});
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ((*t)[1].as_int(), 42);
  EXPECT_EQ(engine.stats().completed, 1u);
}

TEST_F(EvalFixture, LeaseExpiryHaltsComputation) {
  ActiveTuple at;
  at.add("never");
  at.add([] { return tuples::Value(1); }, sim::seconds(10));
  engine.submit(std::move(at), /*halt_by=*/sim::seconds(1));
  w.run_all();
  EXPECT_EQ(space.size(), 0u);
  EXPECT_EQ(engine.stats().halted, 1u);
  EXPECT_EQ(engine.stats().completed, 0u);
}

TEST_F(EvalFixture, ExplicitHaltStopsIt) {
  ActiveTuple at;
  at.add([] { return tuples::Value(1); }, sim::seconds(5));
  auto id = engine.submit(std::move(at));
  EXPECT_TRUE(engine.halt(id));
  EXPECT_FALSE(engine.halt(id));
  w.run_all();
  EXPECT_EQ(space.size(), 0u);
}

TEST_F(EvalFixture, ResultantTupleCarriesExpiry) {
  ActiveTuple at;
  at.add("r");
  at.add([] { return tuples::Value(1); }, sim::seconds(1));
  engine.submit(std::move(at), sim::kNever, /*tuple_expiry=*/sim::seconds(3));
  w.queue.run_until(sim::seconds(2));
  EXPECT_EQ(space.size(), 1u);
  w.queue.run_until(sim::seconds(4));
  EXPECT_EQ(space.size(), 0u);
}

TEST_F(EvalFixture, MultipleComputedFieldsSummed) {
  ActiveTuple at;
  at.add([] { return tuples::Value(1); }, sim::seconds(1));
  at.add([] { return tuples::Value(2); }, sim::seconds(1));
  EXPECT_EQ(at.total_cost(), sim::seconds(2));
  engine.submit(std::move(at));
  w.queue.run_until(sim::seconds(1));
  EXPECT_EQ(space.size(), 0u);  // serial: not done at 1s
  w.queue.run_until(sim::seconds(2));
  EXPECT_EQ(space.size(), 1u);
}

TEST_F(EvalFixture, ResultSatisfiesBlockedWaiter) {
  std::optional<Tuple> got;
  space.in(Pattern{"r", any_int()}, sim::kNever,
           [&](std::optional<Tuple> t) { got = t; });
  ActiveTuple at;
  at.add("r");
  at.add([] { return tuples::Value(5); }, sim::seconds(1));
  engine.submit(std::move(at));
  w.queue.run_until(sim::seconds(2));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ((*got)[1].as_int(), 5);
}

// ---------------- Stats & misc ----------------

TEST_F(SpaceFixture, StatsCountOps) {
  space.out(Tuple{"s"});
  space.rdp(Pattern{"s"});
  space.inp(Pattern{"s"});
  EXPECT_EQ(space.stats().outs, 1u);
  EXPECT_EQ(space.stats().reads, 1u);
  EXPECT_EQ(space.stats().takes, 1u);
  EXPECT_EQ(space.stats().hits, 2u);
}

TEST_F(SpaceFixture, SnapshotAndCount) {
  space.out(Tuple{"a", 1});
  space.out(Tuple{"a", 2});
  space.out(Tuple{"b", 1});
  EXPECT_EQ(space.snapshot().size(), 3u);
  EXPECT_EQ(space.count_matches(Pattern{"a", any_int()}), 2u);
}

TEST_F(SpaceFixture, FootprintFollowsContents) {
  EXPECT_EQ(space.footprint(), 0u);
  space.out(Tuple{std::string(1000, 'x')});
  EXPECT_GT(space.footprint(), 1000u);
  space.inp(Pattern{any_string()});
  EXPECT_EQ(space.footprint(), 0u);
}


// ---------------- Determinism regressions ----------------

// The expiry tables are ordered now (reclamation used to walk an
// unordered_map): identically-seeded runs must expire the same tuples and
// leave identical survivors.
TEST(SpaceDeterminism, ExpiryReclaimsIdenticallyAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    sim::EventQueue q;
    sim::Rng r{seed};
    LocalTupleSpace s(q, r);
    for (std::int64_t i = 0; i < 24; ++i) {
      s.out(Tuple{"t", i}, /*expiry=*/(i % 3 == 0) ? 100 : 200);
    }
    q.run_until(150);  // the i%3==0 cohort expires, the rest survive
    std::vector<std::int64_t> left;
    for (const auto& t : s.snapshot()) left.push_back(t[1].as_int());
    return std::make_pair(left, s.stats().tuples_expired);
  };
  auto a = run(5);
  EXPECT_EQ(a, run(5));
  EXPECT_EQ(a.second, 8u);
  EXPECT_TRUE(std::is_sorted(a.first.begin(), a.first.end()));
}
}  // namespace
}  // namespace tiamat::space
