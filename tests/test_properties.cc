// Property-based / stress tests: randomised multi-instance workloads whose
// *invariants* must hold under any interleaving, packet loss, and churn.
//
//   P1  exactly-once removal: a tuple is never delivered to two takers;
//   P2  no tentative leaks: every tentative removal is eventually confirmed
//       or released;
//   P3  every operation terminates: a match, or nothing at lease expiry —
//       never a hang, never a double callback;
//   P4  determinism: identical seeds give identical traces;
//   P5  lease accounting: no active leases survive the workload.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "chaos/oracles.h"
#include "core/instance.h"
#include "sim/mobility.h"
#include "tests/test_util.h"

namespace tiamat::core {
namespace {

using tuples::any_int;
using tuples::Pattern;
using tuples::Tuple;
using tiamat::testing::World;

struct Trace {
  std::uint64_t produced = 0;
  std::uint64_t delivered = 0;
  std::uint64_t empty = 0;
  std::uint64_t callbacks = 0;
  std::multiset<std::int64_t> taken_ids;  // multiset to detect duplicates
  std::uint64_t net_bytes = 0;
};

Config stress_config(const std::string& name) {
  Config cfg;
  cfg.name = name;
  cfg.lease_caps.default_ttl = sim::seconds(5);
  cfg.lease_caps.max_ttl = sim::seconds(10);
  cfg.lease_caps.default_contacts = 16;
  cfg.lease_caps.max_contacts = 32;
  return cfg;
}

/// Runs a random produce/take workload over `n` instances and returns the
/// observable trace. Every produced tuple carries a unique id; takers use
/// destructive ops so duplicate delivery is detectable.
Trace run_workload(std::uint64_t seed, std::size_t n, int ops_per_node,
                   double loss, bool churn) {
  sim::LinkModel lm = World::quiet_links();
  lm.loss = loss;
  lm.jitter = 300;
  World w(seed, lm);

  std::vector<std::unique_ptr<Instance>> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<Instance>(
        w.tx, stress_config("s" + std::to_string(i))));
  }

  Trace trace;
  std::int64_t next_id = 1;
  sim::Rng driver(seed ^ 0xABCDEF);

  // The driver loops are self-referencing shared_ptr<function> cycles;
  // keep handles so the cycles can be broken at the end of the run.
  std::vector<std::shared_ptr<std::function<void()>>> steppers;

  // Each node interleaves random outs and random takes on its own timer.
  for (std::size_t i = 0; i < n; ++i) {
    auto* inst = nodes[i].get();
    auto remaining = std::make_shared<int>(ops_per_node);
    auto step = std::make_shared<std::function<void()>>();
    *step = [&, inst, remaining, step] {
      if (*remaining <= 0) return;
      --*remaining;
      if (driver.chance(0.55)) {
        ++trace.produced;
        inst->out(Tuple{"item", next_id++});
        w.queue.schedule_after(sim::milliseconds(driver.uniform(1, 30)),
                               *step);
      } else {
        const bool blocking = driver.chance(0.4);
        auto cb = [&, step, inst](std::optional<ReadResult> r) {
          ++trace.callbacks;
          if (r) {
            ++trace.delivered;
            trace.taken_ids.insert(r->tuple[1].as_int());
          } else {
            ++trace.empty;
          }
          w.queue.schedule_after(sim::milliseconds(driver.uniform(1, 30)),
                                 *step);
        };
        bool granted = blocking ? inst->in(Pattern{"item", any_int()}, cb)
                                : inst->inp(Pattern{"item", any_int()}, cb);
        if (!granted) {
          w.queue.schedule_after(sim::milliseconds(5), *step);
        }
      }
    };
    steppers.push_back(step);
    w.queue.schedule_after(sim::milliseconds(driver.uniform(1, 20)), *step);
  }

  sim::ChurnProcess churner(w.net, w.rng,
                            sim::ChurnParams{sim::milliseconds(300), 0.4, 2});
  if (churn) {
    for (auto& nd : nodes) churner.manage(nd->node());
    churner.start();
  }

  w.queue.run_for(sim::seconds(120));
  churner.stop();
  w.queue.run_for(sim::seconds(30));  // drain every outstanding lease

  // ---- Invariants checked while the world is still alive (P2/P5 via the
  // shared oracle bank, chaos/oracles.h) ----
  for (auto& nd : nodes) {
    for (const chaos::Finding& f : chaos::check_instance_quiescent(*nd)) {
      ADD_FAILURE() << f.oracle << " at " << nd->name() << ": " << f.detail;
    }
  }
  trace.net_bytes = w.net.stats().bytes_sent;
  for (auto& s2 : steppers) *s2 = nullptr;  // break the self-cycles
  return trace;
}

class StressSweep : public ::testing::TestWithParam<std::uint64_t> {};

/// P1 + P3 through the shared oracle bank; `why` names the scenario in the
/// failure message.
void expect_p1_p3(const Trace& t, const char* why) {
  if (auto f = chaos::check_exactly_once(t.taken_ids)) {
    ADD_FAILURE() << f->oracle << " (" << why << "): " << f->detail;
  }
  if (auto f = chaos::check_termination(t.callbacks, t.delivered, t.empty)) {
    ADD_FAILURE() << f->oracle << " (" << why << "): " << f->detail;
  }
}

TEST_P(StressSweep, CleanNetworkInvariants) {
  Trace t = run_workload(GetParam(), 5, 40, /*loss=*/0.0, /*churn=*/false);
  expect_p1_p3(t, "clean network");
  // Sanity: the workload did real distributed work.
  EXPECT_GT(t.delivered, 0u);
  EXPECT_LE(t.delivered, t.produced);
}

TEST_P(StressSweep, LossyNetworkInvariants) {
  Trace t = run_workload(GetParam() ^ 0x5050, 5, 30, /*loss=*/0.15,
                         /*churn=*/false);
  expect_p1_p3(t, "packet loss must never cause duplicate delivery");
}

TEST_P(StressSweep, ChurningNetworkInvariants) {
  Trace t = run_workload(GetParam() ^ 0xC0C0, 6, 30, /*loss=*/0.05,
                         /*churn=*/true);
  expect_p1_p3(t, "churn must never cause duplicate delivery");
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 23, 47));

TEST(Determinism, IdenticalSeedsIdenticalTraces) {
  auto a = run_workload(99, 4, 25, 0.1, true);
  auto b = run_workload(99, 4, 25, 0.1, true);
  EXPECT_EQ(a.produced, b.produced);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.empty, b.empty);
  EXPECT_EQ(a.taken_ids, b.taken_ids);
  EXPECT_EQ(a.net_bytes, b.net_bytes);
}

TEST(Determinism, DifferentSeedsDiverge) {
  auto a = run_workload(100, 4, 25, 0.1, true);
  auto b = run_workload(101, 4, 25, 0.1, true);
  // Overwhelmingly likely to differ somewhere.
  EXPECT_TRUE(a.net_bytes != b.net_bytes || a.taken_ids != b.taken_ids ||
              a.delivered != b.delivered);
}

// P1 at maximum contention: every node fights over a single tuple, many
// rounds; exactly one winner per round.
class ContentionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ContentionSweep, SingleTupleSingleWinner) {
  World w(GetParam());
  constexpr std::size_t kNodes = 6;
  std::vector<std::unique_ptr<Instance>> nodes;
  for (std::size_t i = 0; i < kNodes; ++i) {
    nodes.push_back(std::make_unique<Instance>(
        w.tx, stress_config("c" + std::to_string(i))));
  }
  for (int round = 0; round < 10; ++round) {
    nodes[round % kNodes]->out(Tuple{"prize", round});
    int winners = 0, losers = 0;
    for (auto& nd : nodes) {
      nd->inp(Pattern{"prize", round}, [&](auto r) {
        if (r) {
          ++winners;
        } else {
          ++losers;
        }
      });
    }
    w.queue.run_for(sim::seconds(12));
    ASSERT_EQ(winners, 1) << "round " << round;
    ASSERT_EQ(losers, static_cast<int>(kNodes) - 1) << "round " << round;
    for (auto& nd : nodes) {
      ASSERT_EQ(nd->local_space().count_matches(Pattern{"prize", round}), 0u);
      ASSERT_EQ(nd->local_space().tentative_count(), 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContentionSweep,
                         ::testing::Values(7, 8, 9, 10));

}  // namespace
}  // namespace tiamat::core
