// Integration tests for the Tiamat core: opportunistic logical tuple
// spaces, operation propagation, first-response-wins with loser
// reinsertion, leasing of operations, directed remote operations, handle
// discovery, and behaviour under visibility change.

#include <gtest/gtest.h>

#include <memory>

#include "core/instance.h"
#include "core/routing.h"
#include "tests/test_util.h"

namespace tiamat::core {
namespace {

using tuples::any;
using tuples::any_int;
using tuples::any_string;
using tiamat::testing::World;

Config fast_config(const std::string& name = "t") {
  Config cfg;
  cfg.name = name;
  return cfg;
}

/// Policy caps that keep default leases snappy in tests.
Config with_ttl(Config cfg, sim::Duration ttl) {
  cfg.lease_caps.default_ttl = ttl;
  cfg.lease_caps.max_ttl = ttl;
  return cfg;
}

struct CoreFixture : ::testing::Test {
  World w;

  std::unique_ptr<Instance> make(const std::string& name = "t",
                                 Config cfg = {}) {
    cfg.name = name;
    return std::make_unique<Instance>(w.tx, cfg);
  }
};

// ---------------- Purely local operation ----------------

TEST_F(CoreFixture, IsolatedInstanceWorksAlone) {
  auto a = make("solo");
  EXPECT_EQ(a->out(Tuple{"x", 1}), Status::kOk);
  auto r = run_rdp(*a, Pattern{"x", any_int()});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->tuple[1].as_int(), 1);
  EXPECT_EQ(r->source, a->node());
}

TEST_F(CoreFixture, LocalInConsumes) {
  auto a = make();
  a->out(Tuple{"x", 1});
  auto r = run_in(*a, Pattern{"x", any_int()});
  ASSERT_TRUE(r.has_value());
  // It is gone afterwards (logical space now empty of "x").
  auto r2 = run_inp(*a, Pattern{"x", any_int()});
  EXPECT_FALSE(r2.has_value());
}

TEST_F(CoreFixture, OutDefaultsToLocalSpaceOnly) {
  auto a = make("a");
  auto b = make("b");
  a->out(Tuple{"mine", 1});
  w.run_for(sim::milliseconds(100));
  EXPECT_EQ(b->local_space().count_matches(Pattern{"mine", any_int()}), 0u);
  EXPECT_EQ(a->local_space().count_matches(Pattern{"mine", any_int()}), 1u);
}

// ---------------- Logical space across two instances ----------------

TEST_F(CoreFixture, RdpReachesVisibleInstance) {
  auto a = make("a");
  auto b = make("b");
  b->out(Tuple{"remote", 42});
  auto r = run_rdp(*a, Pattern{"remote", any_int()});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->tuple[1].as_int(), 42);
  EXPECT_EQ(r->source, b->node());
  // Non-destructive: b still has it.
  EXPECT_EQ(b->local_space().count_matches(Pattern{"remote", any_int()}), 1u);
}

TEST_F(CoreFixture, InpTakesFromRemoteExactlyOnce) {
  auto a = make("a");
  auto b = make("b");
  b->out(Tuple{"take", 1});
  auto r = run_inp(*a, Pattern{"take", any_int()});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->source, b->node());
  w.run_for(sim::seconds(2));  // let confirms settle
  EXPECT_EQ(b->local_space().count_matches(Pattern{"take", any_int()}), 0u);
  EXPECT_EQ(b->local_space().tentative_count(), 0u);
  // A second attempt finds nothing anywhere.
  auto r2 = run_inp(*a, Pattern{"take", any_int()});
  EXPECT_FALSE(r2.has_value());
}

TEST_F(CoreFixture, BlockingRdWaitsForRemoteOut) {
  auto a = make("a");
  auto b = make("b");
  std::optional<ReadResult> got;
  bool fired = false;
  ASSERT_TRUE(a->rd(Pattern{"later", any_int()}, [&](auto r) {
    got = r;
    fired = true;
  }));
  w.run_for(sim::milliseconds(300));
  EXPECT_FALSE(fired);
  b->out(Tuple{"later", 7});
  w.run_for(sim::seconds(1));
  ASSERT_TRUE(fired);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->tuple[1].as_int(), 7);
  EXPECT_EQ(got->source, b->node());
}

TEST_F(CoreFixture, BlockingInTakesRemoteArrival) {
  auto a = make("a");
  auto b = make("b");
  std::optional<ReadResult> got;
  ASSERT_TRUE(a->in(Pattern{"job", any_int()}, [&](auto r) { got = r; }));
  w.run_for(sim::milliseconds(200));
  b->out(Tuple{"job", 1});
  w.run_for(sim::seconds(2));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(b->local_space().count_matches(Pattern{"job", any_int()}), 0u);
  EXPECT_EQ(b->local_space().tentative_count(), 0u);
}

TEST_F(CoreFixture, NoMatchAnywhereReturnsNullopt) {
  auto a = make("a");
  auto b = make("b");
  auto r = run_rdp(*a, Pattern{"ghost"});
  EXPECT_FALSE(r.has_value());
}

// ---------------- First-response-wins & exactly-once removal ----------------

TEST_F(CoreFixture, CompetingTakersGetDistinctTuples) {
  auto a = make("a");
  auto b = make("b");
  auto c = make("c");
  c->out(Tuple{"item", 1});
  c->out(Tuple{"item", 2});

  std::vector<std::int64_t> taken;
  int fired = 0;
  ASSERT_TRUE(a->inp(Pattern{"item", any_int()}, [&](auto r) {
    ++fired;
    if (r) taken.push_back(r->tuple[1].as_int());
  }));
  ASSERT_TRUE(b->inp(Pattern{"item", any_int()}, [&](auto r) {
    ++fired;
    if (r) taken.push_back(r->tuple[1].as_int());
  }));
  w.run_for(sim::seconds(3));
  EXPECT_EQ(fired, 2);
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_NE(taken[0], taken[1]) << "a tuple was taken twice";
  EXPECT_EQ(c->local_space().count_matches(Pattern{"item", any_int()}), 0u);
  EXPECT_EQ(c->local_space().tentative_count(), 0u);
}

TEST_F(CoreFixture, SingleTupleGoesToExactlyOneOfManyTakers) {
  auto holder = make("holder");
  holder->out(Tuple{"one"});
  std::vector<std::unique_ptr<Instance>> takers;
  int got = 0, missed = 0;
  for (int i = 0; i < 4; ++i) {
    takers.push_back(make("taker" + std::to_string(i)));
  }
  for (auto& t : takers) {
    ASSERT_TRUE(t->inp(Pattern{"one"}, [&](auto r) {
      if (r) {
        ++got;
      } else {
        ++missed;
      }
    }));
  }
  w.run_for(sim::seconds(3));
  EXPECT_EQ(got, 1);
  EXPECT_EQ(missed, 3);
  EXPECT_EQ(holder->local_space().tentative_count(), 0u);
  EXPECT_EQ(holder->local_space().count_matches(Pattern{"one"}), 0u);
}

TEST_F(CoreFixture, LosersTupleRemainsReadable) {
  // Two instances each hold a matching tuple; a destructive op takes one,
  // and the other is released back ("the others should remain in their
  // spaces").
  auto a = make("a");
  auto b = make("b");
  auto c = make("c");
  b->out(Tuple{"m", 1});
  c->out(Tuple{"m", 2});
  auto r = run_inp(*a, Pattern{"m", any_int()});
  ASSERT_TRUE(r.has_value());
  w.run_for(sim::seconds(2));
  const std::size_t left =
      b->local_space().count_matches(Pattern{"m", any_int()}) +
      c->local_space().count_matches(Pattern{"m", any_int()});
  EXPECT_EQ(left, 1u);
  EXPECT_EQ(b->local_space().tentative_count(), 0u);
  EXPECT_EQ(c->local_space().tentative_count(), 0u);
}

// ---------------- Leasing of operations ----------------

TEST_F(CoreFixture, LeaseRefusalFailsOperationBeforeAnyWork) {
  Config cfg;
  cfg.name = "denied";
  auto a = std::make_unique<Instance>(w.tx, cfg,
                                      std::make_unique<lease::DenyAllPolicy>());
  bool cb_fired = false;
  EXPECT_FALSE(a->rd(Pattern{"x"}, [&](auto) { cb_fired = true; }));
  EXPECT_FALSE(cb_fired);
  EXPECT_EQ(a->monitor().counters().ops_lease_refused, 1u);
  EXPECT_EQ(a->out(Tuple{"x"}), Status::kLeaseRefused);
  EXPECT_EQ(a->endpoint().stats().sent, 0u);  // truly no work
}

TEST_F(CoreFixture, BlockedOpReturnsNothingWhenLeaseExpires) {
  auto a = std::make_unique<Instance>(
      w.tx, with_ttl(fast_config("a"), sim::seconds(2)));
  bool fired = false;
  std::optional<ReadResult> got;
  ASSERT_TRUE(a->in(Pattern{"never"}, [&](auto r) {
    fired = true;
    got = r;
  }));
  w.run_for(sim::seconds(3));
  EXPECT_TRUE(fired);
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(a->monitor().counters().lease_expired, 1u);
  EXPECT_EQ(a->open_ops(), 0u);
}

TEST_F(CoreFixture, OutTupleReclaimedAtLeaseExpiry) {
  auto a = std::make_unique<Instance>(
      w.tx, with_ttl(fast_config("a"), sim::seconds(1)));
  a->out(Tuple{"fleeting"});
  EXPECT_EQ(a->local_space().count_matches(Pattern{"fleeting"}), 1u);
  w.run_for(sim::seconds(2));
  EXPECT_EQ(a->local_space().count_matches(Pattern{"fleeting"}), 0u);
}

TEST_F(CoreFixture, ContactBudgetLimitsPropagation) {
  Config cfg = fast_config("a");
  cfg.lease_caps.default_contacts = 1;
  cfg.lease_caps.max_contacts = 1;
  auto a = std::make_unique<Instance>(w.tx, cfg);
  std::vector<std::unique_ptr<Instance>> others;
  for (int i = 0; i < 5; ++i) others.push_back(make("o" + std::to_string(i)));
  // Only the last holds the tuple; with a 1-contact budget we usually miss.
  others.back()->out(Tuple{"needle"});
  auto r = run_rdp(*a, Pattern{"needle"});
  // Whether it hits depends on list order, but never more than one remote
  // may have been contacted.
  std::uint64_t requests = 0;
  for (auto& o : others) {
    requests += o->monitor().counters().remote_requests_served +
                o->monitor().counters().remote_serving_refused;
  }
  EXPECT_LE(requests, 1u);
  (void)r;
}

TEST_F(CoreFixture, EvalHaltedByShortLease) {
  auto a = std::make_unique<Instance>(
      w.tx, with_ttl(fast_config("a"), sim::seconds(1)));
  space::ActiveTuple at;
  at.add("slow");
  at.add([] { return tuples::Value(1); }, sim::seconds(10));
  EXPECT_EQ(a->eval(std::move(at)), Status::kOk);
  w.run_for(sim::seconds(12));
  EXPECT_EQ(a->local_space().count_matches(Pattern{"slow", any_int()}), 0u);
  EXPECT_EQ(a->evals().stats().halted, 1u);
}

TEST_F(CoreFixture, EvalProducesTupleWithinLease) {
  auto a = make("a");
  space::ActiveTuple at;
  at.add("fast");
  at.add([] { return tuples::Value(99); }, sim::milliseconds(10));
  EXPECT_EQ(a->eval(std::move(at)), Status::kOk);
  w.run_for(sim::milliseconds(100));
  EXPECT_EQ(a->local_space().count_matches(Pattern{"fast", any_int()}), 1u);
}

// ---------------- Visibility change (opportunism) ----------------

TEST_F(CoreFixture, LateArrivalSatisfiesBlockedOp) {
  // The §3.1 "model" behaviour: an instance that becomes visible during the
  // operation's lifetime participates.
  Config cfg = with_ttl(fast_config("a"), sim::seconds(20));
  cfg.propagate_to_late_arrivals = true;
  auto a = std::make_unique<Instance>(w.tx, cfg);
  std::optional<ReadResult> got;
  ASSERT_TRUE(a->rd(Pattern{"late"}, [&](auto r) { got = r; }));
  w.run_for(sim::seconds(1));
  EXPECT_FALSE(got.has_value());
  auto b = make("late-joiner");  // appears mid-operation
  b->out(Tuple{"late"});
  w.run_for(sim::seconds(2));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->source, b->node());
}

TEST_F(CoreFixture, PrototypeModeIgnoresLateArrivals) {
  // The paper's prototype deviation: only instances visible at the start
  // of the operation are included.
  Config cfg = with_ttl(fast_config("a"), sim::seconds(5));
  cfg.propagate_to_late_arrivals = false;
  auto a = std::make_unique<Instance>(w.tx, cfg);
  std::optional<ReadResult> got;
  bool fired = false;
  ASSERT_TRUE(a->rd(Pattern{"late"}, [&](auto r) {
    fired = true;
    got = r;
  }));
  w.run_for(sim::seconds(1));
  auto b = make("late-joiner");
  b->out(Tuple{"late"});
  w.run_for(sim::seconds(10));
  EXPECT_TRUE(fired);
  EXPECT_FALSE(got.has_value()) << "prototype mode must not see the joiner";
}

TEST_F(CoreFixture, DepartedInstanceDoesNotBreakOperation) {
  auto a = make("a");
  auto b = make("b");
  auto c = make("c");
  c->out(Tuple{"survivor"});
  // b vanishes mid-world; a's op should still find c's tuple.
  b.reset();
  auto r = run_rdp(*a, Pattern{"survivor"});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->source, c->node());
}

TEST_F(CoreFixture, ResponderListDropsNonResponders) {
  auto a = make("a");
  auto b = make("b");
  const sim::NodeId b_node = b->node();
  // Prime a's responder list.
  run_rdp(*a, Pattern{"warmup"});
  EXPECT_TRUE(a->responders().contains(b_node));
  b.reset();  // departs
  run_rdp(*a, Pattern{"anything"});
  w.run_for(sim::seconds(1));
  EXPECT_FALSE(a->responders().contains(b_node))
      << "non-responder must be removed from the list (§3.1.3)";
}

TEST_F(CoreFixture, IsolatedLogicalSpacesDiffer) {
  // Figure 1(c): B sees A and C; A and C see only B.
  w.net.set_radio_range(10.0);
  Config cfg;
  auto a = std::make_unique<Instance>(w.tx, fast_config("A"), nullptr,
                                      transport::NodeOptions{0, 0});
  auto b = std::make_unique<Instance>(w.tx, fast_config("B"), nullptr,
                                      transport::NodeOptions{8, 0});
  auto c = std::make_unique<Instance>(w.tx, fast_config("C"), nullptr,
                                      transport::NodeOptions{16, 0});
  ASSERT_TRUE(w.net.visible(a->node(), b->node()));
  ASSERT_TRUE(w.net.visible(b->node(), c->node()));
  ASSERT_FALSE(w.net.visible(a->node(), c->node()));

  a->out(Tuple{"at-a"});
  c->out(Tuple{"at-c"});

  // B's logical space contains both.
  EXPECT_TRUE(run_rdp(*b, Pattern{"at-a"}).has_value());
  EXPECT_TRUE(run_rdp(*b, Pattern{"at-c"}).has_value());
  // A's logical space does not contain C's tuple, and vice versa.
  EXPECT_FALSE(run_rdp(*a, Pattern{"at-c"}).has_value());
  EXPECT_FALSE(run_rdp(*c, Pattern{"at-a"}).has_value());
}

// ---------------- Directed remote operations (§2.4) ----------------

TEST_F(CoreFixture, OutAtPlacesTupleRemotely) {
  auto a = make("a");
  auto b = make("b");
  EXPECT_EQ(a->out_at(b->handle(), Tuple{"sent", 1}), Status::kOk);
  w.run_for(sim::seconds(1));
  EXPECT_EQ(b->local_space().count_matches(Pattern{"sent", any_int()}), 1u);
  EXPECT_EQ(a->local_space().count_matches(Pattern{"sent", any_int()}), 0u);
}

TEST_F(CoreFixture, OutAtUnreachableAbandons) {
  w.net.set_radio_range(5.0);
  auto a = std::make_unique<Instance>(w.tx, fast_config("a"), nullptr,
                                      transport::NodeOptions{0, 0});
  auto b = std::make_unique<Instance>(w.tx, fast_config("b"), nullptr,
                                      transport::NodeOptions{100, 0});
  EXPECT_EQ(a->out_at(b->handle(), Tuple{"lost"}, UnavailablePolicy::kAbandon),
            Status::kUnavailable);
  w.run_for(sim::seconds(1));
  EXPECT_EQ(b->local_space().count_matches(Pattern{"lost"}), 0u);
}

TEST_F(CoreFixture, OutAtUnreachableFallsBackLocal) {
  w.net.set_radio_range(5.0);
  auto a = std::make_unique<Instance>(w.tx, fast_config("a"), nullptr,
                                      transport::NodeOptions{0, 0});
  auto b = std::make_unique<Instance>(w.tx, fast_config("b"), nullptr,
                                      transport::NodeOptions{100, 0});
  EXPECT_EQ(a->out_at(b->handle(), Tuple{"kept"}, UnavailablePolicy::kLocal),
            Status::kOk);
  EXPECT_EQ(a->local_space().count_matches(Pattern{"kept"}), 1u);
}

TEST_F(CoreFixture, OutAtRouteDeliversWhenVisibleAgain) {
  w.net.set_radio_range(5.0);
  Config cfg = fast_config("a");
  cfg.lease_caps.default_ttl = sim::seconds(30);
  cfg.lease_caps.max_ttl = sim::seconds(30);
  auto a = std::make_unique<Instance>(w.tx, cfg, nullptr,
                                      transport::NodeOptions{0, 0});
  auto b = std::make_unique<Instance>(w.tx, fast_config("b"), nullptr,
                                      transport::NodeOptions{100, 0});
  EXPECT_EQ(a->out_at(b->handle(), Tuple{"routed"}, UnavailablePolicy::kRoute),
            Status::kQueued);
  w.run_for(sim::seconds(2));
  EXPECT_EQ(b->local_space().count_matches(Pattern{"routed"}), 0u);
  // b walks into range.
  w.net.set_position(b->node(), {3, 0});
  w.run_for(sim::seconds(2));
  EXPECT_EQ(b->local_space().count_matches(Pattern{"routed"}), 1u);
  EXPECT_EQ(a->router().pending(), 0u);
}

TEST_F(CoreFixture, OutToOriginReturnsToSource) {
  auto a = make("a");
  auto b = make("b");
  b->out(Tuple{"req", 1});
  auto r = run_inp(*a, Pattern{"req", any_int()});
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ(r->source, b->node());
  EXPECT_EQ(a->out_to_origin(*r, Tuple{"resp", 1}), Status::kOk);
  w.run_for(sim::seconds(1));
  EXPECT_EQ(b->local_space().count_matches(Pattern{"resp", any_int()}), 1u);
}

TEST_F(CoreFixture, DirectedRdReadsOnlyThatSpace) {
  auto a = make("a");
  auto b = make("b");
  auto c = make("c");
  c->out(Tuple{"elsewhere"});
  b->out(Tuple{"here"});
  std::optional<ReadResult> got;
  bool fired = false;
  ASSERT_TRUE(a->rdp_at(b->handle(), Pattern{"elsewhere"}, [&](auto r) {
    fired = true;
    got = r;
  }));
  w.run_for(sim::seconds(1));
  EXPECT_TRUE(fired);
  EXPECT_FALSE(got.has_value()) << "directed op must not propagate to c";

  std::optional<ReadResult> got2;
  ASSERT_TRUE(a->rdp_at(b->handle(), Pattern{"here"},
                        [&](auto r) { got2 = r; }));
  w.run_for(sim::seconds(1));
  ASSERT_TRUE(got2.has_value());
  EXPECT_EQ(got2->source, b->node());
}

TEST_F(CoreFixture, DirectedInTakesFromThatSpace) {
  auto a = make("a");
  auto b = make("b");
  std::optional<ReadResult> got;
  ASSERT_TRUE(a->in_at(b->handle(), Pattern{"job"}, [&](auto r) { got = r; }));
  w.run_for(sim::milliseconds(300));
  b->out(Tuple{"job"});
  w.run_for(sim::seconds(1));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(b->local_space().count_matches(Pattern{"job"}), 0u);
  EXPECT_EQ(b->local_space().tentative_count(), 0u);
}

// ---------------- Handles ----------------

TEST_F(CoreFixture, HandleTuplePublishedAndReadable) {
  auto a = make("alpha");
  auto b = make("beta");
  // a can read b's handle through the logical space.
  auto r = run_rdp(*a, space::handle_pattern());
  ASSERT_TRUE(r.has_value());
  auto h = space::parse_handle_tuple(r->tuple);
  ASSERT_TRUE(h.has_value());
}

TEST_F(CoreFixture, EnumerateHandlesFindsAllVisible) {
  auto a = make("alpha");
  auto b = make("beta");
  auto c = make("gamma");
  std::vector<space::SpaceHandle> handles;
  a->enumerate_handles([&](auto hs) { handles = hs; });
  w.run_for(sim::seconds(2));
  ASSERT_EQ(handles.size(), 3u);
  std::set<std::string> names;
  for (const auto& h : handles) names.insert(h.name);
  EXPECT_TRUE(names.count("alpha"));
  EXPECT_TRUE(names.count("beta"));
  EXPECT_TRUE(names.count("gamma"));
}

TEST_F(CoreFixture, HandleCarriesPersistenceFlag) {
  Config cfg = fast_config("store");
  cfg.persistent_space = true;
  auto a = std::make_unique<Instance>(w.tx, cfg);
  auto b = make("b");
  // Key the pattern on the space name so b's own handle does not match.
  Pattern p{space::kHandleTag, any_int(), "store", tuples::any_bool()};
  auto r = run_rdp(*b, p);
  ASSERT_TRUE(r.has_value());
  auto h = space::parse_handle_tuple(r->tuple);
  ASSERT_TRUE(h.has_value());
  EXPECT_TRUE(h->persistent);
  EXPECT_EQ(h->name, "store");
}

// ---------------- Responder cache behaviour ----------------

TEST_F(CoreFixture, SecondOpSkipsMulticast) {
  auto a = make("a");
  auto b = make("b");
  b->out(Tuple{"x", 1});
  b->out(Tuple{"x", 2});
  run_rdp(*a, Pattern{"x", any_int()});
  const auto probes_after_first = a->discovery().stats().probes_sent;
  EXPECT_GE(probes_after_first, 1u);
  run_rdp(*a, Pattern{"x", any_int()});
  EXPECT_EQ(a->discovery().stats().probes_sent, probes_after_first)
      << "cached responder list should avoid a second multicast";
}

TEST_F(CoreFixture, StabilityOrderingPrefersReliablePeers) {
  net::ResponderCache cache(net::ResponderCache::Ordering::kByStability);
  cache.add(1);
  cache.add(2);
  cache.record_failure(1);
  cache.record_failure(1);
  cache.record_success(1);
  cache.record_success(2);
  cache.record_success(2);
  auto order = cache.contact_order();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2u);
}

// ---------------- Determinism ----------------

TEST_F(CoreFixture, WholeScenarioIsDeterministic) {
  auto run_scenario = [](std::uint64_t seed) {
    World w2(seed);
    Config ca = fast_config("a"), cb = fast_config("b");
    Instance a(w2.tx, ca), b(w2.tx, cb);
    b.out(Tuple{"x", 1});
    std::int64_t result = -1;
    a.inp(Pattern{"x", any_int()},
          [&](auto r) { result = r ? r->tuple[1].as_int() : -2; });
    w2.run_for(sim::seconds(5));
    return std::make_pair(result, w2.net.stats().bytes_sent);
  };
  EXPECT_EQ(run_scenario(11), run_scenario(11));
}


// ---------------- Determinism regressions ----------------

// DeferredRouter teardown walks the route table cancelling retry timers;
// the table is ordered now, and no cancelled retry may fire afterwards.
TEST(DeferredRouterTest, TeardownCancelsRetryTimers) {
  World w;
  int attempts = 0;
  {
    DeferredRouter r(
        w.queue, sim::milliseconds(10),
        [&](sim::NodeId, const Tuple&, std::uint64_t, sim::Duration) {
          ++attempts;
        });
    for (std::int64_t i = 0; i < 4; ++i) {
      r.enqueue(99, Tuple{"x", i}, w.queue.now() + sim::seconds(5));
    }
    EXPECT_EQ(attempts, 4);  // enqueue tries once immediately
  }
  w.run_all();
  EXPECT_EQ(attempts, 4);  // no retry timer survived the router
}
}  // namespace
}  // namespace tiamat::core
