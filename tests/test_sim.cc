// Unit tests for the simulator substrate: event queue, RNG, network,
// mobility, topology helpers and statistics accumulators.

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/mobility.h"
#include "sim/network.h"
#include "sim/random.h"
#include "sim/stats.h"
#include "sim/topology.h"
#include "tests/test_util.h"

namespace tiamat::sim {
namespace {

// ---------------- EventQueue ----------------

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, SameInstantFiresInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  q.run_until_idle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleInPastClampsToNow) {
  EventQueue q;
  q.schedule_at(100, [] {});
  q.run_until_idle();
  EXPECT_EQ(q.now(), 100);
  bool fired = false;
  q.schedule_at(50, [&] { fired = true; });
  q.run_until_idle();
  EXPECT_TRUE(fired);
  EXPECT_EQ(q.now(), 100);  // did not go backwards
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  EventId id = q.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  q.run_until_idle();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireReturnsFalse) {
  EventQueue q;
  EventId id = q.schedule_at(10, [] {});
  q.run_until_idle();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, DoubleCancelReturnsFalse) {
  EventQueue q;
  EventId id = q.schedule_at(10, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelBogusIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
  EXPECT_FALSE(q.cancel(kInvalidEvent));
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10, [&] { ++fired; });
  q.schedule_at(20, [&] { ++fired; });
  q.schedule_at(30, [&] { ++fired; });
  EXPECT_EQ(q.run_until(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 20);
  q.run_until_idle();
  EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunUntilAdvancesClockEvenWhenEmpty) {
  EventQueue q;
  q.run_until(500);
  EXPECT_EQ(q.now(), 500);
}

TEST(EventQueue, EventsScheduledWhileRunningFire) {
  EventQueue q;
  int count = 0;
  q.schedule_at(10, [&] {
    ++count;
    q.schedule_after(5, [&] { ++count; });
  });
  q.run_until_idle();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(q.now(), 15);
}

TEST(EventQueue, PendingCountTracksLiveEvents) {
  EventQueue q;
  EventId a = q.schedule_at(10, [] {});
  q.schedule_at(20, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.pending(), 1u);
  q.run_until_idle();
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_TRUE(q.idle());
}

TEST(EventQueue, StepFiresExactlyOne) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10, [&] { ++fired; });
  q.schedule_at(20, [&] { ++fired; });
  EXPECT_TRUE(q.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
}

// ---------------- Rng ----------------

TEST(Rng, SameSeedSameSequence) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(0, 1000000), b.uniform(0, 1000000));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(7), b(8);
  bool any_diff = false;
  for (int i = 0; i < 20; ++i) {
    if (a.uniform(0, 1 << 30) != b.uniform(0, 1 << 30)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformStaysInRange) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    auto v = r.uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, IndexStaysInRange) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.index(7), 7u);
}

TEST(Rng, ChanceExtremes) {
  Rng r(1);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
}

TEST(Rng, ForkIsIndependentOfLaterParentDraws) {
  Rng a(7);
  Rng fork1 = a.fork();
  std::vector<std::int64_t> seq1;
  for (int i = 0; i < 10; ++i) seq1.push_back(fork1.uniform(0, 1 << 30));

  Rng b(7);
  Rng fork2 = b.fork();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fork2.uniform(0, 1 << 30), seq1[i]);
  }
}

// ---------------- Network ----------------

using tiamat::testing::World;

TEST(Network, EveryoneVisibleWithoutRadioRange) {
  World w;
  auto a = w.net.add_node({0, 0});
  auto b = w.net.add_node({1000, 1000});
  EXPECT_TRUE(w.net.visible(a, b));
  EXPECT_TRUE(w.net.visible(b, a));
}

TEST(Network, RadioRangeLimitsVisibility) {
  World w;
  w.net.set_radio_range(10.0);
  auto a = w.net.add_node({0, 0});
  auto b = w.net.add_node({5, 0});
  auto c = w.net.add_node({50, 0});
  EXPECT_TRUE(w.net.visible(a, b));
  EXPECT_FALSE(w.net.visible(a, c));
  EXPECT_FALSE(w.net.visible(c, a));
}

TEST(Network, LinkOverrideBeatsRange) {
  World w;
  w.net.set_radio_range(10.0);
  auto a = w.net.add_node({0, 0});
  auto b = w.net.add_node({500, 0});
  EXPECT_FALSE(w.net.visible(a, b));
  w.net.set_link(a, b, true);
  EXPECT_TRUE(w.net.visible(a, b));
  w.net.set_link(a, b, false);
  EXPECT_FALSE(w.net.visible(a, b));
  w.net.clear_link_override(a, b);
  EXPECT_FALSE(w.net.visible(a, b));  // back to range-derived
}

TEST(Network, OfflineNodeInvisible) {
  World w;
  auto a = w.net.add_node();
  auto b = w.net.add_node();
  w.net.set_online(b, false);
  EXPECT_FALSE(w.net.visible(a, b));
  w.net.set_online(b, true);
  EXPECT_TRUE(w.net.visible(a, b));
}

TEST(Network, UnicastDeliversWithLatency) {
  World w;
  auto a = w.net.add_node();
  auto b = w.net.add_node();
  sim::Time delivered_at = -1;
  w.net.bind(b, [&](NodeId from, const Payload& p) {
    EXPECT_EQ(from, a);
    EXPECT_EQ(p.size(), 3u);
    delivered_at = w.queue.now();
  });
  w.net.send(a, b, Payload{1, 2, 3});
  w.run_all();
  EXPECT_EQ(delivered_at, 2 * kMillisecond);
  EXPECT_EQ(w.net.stats().deliveries, 1u);
}

TEST(Network, SendToInvisibleNodeDrops) {
  World w;
  w.net.set_radio_range(10.0);
  auto a = w.net.add_node({0, 0});
  auto b = w.net.add_node({100, 0});
  bool got = false;
  w.net.bind(b, [&](NodeId, const Payload&) { got = true; });
  w.net.send(a, b, Payload{1});
  w.run_all();
  EXPECT_FALSE(got);
  EXPECT_EQ(w.net.stats().drops_invisible, 1u);
}

TEST(Network, MovingApartMidFlightDropsPacket) {
  World w;
  w.net.set_radio_range(10.0);
  auto a = w.net.add_node({0, 0});
  auto b = w.net.add_node({5, 0});
  bool got = false;
  w.net.bind(b, [&](NodeId, const Payload&) { got = true; });
  w.net.send(a, b, Payload{1});
  w.net.set_position(b, {100, 0});  // departs before delivery
  w.run_all();
  EXPECT_FALSE(got);
  EXPECT_EQ(w.net.stats().drops_invisible, 1u);
}

TEST(Network, RemovedNodeDropsInFlight) {
  World w;
  auto a = w.net.add_node();
  auto b = w.net.add_node();
  w.net.bind(b, [&](NodeId, const Payload&) { FAIL(); });
  w.net.send(a, b, Payload{1});
  w.net.remove_node(b);
  w.run_all();
  EXPECT_EQ(w.net.stats().drops_dead, 1u);
}

// Crash/restart semantics for the chaos harness: re-adding a removed node
// id must start from a clean state — no inherited link overrides, groups,
// handler, or in-flight traffic addressed to the previous incarnation.
TEST(Network, ReAddedNodeStartsFromCleanState) {
  World w;
  auto a = w.net.add_node({0, 0});
  auto b = w.net.add_node({5, 0});
  const GroupId g = 3;
  w.net.join_group(b, g);
  w.net.set_link(a, b, false);  // scripted partition
  EXPECT_FALSE(w.net.visible(a, b));

  w.net.remove_node(b);
  EXPECT_TRUE(w.net.add_node_at(b, {7, 0}));
  // Clean slate: the old partition override and group membership are gone.
  EXPECT_TRUE(w.net.visible(a, b));
  int b_got = 0;
  w.net.bind(b, [&](NodeId, const Payload&) { ++b_got; });
  w.net.multicast(a, g, Payload{1});
  w.run_all();
  EXPECT_EQ(b_got, 0) << "restarted node inherited group membership";
  w.net.send(a, b, Payload{2});
  w.run_all();
  EXPECT_EQ(b_got, 1);
}

TEST(Network, InFlightPacketNeverReachesRestartedIncarnation) {
  World w;
  auto a = w.net.add_node();
  auto b = w.net.add_node();
  w.net.send(a, b, Payload{1});  // in flight to the first incarnation
  w.net.remove_node(b);
  EXPECT_TRUE(w.net.add_node_at(b));
  bool got = false;
  w.net.bind(b, [&](NodeId, const Payload&) { got = true; });
  w.run_all();
  EXPECT_FALSE(got) << "restarted node received its past life's packet";
  EXPECT_EQ(w.net.stats().drops_dead, 1u);
}

TEST(Network, AddNodeAtRejectsLiveAndUnknownIds) {
  World w;
  auto a = w.net.add_node();
  EXPECT_FALSE(w.net.add_node_at(a));      // still present
  EXPECT_FALSE(w.net.add_node_at(a + 7));  // never allocated
  w.net.remove_node(a);
  EXPECT_TRUE(w.net.add_node_at(a));
  EXPECT_TRUE(w.net.node_exists(a));
  // Fresh ids keep advancing past re-added ones.
  auto c = w.net.add_node();
  EXPECT_GT(c, a);
}

TEST(Network, MulticastReachesVisibleMembersOnly) {
  World w;
  w.net.set_radio_range(10.0);
  auto a = w.net.add_node({0, 0});
  auto b = w.net.add_node({5, 0});   // visible member
  auto c = w.net.add_node({50, 0});  // invisible member
  auto d = w.net.add_node({5, 5});   // visible non-member
  const GroupId g = 9;
  w.net.join_group(b, g);
  w.net.join_group(c, g);
  int b_got = 0, c_got = 0, d_got = 0;
  w.net.bind(b, [&](NodeId, const Payload&) { ++b_got; });
  w.net.bind(c, [&](NodeId, const Payload&) { ++c_got; });
  w.net.bind(d, [&](NodeId, const Payload&) { ++d_got; });
  w.net.multicast(a, g, Payload{1});
  w.run_all();
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(c_got, 0);
  EXPECT_EQ(d_got, 0);
}

TEST(Network, SenderDoesNotReceiveOwnMulticast) {
  World w;
  auto a = w.net.add_node();
  w.net.join_group(a, 3);
  int got = 0;
  w.net.bind(a, [&](NodeId, const Payload&) { ++got; });
  w.net.multicast(a, 3, Payload{1});
  w.run_all();
  EXPECT_EQ(got, 0);
}

TEST(Network, LossDropsSomePackets) {
  LinkModel m = World::quiet_links();
  m.loss = 0.5;
  World w(7, m);
  auto a = w.net.add_node();
  auto b = w.net.add_node();
  int got = 0;
  w.net.bind(b, [&](NodeId, const Payload&) { ++got; });
  for (int i = 0; i < 200; ++i) w.net.send(a, b, Payload{1});
  w.run_all();
  EXPECT_GT(got, 50);
  EXPECT_LT(got, 150);
  EXPECT_EQ(w.net.stats().drops_loss + static_cast<std::uint64_t>(got), 200u);
}

TEST(Network, PayloadSizeAddsLatency) {
  LinkModel m = World::quiet_links();
  m.per_kilobyte = 1000;  // 1 ms per KiB
  World w(1, m);
  auto a = w.net.add_node();
  auto b = w.net.add_node();
  sim::Time at = 0;
  w.net.bind(b, [&](NodeId, const Payload&) { at = w.queue.now(); });
  w.net.send(a, b, Payload(2048, 0));
  w.run_all();
  EXPECT_EQ(at, 2 * kMillisecond + 2000);
}

TEST(Network, VisibleFromListsPeersInIdOrder) {
  World w;
  auto a = w.net.add_node();
  auto b = w.net.add_node();
  auto c = w.net.add_node();
  auto vis = w.net.visible_from(a);
  ASSERT_EQ(vis.size(), 2u);
  EXPECT_EQ(vis[0], b);
  EXPECT_EQ(vis[1], c);
}

TEST(Network, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    LinkModel m;
    m.jitter = 1000;
    m.loss = 0.1;
    World w(seed, m);
    auto a = w.net.add_node();
    auto b = w.net.add_node();
    std::vector<sim::Time> times;
    w.net.bind(b, [&](NodeId, const Payload&) { times.push_back(w.queue.now()); });
    for (int i = 0; i < 50; ++i) w.net.send(a, b, Payload{std::uint8_t(i)});
    w.run_all();
    return times;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

// ---------------- Topology ----------------

TEST(Topology, CliqueFullyConnected) {
  World w;
  auto ids = make_clique(w.net, 5);
  for (auto a : ids) {
    for (auto b : ids) {
      if (a != b) EXPECT_TRUE(w.net.visible(a, b));
    }
  }
  EXPECT_EQ(connected_components(w.net, ids), 1u);
}

TEST(Topology, LineOnlyAdjacentVisible) {
  World w;
  auto ids = make_line(w.net, 5, 10.0);
  EXPECT_TRUE(w.net.visible(ids[0], ids[1]));
  EXPECT_FALSE(w.net.visible(ids[0], ids[2]));
  EXPECT_EQ(connected_components(w.net, ids), 1u);
}

TEST(Topology, GridFourNeighbourhood) {
  World w;
  auto ids = make_grid(w.net, 3, 3, 10.0);
  // centre node sees exactly 4 neighbours
  auto centre = ids[4];
  EXPECT_EQ(w.net.visible_from(centre).size(), 4u);
  EXPECT_EQ(connected_components(w.net, ids), 1u);
}

TEST(Topology, ComponentsCountsPartitions) {
  World w;
  w.net.set_radio_range(5.0);
  auto a = w.net.add_node({0, 0});
  auto b = w.net.add_node({1, 0});
  auto c = w.net.add_node({100, 0});
  EXPECT_EQ(connected_components(w.net, {a, b, c}), 2u);
}

// ---------------- Mobility ----------------

TEST(RandomWaypointTest, NodesStayInArenaAndMove) {
  World w;
  RandomWaypointParams p;
  p.arena_w = 100;
  p.arena_h = 100;
  p.min_speed = 50;
  p.max_speed = 100;
  RandomWaypoint rw(w.net, w.rng, p);
  auto a = w.net.add_node({50, 50});
  rw.add(a);
  rw.start();
  Position start = w.net.position(a);
  w.run_for(seconds(5));
  rw.stop();
  Position end = w.net.position(a);
  EXPECT_TRUE(end.x >= 0 && end.x <= 100);
  EXPECT_TRUE(end.y >= 0 && end.y <= 100);
  EXPECT_TRUE(distance(start, end) > 0.0 || true);  // moved (or returned)
  w.run_all();  // no stray timers
}

TEST(ChurnTest, TogglesNodesButKeepsMinimumOnline) {
  World w;
  ChurnParams p;
  p.interval = milliseconds(10);
  p.leave_probability = 1.0;
  p.min_online = 1;
  ChurnProcess churn(w.net, w.rng, p);
  std::vector<NodeId> nodes;
  for (int i = 0; i < 4; ++i) nodes.push_back(w.net.add_node());
  for (auto n : nodes) churn.manage(n);
  churn.start();
  w.run_for(seconds(2));
  churn.stop();
  std::size_t online = 0;
  for (auto n : nodes) {
    if (w.net.online(n)) ++online;
  }
  EXPECT_GE(online, 1u);
  EXPECT_GT(churn.transitions(), 0u);
  w.run_all();
}

// ---------------- Stats ----------------

TEST(Stats, SummaryBasics) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
}

TEST(Stats, SummaryEmptySafe) {
  Summary s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.median(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.percentile(95), 95.05, 0.1);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
}

TEST(Stats, RateCounter) {
  RateCounter r;
  r.success();
  r.success();
  r.failure();
  EXPECT_EQ(r.total(), 3u);
  EXPECT_NEAR(r.rate(), 2.0 / 3.0, 1e-9);
}


// ---------------- Determinism regressions ----------------

// connected_components used to seed each BFS from *unvisited.begin() of an
// unordered_set; it now scans the caller's vector, so the answer (and the
// traversal) cannot depend on hash order or enumeration order.
TEST(Topology, ComponentsIndependentOfEnumerationOrder) {
  World w;
  w.net.set_radio_range(5.0);
  std::vector<NodeId> ids;
  ids.push_back(w.net.add_node({0, 0}));
  ids.push_back(w.net.add_node({1, 0}));
  ids.push_back(w.net.add_node({50, 0}));
  ids.push_back(w.net.add_node({100, 0}));
  ids.push_back(w.net.add_node({101, 0}));
  ids.push_back(w.net.add_node({102, 0}));
  EXPECT_EQ(connected_components(w.net, ids), 3u);
  std::vector<NodeId> rev(ids.rbegin(), ids.rend());
  EXPECT_EQ(connected_components(w.net, rev), 3u);
}

// RandomWaypoint::tick consumes rng draws per node; the state table is
// ordered now, so identically-seeded runs move every node identically.
TEST(RandomWaypointTest, TicksAreSeedDeterministic) {
  auto run = [](std::uint64_t seed) {
    World w(seed);
    RandomWaypointParams p;
    p.arena_w = 100;
    p.arena_h = 100;
    p.min_speed = 10;
    p.max_speed = 20;
    RandomWaypoint rw(w.net, w.rng, p);
    std::vector<NodeId> ids;
    for (int i = 0; i < 6; ++i) {
      NodeId n = w.net.add_node({static_cast<double>(i) * 10.0, 0});
      ids.push_back(n);
      rw.add(n);
    }
    rw.start();
    w.run_for(seconds(3));
    rw.stop();
    std::vector<std::pair<double, double>> pos;
    for (NodeId n : ids) {
      Position at = w.net.position(n);
      pos.emplace_back(at.x, at.y);
    }
    w.run_all();
    return pos;
  };
  EXPECT_EQ(run(9), run(9));
}
}  // namespace
}  // namespace tiamat::sim
