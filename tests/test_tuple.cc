// Unit + property tests for values, tuples, patterns, codec and the index.

#include <gtest/gtest.h>

#include "sim/random.h"
#include "tuple/codec.h"
#include "tuple/index.h"
#include "tuple/pattern.h"
#include "tuple/tuple.h"
#include "tuple/value.h"

namespace tiamat::tuples {
namespace {

// ---------------- Value ----------------

TEST(Value, TypesAndAccessors) {
  EXPECT_TRUE(Value(std::int64_t{5}).is_int());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value("hi").is_string());
  EXPECT_TRUE(Value(Blob{1, 2}).is_blob());
  EXPECT_EQ(Value(7).as_int(), 7);
  EXPECT_EQ(Value(2.5).as_double(), 2.5);
  EXPECT_EQ(Value("hi").as_string(), "hi");
  EXPECT_EQ(Value(Blob{1, 2}).as_blob(), (Blob{1, 2}));
}

TEST(Value, EqualityIsTypeAware) {
  EXPECT_NE(Value(1), Value(1.0));  // int vs double
  EXPECT_NE(Value(true), Value(1));
  EXPECT_EQ(Value("a"), Value(std::string("a")));
}

TEST(Value, WrongAccessorThrows) {
  EXPECT_THROW(Value("s").as_int(), std::bad_variant_access);
  EXPECT_THROW(Value(1).as_string(), std::bad_variant_access);
}

TEST(Value, HashEqualValuesAgree) {
  EXPECT_EQ(Value("abc").hash(), Value("abc").hash());
  EXPECT_EQ(Value(42).hash(), Value(42).hash());
  EXPECT_NE(Value(42).hash(), Value(43).hash());
}

TEST(Value, FootprintTracksSize) {
  EXPECT_EQ(Value(1).footprint(), 8u);
  EXPECT_GT(Value(std::string(100, 'x')).footprint(), 100u);
}

TEST(Value, ToString) {
  EXPECT_EQ(Value(5).to_string(), "5");
  EXPECT_EQ(Value("x").to_string(), "\"x\"");
  EXPECT_EQ(Value(true).to_string(), "true");
}

// ---------------- Tuple ----------------

TEST(TupleTest, BasicConstructionAndAccess) {
  Tuple t{"req", 42, 3.5, true};
  EXPECT_EQ(t.arity(), 4u);
  EXPECT_EQ(t[0].as_string(), "req");
  EXPECT_EQ(t[1].as_int(), 42);
  EXPECT_EQ(t.at(2).as_double(), 3.5);
  EXPECT_TRUE(t[3].as_bool());
}

TEST(TupleTest, EqualityAndOrdering) {
  EXPECT_EQ((Tuple{"a", 1}), (Tuple{"a", 1}));
  EXPECT_NE((Tuple{"a", 1}), (Tuple{"a", 2}));
  EXPECT_NE((Tuple{"a"}), (Tuple{"a", 1}));
  EXPECT_LT((Tuple{1}), (Tuple{2}));
}

TEST(TupleTest, ToString) {
  EXPECT_EQ((Tuple{"a", 1}).to_string(), "(\"a\", 1)");
  EXPECT_EQ(Tuple{}.to_string(), "()");
}

TEST(TupleTest, HashConsistency) {
  EXPECT_EQ((Tuple{"a", 1}).hash(), (Tuple{"a", 1}).hash());
  EXPECT_NE((Tuple{"a", 1}).hash(), (Tuple{"a", 2}).hash());
}

// ---------------- Pattern matching ----------------

TEST(PatternTest, ActualsMatchExactly) {
  Pattern p{"req", 42};
  EXPECT_TRUE(p.matches(Tuple{"req", 42}));
  EXPECT_FALSE(p.matches(Tuple{"req", 43}));
  EXPECT_FALSE(p.matches(Tuple{"resp", 42}));
}

TEST(PatternTest, ArityMustAgree) {
  Pattern p{"req"};
  EXPECT_FALSE(p.matches(Tuple{"req", 42}));
  EXPECT_TRUE(p.matches(Tuple{"req"}));
  EXPECT_TRUE(Pattern{}.matches(Tuple{}));
  EXPECT_FALSE(Pattern{}.matches(Tuple{1}));
}

TEST(PatternTest, FormalsMatchByType) {
  Pattern p{"req", any_int()};
  EXPECT_TRUE(p.matches(Tuple{"req", 1}));
  EXPECT_TRUE(p.matches(Tuple{"req", -100}));
  EXPECT_FALSE(p.matches(Tuple{"req", "str"}));
  EXPECT_FALSE(p.matches(Tuple{"req", 1.0}));
}

TEST(PatternTest, WildcardMatchesAnything) {
  Pattern p{any(), any()};
  EXPECT_TRUE(p.matches(Tuple{1, "x"}));
  EXPECT_TRUE(p.matches(Tuple{true, Blob{}}));
}

TEST(PatternTest, RangeMatchesNumerics) {
  Pattern p{Field::range(10, 20)};
  EXPECT_TRUE(p.matches(Tuple{15}));
  EXPECT_TRUE(p.matches(Tuple{10}));
  EXPECT_TRUE(p.matches(Tuple{20}));
  EXPECT_TRUE(p.matches(Tuple{12.5}));
  EXPECT_FALSE(p.matches(Tuple{9}));
  EXPECT_FALSE(p.matches(Tuple{21.0}));
  EXPECT_FALSE(p.matches(Tuple{"15"}));
}

TEST(PatternTest, PrefixMatchesStrings) {
  Pattern p{Field::prefix("http://")};
  EXPECT_TRUE(p.matches(Tuple{"http://example.org"}));
  EXPECT_TRUE(p.matches(Tuple{"http://"}));
  EXPECT_FALSE(p.matches(Tuple{"https://example.org"}));
  EXPECT_FALSE(p.matches(Tuple{42}));
}

TEST(PatternTest, ExactlyMatchesOnlyThatTuple) {
  Tuple t{"a", 1, 2.0};
  Pattern p = Pattern::exactly(t);
  EXPECT_TRUE(p.matches(t));
  EXPECT_FALSE(p.matches(Tuple{"a", 1, 2.5}));
}

TEST(PatternTest, KeyExtractsLeadingActual) {
  EXPECT_EQ(*(Pattern{"req", any()}.key()), Value("req"));
  EXPECT_FALSE((Pattern{any(), "req"}.key()).has_value());
  EXPECT_FALSE(Pattern{}.key().has_value());
}

// Parameterized sweep: every field kind against every value type.
struct FieldCase {
  Field field;
  Value value;
  bool expect;
};

class FieldMatch : public ::testing::TestWithParam<FieldCase> {};

TEST_P(FieldMatch, Matches) {
  const auto& c = GetParam();
  EXPECT_EQ(c.field.matches(c.value), c.expect);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, FieldMatch,
    ::testing::Values(
        FieldCase{Field(5), Value(5), true},
        FieldCase{Field(5), Value(6), false},
        FieldCase{Field("a"), Value("a"), true},
        FieldCase{Field(1.5), Value(1.5), true},
        FieldCase{Field(true), Value(false), false},
        FieldCase{any_int(), Value(0), true},
        FieldCase{any_int(), Value(0.0), false},
        FieldCase{any_double(), Value(0.5), true},
        FieldCase{any_string(), Value(""), true},
        FieldCase{any_blob(), Value(Blob{}), true},
        FieldCase{any_bool(), Value(false), true},
        FieldCase{any(), Value(Blob{9}), true},
        FieldCase{Field::range(0, 1), Value(0.5), true},
        FieldCase{Field::range(0, 1), Value(2), false},
        FieldCase{Field::prefix("ab"), Value("abc"), true},
        FieldCase{Field::prefix("ab"), Value("ba"), false}));

// ---------------- Codec ----------------

TEST(Codec, VarintRoundTrip) {
  Writer w;
  std::vector<std::uint64_t> vals{0, 1, 127, 128, 300, 1ull << 32,
                                  UINT64_MAX};
  for (auto v : vals) w.varint(v);
  Reader r(w.data());
  for (auto v : vals) EXPECT_EQ(r.varint(), v);
  EXPECT_TRUE(r.done());
}

TEST(Codec, ScalarRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(-1.25e10);
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), -1.25e10);
}

TEST(Codec, TupleRoundTrip) {
  Tuple t{"req", 42, 3.5, true, Blob{1, 2, 3}};
  auto bytes = encode_tuple(t);
  auto back = try_decode_tuple(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, t);
}

TEST(Codec, EmptyTupleRoundTrip) {
  auto back = try_decode_tuple(encode_tuple(Tuple{}));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->arity(), 0u);
}

TEST(Codec, PatternRoundTrip) {
  Pattern p{"req", any_int(), any(), Field::range(1, 9),
            Field::prefix("http")};
  auto back = try_decode_pattern(encode_pattern(p));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, p);
  // Behavioural equivalence too.
  Tuple yes{"req", 5, "anything", 3, "http://x"};
  Tuple no{"req", 5, "anything", 30, "http://x"};
  EXPECT_TRUE(back->matches(yes));
  EXPECT_FALSE(back->matches(no));
}

TEST(Codec, TruncatedInputRejected) {
  auto bytes = encode_tuple(Tuple{"hello", 42});
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    Bytes prefix(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(try_decode_tuple(prefix).has_value()) << "cut=" << cut;
  }
}

TEST(Codec, TrailingGarbageRejected) {
  auto bytes = encode_tuple(Tuple{1});
  bytes.push_back(0);
  EXPECT_FALSE(try_decode_tuple(bytes).has_value());
}

TEST(Codec, BadTagRejected) {
  Bytes b{1 /*arity*/, 0xEE /*bogus type tag*/};
  EXPECT_FALSE(try_decode_tuple(b).has_value());
}

TEST(Codec, HugeArityClaimRejected) {
  Writer w;
  w.varint(1'000'000);  // claims a million fields with no data
  EXPECT_FALSE(try_decode_tuple(w.data()).has_value());
}

// Property: random tuples always round-trip.
class CodecFuzz : public ::testing::TestWithParam<int> {};

Tuple random_tuple(sim::Rng& rng, int max_arity = 6) {
  std::vector<Value> fields;
  int n = static_cast<int>(rng.uniform(0, max_arity));
  for (int i = 0; i < n; ++i) {
    switch (rng.uniform(0, 4)) {
      case 0:
        fields.emplace_back(rng.uniform(-1000000, 1000000));
        break;
      case 1:
        fields.emplace_back(rng.real(-1e6, 1e6));
        break;
      case 2:
        fields.emplace_back(rng.chance(0.5));
        break;
      case 3: {
        std::string s;
        int len = static_cast<int>(rng.uniform(0, 32));
        for (int k = 0; k < len; ++k) {
          s.push_back(static_cast<char>(rng.uniform(32, 126)));
        }
        fields.emplace_back(std::move(s));
        break;
      }
      default: {
        Blob b;
        int len = static_cast<int>(rng.uniform(0, 64));
        for (int k = 0; k < len; ++k) {
          b.push_back(static_cast<std::uint8_t>(rng.uniform(0, 255)));
        }
        fields.emplace_back(std::move(b));
        break;
      }
    }
  }
  return Tuple(std::move(fields));
}

TEST_P(CodecFuzz, RandomTuplesRoundTrip) {
  sim::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Tuple t = random_tuple(rng);
    auto back = try_decode_tuple(encode_tuple(t));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, t);
    EXPECT_EQ(back->hash(), t.hash());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Range(1, 9));

// ---------------- Index ----------------

TEST(Index, InsertFindErase) {
  TupleIndex idx;
  idx.insert(1, Tuple{"a", 1});
  idx.insert(2, Tuple{"a", 2});
  idx.insert(3, Tuple{"b", 1});
  EXPECT_EQ(idx.size(), 3u);
  auto ids = idx.find_matches(Pattern{"a", any_int()});
  EXPECT_EQ(ids, (std::vector<TupleId>{1, 2}));
  auto t = idx.erase(1);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, (Tuple{"a", 1}));
  EXPECT_EQ(idx.find_matches(Pattern{"a", any_int()}).size(), 1u);
}

TEST(Index, KeyedLookupIgnoresOtherKeys) {
  TupleIndex idx;
  for (int i = 0; i < 100; ++i) {
    idx.insert(static_cast<TupleId>(i + 1), Tuple{"k" + std::to_string(i), i});
  }
  auto ids = idx.find_matches(Pattern{"k42", any_int()});
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(*idx.get(ids[0]), (Tuple{"k42", 42}));
}

TEST(Index, UnkeyedPatternScansArity) {
  TupleIndex idx;
  idx.insert(1, Tuple{"x", 1});
  idx.insert(2, Tuple{"y", 2});
  idx.insert(3, Tuple{"z"});  // different arity
  auto ids = idx.find_matches(Pattern{any_string(), any_int()});
  EXPECT_EQ(ids.size(), 2u);
}

TEST(Index, NullaryTuples) {
  TupleIndex idx;
  idx.insert(1, Tuple{});
  EXPECT_EQ(idx.find_matches(Pattern{}).size(), 1u);
  EXPECT_TRUE(idx.erase(1).has_value());
  EXPECT_TRUE(idx.empty());
}

TEST(Index, LimitStopsEarly) {
  TupleIndex idx;
  for (int i = 0; i < 50; ++i) {
    idx.insert(static_cast<TupleId>(i + 1), Tuple{"k", i});
  }
  EXPECT_EQ(idx.find_matches(Pattern{"k", any_int()}, 5).size(), 5u);
}

TEST(Index, FootprintTracksContents) {
  TupleIndex idx;
  EXPECT_EQ(idx.total_footprint(), 0u);
  idx.insert(1, Tuple{std::string(100, 'x')});
  std::size_t f = idx.total_footprint();
  EXPECT_GT(f, 100u);
  idx.insert(2, Tuple{1});
  EXPECT_GT(idx.total_footprint(), f);
  idx.erase(1);
  idx.erase(2);
  EXPECT_EQ(idx.total_footprint(), 0u);
}

TEST(Index, EraseMissingReturnsNullopt) {
  TupleIndex idx;
  EXPECT_FALSE(idx.erase(99).has_value());
}

TEST(Index, ForEachVisitsAllInIdOrder) {
  TupleIndex idx;
  idx.insert(3, Tuple{"c"});
  idx.insert(1, Tuple{"a"});
  idx.insert(2, Tuple{"b"});
  std::vector<TupleId> seen;
  idx.for_each([&](TupleId id, const Tuple&) { seen.push_back(id); });
  EXPECT_EQ(seen, (std::vector<TupleId>{1, 2, 3}));
}

}  // namespace
}  // namespace tiamat::tuples
