// Corruption-trap tests for the invariant auditor (DESIGN.md §9).
//
// Compiled only under the audit preset (TIAMAT_AUDIT). Each test breaks a
// structural invariant through the audit_corrupt_* hooks and asserts that
// the next checkpoint traps with the expected diagnostic: first through an
// installed failure handler (so the trap's content can be inspected), then
// once through the default dump-and-abort path as a death test.

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "audit/audit.h"
#include "space/local_space.h"
#include "tuple/index.h"
#include "tuple/tuple.h"
#include "tuple/waiter_index.h"

#include "tests/test_util.h"

namespace tiamat {
namespace {

using tiamat::testing::World;
using space::LocalTupleSpace;
using tuples::CompiledPattern;
using tuples::Pattern;
using tuples::Tuple;
using tuples::TupleId;
using tuples::TupleIndex;
using tuples::WaiterIndex;

/// Installs a recording handler for the test's lifetime; restores the
/// default (dump + abort) on scope exit so later tests start clean.
class TrapRecorder {
 public:
  TrapRecorder() {
    audit::set_failure_handler(
        [this](const std::string& report) { reports_.push_back(report); });
  }
  ~TrapRecorder() { audit::set_failure_handler(nullptr); }

  bool trapped() const { return !reports_.empty(); }
  const std::string& last() const { return reports_.back(); }

 private:
  std::vector<std::string> reports_;
};

TEST(AuditTrap, CleanIndexPassesAudit) {
  TupleIndex idx;
  idx.insert(1, Tuple{"req", 1});
  idx.insert(2, Tuple{"req", 2});
  idx.insert(3, Tuple{"resp", 1});
  TrapRecorder rec;
  idx.audit_check("test");
  EXPECT_FALSE(rec.trapped());
}

TEST(AuditTrap, CorruptedBucketTrapsWithDiagnostic) {
  TupleIndex idx;
  idx.insert(1, Tuple{"req", 1});
  idx.insert(2, Tuple{"req", 2});
  // Drop id 2 from the "req" bucket while it stays in by_id_ and the shard
  // id list: a keyed probe would now silently miss a stored tuple.
  idx.audit_corrupt_bucket_for_test(2);

  TrapRecorder rec;
  idx.audit_check("test");
  ASSERT_TRUE(rec.trapped());
  EXPECT_NE(rec.last().find("TIAMAT AUDIT TRAP"), std::string::npos);
  EXPECT_NE(rec.last().find("TupleIndex"), std::string::npos);
  EXPECT_NE(rec.last().find("bucket-membership"), std::string::npos);
  EXPECT_NE(rec.last().find("tuple id 2"), std::string::npos);
}

TEST(AuditTrap, CorruptedWaiterFifoTrapsWithDiagnostic) {
  WaiterIndex<int> waiters;
  // Two unkeyed waiters land in the overflow; swapping their ids breaks
  // the ascending order the FIFO merge in candidates() depends on.
  waiters.add(1, CompiledPattern(Pattern{tuples::any()}), 0);
  waiters.add(2, CompiledPattern(Pattern{tuples::any()}), 0);
  waiters.audit_corrupt_fifo_for_test();

  TrapRecorder rec;
  waiters.audit_check("test");
  ASSERT_TRUE(rec.trapped());
  EXPECT_NE(rec.last().find("WaiterIndex"), std::string::npos);
  EXPECT_NE(rec.last().find("fifo-monotonic"), std::string::npos);
  EXPECT_NE(rec.last().find("not strictly ascending"), std::string::npos);
}

TEST(AuditTrap, SpaceCheckpointFiresOnNextOperation) {
  // Corrupting the engine underneath a live space must be caught by the
  // checkpoint inside the *next* operation, not only by a direct
  // audit_check call — that is what makes the audit preset useful while
  // running the ordinary test suite.
  World w;
  LocalTupleSpace space(w.queue, w.rng);
  space.out(Tuple{"job", 1});
  TupleId id2 = space.out(Tuple{"job", 2});
  space.audit_index().audit_corrupt_bucket_for_test(id2);

  TrapRecorder rec;
  space.out(Tuple{"job", 3});
  ASSERT_TRUE(rec.trapped());
  EXPECT_NE(rec.last().find("checkpoint: out"), std::string::npos);
  EXPECT_NE(rec.last().find("bucket-membership"), std::string::npos);
}

TEST(AuditTrap, SpaceWaiterCorruptionTrapsOnNextRegistration) {
  World w;
  LocalTupleSpace space(w.queue, w.rng);
  space.in(Pattern{tuples::any()}, sim::kNever, [](std::optional<Tuple>) {});
  space.in(Pattern{tuples::any()}, sim::kNever, [](std::optional<Tuple>) {});
  space.audit_corrupt_waiter_fifo_for_test();

  TrapRecorder rec;
  space.in(Pattern{tuples::any(), tuples::any()}, sim::kNever,
           [](std::optional<Tuple>) {});
  ASSERT_TRUE(rec.trapped());
  EXPECT_NE(rec.last().find("checkpoint: add_waiter"), std::string::npos);
  EXPECT_NE(rec.last().find("fifo-monotonic"), std::string::npos);
}

TEST(AuditTrap, DifferentialOracleCatchesProbeMiss) {
  // A bucket corruption makes the keyed probe return fewer ids than the
  // linear-scan oracle; the sampled differential check must notice. Pump
  // find_matches until the sampler fires (period 64).
  TupleIndex idx;
  idx.insert(1, Tuple{"req", 1});
  idx.insert(2, Tuple{"req", 2});
  idx.audit_corrupt_bucket_for_test(2);

  TrapRecorder rec;
  audit::reset_sampler();
  CompiledPattern p(Pattern{"req", tuples::any()});
  for (int i = 0; i < 64 && !rec.trapped(); ++i) {
    (void)idx.find_matches(p);
  }
  ASSERT_TRUE(rec.trapped());
  EXPECT_NE(rec.last().find("probe-vs-oracle"), std::string::npos);
  EXPECT_NE(rec.last().find("linear oracle 2"), std::string::npos);
}

TEST(AuditDeathTest, DefaultHandlerDumpsAndAborts) {
  TupleIndex idx;
  idx.insert(1, Tuple{"req", 1});
  idx.insert(2, Tuple{"req", 2});
  idx.audit_corrupt_bucket_for_test(2);
  // No handler installed: the trap must write the dump to stderr and abort.
  EXPECT_DEATH(idx.audit_check("death"),
               "TIAMAT AUDIT TRAP.*bucket-membership");
}

}  // namespace
}  // namespace tiamat
