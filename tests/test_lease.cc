// Unit tests for the leasing subsystem: terms, budgets, negotiation,
// expiry/revocation, policies, and resource pools.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "lease/factory.h"
#include "lease/lease.h"
#include "lease/manager.h"
#include "lease/policy.h"
#include "lease/requester.h"
#include "sim/event_queue.h"

namespace tiamat::lease {
namespace {

using sim::EventQueue;
using sim::milliseconds;
using sim::seconds;

// ---------------- LeaseTerms ----------------

TEST(LeaseTerms, BoundedDetection) {
  EXPECT_FALSE(unbounded().is_bounded());
  EXPECT_TRUE(for_duration(seconds(1)).is_bounded());
  EXPECT_TRUE(for_contacts(3).is_bounded());
  EXPECT_TRUE(for_bytes(100).is_bounded());
}

TEST(LeaseTerms, ToStringMentionsDimensions) {
  auto s = for_duration(seconds(1)).to_string();
  EXPECT_NE(s.find("ttl"), std::string::npos);
  EXPECT_EQ(unbounded().to_string(), "{unbounded}");
}

// ---------------- Lease budgets ----------------

TEST(Lease, ContactBudgetEnforced) {
  Lease l(1, for_contacts(2), 0);
  EXPECT_TRUE(l.contacts_remaining());
  EXPECT_TRUE(l.charge_contact());
  EXPECT_TRUE(l.charge_contact());
  EXPECT_FALSE(l.contacts_remaining());
  EXPECT_FALSE(l.charge_contact());
  EXPECT_EQ(l.contacts_used(), 2u);
}

TEST(Lease, ByteBudgetEnforced) {
  Lease l(1, for_bytes(100), 0);
  EXPECT_TRUE(l.charge_bytes(60));
  EXPECT_FALSE(l.charge_bytes(50));  // would exceed; not charged
  EXPECT_EQ(l.bytes_used(), 60u);
  EXPECT_TRUE(l.charge_bytes(40));
  EXPECT_FALSE(l.charge_bytes(1));
}

TEST(Lease, UnboundedChargesAlwaysSucceed) {
  Lease l(1, unbounded(), 0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(l.charge_contact());
    EXPECT_TRUE(l.charge_bytes(1 << 20));
  }
}

TEST(Lease, ExpiryTimeFromTtl) {
  Lease l(1, for_duration(seconds(5)), 100);
  EXPECT_EQ(l.expiry_time(), 100 + seconds(5));
  Lease l2(2, unbounded(), 100);
  EXPECT_EQ(l2.expiry_time(), sim::kNever);
}

TEST(Lease, EndCallbacksFireOnceWithState) {
  Lease l(1, unbounded(), 0);
  int calls = 0;
  LeaseState seen{};
  l.on_end([&](LeaseState s) {
    ++calls;
    seen = s;
  });
  l.expire();
  l.expire();   // idempotent
  l.revoke();   // already finished
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen, LeaseState::kExpired);
}

TEST(Lease, OnEndAfterFinishFiresImmediately) {
  Lease l(1, unbounded(), 0);
  l.release();
  bool fired = false;
  l.on_end([&](LeaseState s) {
    fired = true;
    EXPECT_EQ(s, LeaseState::kReleased);
  });
  EXPECT_TRUE(fired);
}

TEST(Lease, InactiveLeaseRefusesCharges) {
  Lease l(1, unbounded(), 0);
  l.expire();
  EXPECT_FALSE(l.charge_contact());
  EXPECT_FALSE(l.charge_bytes(1));
  EXPECT_FALSE(l.contacts_remaining());
}

// ---------------- Policies ----------------

TEST(DefaultPolicy, ClampsToMaxAndDefaults) {
  DefaultLeasePolicy::Caps caps;
  caps.max_ttl = seconds(10);
  caps.default_ttl = seconds(2);
  caps.max_contacts = 4;
  caps.default_contacts = 2;
  DefaultLeasePolicy p(caps);
  ResourceUsage idle;

  // Unbounded request gets the defaults (every grant is bounded).
  auto g1 = p.offer(unbounded(), idle, 0);
  ASSERT_TRUE(g1.has_value());
  EXPECT_EQ(*g1->ttl, seconds(2));
  EXPECT_EQ(*g1->max_remote_contacts, 2u);

  // Oversized request is clamped.
  auto g2 = p.offer(for_duration(seconds(100)), idle, 0);
  ASSERT_TRUE(g2.has_value());
  EXPECT_EQ(*g2->ttl, seconds(10));
  auto g3 = p.offer(for_contacts(100), idle, 0);
  EXPECT_EQ(*g3->max_remote_contacts, 4u);

  // Modest request granted as asked.
  auto g4 = p.offer(for_duration(seconds(1)), idle, 0);
  EXPECT_EQ(*g4->ttl, seconds(1));
}

TEST(DefaultPolicy, RefusesWhenSaturated) {
  DefaultLeasePolicy::Caps caps;
  caps.max_stored_bytes = 1000;
  DefaultLeasePolicy p(caps);
  ResourceUsage full;
  full.stored_bytes = 1000;
  EXPECT_FALSE(p.offer(unbounded(), full, 0).has_value());

  ResourceUsage busy;
  busy.active_ops = caps.max_active_ops;
  EXPECT_FALSE(p.offer(unbounded(), busy, 0).has_value());
}

TEST(DefaultPolicy, OffersShrinkUnderPressure) {
  DefaultLeasePolicy::Caps caps;
  caps.max_stored_bytes = 1000;
  caps.pressure_threshold = 0.5;
  caps.default_ttl = seconds(10);
  caps.max_ttl = seconds(10);
  DefaultLeasePolicy p(caps);

  ResourceUsage relaxed;
  relaxed.stored_bytes = 100;
  ResourceUsage pressured;
  pressured.stored_bytes = 900;

  auto easy = p.offer(unbounded(), relaxed, 0);
  auto tight = p.offer(unbounded(), pressured, 0);
  ASSERT_TRUE(easy && tight);
  EXPECT_LT(*tight->ttl, *easy->ttl);
  EXPECT_LE(*tight->max_remote_contacts, *easy->max_remote_contacts);
}

TEST(Policies, AcceptAllGrantsVerbatim) {
  AcceptAllPolicy p;
  auto g = p.offer(for_contacts(999), {}, 0);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(*g->max_remote_contacts, 999u);
  EXPECT_FALSE(g->ttl.has_value());
}

TEST(Policies, DenyAllRefuses) {
  DenyAllPolicy p;
  EXPECT_FALSE(p.offer(unbounded(), {}, 0).has_value());
}

// ---------------- Requesters ----------------

TEST(Requesters, FlexibleAcceptsAnything) {
  FlexibleRequester r(for_duration(seconds(100)));
  EXPECT_TRUE(r.accept(for_duration(1)));
  EXPECT_TRUE(r.accept(unbounded()));
}

TEST(Requesters, StrictRefusesShortfall) {
  StrictRequester r(for_duration(seconds(10)), 0.5);
  EXPECT_TRUE(r.accept(for_duration(seconds(10))));
  EXPECT_TRUE(r.accept(for_duration(seconds(5))));
  EXPECT_FALSE(r.accept(for_duration(seconds(4))));
}

TEST(Requesters, StrictChecksEveryRequestedDimension) {
  LeaseTerms want;
  want.ttl = seconds(10);
  want.max_remote_contacts = 10;
  StrictRequester r(want, 1.0);
  LeaseTerms offer;
  offer.ttl = seconds(10);
  offer.max_remote_contacts = 9;
  EXPECT_FALSE(r.accept(offer));
  offer.max_remote_contacts = 10;
  EXPECT_TRUE(r.accept(offer));
}

TEST(Requesters, StrictTreatsAbsentOfferDimensionAsGenerous) {
  StrictRequester r(for_contacts(5), 1.0);
  EXPECT_TRUE(r.accept(unbounded()));  // no cap at all: at least as good
}

// ---------------- LeaseManager ----------------

TEST(Manager, NegotiationGrantsAndExpires) {
  EventQueue q;
  LeaseManager m(q, default_policy());
  auto l = m.negotiate(FlexibleRequester{for_duration(seconds(1))});
  ASSERT_TRUE(l != nullptr);
  EXPECT_TRUE(l->active());
  EXPECT_EQ(m.active(), 1u);

  bool ended = false;
  l->on_end([&](LeaseState s) {
    ended = true;
    EXPECT_EQ(s, LeaseState::kExpired);
  });
  q.run_until_idle();
  EXPECT_TRUE(ended);
  EXPECT_EQ(q.now(), seconds(1));
  EXPECT_EQ(m.active(), 0u);
  EXPECT_EQ(m.stats().expired, 1u);
}

TEST(Manager, PolicyRefusalReturnsNull) {
  EventQueue q;
  LeaseManager m(q, std::make_unique<DenyAllPolicy>());
  EXPECT_EQ(m.negotiate(FlexibleRequester{}), nullptr);
  EXPECT_EQ(m.stats().refused_by_policy, 1u);
}

TEST(Manager, RequesterRefusalReturnsNull) {
  EventQueue q;
  DefaultLeasePolicy::Caps caps;
  caps.max_ttl = seconds(1);
  LeaseManager m(q, default_policy(caps));
  StrictRequester strict(for_duration(seconds(100)), 0.9);
  EXPECT_EQ(m.negotiate(strict), nullptr);
  EXPECT_EQ(m.stats().refused_by_requester, 1u);
}

TEST(Manager, ReleaseCancelsExpiryTimer) {
  EventQueue q;
  LeaseManager m(q, default_policy());
  auto l = m.negotiate(FlexibleRequester{for_duration(seconds(5))});
  ASSERT_TRUE(l);
  l->release();
  EXPECT_EQ(m.active(), 0u);
  EXPECT_EQ(m.stats().released, 1u);
  q.run_until_idle();
  EXPECT_EQ(l->state(), LeaseState::kReleased);  // not expired later
}

TEST(Manager, RevokeEndsLeaseEarly) {
  EventQueue q;
  LeaseManager m(q, default_policy());
  auto l = m.negotiate(FlexibleRequester{for_duration(seconds(5))});
  ASSERT_TRUE(l);
  bool revoked = false;
  l->on_end([&](LeaseState s) { revoked = (s == LeaseState::kRevoked); });
  EXPECT_TRUE(m.revoke(l->id()));
  EXPECT_TRUE(revoked);
  EXPECT_EQ(m.stats().revoked, 1u);
  EXPECT_FALSE(m.revoke(l->id()));  // second revoke: gone
}

TEST(Manager, RevokeAllSweepsEverything) {
  EventQueue q;
  LeaseManager m(q, default_policy());
  auto a = m.negotiate(FlexibleRequester{});
  auto b = m.negotiate(FlexibleRequester{});
  ASSERT_TRUE(a && b);
  m.revoke_all();
  EXPECT_EQ(m.active(), 0u);
  EXPECT_EQ(a->state(), LeaseState::kRevoked);
  EXPECT_EQ(b->state(), LeaseState::kRevoked);
}

TEST(Manager, UsageProbeFeedsPolicy) {
  EventQueue q;
  DefaultLeasePolicy::Caps caps;
  caps.max_stored_bytes = 100;
  LeaseManager m(q, default_policy(caps));
  std::size_t reported = 0;
  m.set_usage_probe([&] {
    ResourceUsage u;
    u.stored_bytes = reported;
    return u;
  });
  EXPECT_NE(m.negotiate(FlexibleRequester{}), nullptr);
  reported = 100;  // saturated now
  EXPECT_EQ(m.negotiate(FlexibleRequester{}), nullptr);
}

TEST(Manager, GrantStatsCount) {
  EventQueue q;
  LeaseManager m(q, default_policy());
  m.negotiate(FlexibleRequester{});
  m.negotiate(FlexibleRequester{});
  EXPECT_EQ(m.stats().granted, 2u);
}

// ---------------- ResourcePool ----------------

TEST(Pool, TokensCountAndRelease) {
  ResourcePool p("threads", 2);
  auto t1 = p.try_acquire();
  auto t2 = p.try_acquire();
  EXPECT_TRUE(t1 && t2);
  EXPECT_EQ(p.in_use(), 2u);
  auto t3 = p.try_acquire();
  EXPECT_FALSE(t3);
  EXPECT_EQ(p.refusals(), 1u);
  t1.reset();
  EXPECT_EQ(p.in_use(), 1u);
  auto t4 = p.try_acquire();
  EXPECT_TRUE(t4);
}

TEST(Pool, TokenMoveTransfersOwnership) {
  ResourcePool p("sockets", 1);
  auto t1 = p.try_acquire();
  ResourcePool::Token t2 = std::move(t1);
  EXPECT_FALSE(t1);
  EXPECT_TRUE(t2);
  EXPECT_EQ(p.in_use(), 1u);
  t2.reset();
  EXPECT_EQ(p.in_use(), 0u);
}

TEST(Pool, TokenDestructorReleases) {
  ResourcePool p("x", 1);
  {
    auto t = p.try_acquire();
    EXPECT_EQ(p.in_use(), 1u);
  }
  EXPECT_EQ(p.in_use(), 0u);
}

TEST(Pool, ShrinkingCapacityBelowUseBlocksNewAcquires) {
  ResourcePool p("x", 2);
  auto a = p.try_acquire();
  auto b = p.try_acquire();
  p.set_capacity(1);
  EXPECT_FALSE(p.try_acquire());
  a.reset();
  b.reset();
  EXPECT_TRUE(p.try_acquire());
}

TEST(Pool, ManagerOwnsNamedPools) {
  EventQueue q;
  LeaseManager m(q, default_policy());
  auto& threads = m.pool("threads", 4);
  EXPECT_EQ(threads.capacity(), 4u);
  auto& again = m.pool("threads", 999);
  EXPECT_EQ(&threads, &again);  // same pool, capacity unchanged
  EXPECT_EQ(again.capacity(), 4u);
}

}  // namespace
}  // namespace tiamat::lease

// ---------------- Renewal (appended suite) ----------------

namespace tiamat::lease {
namespace {

using sim::seconds;

TEST(Renewal, ExtendsActiveLease) {
  sim::EventQueue q;
  LeaseManager m(q, default_policy());
  auto l = m.negotiate(FlexibleRequester{for_duration(seconds(2))});
  ASSERT_TRUE(l);
  q.run_until(seconds(1));
  auto new_expiry = m.renew(l->id(), seconds(5));
  ASSERT_TRUE(new_expiry.has_value());
  EXPECT_EQ(*new_expiry, seconds(1) + seconds(6));  // remaining 1 + extra 5
  q.run_until(seconds(3));
  EXPECT_TRUE(l->active()) << "original expiry must have been cancelled";
  q.run_until_idle();
  EXPECT_EQ(l->state(), LeaseState::kExpired);
  EXPECT_EQ(q.now(), seconds(7));
}

TEST(Renewal, UnknownOrEndedLeaseRefused) {
  sim::EventQueue q;
  LeaseManager m(q, default_policy());
  EXPECT_FALSE(m.renew(999, seconds(1)).has_value());
  auto l = m.negotiate(FlexibleRequester{for_duration(seconds(1))});
  ASSERT_TRUE(l);
  l->release();
  EXPECT_FALSE(m.renew(l->id(), seconds(1)).has_value());
}

TEST(Renewal, PolicyMayGrantLessThanAsked) {
  sim::EventQueue q;
  DefaultLeasePolicy::Caps caps;
  caps.max_ttl = seconds(3);
  LeaseManager m(q, default_policy(caps));
  auto l = m.negotiate(FlexibleRequester{for_duration(seconds(2))});
  ASSERT_TRUE(l);
  auto e = m.renew(l->id(), seconds(100));
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(*e, seconds(3));  // clamped to the cap
}

TEST(Renewal, SaturatedPolicyRefusesRenewal) {
  sim::EventQueue q;
  DefaultLeasePolicy::Caps caps;
  caps.max_stored_bytes = 100;
  LeaseManager m(q, default_policy(caps));
  std::size_t reported = 0;
  m.set_usage_probe([&] {
    ResourceUsage u;
    u.stored_bytes = reported;
    return u;
  });
  auto l = m.negotiate(FlexibleRequester{for_duration(seconds(2))});
  ASSERT_TRUE(l);
  reported = 100;  // device filled up since the grant
  EXPECT_FALSE(m.renew(l->id(), seconds(5)).has_value());
  EXPECT_TRUE(l->active()) << "a refused renewal does not end the lease";
}


// ---------------- Determinism regressions ----------------

// revoke_all (and manager teardown) used to walk an unordered_map, so the
// order lease-end callbacks fired in depended on hash iteration order. The
// active table is ordered now: revocation sweeps in grant (id) order.
TEST(Manager, RevokeAllFiresEndCallbacksInGrantOrder) {
  EventQueue q;
  LeaseManager m(q, default_policy());
  std::vector<LeaseId> order;
  std::vector<std::shared_ptr<Lease>> held;
  for (int i = 0; i < 16; ++i) {
    auto l = m.negotiate(FlexibleRequester{});
    ASSERT_TRUE(l);
    l->on_end([&order, id = l->id()](LeaseState) { order.push_back(id); });
    held.push_back(std::move(l));
  }
  m.revoke_all();
  ASSERT_EQ(order.size(), 16u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}
}  // namespace
}  // namespace tiamat::lease
