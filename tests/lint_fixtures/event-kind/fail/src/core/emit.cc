#include "obs/trace.h"
EventKind issue() { return EventKind::kAlpha; }
EventKind settle() { return EventKind::kBeta; }
