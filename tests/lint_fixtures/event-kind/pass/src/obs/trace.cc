#include "obs/trace.h"
const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kAlpha: return "alpha";
    case EventKind::kBeta: return "beta";
    case EventKind::kFaultInjected: return "fault_injected";
  }
  return "?";
}
bool event_kind_from_string(const char* s, EventKind* out) {
  for (int k = 0; k <= static_cast<int>(EventKind::kFaultInjected); ++k) {
    if (to_string(static_cast<EventKind>(k)) == s) {
      *out = static_cast<EventKind>(k);
      return true;
    }
  }
  return false;
}
