#pragma once
enum class EventKind {
  kAlpha = 0,
  kBeta,
  kFaultInjected,
};
const char* to_string(EventKind k);
bool event_kind_from_string(const char* s, EventKind* out);
