// Mirrors the real repo: the fault-injection trace kind is produced by the
// chaos harness, not the protocol core.
#include "obs/trace.h"
EventKind inject() { return EventKind::kFaultInjected; }
