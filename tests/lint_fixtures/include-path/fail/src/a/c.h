#pragma once
struct C {};
