#pragma once
#include "c.h"
#include "a/missing.h"
struct B {};
