#pragma once
struct C {};
