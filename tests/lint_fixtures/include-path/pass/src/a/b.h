#pragma once
#include "a/c.h"
struct B { C c; };
