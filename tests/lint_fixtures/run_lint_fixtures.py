#!/usr/bin/env python3
"""Self-test for scripts/lint_tiamat.py: every rule, both directions.

Layout (one directory per rule under tests/lint_fixtures/):

    <rule>/
      rules.txt     optional comma-separated rule filter; default: <rule>
      pass/         a mini repo root (its own src/ tree, scripts/, ...)
                    that must lint CLEAN under the filter
      fail/         a mini root that must produce findings, every one of
                    which matches a line of fail/expect.txt
      fail/expect.txt   one line per required finding:
                        <rule>[<space><substring of path or message>]

The contract is exact in both directions: each expect.txt line must match
at least one finding, and each finding must match at least one expect.txt
line — so a rule that silently stops firing AND a rule that over-fires both
break the suite. The linter was the only untested component in the repo;
this runner is wired into scripts/lint.sh, ctest (LintFixtures) and CI.

Stdlib-only by design (the container pins its python); exit 0 on success,
1 on any fixture failure.
"""

import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
sys.path.insert(0, os.path.join(REPO, "scripts"))

import lint_tiamat  # noqa: E402


def read_rules(rule_dir, rule):
    path = os.path.join(rule_dir, "rules.txt")
    if os.path.exists(path):
        with open(path, encoding="utf-8") as f:
            return [r.strip() for r in f.read().split(",") if r.strip()]
    return [rule]


def run_linter(root, rules):
    linter = lint_tiamat.Linter(root, active_rules=rules)
    return linter.run()


def load_expect(path):
    expected = []
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split(None, 1)
            expected.append((parts[0], parts[1] if len(parts) > 1 else ""))
    return expected


def matches(finding, rule, substring):
    if finding["rule"] != rule:
        return False
    hay = f"{finding['path']}:{finding['line']} {finding['message']}"
    return substring in hay


def main():
    failures = []
    checked = 0
    rule_dirs = sorted(
        d for d in os.listdir(HERE)
        if os.path.isdir(os.path.join(HERE, d)))
    known = set(lint_tiamat.RULES)

    for rule in rule_dirs:
        rule_dir = os.path.join(HERE, rule)
        rules = read_rules(rule_dir, rule)
        unknown = [r for r in rules if r not in known]
        if unknown:
            failures.append(f"{rule}: unknown rule(s) in filter: {unknown}")
            continue

        pass_root = os.path.join(rule_dir, "pass")
        fail_root = os.path.join(rule_dir, "fail")
        expect_path = os.path.join(fail_root, "expect.txt")
        for required in (pass_root, fail_root, expect_path):
            if not os.path.exists(required):
                failures.append(f"{rule}: missing {required}")
        if failures and failures[-1].startswith(f"{rule}:"):
            continue

        findings = run_linter(pass_root, rules)
        if findings:
            failures.append(
                f"{rule}/pass: expected clean, got "
                + "; ".join(f"{f['path']}:{f['line']} [{f['rule']}] "
                            f"{f['message']}" for f in findings))
        checked += 1

        findings = run_linter(fail_root, rules)
        expected = load_expect(expect_path)
        if not expected:
            failures.append(f"{rule}/fail: expect.txt is empty")
        for erule, esub in expected:
            if not any(matches(f, erule, esub) for f in findings):
                failures.append(
                    f"{rule}/fail: no finding matched expected "
                    f"[{erule}] ...{esub!r}... (got: "
                    + ("; ".join(f"[{f['rule']}] {f['path']}:{f['line']}"
                                 for f in findings) or "none") + ")")
        for f in findings:
            if not any(matches(f, erule, esub) for erule, esub in expected):
                failures.append(
                    f"{rule}/fail: unexpected finding [{f['rule']}] "
                    f"{f['path']}:{f['line']} {f['message']}")
        checked += 1

    missing = known - set(rule_dirs)
    if missing:
        failures.append(
            "rules with no fixture directory: " + ", ".join(sorted(missing)))

    if failures:
        for f in failures:
            print(f"FAIL {f}")
        print(f"lint fixtures: {len(failures)} failure(s) "
              f"across {checked} fixture roots")
        return 1
    print(f"lint fixtures: {checked} fixture roots OK "
          f"({len(rule_dirs)} rules, pass+fail each)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
