#include <string>
void record(int v, const std::string& prefix) {
  reg.counter("ops.count")->add(v);
  reg.counter("ops.typo")->add(v);
  reg.histogram(prefix + ".nope")->observe(v);
}
