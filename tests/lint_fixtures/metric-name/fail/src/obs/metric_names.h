#pragma once
inline constexpr const char* kOpsCount = "ops.count";
inline constexpr const char* kDeadGauge = "dead.gauge";
