// Mirrors the real repo: the chaos.* family is minted by the fuzz runner
// and must stay catalogued in metric_names.h like every other name.
#include <string>
void record_chaos(int v) { reg.counter("chaos.faults")->add(v); }
