#pragma once
inline constexpr const char* kOpsCount = "ops.count";
inline constexpr const char* kMatchProbeCount = "match.probe.count";
inline constexpr const char* kChaosFaults = "chaos.faults";
