#include <string>
void record(int v, const std::string& prefix) {
  reg.counter("ops.count")->add(v);
  reg.counter(prefix + ".probe.count")->add(v);
}
