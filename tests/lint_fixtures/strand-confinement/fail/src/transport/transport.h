#pragma once
#include <functional>
struct Transport {
  virtual ~Transport() = default;
  virtual void post(int node, std::function<void()> fn) = 0;
  virtual void subscribe(std::function<void()> cb) = 0;
};
