#include "net/peer.h"
void spawn() {
  std::thread helper([] {});
  helper.join();
}
