#pragma once
#include "transport/transport.h"
class Peer {
 public:
  void go() {
    tx_.subscribe([this] { step(); });
  }
  void step();
 private:
  Transport& tx_;
};
