#pragma once
#include <functional>
struct Transport {
  virtual ~Transport() = default;
  virtual void post(int node, std::function<void()> fn) = 0;
  virtual void bind(int node, std::function<void(int)> handler) = 0;
};
