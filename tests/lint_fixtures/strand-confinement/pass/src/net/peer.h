#pragma once
#include "transport/transport.h"
class Peer {
 public:
  void start() {
    tx_.post(1, [this] { step(); });
  }
  void step();
 private:
  Transport& tx_;
};
