#pragma once
struct Network {};
