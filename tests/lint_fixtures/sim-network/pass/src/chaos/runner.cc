// The chaos harness scripts faults against the simulator directly, so
// src/chaos/ is on the sim-network allowed list.
#include "sim/network.h"
Network* chaos_net() { return nullptr; }
