#pragma once
#include "sim/network.h"
struct SimTransport { Network net; };
