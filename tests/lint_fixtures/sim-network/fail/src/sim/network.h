#pragma once
struct Network {};
