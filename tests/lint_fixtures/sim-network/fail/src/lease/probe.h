#pragma once
#include "sim/network.h"
struct Probe { Network* net; };
