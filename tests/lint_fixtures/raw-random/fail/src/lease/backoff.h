#pragma once
#include <random>
struct Backoff {
  std::mt19937 gen_;
  int jitter() { return static_cast<int>(gen_() % 7); }
};
