#pragma once
struct Backoff {
  int jitter(int seed) const { return (seed * 2654435761u) % 7; }
};
