#pragma once
struct Obs {};
