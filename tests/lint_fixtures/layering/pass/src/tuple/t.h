#pragma once
#include "obs/o.h"
struct T { Obs o; };
