#pragma once
struct T {};
