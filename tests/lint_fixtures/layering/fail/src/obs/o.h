#pragma once
#include "tuple/t.h"
struct Obs { T t; };
