#pragma once
#include <iostream>
struct Log {
  void note(int x) { std::cout << x; }
};
