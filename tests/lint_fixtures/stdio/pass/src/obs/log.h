#pragma once
#include <string>
struct Log {
  std::string last;
  void note(const std::string& s) { last = s; }
};
