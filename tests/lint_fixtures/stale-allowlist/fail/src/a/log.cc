void dump(int) {}
