#include <iostream>
void dump(int x) { std::cout << x; }
