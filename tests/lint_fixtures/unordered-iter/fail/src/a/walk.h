#pragma once
#include <unordered_map>
#include <unordered_set>
struct Walk {
  std::unordered_map<int, int> items_;
  std::unordered_set<int> picks_;
  int sum() const {
    int s = 0;
    for (const auto& kv : items_) s += kv.second;
    return s;
  }
  int first() const { return *picks_.begin(); }
};
