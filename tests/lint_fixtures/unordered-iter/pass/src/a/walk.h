#pragma once
#include <map>
struct Walk {
  std::map<int, int> items_;
  int sum() const {
    int s = 0;
    for (const auto& kv : items_) s += kv.second;
    return s;
  }
};
