#pragma once
#include <mutex>
#include <thread>
struct Pool {};
