#pragma once
#include <atomic>
struct Cell {};
