#pragma once
#include <atomic>
struct Ring {};
