#pragma once
#include <atomic>
struct Series {};
