#pragma once
#include <thread>
struct Cell {};
