#pragma once
#include <chrono>
struct Ttl {
  long stamp() const {
    return std::chrono::steady_clock::now().time_since_epoch().count();
  }
};
