#pragma once
#include <chrono>
struct LoopClock {
  long now_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};
