struct Unguarded {};
