#pragma once
struct Guarded {};
