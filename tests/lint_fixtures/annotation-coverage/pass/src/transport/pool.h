#pragma once
class Pool {
 private:
  Mutex mu_;
  int jobs_ TIAMAT_GUARDED_BY(mu_);
};
