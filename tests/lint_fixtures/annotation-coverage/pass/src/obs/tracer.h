#pragma once
class Tracer {
 private:
  mutable Mutex mu_;
  int rings_ TIAMAT_GUARDED_BY(mu_);
};
