#pragma once
class Tracer {
 private:
  std::mutex raw_obs_mu_;
  Mutex orphan_obs_mu_;
};
