#pragma once
class Pool {
 private:
  std::mutex raw_mu_;
  Mutex orphan_mu_;
};
