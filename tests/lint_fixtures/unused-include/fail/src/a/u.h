#pragma once
#include <sstream>
#include <unordered_map>
struct U {
  int m;
};
