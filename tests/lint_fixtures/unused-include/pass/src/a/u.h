#pragma once
#include <sstream>
#include <unordered_map>
struct U {
  std::unordered_map<int, int> m;
  std::ostringstream out;
};
