// Causal trace analysis tests: joining per-instance trace dumps into
// OpTimelines with stage latency attribution, Chrome trace-event export
// (flow events across instances, Perfetto-loadable JSON), deterministic
// same-seed reports, JSONL round-trips, and the always-on flight recorder
// feeding audit trap reports.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "audit/audit.h"
#include "core/instance.h"
#include "obs/analysis.h"
#include "obs/chrome_trace.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "tests/test_util.h"

namespace tiamat {
namespace {

using core::Config;
using core::Instance;
using obs::EventKind;
using obs::OpOutcome;
using obs::OpTimeline;
using obs::TraceAnalysis;
using obs::TraceEvent;
using tiamat::testing::World;
using tuples::any_int;
using tuples::Pattern;
using tuples::Tuple;

// Three instances; two hold a match for the `in`, so the trace contains a
// fan-out, two tentative removes, one accept, one reinsert. Returns the
// sinks in node order (the deterministic join order).
struct Scenario {
  std::vector<std::shared_ptr<obs::MemorySink>> sinks;
  sim::NodeId origin = sim::kNoNode;
  sim::NodeId winner = sim::kNoNode;
};

Scenario run_remote_in(World& w) {
  Scenario s;
  std::vector<std::unique_ptr<Instance>> nodes;
  for (const char* name : {"a", "b", "c"}) {
    Config cfg;
    cfg.name = name;
    auto sink = std::make_shared<obs::MemorySink>();
    nodes.push_back(std::make_unique<Instance>(w.tx, cfg));
    nodes.back()->tracer().set_sink(sink);
    s.sinks.push_back(std::move(sink));
  }
  nodes[1]->out(Tuple{"job", 7});
  nodes[2]->out(Tuple{"job", 7});
  w.run_for(sim::milliseconds(10));

  std::optional<core::ReadResult> got;
  nodes[0]->in(Pattern{"job", any_int()}, [&](auto r) { got = std::move(r); });
  w.run_for(sim::seconds(5));
  EXPECT_TRUE(got.has_value());
  s.origin = nodes[0]->node();
  s.winner = got ? got->source : sim::kNoNode;
  return s;
}

TraceAnalysis join(const Scenario& s) {
  TraceAnalysis a;
  for (const auto& sink : s.sinks) a.add_all(sink->events());
  return a;
}

const OpTimeline* find_in_op(const std::vector<OpTimeline>& ts,
                             sim::NodeId origin) {
  for (const OpTimeline& t : ts) {
    if (t.key.origin == origin && std::string(t.kind_name()) == "in") {
      return &t;
    }
  }
  return nullptr;
}

// ---------------- Timeline joining + stage attribution ----------------

TEST(Analysis, JoinsRemoteInAcrossThreeInstances) {
  World w;
  Scenario s = run_remote_in(w);
  TraceAnalysis a = join(s);
  EXPECT_GT(a.event_count(), 0u);

  const auto timelines = a.timelines();
  const OpTimeline* t = find_in_op(timelines, s.origin);
  ASSERT_NE(t, nullptr);

  EXPECT_EQ(t->outcome, OpOutcome::kAccepted);
  EXPECT_EQ(t->accept_source, s.winner);
  EXPECT_EQ(t->fanout, 2u);        // both remote responders contacted
  EXPECT_GE(t->reinserts, 1u);     // the loser put its match back
  EXPECT_GE(t->nodes.size(), 3u);  // origin + both responders
  EXPECT_TRUE(std::is_sorted(t->nodes.begin(), t->nodes.end()));

  // Events are merged in virtual-time order and tell one causal story.
  for (std::size_t i = 1; i < t->events.size(); ++i) {
    EXPECT_LE(t->events[i - 1].at, t->events[i].at);
  }

  // Stage attribution decomposes the accepted latency exactly.
  const auto& st = t->stages;
  EXPECT_GT(st.total_us, 0);
  EXPECT_GE(st.lease_us, 0);
  EXPECT_GE(st.queue_us, 0);
  // The responder already held the match, so serve_start -> serve_match is
  // same-event (0us) and the wire dominates: network carries the latency.
  EXPECT_GE(st.match_us, 0);
  EXPECT_GT(st.network_us, 0);  // two wire hops minimum
  EXPECT_EQ(st.lease_us + st.queue_us + st.match_us + st.network_us,
            st.total_us);
}

TEST(Analysis, ReportAggregatesOutcomesAndStages) {
  World w;
  Scenario s = run_remote_in(w);
  TraceAnalysis a = join(s);

  const obs::json::Value rep = a.report();
  ASSERT_NE(rep.find("ops"), nullptr);
  EXPECT_GE(rep.find("ops")->as_int(), 1);
  const obs::json::Value* outcomes = rep.find("outcomes");
  ASSERT_NE(outcomes, nullptr);
  ASSERT_NE(outcomes->find("accepted"), nullptr);
  EXPECT_GE(outcomes->find("accepted")->as_int(), 1);

  // Per-kind section carries the stage means for accepted ops.
  const obs::json::Value* by_kind = rep.find("by_kind");
  ASSERT_NE(by_kind, nullptr);
  bool saw_in = false;
  for (const obs::json::Value& k : by_kind->as_array()) {
    if (k.find("kind") != nullptr && k.find("kind")->as_string() == "in") {
      saw_in = true;
      ASSERT_NE(k.find("accepted_stage_mean_us"), nullptr);
    }
  }
  EXPECT_TRUE(saw_in);

  // The human rendering mentions the same facts.
  const std::string text = a.report_text();
  EXPECT_NE(text.find("accepted"), std::string::npos);
  EXPECT_NE(text.find("in"), std::string::npos);

  // The machine report is valid JSON end to end.
  EXPECT_TRUE(obs::json::Value::parse(rep.dump(2)).has_value());
}

TEST(Analysis, OrphanedOpsAreReported) {
  TraceAnalysis a;
  a.add(TraceEvent{100, 1, 1, 42, EventKind::kOpIssued, sim::kNoNode, 2});
  a.add(TraceEvent{200, 1, 1, 42, EventKind::kLeaseGranted, sim::kNoNode, 0});
  const auto ts = a.timelines();
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].outcome, OpOutcome::kOrphaned);

  const obs::json::Value rep = a.report();
  ASSERT_NE(rep.find("orphan_count"), nullptr);
  EXPECT_EQ(rep.find("orphan_count")->as_int(), 1);
}

// ---------------- Determinism: same seed, byte-identical output --------

TEST(Analysis, SameSeedYieldsByteIdenticalReports) {
  auto run_once = [] {
    World w;  // fixed default seed
    Scenario s = run_remote_in(w);
    TraceAnalysis a = join(s);
    return std::make_pair(a.report_text(),
                          obs::to_chrome_trace(a.timelines()).dump(2));
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

// ---------------- JSONL round-trip ----------------

TEST(Analysis, JsonlRoundTripMatchesDirectJoin) {
  World w;
  Scenario s = run_remote_in(w);

  std::string jsonl;
  for (const auto& sink : s.sinks) {
    for (const TraceEvent& e : sink->events()) {
      jsonl += e.to_json().dump();
      jsonl += '\n';
    }
  }

  TraceAnalysis direct = join(s);
  TraceAnalysis parsed;
  std::size_t rejected = 0;
  const std::size_t n = parsed.add_jsonl(jsonl, &rejected);
  EXPECT_EQ(rejected, 0u);
  EXPECT_EQ(n, direct.event_count());
  EXPECT_EQ(parsed.report_text(), direct.report_text());
}

TEST(Analysis, JsonlRejectsMalformedLinesButKeepsGoing) {
  TraceAnalysis a;
  const std::string text =
      "not json\n"
      "\n"  // blank lines are fine
      "{\"at\":5,\"node\":1,\"origin\":1,\"op\":9,\"kind\":\"op_issued\","
      "\"detail\":0}\n"
      "{\"at\":6,\"node\":1,\"origin\":1,\"op\":9,\"kind\":\"no_such_kind\"}\n"
      "{\"kind\":\"accept\"}\n";  // missing required fields
  std::size_t rejected = 0;
  EXPECT_EQ(a.add_jsonl(text, &rejected), 1u);
  EXPECT_EQ(rejected, 3u);
  EXPECT_EQ(a.event_count(), 1u);
}

TEST(Analysis, TraceEventFromJsonInverseOfToJson) {
  TraceEvent e{1500, 2, 1, 9, EventKind::kServeMatch, 1, 3};
  const auto back = TraceEvent::from_json(e.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->at, e.at);
  EXPECT_EQ(back->node, e.node);
  EXPECT_EQ(back->origin, e.origin);
  EXPECT_EQ(back->op_id, e.op_id);
  EXPECT_EQ(back->kind, e.kind);
  EXPECT_EQ(back->peer, e.peer);
  EXPECT_EQ(back->detail, e.detail);
}

// ---------------- Chrome trace-event export ----------------

TEST(Analysis, ChromeTraceHasTracksAndCrossInstanceFlows) {
  World w;
  Scenario s = run_remote_in(w);
  TraceAnalysis a = join(s);

  const obs::json::Value doc = obs::to_chrome_trace(a.timelines());

  // The export round-trips through the obs JSON parser (acceptance bar).
  const auto reparsed = obs::json::Value::parse(doc.dump(2));
  ASSERT_TRUE(reparsed.has_value());
  const obs::json::Value* events = reparsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::set<std::int64_t> tids;
  std::set<std::int64_t> flow_starts;
  std::set<std::int64_t> flow_finishes;
  std::set<std::string> flow_names;
  for (const obs::json::Value& e : events->as_array()) {
    const obs::json::Value* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    const std::string& p = ph->as_string();
    if (p != "M") tids.insert(e.find("tid")->as_int());
    if (p == "s") {
      flow_starts.insert(e.find("id")->as_int());
      flow_names.insert(e.find("name")->as_string());
    }
    if (p == "f") {
      flow_finishes.insert(e.find("id")->as_int());
      EXPECT_EQ(e.find("bp")->as_string(), "e");
    }
  }

  // One track per instance, and the `in`'s fan-out/accept/reinsert edges
  // link >= 3 instances.
  EXPECT_GE(tids.size(), 3u);
  EXPECT_FALSE(flow_starts.empty());
  EXPECT_EQ(flow_starts, flow_finishes);  // every arrow has both ends
  EXPECT_TRUE(flow_names.count("fan-out") == 1);
  EXPECT_TRUE(flow_names.count("accept") == 1);
  EXPECT_TRUE(flow_names.count("reinsert") == 1);
}

// ---------------- Flight recorder ----------------

TEST(FlightRecorder, AlwaysRecordsEvenWithTracingDisabled) {
  World w;
  Config cfg;
  cfg.name = "f";
  Instance a(w.tx, cfg);
  Instance b(w.tx, cfg);
  ASSERT_FALSE(a.tracer().enabled());

  b.out(Tuple{"k", 1});
  std::optional<core::ReadResult> r;
  a.rdp(Pattern{"k", any_int()}, [&](auto res) { r = std::move(res); });
  w.run_for(sim::seconds(2));
  ASSERT_TRUE(r.has_value());

  EXPECT_EQ(a.tracer().recorded(), 0u);        // opt-in tracer: off
  EXPECT_GT(a.flight_recorder().recorded(), 0u);  // flight ring: always on
  EXPECT_LE(a.flight_recorder().tail().size(),
            a.flight_recorder().capacity());
}

TEST(FlightRecorder, RingBoundsAndKeepsNewestOldestFirst) {
  obs::FlightRecorder fr(/*node=*/7, /*capacity=*/4);
  for (std::uint64_t i = 0; i < 9; ++i) {
    fr.record(TraceEvent{static_cast<sim::Time>(i), 7, 7, i,
                         EventKind::kOpIssued, sim::kNoNode, 0});
  }
  EXPECT_EQ(fr.recorded(), 9u);
  const auto tail = fr.tail();
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail.front().op_id, 5u);
  EXPECT_EQ(tail.back().op_id, 8u);
  for (std::size_t i = 1; i < tail.size(); ++i) {
    EXPECT_LT(tail[i - 1].op_id, tail[i].op_id);
  }
}

TEST(FlightRecorder, AuditTrapReportIncludesFlightTail) {
  World w;
  Config cfg;
  cfg.name = "f";
  Instance a(w.tx, cfg);
  a.out(Tuple{"k", 1});
  std::optional<core::ReadResult> r;
  a.rdp(Pattern{"k", any_int()}, [&](auto res) { r = std::move(res); });
  w.run_for(sim::seconds(1));
  ASSERT_TRUE(r.has_value());
  ASSERT_GT(a.flight_recorder().recorded(), 0u);

  std::string report;
  audit::set_failure_handler([&](const std::string& rep) { report = rep; });
  audit::fail("TestComponent", "checkpoint", "synthetic", "detail");
  audit::set_failure_handler(nullptr);

  // The trap diagnostic carries the invariant context AND the recent
  // causal history of every live instance.
  EXPECT_NE(report.find("TestComponent"), std::string::npos);
  EXPECT_NE(report.find("flight recorder"), std::string::npos);
  EXPECT_NE(report.find("node " + std::to_string(a.node())),
            std::string::npos);
  EXPECT_NE(report.find("op_issued"), std::string::npos);
}

TEST(FlightRecorder, DumpCoversOnlyLiveRecorders) {
  const std::size_t before = obs::FlightRecorder::live_count();
  {
    obs::FlightRecorder fr(/*node=*/9, /*capacity=*/2);
    fr.record(TraceEvent{1, 9, 9, 1, EventKind::kAccept, 9, 0});
    EXPECT_EQ(obs::FlightRecorder::live_count(), before + 1);
    EXPECT_NE(obs::FlightRecorder::dump_all().find("node 9"),
              std::string::npos);
  }
  EXPECT_EQ(obs::FlightRecorder::live_count(), before);
}

}  // namespace
}  // namespace tiamat
