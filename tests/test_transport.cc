// Transport conformance suite (ROADMAP item 1).
//
// Every test in TransportConformance runs twice — once over the
// deterministic simulator backend, once over the multi-threaded loopback
// backend — pinning down the contract protocol code relies on: per-sender
// delivery order, group membership, timer firing/cancellation, and
// delivery-after-close safety. The loopback-only suite then exercises the
// concurrent backend's specifics (real delay, loss, worker parallelism) and
// runs a keyed-probe differential: the same Tiamat workload executed over
// both backends must produce identical results.
//
// Tests are composition roots: they may name sim:: and transport backends
// directly. Protocol code may not (lint-enforced).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/instance.h"
#include "obs/metrics.h"
#include "obs/sched.h"
#include "obs/series.h"
#include "obs/trace.h"
#include "sim/network.h"
#include "tests/test_util.h"
#include "transport/loopback_transport.h"
#include "transport/sim_transport.h"
#include "transport/transport.h"

namespace tiamat {
namespace {

using transport::Duration;
using transport::GroupId;
using transport::kMillisecond;
using transport::NodeId;
using transport::Payload;
using transport::Time;
using transport::Transport;

Payload bytes(std::initializer_list<std::uint8_t> v) { return Payload(v); }

// ---------------------------------------------------------------------------
// Backend harness: owns one transport of either flavour.

enum class Backend { kSim, kLoopback };

const char* to_string(Backend b) {
  return b == Backend::kSim ? "sim" : "loopback";
}

class BackendHarness {
 public:
  explicit BackendHarness(Backend kind, Duration delivery_delay = 0)
      : kind_(kind) {
    if (kind == Backend::kSim) {
      sim::LinkModel model = testing::World::quiet_links();
      if (delivery_delay > 0) model.base_latency = delivery_delay;
      world_ = std::make_unique<testing::World>(/*seed=*/7, model);
    } else {
      transport::LoopbackOptions opts;
      opts.workers = 4;
      opts.delivery_delay =
          delivery_delay > 0 ? delivery_delay : 1 * kMillisecond;
      loop_ = std::make_unique<transport::LoopbackTransport>(opts);
    }
  }

  Transport& tx() {
    return kind_ == Backend::kSim ? static_cast<Transport&>(world_->tx)
                                  : static_cast<Transport&>(*loop_);
  }

  Backend kind() const { return kind_; }

 private:
  Backend kind_;
  std::unique_ptr<testing::World> world_;
  std::unique_ptr<transport::LoopbackTransport> loop_;
};

class TransportConformance : public ::testing::TestWithParam<Backend> {
 protected:
  BackendHarness harness_{GetParam()};
  Transport& tx() { return harness_.tx(); }
};

// ---------------------------------------------------------------------------
// Membership

TEST_P(TransportConformance, AddRemoveNodeLifecycle) {
  auto& t = tx();
  const NodeId a = t.add_node();
  EXPECT_NE(a, transport::kNoNode);
  EXPECT_TRUE(t.node_exists(a));
  EXPECT_TRUE(t.online(a));
  t.remove_node(a);
  EXPECT_FALSE(t.node_exists(a));
}

TEST_P(TransportConformance, VisibleFromExcludesSelfAndOffline) {
  auto& t = tx();
  const NodeId a = t.add_node();
  const NodeId b = t.add_node();
  const NodeId c = t.add_node();
  t.set_online(c, false);
  const std::vector<NodeId> from_a = t.visible_from(a);
  EXPECT_EQ(from_a, std::vector<NodeId>{b});
  EXPECT_TRUE(t.visible(a, b));
  EXPECT_FALSE(t.visible(a, c));
}

// ---------------------------------------------------------------------------
// Traffic

TEST_P(TransportConformance, SendDeliversPayloadWithSender) {
  auto& t = tx();
  const NodeId a = t.add_node();
  const NodeId b = t.add_node();
  auto got = std::make_shared<std::optional<std::pair<NodeId, Payload>>>();
  t.bind(b, [got](NodeId from, const Payload& p) { *got = {from, p}; });
  t.send(a, b, bytes({1, 2, 3}));
  ASSERT_TRUE(t.wait_until([&] { return got->has_value(); }));
  EXPECT_EQ((*got)->first, a);
  EXPECT_EQ((*got)->second, bytes({1, 2, 3}));
}

TEST_P(TransportConformance, PerSenderOrderIsPreserved) {
  auto& t = tx();
  const NodeId a = t.add_node();
  const NodeId b = t.add_node();
  constexpr int kN = 200;
  auto seen = std::make_shared<std::vector<std::uint8_t>>();
  t.bind(b, [seen](NodeId, const Payload& p) { seen->push_back(p.at(0)); });
  for (int i = 0; i < kN; ++i) {
    t.send(a, b, Payload{static_cast<std::uint8_t>(i)});
  }
  ASSERT_TRUE(t.wait_until([&] { return seen->size() == kN; }));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ((*seen)[i], static_cast<std::uint8_t>(i)) << "at " << i;
  }
}

TEST_P(TransportConformance, MulticastHonoursJoinAndLeave) {
  auto& t = tx();
  constexpr GroupId kGroup = 40;
  const NodeId a = t.add_node();
  const NodeId b = t.add_node();
  const NodeId c = t.add_node();
  auto b_got = std::make_shared<int>(0);
  auto c_got = std::make_shared<int>(0);
  t.bind(b, [b_got](NodeId, const Payload&) { ++*b_got; });
  t.bind(c, [c_got](NodeId, const Payload&) { ++*c_got; });
  t.join_group(b, kGroup);
  t.join_group(c, kGroup);
  t.multicast(a, kGroup, bytes({1}));
  ASSERT_TRUE(t.wait_until([&] { return *b_got == 1 && *c_got == 1; }));
  t.leave_group(c, kGroup);
  t.multicast(a, kGroup, bytes({2}));
  ASSERT_TRUE(t.wait_until([&] { return *b_got == 2; }));
  EXPECT_EQ(*c_got, 1);  // c left before the second round
}

TEST_P(TransportConformance, MulticastSkipsTheSender) {
  auto& t = tx();
  constexpr GroupId kGroup = 41;
  const NodeId a = t.add_node();
  const NodeId b = t.add_node();
  auto a_got = std::make_shared<int>(0);
  auto b_got = std::make_shared<int>(0);
  t.bind(a, [a_got](NodeId, const Payload&) { ++*a_got; });
  t.bind(b, [b_got](NodeId, const Payload&) { ++*b_got; });
  t.join_group(a, kGroup);
  t.join_group(b, kGroup);
  t.multicast(a, kGroup, bytes({9}));
  ASSERT_TRUE(t.wait_until([&] { return *b_got == 1; }));
  EXPECT_EQ(*a_got, 0);
}

TEST_P(TransportConformance, OfflineNodeReceivesNothing) {
  auto& t = tx();
  const NodeId a = t.add_node();
  const NodeId b = t.add_node();
  auto got = std::make_shared<int>(0);
  t.bind(b, [got](NodeId, const Payload&) { ++*got; });
  t.set_online(b, false);
  t.send(a, b, bytes({1}));  // dropped: b's radio is off
  t.set_online(b, true);
  t.send(a, b, bytes({2}));
  ASSERT_TRUE(t.wait_until([&] { return *got >= 1; }));
  EXPECT_EQ(*got, 1);
}

// ---------------------------------------------------------------------------
// Timers

TEST_P(TransportConformance, TimerFiresOnceAtOrAfterDeadline) {
  auto& t = tx();
  const NodeId a = t.add_node();
  auto& timers = t.timers(a);
  const Time scheduled = t.now() + 5 * kMillisecond;
  auto fired_at = std::make_shared<Time>(-1);
  timers.schedule_at(scheduled, [&t, fired_at] { *fired_at = t.now(); });
  ASSERT_TRUE(t.wait_until([&] { return *fired_at >= 0; }));
  EXPECT_GE(*fired_at, scheduled);
}

TEST_P(TransportConformance, CancelledTimerNeverFires) {
  auto& t = tx();
  const NodeId a = t.add_node();
  auto& timers = t.timers(a);
  auto early = std::make_shared<bool>(false);
  auto late = std::make_shared<bool>(false);
  const auto id =
      timers.schedule_after(5 * kMillisecond, [early] { *early = true; });
  timers.schedule_after(20 * kMillisecond, [late] { *late = true; });
  EXPECT_TRUE(timers.cancel(id));
  EXPECT_FALSE(timers.cancel(id));  // second cancel is stale
  ASSERT_TRUE(t.wait_until([&] { return *late; }));
  EXPECT_FALSE(*early);
}

TEST_P(TransportConformance, TimerServiceSurvivesRemoveNode) {
  auto& t = tx();
  const NodeId a = t.add_node();
  auto& timers = t.timers(a);
  auto fired = std::make_shared<bool>(false);
  const auto id =
      timers.schedule_after(5 * kMillisecond, [fired] { *fired = true; });
  t.remove_node(a);
  // The handle outlives the node: cancelling a quiesced timer is safe, and
  // the timer must not fire.
  timers.cancel(id);
  const NodeId b = t.add_node();
  auto sentinel = std::make_shared<bool>(false);
  t.timers(b).schedule_after(20 * kMillisecond, [sentinel] { *sentinel = true; });
  ASSERT_TRUE(t.wait_until([&] { return *sentinel; }));
  EXPECT_FALSE(*fired);
}

// ---------------------------------------------------------------------------
// Teardown safety

TEST_P(TransportConformance, DeliveryAfterCloseIsDropped) {
  auto& t = tx();
  const NodeId a = t.add_node();
  const NodeId b = t.add_node();
  auto got = std::make_shared<int>(0);
  t.bind(b, [got](NodeId, const Payload&) { ++*got; });
  // A burst in flight when the destination disappears must be dropped
  // without touching the unbound handler (tsan cross-checks this suite).
  for (int i = 0; i < 64; ++i) t.send(a, b, bytes({7}));
  t.remove_node(b);
  t.send(a, b, bytes({8}));  // post-removal send: silently dropped
  const NodeId c = t.add_node();
  auto sentinel = std::make_shared<bool>(false);
  t.bind(c, [sentinel](NodeId, const Payload&) { *sentinel = true; });
  t.send(a, c, bytes({9}));
  ASSERT_TRUE(t.wait_until([&] { return *sentinel; }));
}

TEST_P(TransportConformance, RebindSwapsHandlerSafely) {
  auto& t = tx();
  const NodeId a = t.add_node();
  const NodeId b = t.add_node();
  auto first = std::make_shared<int>(0);
  auto second = std::make_shared<int>(0);
  t.bind(b, [first](NodeId, const Payload&) { ++*first; });
  for (int i = 0; i < 32; ++i) t.send(a, b, bytes({1}));
  // Rebinding synchronizes with in-flight invocations of the old handler.
  t.bind(b, [second](NodeId, const Payload&) { ++*second; });
  for (int i = 0; i < 32; ++i) t.send(a, b, bytes({2}));
  ASSERT_TRUE(t.wait_until([&] { return *first + *second == 64; }));
  EXPECT_EQ(*first + *second, 64);
}

TEST_P(TransportConformance, WaitUntilReportsTimeout) {
  auto& t = tx();
  (void)t.add_node();
  EXPECT_FALSE(
      t.wait_until([] { return false; }, /*max_wait=*/10 * kMillisecond));
  EXPECT_TRUE(t.wait_until([] { return true; }, 10 * kMillisecond));
}

TEST_P(TransportConformance, ForkRngYieldsDistinctStreams) {
  auto& t = tx();
  transport::Rng r1 = t.fork_rng();
  transport::Rng r2 = t.fork_rng();
  bool diverged = false;
  for (int i = 0; i < 16 && !diverged; ++i) {
    diverged = r1.uniform(0, 1 << 30) != r2.uniform(0, 1 << 30);
  }
  EXPECT_TRUE(diverged);
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportConformance,
                         ::testing::Values(Backend::kSim, Backend::kLoopback),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           return to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Loopback-specific behaviour

TEST(LoopbackTransport, DeliveryDelayIsRespected) {
  transport::LoopbackOptions opts;
  opts.delivery_delay = 20 * kMillisecond;
  transport::LoopbackTransport t(opts);
  const NodeId a = t.add_node();
  const NodeId b = t.add_node();
  auto arrived_at = std::make_shared<Time>(-1);
  t.bind(b, [&t, arrived_at](NodeId, const Payload&) { *arrived_at = t.now(); });
  const Time sent_at = t.now();
  t.send(a, b, bytes({1}));
  ASSERT_TRUE(t.wait_until([&] { return *arrived_at >= 0; }));
  EXPECT_GE(*arrived_at - sent_at, 20 * kMillisecond);
}

TEST(LoopbackTransport, TotalLossDropsEverything) {
  transport::LoopbackOptions opts;
  opts.loss = 1.0;
  transport::LoopbackTransport t(opts);
  const NodeId a = t.add_node();
  const NodeId b = t.add_node();
  auto got = std::make_shared<int>(0);
  t.bind(b, [got](NodeId, const Payload&) { ++*got; });
  for (int i = 0; i < 32; ++i) t.send(a, b, bytes({1}));
  EXPECT_FALSE(t.wait_until([&] { return *got > 0; }, 20 * kMillisecond));
  const auto s = t.stats();
  EXPECT_EQ(s.deliveries, 0u);
  EXPECT_EQ(s.drops_loss, 32u);
}

TEST(LoopbackTransport, ManySendersAllDeliveredAcrossWorkers) {
  transport::LoopbackOptions opts;
  opts.workers = 4;
  transport::LoopbackTransport t(opts);
  constexpr int kSenders = 16;
  constexpr int kEach = 50;
  const NodeId sink = t.add_node();
  auto got = std::make_shared<std::atomic<int>>(0);
  t.bind(sink, [got](NodeId, const Payload&) { ++*got; });
  std::vector<NodeId> senders;
  for (int i = 0; i < kSenders; ++i) senders.push_back(t.add_node());
  // Fan the sends out via each sender's own strand so enqueueing itself is
  // concurrent across workers.
  for (NodeId s : senders) {
    t.post(s, [&t, s, sink] {
      for (int i = 0; i < kEach; ++i) t.send(s, sink, Payload{1});
    });
  }
  ASSERT_TRUE(t.wait_until([&] { return *got == kSenders * kEach; },
                           10 * transport::kSecond));
  EXPECT_EQ(t.stats().deliveries,
            static_cast<std::uint64_t>(kSenders * kEach));
}

// ---------------------------------------------------------------------------
// Keyed-probe differential: the same Tiamat workload over both backends
// must produce the same answers. Three instances each publish tuples under
// distinct keys; a fourth probes every key through the logical space
// (rdp = keyed probe) and takes one of them (inp). The key -> value map a
// backend produces is its behavioural fingerprint.

std::map<std::string, std::int64_t> run_keyed_probe_workload(
    Transport& t, Duration settle) {
  core::Config cfg;
  cfg.lease_caps.default_ttl = transport::seconds(5);
  cfg.lease_caps.max_ttl = transport::seconds(5);
  auto named = [&](const char* n) {
    core::Config c = cfg;
    c.name = n;
    return c;
  };
  core::Instance alpha(t, named("alpha"));
  core::Instance beta(t, named("beta"));
  core::Instance gamma(t, named("gamma"));
  core::Instance prober(t, named("prober"));

  const std::map<std::string, std::int64_t> published{
      {"k0", 10}, {"k1", 11}, {"k2", 12}, {"k3", 13}, {"k4", 14}, {"k5", 15}};
  // Spread the keys across the three publishers; drive each out() on its
  // owner's strand (required on the concurrent backend).
  core::Instance* owners[] = {&alpha, &beta, &gamma};
  auto outs_done = std::make_shared<std::atomic<int>>(0);
  int idx = 0;
  for (const auto& [key, value] : published) {
    core::Instance* owner = owners[idx++ % 3];
    const std::string k = key;
    const std::int64_t v = value;
    t.post(owner->node(), [owner, k, v, outs_done] {
      owner->out(tuples::Tuple{"kv", k, v});
      ++*outs_done;
    });
  }
  if (!t.wait_until([&] { return *outs_done == 6; }, settle)) return {};

  // Probe every key (plus one that was never published) from the fourth
  // instance; collect what the logical space answers.
  auto results =
      std::make_shared<std::map<std::string, std::optional<std::int64_t>>>();
  auto pending = std::make_shared<std::atomic<int>>(0);
  std::vector<std::string> keys{"k0", "k1", "k2", "k3", "k4", "k5", "ghost"};
  for (const std::string& key : keys) {
    ++*pending;
    t.post(prober.node(), [&prober, key, results, pending] {
      const bool granted = prober.rdp(
          tuples::Pattern{"kv", key, tuples::any_int()},
          [key, results, pending](std::optional<core::ReadResult> r) {
            (*results)[key] =
                r ? std::optional<std::int64_t>(r->tuple[2].as_int())
                  : std::nullopt;
            --*pending;
          });
      if (!granted) {
        (*results)[key] = std::nullopt;
        --*pending;
      }
    });
  }
  if (!t.wait_until([&] { return *pending == 0; }, settle)) return {};

  // Phase 2, sequenced after every probe resolved: one destructive keyed
  // take — exactly one backend-independent removal.
  ++*pending;
  t.post(prober.node(), [&prober, results, pending] {
    prober.inp(tuples::Pattern{"kv", std::string("k0"), tuples::any_int()},
               [results, pending](std::optional<core::ReadResult> r) {
                 (*results)["k0.taken"] =
                     r ? std::optional<std::int64_t>(r->tuple[2].as_int())
                       : std::nullopt;
                 --*pending;
               });
  });
  if (!t.wait_until([&] { return *pending == 0; }, settle)) return {};

  std::map<std::string, std::int64_t> fingerprint;
  for (const auto& [key, value] : *results) {
    fingerprint[key] = value.value_or(-1);
  }
  return fingerprint;
}

TEST(TransportDifferential, KeyedProbesAgreeAcrossBackends) {
  BackendHarness sim_h(Backend::kSim);
  BackendHarness loop_h(Backend::kLoopback);
  const auto sim_fp =
      run_keyed_probe_workload(sim_h.tx(), 30 * transport::kSecond);
  const auto loop_fp =
      run_keyed_probe_workload(loop_h.tx(), 30 * transport::kSecond);
  ASSERT_FALSE(sim_fp.empty()) << "sim workload did not complete";
  ASSERT_FALSE(loop_fp.empty()) << "loopback workload did not complete";
  EXPECT_EQ(sim_fp, loop_fp);
  // And the answers are the published values.
  EXPECT_EQ(sim_fp.at("k1"), 11);
  EXPECT_EQ(sim_fp.at("ghost"), -1);
  EXPECT_EQ(sim_fp.at("k0.taken"), 10);
}

// ---------------------------------------------------------------------------
// Concurrent observability regressions (DESIGN.md §13). These run under the
// tsan preset (`ctest -R Transport`): the whole observability plane —
// thread-ring tracing, striped metrics, a cross-strand TimeSeriesRecorder
// and the scheduler-telemetry exporter — live at once over the loopback
// worker pool. A data race anywhere in that plane fails this suite.

TEST(TransportObs, FourInstancesTraceMetricsSchedUnderLoopback) {
  transport::LoopbackOptions opts;
  opts.workers = 4;
  transport::LoopbackTransport t(opts);

  core::Config cfg;
  cfg.lease_caps.default_ttl = transport::seconds(5);
  cfg.lease_caps.max_ttl = transport::seconds(5);
  auto sink = std::make_shared<obs::MemorySink>();
  std::vector<std::unique_ptr<core::Instance>> insts;
  for (int i = 0; i < 4; ++i) {
    core::Config c = cfg;
    c.name = "obs-" + std::to_string(i);
    insts.push_back(std::make_unique<core::Instance>(t, c));
    // Tracing is configured before any traffic, so every event the test
    // generates flows through the per-thread rings (never the direct path).
    insts.back()->tracer().set_enabled(true);
    insts.back()->tracer().set_sink(sink);
    insts.back()->tracer().set_thread_rings(true);
  }

  // Scheduler telemetry samples on a strand of its own: SchedExporter only
  // reads the transport's relaxed-atomic cells, so any strand may host it.
  const NodeId rec_node = t.add_node();
  obs::SeriesOptions sopts;
  sopts.interval = transport::kMillisecond;
  auto sched_rec =
      std::make_unique<obs::TimeSeriesRecorder>(t.timers(rec_node), sopts);
  obs::Registry sched_reg;
  obs::SchedExporter exporter(sched_reg, t);
  sched_rec->add_source("sched", &sched_reg, [&exporter] { exporter.update(); });

  // Instance telemetry is strand-bound (register_telemetry's contract: the
  // probe lambdas and the memory-gauge refresh read strand-confined state),
  // so each instance gets a recorder ticking on its own strand. The sampled
  // striped registries still race with every other strand's writers — which
  // is the interleaving this PR makes safe.
  std::vector<std::unique_ptr<obs::TimeSeriesRecorder>> recs;
  for (auto& inst : insts) {
    recs.push_back(std::make_unique<obs::TimeSeriesRecorder>(
        t.timers(inst->node()), sopts));
    inst->register_telemetry(*recs.back());
  }

  // Recorders are strand-confined too (an off-strand start() races with
  // its own first tick re-arming the timer), so each starts on its strand.
  auto started = std::make_shared<std::atomic<int>>(0);
  obs::TimeSeriesRecorder* sched_raw0 = sched_rec.get();
  t.post(rec_node, [sched_raw0, started] {
    sched_raw0->start();
    ++*started;
  });
  for (int i = 0; i < 4; ++i) {
    obs::TimeSeriesRecorder* r = recs[static_cast<std::size_t>(i)].get();
    t.post(insts[static_cast<std::size_t>(i)]->node(), [r, started] {
      r->start();
      ++*started;
    });
  }
  ASSERT_TRUE(
      t.wait_until([&] { return *started == 5; }, 30 * transport::kSecond));

  // Phase 1: each instance publishes on its own strand.
  constexpr int kOpsPerInstance = 128;
  auto published = std::make_shared<std::atomic<int>>(0);
  for (int i = 0; i < 4; ++i) {
    core::Instance* owner = insts[i].get();
    const std::string key = "obs-key-" + std::to_string(i);
    t.post(owner->node(), [owner, key, published] {
      for (int k = 0; k < kOpsPerInstance; ++k) {
        owner->out(tuples::Tuple{"obs", key, std::int64_t{k}});
      }
      ++*published;
    });
  }
  ASSERT_TRUE(
      t.wait_until([&] { return *published == 4; }, 30 * transport::kSecond));

  // Phase 2: each instance destructively takes its neighbour's tuples, so
  // every op crosses strands (and worker threads) through the transport.
  auto resolved = std::make_shared<std::atomic<int>>(0);
  for (int i = 0; i < 4; ++i) {
    core::Instance* reader = insts[(i + 1) % 4].get();
    const std::string key = "obs-key-" + std::to_string(i);
    t.post(reader->node(), [reader, key, resolved] {
      for (int k = 0; k < kOpsPerInstance; ++k) {
        const bool granted =
            reader->inp(tuples::Pattern{"obs", key, tuples::any_int()},
                        [resolved](std::optional<core::ReadResult>) {
                          ++*resolved;
                        });
        if (!granted) ++*resolved;
      }
    });
  }
  ASSERT_TRUE(t.wait_until(
      [&] { return *resolved == 4 * kOpsPerInstance; }, 30 * transport::kSecond));

  // Stop every recorder on its own strand (the tick self-rearms there),
  // then drain every tracer from this thread.
  auto stopped = std::make_shared<std::atomic<int>>(0);
  obs::TimeSeriesRecorder* sched_raw = sched_rec.get();
  t.post(rec_node, [sched_raw, stopped] {
    sched_raw->stop();
    ++*stopped;
  });
  for (int i = 0; i < 4; ++i) {
    obs::TimeSeriesRecorder* r = recs[static_cast<std::size_t>(i)].get();
    t.post(insts[static_cast<std::size_t>(i)]->node(), [r, stopped] {
      r->stop();
      ++*stopped;
    });
  }
  ASSERT_TRUE(
      t.wait_until([&] { return *stopped == 5; }, 30 * transport::kSecond));

  // Quiesce the producers: every push happens on the instance's own strand
  // (probe breach traces included — that strand's recorder ticks there), so
  // disabling each tracer on its strand serializes with its future pushes.
  auto quiesced = std::make_shared<std::atomic<int>>(0);
  for (auto& inst : insts) {
    core::Instance* ip = inst.get();
    t.post(ip->node(), [ip, quiesced] {
      ip->tracer().set_enabled(false);
      ++*quiesced;
    });
  }
  ASSERT_TRUE(
      t.wait_until([&] { return *quiesced == 4; }, 30 * transport::kSecond));

  // Conservation oracle: once producers are quiet, a final drain moves every
  // accepted event to the sink exactly once (drops were rejected at push
  // time and sit on their own ledger) — nothing lost, nothing duplicated.
  std::uint64_t total_drained = 0;
  for (auto& inst : insts) {
    obs::Tracer& tr = inst->tracer();
    tr.drain();
    EXPECT_EQ(tr.ring_drained(), tr.ring_pushed())
        << "tracer ring conservation violated";
    total_drained += tr.ring_drained();
  }
  EXPECT_EQ(sink->events().size(), total_drained);
  EXPECT_GT(total_drained, 0u);

  // The scheduler saw the work: sched_stats() folds per-worker cells that
  // the worker threads were writing while we read them above.
  const auto sched = t.sched_stats();
  std::uint64_t tasks = 0;
  for (const auto& w : sched.workers) tasks += w.tasks;
  EXPECT_GT(tasks, 0u);
  exporter.update();
  EXPECT_GT(sched_reg.counter("transport.sched.tasks",
                              {{"worker", "0"}}).value() +
                sched_reg.counter("transport.sched.tasks",
                                  {{"worker", "1"}}).value() +
                sched_reg.counter("transport.sched.tasks",
                                  {{"worker", "2"}}).value() +
                sched_reg.counter("transport.sched.tasks",
                                  {{"worker", "3"}}).value(),
            0u);
}

// Striped-metrics hammer: writers bump a counter and observe a sketch while
// this thread snapshots. Counters must read monotonically, sketches must
// never look torn (observe() lands the bucket cell before the count, so any
// count we read is a lower bound on the bucket sum), and after join the
// totals are exact.
TEST(TransportObs, RegistrySnapshotVsWriterHammer) {
  obs::Registry reg;
  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 20000;
  obs::Counter& hits = reg.counter("hammer.hits");
  obs::QuantileSketch& lat = reg.sketch("hammer.latency_us");

  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&hits, &lat, &go, w] {
      while (!go.load(std::memory_order_acquire)) {}
      for (int i = 0; i < kOpsPerWriter; ++i) {
        hits.add(1);
        lat.observe(static_cast<double>((w * 131 + i) % 1000 + 1));
      }
    });
  }
  go.store(true, std::memory_order_release);

  std::uint64_t prev_hits = 0;
  for (int round = 0; round < 200; ++round) {
    const std::uint64_t count_before = lat.count();
    std::uint64_t in_buckets = 0;
    for (const auto& [bucket, n] : lat.buckets()) in_buckets += n;
    EXPECT_GE(in_buckets, count_before) << "torn sketch read";
    const std::uint64_t h = hits.value();
    EXPECT_GE(h, prev_hits) << "counter went backwards";
    prev_hits = h;
    // Structural read under write load; tsan is the assertion here.
    const auto snap = reg.snapshot();
    (void)snap;
  }
  for (auto& th : writers) th.join();

  EXPECT_EQ(hits.value(),
            static_cast<std::uint64_t>(kWriters) * kOpsPerWriter);
  EXPECT_EQ(lat.count(),
            static_cast<std::uint64_t>(kWriters) * kOpsPerWriter);
  std::uint64_t total = 0;
  for (const auto& [bucket, n] : lat.buckets()) total += n;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kWriters) * kOpsPerWriter);
}

}  // namespace
}  // namespace tiamat
