// Continuous-telemetry tests: the log-bucketed quantile sketch (bucket
// math, quantile queries, merge/window algebra, snapshot round-trip), the
// fixed-bucket histogram's percentile edge cases it replaces for latency
// metrics, and the TimeSeriesRecorder — byte-determinism across seeded
// runs, bounded memory under long runs, and the health-probe catalog
// firing (and leaving its trace/counter footprints) in a partition
// scenario.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/instance.h"
#include "obs/metrics.h"
#include "obs/quantile.h"
#include "obs/series.h"
#include "obs/trace.h"
#include "tests/test_util.h"

namespace tiamat {
namespace {

using core::Config;
using core::Instance;
using obs::QuantileSketch;
using obs::TimeSeriesRecorder;
using tiamat::testing::World;
using tuples::Pattern;
using tuples::Tuple;

// ---------------- Quantile sketch ----------------

TEST(Quantile, SmallValuesHaveExactBuckets) {
  // The first 2^kSubBits integers are their own buckets: no error at all
  // for tiny latencies.
  for (std::uint64_t v = 0; v < (1u << QuantileSketch::kSubBits); ++v) {
    const std::uint32_t b = QuantileSketch::bucket_of(static_cast<double>(v));
    EXPECT_EQ(b, v);
    EXPECT_EQ(QuantileSketch::upper_edge(b), v);
  }
}

TEST(Quantile, BucketEdgesAreMonotonicAndCoverValues) {
  double prev_edge = -1.0;
  for (double v = 1.0; v < 1e15; v *= 1.7) {
    const std::uint32_t b = QuantileSketch::bucket_of(v);
    const double edge = static_cast<double>(QuantileSketch::upper_edge(b));
    EXPECT_LE(v, edge + 1.0);  // the bucket's edge covers its members
    EXPECT_GE(edge, prev_edge);
    prev_edge = edge;
    // Relative error bound of the log2/32-sub-bucket layout: ~3.2%.
    if (v >= 32.0) {
      EXPECT_LT((edge - v) / v, 0.033)
          << "bucket edge " << edge << " too far above " << v;
    }
  }
}

TEST(Quantile, EmptyAndSingleSample) {
  QuantileSketch s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.p99(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);

  s.observe(1234.5);
  EXPECT_EQ(s.count(), 1u);
  // Any quantile of one sample is that sample; the top bucket reports the
  // exact max rather than its (coarser) bucket edge.
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1234.5);
  EXPECT_DOUBLE_EQ(s.p50(), 1234.5);
  EXPECT_DOUBLE_EQ(s.p99(), 1234.5);
  EXPECT_DOUBLE_EQ(s.max(), 1234.5);
}

TEST(Quantile, NonPositiveAndHugeValuesLandInEndBuckets) {
  QuantileSketch s;
  s.observe(0.0);
  s.observe(-17.0);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.p99(), 0.0);  // both clamp to bucket 0

  // Values beyond the cap saturate instead of overflowing the bit math.
  QuantileSketch big;
  big.observe(1e30);
  EXPECT_EQ(big.count(), 1u);
  EXPECT_DOUBLE_EQ(big.max(), 1e30);
  EXPECT_GT(big.quantile(0.5), 1e18);
}

TEST(Quantile, QuantilesOfUniformRangeStayWithinRelativeError) {
  QuantileSketch s;
  for (int i = 1; i <= 10000; ++i) s.observe(static_cast<double>(i));
  EXPECT_EQ(s.count(), 10000u);
  EXPECT_DOUBLE_EQ(s.max(), 10000.0);
  const double p50 = s.p50();
  const double p90 = s.p90();
  const double p99 = s.p99();
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, s.max());
  // Each reported quantile is the upper edge of the containing bucket:
  // never below the true value, within the layout's relative error above.
  EXPECT_GE(p50, 5000.0);
  EXPECT_LT(p50, 5000.0 * 1.04);
  EXPECT_GE(p90, 9000.0);
  EXPECT_LT(p90, 9000.0 * 1.04);
  EXPECT_GE(p99, 9900.0);
  EXPECT_LT(p99, 9900.0 * 1.04);
}

TEST(Quantile, MergeEqualsObservingEverything) {
  QuantileSketch a, b, all;
  for (int i = 0; i < 500; ++i) {
    const double va = 10.0 * i + 3.0;
    const double vb = 7.0 * i + 900.0;
    a.observe(va);
    b.observe(vb);
    all.observe(va);
    all.observe(vb);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  EXPECT_EQ(a.buckets(), all.buckets());
  EXPECT_DOUBLE_EQ(a.p50(), all.p50());
  EXPECT_DOUBLE_EQ(a.p99(), all.p99());
}

TEST(Quantile, DeltaSinceIsTheWindowBetweenSnapshots) {
  QuantileSketch s;
  for (int i = 0; i < 100; ++i) s.observe(50.0);
  const QuantileSketch before = s;
  for (int i = 0; i < 10; ++i) s.observe(7e6);
  const QuantileSketch window = s.delta_since(before);
  EXPECT_EQ(window.count(), 10u);
  // The window only holds the slow tail; the old fast samples are gone.
  EXPECT_GE(window.quantile(0.0), 6e6);
  EXPECT_GE(window.p99(), 6e6);

  // An unrelated (or reset) "previous" yields the empty window rather than
  // underflowing.
  QuantileSketch fresh;
  const QuantileSketch empty = fresh.delta_since(s);
  EXPECT_EQ(empty.count(), 0u);
}

TEST(Quantile, RegistrySnapshotRoundTripIsByteIdentical) {
  obs::Registry r;
  obs::QuantileSketch& s = r.sketch("op.latency_us", {{"op", "in"}});
  for (int i = 1; i <= 1000; ++i) s.observe(i * 13.0);
  r.sketch("op.latency_us");  // empty sketch serializes too
  r.counter("op.started").add(3);

  const std::string s1 = r.snapshot_json();
  auto doc = obs::json::Value::parse(s1);
  ASSERT_TRUE(doc.has_value());

  obs::Registry r2;
  ASSERT_TRUE(r2.load(*doc));
  EXPECT_EQ(r2.snapshot_json(), s1);
  obs::QuantileSketch& s2 = r2.sketch("op.latency_us", {{"op", "in"}});
  EXPECT_EQ(s2.count(), s.count());
  EXPECT_DOUBLE_EQ(s2.sum(), s.sum());
  EXPECT_DOUBLE_EQ(s2.max(), s.max());
  EXPECT_EQ(s2.buckets(), s.buckets());
  EXPECT_DOUBLE_EQ(s2.p99(), s.p99());
}

// ---------------- Histogram edge cases ----------------

TEST(HistogramEdge, EmptyPercentileIsZero) {
  obs::Histogram h(obs::Histogram::exponential_bounds(1.0, 2.0, 4));
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(HistogramEdge, SingleSampleStaysInItsBucket) {
  obs::Histogram h(obs::Histogram::exponential_bounds(1.0, 2.0, 4));  // 1,2,4,8
  h.observe(3.0);  // bucket (2,4]
  EXPECT_EQ(h.count(), 1u);
  for (double p : {1.0, 50.0, 99.0, 100.0}) {
    EXPECT_GT(h.percentile(p), 2.0);
    EXPECT_LE(h.percentile(p), 4.0);
  }
}

TEST(HistogramEdge, OverflowBucketReportsItsLowerEdge) {
  obs::Histogram h(obs::Histogram::exponential_bounds(1.0, 2.0, 4));  // 1,2,4,8
  h.observe(100.0);  // above every bound: the open overflow bucket
  h.observe(200.0);
  EXPECT_EQ(h.count(), 2u);
  // No upper bound to interpolate toward: the estimate pins to the last
  // finite edge instead of inventing a value.
  EXPECT_DOUBLE_EQ(h.percentile(50), 8.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 8.0);
  const auto& counts = h.bucket_counts();
  EXPECT_EQ(counts.back(), 2u);
}

// ---------------- TimeSeriesRecorder ----------------

// One deterministic two-instance exchange, recorded; returns the series
// document text.
std::string record_run(std::uint64_t seed) {
  World w(seed);
  Config ca;
  ca.name = "a";
  Config cb;
  cb.name = "b";
  auto a = std::make_unique<Instance>(w.tx, ca);
  auto b = std::make_unique<Instance>(w.tx, cb);

  TimeSeriesRecorder rec(w.queue,
                         obs::SeriesOptions{sim::milliseconds(50), 16, 4, 8});
  a->register_telemetry(rec);
  b->register_telemetry(rec);
  rec.start();

  for (int i = 0; i < 20; ++i) {
    b->out(Tuple{"job", i});
    a->in(Pattern{"job", i}, [](auto) {});
  }
  w.run_for(sim::seconds(2));
  rec.stop();
  return rec.to_json().dump(2);
}

TEST(SeriesRecorder, SeededRunsEmitByteIdenticalSeries) {
  const std::string one = record_run(1234);
  const std::string two = record_run(1234);
  EXPECT_EQ(one, two);
  EXPECT_NE(one.find("\"sources\""), std::string::npos);
  EXPECT_NE(one.find("space.bytes"), std::string::npos);
}

TEST(SeriesRecorder, MemoryStaysBoundedUnderLongRuns) {
  World w;
  obs::Registry r;
  obs::SeriesOptions opts;
  opts.interval = sim::milliseconds(10);
  opts.capacity = 8;
  opts.rollup_width = 4;
  opts.rollup_capacity = 3;
  TimeSeriesRecorder rec(w.queue, opts);
  rec.add_source("reg", &r);

  for (int i = 0; i < 1000; ++i) {
    r.counter("op.started").add(1);
    r.gauge("lease.active").set(i % 17);
    rec.sample_now();
  }
  EXPECT_EQ(rec.samples(), 1000u);
  // Raw ring plus rollup windows; everything older was dropped (counted,
  // not silently).
  EXPECT_LE(rec.max_series_points(), opts.capacity + opts.rollup_capacity);
  const std::string doc = rec.to_json().dump();
  EXPECT_NE(doc.find("\"dropped\""), std::string::npos);
}

TEST(SeriesRecorder, WaiterBacklogProbeFiresInPartition) {
  World w;
  Config cfg;
  cfg.name = "isolated";
  cfg.probe_thresholds.waiter_backlog = 4;
  auto node = std::make_unique<Instance>(w.tx, cfg);

  TimeSeriesRecorder rec(w.queue,
                         obs::SeriesOptions{sim::milliseconds(100)});
  node->register_telemetry(rec);
  rec.start();

  // A partitioned node: every blocking take waits on a tuple nobody can
  // provide, so the waiter backlog builds past the threshold.
  for (int i = 0; i < 8; ++i) {
    node->in(Pattern{"never", i}, [](auto) {});
  }
  w.run_for(sim::seconds(1));
  rec.stop();

  EXPECT_GT(rec.breaches(), 0u);
  EXPECT_GE(node->metrics()
                .counter("probe.breaches", {{"probe", "waiter_backlog"}})
                .value(),
            1u);
  // The breach is part of the causal record: the always-on flight recorder
  // kept the kProbeBreach event.
  const auto tail = node->flight_recorder().tail();
  const bool traced =
      std::any_of(tail.begin(), tail.end(), [](const obs::TraceEvent& e) {
        return e.kind == obs::EventKind::kProbeBreach;
      });
  EXPECT_TRUE(traced);

  // The probe's own series is in the document, with its breach count.
  const std::string doc = rec.to_json().dump();
  EXPECT_NE(doc.find("waiter_backlog"), std::string::npos);
}

TEST(SeriesRecorder, StartStopControlSampling) {
  World w;
  obs::Registry r;
  TimeSeriesRecorder rec(w.queue,
                         obs::SeriesOptions{sim::milliseconds(100)});
  rec.add_source("reg", &r);
  EXPECT_FALSE(rec.running());
  rec.start();
  EXPECT_TRUE(rec.running());
  w.run_for(sim::seconds(1));
  const std::uint64_t n = rec.samples();
  EXPECT_GE(n, 9u);
  rec.stop();
  EXPECT_FALSE(rec.running());
  w.run_for(sim::seconds(1));
  EXPECT_EQ(rec.samples(), n);  // no ticks while stopped
}

}  // namespace
}  // namespace tiamat
