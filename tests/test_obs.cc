// Observability subsystem tests: minimal JSON round-trip, metrics registry
// (counters/gauges/fixed-bucket histograms, labeled dimensions, snapshot and
// reload), tracer ring buffer, and an end-to-end three-instance scenario
// proving that span events recorded at different instances join into one
// causal chain through the (origin, op_id) pair.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/instance.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tests/test_util.h"

namespace tiamat {
namespace {

using core::Config;
using core::Instance;
using obs::EventKind;
using obs::TraceEvent;
using tiamat::testing::World;
using tuples::any_int;
using tuples::Pattern;
using tuples::Tuple;

// ---------------- JSON ----------------

TEST(ObsJson, DumpParseRoundTrip) {
  obs::json::Object o;
  o.emplace_back("int", obs::json::Value(std::int64_t{9223372036854775807}));
  o.emplace_back("neg", obs::json::Value(std::int64_t{-42}));
  o.emplace_back("dbl", obs::json::Value(2.5));
  o.emplace_back("str", obs::json::Value(std::string("he\"llo\n")));
  o.emplace_back("flag", obs::json::Value(true));
  o.emplace_back("nil", obs::json::Value(nullptr));
  obs::json::Array a;
  a.emplace_back(std::int64_t{1});
  a.emplace_back(false);
  o.emplace_back("arr", obs::json::Value(std::move(a)));
  const obs::json::Value v{std::move(o)};

  const std::string compact = v.dump();
  auto back = obs::json::Value::parse(compact);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->dump(), compact);

  // Ints survive exactly (not via double), and stay ints after reparse.
  const obs::json::Value* i = back->find("int");
  ASSERT_NE(i, nullptr);
  EXPECT_TRUE(i->is_int());
  EXPECT_EQ(i->as_int(), 9223372036854775807);

  // Indented output parses back to the same document.
  auto pretty = obs::json::Value::parse(v.dump(2));
  ASSERT_TRUE(pretty.has_value());
  EXPECT_EQ(pretty->dump(), compact);
}

TEST(ObsJson, RejectsMalformed) {
  EXPECT_FALSE(obs::json::Value::parse("{").has_value());
  EXPECT_FALSE(obs::json::Value::parse("[1,]").has_value());
  EXPECT_FALSE(obs::json::Value::parse("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(obs::json::Value::parse("nope").has_value());
}

TEST(ObsJson, StringEscapesRoundTrip) {
  // Every escape the emitter can produce parses back to the same bytes.
  const std::string raw = "tab\t quote\" slash\\ nl\n cr\r bs\b ff\f ctl\x01";
  obs::json::Object o;
  o.emplace_back("s", obs::json::Value(raw));
  const std::string dumped = obs::json::Value{std::move(o)}.dump();
  auto back = obs::json::Value::parse(dumped);
  ASSERT_TRUE(back.has_value());
  ASSERT_NE(back->find("s"), nullptr);
  EXPECT_EQ(back->find("s")->as_string(), raw);

  // \uXXXX escapes in input decode (ASCII range used by \u-escaped control
  // characters in foreign dumps).
  auto u = obs::json::Value::parse("\"a\\u0041\\u000a\"");
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->as_string(), "aA\n");

  // Truncated/invalid escapes are rejected, not mangled.
  EXPECT_FALSE(obs::json::Value::parse("\"\\u12\"").has_value());
  EXPECT_FALSE(obs::json::Value::parse("\"\\x41\"").has_value());
  EXPECT_FALSE(obs::json::Value::parse("\"unterminated").has_value());
}

TEST(ObsJson, NestedEmptyContainers) {
  const std::string text = "{\"a\":[],\"b\":{},\"c\":[[],{}],\"d\":[{},[[]]]}";
  auto v = obs::json::Value::parse(text);
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->find("a")->is_array());
  EXPECT_TRUE(v->find("a")->as_array().empty());
  EXPECT_TRUE(v->find("b")->is_object());
  EXPECT_TRUE(v->find("b")->as_object().empty());
  EXPECT_EQ(v->find("c")->as_array().size(), 2u);
  // Compact re-dump is canonical and reparses to the same document.
  const std::string dumped = v->dump();
  auto again = obs::json::Value::parse(dumped);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->dump(), dumped);
}

TEST(ObsJson, Int64BoundariesSurviveExactly) {
  const std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  const std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  obs::json::Object o;
  o.emplace_back("min", obs::json::Value(kMin));
  o.emplace_back("max", obs::json::Value(kMax));
  o.emplace_back("zero", obs::json::Value(std::int64_t{0}));
  const std::string dumped = obs::json::Value{std::move(o)}.dump();
  auto back = obs::json::Value::parse(dumped);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->find("min")->is_int());
  EXPECT_EQ(back->find("min")->as_int(), kMin);
  EXPECT_TRUE(back->find("max")->is_int());
  EXPECT_EQ(back->find("max")->as_int(), kMax);
  EXPECT_EQ(back->find("zero")->as_int(), 0);
  // A second round trip is byte-stable.
  EXPECT_EQ(back->dump(), dumped);
}

// ---------------- Metrics ----------------

TEST(ObsMetrics, CounterAndGaugeBasics) {
  obs::Registry r;
  obs::Counter& c = r.counter("hits");
  ++c;
  c += 4;
  c.add(5);
  EXPECT_EQ(c.value(), 10u);
  EXPECT_EQ(static_cast<std::uint64_t>(c), 10u);  // implicit read API

  obs::Gauge& g = r.gauge("depth");
  g.set(3.0);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST(ObsMetrics, LabelsAreDimensionsAndOrderInsensitive) {
  obs::Registry r;
  obs::Counter& ab = r.counter("rpc", {{"peer", "2"}, {"op", "rd"}});
  obs::Counter& ba = r.counter("rpc", {{"op", "rd"}, {"peer", "2"}});
  obs::Counter& other = r.counter("rpc", {{"op", "in"}, {"peer", "2"}});
  EXPECT_EQ(&ab, &ba);  // canonicalized label order → same instrument
  EXPECT_NE(&ab, &other);
  ++ab;
  EXPECT_EQ(ba.value(), 1u);
  EXPECT_EQ(other.value(), 0u);
}

TEST(ObsMetrics, HistogramPercentilesFromBuckets) {
  obs::Histogram h(obs::Histogram::exponential_bounds(1.0, 2.0, 4));  // 1,2,4,8
  for (int i = 0; i < 1000; ++i) h.observe(3.0);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  // Every sample landed in (2,4]; interpolation stays inside that bucket.
  EXPECT_GT(h.percentile(50), 2.0);
  EXPECT_LE(h.percentile(50), 4.0);
  EXPECT_GT(h.percentile(99), h.percentile(50));
  EXPECT_LE(h.percentile(99), 4.0);
}

TEST(ObsMetrics, RegistrySnapshotJsonRoundTrip) {
  obs::Registry r;
  r.counter("op.started").add(7);
  r.counter("rpc.timeouts", {{"peer", "3"}}).add(2);
  r.gauge("lease.active").set(4);
  obs::Histogram& h = r.histogram("op.latency_us");
  h.observe(250.0);
  h.observe(90000.0);

  const std::string s1 = r.snapshot_json();
  auto doc = obs::json::Value::parse(s1);
  ASSERT_TRUE(doc.has_value());

  obs::Registry r2;
  ASSERT_TRUE(r2.load(*doc));
  EXPECT_EQ(r2.snapshot_json(), s1);
  EXPECT_EQ(r2.counter("op.started").value(), 7u);
  EXPECT_EQ(r2.counter("rpc.timeouts", {{"peer", "3"}}).value(), 2u);
  EXPECT_EQ(r2.histogram("op.latency_us").count(), 2u);
  EXPECT_DOUBLE_EQ(r2.histogram("op.latency_us").percentile(50),
                   h.percentile(50));
}

// ---------------- Tracer ring ----------------

TEST(ObsTrace, RingKeepsNewestAndCountsAll) {
  obs::Tracer t(/*node=*/1, /*capacity=*/4);
  t.set_enabled(true);
  for (std::uint64_t i = 0; i < 6; ++i) {
    t.record(static_cast<sim::Time>(i), /*origin=*/1, /*op_id=*/i,
             EventKind::kOpIssued);
  }
  EXPECT_EQ(t.recorded(), 6u);
  const auto recent = t.recent();
  ASSERT_EQ(recent.size(), 4u);
  EXPECT_EQ(recent.front().op_id, 2u);  // oldest kept
  EXPECT_EQ(recent.back().op_id, 5u);
  for (std::size_t i = 1; i < recent.size(); ++i) {
    EXPECT_LT(recent[i - 1].op_id, recent[i].op_id);  // oldest-first order
  }
}

TEST(ObsTrace, DisabledRecordsNothing) {
  obs::Tracer t(1);
  t.record(0, 1, 1, EventKind::kOpIssued);
  EXPECT_EQ(t.recorded(), 0u);
  EXPECT_TRUE(t.recent().empty());
}

TEST(ObsTrace, EventJsonHasStableSchema) {
  TraceEvent e;
  e.at = 1500;
  e.node = 2;
  e.origin = 1;
  e.op_id = 9;
  e.kind = EventKind::kServeMatch;
  e.peer = 1;
  e.detail = 3;
  auto v = e.to_json();
  ASSERT_NE(v.find("kind"), nullptr);
  EXPECT_EQ(v.find("kind")->as_string(), "serve_match");
  EXPECT_EQ(v.find("at")->as_int(), 1500);
  EXPECT_EQ(v.find("origin")->as_int(), 1);
  EXPECT_EQ(v.find("op")->as_int(), 9);
  ASSERT_TRUE(obs::json::Value::parse(v.dump()).has_value());
}

// ---------------- End-to-end causality ----------------

struct ObsFixture : ::testing::Test {
  World w;

  std::unique_ptr<Instance> make(const std::string& name,
                                 std::shared_ptr<obs::MemorySink> sink) {
    Config cfg;
    cfg.name = name;
    auto inst = std::make_unique<Instance>(w.tx, cfg);
    inst->tracer().set_sink(std::move(sink));  // implies enabled
    return inst;
  }

  static std::vector<TraceEvent> of_op(const obs::MemorySink& sink,
                                       sim::NodeId origin,
                                       std::uint64_t op_id) {
    std::vector<TraceEvent> out;
    for (const TraceEvent& e : sink.events()) {
      if (e.origin == origin && e.op_id == op_id) out.push_back(e);
    }
    return out;
  }

  static std::size_t count_kind(const std::vector<TraceEvent>& ev,
                                EventKind k) {
    return static_cast<std::size_t>(
        std::count_if(ev.begin(), ev.end(),
                      [k](const TraceEvent& e) { return e.kind == k; }));
  }

  static std::ptrdiff_t first_index(const std::vector<TraceEvent>& ev,
                                    EventKind k) {
    auto it = std::find_if(ev.begin(), ev.end(),
                           [k](const TraceEvent& e) { return e.kind == k; });
    return it == ev.end() ? -1 : it - ev.begin();
  }
};

// One remote `in` over three instances where TWO responders both hold a
// match: both tentatively remove their tuple, exactly one accept wins, the
// loser provably puts its tuple back — all stitched together by the
// (origin, op_id) pair across the three per-instance traces.
TEST_F(ObsFixture, RemoteInCausalChainAcrossThreeInstances) {
  auto sink_a = std::make_shared<obs::MemorySink>();
  auto sink_b = std::make_shared<obs::MemorySink>();
  auto sink_c = std::make_shared<obs::MemorySink>();
  auto a = make("a", sink_a);
  auto b = make("b", sink_b);
  auto c = make("c", sink_c);

  b->out(Tuple{"job", 7});
  c->out(Tuple{"job", 7});
  w.run_for(sim::milliseconds(10));

  std::optional<core::ReadResult> got;
  a->in(Pattern{"job", any_int()}, [&](auto r) { got = std::move(r); });
  w.run_for(sim::seconds(5));

  ASSERT_TRUE(got.has_value());
  EXPECT_NE(got->source, a->node());

  // The op id is whatever the originator stamped on kOpIssued.
  const auto issued = std::find_if(
      sink_a->events().begin(), sink_a->events().end(),
      [](const TraceEvent& e) { return e.kind == EventKind::kOpIssued; });
  ASSERT_NE(issued, sink_a->events().end());
  const std::uint64_t op = issued->op_id;
  EXPECT_EQ(issued->origin, a->node());

  // ---- Originator-side chain, in causal order.
  const auto at_a = of_op(*sink_a, a->node(), op);
  const auto i_issued = first_index(at_a, EventKind::kOpIssued);
  const auto i_lease = first_index(at_a, EventKind::kLeaseGranted);
  const auto i_req = first_index(at_a, EventKind::kPeerRequest);
  const auto i_resp = first_index(at_a, EventKind::kPeerResponse);
  const auto i_accept = first_index(at_a, EventKind::kAccept);
  ASSERT_GE(i_issued, 0);
  ASSERT_GT(i_lease, i_issued);
  ASSERT_GT(i_req, i_lease);
  ASSERT_GT(i_resp, i_req);
  ASSERT_GT(i_accept, i_resp);
  // Fan-out reached both remote responders.
  EXPECT_EQ(count_kind(at_a, EventKind::kPeerRequest), 2u);
  // Exactly one accept; the winner is also confirmed (destructive op).
  EXPECT_EQ(count_kind(at_a, EventKind::kAccept), 1u);
  EXPECT_EQ(count_kind(at_a, EventKind::kConfirm), 1u);
  EXPECT_EQ(at_a[static_cast<std::size_t>(i_accept)].peer, got->source);

  // ---- Serving side. Both responders record the same (origin, op_id).
  const auto at_b = of_op(*sink_b, a->node(), op);
  const auto at_c = of_op(*sink_c, a->node(), op);
  EXPECT_EQ(count_kind(at_b, EventKind::kServeStart), 1u);
  EXPECT_EQ(count_kind(at_c, EventKind::kServeStart), 1u);
  EXPECT_EQ(count_kind(at_b, EventKind::kServeMatch) +
                count_kind(at_c, EventKind::kServeMatch),
            2u);  // both tentatively removed their match

  // Exactly one winner confirms; the other provably reinserts.
  EXPECT_EQ(count_kind(at_b, EventKind::kServeConfirm) +
                count_kind(at_c, EventKind::kServeConfirm),
            1u);
  EXPECT_EQ(count_kind(at_b, EventKind::kServeReinsert) +
                count_kind(at_c, EventKind::kServeReinsert),
            1u);
  Instance& winner = got->source == b->node() ? *b : *c;
  Instance& loser = got->source == b->node() ? *c : *b;
  EXPECT_EQ(winner.monitor().counters().tuples_reinserted, 0u);
  EXPECT_EQ(loser.monitor().counters().tuples_reinserted, 1u);

  // The reinserted tuple is really back: one consumed, one remains.
  EXPECT_EQ(loser.local_space().count_matches(Pattern{"job", any_int()}), 1u);

  // The same numbers are visible through the registry (single source of
  // truth for Monitor counters).
  EXPECT_EQ(loser.metrics().counter("serve.reinserted").value(), 1u);
  EXPECT_EQ(a->metrics().counter("op.satisfied_remote").value(), 1u);
  EXPECT_EQ(a->metrics().sketch("op.latency_us").count(), 1u);
  EXPECT_EQ(a->metrics().sketch("op.latency_us", {{"op", "in"}}).count(), 1u);
}

// Churn: a cached responder that stops answering shows up as a per-peer
// timeout, both in the trace and in the labeled registry counter.
TEST_F(ObsFixture, PeerTimeoutIsTracedAndCountedPerPeer) {
  auto sink_a = std::make_shared<obs::MemorySink>();
  auto a = make("a", sink_a);
  auto b = make("b", std::make_shared<obs::MemorySink>());

  b->out(Tuple{"x", 1});
  std::optional<core::ReadResult> first;
  a->rdp(Pattern{"x", any_int()}, [&](auto r) { first = std::move(r); });
  w.run_for(sim::seconds(2));
  ASSERT_TRUE(first.has_value());  // b is now a cached responder

  w.net.set_online(b->node(), false);
  bool done = false;
  a->rdp(Pattern{"x", any_int()}, [&](auto r) {
    done = true;
    EXPECT_FALSE(r.has_value());
  });
  w.run_for(sim::seconds(10));
  ASSERT_TRUE(done);

  EXPECT_EQ(a->monitor().counters().rpc_timeouts, 1u);
  EXPECT_EQ(a->metrics()
                .counter("rpc.timeouts",
                         {{"peer", std::to_string(b->node())}})
                .value(),
            1u);
  const auto& events = sink_a->events();
  EXPECT_EQ(std::count_if(events.begin(), events.end(),
                          [&](const TraceEvent& e) {
                            return e.kind == EventKind::kPeerTimeout &&
                                   e.peer == b->node();
                          }),
            1);
}

// Config-driven tracing (no sink): ring only, bounded by trace_capacity.
TEST_F(ObsFixture, ConfigEnablesRingTracing) {
  Config cfg;
  cfg.name = "t";
  cfg.trace_ops = true;
  cfg.trace_capacity = 8;
  Instance a(w.tx, cfg);
  EXPECT_TRUE(a.tracer().enabled());
  EXPECT_EQ(a.tracer().capacity(), 8u);

  a.out(Tuple{"k", 1});
  std::optional<core::ReadResult> r;
  a.rdp(Pattern{"k", any_int()}, [&](auto res) { r = std::move(res); });
  w.run_for(sim::seconds(1));
  ASSERT_TRUE(r.has_value());
  EXPECT_GT(a.tracer().recorded(), 0u);
  EXPECT_LE(a.tracer().recent().size(), 8u);
}

}  // namespace
}  // namespace tiamat
