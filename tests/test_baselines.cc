// Tests for the §4 baseline systems: each must exhibit both its working
// behaviour and the architectural weakness the paper attributes to it.

#include <gtest/gtest.h>

#include <memory>

#include "baselines/central.h"
#include "baselines/corelime.h"
#include "baselines/lime.h"
#include "baselines/limbo.h"
#include "baselines/peers.h"
#include "sim/topology.h"
#include "tests/test_util.h"

namespace tiamat::baselines {
namespace {

using tuples::any_int;
using tuples::any_string;
using tiamat::testing::World;

// ---------------- Central server (TSpaces/JavaSpaces shape) ----------------

struct CentralFixture : ::testing::Test {
  World w;
  CentralServer server{w.tx};
  CentralClient client{w.tx, server.node()};
};

TEST_F(CentralFixture, OutThenRdp) {
  bool acked = false;
  client.out(Tuple{"x", 1}, [&](bool ok) { acked = ok; });
  w.run_for(sim::milliseconds(100));
  EXPECT_TRUE(acked);
  std::optional<Tuple> got;
  client.rdp(Pattern{"x", any_int()}, [&](auto t) { got = t; });
  w.run_for(sim::milliseconds(100));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ((*got)[1].as_int(), 1);
}

TEST_F(CentralFixture, InpRemovesAtServer) {
  client.out(Tuple{"x", 1});
  w.run_for(sim::milliseconds(50));
  std::optional<Tuple> got;
  client.inp(Pattern{"x", any_int()}, [&](auto t) { got = t; });
  w.run_for(sim::milliseconds(100));
  EXPECT_TRUE(got.has_value());
  EXPECT_EQ(server.space().size(), 0u);
}

TEST_F(CentralFixture, BlockingRdServedWhenTupleArrives) {
  std::optional<Tuple> got;
  bool fired = false;
  client.rd(Pattern{"later"}, w.net.now() + sim::seconds(5), [&](auto t) {
    fired = true;
    got = t;
  });
  w.run_for(sim::milliseconds(200));
  EXPECT_FALSE(fired);
  CentralClient other(w.tx, server.node());
  other.out(Tuple{"later"});
  w.run_for(sim::milliseconds(200));
  EXPECT_TRUE(fired);
  EXPECT_TRUE(got.has_value());
}

TEST_F(CentralFixture, TwoClientsShareTheSpace) {
  CentralClient other(w.tx, server.node());
  client.out(Tuple{"shared", 9});
  w.run_for(sim::milliseconds(50));
  std::optional<Tuple> got;
  other.rdp(Pattern{"shared", any_int()}, [&](auto t) { got = t; });
  w.run_for(sim::milliseconds(100));
  EXPECT_TRUE(got.has_value());
}

TEST(Central, UnreachableServerFailsOps) {
  World w;
  w.net.set_radio_range(10.0);
  CentralServer server(w.tx, {0, 0});
  CentralClient client(w.tx, server.node(), {500, 0});  // out of range
  bool fired = false;
  std::optional<Tuple> got;
  client.rdp(Pattern{"x"}, [&](auto t) {
    fired = true;
    got = t;
  });
  w.run_for(sim::seconds(2));
  EXPECT_TRUE(fired);
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(client.stats().failures, 1u);
}

// ---------------- L²imbo ----------------

struct LimboFixture : ::testing::Test {
  static constexpr sim::GroupId kGroup = 77;
  World w;
  LimboNode a{w.tx, kGroup};
  LimboNode b{w.tx, kGroup};
  LimboNode c{w.tx, kGroup};
};

TEST_F(LimboFixture, OutReplicatesEverywhere) {
  a.out(Tuple{"r", 1});
  w.run_for(sim::milliseconds(100));
  EXPECT_TRUE(b.rd(Pattern{"r", any_int()}).has_value());
  EXPECT_TRUE(c.rd(Pattern{"r", any_int()}).has_value());
  EXPECT_EQ(a.replica_tuples(), 1u);
  EXPECT_EQ(b.replica_tuples(), 1u);
  EXPECT_EQ(c.replica_tuples(), 1u);
}

TEST_F(LimboFixture, EveryNodePaysReplicaStorage) {
  for (int i = 0; i < 50; ++i) a.out(Tuple{"bulk", i, std::string(100, 'x')});
  w.run_for(sim::milliseconds(200));
  // The §4.3 resource criticism: all three nodes store everything.
  EXPECT_GT(a.replica_bytes(), 5000u);
  EXPECT_EQ(a.replica_bytes(), b.replica_bytes());
  EXPECT_EQ(b.replica_bytes(), c.replica_bytes());
}

TEST_F(LimboFixture, OnlyOwnerMayRemove) {
  a.out(Tuple{"owned", 1});
  w.run_for(sim::milliseconds(100));
  EXPECT_FALSE(b.in_owned(Pattern{"owned", any_int()}).has_value())
      << "non-owner must not remove";
  EXPECT_TRUE(a.in_owned(Pattern{"owned", any_int()}).has_value());
  w.run_for(sim::milliseconds(100));
  EXPECT_FALSE(b.rd(Pattern{"owned", any_int()}).has_value());
}

TEST_F(LimboFixture, OwnershipTransferEnablesRemoval) {
  auto id = a.out(Tuple{"gift", 1});
  w.run_for(sim::milliseconds(100));
  EXPECT_TRUE(a.transfer_ownership(id, b.node()));
  w.run_for(sim::milliseconds(100));
  EXPECT_TRUE(b.in_owned(Pattern{"gift", any_int()}).has_value());
}

TEST_F(LimboFixture, TransferRequiresVisibility) {
  auto id = a.out(Tuple{"gift", 1});
  w.run_for(sim::milliseconds(100));
  w.net.set_link(a.node(), b.node(), false);
  EXPECT_FALSE(a.transfer_ownership(id, b.node()))
      << "ownership handover breaks space decoupling: needs direct contact";
}

TEST_F(LimboFixture, DisconnectedRemovalLeavesStaleCopies) {
  a.out(Tuple{"stale", 1});
  w.run_for(sim::milliseconds(100));
  a.disconnect();
  EXPECT_TRUE(a.in_owned(Pattern{"stale", any_int()}).has_value());
  w.run_for(sim::milliseconds(200));
  // The §4.3 anomaly: b still sees a tuple that was removed.
  auto stale = b.rd_with_id(Pattern{"stale", any_int()});
  EXPECT_TRUE(stale.has_value())
      << "the removed tuple should still be visible at b (stale read)";
  // Reconnection reconciles.
  a.reconnect();
  w.run_for(sim::milliseconds(300));
  EXPECT_FALSE(b.rd(Pattern{"stale", any_int()}).has_value());
}

TEST_F(LimboFixture, ReconnectionPullsMissedTuples) {
  a.disconnect();
  b.out(Tuple{"missed", 1});
  w.run_for(sim::milliseconds(200));
  EXPECT_FALSE(a.rd(Pattern{"missed", any_int()}).has_value());
  a.reconnect();
  w.run_for(sim::milliseconds(300));
  EXPECT_TRUE(a.rd(Pattern{"missed", any_int()}).has_value());
  EXPECT_GT(a.stats().sync_tuples_received, 0u);
}

TEST_F(LimboFixture, TombstoneBlocksLateAdd) {
  // a removes a tuple; a node that receives the DEL before the (re-sent)
  // ADD must not resurrect it.
  auto id = a.out(Tuple{"t", 1});
  w.run_for(sim::milliseconds(100));
  a.in_owned(Pattern{"t", any_int()});
  w.run_for(sim::milliseconds(100));
  // Simulate a duplicated late ADD arriving at b: replay via sync path.
  (void)id;
  EXPECT_EQ(b.replica_tuples(), 0u);
  EXPECT_GT(b.tombstones(), 0u);
}

TEST_F(LimboFixture, DepartedOwnerStrandsTuples) {
  // "If a client deposits a sizeable number of tuples in the space and then
  // leaves, no other client can remove those tuples."
  for (int i = 0; i < 5; ++i) a.out(Tuple{"stranded", i});
  w.run_for(sim::milliseconds(100));
  a.disconnect();  // and never returns
  w.run_for(sim::milliseconds(100));
  EXPECT_FALSE(b.in_owned(Pattern{"stranded", any_int()}).has_value());
  EXPECT_FALSE(c.in_owned(Pattern{"stranded", any_int()}).has_value());
  EXPECT_EQ(b.replica_tuples(), 5u) << "tuples consume resources forever";
}

TEST_F(LimboFixture, BlockingRdServedByReplication) {
  std::optional<Tuple> got;
  a.rd_blocking(Pattern{"soon"}, w.net.now() + sim::seconds(5),
                [&](auto t) { got = t; });
  b.out(Tuple{"soon"});
  w.run_for(sim::milliseconds(200));
  EXPECT_TRUE(got.has_value());
}

// ---------------- LIME ----------------

struct LimeFixture : ::testing::Test {
  static constexpr sim::GroupId kFed = 88;
  World w;
  std::vector<std::unique_ptr<LimeHost>> hosts;

  LimeHost& make_host(bool first = false) {
    hosts.push_back(std::make_unique<LimeHost>(w.tx, kFed, first));
    return *hosts.back();
  }
};

TEST_F(LimeFixture, EngagementJoinsFederation) {
  auto& a = make_host(true);
  auto& b = make_host();
  bool joined = false;
  b.engage([&](bool ok) { joined = ok; });
  w.run_for(sim::seconds(1));
  EXPECT_TRUE(joined);
  EXPECT_TRUE(b.engaged());
  EXPECT_EQ(a.members(), 2u);
  EXPECT_EQ(b.members(), 2u);
}

TEST_F(LimeFixture, StateTransfersToNewcomer) {
  auto& a = make_host(true);
  bool done = false;
  a.out(Tuple{"pre", 1}, [&](bool) { done = true; });
  w.run_for(sim::milliseconds(100));
  EXPECT_TRUE(done);
  auto& b = make_host();
  b.engage();
  w.run_for(sim::seconds(1));
  EXPECT_EQ(b.replica_tuples(), 1u);
  std::optional<Tuple> got;
  b.rdp(Pattern{"pre", any_int()}, [&](auto t) { got = t; });
  w.run_for(sim::milliseconds(100));
  EXPECT_TRUE(got.has_value());
}

TEST_F(LimeFixture, FederatedOutVisibleEverywhere) {
  auto& a = make_host(true);
  auto& b = make_host();
  auto& c = make_host();
  b.engage();
  w.run_for(sim::seconds(1));
  c.engage();
  w.run_for(sim::seconds(1));
  a.out(Tuple{"fed", 1});
  w.run_for(sim::seconds(1));
  for (auto* h : {&a, &b, &c}) {
    std::optional<Tuple> got;
    h->rdp(Pattern{"fed", any_int()}, [&](auto t) { got = t; });
    w.run_for(sim::milliseconds(50));
    EXPECT_TRUE(got.has_value());
  }
}

TEST_F(LimeFixture, InpIsExactlyOnceAcrossFederation) {
  auto& a = make_host(true);
  auto& b = make_host();
  b.engage();
  w.run_for(sim::seconds(1));
  a.out(Tuple{"once"});
  w.run_for(sim::seconds(1));
  int got = 0, missed = 0;
  auto count = [&](std::optional<Tuple> t) {
    if (t) {
      ++got;
    } else {
      ++missed;
    }
  };
  a.inp(Pattern{"once"}, count);
  b.inp(Pattern{"once"}, count);
  w.run_for(sim::seconds(1));
  EXPECT_EQ(got, 1);
  EXPECT_EQ(missed, 1);
  EXPECT_EQ(a.replica_tuples(), 0u);
  EXPECT_EQ(b.replica_tuples(), 0u);
}

TEST_F(LimeFixture, OpsStallDuringEngagement) {
  auto& a = make_host(true);
  auto& b = make_host();
  b.engage();
  // Issue an op immediately, while the engagement barrier runs.
  bool done = false;
  w.run_for(sim::milliseconds(1));
  auto& c = make_host();
  c.engage();
  a.out(Tuple{"stall"}, [&](bool) { done = true; });
  w.run_for(sim::seconds(2));
  EXPECT_TRUE(done);
  std::uint64_t stalled = a.stats().ops_stalled_by_engagement +
                          b.stats().ops_stalled_by_engagement +
                          c.stats().ops_stalled_by_engagement;
  // At least one op observed the pause (a's out raced the barriers).
  (void)stalled;  // stall count depends on interleaving; main check: done.
}

TEST_F(LimeFixture, BlockingInServedAfterInsert) {
  auto& a = make_host(true);
  auto& b = make_host();
  b.engage();
  w.run_for(sim::seconds(1));
  std::optional<Tuple> got;
  b.in(Pattern{"job"}, w.net.now() + sim::seconds(5),
       [&](auto t) { got = t; });
  w.run_for(sim::milliseconds(100));
  a.out(Tuple{"job"});
  w.run_for(sim::seconds(2));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(a.replica_tuples(), 0u);
}

TEST_F(LimeFixture, DisengageShrinksMembership) {
  auto& a = make_host(true);
  auto& b = make_host();
  b.engage();
  w.run_for(sim::seconds(1));
  EXPECT_EQ(a.members(), 2u);
  b.disengage();
  w.run_for(sim::milliseconds(200));
  EXPECT_EQ(a.members(), 1u);
  EXPECT_FALSE(b.engaged());
}

TEST_F(LimeFixture, UnengagedHostCannotOperate) {
  auto& a = make_host(true);
  (void)a;
  auto& b = make_host();
  bool ok = true;
  b.out(Tuple{"x"}, [&](bool r) { ok = r; });
  w.run_for(sim::milliseconds(100));
  EXPECT_FALSE(ok);
}

// ---------------- CoreLime ----------------

TEST(CoreLime, AgentReadsRemoteHostSpace) {
  World w;
  CoreLimeHost a(w.tx), b(w.tx);
  b.space().out(Tuple{"remote", 5});
  std::optional<Tuple> got;
  a.agent_op(b.node(), false, Pattern{"remote", any_int()},
             [&](auto t) { got = t; });
  w.run_for(sim::milliseconds(200));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ((*got)[1].as_int(), 5);
  EXPECT_EQ(b.space().size(), 1u);  // non-destructive
  EXPECT_EQ(b.stats().agents_hosted, 1u);
}

TEST(CoreLime, AgentTakeRemovesRemotely) {
  World w;
  CoreLimeHost a(w.tx), b(w.tx);
  b.space().out(Tuple{"take"});
  std::optional<Tuple> got;
  a.agent_op(b.node(), true, Pattern{"take"}, [&](auto t) { got = t; });
  w.run_for(sim::milliseconds(200));
  EXPECT_TRUE(got.has_value());
  EXPECT_EQ(b.space().size(), 0u);
}

TEST(CoreLime, MigrationToUnreachableHostTimesOut) {
  World w;
  w.net.set_radio_range(5.0);
  CoreLimeHost a(w.tx, {0, 0}), b(w.tx, {500, 0});
  bool fired = false;
  std::optional<Tuple> got;
  a.agent_op(b.node(), false, Pattern{"x"}, [&](auto t) {
    fired = true;
    got = t;
  });
  w.run_for(sim::seconds(1));
  EXPECT_TRUE(fired);
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(a.stats().agents_lost, 1u);
}

TEST(CoreLime, AgentTrafficIncludesCodeSize) {
  World w;
  CoreLimeHost a(w.tx), b(w.tx);
  a.agent_code_size = 4096;
  b.space().out(Tuple{"x"});
  a.agent_op(b.node(), false, Pattern{"x"}, [](auto) {});
  w.run_for(sim::milliseconds(200));
  EXPECT_GT(w.net.stats().bytes_sent, 8192u)  // both migration legs
      << "agent migration must ship code+state in both directions";
}

// ---------------- Peers ----------------

TEST(Peers, FloodFindsTupleSeveralHopsAway) {
  // Line topology: only adjacent nodes see each other, so the lookup must
  // flood four hops.
  World w;
  w.net.set_radio_range(15.0);
  std::vector<std::unique_ptr<PeersNode>> nodes;
  for (int i = 0; i < 5; ++i) {
    nodes.push_back(
        std::make_unique<PeersNode>(w.tx, transport::NodeOptions{i * 10.0, 0}));
  }
  nodes[4]->out(Tuple{"far", 1});
  std::optional<Tuple> got;
  nodes[0]->lookup(Pattern{"far", any_int()}, /*ttl=*/6, sim::seconds(2),
                   [&](auto t) { got = t; });
  w.run_all();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ((*got)[1].as_int(), 1);
}

TEST(Peers, TtlLimitsReach) {
  World w;
  w.net.set_radio_range(15.0);
  std::vector<std::unique_ptr<PeersNode>> nodes;
  for (int i = 0; i < 5; ++i) {
    nodes.push_back(
        std::make_unique<PeersNode>(w.tx, transport::NodeOptions{i * 10.0, 0}));
  }
  nodes[4]->out(Tuple{"far"});
  std::optional<Tuple> got;
  bool fired = false;
  nodes[0]->lookup(Pattern{"far"}, /*ttl=*/2, sim::milliseconds(500),
                   [&](auto t) {
                     fired = true;
                     got = t;
                   });
  w.run_all();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(got.has_value()) << "ttl=2 must not reach 4 hops";
  EXPECT_EQ(nodes[0]->stats().timeouts, 1u);
}

TEST(Peers, LocalHitAvoidsFlood) {
  World w;
  PeersNode a(w.tx), b(w.tx);
  a.out(Tuple{"local"});
  std::optional<Tuple> got;
  a.lookup(Pattern{"local"}, 4, sim::seconds(1), [&](auto t) { got = t; });
  EXPECT_TRUE(got.has_value());  // synchronous
  EXPECT_EQ(a.stats().requests_forwarded, 0u);
}

TEST(Peers, DuplicateRequestsSuppressed) {
  World w;
  // Triangle: every node sees both others; floods arrive twice.
  PeersNode a(w.tx), b(w.tx), c(w.tx);
  c.out(Tuple{"dup"});
  std::optional<Tuple> got;
  a.lookup(Pattern{"dup"}, 4, sim::seconds(1), [&](auto t) { got = t; });
  w.run_all();
  EXPECT_TRUE(got.has_value());
  EXPECT_GT(b.stats().duplicates_suppressed + c.stats().duplicates_suppressed,
            0u);
}

TEST(Peers, DestructiveLookupRemoves) {
  World w;
  PeersNode a(w.tx), b(w.tx);
  b.out(Tuple{"take"});
  std::optional<Tuple> got;
  a.lookup(Pattern{"take"}, 2, sim::seconds(1), [&](auto t) { got = t; },
           /*destructive=*/true);
  w.run_all();
  EXPECT_TRUE(got.has_value());
  EXPECT_EQ(b.space().size(), 0u);
}

TEST(Peers, FloodTrafficGrowsWithFanout) {
  // A clique of n nodes: one lookup generates O(n^2) forwards.
  auto traffic = [](std::size_t n) {
    World w;
    std::vector<std::unique_ptr<PeersNode>> nodes;
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<PeersNode>(w.tx));
    }
    nodes[0]->lookup(Pattern{"missing"}, 3, sim::milliseconds(500),
                     [](auto) {});
    w.run_all();
    return w.net.stats().unicasts_sent;
  };
  EXPECT_GT(traffic(12), traffic(6) * 2)
      << "flooding traffic should grow superlinearly";
}

}  // namespace
}  // namespace tiamat::baselines
