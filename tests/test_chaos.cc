// The chaos/fuzz harness's own test suite (DESIGN.md §12):
//
//   - plan generation is a pure function of (seed, options) and survives a
//     JSON round trip losslessly;
//   - the runner satisfies P4: same seed ⇒ identical fingerprint, counters,
//     and verdict;
//   - calm schedules run clean (no oracle trips, real work happens);
//   - the oracle bank detects planted violations;
//   - repro artifacts round-trip through disk and, under the audit preset,
//     an injected index corruption traps, minimizes, and replays with a
//     byte-identical flight-recorder tail.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "audit/audit.h"
#include "chaos/artifact.h"
#include "chaos/oracles.h"
#include "chaos/plan.h"
#include "chaos/runner.h"
#include "chaos/shrink.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "space/local_space.h"

namespace tiamat::chaos {
namespace {

using tuples::any_int;
using tuples::any_string;
using tuples::Pattern;
using tuples::Tuple;

Options small_options(const char* profile = "mixed") {
  Options o;
  o.instances = 4;
  o.max_events = 80;
  o.profile = profile;
  return o;
}

TEST(PlanGeneration, DeterministicInSeed) {
  const Plan a = generate_plan(11, small_options());
  const Plan b = generate_plan(11, small_options());
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());

  const Plan c = generate_plan(12, small_options());
  EXPECT_NE(a.to_json().dump(), c.to_json().dump());
}

TEST(PlanGeneration, EventsAreOrderedAndSlotted) {
  const Plan p = generate_plan(3, small_options("crashy"));
  ASSERT_FALSE(p.events.empty());
  std::uint64_t prev = 0;
  for (const Event& e : p.events) {
    EXPECT_GE(e.at_ms, prev);
    prev = e.at_ms;
    EXPECT_LE(e.at_ms, p.options.horizon_ms);
  }
}

TEST(PlanJson, RoundTripsLosslessly) {
  for (const char* profile : {"mixed", "calm", "crashy", "hostile", "mobile"}) {
    const Plan p = generate_plan(21, small_options(profile));
    auto back = Plan::from_json(p.to_json());
    ASSERT_TRUE(back.has_value()) << profile;
    EXPECT_EQ(p.to_json().dump(), back->to_json().dump()) << profile;
  }
}

TEST(PlanJson, RejectsGarbage) {
  EXPECT_FALSE(Plan::from_json(obs::json::Value(std::int64_t{42})).has_value());
  auto v = obs::json::Value::parse(R"({"seed": 1})");
  ASSERT_TRUE(v.has_value());
  EXPECT_FALSE(Plan::from_json(*v).has_value());
}

// P4: the whole run — schedule execution, oracle checks, fingerprinting —
// is a pure function of the seed.
TEST(RunnerDeterminism, SameSeedSameFingerprint) {
  const Plan plan = generate_plan(5, small_options());
  const RunResult a = Runner(plan).run();
  const RunResult b = Runner(plan).run();
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_EQ(a.callbacks, b.callbacks);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.ok(), b.ok());
}

TEST(RunnerDeterminism, DifferentSeedsDiverge) {
  const RunResult a = Runner(generate_plan(31, small_options())).run();
  const RunResult b = Runner(generate_plan(32, small_options())).run();
  EXPECT_NE(a.fingerprint, b.fingerprint);
}

TEST(Runner, CalmScheduleRunsClean) {
  const Plan plan = generate_plan(7, small_options("calm"));
  const RunResult r = Runner(plan).run();
  EXPECT_TRUE(r.ok()) << r.trap->oracle << ": " << r.trap->detail;
  EXPECT_GT(r.ops, 0u);
  EXPECT_EQ(r.executed, plan.events.size());
}

TEST(Runner, FaultyProfilesStillSatisfyOracles) {
  for (const char* profile : {"crashy", "hostile", "mobile"}) {
    const RunResult r = Runner(generate_plan(13, small_options(profile))).run();
    EXPECT_TRUE(r.ok()) << profile << ": " << r.trap->oracle << ": "
                        << r.trap->detail;
    EXPECT_GT(r.faults, 0u) << profile;
  }
}

TEST(Oracles, ExactlyOnceFlagsDuplicates) {
  EXPECT_FALSE(check_exactly_once({1, 2, 3}).has_value());
  auto f = check_exactly_once({1, 2, 2, 3});
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->oracle, "exactly-once");
  EXPECT_NE(f->detail.find("seq 2"), std::string::npos);
}

TEST(Oracles, TerminationFlagsLostCallbacks) {
  EXPECT_FALSE(check_termination(5, 3, 2).has_value());
  auto f = check_termination(4, 3, 2);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->oracle, "termination");
}

TEST(Oracles, KeyedDifferentialAgreesOnRealSpace) {
  sim::EventQueue queue;
  sim::Rng rng(9);
  space::LocalTupleSpace space(queue, rng);
  space.out(Tuple{"key0", std::int64_t{1}});
  space.out(Tuple{"key0", std::int64_t{2}});
  space.out(Tuple{"key1", std::int64_t{3}, true});
  const std::vector<Pattern> probes = {
      Pattern{"key0", any_int()},
      Pattern{"key1", any_int(), tuples::any()},
      Pattern{any_string(), any_int()},
      Pattern{"absent", any_int()},
  };
  EXPECT_FALSE(check_keyed_differential(space, probes).has_value());
}

TEST(Artifact, RoundTripsThroughDisk) {
  const Plan plan = generate_plan(17, small_options());
  Artifact a;
  a.plan = plan;
  a.oracle = "exactly-once";
  a.detail = "seq 9 delivered twice";
  a.at = 1234567;
  a.event_index = 42;
  a.fingerprint = 0xDEADBEEFCAFEull;
  a.flight_tails = "  node 1:\n    at=1 probe op=1:1\n";
  a.minimized = true;
  a.original_events = 320;

  const std::string path =
      ::testing::TempDir() + "/" + artifact_filename(17);
  ASSERT_TRUE(a.save(path));
  auto b = Artifact::load(path);
  std::remove(path.c_str());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a.to_json().dump(), b->to_json().dump());
  EXPECT_EQ(b->plan.to_json().dump(), plan.to_json().dump());
}

TEST(Artifact, LoadRejectsMissingOrMalformed) {
  EXPECT_FALSE(Artifact::load("/nonexistent/repro_0.json").has_value());
}

#if TIAMAT_AUDIT_ENABLED

// The audit-preset death path, end to end: a schedule that plants an index
// corruption must trap, shrink to (nearly) just the injection event, and
// replay from the artifact with the same fingerprint and byte-identical
// flight-recorder tails — the CI repro contract.
TEST(AuditDeathPath, CorruptionTrapsMinimizesAndReplays) {
  Plan plan;
  plan.seed = 4242;
  plan.options = small_options("calm");
  plan.options.inject_corruption = true;
  Event out;
  out.kind = EventKind::kOut;
  out.at_ms = 50;
  out.slot = 0;
  out.tuple = Tuple{"key0", std::int64_t{1}};
  plan.events.push_back(out);
  Event inject;
  inject.kind = EventKind::kInjectCorruption;
  inject.at_ms = 500;
  inject.slot = 1;
  plan.events.push_back(inject);

  const RunResult r = Runner(plan).run();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.trap->oracle, "audit");
  EXPECT_EQ(r.trap->event_index, 1u);
  EXPECT_FALSE(r.trap->flight_tails.empty());

  // Write the artifact, load it back, and re-run the embedded plan: the
  // trap must reproduce exactly.
  Artifact a = Artifact::from_run(plan, r);
  const std::string path =
      ::testing::TempDir() + "/" + artifact_filename(plan.seed);
  ASSERT_TRUE(a.save(path));
  auto loaded = Artifact::load(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.has_value());

  const RunResult again = Runner(loaded->plan).run();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.trap->oracle, loaded->oracle);
  EXPECT_EQ(again.fingerprint, loaded->fingerprint);
  EXPECT_EQ(again.trap->flight_tails, loaded->flight_tails);

  // Delta-debugging drops the decoy out event.
  const ShrinkResult s = shrink(plan, "audit");
  EXPECT_EQ(s.plan.events.size(), 1u);
  EXPECT_EQ(s.plan.events[0].kind, EventKind::kInjectCorruption);
  EXPECT_TRUE(s.minimal);
}

TEST(AuditDeathPath, GeneratedCorruptionScheduleTraps) {
  Options o = small_options();
  o.inject_corruption = true;
  o.max_events = 160;
  // Corruption events are rare; scan a few seeds for a schedule that
  // carries one (the scan itself is deterministic).
  for (std::uint64_t seed = 1; seed < 32; ++seed) {
    const Plan plan = generate_plan(seed, o);
    bool has_injection = false;
    for (const Event& e : plan.events) {
      has_injection |= e.kind == EventKind::kInjectCorruption;
    }
    if (!has_injection) continue;
    const RunResult r = Runner(plan).run();
    ASSERT_FALSE(r.ok()) << "seed " << seed;
    EXPECT_EQ(r.trap->oracle, "audit");
    return;
  }
  FAIL() << "no generated schedule carried a corruption event";
}

#else  // !TIAMAT_AUDIT_ENABLED

// Without the audit hooks compiled in, injection events are inert: counted
// as skipped, never trapping.
TEST(AuditDeathPath, CorruptionEventSkippedWithoutAudit) {
  Plan plan;
  plan.seed = 4242;
  plan.options = small_options("calm");
  plan.options.inject_corruption = true;
  Event inject;
  inject.kind = EventKind::kInjectCorruption;
  inject.at_ms = 500;
  inject.slot = 1;
  plan.events.push_back(inject);

  const RunResult r = Runner(plan).run();
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.skipped, 1u);
}

#endif  // TIAMAT_AUDIT_ENABLED

}  // namespace
}  // namespace tiamat::chaos
