// Edge cases of the core protocol that the main integration suite does not
// cover: lease revocation mid-operation, contact-budget exhaustion on
// blocking ops, malformed/cross-protocol traffic, tentative-hold recovery
// after originator death, eval/space interactions, and config extremes.

#include <gtest/gtest.h>

#include <memory>

#include "baselines/peers.h"
#include "core/instance.h"
#include "tests/test_util.h"

namespace tiamat::core {
namespace {

using tuples::any_int;
using tuples::any_string;
using tuples::Pattern;
using tuples::Tuple;
using tiamat::testing::World;

Config cfg(const char* name) {
  Config c;
  c.name = name;
  c.lease_caps.default_ttl = sim::seconds(20);
  c.lease_caps.max_ttl = sim::seconds(60);
  return c;
}

// ---------------- Revocation (§2.5 last resort) ----------------

TEST(Revocation, MidOperationRevocationReturnsNothing) {
  World w;
  Instance a(w.tx, cfg("a"));
  Instance b(w.tx, cfg("b"));
  bool fired = false;
  std::optional<ReadResult> got;
  ASSERT_TRUE(a.in(Pattern{"never"}, [&](auto r) {
    fired = true;
    got = r;
  }));
  w.run_for(sim::milliseconds(500));
  EXPECT_FALSE(fired);
  // The instance reclaims everything (device shutting down).
  a.leases().revoke_all();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(a.open_ops(), 0u);
  // b's remote waiter is cancelled too (after the CancelOp propagates).
  w.run_for(sim::seconds(1));
  EXPECT_EQ(b.serving_count(), 0u);
  EXPECT_EQ(b.local_space().waiter_count(), 0u);
}

TEST(Revocation, RevokedStorageLeaseReclaimsTuple) {
  World w;
  Instance a(w.tx, cfg("a"));
  a.out(Tuple{"doomed"});
  EXPECT_EQ(a.local_space().count_matches(Pattern{"doomed"}), 1u);
  a.leases().revoke_all();
  EXPECT_EQ(a.local_space().count_matches(Pattern{"doomed"}), 0u);
}

// ---------------- Contact budget on blocking ops ----------------

TEST(Budget, BlockingOpStopsContactingWhenBudgetSpent) {
  World w;
  Config c = cfg("a");
  c.lease_caps.default_contacts = 2;
  c.lease_caps.max_contacts = 2;
  Instance a(w.tx, c);
  std::vector<std::unique_ptr<Instance>> peers;
  for (int i = 0; i < 6; ++i) {
    peers.push_back(std::make_unique<Instance>(
        w.tx, cfg(("p" + std::to_string(i)).c_str())));
  }
  ASSERT_TRUE(a.rd(Pattern{"scarce"}, [](auto) {}));
  w.run_for(sim::seconds(2));
  // At most 2 peers are serving the op (budget), not all 6.
  std::size_t serving = 0;
  for (auto& p : peers) serving += p->serving_count();
  EXPECT_LE(serving, 2u);
  EXPECT_GE(serving, 1u);
}

TEST(Budget, LateProducerBeyondBudgetStillMissed) {
  // With a tiny budget the op cannot widen to late arrivals once spent —
  // the documented meaning of a contact-bounded lease.
  World w;
  Config c = cfg("a");
  c.lease_caps.default_contacts = 1;
  c.lease_caps.max_contacts = 1;
  c.lease_caps.default_ttl = sim::seconds(5);
  c.lease_caps.max_ttl = sim::seconds(5);
  Instance a(w.tx, c);
  Instance first(w.tx, cfg("first"));  // consumes the only contact
  bool got = false;
  ASSERT_TRUE(a.rd(Pattern{"late"}, [&](auto r) { got = r.has_value(); }));
  w.run_for(sim::seconds(1));
  Instance late(w.tx, cfg("late"));
  late.out(Tuple{"late"});
  w.run_for(sim::seconds(10));
  EXPECT_FALSE(got) << "the single contact went to `first`; the lease "
                       "does not permit contacting `late`";
}

// ---------------- Hostile / foreign traffic ----------------

TEST(Robustness, GarbageAndForeignMessagesIgnored) {
  World w;
  Instance a(w.tx, cfg("a"));
  auto attacker = w.net.add_node();
  // Raw garbage.
  w.net.send(attacker, a.node(), sim::Payload{0xDE, 0xAD, 0xBE, 0xEF});
  // A well-formed message of a baseline protocol (Peers request).
  net::Message foreign;
  foreign.type = baselines::kPeersRequest;
  foreign.op_id = 7;
  foreign.origin = attacker;
  foreign.h(3).h(false);
  foreign.pattern = Pattern{any_string()};
  w.net.send(attacker, a.node(), net::encode_message(foreign));
  // Confirm/release/cancel for operations that never existed.
  for (std::uint16_t t : {net::kConfirm, net::kRelease, net::kCancelOp,
                          net::kOpResponse}) {
    net::Message stray;
    stray.type = t;
    stray.op_id = 12345;
    stray.origin = attacker;
    w.net.send(attacker, a.node(), net::encode_message(stray));
  }
  w.run_all();
  EXPECT_EQ(a.endpoint().stats().decode_failures, 1u);
  EXPECT_GE(a.endpoint().stats().unhandled, 1u);  // the Peers request
  // The instance still works.
  a.out(Tuple{"alive"});
  EXPECT_EQ(a.local_space().count_matches(Pattern{"alive"}), 1u);
}

TEST(Robustness, TruncatedOpRequestIgnored) {
  World w;
  Instance a(w.tx, cfg("a"));
  auto attacker = w.net.add_node();
  net::Message bad;
  bad.type = net::kOpRequest;  // missing headers and pattern
  bad.op_id = 1;
  bad.origin = attacker;
  w.net.send(attacker, a.node(), net::encode_message(bad));
  w.run_all();
  EXPECT_EQ(a.serving_count(), 0u);
}

// ---------------- Originator death with tentative outstanding ----------------

TEST(TentativeRecovery, OriginatorDiesBeforeConfirm) {
  World w;
  auto taker = std::make_unique<Instance>(w.tx, cfg("taker"));
  Instance holder(w.tx, cfg("holder"));
  holder.out(Tuple{"prize"},
             lease::FlexibleRequester{lease::for_duration(sim::seconds(50))});

  // Let the take begin, then kill the taker the instant the request is
  // sent (before any response can arrive, 2 ms link latency).
  taker->inp(Pattern{"prize"}, [](auto) {});
  w.run_for(sim::milliseconds(1));
  taker.reset();  // in-flight messages to it will be dropped

  // The holder's tentative hold expires and the tuple returns.
  w.run_for(sim::seconds(5));
  EXPECT_EQ(holder.local_space().tentative_count(), 0u);
  EXPECT_EQ(holder.local_space().count_matches(Pattern{"prize"}), 1u)
      << "the tuple must come back when the winner never confirms";
}

// ---------------- Misc semantics ----------------

TEST(Misc, RdDoesNotConsumeEvenRemotely) {
  World w;
  Instance a(w.tx, cfg("a"));
  Instance b(w.tx, cfg("b"));
  b.out(Tuple{"shared"},
        lease::FlexibleRequester{lease::for_duration(sim::seconds(50))});
  for (int i = 0; i < 5; ++i) {
    auto r = run_rd(a, Pattern{"shared"});
    ASSERT_TRUE(r.has_value());
  }
  EXPECT_EQ(b.local_space().count_matches(Pattern{"shared"}), 1u);
}

TEST(Misc, ConcurrentOpsOnOneInstanceAreIndependent) {
  World w;
  Instance a(w.tx, cfg("a"));
  Instance b(w.tx, cfg("b"));
  int fired = 0;
  std::optional<ReadResult> r1, r2, r3;
  a.in(Pattern{"x", 1}, [&](auto r) { ++fired; r1 = r; });
  a.in(Pattern{"x", 2}, [&](auto r) { ++fired; r2 = r; });
  a.rd(Pattern{"x", 3}, [&](auto r) { ++fired; r3 = r; });
  b.out(Tuple{"x", 2});
  b.out(Tuple{"x", 3});
  w.run_for(sim::seconds(2));
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(r1.has_value());
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->tuple[1].as_int(), 2);
  ASSERT_TRUE(r3.has_value());
  w.run_for(sim::seconds(30));  // first op's lease expires
  EXPECT_EQ(fired, 3);
  EXPECT_FALSE(r1.has_value());
}

TEST(Misc, SelfDirectedOpsBehaveLikeLocal) {
  World w;
  Instance a(w.tx, cfg("a"));
  a.out(Tuple{"mine", 5});
  std::optional<ReadResult> got;
  ASSERT_TRUE(a.inp_at(a.handle(), Pattern{"mine", any_int()},
                       [&](auto r) { got = r; }));
  w.run_for(sim::milliseconds(100));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->source, a.node());
  EXPECT_EQ(a.endpoint().stats().sent, 0u) << "no network for self ops";
}

TEST(Misc, ZeroArityTuplesWorkEndToEnd) {
  World w;
  Instance a(w.tx, cfg("a"));
  Instance b(w.tx, cfg("b"));
  b.out(Tuple{});
  auto r = run_inp(a, Pattern{});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->tuple.arity(), 0u);
}

TEST(Misc, LargeTupleCrossesNetworkIntact) {
  World w;
  Instance a(w.tx, cfg("a"));
  Instance b(w.tx, cfg("b"));
  tuples::Blob big(64 * 1024, 0x5A);
  // The default byte budget (64 KiB) cannot cover the tuple + overhead:
  EXPECT_EQ(b.out(Tuple{"blob", tuples::Value(big)},
                  lease::FlexibleRequester{lease::for_duration(
                      sim::seconds(50))}),
            Status::kRefusedBySpace);
  // An explicit budget gets it stored.
  lease::LeaseTerms roomy;
  roomy.ttl = sim::seconds(50);
  roomy.max_bytes = 128 * 1024;
  EXPECT_EQ(b.out(Tuple{"blob", tuples::Value(big)},
                  lease::FlexibleRequester{roomy}),
            Status::kOk);
  auto r = run_inp(a, Pattern{"blob", tuples::any_blob()});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->tuple[1].as_blob(), big);
}

TEST(Misc, StatusToStringCoversAll) {
  EXPECT_STREQ(to_string(Status::kOk), "ok");
  EXPECT_STREQ(to_string(Status::kLeaseRefused), "lease-refused");
  EXPECT_STREQ(to_string(Status::kRefusedBySpace), "refused-by-space");
  EXPECT_STREQ(to_string(Status::kUnavailable), "unavailable");
  EXPECT_STREQ(to_string(Status::kQueued), "queued");
  EXPECT_STREQ(to_string(OpKind::kRd), "rd");
  EXPECT_STREQ(to_string(OpKind::kInp), "inp");
}

TEST(Misc, OutRefusedWhenByteBudgetTooSmall) {
  World w;
  Instance a(w.tx, cfg("a"));
  lease::LeaseTerms tiny;
  tiny.max_bytes = 4;  // cannot cover any real tuple
  EXPECT_EQ(a.out(Tuple{"big", std::string(100, 'x')},
                  lease::FlexibleRequester{tiny}),
            Status::kRefusedBySpace);
  EXPECT_EQ(a.local_space().count_matches(
                Pattern{"big", tuples::any_string()}),
            0u);
}

}  // namespace
}  // namespace tiamat::core
