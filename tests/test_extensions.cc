// Tests for the extension features: remote eval via the computation
// registry (§2.4 "special versions" of eval), space persistence (the
// handle's `persistent` flag), and the generalised eval engine.

#include <gtest/gtest.h>

#include <memory>

#include "core/instance.h"
#include "space/persist.h"
#include "space/registry.h"
#include "tests/test_util.h"

namespace tiamat {
namespace {

using core::Instance;
using tuples::any_int;
using tuples::Pattern;
using tuples::Tuple;
using tiamat::testing::World;

core::Config cfg(const char* name) {
  core::Config c;
  c.name = name;
  c.lease_caps.default_ttl = sim::seconds(30);
  c.lease_caps.max_ttl = sim::seconds(60);
  return c;
}

// ---------------- ComputationRegistry ----------------

TEST(Registry, InstallAndFind) {
  space::ComputationRegistry reg;
  EXPECT_FALSE(reg.knows("square"));
  reg.install("square", [](const Tuple& args) {
    return Tuple{"result", args[0].as_int() * args[0].as_int()};
  });
  ASSERT_TRUE(reg.knows("square"));
  const auto* c = reg.find("square");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->fn(Tuple{6})[1].as_int(), 36);
  EXPECT_EQ(reg.find("missing"), nullptr);
}

TEST(Registry, CostMayDependOnArgs) {
  space::ComputationRegistry reg;
  space::NamedComputation c;
  c.fn = [](const Tuple& args) { return args; };
  c.cost = [](const Tuple& args) {
    return sim::milliseconds(args[0].as_int());
  };
  reg.install("variable", std::move(c));
  EXPECT_EQ(reg.find("variable")->cost(Tuple{25}), sim::milliseconds(25));
}

// ---------------- EvalEngine::submit_fn ----------------

TEST(EvalFn, WholeTupleComputation) {
  World w;
  sim::Rng rng(3);
  space::LocalTupleSpace sp(w.queue, rng);
  space::EvalEngine engine(w.queue, sp);
  engine.submit_fn([] { return Tuple{"computed", 99}; }, sim::seconds(1));
  EXPECT_EQ(sp.size(), 0u);
  w.queue.run_until(sim::seconds(2));
  ASSERT_EQ(sp.size(), 1u);
  EXPECT_TRUE(sp.rdp(Pattern{"computed", 99}).has_value());
}

TEST(EvalFn, HaltBeforeCompletion) {
  World w;
  sim::Rng rng(3);
  space::LocalTupleSpace sp(w.queue, rng);
  space::EvalEngine engine(w.queue, sp);
  engine.submit_fn([] { return Tuple{"never"}; }, sim::seconds(10),
                   /*halt_by=*/sim::seconds(1));
  w.run_all();
  EXPECT_EQ(sp.size(), 0u);
  EXPECT_EQ(engine.stats().halted, 1u);
}

// ---------------- Remote eval ----------------

struct RemoteEvalFixture : ::testing::Test {
  World w;
  Instance a{w.tx, cfg("a")};
  Instance b{w.tx, cfg("b")};

  void SetUp() override {
    // Both ends know "square" — the registry models pre-shared code.
    auto square = [](const Tuple& args) {
      return Tuple{"sq", args[0].as_int(), args[0].as_int() * args[0].as_int()};
    };
    a.computations().install("square", square, sim::milliseconds(50));
    b.computations().install("square", square, sim::milliseconds(50));
  }
};

TEST_F(RemoteEvalFixture, RunsAtDestinationAndResultStaysThere) {
  bool accepted = false;
  EXPECT_EQ(a.eval_at(b.handle(), "square", Tuple{7},
                      [&](bool ok) { accepted = ok; }),
            core::Status::kOk);
  w.run_for(sim::seconds(1));
  EXPECT_TRUE(accepted);
  // The resultant tuple is in b's space, not a's.
  EXPECT_EQ(b.local_space().count_matches(Pattern{"sq", 7, 49}), 1u);
  EXPECT_EQ(a.local_space().count_matches(Pattern{"sq", 7, 49}), 0u);
  // ...and a can read it through the logical space.
  auto r = core::run_rdp(a, Pattern{"sq", 7, any_int()});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->tuple[2].as_int(), 49);
}

TEST_F(RemoteEvalFixture, UnknownComputationRefused) {
  bool accepted = true;
  a.eval_at(b.handle(), "cube", Tuple{3}, [&](bool ok) { accepted = ok; });
  w.run_for(sim::seconds(1));
  EXPECT_FALSE(accepted);
  EXPECT_EQ(b.local_space().size(), 1u);  // just the handle tuple
}

TEST_F(RemoteEvalFixture, SelfEvalRunsLocally) {
  bool accepted = false;
  EXPECT_EQ(a.eval_at(a.handle(), "square", Tuple{4},
                      [&](bool ok) { accepted = ok; }),
            core::Status::kOk);
  w.run_for(sim::seconds(1));
  EXPECT_TRUE(accepted);
  EXPECT_EQ(a.local_space().count_matches(Pattern{"sq", 4, 16}), 1u);
}

TEST_F(RemoteEvalFixture, UnreachableDestinationFails) {
  w.net.set_link(a.node(), b.node(), false);
  bool accepted = true;
  auto s = a.eval_at(b.handle(), "square", Tuple{5},
                     [&](bool ok) { accepted = ok; });
  w.run_for(sim::seconds(1));
  EXPECT_EQ(s, core::Status::kUnavailable);
  EXPECT_FALSE(accepted);
}

TEST_F(RemoteEvalFixture, ServingLeaseHaltsLongComputation) {
  // b's policy caps leases at 60 s; a 10-minute computation is halted.
  auto slow = [](const Tuple&) { return Tuple{"slow-done"}; };
  b.computations().install("slow", slow, sim::seconds(600));
  bool accepted = false;
  a.eval_at(b.handle(), "slow", Tuple{}, [&](bool ok) { accepted = ok; });
  w.run_for(sim::seconds(700));
  EXPECT_TRUE(accepted) << "the job was taken...";
  EXPECT_EQ(b.local_space().count_matches(Pattern{"slow-done"}), 0u)
      << "...but its lease lapsed before completion (§2.5 eval semantics)";
  EXPECT_EQ(b.evals().stats().halted, 1u);
}

// ---------------- Persistence ----------------

struct PersistFixture : ::testing::Test {
  World w;
  sim::Rng rng{5};
};

TEST_F(PersistFixture, SnapshotRestoreRoundTrip) {
  space::LocalTupleSpace sp(w.queue, rng);
  sp.out(Tuple{"a", 1});
  sp.out(Tuple{"b", 2, "payload"});
  sp.out(Tuple{"c", 3.5, true});
  auto image = space::snapshot(sp, w.queue.now());

  space::LocalTupleSpace sp2(w.queue, rng);
  auto n = space::restore(sp2, image);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, 3u);
  EXPECT_EQ(sp2.count_matches(Pattern{"a", any_int()}), 1u);
  EXPECT_EQ(sp2.count_matches(Pattern{"b", any_int(), tuples::any_string()}),
            1u);
}

TEST_F(PersistFixture, RemainingLeaseSurvivesRestore) {
  space::LocalTupleSpace sp(w.queue, rng);
  sp.out(Tuple{"leased"}, sim::seconds(10));
  sp.out(Tuple{"forever"});
  w.queue.run_until(sim::seconds(4));  // 6 s of lease left
  auto image = space::snapshot(sp, w.queue.now());

  // "Restart" into a fresh space 100 s later: the lease is *relative*.
  w.queue.run_until(sim::seconds(100));
  space::LocalTupleSpace sp2(w.queue, rng);
  ASSERT_TRUE(space::restore(sp2, image).has_value());
  EXPECT_EQ(sp2.size(), 2u);
  w.queue.run_until(sim::seconds(104));  // 4 of the 6 s consumed
  EXPECT_EQ(sp2.count_matches(Pattern{"leased"}), 1u);
  w.queue.run_until(sim::seconds(107));  // past the 6 s
  EXPECT_EQ(sp2.count_matches(Pattern{"leased"}), 0u);
  EXPECT_EQ(sp2.count_matches(Pattern{"forever"}), 1u);
}

TEST_F(PersistFixture, ExpiredAtSnapshotIsDropped) {
  space::LocalTupleSpace sp(w.queue, rng);
  sp.out(Tuple{"dying"}, sim::seconds(1));
  // Snapshot exactly at expiry: remaining <= 0.
  auto image = space::snapshot(sp, sim::seconds(1));
  space::LocalTupleSpace sp2(w.queue, rng);
  auto n = space::restore(sp2, image);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, 0u);
}

TEST_F(PersistFixture, TentativeTuplesNotPersisted) {
  space::LocalTupleSpace sp(w.queue, rng);
  sp.out(Tuple{"kept"});
  sp.out(Tuple{"taken"});
  auto t = sp.take_tentative(Pattern{"taken"});
  ASSERT_TRUE(t.has_value());
  auto image = space::snapshot(sp, w.queue.now());
  space::LocalTupleSpace sp2(w.queue, rng);
  ASSERT_TRUE(space::restore(sp2, image).has_value());
  EXPECT_EQ(sp2.count_matches(Pattern{"kept"}), 1u);
  EXPECT_EQ(sp2.count_matches(Pattern{"taken"}), 0u);
}

TEST_F(PersistFixture, MalformedImageRejected) {
  space::LocalTupleSpace sp(w.queue, rng);
  EXPECT_FALSE(space::restore(sp, tuples::Bytes{0xFF, 0x01, 0x02}).has_value());
  EXPECT_EQ(sp.size(), 0u);
  // Truncations of a valid image are rejected too.
  sp.out(Tuple{"x", 1});
  auto image = space::snapshot(sp, w.queue.now());
  for (std::size_t cut = 1; cut < image.size(); ++cut) {
    tuples::Bytes prefix(image.begin(), image.begin() + cut);
    space::LocalTupleSpace target(w.queue, rng);
    EXPECT_FALSE(space::restore(target, prefix).has_value());
  }
}

TEST_F(PersistFixture, RestartedInstanceScenario) {
  // End-to-end: a "persistent kiosk" instance restarts; its advertised
  // persistence is real — remote tuples deposited before the restart are
  // available after it.
  core::Config kiosk_cfg = cfg("kiosk");
  kiosk_cfg.persistent_space = true;
  auto kiosk = std::make_unique<Instance>(w.tx, kiosk_cfg);
  Instance visitor(w.tx, cfg("visitor"));
  visitor.out_at(kiosk->handle(), Tuple{"note", "remember me"},
                 core::UnavailablePolicy::kAbandon);
  w.run_for(sim::seconds(1));
  ASSERT_EQ(kiosk->local_space().count_matches(
                Pattern{"note", tuples::any_string()}),
            1u);

  // Snapshot, destroy, restart, restore.
  auto image = space::snapshot(kiosk->local_space(), w.queue.now());
  kiosk.reset();
  w.run_for(sim::seconds(1));
  auto kiosk2 = std::make_unique<Instance>(w.tx, kiosk_cfg);
  ASSERT_TRUE(space::restore(kiosk2->local_space(), image).has_value());

  auto r = core::run_rdp(visitor, Pattern{"note", tuples::any_string()});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->tuple[1].as_string(), "remember me");
}

}  // namespace
}  // namespace tiamat
