// Integration tests for the §3.2 applications: the web client/proxy stack
// and the fractal master/worker, plus the load-balancing baseline. Each
// paper-claimed benefit (anonymous proxy addition, failover, disconnected
// requests, worker elasticity) is asserted here.

#include <gtest/gtest.h>

#include <memory>

#include "apps/fractal.h"
#include "apps/loadbalance.h"
#include "apps/web.h"
#include "tests/test_util.h"

namespace tiamat::apps {
namespace {

using tiamat::testing::World;

core::Config app_config(const std::string& name) {
  core::Config cfg;
  cfg.name = name;
  cfg.lease_caps.default_ttl = sim::seconds(30);
  cfg.lease_caps.max_ttl = sim::seconds(120);
  return cfg;
}

// ---------------- Web client / proxy ----------------

struct WebFixture : ::testing::Test {
  World w;
  web::OriginServer origin{w.queue};

  std::unique_ptr<core::Instance> client_node =
      std::make_unique<core::Instance>(w.tx, app_config("client"));
  std::unique_ptr<core::Instance> proxy_node =
      std::make_unique<core::Instance>(w.tx, app_config("proxy"));

  web::WebClient client{*client_node};
  web::ProxyServer proxy{*proxy_node, origin};

  void SetUp() override {
    origin.add_page("http://example.org/", "<html>hello</html>");
    origin.add_page("http://example.org/a", "page-a");
    origin.add_page("http://example.org/b", "page-b");
  }
};

TEST_F(WebFixture, RequestServedThroughSpace) {
  proxy.start();
  std::optional<std::string> body;
  client.get("http://example.org/", [&](auto b) { body = b; });
  w.run_for(sim::seconds(2));
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(*body, "<html>hello</html>");
  EXPECT_EQ(proxy.stats().served, 1u);
  EXPECT_EQ(client.stats().completed, 1u);
}

TEST_F(WebFixture, MissingPageReports404) {
  proxy.start();
  bool fired = false;
  std::optional<std::string> body;
  client.get("http://nowhere/", [&](auto b) {
    fired = true;
    body = b;
  });
  w.run_for(sim::seconds(2));
  EXPECT_TRUE(fired);
  EXPECT_FALSE(body.has_value());
  EXPECT_EQ(proxy.stats().not_found, 1u);
}

TEST_F(WebFixture, ProxyCacheServesRepeats) {
  proxy.start();
  std::optional<std::string> b1, b2;
  client.get("http://example.org/a", [&](auto b) { b1 = b; });
  w.run_for(sim::seconds(1));
  client.get("http://example.org/a", [&](auto b) { b2 = b; });
  w.run_for(sim::seconds(1));
  EXPECT_TRUE(b1.has_value());
  EXPECT_TRUE(b2.has_value());
  EXPECT_EQ(origin.fetches(), 1u);
  EXPECT_EQ(proxy.stats().cache_hits, 1u);
}

TEST_F(WebFixture, ProxyAddedInvisiblyToClient) {
  // No proxy running; the client issues a request anyway.
  std::optional<std::string> body;
  client.get("http://example.org/", [&](auto b) { body = b; },
             sim::seconds(20));
  w.run_for(sim::seconds(2));
  EXPECT_FALSE(body.has_value());
  // A brand-new proxy appears — dynamically, "without the clients'
  // knowledge" — and serves the queued request tuple.
  auto new_node = std::make_unique<core::Instance>(w.tx, app_config("p2"));
  web::ProxyServer late_proxy(*new_node, origin);
  late_proxy.start();
  w.run_for(sim::seconds(5));
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(*body, "<html>hello</html>");
}

TEST_F(WebFixture, FailedProxyReplacedWithoutPerturbingClient) {
  proxy.start();
  std::optional<std::string> b1;
  client.get("http://example.org/a", [&](auto b) { b1 = b; });
  w.run_for(sim::seconds(1));
  ASSERT_TRUE(b1.has_value());

  // The proxy dies...
  proxy.stop();
  proxy_node.reset();
  // ...and a replacement appears. The client code never changes.
  auto replacement_node =
      std::make_unique<core::Instance>(w.tx, app_config("p2"));
  web::ProxyServer replacement(*replacement_node, origin);
  replacement.start();

  std::optional<std::string> b2;
  client.get("http://example.org/b", [&](auto b) { b2 = b; },
             sim::seconds(20));
  w.run_for(sim::seconds(5));
  ASSERT_TRUE(b2.has_value());
  EXPECT_EQ(*b2, "page-b");
  EXPECT_EQ(replacement.stats().served, 1u);
}

TEST_F(WebFixture, TwoProxiesLoadBalance) {
  proxy.start();
  auto node2 = std::make_unique<core::Instance>(w.tx, app_config("p2"));
  web::ProxyServer proxy2(*node2, origin, /*cache=*/false);
  proxy2.start();
  int done = 0;
  for (int i = 0; i < 12; ++i) {
    client.get("http://example.org/a", [&](auto b) {
      if (b) ++done;
    });
  }
  w.run_for(sim::seconds(10));
  EXPECT_EQ(done, 12);
  // Both proxies did some work (nondeterministic split, but neither zero
  // with 12 requests is overwhelmingly likely under random selection).
  EXPECT_GT(proxy.stats().served + proxy2.stats().served, 11u);
}

TEST_F(WebFixture, DisconnectedClientRequestServedOnReconnect) {
  // "The client can still make requests even in the absence of any servers
  // (e.g., while in between networks). Once a server becomes visible it
  // will see the tuple (assuming the lease has not expired)."
  proxy.start();
  w.net.set_link(client_node->node(), proxy_node->node(), false);
  std::optional<std::string> body;
  client.get("http://example.org/", [&](auto b) { body = b; },
             sim::seconds(30));
  w.run_for(sim::seconds(2));
  EXPECT_FALSE(body.has_value());
  // The client comes back into coverage.
  w.net.clear_link_override(client_node->node(), proxy_node->node());
  w.run_for(sim::seconds(5));
  ASSERT_TRUE(body.has_value());
}

TEST_F(WebFixture, ExpiredRequestLeaseIsNotServed) {
  // No proxy; patience shorter than the proxy's arrival.
  std::optional<std::string> body;
  bool fired = false;
  client.get("http://example.org/", [&](auto b) {
    fired = true;
    body = b;
  },
             sim::seconds(1));
  w.run_for(sim::seconds(3));
  EXPECT_TRUE(fired);
  EXPECT_FALSE(body.has_value());
  proxy.start();
  w.run_for(sim::seconds(3));
  EXPECT_EQ(proxy.stats().served, 0u)
      << "the request tuple's lease expired; nothing to serve";
}

// ---------------- Fractal ----------------

struct FractalFixture : ::testing::Test {
  World w;
  fractal::Params small_image() {
    fractal::Params p;
    p.width = 16;
    p.height = 8;
    p.max_iter = 32;
    return p;
  }
};

TEST_F(FractalFixture, ComputeRowIsARealMandelbrot) {
  fractal::Params p;
  p.width = 64;
  p.height = 64;
  p.max_iter = 100;
  // The centre of the set does not escape; far outside escapes instantly.
  auto mid = fractal::compute_row(p, 32);  // y ~ 0
  EXPECT_EQ(mid[40], 100);  // cx ~ -0.1, cy ~ 0: inside the set
  auto top = fractal::compute_row(p, 0);  // y = -1.5
  EXPECT_LT(top[0], 5);  // corner escapes almost immediately
}

TEST_F(FractalFixture, PackUnpackRoundTrip) {
  std::vector<std::uint16_t> row{0, 1, 255, 256, 65535};
  EXPECT_EQ(fractal::unpack_row(fractal::pack_row(row)), row);
}

TEST_F(FractalFixture, MasterAndOneWorkerComplete) {
  core::Instance m_node(w.tx, app_config("master"));
  core::Instance w_node(w.tx, app_config("worker"));
  fractal::Master master(m_node, small_image(), 1);
  fractal::Worker worker(w_node, sim::milliseconds(5));
  worker.start();
  bool done = false;
  master.start([&] { done = true; });
  w.run_for(sim::seconds(30));
  ASSERT_TRUE(done);
  EXPECT_TRUE(master.complete());
  EXPECT_EQ(worker.stats().rows_computed, 8u);
  // Verify the image content against a direct computation.
  auto expected = fractal::compute_row(master.params(), 3);
  EXPECT_EQ(master.image()[3], expected);
}

TEST_F(FractalFixture, MoreWorkersFinishFaster) {
  auto run_with_workers = [&](int n) {
    World w2;
    core::Instance m_node(w2.tx, app_config("master"));
    std::vector<std::unique_ptr<core::Instance>> nodes;
    std::vector<std::unique_ptr<fractal::Worker>> workers;
    for (int i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<core::Instance>(
          w2.tx, app_config("w" + std::to_string(i))));
      workers.push_back(std::make_unique<fractal::Worker>(
          *nodes.back(), sim::milliseconds(100)));
      workers.back()->start();
    }
    fractal::Params p;
    p.width = 16;
    p.height = 16;
    fractal::Master master(m_node, p, 1);
    bool done = false;
    master.start([&] { done = true; });
    w2.run_for(sim::seconds(60));
    EXPECT_TRUE(done);
    return master.elapsed();
  };
  auto t1 = run_with_workers(1);
  auto t4 = run_with_workers(4);
  EXPECT_LT(t4, t1) << "parallel speedup expected";
}

TEST_F(FractalFixture, WorkerJoinMidRunHelps) {
  core::Instance m_node(w.tx, app_config("master"));
  core::Instance w1_node(w.tx, app_config("w1"));
  fractal::Params p;
  p.width = 16;
  p.height = 16;
  fractal::Master master(m_node, p, 1);
  fractal::Worker w1(w1_node, sim::milliseconds(200));
  w1.start();
  bool done = false;
  master.start([&] { done = true; });
  w.run_for(sim::milliseconds(900));
  EXPECT_FALSE(done);
  // A second worker wanders in mid-computation.
  core::Instance w2_node(w.tx, app_config("w2"));
  fractal::Worker w2(w2_node, sim::milliseconds(200));
  w2.start();
  w.run_for(sim::seconds(60));
  ASSERT_TRUE(done);
  EXPECT_GT(w2.stats().rows_computed, 0u) << "the late worker contributed";
}

TEST_F(FractalFixture, WorkerLeavingDoesNotLoseJob) {
  core::Instance m_node(w.tx, app_config("master"));
  auto w1_node = std::make_unique<core::Instance>(w.tx, app_config("w1"));
  fractal::Params p;
  p.width = 8;
  p.height = 8;
  fractal::Master master(m_node, p, 1);
  auto w1 = std::make_unique<fractal::Worker>(*w1_node, sim::milliseconds(100));
  w1->start();
  bool done = false;
  master.start([&] { done = true; });
  w.run_for(sim::milliseconds(300));
  // Worker departs abruptly (stop loop, then the whole device vanishes —
  // worker object first, since it references the instance).
  w1->stop();
  w1.reset();
  w1_node.reset();
  // A replacement appears; remaining task tuples are still leased in the
  // master's space.
  core::Instance w2_node(w.tx, app_config("w2"));
  fractal::Worker w2(w2_node, sim::milliseconds(100));
  w2.start();
  w.run_for(sim::seconds(60));
  EXPECT_TRUE(done);
}

// ---------------- Load-balancing baseline ----------------

TEST_F(FractalFixture, LbBaselineCompletes) {
  loadbalance::LoadBalancingServer server(w.tx);
  loadbalance::LbWorker worker(w.tx, server.node(), sim::milliseconds(5));
  worker.start();
  fractal::Params p;
  p.width = 16;
  p.height = 8;
  loadbalance::LbMaster master(w.tx, server.node(), p, 1);
  bool done = false;
  w.run_for(sim::milliseconds(50));  // let registration land
  master.start([&] { done = true; });
  w.run_for(sim::seconds(30));
  ASSERT_TRUE(done);
  EXPECT_EQ(server.stats().tasks_assigned, 8u);
  // Same pixels as the direct computation.
  EXPECT_EQ(master.image()[2], fractal::compute_row(p, 2));
}

TEST_F(FractalFixture, LbBaselineReassignsOnWorkerDeath) {
  loadbalance::LoadBalancingServer server(w.tx);
  server.task_timeout = sim::milliseconds(500);
  auto dying = std::make_unique<loadbalance::LbWorker>(
      w.tx, server.node(), sim::seconds(10) /*too slow: will "die"*/);
  dying->start();
  loadbalance::LbWorker healthy(w.tx, server.node(), sim::milliseconds(5));
  fractal::Params p;
  p.width = 8;
  p.height = 4;
  loadbalance::LbMaster master(w.tx, server.node(), p, 1);
  bool done = false;
  w.run_for(sim::milliseconds(50));
  master.start([&] { done = true; });
  w.run_for(sim::milliseconds(600));
  dying.reset();       // actually gone now
  healthy.start();     // registers late
  w.run_for(sim::seconds(30));
  EXPECT_TRUE(done);
  EXPECT_GT(server.stats().reassignments, 0u)
      << "the server had to hand-roll failover";
}

TEST_F(FractalFixture, LbBaselineStallsWithNoWorkers) {
  loadbalance::LoadBalancingServer server(w.tx);
  fractal::Params p;
  p.width = 8;
  p.height = 4;
  loadbalance::LbMaster master(w.tx, server.node(), p, 1);
  bool done = false;
  master.start([&] { done = true; });
  w.run_for(sim::seconds(5));
  EXPECT_FALSE(done);
  // Tasks queue at the server until a worker registers (same as Tiamat's
  // task tuples waiting in the space — but here only because the server
  // implements queueing explicitly).
  loadbalance::LbWorker worker(w.tx, server.node(), sim::milliseconds(5));
  worker.start();
  w.run_for(sim::seconds(30));
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace tiamat::apps
