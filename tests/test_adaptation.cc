// Tests for the §5.4/§5.5 adaptive lease policy: the policy models
// application behaviour from operation outcomes and adjusts its default
// grants, within the caps (the §5.6 rule: resource pressure always wins).

#include <gtest/gtest.h>

#include <memory>

#include "core/adaptation.h"
#include "core/instance.h"
#include "tests/test_util.h"

namespace tiamat::core {
namespace {

using tuples::any_int;
using tuples::Pattern;
using tuples::Tuple;
using tiamat::testing::World;

lease::DefaultLeasePolicy::Caps small_caps() {
  lease::DefaultLeasePolicy::Caps caps;
  caps.default_ttl = sim::seconds(4);
  caps.max_ttl = sim::seconds(120);
  caps.default_contacts = 8;
  caps.max_contacts = 64;
  return caps;
}

AdaptiveTuning fast_tuning() {
  AdaptiveTuning t;
  t.window = 8;  // adapt quickly in tests
  return t;
}

// ---------------- Unit level ----------------

TEST(Adaptive, ExpiriesStretchTtl) {
  AdaptiveLeasePolicy p(small_caps(), fast_tuning());
  const auto before = p.current_ttl();
  for (int i = 0; i < 8; ++i) p.observe_expiry();
  EXPECT_GT(p.current_ttl(), before);
  EXPECT_EQ(p.adaptation_rounds(), 1u);
}

TEST(Adaptive, QuickMatchesShrinkTtl) {
  AdaptiveLeasePolicy p(small_caps(), fast_tuning());
  const auto before = p.current_ttl();
  for (int i = 0; i < 8; ++i) {
    p.observe_match(sim::milliseconds(10), sim::seconds(4));
  }
  EXPECT_LT(p.current_ttl(), before);
}

TEST(Adaptive, TtlStaysWithinBounds) {
  auto tuning = fast_tuning();
  tuning.min_ttl = sim::seconds(2);
  tuning.max_ttl = sim::seconds(8);
  AdaptiveLeasePolicy p(small_caps(), tuning);
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 8; ++i) p.observe_expiry();
  }
  EXPECT_LE(p.current_ttl(), sim::seconds(8));
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 8; ++i) {
      p.observe_match(sim::milliseconds(1), p.current_ttl());
    }
  }
  EXPECT_GE(p.current_ttl(), sim::seconds(2));
}

TEST(Adaptive, MixedOutcomesHoldSteady) {
  AdaptiveLeasePolicy p(small_caps(), fast_tuning());
  const auto before = p.current_ttl();
  // 12% expiries, slow-ish matches: inside the dead band.
  for (int i = 0; i < 7; ++i) {
    p.observe_match(sim::seconds(3), sim::seconds(4));
  }
  p.observe_expiry();
  EXPECT_EQ(p.current_ttl(), before);
}

TEST(Adaptive, OffersUseAdaptedDefaults) {
  AdaptiveLeasePolicy p(small_caps(), fast_tuning());
  for (int i = 0; i < 8; ++i) p.observe_expiry();
  const auto grown = p.current_ttl();
  auto offer = p.offer(lease::unbounded(), {}, 0);
  ASSERT_TRUE(offer.has_value());
  EXPECT_EQ(*offer->ttl, grown);
}

TEST(Adaptive, ExplicitRequestsBypassAdaptation) {
  AdaptiveLeasePolicy p(small_caps(), fast_tuning());
  for (int i = 0; i < 8; ++i) p.observe_expiry();
  auto offer = p.offer(lease::for_duration(sim::seconds(1)), {}, 0);
  ASSERT_TRUE(offer.has_value());
  EXPECT_EQ(*offer->ttl, sim::seconds(1)) << "an explicit ask is honoured";
}

TEST(Adaptive, ResourcePressureStillWins) {
  auto caps = small_caps();
  caps.max_stored_bytes = 100;
  AdaptiveLeasePolicy p(caps, fast_tuning());
  lease::ResourceUsage saturated;
  saturated.stored_bytes = 100;
  EXPECT_FALSE(p.offer(lease::unbounded(), saturated, 0).has_value())
      << "§5.6: adaptation never overrides saturation refusal";
}

// ---------------- End to end ----------------

TEST(AdaptiveE2E, InstanceStretchesLeasesInSlowEnvironment) {
  World w;
  Config cfg;
  cfg.name = "adaptive";
  cfg.lease_caps = small_caps();
  auto policy = std::make_unique<AdaptiveLeasePolicy>(small_caps(),
                                                      fast_tuning());
  auto* policy_ptr = policy.get();
  Instance consumer(w.tx, cfg, std::move(policy));
  Instance producer(w.tx, Config{});

  const auto ttl_before = policy_ptr->current_ttl();

  // Environment where matches appear *after* the default 4 s lease: every
  // op expires, so the policy should learn to wait longer.
  for (int i = 0; i < 10; ++i) {
    bool fired = false;
    consumer.in(Pattern{"slow", any_int()}, [&](auto) { fired = true; });
    w.run_for(sim::seconds(30));  // no tuple arrives in time
    EXPECT_TRUE(fired);
  }
  EXPECT_GT(policy_ptr->current_ttl(), ttl_before)
      << "repeated expiries must stretch granted TTLs";

  // With the longer leases (>= 6 s after one adaptation round), a
  // producer that takes 5 s is now matched — it would have missed the
  // original 4 s lease.
  bool got = false;
  consumer.in(Pattern{"slow", any_int()}, [&](auto r) {
    got = r.has_value();
  });
  w.queue.schedule_after(sim::seconds(5),
                         [&] { producer.out(Tuple{"slow", 1}); });
  w.run_for(sim::seconds(30));
  EXPECT_TRUE(got) << "the adapted lease should now outlast the 5 s gap";
}

TEST(AdaptiveE2E, InstanceShrinksLeasesInFastEnvironment) {
  World w;
  Config cfg;
  cfg.name = "adaptive";
  auto policy = std::make_unique<AdaptiveLeasePolicy>(small_caps(),
                                                      fast_tuning());
  auto* policy_ptr = policy.get();
  Instance consumer(w.tx, cfg, std::move(policy));
  Instance producer(w.tx, Config{});

  const auto ttl_before = policy_ptr->current_ttl();
  for (int i = 0; i < 20; ++i) {
    producer.out(Tuple{"fast", i});
  }
  w.run_for(sim::milliseconds(100));
  for (int i = 0; i < 20; ++i) {
    consumer.inp(Pattern{"fast", any_int()}, [](auto) {});
    w.run_for(sim::milliseconds(200));
  }
  EXPECT_LT(policy_ptr->current_ttl(), ttl_before)
      << "instant matches must shrink granted TTLs";
}

}  // namespace
}  // namespace tiamat::core
