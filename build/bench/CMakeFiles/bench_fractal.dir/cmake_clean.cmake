file(REMOVE_RECURSE
  "CMakeFiles/bench_fractal.dir/bench_fractal.cc.o"
  "CMakeFiles/bench_fractal.dir/bench_fractal.cc.o.d"
  "bench_fractal"
  "bench_fractal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fractal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
