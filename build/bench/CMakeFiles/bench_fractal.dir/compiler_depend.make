# Empty compiler generated dependencies file for bench_fractal.
# This may be replaced when dependencies are built.
