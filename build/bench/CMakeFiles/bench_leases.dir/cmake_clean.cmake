file(REMOVE_RECURSE
  "CMakeFiles/bench_leases.dir/bench_leases.cc.o"
  "CMakeFiles/bench_leases.dir/bench_leases.cc.o.d"
  "bench_leases"
  "bench_leases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_leases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
