# Empty dependencies file for bench_leases.
# This may be replaced when dependencies are built.
