file(REMOVE_RECURSE
  "CMakeFiles/bench_flooding.dir/bench_flooding.cc.o"
  "CMakeFiles/bench_flooding.dir/bench_flooding.cc.o.d"
  "bench_flooding"
  "bench_flooding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flooding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
