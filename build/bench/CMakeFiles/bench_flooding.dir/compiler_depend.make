# Empty compiler generated dependencies file for bench_flooding.
# This may be replaced when dependencies are built.
