file(REMOVE_RECURSE
  "CMakeFiles/bench_central.dir/bench_central.cc.o"
  "CMakeFiles/bench_central.dir/bench_central.cc.o.d"
  "bench_central"
  "bench_central.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_central.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
