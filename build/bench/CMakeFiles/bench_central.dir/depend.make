# Empty dependencies file for bench_central.
# This may be replaced when dependencies are built.
