file(REMOVE_RECURSE
  "CMakeFiles/bench_webapp.dir/bench_webapp.cc.o"
  "CMakeFiles/bench_webapp.dir/bench_webapp.cc.o.d"
  "bench_webapp"
  "bench_webapp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_webapp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
