# Empty dependencies file for bench_webapp.
# This may be replaced when dependencies are built.
