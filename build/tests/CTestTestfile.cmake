# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_tuple[1]_include.cmake")
include("/root/repo/build/tests/test_lease[1]_include.cmake")
include("/root/repo/build/tests/test_space[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_adaptation[1]_include.cmake")
include("/root/repo/build/tests/test_core_edge[1]_include.cmake")
