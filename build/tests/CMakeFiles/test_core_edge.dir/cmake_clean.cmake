file(REMOVE_RECURSE
  "CMakeFiles/test_core_edge.dir/test_core_edge.cc.o"
  "CMakeFiles/test_core_edge.dir/test_core_edge.cc.o.d"
  "test_core_edge"
  "test_core_edge.pdb"
  "test_core_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
