# Empty dependencies file for test_adaptation.
# This may be replaced when dependencies are built.
