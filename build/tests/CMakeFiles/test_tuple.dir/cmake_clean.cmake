file(REMOVE_RECURSE
  "CMakeFiles/test_tuple.dir/test_tuple.cc.o"
  "CMakeFiles/test_tuple.dir/test_tuple.cc.o.d"
  "test_tuple"
  "test_tuple.pdb"
  "test_tuple[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tuple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
