file(REMOVE_RECURSE
  "CMakeFiles/fractal.dir/fractal.cpp.o"
  "CMakeFiles/fractal.dir/fractal.cpp.o.d"
  "fractal"
  "fractal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fractal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
