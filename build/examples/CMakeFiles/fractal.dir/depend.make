# Empty dependencies file for fractal.
# This may be replaced when dependencies are built.
