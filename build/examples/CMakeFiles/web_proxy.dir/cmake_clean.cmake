file(REMOVE_RECURSE
  "CMakeFiles/web_proxy.dir/web_proxy.cpp.o"
  "CMakeFiles/web_proxy.dir/web_proxy.cpp.o.d"
  "web_proxy"
  "web_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
