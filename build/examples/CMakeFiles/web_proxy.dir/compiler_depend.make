# Empty compiler generated dependencies file for web_proxy.
# This may be replaced when dependencies are built.
