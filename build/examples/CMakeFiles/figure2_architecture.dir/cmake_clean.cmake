file(REMOVE_RECURSE
  "CMakeFiles/figure2_architecture.dir/figure2_architecture.cpp.o"
  "CMakeFiles/figure2_architecture.dir/figure2_architecture.cpp.o.d"
  "figure2_architecture"
  "figure2_architecture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure2_architecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
