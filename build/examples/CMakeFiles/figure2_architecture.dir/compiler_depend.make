# Empty compiler generated dependencies file for figure2_architecture.
# This may be replaced when dependencies are built.
