# Empty compiler generated dependencies file for figure1_logical_spaces.
# This may be replaced when dependencies are built.
