file(REMOVE_RECURSE
  "CMakeFiles/figure1_logical_spaces.dir/figure1_logical_spaces.cpp.o"
  "CMakeFiles/figure1_logical_spaces.dir/figure1_logical_spaces.cpp.o.d"
  "figure1_logical_spaces"
  "figure1_logical_spaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1_logical_spaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
