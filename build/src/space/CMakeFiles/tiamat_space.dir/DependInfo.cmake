
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/space/eval.cc" "src/space/CMakeFiles/tiamat_space.dir/eval.cc.o" "gcc" "src/space/CMakeFiles/tiamat_space.dir/eval.cc.o.d"
  "/root/repo/src/space/handle.cc" "src/space/CMakeFiles/tiamat_space.dir/handle.cc.o" "gcc" "src/space/CMakeFiles/tiamat_space.dir/handle.cc.o.d"
  "/root/repo/src/space/local_space.cc" "src/space/CMakeFiles/tiamat_space.dir/local_space.cc.o" "gcc" "src/space/CMakeFiles/tiamat_space.dir/local_space.cc.o.d"
  "/root/repo/src/space/persist.cc" "src/space/CMakeFiles/tiamat_space.dir/persist.cc.o" "gcc" "src/space/CMakeFiles/tiamat_space.dir/persist.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tuple/CMakeFiles/tiamat_tuple.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tiamat_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
