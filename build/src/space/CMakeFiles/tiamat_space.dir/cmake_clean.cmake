file(REMOVE_RECURSE
  "CMakeFiles/tiamat_space.dir/eval.cc.o"
  "CMakeFiles/tiamat_space.dir/eval.cc.o.d"
  "CMakeFiles/tiamat_space.dir/handle.cc.o"
  "CMakeFiles/tiamat_space.dir/handle.cc.o.d"
  "CMakeFiles/tiamat_space.dir/local_space.cc.o"
  "CMakeFiles/tiamat_space.dir/local_space.cc.o.d"
  "CMakeFiles/tiamat_space.dir/persist.cc.o"
  "CMakeFiles/tiamat_space.dir/persist.cc.o.d"
  "libtiamat_space.a"
  "libtiamat_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiamat_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
