# Empty compiler generated dependencies file for tiamat_space.
# This may be replaced when dependencies are built.
