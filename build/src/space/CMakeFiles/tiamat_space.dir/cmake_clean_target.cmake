file(REMOVE_RECURSE
  "libtiamat_space.a"
)
