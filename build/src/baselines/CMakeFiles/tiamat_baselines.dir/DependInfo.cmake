
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/central.cc" "src/baselines/CMakeFiles/tiamat_baselines.dir/central.cc.o" "gcc" "src/baselines/CMakeFiles/tiamat_baselines.dir/central.cc.o.d"
  "/root/repo/src/baselines/corelime.cc" "src/baselines/CMakeFiles/tiamat_baselines.dir/corelime.cc.o" "gcc" "src/baselines/CMakeFiles/tiamat_baselines.dir/corelime.cc.o.d"
  "/root/repo/src/baselines/limbo.cc" "src/baselines/CMakeFiles/tiamat_baselines.dir/limbo.cc.o" "gcc" "src/baselines/CMakeFiles/tiamat_baselines.dir/limbo.cc.o.d"
  "/root/repo/src/baselines/lime.cc" "src/baselines/CMakeFiles/tiamat_baselines.dir/lime.cc.o" "gcc" "src/baselines/CMakeFiles/tiamat_baselines.dir/lime.cc.o.d"
  "/root/repo/src/baselines/peers.cc" "src/baselines/CMakeFiles/tiamat_baselines.dir/peers.cc.o" "gcc" "src/baselines/CMakeFiles/tiamat_baselines.dir/peers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/space/CMakeFiles/tiamat_space.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tiamat_net.dir/DependInfo.cmake"
  "/root/repo/build/src/tuple/CMakeFiles/tiamat_tuple.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tiamat_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
