# Empty dependencies file for tiamat_baselines.
# This may be replaced when dependencies are built.
