file(REMOVE_RECURSE
  "libtiamat_baselines.a"
)
