file(REMOVE_RECURSE
  "CMakeFiles/tiamat_baselines.dir/central.cc.o"
  "CMakeFiles/tiamat_baselines.dir/central.cc.o.d"
  "CMakeFiles/tiamat_baselines.dir/corelime.cc.o"
  "CMakeFiles/tiamat_baselines.dir/corelime.cc.o.d"
  "CMakeFiles/tiamat_baselines.dir/limbo.cc.o"
  "CMakeFiles/tiamat_baselines.dir/limbo.cc.o.d"
  "CMakeFiles/tiamat_baselines.dir/lime.cc.o"
  "CMakeFiles/tiamat_baselines.dir/lime.cc.o.d"
  "CMakeFiles/tiamat_baselines.dir/peers.cc.o"
  "CMakeFiles/tiamat_baselines.dir/peers.cc.o.d"
  "libtiamat_baselines.a"
  "libtiamat_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiamat_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
