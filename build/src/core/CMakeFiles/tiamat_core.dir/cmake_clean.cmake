file(REMOVE_RECURSE
  "CMakeFiles/tiamat_core.dir/adaptation.cc.o"
  "CMakeFiles/tiamat_core.dir/adaptation.cc.o.d"
  "CMakeFiles/tiamat_core.dir/instance.cc.o"
  "CMakeFiles/tiamat_core.dir/instance.cc.o.d"
  "CMakeFiles/tiamat_core.dir/logical_space.cc.o"
  "CMakeFiles/tiamat_core.dir/logical_space.cc.o.d"
  "CMakeFiles/tiamat_core.dir/remote_ops.cc.o"
  "CMakeFiles/tiamat_core.dir/remote_ops.cc.o.d"
  "CMakeFiles/tiamat_core.dir/routing.cc.o"
  "CMakeFiles/tiamat_core.dir/routing.cc.o.d"
  "libtiamat_core.a"
  "libtiamat_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiamat_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
