file(REMOVE_RECURSE
  "libtiamat_core.a"
)
