# Empty dependencies file for tiamat_core.
# This may be replaced when dependencies are built.
