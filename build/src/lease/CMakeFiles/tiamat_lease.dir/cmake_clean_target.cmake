file(REMOVE_RECURSE
  "libtiamat_lease.a"
)
