file(REMOVE_RECURSE
  "CMakeFiles/tiamat_lease.dir/lease.cc.o"
  "CMakeFiles/tiamat_lease.dir/lease.cc.o.d"
  "CMakeFiles/tiamat_lease.dir/manager.cc.o"
  "CMakeFiles/tiamat_lease.dir/manager.cc.o.d"
  "CMakeFiles/tiamat_lease.dir/policy.cc.o"
  "CMakeFiles/tiamat_lease.dir/policy.cc.o.d"
  "CMakeFiles/tiamat_lease.dir/requester.cc.o"
  "CMakeFiles/tiamat_lease.dir/requester.cc.o.d"
  "libtiamat_lease.a"
  "libtiamat_lease.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiamat_lease.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
