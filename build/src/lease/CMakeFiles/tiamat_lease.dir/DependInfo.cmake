
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lease/lease.cc" "src/lease/CMakeFiles/tiamat_lease.dir/lease.cc.o" "gcc" "src/lease/CMakeFiles/tiamat_lease.dir/lease.cc.o.d"
  "/root/repo/src/lease/manager.cc" "src/lease/CMakeFiles/tiamat_lease.dir/manager.cc.o" "gcc" "src/lease/CMakeFiles/tiamat_lease.dir/manager.cc.o.d"
  "/root/repo/src/lease/policy.cc" "src/lease/CMakeFiles/tiamat_lease.dir/policy.cc.o" "gcc" "src/lease/CMakeFiles/tiamat_lease.dir/policy.cc.o.d"
  "/root/repo/src/lease/requester.cc" "src/lease/CMakeFiles/tiamat_lease.dir/requester.cc.o" "gcc" "src/lease/CMakeFiles/tiamat_lease.dir/requester.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tiamat_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
