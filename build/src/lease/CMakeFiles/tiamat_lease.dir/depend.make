# Empty dependencies file for tiamat_lease.
# This may be replaced when dependencies are built.
