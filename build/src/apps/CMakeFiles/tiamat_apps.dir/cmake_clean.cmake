file(REMOVE_RECURSE
  "CMakeFiles/tiamat_apps.dir/fractal.cc.o"
  "CMakeFiles/tiamat_apps.dir/fractal.cc.o.d"
  "CMakeFiles/tiamat_apps.dir/loadbalance.cc.o"
  "CMakeFiles/tiamat_apps.dir/loadbalance.cc.o.d"
  "CMakeFiles/tiamat_apps.dir/web.cc.o"
  "CMakeFiles/tiamat_apps.dir/web.cc.o.d"
  "libtiamat_apps.a"
  "libtiamat_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiamat_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
