# Empty compiler generated dependencies file for tiamat_apps.
# This may be replaced when dependencies are built.
