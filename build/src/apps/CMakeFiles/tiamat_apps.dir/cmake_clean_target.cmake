file(REMOVE_RECURSE
  "libtiamat_apps.a"
)
