# Empty dependencies file for tiamat_net.
# This may be replaced when dependencies are built.
