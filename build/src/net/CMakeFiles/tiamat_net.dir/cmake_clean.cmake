file(REMOVE_RECURSE
  "CMakeFiles/tiamat_net.dir/discovery.cc.o"
  "CMakeFiles/tiamat_net.dir/discovery.cc.o.d"
  "CMakeFiles/tiamat_net.dir/endpoint.cc.o"
  "CMakeFiles/tiamat_net.dir/endpoint.cc.o.d"
  "CMakeFiles/tiamat_net.dir/message.cc.o"
  "CMakeFiles/tiamat_net.dir/message.cc.o.d"
  "CMakeFiles/tiamat_net.dir/responder_cache.cc.o"
  "CMakeFiles/tiamat_net.dir/responder_cache.cc.o.d"
  "CMakeFiles/tiamat_net.dir/rpc.cc.o"
  "CMakeFiles/tiamat_net.dir/rpc.cc.o.d"
  "libtiamat_net.a"
  "libtiamat_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiamat_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
