file(REMOVE_RECURSE
  "libtiamat_net.a"
)
