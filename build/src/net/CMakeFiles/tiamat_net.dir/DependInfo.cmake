
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/discovery.cc" "src/net/CMakeFiles/tiamat_net.dir/discovery.cc.o" "gcc" "src/net/CMakeFiles/tiamat_net.dir/discovery.cc.o.d"
  "/root/repo/src/net/endpoint.cc" "src/net/CMakeFiles/tiamat_net.dir/endpoint.cc.o" "gcc" "src/net/CMakeFiles/tiamat_net.dir/endpoint.cc.o.d"
  "/root/repo/src/net/message.cc" "src/net/CMakeFiles/tiamat_net.dir/message.cc.o" "gcc" "src/net/CMakeFiles/tiamat_net.dir/message.cc.o.d"
  "/root/repo/src/net/responder_cache.cc" "src/net/CMakeFiles/tiamat_net.dir/responder_cache.cc.o" "gcc" "src/net/CMakeFiles/tiamat_net.dir/responder_cache.cc.o.d"
  "/root/repo/src/net/rpc.cc" "src/net/CMakeFiles/tiamat_net.dir/rpc.cc.o" "gcc" "src/net/CMakeFiles/tiamat_net.dir/rpc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tuple/CMakeFiles/tiamat_tuple.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tiamat_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
