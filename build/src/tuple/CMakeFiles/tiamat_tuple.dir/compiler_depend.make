# Empty compiler generated dependencies file for tiamat_tuple.
# This may be replaced when dependencies are built.
