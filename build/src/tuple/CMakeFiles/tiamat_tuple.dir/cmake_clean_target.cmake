file(REMOVE_RECURSE
  "libtiamat_tuple.a"
)
