file(REMOVE_RECURSE
  "CMakeFiles/tiamat_tuple.dir/codec.cc.o"
  "CMakeFiles/tiamat_tuple.dir/codec.cc.o.d"
  "CMakeFiles/tiamat_tuple.dir/index.cc.o"
  "CMakeFiles/tiamat_tuple.dir/index.cc.o.d"
  "CMakeFiles/tiamat_tuple.dir/pattern.cc.o"
  "CMakeFiles/tiamat_tuple.dir/pattern.cc.o.d"
  "CMakeFiles/tiamat_tuple.dir/tuple.cc.o"
  "CMakeFiles/tiamat_tuple.dir/tuple.cc.o.d"
  "CMakeFiles/tiamat_tuple.dir/value.cc.o"
  "CMakeFiles/tiamat_tuple.dir/value.cc.o.d"
  "libtiamat_tuple.a"
  "libtiamat_tuple.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiamat_tuple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
