file(REMOVE_RECURSE
  "CMakeFiles/tiamat_sim.dir/event_queue.cc.o"
  "CMakeFiles/tiamat_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/tiamat_sim.dir/mobility.cc.o"
  "CMakeFiles/tiamat_sim.dir/mobility.cc.o.d"
  "CMakeFiles/tiamat_sim.dir/network.cc.o"
  "CMakeFiles/tiamat_sim.dir/network.cc.o.d"
  "CMakeFiles/tiamat_sim.dir/topology.cc.o"
  "CMakeFiles/tiamat_sim.dir/topology.cc.o.d"
  "libtiamat_sim.a"
  "libtiamat_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiamat_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
