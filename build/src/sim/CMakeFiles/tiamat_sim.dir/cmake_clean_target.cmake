file(REMOVE_RECURSE
  "libtiamat_sim.a"
)
