# Empty dependencies file for tiamat_sim.
# This may be replaced when dependencies are built.
