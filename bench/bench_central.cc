// E11 — §4.2: "centralised architectures, where one machine must be visible
// to all others, are not appropriate in a mobile environment."
//
// Mobile clients wander an arena containing one fixed central server
// (TSpaces/JavaSpaces shape) or, in the Tiamat configuration, coordinate
// among themselves. Series, vs radio range (i.e. how often the server is
// reachable): operation success rate.

#include <benchmark/benchmark.h>

#include "baselines/central.h"
#include "bench/bench_util.h"
#include "sim/mobility.h"

namespace {

using namespace tiamat;  // NOLINT
using bench::World;
using tuples::any_int;
using tuples::Pattern;
using tuples::Tuple;

struct Result {
  double success_rate = 0;
  double server_visibility = 0;  ///< fraction of samples in range
};

constexpr double kArena = 400.0;
constexpr std::size_t kClients = 8;
constexpr sim::Duration kRun = sim::seconds(60);

sim::RandomWaypointParams mobility_params() {
  sim::RandomWaypointParams mp;
  mp.arena_w = kArena;
  mp.arena_h = kArena;
  mp.min_speed = 20;
  mp.max_speed = 60;
  mp.pause = sim::milliseconds(100);
  return mp;
}

Result run_central(double range, std::uint64_t seed) {
  World w(seed);
  w.net.set_radio_range(range);
  baselines::CentralServer server(w.tx, {kArena / 2, kArena / 2});

  std::vector<std::unique_ptr<baselines::CentralClient>> clients;
  sim::RandomWaypoint mob(w.net, w.rng, mobility_params());
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<baselines::CentralClient>(
        w.tx, server.node(),
        transport::NodeOptions{w.rng.real(0, kArena), w.rng.real(0, kArena)}));
    mob.add(clients.back()->node());
  }
  mob.start();

  std::uint64_t ok = 0, fail = 0, vis_samples = 0, vis_hits = 0;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    auto* c = clients[i].get();
    auto loop = std::make_shared<std::function<void()>>();
    *loop = [&, c, loop] {
      ++vis_samples;
      if (w.net.visible(c->node(), server.node())) ++vis_hits;
      c->out(Tuple{"pkt", 1});
      c->inp(Pattern{"pkt", any_int()}, [&, loop](auto r) {
        if (r) {
          ++ok;
        } else {
          ++fail;
        }
        w.queue.schedule_after(sim::milliseconds(200), *loop);
      });
    };
    w.queue.schedule_after(sim::milliseconds(10 * (i + 1)), *loop);
  }
  w.queue.run_for(kRun);
  mob.stop();

  Result r;
  r.success_rate = (ok + fail) ? static_cast<double>(ok) / (ok + fail) : 0;
  r.server_visibility =
      vis_samples ? static_cast<double>(vis_hits) / vis_samples : 0;
  return r;
}

Result run_tiamat(double range, std::uint64_t seed) {
  World w(seed);
  w.net.set_radio_range(range);

  std::vector<std::unique_ptr<core::Instance>> nodes;
  sim::RandomWaypoint mob(w.net, w.rng, mobility_params());
  for (std::size_t i = 0; i < kClients; ++i) {
    nodes.push_back(std::make_unique<core::Instance>(
        w.tx, bench::bench_config("n" + std::to_string(i), sim::seconds(5)),
        nullptr,
        transport::NodeOptions{w.rng.real(0, kArena), w.rng.real(0, kArena)}));
    mob.add(nodes.back()->node());
  }
  mob.start();

  std::uint64_t ok = 0, fail = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    auto* inst = nodes[i].get();
    auto loop = std::make_shared<std::function<void()>>();
    *loop = [&, inst, loop] {
      inst->out(Tuple{"pkt", 1});
      inst->inp(Pattern{"pkt", any_int()}, [&, loop](auto r) {
        if (r) {
          ++ok;
        } else {
          ++fail;
        }
        w.queue.schedule_after(sim::milliseconds(200), *loop);
      });
    };
    w.queue.schedule_after(sim::milliseconds(10 * (i + 1)), *loop);
  }
  w.queue.run_for(kRun);
  mob.stop();
  nodes.clear();

  Result r;
  r.success_rate = (ok + fail) ? static_cast<double>(ok) / (ok + fail) : 0;
  r.server_visibility = 1.0;  // n/a: no server to lose
  return r;
}

void BM_Central(benchmark::State& state) {
  const double range = static_cast<double>(state.range(0));
  const bool central = state.range(1) != 0;
  Result r;
  std::uint64_t seed = 29;
  for (auto _ : state) {
    r = central ? run_central(range, seed++) : run_tiamat(range, seed++);
  }
  state.counters["success_rate"] = r.success_rate;
  if (central) state.counters["server_visibility"] = r.server_visibility;
  state.SetLabel(central ? "central-server" : "Tiamat");
}

}  // namespace

// radio range x {central, tiamat}. Smaller range = server reachable less
// often; Tiamat always has at least its local space.
BENCHMARK(BM_Central)
    ->Args({600, 1})  // server always visible: the LAN case
    ->Args({600, 0})
    ->Args({250, 1})
    ->Args({250, 0})
    ->Args({150, 1})
    ->Args({150, 0})
    ->Args({80, 1})
    ->Args({80, 0})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

TIAMAT_BENCH_MAIN("central");
