// E8 — §2.3: "Tiamat instances can enter or leave the scope of visibility
// without affecting the semantics of any ongoing operations (although their
// departure may affect the result). ... An opportunistic model allows
// Tiamat to adapt to changes in the mobile environment."
//
// Random-waypoint mobility drives visibility churn. Series, vs mean node
// speed: operation success rate and latency. Ablation: the §3.1 model flag
// (propagate_to_late_arrivals on/off) shows how much the model behaviour
// buys over the paper's prototype. No operation ever errors — it either
// completes or returns nothing at lease expiry.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "sim/mobility.h"
#include "sim/stats.h"

namespace {

using namespace tiamat;  // NOLINT
using bench::World;
using tuples::any_int;
using tuples::Pattern;
using tuples::Tuple;

struct Result {
  double success_rate = 0;
  double mean_latency_ms = 0;
  double lease_expiries = 0;
};

Result run(std::size_t nodes_n, double speed, bool late_arrivals,
           std::uint64_t seed, const std::string& scenario) {
  World w(seed);
  w.net.set_radio_range(120.0);  // arena 300x300: partial visibility

  std::vector<std::unique_ptr<core::Instance>> nodes;
  for (std::size_t i = 0; i < nodes_n; ++i) {
    auto cfg = bench::bench_config("n" + std::to_string(i), sim::seconds(8));
    cfg.propagate_to_late_arrivals = late_arrivals;
    nodes.push_back(std::make_unique<core::Instance>(
        w.tx, cfg, nullptr,
        transport::NodeOptions{w.rng.real(0, 300), w.rng.real(0, 300)}));
  }

  sim::RandomWaypointParams mp;
  mp.arena_w = 300;
  mp.arena_h = 300;
  mp.min_speed = speed * 0.5;
  mp.max_speed = speed * 1.5;
  mp.pause = sim::milliseconds(200);
  sim::RandomWaypoint mob(w.net, w.rng, mp);
  for (auto& n : nodes) mob.add(n->node());
  if (speed > 0) mob.start();

  // Continuous telemetry (--series): sample every instance's registry and
  // health probes once per simulated second.
  auto rec = bench::maybe_series(w, obs::SeriesOptions{sim::seconds(1)});
  if (rec) {
    for (auto& n : nodes) n->register_telemetry(*rec);
    rec->start();
  }

  // Workload: each node produces tuples keyed by its own index and blocks
  // taking its ring-partner's — every take requires the partner (or its
  // tuple) to become reachable within the lease.
  sim::Summary latency;
  std::uint64_t ok = 0, fail = 0;
  for (std::size_t i = 0; i < nodes_n; ++i) {
    auto* inst = nodes[i].get();
    const auto mine = static_cast<std::int64_t>(i);
    const auto partner = static_cast<std::int64_t>((i + 1) % nodes_n);
    auto loop = std::make_shared<std::function<void()>>();
    *loop = [&, inst, mine, partner, loop] {
      inst->out(Tuple{"pkt", mine});
      const sim::Time t0 = w.net.now();
      inst->in(Pattern{"pkt", partner}, [&, t0, loop](auto r) {
        if (r) {
          ++ok;
          const auto us = static_cast<double>(w.net.now() - t0);
          latency.add(us);
          bench::observe_latency(scenario, us);
        } else {
          ++fail;
        }
        w.queue.schedule_after(sim::milliseconds(100), *loop);
      });
    };
    w.queue.schedule_after(sim::milliseconds(10 * (i + 1)), *loop);
  }
  w.queue.run_for(sim::seconds(60));
  mob.stop();

  double expiries = 0;
  for (auto& n : nodes) {
    expiries += static_cast<double>(n->monitor().counters().lease_expired);
    bench::export_space_memory(*n, scenario);
  }
  // The recorder samples the instances' registries: export (and drop) it
  // before the nodes themselves go away.
  bench::export_series(std::move(rec), scenario);
  nodes.clear();
  bench::export_net(w, scenario);

  Result r;
  r.success_rate = (ok + fail) ? static_cast<double>(ok) / (ok + fail) : 0;
  r.mean_latency_ms = bench::sim_ms(latency.mean());
  r.lease_expiries = expiries;
  return r;
}

void BM_Churn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const double speed = static_cast<double>(state.range(1));
  const bool late = state.range(2) != 0;
  const std::string scenario = "n" + std::to_string(n) + "_s" +
                               std::to_string(state.range(1)) +
                               (late ? "_model" : "_prototype");
  Result r;
  std::uint64_t seed = 13;
  for (auto _ : state) {
    r = run(n, speed, late, seed++, scenario);
  }
  state.counters["success_rate"] = r.success_rate;
  state.counters["sim_latency_ms"] = r.mean_latency_ms;
  state.counters["lease_expiries"] = r.lease_expiries;
  state.SetLabel(std::string("speed=") + std::to_string(state.range(1)) +
                 (late ? " model" : " prototype"));
}

}  // namespace

// nodes x speed(units/s) x {model, prototype}
BENCHMARK(BM_Churn)
    ->Args({12, 0, 1})
    ->Args({12, 10, 1})
    ->Args({12, 10, 0})
    ->Args({12, 40, 1})
    ->Args({12, 40, 0})
    ->Args({12, 80, 1})
    ->Args({12, 80, 0})
    ->Args({24, 40, 1})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

TIAMAT_BENCH_MAIN("churn");
