// Shared main() for the bench binaries: standard google-benchmark flags
// plus `--json[=path]`, which writes a metrics snapshot of everything the
// bench recorded into the export registry. With no explicit path the file
// is `BENCH_<name>.json` in the current directory — commit those at the
// repo root so the perf trajectory stays diffable PR-over-PR.
//
// `--trace[=path]` additionally streams every operation trace event from
// instances the bench opts in via `maybe_trace()` into a JSONL dump
// (default `TRACE_<name>.jsonl`) for `tiamat-inspect` / Perfetto.
//
// `--series[=path]` turns on continuous telemetry for benches that opt in
// via `maybe_series()` (bench_util.h): each scenario's TimeSeriesRecorder
// document is collected and written to `SERIES_<name>.json` (or the given
// path), and embedded as a `series` section of the `--json` snapshot when
// both flags are active. Render with `tiamat-inspect series`.
//
// `--transport=sim|loopback` (default sim) selects the transport backend
// for benches that consult `transport_backend()` (bench_loopback): the
// deterministic single-threaded simulator, or the multi-threaded
// in-process loopback (DESIGN.md §10).
//
// `--contention` opts into the scheduler-stress scenarios a bench registers
// through run_main's `register_extra` hook (bench_loopback: worker-count
// sweeps recording the transport.sched.* series). Off by default so the
// perf-gated runs stay unchanged.
//
// Usage:
//   ... register benchmarks, record into tiamat::bench::registry() ...
//   TIAMAT_BENCH_MAIN("churn");

#pragma once

#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <iterator>
#include <memory>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tiamat::bench {

/// Process-wide registry the bench bodies record exportable metrics into.
inline obs::Registry& registry() {
  static obs::Registry r;
  return r;
}

/// Shared JSONL sink created by `--trace`; null when tracing is off. Bench
/// bodies attach it per instance via `maybe_trace()` (bench_util.h).
inline std::shared_ptr<obs::TraceSink>& trace_sink() {
  static std::shared_ptr<obs::TraceSink> s;
  return s;
}

/// True when `--series` was given; bench bodies consult it through
/// `maybe_series()` (bench_util.h).
inline bool& series_enabled() {
  static bool enabled = false;
  return enabled;
}

/// Backend selected with `--transport=sim|loopback` ("sim" by default).
/// Benches whose workload is backend-agnostic consult this to pick the
/// substrate; label exported metrics with the value so snapshots from the
/// two backends stay distinguishable.
inline std::string& transport_backend() {
  static std::string backend = "sim";
  return backend;
}

/// True when `--contention` was given; gates the scheduler-stress
/// scenarios registered through run_main's `register_extra` hook.
inline bool& contention_enabled() {
  static bool enabled = false;
  return enabled;
}

/// Per-scenario series documents collected by `export_series()`, written
/// out after the benchmarks run.
inline obs::json::Array& series_runs() {
  static obs::json::Array runs;
  return runs;
}

/// `register_extra`, when given, runs after flag parsing and before
/// benchmark::Initialize — the spot where flag-conditional benchmarks
/// (benchmark::RegisterBenchmark) can still be added.
inline int run_main(int argc, char** argv, const std::string& bench_name,
                    const std::function<void()>& register_extra = {}) {
  std::string json_path;
  bool want_json = false;
  std::string trace_path;
  bool want_trace = false;
  std::string series_path;
  bool want_series = false;

  // Strip --json[=path] / --trace[=path] / --series[=path] (or the
  // two-token spelling) before benchmark::Initialize, which rejects flags
  // it does not know.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      want_json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      want_json = true;
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      want_trace = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') trace_path = argv[++i];
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      want_trace = true;
      trace_path = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--series") == 0) {
      want_series = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') series_path = argv[++i];
    } else if (std::strncmp(argv[i], "--series=", 9) == 0) {
      want_series = true;
      series_path = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--transport") == 0) {
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        transport_backend() = argv[++i];
      }
    } else if (std::strncmp(argv[i], "--transport=", 12) == 0) {
      transport_backend() = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--contention") == 0) {
      contention_enabled() = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (want_json && json_path.empty()) {
    json_path = "BENCH_" + bench_name + ".json";
  }
  if (want_series && series_path.empty()) {
    series_path = "SERIES_" + bench_name + ".json";
  }
  if (transport_backend() != "sim" && transport_backend() != "loopback") {
    std::cerr << "--transport must be 'sim' or 'loopback', got '"
              << transport_backend() << "'\n";
    return 1;
  }
  series_enabled() = want_series;
  if (want_trace) {
    if (trace_path.empty()) trace_path = "TRACE_" + bench_name + ".jsonl";
    auto sink = std::make_shared<obs::JsonlSink>(trace_path);
    if (!sink->ok()) {
      std::cerr << "failed to open " << trace_path << " for tracing\n";
      return 1;
    }
    trace_sink() = std::move(sink);
  }

  if (register_extra) register_extra();

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  obs::json::Value series_doc;
  if (want_series) {
    obs::json::Object sd;
    sd.emplace_back("runs", obs::json::Value(std::move(series_runs())));
    series_doc = obs::json::Value(std::move(sd));
    obs::json::Object standalone;
    standalone.emplace_back("bench", obs::json::Value(bench_name));
    standalone.emplace_back("series", series_doc);
    std::ofstream f(series_path, std::ios::out | std::ios::trunc);
    f << obs::json::Value(std::move(standalone)).dump(2) << '\n';
    if (!f.good()) {
      std::cerr << "failed to write " << series_path << "\n";
      return 1;
    }
    std::cout << "telemetry series written to " << series_path << " ("
              << series_doc.find("runs")->as_array().size() << " runs)\n";
  }

  if (want_json) {
    obs::json::Object doc;
    doc.emplace_back("bench", obs::json::Value(bench_name));
    doc.emplace_back("metrics", registry().snapshot());
    if (want_series) doc.emplace_back("series", std::move(series_doc));
    {
      std::ofstream f(json_path, std::ios::out | std::ios::trunc);
      f << obs::json::Value(std::move(doc)).dump(2) << '\n';
      if (!f.good()) {
        std::cerr << "failed to write " << json_path << "\n";
        return 1;
      }
    }
    // Self-check: the exported file must round-trip through the obs reader
    // (parse, then rebuild a registry from the metrics section), so a
    // malformed export fails the bench run instead of a later consumer.
    std::ifstream in(json_path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    auto parsed = obs::json::Value::parse(text);
    if (!parsed) {
      std::cerr << json_path << " is not valid JSON\n";
      return 1;
    }
    const obs::json::Value* metrics = parsed->find("metrics");
    obs::Registry reloaded;
    if (metrics == nullptr || !reloaded.load(*metrics)) {
      std::cerr << json_path << " does not reload as a metrics snapshot\n";
      return 1;
    }
    std::cout << "metrics snapshot written to " << json_path << " ("
              << reloaded.size() << " instruments, reload verified)\n";
  }
  if (want_trace) {
    trace_sink().reset();  // flush + close the JSONL stream
    std::cout << "operation trace written to " << trace_path << "\n";
  }
  return 0;
}

}  // namespace tiamat::bench

#define TIAMAT_BENCH_MAIN(name)                         \
  int main(int argc, char** argv) {                     \
    return ::tiamat::bench::run_main(argc, argv, name); \
  }
