// Shared helpers for the experiment benches (E3–E12). Each bench binary
// regenerates one paper-shaped series; since the paper's claims are about
// protocol behaviour, the interesting measurements are *simulated* metrics
// (virtual-time latency, message/byte counts) reported through
// google-benchmark counters, alongside the usual wall-clock timing of the
// simulation itself.

#pragma once

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_main.h"
#include "core/instance.h"
#include "obs/metrics.h"
#include "obs/series.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "sim/random.h"
#include "transport/sim_transport.h"

namespace tiamat::bench {

struct World {
  explicit World(std::uint64_t seed = 42)
      : rng(seed), net(queue, rng, model()), tx(net) {}

  static sim::LinkModel model() {
    sim::LinkModel m;
    m.base_latency = 2 * sim::kMillisecond;
    m.per_kilobyte = 100;
    m.jitter = 200;
    m.loss = 0.0;
    return m;
  }

  sim::EventQueue queue;
  sim::Rng rng;
  sim::Network net;
  transport::SimTransport tx;
};

inline core::Config bench_config(const std::string& name,
                                 sim::Duration ttl = sim::seconds(30)) {
  core::Config cfg;
  cfg.name = name;
  cfg.lease_caps.default_ttl = ttl;
  cfg.lease_caps.max_ttl = ttl * 4;
  cfg.lease_caps.default_contacts = 64;
  cfg.lease_caps.max_contacts = 128;
  return cfg;
}

/// Milliseconds of virtual time, for counters.
inline double sim_ms(double microseconds) { return microseconds / 1000.0; }

/// Attaches the bench-wide `--trace` JSONL sink to an instance's tracer
/// (no-op when the flag was not given, keeping the traced and untraced
/// runs otherwise identical). Under the loopback backend the tracer is
/// switched to per-thread rings: the shared JSONL sink is only safe to
/// touch from one thread, so events buffer in SPSC rings until
/// `drain_trace()` merges them on the bench main thread.
inline void maybe_trace(core::Instance& i) {
  if (!trace_sink()) return;
  i.tracer().set_sink(trace_sink());
  if (transport_backend() == "loopback") i.tracer().set_thread_rings(true);
}

/// Final flush for a thread-ring tracer; call after the workload quiesces
/// and before the instance dies. No-op in direct mode or with tracing off.
inline void drain_trace(core::Instance& i) {
  if (trace_sink() && i.tracer().thread_rings()) i.tracer().drain();
}

/// Observe one virtual-time operation latency (µs) into the exportable
/// registry under `op.latency_us{scenario=...}` — a log-bucketed quantile
/// sketch, so p50/p90/p99 come out in BENCH_<name>.json without storing
/// samples.
inline void observe_latency(const std::string& scenario, double us) {
  registry().sketch("op.latency_us", {{"scenario", scenario}}).observe(us);
}

/// Continuous-telemetry recorder for one scenario run, or null when
/// `--series` was not given (the untouched path costs nothing). The bench
/// body registers instances (Instance::register_telemetry), starts it, and
/// hands it back through `export_series()` BEFORE tearing the instances
/// down — the recorder holds registry pointers into them.
inline std::unique_ptr<obs::TimeSeriesRecorder> maybe_series(
    World& w, obs::SeriesOptions opts = {}) {
  if (!series_enabled()) return nullptr;
  return std::make_unique<obs::TimeSeriesRecorder>(w.queue, opts);
}

/// Collects a finished recorder's document under `scenario` for the
/// `--series` output; no-op on null (flag off).
inline void export_series(std::unique_ptr<obs::TimeSeriesRecorder> rec,
                          const std::string& scenario) {
  if (!rec) return;
  rec->stop();
  obs::json::Object run;
  run.emplace_back("scenario", obs::json::Value(scenario));
  run.emplace_back("data", rec->to_json());
  series_runs().emplace_back(std::move(run));
}

/// Folds one instance's space memory accounting into the exportable
/// registry as scenario-labeled gauges (`.add`, so multi-node scenarios sum
/// across their instances).
inline void export_space_memory(core::Instance& i,
                                const std::string& scenario) {
  auto& r = registry();
  const obs::Labels l{{"scenario", scenario}};
  const space::LocalTupleSpace::MemoryStats m = i.local_space().memory();
  r.gauge("space.tuples", l).add(static_cast<double>(m.tuple_count));
  r.gauge("space.tuple_bytes", l).add(static_cast<double>(m.tuple_bytes));
  r.gauge("space.waiters", l).add(static_cast<double>(m.waiter_count));
  r.gauge("space.waiter_bytes", l).add(static_cast<double>(m.waiter_bytes));
  r.gauge("space.tentative", l).add(static_cast<double>(m.tentative_count));
  r.gauge("space.bytes", l).add(static_cast<double>(m.total_bytes()));
}

/// Fold a finished World's network accounting into the exportable registry:
/// scenario-labeled totals plus per-peer (source node) message/byte counts
/// aggregated from the per-link ledger.
inline void export_net(const World& w, const std::string& scenario) {
  auto& r = registry();
  const obs::Labels base{{"scenario", scenario}};
  const sim::NetStats& s = w.net.stats();
  r.counter("net.unicasts", base).add(s.unicasts_sent);
  r.counter("net.multicasts", base).add(s.multicasts_sent);
  r.counter("net.deliveries", base).add(s.deliveries);
  r.counter("net.drops", base)
      .add(s.drops_invisible + s.drops_loss + s.drops_dead);
  r.counter("net.drops.invisible", base).add(s.drops_invisible);
  r.counter("net.drops.loss", base).add(s.drops_loss);
  r.counter("net.drops.dead", base).add(s.drops_dead);
  r.counter("net.bytes", base).add(s.bytes_sent);
  std::map<sim::NodeId, sim::LinkStats> per_peer;
  for (const auto& [link, ls] : w.net.link_stats()) {
    auto& agg = per_peer[link.first];
    agg.messages += ls.messages;
    agg.bytes += ls.bytes;
  }
  for (const auto& [from, ls] : per_peer) {
    obs::Labels l = base;
    l.emplace_back("peer", std::to_string(from));
    r.counter("net.peer.messages", l).add(ls.messages);
    r.counter("net.peer.bytes", l).add(ls.bytes);
  }
}

}  // namespace tiamat::bench
