// Shared helpers for the experiment benches (E3–E12). Each bench binary
// regenerates one paper-shaped series; since the paper's claims are about
// protocol behaviour, the interesting measurements are *simulated* metrics
// (virtual-time latency, message/byte counts) reported through
// google-benchmark counters, alongside the usual wall-clock timing of the
// simulation itself.

#pragma once

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "core/instance.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "sim/random.h"

namespace tiamat::bench {

struct World {
  explicit World(std::uint64_t seed = 42) : rng(seed), net(queue, rng, model()) {}

  static sim::LinkModel model() {
    sim::LinkModel m;
    m.base_latency = 2 * sim::kMillisecond;
    m.per_kilobyte = 100;
    m.jitter = 200;
    m.loss = 0.0;
    return m;
  }

  sim::EventQueue queue;
  sim::Rng rng;
  sim::Network net;
};

inline core::Config bench_config(const std::string& name,
                                 sim::Duration ttl = sim::seconds(30)) {
  core::Config cfg;
  cfg.name = name;
  cfg.lease_caps.default_ttl = ttl;
  cfg.lease_caps.max_ttl = ttl * 4;
  cfg.lease_caps.default_contacts = 64;
  cfg.lease_caps.max_contacts = 128;
  return cfg;
}

/// Milliseconds of virtual time, for counters.
inline double sim_ms(double microseconds) { return microseconds / 1000.0; }

}  // namespace tiamat::bench
