// E5 — §4.3: "The replication mechanism places some heavy resource
// constraints on the participants. In order to make use of a tuple space
// each client must be willing to keep its own replica ... [and] the tuple
// may still be accessible to a disconnected host or one that did not
// receive a particular multicast message."
//
// Series, vs node count and tuple count: per-node stored bytes (L²imbo
// replicates everything everywhere; Tiamat stores only what each node outs),
// total network bytes, and the count of *stale reads* — reads, at some node,
// of tuples the owner already removed (the oracle is global knowledge the
// bench has but the protocol does not).

#include <benchmark/benchmark.h>

#include <set>

#include "baselines/limbo.h"
#include "bench/bench_util.h"

namespace {

using namespace tiamat;  // NOLINT
using bench::World;
using tuples::any_int;
using tuples::Pattern;
using tuples::Tuple;

struct Result {
  double bytes_per_node = 0;
  double total_net_bytes = 0;
  double stale_reads = 0;
};

Result run_limbo(std::size_t nodes_n, int tuples_per_node,
                 std::uint64_t seed) {
  World w(seed);
  constexpr sim::GroupId kGroup = 5;
  std::vector<std::unique_ptr<baselines::LimboNode>> nodes;
  for (std::size_t i = 0; i < nodes_n; ++i) {
    nodes.push_back(std::make_unique<baselines::LimboNode>(w.tx, kGroup));
  }

  // Everyone publishes.
  std::vector<baselines::GlobalId> published;
  for (auto& n : nodes) {
    for (int k = 0; k < tuples_per_node; ++k) {
      published.push_back(
          n->out(Tuple{"data", k, std::string(64, 'x')}));
    }
  }
  w.queue.run_for(sim::seconds(1));

  // One node disconnects and removes half of its tuples; the others keep
  // reading. Every read of a removed tuple is a stale read.
  nodes[0]->disconnect();
  std::set<std::uint64_t> removed;
  for (int k = 0; k < tuples_per_node / 2; ++k) {
    auto t = nodes[0]->in_owned(Pattern{"data", any_int(), tuples::any_string()});
    (void)t;
  }
  w.queue.run_for(sim::milliseconds(100));
  // Oracle (global knowledge): every tuple a connected node still
  // replicates but whose owner already removed it is stale — the owner's
  // replica is authoritative, so the difference in replica sizes between
  // node1 (connected, saw no DELs) and node0 (the remover) counts them.
  double stale = 0;
  if (nodes.size() > 1 &&
      nodes[1]->replica_tuples() > nodes[0]->replica_tuples()) {
    stale = static_cast<double>(nodes[1]->replica_tuples() -
                                nodes[0]->replica_tuples());
  }

  Result r;
  double bytes = 0;
  for (auto& n : nodes) bytes += static_cast<double>(n->replica_bytes());
  r.bytes_per_node = bytes / nodes_n;
  r.total_net_bytes = static_cast<double>(w.net.stats().bytes_sent);
  r.stale_reads = stale;
  return r;
}

Result run_tiamat(std::size_t nodes_n, int tuples_per_node,
                  std::uint64_t seed) {
  World w(seed);
  std::vector<std::unique_ptr<core::Instance>> nodes;
  for (std::size_t i = 0; i < nodes_n; ++i) {
    nodes.push_back(std::make_unique<core::Instance>(
        w.tx, bench::bench_config("n" + std::to_string(i))));
  }
  for (auto& n : nodes) {
    for (int k = 0; k < tuples_per_node; ++k) {
      n->out(Tuple{"data", k, std::string(64, 'x')});
    }
  }
  w.queue.run_for(sim::seconds(1));
  // Matching read workload so network cost is comparable.
  std::uint64_t reads_done = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (int probe = 0; probe < 10; ++probe) {
      nodes[i]->rdp(Pattern{"data", any_int(), tuples::any_string()},
                    [&](auto r) {
                      if (r) ++reads_done;
                    });
    }
  }
  w.queue.run_for(sim::seconds(5));

  Result r;
  double bytes = 0;
  for (auto& n : nodes) bytes += static_cast<double>(n->local_space().footprint());
  r.bytes_per_node = bytes / nodes_n;
  r.total_net_bytes = static_cast<double>(w.net.stats().bytes_sent);
  r.stale_reads = 0;  // a removed tuple is gone everywhere by construction
  nodes.clear();
  return r;
}

void BM_Replication(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int tuples = static_cast<int>(state.range(1));
  const bool limbo = state.range(2) != 0;
  Result r;
  std::uint64_t seed = 5;
  for (auto _ : state) {
    r = limbo ? run_limbo(n, tuples, seed++) : run_tiamat(n, tuples, seed++);
  }
  state.counters["bytes_per_node"] = r.bytes_per_node;
  state.counters["net_bytes"] = r.total_net_bytes;
  state.counters["stale_tuples_visible"] = r.stale_reads;
  state.SetLabel(limbo ? "L2imbo" : "Tiamat");
}

}  // namespace

BENCHMARK(BM_Replication)
    ->Args({4, 100, 1})
    ->Args({4, 100, 0})
    ->Args({8, 100, 1})
    ->Args({8, 100, 0})
    ->Args({16, 100, 1})
    ->Args({16, 100, 0})
    ->Args({8, 400, 1})
    ->Args({8, 400, 0})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

TIAMAT_BENCH_MAIN("replication");
