// E12 — §3.1.2: microbenchmarks of the tuple-space engine itself (the one
// piece the paper calls "a basic, custom built tuple space system"). Real
// wall-clock measurements: out/rdp/inp throughput vs space size, keyed vs
// unkeyed pattern matching, waiter wake-up, and codec throughput.

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "space/local_space.h"
#include "tuple/codec.h"

namespace {

using namespace tiamat;  // NOLINT
using space::LocalTupleSpace;
using tuples::any_int;
using tuples::any_string;
using tuples::Pattern;
using tuples::Tuple;

void BM_Out(benchmark::State& state) {
  sim::EventQueue q;
  sim::Rng rng(1);
  LocalTupleSpace space(q, rng);
  std::int64_t i = 0;
  for (auto _ : state) {
    space.out(Tuple{"key", i++, "payload"});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Out);

void BM_RdpKeyed(benchmark::State& state) {
  sim::EventQueue q;
  sim::Rng rng(1);
  LocalTupleSpace space(q, rng);
  const auto n = state.range(0);
  for (std::int64_t i = 0; i < n; ++i) {
    space.out(Tuple{"k" + std::to_string(i % 64), i});
  }
  std::int64_t i = 0;
  for (auto _ : state) {
    auto t = space.rdp(Pattern{"k" + std::to_string(i++ % 64), any_int()});
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RdpKeyed)->Arg(100)->Arg(1000)->Arg(10000);

void BM_RdpUnkeyedScan(benchmark::State& state) {
  sim::EventQueue q;
  sim::Rng rng(1);
  LocalTupleSpace space(q, rng);
  const auto n = state.range(0);
  for (std::int64_t i = 0; i < n; ++i) {
    space.out(Tuple{"k" + std::to_string(i), i});
  }
  for (auto _ : state) {
    // Unkeyed: must scan all buckets of the arity.
    auto t = space.rdp(Pattern{any_string(), 42});
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RdpUnkeyedScan)->Arg(100)->Arg(1000)->Arg(10000);

void BM_InpOutCycle(benchmark::State& state) {
  sim::EventQueue q;
  sim::Rng rng(1);
  LocalTupleSpace space(q, rng);
  space.out(Tuple{"cycle", 0});
  for (auto _ : state) {
    auto t = space.inp(Pattern{"cycle", any_int()});
    space.out(std::move(*t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InpOutCycle);

void BM_WaiterWakeup(benchmark::State& state) {
  sim::EventQueue q;
  sim::Rng rng(1);
  LocalTupleSpace space(q, rng);
  for (auto _ : state) {
    bool got = false;
    space.in(Pattern{"w", any_int()}, sim::kNever,
             [&](auto t) { got = t.has_value(); });
    space.out(Tuple{"w", 1});
    benchmark::DoNotOptimize(got);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WaiterWakeup);

void BM_ManyWaitersOneOut(benchmark::State& state) {
  const auto n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    sim::EventQueue q;
    sim::Rng rng(1);
    LocalTupleSpace space(q, rng);
    for (std::int64_t i = 0; i < n; ++i) {
      space.rd(Pattern{"evt", static_cast<std::int64_t>(i)}, sim::kNever,
               [](auto) {});
    }
    state.ResumeTiming();
    space.out(Tuple{"evt", static_cast<std::int64_t>(n / 2)});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ManyWaitersOneOut)->Arg(10)->Arg(100)->Arg(1000);

void BM_CodecEncode(benchmark::State& state) {
  Tuple t{"request", 123456789, 3.14159, true,
          std::string(static_cast<std::size_t>(state.range(0)), 'x')};
  for (auto _ : state) {
    auto bytes = tuples::encode_tuple(t);
    benchmark::DoNotOptimize(bytes);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(t.footprint()));
}
BENCHMARK(BM_CodecEncode)->Arg(16)->Arg(256)->Arg(4096);

void BM_CodecDecode(benchmark::State& state) {
  Tuple t{"request", 123456789, 3.14159, true,
          std::string(static_cast<std::size_t>(state.range(0)), 'x')};
  auto bytes = tuples::encode_tuple(t);
  for (auto _ : state) {
    auto back = tuples::try_decode_tuple(bytes);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_CodecDecode)->Arg(16)->Arg(256)->Arg(4096);

void BM_PatternMatch(benchmark::State& state) {
  Tuple t{"tag", 42, 2.5, "http://example.org/page", true};
  Pattern p{"tag", any_int(), tuples::any_double(),
            tuples::Field::prefix("http://"), tuples::any_bool()};
  for (auto _ : state) {
    bool m = p.matches(t);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PatternMatch);

}  // namespace

TIAMAT_BENCH_MAIN("space");
