// E10 — §3.2 (fractal generator): "The load balancing server was removed
// and the data producers communicated with the entities performing the
// calculations through the space ... the number of entities performing
// calculations could be increased and decreased without perturbing the
// clients."
//
// Series: completion time (virtual) vs worker count, for Tiamat's
// bag-of-tasks and the load-balancing-server baseline; and completion with
// a worker join/leave mid-run.

#include <benchmark/benchmark.h>

#include "apps/fractal.h"
#include "apps/loadbalance.h"
#include "bench/bench_util.h"

namespace {

using namespace tiamat;  // NOLINT
using bench::World;
using apps::fractal::Params;

Params image() {
  Params p;
  p.width = 32;
  p.height = 32;
  p.max_iter = 64;
  return p;
}

double run_tiamat(int workers, bool churn, std::uint64_t seed) {
  World w(seed);
  core::Instance m_node(w.tx, bench::bench_config("master"));
  std::vector<std::unique_ptr<core::Instance>> nodes;
  std::vector<std::unique_ptr<apps::fractal::Worker>> ws;
  for (int i = 0; i < workers; ++i) {
    nodes.push_back(std::make_unique<core::Instance>(
        w.tx, bench::bench_config("w" + std::to_string(i))));
    ws.push_back(std::make_unique<apps::fractal::Worker>(
        *nodes.back(), sim::milliseconds(50)));
    ws.back()->start();
  }
  apps::fractal::Master master(m_node, image(), 1);
  master.reissue_interval = sim::seconds(3);
  bool done = false;
  master.start([&] { done = true; });
  if (churn && workers > 1) {
    // One worker dies at 500 ms; a fresh one joins at 1 s.
    w.queue.schedule_after(sim::milliseconds(500), [&] {
      ws[0]->stop();
      nodes[0].reset();
    });
    w.queue.schedule_after(sim::seconds(1), [&] {
      nodes.push_back(std::make_unique<core::Instance>(
          w.tx, bench::bench_config("late")));
      ws.push_back(std::make_unique<apps::fractal::Worker>(
          *nodes.back(), sim::milliseconds(50)));
      ws.back()->start();
    });
  }
  w.queue.run_for(sim::seconds(300));
  return done ? bench::sim_ms(static_cast<double>(master.elapsed())) : -1;
}

double run_lb(int workers, std::uint64_t seed) {
  World w(seed);
  apps::loadbalance::LoadBalancingServer server(w.tx);
  std::vector<std::unique_ptr<apps::loadbalance::LbWorker>> ws;
  for (int i = 0; i < workers; ++i) {
    ws.push_back(std::make_unique<apps::loadbalance::LbWorker>(
        w.tx, server.node(), sim::milliseconds(50)));
    ws.back()->start();
  }
  apps::loadbalance::LbMaster master(w.tx, server.node(), image(), 1);
  bool done = false;
  w.queue.run_for(sim::milliseconds(50));
  master.start([&] { done = true; });
  w.queue.run_for(sim::seconds(300));
  return done ? bench::sim_ms(static_cast<double>(master.elapsed())) : -1;
}

void BM_Fractal(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const int mode = static_cast<int>(state.range(1));  // 0=tiamat 1=lb 2=churn
  double ms = 0;
  std::uint64_t seed = 23;
  for (auto _ : state) {
    ms = mode == 1 ? run_lb(workers, seed++)
                   : run_tiamat(workers, mode == 2, seed++);
  }
  state.counters["completion_sim_ms"] = ms;
  state.SetLabel(mode == 1   ? "lb-server"
                 : mode == 2 ? "tiamat+churn"
                             : "tiamat");
}

}  // namespace

BENCHMARK(BM_Fractal)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({4, 2})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

TIAMAT_BENCH_MAIN("fractal");
