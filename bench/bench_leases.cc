// E7 — §2.5: "Due to the asynchronous, identity-separated nature of
// generative communications, it is not normally possible to identify tuples
// as being garbage. In Tiamat, the leasing model allows tighter controls to
// be placed on how long tuples may reside in the space."
//
// Scenario: producers join, deposit tuples, and depart without consuming
// them. Series over time: space occupancy (tuples & bytes) with leases
// (bounded, returns to baseline) vs without (grows without bound); plus the
// cost bound on abandoned blocking operations.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "lease/requester.h"

namespace {

using namespace tiamat;  // NOLINT
using bench::World;
using tuples::any_int;
using tuples::Pattern;
using tuples::Tuple;

struct Result {
  double peak_tuples = 0;
  double final_tuples = 0;
  double peak_bytes = 0;
  double final_bytes = 0;
  double blocked_ops_alive_at_end = 0;
};

Result run(bool leased, int producers, int tuples_each, std::uint64_t seed) {
  World w(seed);
  // The long-lived "kiosk" node whose resources we watch.
  auto cfg = bench::bench_config("kiosk", sim::seconds(5));
  if (!leased) {
    // Model a lease-less system: effectively infinite grants.
    cfg.lease_caps.default_ttl = sim::seconds(100000);
    cfg.lease_caps.max_ttl = sim::seconds(100000);
  }
  core::Instance kiosk(w.tx, cfg);

  double peak_tuples = 0, peak_bytes = 0;

  // Producers appear one at a time, push tuples *at the kiosk* (directed
  // out, §2.4 — e.g. leaving notes at a public display), then vanish.
  for (int pi = 0; pi < producers; ++pi) {
    core::Instance producer(
        w.tx, bench::bench_config("p" + std::to_string(pi)));
    w.queue.run_for(sim::milliseconds(10));
    for (int k = 0; k < tuples_each; ++k) {
      lease::LeaseTerms t;
      t.ttl = leased ? sim::seconds(5) : sim::seconds(100000);
      producer.out_at(kiosk.handle(),
                      Tuple{"note", k, std::string(128, 'n')},
                      lease::FlexibleRequester{t},
                      core::UnavailablePolicy::kAbandon);
    }
    // Some abandoned blocking ops too: the producer asks and leaves. The
    // kiosk keeps a remote waiter armed only as long as the op's lease.
    lease::LeaseTerms t;
    t.ttl = leased ? sim::seconds(5) : sim::seconds(100000);
    producer.in(Pattern{"reply", any_int()}, [](auto) {},
                lease::FlexibleRequester{t});
    w.queue.run_for(sim::milliseconds(500));
    peak_tuples = std::max(peak_tuples,
                           static_cast<double>(kiosk.local_space().size()));
    peak_bytes = std::max(
        peak_bytes, static_cast<double>(kiosk.local_space().footprint()));
    // producer destructs here: departs the environment
  }

  // Let the world settle well past the lease horizon.
  w.queue.run_for(sim::seconds(30));

  Result r;
  r.peak_tuples = peak_tuples;
  r.final_tuples = static_cast<double>(kiosk.local_space().size());
  r.peak_bytes = peak_bytes;
  r.final_bytes = static_cast<double>(kiosk.local_space().footprint());
  r.blocked_ops_alive_at_end =
      static_cast<double>(kiosk.serving_count() + kiosk.open_ops());
  return r;
}

void BM_Leases(benchmark::State& state) {
  const bool leased = state.range(0) != 0;
  const int producers = static_cast<int>(state.range(1));
  Result r;
  std::uint64_t seed = 11;
  for (auto _ : state) {
    r = run(leased, producers, 40, seed++);
  }
  state.counters["peak_tuples"] = r.peak_tuples;
  state.counters["final_tuples"] = r.final_tuples;
  state.counters["peak_bytes"] = r.peak_bytes;
  state.counters["final_bytes"] = r.final_bytes;
  state.counters["stuck_ops"] = r.blocked_ops_alive_at_end;
  state.SetLabel(leased ? "leased" : "unleased");
}

}  // namespace

BENCHMARK(BM_Leases)
    ->Args({1, 4})
    ->Args({0, 4})
    ->Args({1, 16})
    ->Args({0, 16})
    ->Args({1, 64})
    ->Args({0, 64})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

TIAMAT_BENCH_MAIN("leases");
