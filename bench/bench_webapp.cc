// E9 — §3.2 (web client/proxy): "proxy servers can be dynamically added
// without the clients' knowledge ... both for the purposes of load
// balancing ... and in the case of failure, to replace the failed server.
// Neither of these actions is visible to, nor perturbs, the clients.
// ... The client can still make requests even in the absence of any
// servers."
//
// Series: request throughput & latency vs proxy count; requests served
// across a mid-run proxy kill+replace; disconnected-client queueing.

#include <benchmark/benchmark.h>

#include "apps/web.h"
#include "bench/bench_util.h"
#include "sim/stats.h"

namespace {

using namespace tiamat;  // NOLINT
using bench::World;

struct Result {
  double completed = 0;
  double failed = 0;
  double mean_latency_ms = 0;
};

Result run_throughput(int proxies, int clients, std::uint64_t seed) {
  World w(seed);
  apps::web::OriginServer origin(w.queue, sim::milliseconds(80));
  for (int i = 0; i < 50; ++i) {
    origin.add_page("http://site/" + std::to_string(i), "body");
  }

  std::vector<std::unique_ptr<core::Instance>> nodes;
  std::vector<std::unique_ptr<apps::web::ProxyServer>> proxy_objs;
  for (int i = 0; i < proxies; ++i) {
    nodes.push_back(std::make_unique<core::Instance>(
        w.tx, bench::bench_config("proxy" + std::to_string(i))));
    proxy_objs.push_back(std::make_unique<apps::web::ProxyServer>(
        *nodes.back(), origin, /*cache=*/false));
    proxy_objs.back()->start();
  }

  std::vector<std::unique_ptr<core::Instance>> client_nodes;
  std::vector<std::unique_ptr<apps::web::WebClient>> client_objs;
  for (int i = 0; i < clients; ++i) {
    client_nodes.push_back(std::make_unique<core::Instance>(
        w.tx, bench::bench_config("client" + std::to_string(i))));
    client_objs.push_back(
        std::make_unique<apps::web::WebClient>(*client_nodes.back()));
  }

  // Each client issues a stream of requests.
  for (int i = 0; i < clients; ++i) {
    auto* c = client_objs[i].get();
    auto loop = std::make_shared<std::function<void()>>();
    auto counter = std::make_shared<int>(0);
    *loop = [&w, c, loop, counter] {
      const std::string url = "http://site/" + std::to_string(*counter % 50);
      ++*counter;
      c->get(url, [&w, loop](auto) {
        w.queue.schedule_after(sim::milliseconds(1), *loop);
      });
    };
    w.queue.schedule_after(sim::milliseconds(3 * (i + 1)), *loop);
  }
  w.queue.run_for(sim::seconds(30));

  Result r;
  for (auto& c : client_objs) {
    r.completed += static_cast<double>(c->stats().completed);
    r.failed += static_cast<double>(c->stats().failed);
  }
  // Aggregate mean latency across clients.
  double total = 0, n = 0;
  for (auto& c : client_objs) {
    // Summary::mean is per client; weight by completion count.
    auto& s = const_cast<apps::web::WebClient::Stats&>(c->stats());
    total += s.latency.mean() * s.latency.count();
    n += static_cast<double>(s.latency.count());
  }
  r.mean_latency_ms = n > 0 ? bench::sim_ms(total / n) : 0;
  proxy_objs.clear();
  client_objs.clear();
  return r;
}

Result run_failover(std::uint64_t seed) {
  World w(seed);
  apps::web::OriginServer origin(w.queue);
  origin.add_page("http://site/x", "body");

  auto p1_node = std::make_unique<core::Instance>(
      w.tx, bench::bench_config("proxy1"));
  auto p1 = std::make_unique<apps::web::ProxyServer>(*p1_node, origin);
  p1->start();

  core::Instance c_node(w.tx, bench::bench_config("client"));
  apps::web::WebClient client(c_node);

  auto loop = std::make_shared<std::function<void()>>();
  *loop = [&w, &client, loop] {
    client.get("http://site/x", [&w, loop](auto) {
      w.queue.schedule_after(sim::milliseconds(50), *loop);
    }, sim::seconds(15));
  };
  (*loop)();
  w.queue.run_for(sim::seconds(10));

  // Kill the proxy mid-run...
  p1->stop();
  p1.reset();
  p1_node.reset();
  w.queue.run_for(sim::seconds(2));
  // ...and bring up a replacement.
  core::Instance p2_node(w.tx, bench::bench_config("proxy2"));
  apps::web::ProxyServer p2(p2_node, origin);
  p2.start();
  w.queue.run_for(sim::seconds(18));

  Result r;
  r.completed = static_cast<double>(client.stats().completed);
  r.failed = static_cast<double>(client.stats().failed);
  r.mean_latency_ms = 0;
  return r;
}

void BM_WebThroughput(benchmark::State& state) {
  const int proxies = static_cast<int>(state.range(0));
  const int clients = static_cast<int>(state.range(1));
  Result r;
  std::uint64_t seed = 17;
  for (auto _ : state) {
    r = run_throughput(proxies, clients, seed++);
  }
  state.counters["completed"] = r.completed;
  state.counters["failed"] = r.failed;
  state.counters["sim_latency_ms"] = r.mean_latency_ms;
}

void BM_WebFailover(benchmark::State& state) {
  Result r;
  std::uint64_t seed = 19;
  for (auto _ : state) {
    r = run_failover(seed++);
  }
  state.counters["completed"] = r.completed;
  state.counters["failed"] = r.failed;
  state.SetLabel("kill+replace proxy mid-run");
}

}  // namespace

BENCHMARK(BM_WebThroughput)
    ->Args({1, 8})
    ->Args({2, 8})
    ->Args({4, 8})
    ->Args({8, 8})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_WebFailover)->Iterations(1)->Unit(benchmark::kMillisecond);

TIAMAT_BENCH_MAIN("webapp");
