// Transport-backend throughput: the full Tiamat stack (leases, matching
// engine, logical-space ops) driven over the pluggable transport layer
// (DESIGN.md §10), selected at runtime with `--transport=sim|loopback`.
//
// Over the loopback backend this is the repo's one genuinely multi-threaded
// benchmark: N instances are sharded across the backend's worker pool and
// run their op chains concurrently, so the headline `transport.ops_per_sec`
// is real parallel throughput (wall clock), not virtual time. Over the sim
// backend the identical workload measures the single-threaded engine speed,
// making the two snapshots directly comparable.
//
// Scenarios:
//   BM_KeyedTakeChain/N  N instances each run a self-sustaining chain of
//                        local (out key_i; inp key_i) pairs on their own
//                        strand — pure per-strand engine throughput, no
//                        cross-node traffic, scales with workers.
//   BM_RemoteTake/N      N producers pre-publish keyed tuples; N consumers
//                        then drain them with sequential remote inp's —
//                        every take crosses strands (probe, tentative
//                        remove, first-response-wins Confirm).
//
// The committed BENCH_loopback.json is a `--transport=loopback --json` run;
// its counters are traffic totals from the backend's own ledger plus the
// ops/sec headline (wall-clock flavoured, so it is not perf-gated).
//
// `--contention` adds BM_SchedContention: a sweep over worker-pool sizes
// running keyed chains plus timer churn while a TimeSeriesRecorder (driven
// by the loopback's own timers, on its own strand) samples the scheduler
// telemetry through obs::SchedExporter — per-worker queue depth, strand
// lag, utilization, lock-wait and tombstone counts, exported as the
// transport.sched.* families (`--series` records them; render with
// `tiamat-inspect sched`).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_main.h"
#include "bench/bench_util.h"
#include "core/instance.h"
#include "obs/sched.h"
#include "obs/series.h"
#include "transport/loopback_transport.h"
#include "transport/transport.h"

namespace tiamat::bench {
namespace {

constexpr unsigned kWorkers = 4;
constexpr int kOpsPerChain = 256;
constexpr int kTakesPerPair = 64;
constexpr int kContentionOps = 1024;    // per-chain ops in --contention runs
constexpr int kContentionChurn = 256;   // schedule+cancel pairs per run

// Owns one transport of the flavour `--transport` selected. Both are driven
// through the same `transport::Transport&`, so the workload code below is
// backend-blind.
struct AnyBackend {
  AnyBackend() {
    if (transport_backend() == "loopback") {
      transport::LoopbackOptions opts;
      opts.workers = kWorkers;
      loop = std::make_unique<transport::LoopbackTransport>(opts);
    } else {
      world = std::make_unique<World>();
    }
  }
  transport::Transport& tx() {
    return loop ? static_cast<transport::Transport&>(*loop)
                : static_cast<transport::Transport&>(world->tx);
  }
  std::unique_ptr<World> world;
  std::unique_ptr<transport::LoopbackTransport> loop;
};

core::Config chain_config(const std::string& name) {
  core::Config cfg = bench_config(name, sim::seconds(30));
  return cfg;
}

// ---------------------------------------------------------------------------
// Scenario 1: per-strand keyed out+take chains, no cross-node traffic.

struct ChainState {
  core::Instance* inst = nullptr;
  std::string key;
  std::int64_t seq = 0;
  int remaining = 0;
  std::shared_ptr<std::atomic<int>> live;  // chains still running
};

// One chain step; runs on the owner's strand. The completion callback posts
// the next step instead of recursing, so chains of any length are
// stack-safe even when the local match resolves synchronously.
void chain_step(transport::Transport& t, std::shared_ptr<ChainState> c) {
  c->inst->out(tuples::Tuple{"job", c->key, c->seq++});
  const bool granted = c->inst->inp(
      tuples::Pattern{"job", c->key, tuples::any_int()},
      [&t, c](std::optional<core::ReadResult>) {
        if (--c->remaining > 0) {
          t.post(c->inst->node(), [&t, c] { chain_step(t, c); });
        } else {
          --*c->live;
        }
      });
  if (!granted) --*c->live;
}

void BM_KeyedTakeChain(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  std::uint64_t total_ops = 0;
  double total_secs = 0.0;
  transport::LoopbackTransport::Stats traffic;
  for (auto _ : state) {
    AnyBackend backend;
    transport::Transport& t = backend.tx();
    std::vector<std::unique_ptr<core::Instance>> insts;
    insts.reserve(nodes);
    for (int i = 0; i < nodes; ++i) {
      insts.push_back(std::make_unique<core::Instance>(
          t, chain_config("chain-" + std::to_string(i))));
    }
    auto live = std::make_shared<std::atomic<int>>(nodes);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < nodes; ++i) {
      auto c = std::make_shared<ChainState>();
      c->inst = insts[i].get();
      c->key = "key-" + std::to_string(i);
      c->remaining = kOpsPerChain;
      c->live = live;
      t.post(c->inst->node(), [&t, c] { chain_step(t, c); });
    }
    const bool done = t.wait_until([&] { return *live == 0; },
                                   120 * transport::kSecond);
    const auto t1 = std::chrono::steady_clock::now();
    if (!done) {
      state.SkipWithError("op chains did not complete");
      return;
    }
    total_ops += static_cast<std::uint64_t>(nodes) * kOpsPerChain * 2;
    total_secs += std::chrono::duration<double>(t1 - t0).count();
    if (backend.loop) traffic = backend.loop->stats();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total_ops));
  const std::string scenario = "keyed_take/" + std::to_string(nodes);
  const obs::Labels l{{"scenario", scenario},
                      {"backend", transport_backend()}};
  auto& r = registry();
  r.counter("transport.ops", l).add(total_ops);
  r.gauge("transport.ops_per_sec", l)
      .set(total_secs > 0 ? static_cast<double>(total_ops) / total_secs : 0);
  r.gauge("transport.workers", l)
      .set(transport_backend() == "loopback" ? kWorkers : 1);
  r.counter("transport.unicasts", l).add(traffic.unicasts_sent);
  r.counter("transport.multicasts", l).add(traffic.multicasts_sent);
  r.counter("transport.deliveries", l).add(traffic.deliveries);
  r.counter("transport.bytes", l).add(traffic.bytes_sent);
}

// ---------------------------------------------------------------------------
// Scenario 2: remote takes — every op crosses strands.

struct DrainState {
  core::Instance* consumer = nullptr;
  std::string key;
  int remaining = 0;
  std::shared_ptr<std::atomic<int>> live;
  std::shared_ptr<std::atomic<int>> taken;
};

void drain_step(transport::Transport& t, std::shared_ptr<DrainState> c) {
  const bool granted = c->consumer->inp(
      tuples::Pattern{"stock", c->key, tuples::any_int()},
      [&t, c](std::optional<core::ReadResult> r) {
        if (r) ++*c->taken;
        if (--c->remaining > 0) {
          t.post(c->consumer->node(), [&t, c] { drain_step(t, c); });
        } else {
          --*c->live;
        }
      });
  if (!granted) --*c->live;
}

void BM_RemoteTake(benchmark::State& state) {
  const int pairs = static_cast<int>(state.range(0));
  std::uint64_t total_ops = 0;
  std::uint64_t total_taken = 0;
  double total_secs = 0.0;
  transport::LoopbackTransport::Stats traffic;
  for (auto _ : state) {
    AnyBackend backend;
    transport::Transport& t = backend.tx();
    std::vector<std::unique_ptr<core::Instance>> producers;
    std::vector<std::unique_ptr<core::Instance>> consumers;
    for (int i = 0; i < pairs; ++i) {
      producers.push_back(std::make_unique<core::Instance>(
          t, chain_config("producer-" + std::to_string(i))));
      consumers.push_back(std::make_unique<core::Instance>(
          t, chain_config("consumer-" + std::to_string(i))));
    }
    // Pre-publish the stock on each producer's strand (untimed: the timed
    // section is the remote-take drain).
    auto published = std::make_shared<std::atomic<int>>(0);
    for (int i = 0; i < pairs; ++i) {
      core::Instance* p = producers[i].get();
      const std::string key = "key-" + std::to_string(i);
      t.post(p->node(), [p, key, published] {
        for (int n = 0; n < kTakesPerPair; ++n) {
          p->out(tuples::Tuple{"stock", key, std::int64_t{n}});
        }
        ++*published;
      });
    }
    if (!t.wait_until([&] { return *published == pairs; },
                      60 * transport::kSecond)) {
      state.SkipWithError("publish phase did not complete");
      return;
    }
    auto live = std::make_shared<std::atomic<int>>(pairs);
    auto taken = std::make_shared<std::atomic<int>>(0);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < pairs; ++i) {
      auto c = std::make_shared<DrainState>();
      c->consumer = consumers[i].get();
      c->key = "key-" + std::to_string(i);
      c->remaining = kTakesPerPair;
      c->live = live;
      c->taken = taken;
      t.post(c->consumer->node(), [&t, c] { drain_step(t, c); });
    }
    const bool done = t.wait_until([&] { return *live == 0; },
                                   120 * transport::kSecond);
    const auto t1 = std::chrono::steady_clock::now();
    if (!done) {
      state.SkipWithError("drain phase did not complete");
      return;
    }
    total_ops += static_cast<std::uint64_t>(pairs) * kTakesPerPair;
    total_taken += static_cast<std::uint64_t>(*taken);
    total_secs += std::chrono::duration<double>(t1 - t0).count();
    if (backend.loop) traffic = backend.loop->stats();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total_ops));
  state.counters["taken"] =
      benchmark::Counter(static_cast<double>(total_taken));
  const std::string scenario = "remote_take/" + std::to_string(pairs);
  const obs::Labels l{{"scenario", scenario},
                      {"backend", transport_backend()}};
  auto& r = registry();
  r.counter("transport.ops", l).add(total_ops);
  r.gauge("transport.ops_per_sec", l)
      .set(total_secs > 0 ? static_cast<double>(total_ops) / total_secs : 0);
  r.gauge("transport.workers", l)
      .set(transport_backend() == "loopback" ? kWorkers : 1);
  r.counter("transport.unicasts", l).add(traffic.unicasts_sent);
  r.counter("transport.multicasts", l).add(traffic.multicasts_sent);
  r.counter("transport.deliveries", l).add(traffic.deliveries);
  r.counter("transport.bytes", l).add(traffic.bytes_sent);
}

// ---------------------------------------------------------------------------
// Scenario 3 (--contention): scheduler stress sweep over worker counts.

// Always builds its own LoopbackTransport (the scenario measures the
// loopback scheduler; --transport only labels the other scenarios).
void BM_SchedContention(benchmark::State& state, unsigned workers) {
  const std::string scenario = "contention/" + std::to_string(workers);
  std::uint64_t total_ops = 0;
  double total_secs = 0.0;
  transport::LoopbackTransport::SchedStats sched;
  for (auto _ : state) {
    transport::LoopbackOptions opts;
    opts.workers = workers;
    transport::LoopbackTransport t(opts);
    const int nodes = static_cast<int>(workers) * 2;
    std::vector<std::unique_ptr<core::Instance>> insts;
    insts.reserve(nodes);
    for (int i = 0; i < nodes; ++i) {
      insts.push_back(std::make_unique<core::Instance>(
          t, chain_config("contend-" + std::to_string(i))));
      maybe_trace(*insts.back());
    }
    // Scheduler telemetry: the exporter folds sched_stats() into its own
    // registry as the recorder's refresh hook, so every tick — running on
    // the recorder node's strand — samples fresh numbers.
    obs::Registry sched_reg;
    obs::SchedExporter exporter(sched_reg, t);
    const transport::NodeId rec_node = t.add_node();
    std::unique_ptr<obs::TimeSeriesRecorder> rec;
    if (series_enabled()) {
      obs::SeriesOptions sopts;
      // Wall-clock time here, and the sweep runs only a few ms per worker
      // count: sample densely enough to give the series some shape.
      sopts.interval = transport::kMillisecond / 2;
      rec = std::make_unique<obs::TimeSeriesRecorder>(t.timers(rec_node),
                                                      sopts);
      rec->add_source("sched", &sched_reg, [&exporter] { exporter.update(); });
      rec->start();
    }
    auto live = std::make_shared<std::atomic<int>>(nodes);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < nodes; ++i) {
      auto c = std::make_shared<ChainState>();
      c->inst = insts[i].get();
      c->key = "key-" + std::to_string(i);
      c->remaining = kContentionOps;
      c->live = live;
      t.post(c->inst->node(), [&t, c] { chain_step(t, c); });
    }
    // Timer churn from the bench thread while the chains run:
    // schedule-then-cancel feeds the cancel and tombstone accounting.
    for (int k = 0; k < kContentionChurn; ++k) {
      const auto id = t.timers(rec_node).schedule_at(0, [] {});
      t.timers(rec_node).cancel(id);
    }
    const bool done = t.wait_until([&] { return *live == 0; },
                                   120 * transport::kSecond);
    const auto t1 = std::chrono::steady_clock::now();
    if (!done) {
      state.SkipWithError("contention chains did not complete");
      return;
    }
    if (rec) {
      // stop() must be serialized with the self-rearming tick: run it on
      // the recorder's own strand, then collect the document.
      auto stopped = std::make_shared<std::atomic<bool>>(false);
      t.post(rec_node, [&rec, stopped] {
        rec->stop();
        *stopped = true;
      });
      t.wait_until([&] { return stopped->load(); }, 30 * transport::kSecond);
      export_series(std::move(rec), scenario);
    }
    sched = t.sched_stats();
    for (auto& inst : insts) drain_trace(*inst);
    total_ops += static_cast<std::uint64_t>(nodes) * kContentionOps * 2;
    total_secs += std::chrono::duration<double>(t1 - t0).count();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total_ops));
  const obs::Labels l{{"scenario", scenario}, {"backend", "loopback"}};
  auto& r = registry();
  r.counter("transport.ops", l).add(total_ops);
  r.gauge("transport.ops_per_sec", l)
      .set(total_secs > 0 ? static_cast<double>(total_ops) / total_secs : 0);
  r.gauge("transport.workers", l).set(workers);
  std::uint64_t tasks = 0, tombstones = 0, cancels = 0, busy = 0;
  std::uint64_t depth_max = 0, lag_max = 0;
  for (const auto& w : sched.workers) {
    tasks += w.tasks;
    tombstones += w.tombstones;
    cancels += w.cancels;
    busy += w.busy_us;
    depth_max = std::max(depth_max, w.queue_depth_max);
    lag_max = std::max(lag_max, w.lag_us_max);
  }
  r.counter("transport.sched.tasks", l).add(tasks);
  r.counter("transport.sched.tombstones", l).add(tombstones);
  r.counter("transport.sched.cancels", l).add(cancels);
  r.counter("transport.sched.lock_wait_us", l).add(sched.lock_wait_us);
  r.gauge("transport.sched.queue_depth_max", l)
      .set(static_cast<double>(depth_max));
  r.gauge("transport.sched.strand_lag_max_us", l)
      .set(static_cast<double>(lag_max));
  const double wall =
      static_cast<double>(sched.uptime_us) * static_cast<double>(workers);
  r.gauge("transport.sched.utilization", l)
      .set(wall > 0 ? static_cast<double>(busy) / wall : 0.0);
}

BENCHMARK(BM_KeyedTakeChain)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();
BENCHMARK(BM_RemoteTake)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace
}  // namespace tiamat::bench

int main(int argc, char** argv) {
  return tiamat::bench::run_main(argc, argv, "loopback", [] {
    if (!tiamat::bench::contention_enabled()) return;
    for (const unsigned w : {1u, 2u, 4u, 8u}) {
      benchmark::RegisterBenchmark(
          ("BM_SchedContention/workers:" + std::to_string(w)).c_str(),
          [w](benchmark::State& s) { tiamat::bench::BM_SchedContention(s, w); })
          ->UseRealTime()
          ->Iterations(1);
    }
  });
}
