// Microbenchmarks for the unified matching engine (src/tuple): compiled
// patterns, hash-bucketed tuple storage, and the keyed waiter index. The
// headline claim this bench pins down: keyed lookups probe one bucket and
// therefore do NOT scale with space size, while unkeyed lookups fall back
// to an O(arity-shard) scan. `--json` exports the engine's probe/scan/
// rejection accounting per scenario so the ratio stays diffable PR-over-PR
// (see BENCH_match.json at the repo root and EXPERIMENTS.md).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "bench/bench_main.h"
#include "tuple/index.h"
#include "tuple/matcher.h"
#include "tuple/pattern.h"
#include "tuple/tuple.h"
#include "tuple/waiter_index.h"

namespace {

using namespace tiamat;  // NOLINT
using tuples::any_int;
using tuples::any_string;
using tuples::CompiledPattern;
using tuples::MatchStats;
using tuples::Pattern;
using tuples::Tuple;
using tuples::TupleId;
using tuples::TupleIndex;
using tuples::WaiterIndex;

constexpr std::int64_t kKeys = 64;

/// Fold one scenario's engine accounting into the exportable registry.
/// Counters accumulate across calibration re-runs, so the *ratios*
/// (candidates per probe vs per scan) are the stable quantities; the
/// per-lookup gauge records the final run's average directly.
void export_stats(const std::string& scenario, std::int64_t size,
                  const MatchStats& s) {
  obs::Labels l{{"scenario", scenario}, {"size", std::to_string(size)}};
  auto& r = bench::registry();
  r.counter("engine.bucket_probes", l).add(s.bucket_probes);
  r.counter("engine.scan_fallbacks", l).add(s.scan_fallbacks);
  r.counter("engine.candidates", l).add(s.candidates);
  r.counter("engine.rejected", l).add(s.rejected);
  const std::uint64_t lookups = s.bucket_probes + s.scan_fallbacks;
  if (lookups > 0) {
    r.gauge("engine.candidates_per_lookup", l)
        .set(static_cast<double>(s.candidates) /
             static_cast<double>(lookups));
  }
}

TupleIndex populated_index(std::int64_t n) {
  TupleIndex idx;
  for (std::int64_t i = 0; i < n; ++i) {
    idx.insert(static_cast<TupleId>(i + 1),
               Tuple{"k" + std::to_string(i % kKeys), i});
  }
  return idx;
}

// ---- Storage: keyed probe vs unkeyed scan ---------------------------------

void BM_KeyedFindFirst(benchmark::State& state) {
  const auto n = state.range(0);
  TupleIndex idx = populated_index(n);
  CompiledPattern p(Pattern{"k17", any_int()});
  idx.reset_match_stats();
  for (auto _ : state) {
    auto id = idx.find_first(p);
    benchmark::DoNotOptimize(id);
  }
  state.SetItemsProcessed(state.iterations());
  export_stats("keyed_find_first", n, idx.match_stats());
}
BENCHMARK(BM_KeyedFindFirst)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_UnkeyedFindFirst(benchmark::State& state) {
  const auto n = state.range(0);
  TupleIndex idx = populated_index(n);
  // Leading wildcard defeats the bucket key: the engine must walk the
  // arity shard. The int field matches only one tuple near the end.
  CompiledPattern p(Pattern{any_string(), n - 1});
  idx.reset_match_stats();
  for (auto _ : state) {
    auto id = idx.find_first(p);
    benchmark::DoNotOptimize(id);
  }
  state.SetItemsProcessed(state.iterations());
  export_stats("unkeyed_find_first", n, idx.match_stats());
}
BENCHMARK(BM_UnkeyedFindFirst)->Arg(100)->Arg(1000)->Arg(10000);

void BM_KeyedFindMatches(benchmark::State& state) {
  const auto n = state.range(0);
  TupleIndex idx = populated_index(n);
  CompiledPattern p(Pattern{"k17", any_int()});
  idx.reset_match_stats();
  for (auto _ : state) {
    auto ids = idx.find_matches(p);
    benchmark::DoNotOptimize(ids);
  }
  state.SetItemsProcessed(state.iterations());
  export_stats("keyed_find_matches", n, idx.match_stats());
}
BENCHMARK(BM_KeyedFindMatches)->Arg(100)->Arg(1000)->Arg(10000);

void BM_KeyedCountMatches(benchmark::State& state) {
  const auto n = state.range(0);
  TupleIndex idx = populated_index(n);
  CompiledPattern p(Pattern{"k17", any_int()});
  idx.reset_match_stats();
  for (auto _ : state) {
    auto c = idx.count_matches(p);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations());
  export_stats("keyed_count_matches", n, idx.match_stats());
}
BENCHMARK(BM_KeyedCountMatches)->Arg(100)->Arg(1000)->Arg(10000);

void BM_InsertErase(benchmark::State& state) {
  TupleIndex idx;
  TupleId next = 1;
  for (auto _ : state) {
    TupleId id = next++;
    idx.insert(id, Tuple{"k" + std::to_string(id % kKeys),
                         static_cast<std::int64_t>(id)});
    auto t = idx.erase(id);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InsertErase);

// ---- Pattern compilation ---------------------------------------------------

void BM_CompilePattern(benchmark::State& state) {
  Pattern p{"req", any_int(), tuples::any_double(),
            tuples::Field::prefix("http://"), tuples::any_bool()};
  for (auto _ : state) {
    CompiledPattern cp(p);
    benchmark::DoNotOptimize(cp);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompilePattern);

void BM_CompiledMatch(benchmark::State& state) {
  Tuple t{"req", 42, 2.5, "http://example.org/page", true};
  CompiledPattern p(Pattern{"req", any_int(), tuples::any_double(),
                            tuples::Field::prefix("http://"),
                            tuples::any_bool()});
  for (auto _ : state) {
    bool m = p.matches(t);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompiledMatch);

// ---- Waiter index: candidate narrowing ------------------------------------

void BM_WaiterOfferKeyed(benchmark::State& state) {
  // N keyed waiters spread over kKeys buckets; an offer probes one bucket
  // instead of testing all N patterns.
  const auto n = state.range(0);
  WaiterIndex<int> waiters;
  for (std::int64_t i = 0; i < n; ++i) {
    waiters.add(static_cast<std::uint64_t>(i + 1),
                CompiledPattern(Pattern{"k" + std::to_string(i % kKeys),
                                        any_int()}),
                0);
  }
  Tuple t{"k17", std::int64_t{7}};
  waiters.reset_match_stats();
  for (auto _ : state) {
    auto c = waiters.candidates(t);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations());
  export_stats("waiters_keyed_offer", n, waiters.match_stats());
}
BENCHMARK(BM_WaiterOfferKeyed)->Arg(100)->Arg(1000)->Arg(10000);

void BM_WaiterOfferUnkeyed(benchmark::State& state) {
  // Leading-wildcard waiters all land in the overflow bucket: every offer
  // must consider each of them (the shape the keyed index exists to avoid).
  const auto n = state.range(0);
  WaiterIndex<int> waiters;
  for (std::int64_t i = 0; i < n; ++i) {
    waiters.add(static_cast<std::uint64_t>(i + 1),
                CompiledPattern(Pattern{any_string(), i}), 0);
  }
  Tuple t{"k17", std::int64_t{7}};
  waiters.reset_match_stats();
  for (auto _ : state) {
    auto c = waiters.candidates(t);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations());
  export_stats("waiters_unkeyed_offer", n, waiters.match_stats());
}
BENCHMARK(BM_WaiterOfferUnkeyed)->Arg(100)->Arg(1000);

}  // namespace

TIAMAT_BENCH_MAIN("match");
