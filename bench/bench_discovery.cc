// E3 — §3.1.3: "it would be expensive to gather a list of visible hosts for
// each and every operation via a multicast ... [the responder list]
// improves performance because consistently visible instances work their
// way to the top of the list."
//
// Series: mean operation latency (virtual ms) and multicast probes per
// operation, for (a) the paper's cached responder list, (b) a naive
// multicast-per-operation variant (cache cleared before every op), under
// stable membership and under churn.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "sim/mobility.h"
#include "sim/stats.h"

namespace {

using namespace tiamat;  // NOLINT
using bench::World;
using tuples::any_int;
using tuples::Pattern;
using tuples::Tuple;

struct Result {
  double mean_latency_ms = 0;
  double probes_per_op = 0;
  double unicasts_per_op = 0;
  double hit_rate = 0;
};

Result run_scenario(std::size_t peers, bool cached, double churn_rate,
                    std::uint64_t seed, const std::string& scenario) {
  World w(seed);
  auto cfg = bench::bench_config("origin");
  core::Instance origin(w.tx, cfg);

  std::vector<std::unique_ptr<core::Instance>> others;
  for (std::size_t i = 0; i < peers; ++i) {
    others.push_back(std::make_unique<core::Instance>(
        w.tx, bench::bench_config("p" + std::to_string(i))));
  }

  sim::ChurnProcess churn(w.net, w.rng,
                          sim::ChurnParams{sim::milliseconds(200),
                                           churn_rate, 1});
  if (churn_rate > 0) {
    for (auto& o : others) churn.manage(o->node());
    churn.start();
  }

  // Seed every peer with tuples so any responder can satisfy any op.
  for (std::size_t i = 0; i < others.size(); ++i) {
    for (int k = 0; k < 64; ++k) {
      others[i]->out(Tuple{"data", static_cast<std::int64_t>(k)});
    }
  }
  w.queue.run_for(sim::milliseconds(50));

  const int kOps = 300;
  sim::Summary latency;
  std::uint64_t hits = 0;
  std::uint64_t probes_before = origin.discovery().stats().probes_sent;
  std::uint64_t unicasts_before = w.net.stats().unicasts_sent;

  int issued = 0;
  // Issue ops one at a time, sequentially in virtual time.
  std::function<void()> next = [&]() {
    if (issued >= kOps) return;
    ++issued;
    if (!cached) origin.responders().clear();  // naive: re-discover each op
    const sim::Time t0 = w.net.now();
    origin.rdp(Pattern{"data", any_int()}, [&, t0](auto r) {
      const auto us = static_cast<double>(w.net.now() - t0);
      latency.add(us);
      bench::observe_latency(scenario, us);
      if (r) ++hits;
      w.queue.schedule_after(sim::milliseconds(5), next);
    });
  };
  next();
  w.queue.run_for(sim::seconds(600));
  churn.stop();
  bench::export_net(w, scenario);

  Result res;
  res.mean_latency_ms = bench::sim_ms(latency.mean());
  res.probes_per_op =
      static_cast<double>(origin.discovery().stats().probes_sent -
                          probes_before) /
      kOps;
  res.unicasts_per_op =
      static_cast<double>(w.net.stats().unicasts_sent - unicasts_before) /
      kOps;
  res.hit_rate = static_cast<double>(hits) / kOps;
  return res;
}

void BM_Discovery(benchmark::State& state) {
  const auto peers = static_cast<std::size_t>(state.range(0));
  const bool cached = state.range(1) != 0;
  const double churn = state.range(2) / 100.0;
  const std::string scenario =
      "p" + std::to_string(peers) + (cached ? "_cached" : "_naive") +
      (churn > 0 ? "_churn" : "");
  Result r;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    r = run_scenario(peers, cached, churn, seed++, scenario);
  }
  state.counters["sim_latency_ms"] = r.mean_latency_ms;
  state.counters["probes_per_op"] = r.probes_per_op;
  state.counters["unicasts_per_op"] = r.unicasts_per_op;
  state.counters["hit_rate"] = r.hit_rate;
  state.SetLabel(std::string(cached ? "responder-list" : "multicast-every-op") +
                 (churn > 0 ? "+churn" : ""));
}

}  // namespace

// peers x {cached, naive} x {stable, churn 40%}
BENCHMARK(BM_Discovery)
    ->Args({2, 1, 0})
    ->Args({2, 0, 0})
    ->Args({8, 1, 0})
    ->Args({8, 0, 0})
    ->Args({24, 1, 0})
    ->Args({24, 0, 0})
    ->Args({8, 1, 40})
    ->Args({8, 0, 40})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

TIAMAT_BENCH_MAIN("discovery");
