// E6 — §4.6/§4.7: Peers "provides a peer-to-peer like flooding mechanism
// for locating tuples in remote spaces" whereas Tiamat contacts its cached
// responder list. Flooding finds multi-hop tuples but its traffic grows with
// the whole neighbourhood; the responder list touches only instances that
// have actually answered before.
//
// Series, on a clique of n nodes: messages per lookup, virtual-time latency
// per lookup, hit rate — Peers (TTL 1..4) vs Tiamat.

#include <benchmark/benchmark.h>

#include "baselines/peers.h"
#include "bench/bench_util.h"
#include "sim/stats.h"

namespace {

using namespace tiamat;  // NOLINT
using bench::World;
using tuples::any_int;
using tuples::Pattern;
using tuples::Tuple;

struct Result {
  double msgs_per_lookup = 0;
  double latency_ms = 0;
  double hit_rate = 0;
};

Result run_peers(std::size_t n, int ttl, std::uint64_t seed,
                 const std::string& scenario) {
  World w(seed);
  std::vector<std::unique_ptr<baselines::PeersNode>> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<baselines::PeersNode>(w.tx));
  }
  // One random holder per key; lookups from node 0.
  for (int k = 0; k < 50; ++k) {
    nodes[1 + w.rng.index(n - 1)]->out(Tuple{"item", k});
  }
  const int kLookups = 50;
  sim::Summary latency;
  std::uint64_t hits = 0;
  const std::uint64_t msgs_before = w.net.stats().unicasts_sent;
  int issued = 0;
  std::function<void()> next = [&] {
    if (issued >= kLookups) return;
    const int key = issued++;
    const sim::Time t0 = w.net.now();
    nodes[0]->lookup(Pattern{"item", key}, ttl, sim::seconds(2),
                     [&, t0](auto r) {
                       const auto us = static_cast<double>(w.net.now() - t0);
                       latency.add(us);
                       bench::observe_latency(scenario, us);
                       if (r) ++hits;
                       w.queue.schedule_after(sim::milliseconds(5), next);
                     });
  };
  next();
  w.queue.run_for(sim::seconds(300));
  bench::export_net(w, scenario);

  Result r;
  r.msgs_per_lookup =
      static_cast<double>(w.net.stats().unicasts_sent - msgs_before) /
      kLookups;
  r.latency_ms = bench::sim_ms(latency.mean());
  r.hit_rate = static_cast<double>(hits) / kLookups;
  return r;
}

Result run_tiamat(std::size_t n, std::uint64_t seed,
                  const std::string& scenario) {
  World w(seed);
  std::vector<std::unique_ptr<core::Instance>> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<core::Instance>(
        w.tx, bench::bench_config("n" + std::to_string(i))));
    bench::maybe_trace(*nodes.back());
  }
  for (int k = 0; k < 50; ++k) {
    nodes[1 + w.rng.index(n - 1)]->out(Tuple{"item", k});
  }
  const int kLookups = 50;
  sim::Summary latency;
  std::uint64_t hits = 0;
  const std::uint64_t msgs_before =
      w.net.stats().unicasts_sent + w.net.stats().multicasts_sent;
  int issued = 0;
  std::function<void()> next = [&] {
    if (issued >= kLookups) return;
    const int key = issued++;
    const sim::Time t0 = w.net.now();
    nodes[0]->rdp(Pattern{"item", key}, [&, t0](auto r) {
      const auto us = static_cast<double>(w.net.now() - t0);
      latency.add(us);
      bench::observe_latency(scenario, us);
      if (r) ++hits;
      w.queue.schedule_after(sim::milliseconds(5), next);
    });
  };
  next();
  w.queue.run_for(sim::seconds(300));
  bench::export_net(w, scenario);

  Result r;
  r.msgs_per_lookup = static_cast<double>(w.net.stats().unicasts_sent +
                                          w.net.stats().multicasts_sent -
                                          msgs_before) /
                      kLookups;
  r.latency_ms = bench::sim_ms(latency.mean());
  r.hit_rate = static_cast<double>(hits) / kLookups;
  nodes.clear();
  return r;
}

void BM_Flooding(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int ttl = static_cast<int>(state.range(1));  // 0 = Tiamat
  const std::string scenario =
      "n" + std::to_string(n) +
      (ttl == 0 ? "_tiamat" : "_peers_ttl" + std::to_string(ttl));
  Result r;
  std::uint64_t seed = 7;
  for (auto _ : state) {
    r = ttl == 0 ? run_tiamat(n, seed++, scenario)
                 : run_peers(n, ttl, seed++, scenario);
  }
  state.counters["msgs_per_lookup"] = r.msgs_per_lookup;
  state.counters["sim_latency_ms"] = r.latency_ms;
  state.counters["hit_rate"] = r.hit_rate;
  state.SetLabel(ttl == 0 ? "Tiamat" : "Peers-ttl" + std::to_string(ttl));
}

}  // namespace

BENCHMARK(BM_Flooding)
    ->Args({8, 0})
    ->Args({8, 2})
    ->Args({8, 4})
    ->Args({16, 0})
    ->Args({16, 2})
    ->Args({16, 4})
    ->Args({32, 0})
    ->Args({32, 2})
    ->Args({32, 4})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

TIAMAT_BENCH_MAIN("flooding");
