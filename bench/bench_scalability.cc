// E4 — §4.4: "[LIME] is likely to prove unworkable in large networks due to
// large latencies. ... the prototype implementation of LIME cannot function
// with more than six hosts forming a single federated space." Tiamat's
// opportunistic model has no global barrier, so it should scale smoothly.
//
// Series, vs host count: (a) operation throughput over a fixed virtual-time
// window, (b) cost of one host joining (engagement stall for LIME; first
// probe for Tiamat), (c) messages per completed operation.

#include <benchmark/benchmark.h>

#include "baselines/lime.h"
#include "bench/bench_util.h"

namespace {

using namespace tiamat;  // NOLINT
using bench::World;
using tuples::any_int;
using tuples::Pattern;
using tuples::Tuple;

constexpr sim::Duration kWindow = sim::seconds(20);

struct Result {
  double ops_completed = 0;
  double join_cost_ms = 0;      // virtual ms for the last host to join
  double msgs_per_op = 0;
  double stall_ms = 0;          // LIME engagement stall total
};

// Workload: every host alternates producing and consuming small tuples.
// With `churn`, one host bounces (leaves and rejoins) every 2 virtual
// seconds — Tiamat rides it out opportunistically; LIME runs a pause-the-
// world engagement barrier each time.
Result run_tiamat(std::size_t hosts, bool churn, std::uint64_t seed) {
  World w(seed);
  std::vector<std::unique_ptr<core::Instance>> nodes;
  for (std::size_t i = 0; i < hosts - 1; ++i) {
    nodes.push_back(std::make_unique<core::Instance>(
        w.tx, bench::bench_config("h" + std::to_string(i))));
  }
  w.queue.run_for(sim::milliseconds(100));

  // Join cost: time until a new instance can complete its first logical op.
  const sim::Time join_start = w.net.now();
  nodes.push_back(std::make_unique<core::Instance>(
      w.tx, bench::bench_config("joiner")));
  nodes[0]->out(Tuple{"join-probe", 1});
  sim::Time join_done = join_start;
  nodes.back()->rdp(Pattern{"join-probe", any_int()},
                    [&](auto) { join_done = w.net.now(); });
  w.queue.run_for(sim::seconds(2));

  std::uint64_t completed = 0;
  const std::uint64_t msg_before = w.net.stats().unicasts_sent +
                                   w.net.stats().multicasts_sent;
  // Each host produces tuples keyed by its own index and consumes its
  // ring-partner's — every take crosses the network.
  for (std::size_t i = 0; i < hosts; ++i) {
    auto* inst = nodes[i].get();
    const auto mine = static_cast<std::int64_t>(i);
    const auto partner = static_cast<std::int64_t>((i + 1) % hosts);
    auto loop = std::make_shared<std::function<void()>>();
    *loop = [&, inst, mine, partner, loop] {
      inst->out(Tuple{"work", mine});
      inst->inp(Pattern{"work", partner}, [&, loop](auto r) {
        if (r) ++completed;
        w.queue.schedule_after(sim::milliseconds(20), *loop);
      });
    };
    w.queue.schedule_after(sim::milliseconds(1), *loop);
  }
  if (churn) {
    // Bounce host 0's radio every 2 s (down 500 ms each time).
    auto bounce = std::make_shared<std::function<void()>>();
    *bounce = [&w, &nodes, bounce] {
      sim::NodeId victim = nodes[0]->node();
      w.net.set_online(victim, false);
      w.queue.schedule_after(sim::milliseconds(500), [&w, victim] {
        w.net.set_online(victim, true);
      });
      w.queue.schedule_after(sim::seconds(2), *bounce);
    };
    w.queue.schedule_after(sim::seconds(1), *bounce);
  }
  w.queue.run_for(kWindow);
  // Stop cleanly: destroy instances before the queue drains further.
  const std::uint64_t msgs = w.net.stats().unicasts_sent +
                             w.net.stats().multicasts_sent - msg_before;
  nodes.clear();

  Result r;
  r.ops_completed = static_cast<double>(completed);
  r.join_cost_ms = bench::sim_ms(static_cast<double>(join_done - join_start));
  r.msgs_per_op = completed ? static_cast<double>(msgs) / completed : 0;
  return r;
}

Result run_lime(std::size_t hosts, bool churn, std::uint64_t seed) {
  World w(seed);
  constexpr sim::GroupId kFed = 9;
  std::vector<std::unique_ptr<baselines::LimeHost>> nodes;
  nodes.push_back(std::make_unique<baselines::LimeHost>(w.tx, kFed, true));
  for (std::size_t i = 1; i + 1 < hosts; ++i) {
    nodes.push_back(std::make_unique<baselines::LimeHost>(w.tx, kFed, false));
    nodes.back()->engage();
    w.queue.run_for(sim::seconds(2));
  }
  // Pre-populate so engagement has state to ship.
  for (int k = 0; k < 50; ++k) {
    nodes[0]->out(Tuple{"state", k});
  }
  w.queue.run_for(sim::seconds(1));

  // Join cost: last host's engagement barrier.
  const sim::Time join_start = w.net.now();
  nodes.push_back(std::make_unique<baselines::LimeHost>(w.tx, kFed, false));
  sim::Time join_done = join_start;
  nodes.back()->engage([&](bool) { join_done = w.net.now(); });
  w.queue.run_for(sim::seconds(5));

  std::uint64_t completed = 0;
  const std::uint64_t msg_before = w.net.stats().unicasts_sent +
                                   w.net.stats().multicasts_sent;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    auto* h = nodes[i].get();
    const auto mine = static_cast<std::int64_t>(i);
    const auto partner = static_cast<std::int64_t>((i + 1) % nodes.size());
    auto loop = std::make_shared<std::function<void()>>();
    *loop = [&, h, mine, partner, loop] {
      h->out(Tuple{"work", mine});
      h->inp(Pattern{"work", partner}, [&, loop](auto r) {
        if (r) ++completed;
        w.queue.schedule_after(sim::milliseconds(20), *loop);
      });
    };
    w.queue.schedule_after(sim::milliseconds(1), *loop);
  }
  if (churn) {
    // The last host disengages and re-engages every 2 s: each rejoin is an
    // atomic engagement barrier stalling the whole federation.
    auto bounce = std::make_shared<std::function<void()>>();
    *bounce = [&w, &nodes, bounce] {
      auto* h = nodes.back().get();
      h->disengage();
      w.queue.schedule_after(sim::milliseconds(500),
                             [h] { h->engage(); });
      w.queue.schedule_after(sim::seconds(2), *bounce);
    };
    w.queue.schedule_after(sim::seconds(1), *bounce);
  }
  w.queue.run_for(kWindow);
  const std::uint64_t msgs = w.net.stats().unicasts_sent +
                             w.net.stats().multicasts_sent - msg_before;

  Result r;
  r.ops_completed = static_cast<double>(completed);
  r.join_cost_ms = bench::sim_ms(static_cast<double>(join_done - join_start));
  r.msgs_per_op = completed ? static_cast<double>(msgs) / completed : 0;
  double stall = 0;
  for (auto& n : nodes) {
    stall += static_cast<double>(n->stats().total_engagement_stall);
  }
  r.stall_ms = bench::sim_ms(stall);
  nodes.clear();
  return r;
}

void BM_Scalability(benchmark::State& state) {
  const auto hosts = static_cast<std::size_t>(state.range(0));
  const bool lime = state.range(1) != 0;
  const bool churn = state.range(2) != 0;
  Result r;
  std::uint64_t seed = 3;
  for (auto _ : state) {
    r = lime ? run_lime(hosts, churn, seed++)
             : run_tiamat(hosts, churn, seed++);
  }
  state.counters["ops_in_window"] = r.ops_completed;
  state.counters["join_cost_sim_ms"] = r.join_cost_ms;
  state.counters["msgs_per_op"] = r.msgs_per_op;
  if (lime) state.counters["engagement_stall_ms"] = r.stall_ms;
  state.SetLabel(std::string(lime ? "LIME" : "Tiamat") +
                 (churn ? "+churn" : ""));
}

}  // namespace

BENCHMARK(BM_Scalability)
    ->Args({2, 0, 0})
    ->Args({2, 1, 0})
    ->Args({4, 0, 0})
    ->Args({4, 1, 0})
    ->Args({6, 0, 0})
    ->Args({6, 1, 0})
    ->Args({12, 0, 0})
    ->Args({12, 1, 0})
    ->Args({24, 0, 0})
    ->Args({24, 1, 0})
    ->Args({6, 0, 1})
    ->Args({6, 1, 1})
    ->Args({12, 0, 1})
    ->Args({12, 1, 1})
    ->Args({24, 0, 1})
    ->Args({24, 1, 1})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

TIAMAT_BENCH_MAIN("scalability");
