// Ablations of Tiamat's own design choices (DESIGN.md §6):
//
//  A1  Responder-list ordering: the paper's §3.1.3 list discipline vs the
//      §6 future-work stability ordering ("exploit the relatively fixed and
//      well connected portions of the network"), in a population where half
//      the peers are flaky. Metric: op latency and wasted contacts.
//  A2  Tentative-hold duration: too short re-exposes tuples before the
//      Confirm arrives (risking release/confirm races and extra traffic);
//      too long keeps tuples invisible after an originator dies.
//  A3  Probe window: discovery latency vs completeness.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "sim/stats.h"

namespace {

using namespace tiamat;  // NOLINT
using bench::World;
using tuples::any_int;
using tuples::Pattern;
using tuples::Tuple;

// ---------------- A1: cache ordering under flaky peers ----------------

struct A1Result {
  double latency_ms = 0;
  double wasted_contacts = 0;  ///< OpRequests to peers that never answered
  double hit_rate = 0;
};

A1Result run_ordering(bool stability, std::uint64_t seed) {
  World w(seed);
  core::Config cfg = bench::bench_config("origin");
  cfg.cache_ordering = stability
                           ? net::ResponderCache::Ordering::kByStability
                           : net::ResponderCache::Ordering::kPaperList;
  core::Instance origin(w.tx, cfg);

  // 12 peers: the even ones are flaky (offline half the time on a cycle),
  // odd ones are rock solid. All hold matching data.
  std::vector<std::unique_ptr<core::Instance>> peers;
  for (int i = 0; i < 12; ++i) {
    peers.push_back(std::make_unique<core::Instance>(
        w.tx, bench::bench_config("p" + std::to_string(i))));
    for (int k = 0; k < 16; ++k) {
      peers.back()->out(Tuple{"data", k});
    }
  }
  // Flakiness driver.
  auto flap = std::make_shared<std::function<void()>>();
  bool down_phase = false;
  *flap = [&w, &peers, flap, &down_phase] {
    down_phase = !down_phase;
    for (std::size_t i = 0; i < peers.size(); i += 2) {
      w.net.set_online(peers[i]->node(), !down_phase);
    }
    w.queue.schedule_after(sim::milliseconds(400), *flap);
  };
  w.queue.schedule_after(sim::milliseconds(200), *flap);

  const int kOps = 400;
  sim::Summary latency;
  std::uint64_t hits = 0;
  int issued = 0;
  std::function<void()> next = [&] {
    if (issued++ >= kOps) return;
    const sim::Time t0 = w.net.now();
    origin.rdp(Pattern{"data", any_int()}, [&, t0](auto r) {
      latency.add(static_cast<double>(w.net.now() - t0));
      if (r) ++hits;
      w.queue.schedule_after(sim::milliseconds(20), next);
    });
  };
  next();
  w.queue.run_for(sim::seconds(120));

  A1Result r;
  r.latency_ms = bench::sim_ms(latency.mean());
  r.hit_rate = static_cast<double>(hits) / kOps;
  // Wasted contacts: requests sent that never drew a first reply.
  double served = 0;
  for (auto& p : peers) {
    served += static_cast<double>(p->monitor().counters().remote_requests_served);
  }
  const double sent =
      static_cast<double>(origin.monitor().counters().probes_triggered);
  (void)sent;
  r.wasted_contacts =
      static_cast<double>(origin.endpoint().stats().sent) - served;
  return r;
}

void BM_CacheOrdering(benchmark::State& state) {
  const bool stability = state.range(0) != 0;
  A1Result r;
  std::uint64_t seed = 31;
  for (auto _ : state) {
    r = run_ordering(stability, seed++);
  }
  state.counters["sim_latency_ms"] = r.latency_ms;
  state.counters["hit_rate"] = r.hit_rate;
  state.counters["wasted_msgs"] = r.wasted_contacts;
  state.SetLabel(stability ? "stability-ordered (§6)" : "paper-list (§3.1.3)");
}

BENCHMARK(BM_CacheOrdering)
    ->Arg(0)
    ->Arg(1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// ---------------- A2: tentative hold sweep ----------------

struct A2Result {
  double duplicates = 0;
  double lost = 0;
  double latency_ms = 0;
};

A2Result run_hold(sim::Duration hold, std::uint64_t seed) {
  sim::LinkModel lm = World::model();
  lm.loss = 0.20;  // aggressive loss to stress the confirm/release window
  World w(seed);
  w.net.set_link_model(lm);

  core::Config cfg = bench::bench_config("n");
  cfg.tentative_hold = hold;
  std::vector<std::unique_ptr<core::Instance>> nodes;
  for (int i = 0; i < 4; ++i) {
    nodes.push_back(std::make_unique<core::Instance>(w.tx, cfg));
  }
  const int kItems = 200;
  for (int k = 0; k < kItems; ++k) {
    nodes[static_cast<std::size_t>(k) % nodes.size()]->out(Tuple{"item", k});
  }

  std::multiset<std::int64_t> taken;
  sim::Summary latency;
  // Two competing consumers drain the bag; a consumer gives up only after
  // several consecutive misses (a single miss may just be packet loss).
  for (int c = 0; c < 2; ++c) {
    auto* inst = nodes[static_cast<std::size_t>(c)].get();
    auto loop = std::make_shared<std::function<void()>>();
    auto misses = std::make_shared<int>(0);
    *loop = [&, inst, loop, misses] {
      const sim::Time t0 = w.net.now();
      inst->inp(Pattern{"item", any_int()}, [&, t0, loop, misses](auto r) {
        if (r) {
          *misses = 0;
          taken.insert(r->tuple[1].as_int());
          latency.add(static_cast<double>(w.net.now() - t0));
          w.queue.schedule_after(sim::milliseconds(5), *loop);
        } else if (++*misses < 6) {
          w.queue.schedule_after(sim::milliseconds(200), *loop);
        }
      });
    };
    w.queue.schedule_after(sim::milliseconds(1), *loop);
  }
  w.queue.run_for(sim::seconds(120));

  A2Result r;
  std::set<std::int64_t> unique_ids(taken.begin(), taken.end());
  r.duplicates = static_cast<double>(taken.size() - unique_ids.size());
  // Anything neither taken nor still visible is lost.
  std::size_t remaining = 0;
  for (auto& n : nodes) {
    remaining += n->local_space().count_matches(Pattern{"item", any_int()});
    remaining += n->local_space().tentative_count();
  }
  r.lost = static_cast<double>(kItems - unique_ids.size() - remaining);
  r.latency_ms = bench::sim_ms(latency.mean());
  return r;
}

void BM_TentativeHold(benchmark::State& state) {
  const sim::Duration hold = sim::milliseconds(state.range(0));
  A2Result r;
  std::uint64_t seed = 41;
  for (auto _ : state) {
    r = run_hold(hold, seed++);
  }
  state.counters["duplicates"] = r.duplicates;
  state.counters["lost"] = r.lost;
  state.counters["sim_latency_ms"] = r.latency_ms;
}

BENCHMARK(BM_TentativeHold)
    ->Arg(50)
    ->Arg(250)
    ->Arg(750)
    ->Arg(3000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// ---------------- A3: probe window sweep ----------------

void BM_ProbeWindow(benchmark::State& state) {
  const sim::Duration window = sim::milliseconds(state.range(0));
  double found = 0, latency = 0;
  std::uint64_t seed = 51;
  for (auto _ : state) {
    World w(seed++);
    core::Config cfg = bench::bench_config("origin");
    cfg.probe_window = window;
    core::Instance origin(w.tx, cfg);
    std::vector<std::unique_ptr<core::Instance>> peers;
    for (int i = 0; i < 16; ++i) {
      peers.push_back(std::make_unique<core::Instance>(
          w.tx, bench::bench_config("p" + std::to_string(i))));
    }
    peers.back()->out(Tuple{"needle"});
    const sim::Time t0 = w.net.now();
    sim::Time t1 = t0;
    bool hit = false;
    origin.rdp(Pattern{"needle"}, [&](auto r) {
      t1 = w.net.now();
      hit = r.has_value();
    });
    w.queue.run_for(sim::seconds(10));
    found = static_cast<double>(origin.responders().size());
    latency = bench::sim_ms(static_cast<double>(t1 - t0));
    (void)hit;
  }
  state.counters["responders_found"] = found;
  state.counters["first_op_latency_ms"] = latency;
}

BENCHMARK(BM_ProbeWindow)
    ->Arg(5)
    ->Arg(25)
    ->Arg(100)
    ->Arg(400)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

TIAMAT_BENCH_MAIN("ablation");
