// Endpoint: a node's attachment to the transport, with typed message
// dispatch. Encoding/decoding happens here, so everything above it deals in
// Message values and everything below in raw bytes.
//
// The endpoint is backend-agnostic: it talks to the abstract
// transport::Transport, so the same protocol code runs over the
// deterministic simulator and the multi-threaded loopback backend.

#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "net/message.h"
#include "obs/metrics.h"
#include "transport/transport.h"

namespace tiamat::net {

class Endpoint {
 public:
  using Handler = std::function<void(transport::NodeId from, const Message&)>;

  struct Stats {
    std::uint64_t sent = 0;
    std::uint64_t multicast = 0;
    std::uint64_t received = 0;
    std::uint64_t decode_failures = 0;
    std::uint64_t unhandled = 0;
  };

  Endpoint(transport::Transport& tx, transport::NodeId node);

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  ~Endpoint();

  transport::NodeId node() const { return node_; }
  transport::Transport& transport() { return tx_; }

  /// Registers the handler for one message type (replacing any previous).
  void on(std::uint16_t type, Handler handler);

  /// Fallback for types with no specific handler.
  void set_default_handler(Handler handler);

  void send(transport::NodeId to, const Message& m);
  void multicast(transport::GroupId group, const Message& m);

  void join_group(transport::GroupId group);
  void leave_group(transport::GroupId group);

  /// Mirrors the drop-path stats into registry counters
  /// ("net.decode_failures" / "net.unhandled"), so silent message loss is
  /// visible in metric snapshots, not just in the endpoint's own Stats.
  void publish_stats(obs::Registry& registry);

  /// Invoked (with the claimed sender) whenever an arriving payload fails to
  /// decode; Instance uses it to emit a kDecodeFailure trace event.
  void set_decode_failure_hook(std::function<void(transport::NodeId)> hook) {
    decode_failure_hook_ = std::move(hook);
  }

  const Stats& stats() const { return stats_; }
  transport::Time now() const { return tx_.now(); }

 private:
  void deliver(transport::NodeId from, const transport::Payload& bytes);

  transport::Transport& tx_;
  transport::NodeId node_;
  std::unordered_map<std::uint16_t, Handler> handlers_;
  Handler default_handler_;
  Stats stats_;
  obs::Counter* decode_failures_ = nullptr;  ///< set by publish_stats
  obs::Counter* unhandled_ = nullptr;        ///< set by publish_stats
  std::function<void(transport::NodeId)> decode_failure_hook_;
};

}  // namespace tiamat::net
