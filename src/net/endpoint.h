// Endpoint: a node's attachment to the simulated network, with typed
// message dispatch. Encoding/decoding happens here, so everything above it
// deals in Message values and everything below in raw bytes.

#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "net/message.h"
#include "sim/network.h"

namespace tiamat::net {

class Endpoint {
 public:
  using Handler = std::function<void(sim::NodeId from, const Message&)>;

  struct Stats {
    std::uint64_t sent = 0;
    std::uint64_t multicast = 0;
    std::uint64_t received = 0;
    std::uint64_t decode_failures = 0;
    std::uint64_t unhandled = 0;
  };

  Endpoint(sim::Network& net, sim::NodeId node);

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  ~Endpoint();

  sim::NodeId node() const { return node_; }
  sim::Network& network() { return net_; }

  /// Registers the handler for one message type (replacing any previous).
  void on(std::uint16_t type, Handler handler);

  /// Fallback for types with no specific handler.
  void set_default_handler(Handler handler);

  void send(sim::NodeId to, const Message& m);
  void multicast(sim::GroupId group, const Message& m);

  void join_group(sim::GroupId group);
  void leave_group(sim::GroupId group);

  const Stats& stats() const { return stats_; }
  sim::Time now() const { return net_.now(); }

 private:
  void deliver(sim::NodeId from, const sim::Payload& bytes);

  sim::Network& net_;
  sim::NodeId node_;
  std::unordered_map<std::uint16_t, Handler> handlers_;
  Handler default_handler_;
  Stats stats_;
};

}  // namespace tiamat::net
