// Wire message envelope shared by Tiamat and the baseline protocols.
//
// Every protocol in this repository speaks Messages serialized through the
// tuple codec, so traffic accounting (bytes, packet counts) is uniform and
// honest across the compared systems.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tuple/codec.h"
#include "tuple/pattern.h"
#include "tuple/tuple.h"

namespace tiamat::net {

/// Message type codes. Tiamat proper uses 1..99; each baseline protocol has
/// its own hundred-block so a stray cross-protocol packet is detectable.
enum MsgType : std::uint16_t {
  kInvalid = 0,

  // Discovery (§3.1.3)
  kProbe = 1,       ///< multicast "who is visible?"
  kProbeReply = 2,  ///< unicast "I am, contact me here"

  // Logical-space operation propagation (§2.2, §3.1.3)
  kOpRequest = 10,   ///< propagate rd/rdp/in/inp to a remote instance
  kOpResponse = 11,  ///< match found (tuple attached) or not
  kConfirm = 12,     ///< winner: make the tentative removal permanent
  kRelease = 13,     ///< loser: put the tentative tuple back
  kCancelOp = 14,    ///< originator's lease ended; drop remote waiters
  kConfirmAck = 15,  ///< serving side acknowledges a Confirm

  // Direct remote operations (§2.4)
  kRemoteOut = 20,  ///< out directed at a specific space
  kRemoteOutAck = 21,
  kRemoteEval = 22,  ///< eval (named computation) at a specific space
  kRemoteEvalAck = 23,

  // Baseline protocol blocks.
  kCentralBase = 100,
  kLimboBase = 200,
  kLimeBase = 300,
  kCoreLimeBase = 400,
  kPeersBase = 500,
};

/// Generic envelope: a type code, a correlation id, the logical originator,
/// typed scalar headers, and optional tuple/pattern payloads.
struct Message {
  std::uint16_t type = kInvalid;
  std::uint64_t op_id = 0;
  std::uint32_t origin = 0;  ///< logical source (survives multi-hop relays)
  std::vector<tuples::Value> headers;
  std::optional<tuples::Tuple> tuple;
  std::optional<tuples::Pattern> pattern;

  // ---- header conveniences ----
  Message& h(tuples::Value v) {
    headers.push_back(std::move(v));
    return *this;
  }
  std::int64_t hint(std::size_t i) const { return headers.at(i).as_int(); }
  const std::string& hstr(std::size_t i) const {
    return headers.at(i).as_string();
  }
  bool hbool(std::size_t i) const { return headers.at(i).as_bool(); }
  double hdouble(std::size_t i) const { return headers.at(i).as_double(); }

  std::string to_string() const;
};

tuples::Bytes encode_message(const Message& m);
std::optional<Message> decode_message(const tuples::Bytes& b);

}  // namespace tiamat::net
