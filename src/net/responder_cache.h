// The responder list from paper §3.1.3.
//
// "The current implementation retains a list of instances which respond to
// the multicast packets when an operation takes place. When the instance
// performs subsequent operations, it begins by contacting the instances
// already on the list, removing any which do not respond. If the end of the
// list is reached, and the request is not satisfied, then another multicast
// may be used to try and find more instances. Responding instances are added
// to the bottom of the list and operation propagation always starts from the
// top. This improves performance because consistently visible instances work
// their way to the top of the list."
//
// The cache implements that list verbatim, plus an optional
// stability-ordered mode implementing the paper's §6 future-work idea of
// preferring "relatively fixed and well connected" instances (measured here
// as per-peer response rate); the ablation bench compares both.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "transport/transport.h"

namespace tiamat::net {

class ResponderCache {
 public:
  enum class Ordering {
    kPaperList,   ///< exactly the §3.1.3 list discipline
    kByStability, ///< §6 extension: most reliable responders first
  };

  explicit ResponderCache(Ordering ordering = Ordering::kPaperList)
      : ordering_(ordering) {}

  /// Appends a responder at the bottom (no-op if already present).
  void add(transport::NodeId id);

  /// Drops a non-responder from the list. Its stability history is kept so
  /// a flaky peer that keeps re-appearing does not look pristine.
  void remove(transport::NodeId id);

  bool contains(transport::NodeId id) const;
  std::size_t size() const { return list_.size(); }
  bool empty() const { return list_.empty(); }
  void clear() {
    list_.clear();
    gauge_size();
  }

  /// Contact order for the next operation: top first. In kByStability mode
  /// the list is ordered by response rate (descending, list position as
  /// tie-break) instead.
  std::vector<transport::NodeId> contact_order() const;

  /// Stability bookkeeping (feeds kByStability, harmless in paper mode).
  void record_success(transport::NodeId id);
  void record_failure(transport::NodeId id);
  double response_rate(transport::NodeId id) const;

  Ordering ordering() const { return ordering_; }
  void set_ordering(Ordering o) { ordering_ = o; }

  /// Mirrors list churn and per-peer reliability into `r`: counters
  /// "responders.added"/"responders.removed", gauge "responders.size", and
  /// a per-peer "peer.response_rate" gauge updated on every observation —
  /// the telemetry an opportunistic deployment needs to judge its peers.
  void bind_metrics(obs::Registry& r);

 private:
  void gauge_size();
  void gauge_rate(transport::NodeId id);
  struct History {
    std::uint64_t successes = 0;
    std::uint64_t failures = 0;
  };

  Ordering ordering_;
  std::vector<transport::NodeId> list_;  // top = front
  std::unordered_map<transport::NodeId, History> history_;
  obs::Registry* registry_ = nullptr;
  obs::Counter* added_ = nullptr;
  obs::Counter* removed_ = nullptr;
  obs::Gauge* size_ = nullptr;
  std::unordered_map<transport::NodeId, obs::Gauge*> rate_gauges_;
};

}  // namespace tiamat::net
