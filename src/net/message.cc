#include "net/message.h"

#include <sstream>

namespace tiamat::net {

using tuples::Bytes;
using tuples::Reader;
using tuples::Writer;

namespace {
// Presence bits for the optional payloads.
constexpr std::uint8_t kHasTuple = 1 << 0;
constexpr std::uint8_t kHasPattern = 1 << 1;
}  // namespace

Bytes encode_message(const Message& m) {
  Writer w;
  w.u16(m.type);
  w.u64(m.op_id);
  w.u32(m.origin);
  std::uint8_t flags = 0;
  if (m.tuple) flags |= kHasTuple;
  if (m.pattern) flags |= kHasPattern;
  w.u8(flags);
  w.varint(m.headers.size());
  for (const auto& v : m.headers) tuples::encode(w, v);
  if (m.tuple) tuples::encode(w, *m.tuple);
  if (m.pattern) tuples::encode(w, *m.pattern);
  return std::move(w).take();
}

std::optional<Message> decode_message(const Bytes& b) {
  try {
    Reader r(b);
    Message m;
    m.type = r.u16();
    m.op_id = r.u64();
    m.origin = r.u32();
    std::uint8_t flags = r.u8();
    std::uint64_t n = r.varint();
    if (n > r.remaining()) return std::nullopt;
    m.headers.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      m.headers.push_back(tuples::decode_value(r));
    }
    if (flags & kHasTuple) m.tuple = tuples::decode_tuple(r);
    if (flags & kHasPattern) m.pattern = tuples::decode_pattern(r);
    if (!r.done()) return std::nullopt;
    return m;
  } catch (const tuples::DecodeError&) {
    return std::nullopt;
  }
}

std::string Message::to_string() const {
  std::ostringstream os;
  os << "msg{type=" << type << " op=" << op_id << " origin=" << origin;
  if (!headers.empty()) {
    os << " h=[";
    for (std::size_t i = 0; i < headers.size(); ++i) {
      if (i) os << ",";
      os << headers[i].to_string();
    }
    os << "]";
  }
  if (tuple) os << " tuple=" << tuple->to_string();
  if (pattern) os << " pat=" << pattern->to_string();
  os << "}";
  return os.str();
}

}  // namespace tiamat::net
