#include "net/rpc.h"

namespace tiamat::net {

Correlator::~Correlator() {
  for (auto& [id, open] : open_) {
    (void)id;
    if (open.deadline_event != transport::kInvalidEvent) {
      queue_.cancel(open.deadline_event);
    }
  }
}

void Correlator::expect(std::uint64_t op_id, OnMessage on_message,
                        transport::Time deadline, OnDeadline on_deadline) {
  Open open;
  open.on_message = std::move(on_message);
  open.on_deadline = std::move(on_deadline);
  if (deadline != transport::kNever) {
    open.deadline_event = queue_.schedule_at(deadline, [this, op_id] {
      auto it = open_.find(op_id);
      if (it == open_.end()) return;
      Open o = std::move(it->second);
      open_.erase(it);
      if (metrics_.deadline_expired) ++*metrics_.deadline_expired;
      gauge_open();
      if (o.on_deadline) o.on_deadline();
    });
  }
  open_[op_id] = std::move(open);
  gauge_open();
}

bool Correlator::route(transport::NodeId from, const Message& m) {
  auto it = open_.find(m.op_id);
  if (it == open_.end()) {
    if (metrics_.stale) ++*metrics_.stale;
    return false;
  }
  if (metrics_.routed) ++*metrics_.routed;
  // Copy the handler out: it may register new exchanges (rehashing the map)
  // or finish this one while running.
  OnMessage handler = it->second.on_message;
  bool keep = handler(from, m);
  if (!keep) finish(m.op_id);
  return true;
}

bool Correlator::finish(std::uint64_t op_id) {
  auto it = open_.find(op_id);
  if (it == open_.end()) return false;
  if (it->second.deadline_event != transport::kInvalidEvent) {
    queue_.cancel(it->second.deadline_event);
  }
  open_.erase(it);
  gauge_open();
  return true;
}

void Correlator::bind_metrics(obs::Registry& r) {
  metrics_.routed = &r.counter("rpc.routed");
  metrics_.stale = &r.counter("rpc.stale");
  metrics_.deadline_expired = &r.counter("rpc.deadline_expired");
  metrics_.open = &r.gauge("rpc.open_exchanges");
}

}  // namespace tiamat::net
