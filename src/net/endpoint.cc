#include "net/endpoint.h"

#include "obs/metric_names.h"

namespace tiamat::net {

Endpoint::Endpoint(transport::Transport& tx, transport::NodeId node)
    : tx_(tx), node_(node) {
  tx_.bind(node_,
           [this](transport::NodeId from, const transport::Payload& bytes) {
             deliver(from, bytes);
           });
}

Endpoint::~Endpoint() {
  if (tx_.node_exists(node_)) tx_.bind(node_, nullptr);
}

void Endpoint::on(std::uint16_t type, Handler handler) {
  handlers_[type] = std::move(handler);
}

void Endpoint::set_default_handler(Handler handler) {
  default_handler_ = std::move(handler);
}

void Endpoint::publish_stats(obs::Registry& registry) {
  decode_failures_ = &registry.counter("net.decode_failures");
  unhandled_ = &registry.counter("net.unhandled");
  // Catch up on drops recorded before the registry was attached.
  decode_failures_->add(stats_.decode_failures);
  unhandled_->add(stats_.unhandled);
}

void Endpoint::send(transport::NodeId to, const Message& m) {
  ++stats_.sent;
  tx_.send(node_, to, encode_message(m));
}

void Endpoint::multicast(transport::GroupId group, const Message& m) {
  ++stats_.multicast;
  tx_.multicast(node_, group, encode_message(m));
}

void Endpoint::join_group(transport::GroupId group) {
  tx_.join_group(node_, group);
}

void Endpoint::leave_group(transport::GroupId group) {
  tx_.leave_group(node_, group);
}

void Endpoint::deliver(transport::NodeId from,
                       const transport::Payload& bytes) {
  auto m = decode_message(bytes);
  if (!m) {
    ++stats_.decode_failures;
    if (decode_failures_) ++*decode_failures_;
    if (decode_failure_hook_) decode_failure_hook_(from);
    return;
  }
  ++stats_.received;
  auto it = handlers_.find(m->type);
  if (it != handlers_.end()) {
    it->second(from, *m);
  } else if (default_handler_) {
    default_handler_(from, *m);
  } else {
    ++stats_.unhandled;
    if (unhandled_) ++*unhandled_;
  }
}

}  // namespace tiamat::net
