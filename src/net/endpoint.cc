#include "net/endpoint.h"

namespace tiamat::net {

Endpoint::Endpoint(sim::Network& net, sim::NodeId node)
    : net_(net), node_(node) {
  net_.bind(node_, [this](sim::NodeId from, const sim::Payload& bytes) {
    deliver(from, bytes);
  });
}

Endpoint::~Endpoint() {
  if (net_.node_exists(node_)) net_.bind(node_, nullptr);
}

void Endpoint::on(std::uint16_t type, Handler handler) {
  handlers_[type] = std::move(handler);
}

void Endpoint::set_default_handler(Handler handler) {
  default_handler_ = std::move(handler);
}

void Endpoint::send(sim::NodeId to, const Message& m) {
  ++stats_.sent;
  net_.send(node_, to, encode_message(m));
}

void Endpoint::multicast(sim::GroupId group, const Message& m) {
  ++stats_.multicast;
  net_.multicast(node_, group, encode_message(m));
}

void Endpoint::join_group(sim::GroupId group) { net_.join_group(node_, group); }

void Endpoint::leave_group(sim::GroupId group) {
  net_.leave_group(node_, group);
}

void Endpoint::deliver(sim::NodeId from, const sim::Payload& bytes) {
  auto m = decode_message(bytes);
  if (!m) {
    ++stats_.decode_failures;
    return;
  }
  ++stats_.received;
  auto it = handlers_.find(m->type);
  if (it != handlers_.end()) {
    it->second(from, *m);
  } else if (default_handler_) {
    default_handler_(from, *m);
  } else {
    ++stats_.unhandled;
  }
}

}  // namespace tiamat::net
