// Correlation of multi-party exchanges.
//
// Tiamat's operation propagation is not simple request/response: one op id
// fans out to many responders, responses dribble in, and the exchange ends
// on first-match, lease expiry, or cancellation. The Correlator owns op-id
// allocation, per-op routing, and the deadline timer; protocol code supplies
// the policy.

#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "net/message.h"
#include "obs/metrics.h"
#include "transport/timer.h"
#include "transport/transport.h"

namespace tiamat::net {

class Correlator {
 public:
  /// Called for every message routed to the op. Return false to finish the
  /// exchange (deadline timer cancelled, state dropped).
  using OnMessage = std::function<bool(transport::NodeId from, const Message&)>;
  using OnDeadline = std::function<void()>;

  explicit Correlator(transport::TimerService& queue) : queue_(queue) {}
  ~Correlator();

  Correlator(const Correlator&) = delete;
  Correlator& operator=(const Correlator&) = delete;

  std::uint64_t next_op_id() { return next_id_++; }

  /// Registers an exchange. `deadline` == transport::kNever disables the timer.
  void expect(std::uint64_t op_id, OnMessage on_message,
              transport::Time deadline = transport::kNever,
              OnDeadline on_deadline = nullptr);

  /// Routes an incoming message by op id. Returns false when no exchange is
  /// waiting for it (stale response — common and harmless after expiry).
  bool route(transport::NodeId from, const Message& m);

  /// Ends an exchange early (lease released / cancelled).
  bool finish(std::uint64_t op_id);

  bool active(std::uint64_t op_id) const { return open_.contains(op_id); }
  std::size_t open_count() const { return open_.size(); }

  /// Mirrors routing outcomes into `r` ("rpc.routed" / "rpc.stale" /
  /// "rpc.deadline_expired") and tracks the open-exchange count as a gauge.
  void bind_metrics(obs::Registry& r);

 private:
  struct Open {
    OnMessage on_message;
    OnDeadline on_deadline;
    transport::EventId deadline_event = transport::kInvalidEvent;
  };

  transport::TimerService& queue_;
  std::uint64_t next_id_ = 1;
  // Ordered: teardown cancels deadline events in ascending op-id order.
  std::map<std::uint64_t, Open> open_;

  struct Metrics {
    obs::Counter* routed = nullptr;
    obs::Counter* stale = nullptr;
    obs::Counter* deadline_expired = nullptr;
    obs::Gauge* open = nullptr;
  } metrics_;
  void gauge_open() {
    if (metrics_.open) metrics_.open->set(static_cast<double>(open_.size()));
  }
};

}  // namespace tiamat::net
