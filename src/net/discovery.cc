#include "net/discovery.h"

namespace tiamat::net {

Discovery::Discovery(Endpoint& endpoint, transport::TimerService& queue,
                     ResponderCache& cache)
    : endpoint_(endpoint), queue_(queue), cache_(cache) {
  endpoint_.on(kProbeReply, [this](transport::NodeId from, const Message& m) {
    ++stats_.replies_received;
    if (!probe_open_ || m.op_id != probe_id_) return;  // stale reply
    if (!cache_.contains(from)) {
      cache_.add(from);  // "added to the bottom of the list"
      ++new_in_window_;
    }
  });
}

Discovery::~Discovery() {
  if (window_event_ != transport::kInvalidEvent) queue_.cancel(window_event_);
}

void Discovery::enable_responder(std::function<bool()> available) {
  endpoint_.join_group(kDiscoveryGroup);
  endpoint_.on(kProbe, [this, available = std::move(available)](
                           transport::NodeId from, const Message& m) {
    if (available && !available()) return;
    Message reply;
    reply.type = kProbeReply;
    reply.op_id = m.op_id;
    reply.origin = endpoint_.node();
    ++stats_.replies_sent;
    endpoint_.send(from, reply);
  });
}

void Discovery::probe(transport::Duration window,
                      std::function<void(std::size_t)> done) {
  waiting_.push_back(std::move(done));
  if (probe_open_) return;  // share the in-flight probe

  probe_open_ = true;
  ++probe_id_;
  new_in_window_ = 0;
  ++stats_.probes_sent;

  Message m;
  m.type = kProbe;
  m.op_id = probe_id_;
  m.origin = endpoint_.node();
  endpoint_.multicast(kDiscoveryGroup, m);

  window_event_ = queue_.schedule_after(window, [this] {
    window_event_ = transport::kInvalidEvent;
    finish_probe();
  });
}

void Discovery::finish_probe() {
  probe_open_ = false;
  auto waiting = std::move(waiting_);
  waiting_.clear();
  const std::size_t found = new_in_window_;
  for (auto& cb : waiting) {
    if (cb) cb(found);
  }
}

}  // namespace tiamat::net
