// Multicast discovery (§3.1.3).
//
// "Normally, when an operation is performed the Tiamat instance involved
// sends out a multicast packet. Other instances which receive this packet
// respond, informing the sender of the address and port number on which they
// should be contacted."
//
// A probe is a multicast on the discovery group; visible instances reply
// with a unicast kProbeReply. Replies arriving within the probe window are
// appended to the responder cache (at the bottom, per the paper's list
// discipline) and the completion callback reports how many were new.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/endpoint.h"
#include "net/responder_cache.h"
#include "transport/timer.h"

namespace tiamat::net {

/// Well-known multicast group all Tiamat instances join.
inline constexpr transport::GroupId kDiscoveryGroup = 1;

class Discovery {
 public:
  struct Stats {
    std::uint64_t probes_sent = 0;
    std::uint64_t replies_sent = 0;
    std::uint64_t replies_received = 0;
  };

  Discovery(Endpoint& endpoint, transport::TimerService& queue, ResponderCache& cache);
  ~Discovery();

  /// Joins the discovery group and starts answering probes. `available`
  /// lets the instance decline (e.g. lease policy refusing all work).
  void enable_responder(std::function<bool()> available = nullptr);

  /// Sends one probe; after `window`, calls `done(new_responders)`.
  /// Concurrent probes coalesce: callers during an open window share it.
  void probe(transport::Duration window, std::function<void(std::size_t)> done);

  bool probing() const { return probe_open_; }
  const Stats& stats() const { return stats_; }

 private:
  void finish_probe();

  Endpoint& endpoint_;
  transport::TimerService& queue_;
  ResponderCache& cache_;
  Stats stats_;

  bool probe_open_ = false;
  transport::EventId window_event_ = transport::kInvalidEvent;
  std::uint64_t probe_id_ = 0;
  std::size_t new_in_window_ = 0;
  std::vector<std::function<void(std::size_t)>> waiting_;
};

}  // namespace tiamat::net
