#include "net/responder_cache.h"

#include <algorithm>

namespace tiamat::net {

void ResponderCache::add(transport::NodeId id) {
  if (contains(id)) return;
  list_.push_back(id);
  if (added_) ++*added_;
  gauge_size();
}

void ResponderCache::remove(transport::NodeId id) {
  const std::size_t before = list_.size();
  list_.erase(std::remove(list_.begin(), list_.end(), id), list_.end());
  if (removed_ && list_.size() != before) ++*removed_;
  gauge_size();
}

bool ResponderCache::contains(transport::NodeId id) const {
  return std::find(list_.begin(), list_.end(), id) != list_.end();
}

std::vector<transport::NodeId> ResponderCache::contact_order() const {
  std::vector<transport::NodeId> order = list_;
  if (ordering_ == Ordering::kByStability) {
    std::vector<std::size_t> pos(order.size());
    std::unordered_map<transport::NodeId, std::size_t> at;
    for (std::size_t i = 0; i < order.size(); ++i) at[order[i]] = i;
    std::stable_sort(order.begin(), order.end(),
                     [this, &at](transport::NodeId a, transport::NodeId b) {
                       double ra = response_rate(a);
                       double rb = response_rate(b);
                       if (ra != rb) return ra > rb;
                       return at.at(a) < at.at(b);
                     });
  }
  return order;
}

void ResponderCache::record_success(transport::NodeId id) {
  ++history_[id].successes;
  gauge_rate(id);
}

void ResponderCache::record_failure(transport::NodeId id) {
  ++history_[id].failures;
  gauge_rate(id);
}

void ResponderCache::bind_metrics(obs::Registry& r) {
  registry_ = &r;
  added_ = &r.counter("responders.added");
  removed_ = &r.counter("responders.removed");
  size_ = &r.gauge("responders.size");
}

void ResponderCache::gauge_size() {
  if (size_) size_->set(static_cast<double>(list_.size()));
}

void ResponderCache::gauge_rate(transport::NodeId id) {
  if (registry_ == nullptr) return;
  auto it = rate_gauges_.find(id);
  if (it == rate_gauges_.end()) {
    it = rate_gauges_
             .emplace(id, &registry_->gauge("peer.response_rate",
                                            {{"peer", std::to_string(id)}}))
             .first;
  }
  it->second->set(response_rate(id));
}

double ResponderCache::response_rate(transport::NodeId id) const {
  auto it = history_.find(id);
  if (it == history_.end()) return 0.5;  // unknown peers rank mid-table
  const auto& h = it->second;
  const std::uint64_t total = h.successes + h.failures;
  if (total == 0) return 0.5;
  return static_cast<double>(h.successes) / static_cast<double>(total);
}

}  // namespace tiamat::net
