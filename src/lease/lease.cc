#include "lease/lease.h"

#include <sstream>
#include <utility>

namespace tiamat::lease {

std::string LeaseTerms::to_string() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ", ";
    first = false;
  };
  if (ttl) {
    sep();
    os << "ttl=" << *ttl << "us";
  }
  if (max_remote_contacts) {
    sep();
    os << "contacts=" << *max_remote_contacts;
  }
  if (max_bytes) {
    sep();
    os << "bytes=" << *max_bytes;
  }
  if (first) os << "unbounded";
  os << "}";
  return os.str();
}

LeaseTerms for_duration(transport::Duration ttl) {
  LeaseTerms t;
  t.ttl = ttl;
  return t;
}

LeaseTerms for_contacts(std::uint32_t n) {
  LeaseTerms t;
  t.max_remote_contacts = n;
  return t;
}

LeaseTerms for_bytes(std::uint64_t n) {
  LeaseTerms t;
  t.max_bytes = n;
  return t;
}

LeaseTerms unbounded() { return LeaseTerms{}; }

const char* to_string(LeaseState s) {
  switch (s) {
    case LeaseState::kActive:
      return "active";
    case LeaseState::kExpired:
      return "expired";
    case LeaseState::kRevoked:
      return "revoked";
    case LeaseState::kReleased:
      return "released";
  }
  return "?";
}

Lease::Lease(LeaseId id, LeaseTerms terms, transport::Time granted_at)
    : id_(id), terms_(std::move(terms)), granted_at_(granted_at) {}

transport::Time Lease::expiry_time() const {
  if (!terms_.ttl) return transport::kNever;
  return granted_at_ + *terms_.ttl;
}

bool Lease::charge_contact() {
  if (!active()) return false;
  if (terms_.max_remote_contacts &&
      contacts_used_ >= *terms_.max_remote_contacts) {
    return false;
  }
  ++contacts_used_;
  return true;
}

bool Lease::charge_bytes(std::uint64_t n) {
  if (!active()) return false;
  if (terms_.max_bytes && bytes_used_ + n > *terms_.max_bytes) return false;
  bytes_used_ += n;
  return true;
}

bool Lease::contacts_remaining() const {
  if (!active()) return false;
  return !terms_.max_remote_contacts ||
         contacts_used_ < *terms_.max_remote_contacts;
}

void Lease::on_end(std::function<void(LeaseState)> fn) {
  if (!active()) {
    fn(state_);  // already finished: fire immediately for composability
    return;
  }
  end_callbacks_.push_back(std::move(fn));
}

void Lease::finish(LeaseState s) {
  if (!active()) return;
  state_ = s;
  auto callbacks = std::move(end_callbacks_);
  end_callbacks_.clear();
  for (auto& cb : callbacks) cb(s);
}

}  // namespace tiamat::lease
