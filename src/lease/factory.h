// Resource pools / factory objects (§3.1.1).
//
// "All resources that an instance wishes to manage (e.g., threads, sockets)
// are allocated through factory objects controlled by the lease manager."
// A ResourcePool is a counting factory handing out RAII tokens; the lease
// manager owns named pools and consults their occupancy when granting.

#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace tiamat::lease {

class ResourcePool {
 public:
  ResourcePool(std::string name, std::size_t capacity)
      : name_(std::move(name)), capacity_(capacity) {}

  ResourcePool(const ResourcePool&) = delete;
  ResourcePool& operator=(const ResourcePool&) = delete;

  /// RAII occupancy token. Default-constructed/empty tokens hold nothing.
  class Token {
   public:
    Token() = default;
    Token(Token&& other) noexcept : pool_(other.pool_) { other.pool_ = nullptr; }
    Token& operator=(Token&& other) noexcept {
      if (this != &other) {
        reset();
        pool_ = other.pool_;
        other.pool_ = nullptr;
      }
      return *this;
    }
    Token(const Token&) = delete;
    Token& operator=(const Token&) = delete;
    ~Token() { reset(); }

    explicit operator bool() const { return pool_ != nullptr; }

    void reset() {
      if (pool_ != nullptr) {
        pool_->release_one();
        pool_ = nullptr;
      }
    }

   private:
    friend class ResourcePool;
    explicit Token(ResourcePool* pool) : pool_(pool) {}
    ResourcePool* pool_ = nullptr;
  };

  /// Empty token when the pool is exhausted.
  Token try_acquire() {
    if (in_use_ >= capacity_) {
      ++refusals_;
      return Token{};
    }
    ++in_use_;
    ++grants_;
    return Token{this};
  }

  const std::string& name() const { return name_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t in_use() const { return in_use_; }
  std::size_t available() const { return capacity_ - in_use_; }
  std::uint64_t grants() const { return grants_; }
  std::uint64_t refusals() const { return refusals_; }

  /// Capacity may shrink below in_use; outstanding tokens stay valid and
  /// new acquisitions fail until occupancy drains.
  void set_capacity(std::size_t capacity) { capacity_ = capacity; }

 private:
  void release_one() {
    if (in_use_ > 0) --in_use_;
  }

  std::string name_;
  std::size_t capacity_;
  std::size_t in_use_ = 0;
  std::uint64_t grants_ = 0;
  std::uint64_t refusals_ = 0;
};

}  // namespace tiamat::lease
