#include "lease/policy.h"

#include <algorithm>

namespace tiamat::lease {

std::optional<LeaseTerms> DefaultLeasePolicy::offer(
    const LeaseTerms& requested, const ResourceUsage& usage, transport::Time) {
  // Saturated instances refuse outright.
  if (usage.stored_bytes >= caps_.max_stored_bytes) return std::nullopt;
  if (usage.active_ops >= caps_.max_active_ops) return std::nullopt;

  // Pressure factor in (0, 1]: offers shrink as storage fills past the
  // threshold, hitting ~0 at saturation.
  double factor = 1.0;
  const double used =
      static_cast<double>(usage.stored_bytes) / caps_.max_stored_bytes;
  if (used > caps_.pressure_threshold) {
    factor = std::max(
        0.05, 1.0 - (used - caps_.pressure_threshold) /
                        (1.0 - caps_.pressure_threshold));
  }

  auto scale_dur = [factor](transport::Duration d) {
    return static_cast<transport::Duration>(static_cast<double>(d) * factor);
  };

  LeaseTerms granted;
  {
    transport::Duration want = requested.ttl.value_or(caps_.default_ttl);
    granted.ttl = std::min(scale_dur(want), caps_.max_ttl);
  }
  {
    std::uint32_t want =
        requested.max_remote_contacts.value_or(caps_.default_contacts);
    std::uint32_t scaled = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(want * factor));
    granted.max_remote_contacts = std::min(scaled, caps_.max_contacts);
  }
  {
    std::uint64_t want = requested.max_bytes.value_or(caps_.default_bytes);
    std::uint64_t scaled = std::max<std::uint64_t>(
        16, static_cast<std::uint64_t>(static_cast<double>(want) * factor));
    granted.max_bytes = std::min(scaled, caps_.max_bytes);
  }
  return granted;
}

std::unique_ptr<LeasePolicy> default_policy() {
  return std::make_unique<DefaultLeasePolicy>();
}

std::unique_ptr<LeasePolicy> default_policy(DefaultLeasePolicy::Caps caps) {
  return std::make_unique<DefaultLeasePolicy>(caps);
}

}  // namespace tiamat::lease
