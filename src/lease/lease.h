// Leases: Tiamat's fine-grained resource-management primitive (paper §2.5).
//
// Every operation is leased. A lease represents "the effort a Tiamat
// instance is willing to dedicate to carrying out the operation" and may be
// bounded in time *or in other measures* — this implementation supports a
// virtual-time TTL, a remote-contact budget, and a byte budget, any
// combination. Leases are valid only at the instance that granted them, are
// best-effort (revocable as a last resort), and expiry allows the leased
// resource to be reclaimed.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "transport/types.h"

namespace tiamat::lease {

using LeaseId = std::uint64_t;
inline constexpr LeaseId kNoLease = 0;

/// The dimensions a lease bounds. An absent field means "unbounded in that
/// dimension" as far as the *request* goes; the granting policy will usually
/// clamp it.
struct LeaseTerms {
  std::optional<transport::Duration> ttl;                ///< virtual time to live
  std::optional<std::uint32_t> max_remote_contacts;  ///< instances contacted
  std::optional<std::uint64_t> max_bytes;          ///< storage/transfer bytes

  bool is_bounded() const {
    return ttl.has_value() || max_remote_contacts.has_value() ||
           max_bytes.has_value();
  }

  std::string to_string() const;
};

/// Convenience constructors for the common shapes.
LeaseTerms for_duration(transport::Duration ttl);
LeaseTerms for_contacts(std::uint32_t n);
LeaseTerms for_bytes(std::uint64_t n);
LeaseTerms unbounded();

enum class LeaseState : std::uint8_t {
  kActive,
  kExpired,   ///< TTL ran out
  kRevoked,   ///< instance reclaimed it early (last resort, §2.5)
  kReleased,  ///< holder finished with it
};

const char* to_string(LeaseState s);

/// A granted lease. Owned jointly (shared_ptr) by the LeaseManager, which
/// drives expiry, and the operation holding it, which charges budgets.
class Lease {
 public:
  Lease(LeaseId id, LeaseTerms terms, transport::Time granted_at);

  LeaseId id() const { return id_; }
  const LeaseTerms& terms() const { return terms_; }
  transport::Time granted_at() const { return granted_at_; }

  /// Absolute expiry instant, or transport::kNever without a TTL.
  transport::Time expiry_time() const;

  /// Manager-only: replaces the TTL after a successful renewal.
  void set_ttl(transport::Duration ttl) { terms_.ttl = ttl; }

  LeaseState state() const { return state_; }
  bool active() const { return state_ == LeaseState::kActive; }

  // ---- Budget accounting -------------------------------------------------

  /// Charges one remote-instance contact. Returns false — and charges
  /// nothing — when the lease is not active or the contact budget is spent.
  bool charge_contact();

  /// Charges `n` bytes against the byte budget, same contract.
  bool charge_bytes(std::uint64_t n);

  /// True if at least one more remote contact may be charged.
  bool contacts_remaining() const;

  std::uint32_t contacts_used() const { return contacts_used_; }
  std::uint64_t bytes_used() const { return bytes_used_; }

  // ---- Lifecycle ----------------------------------------------------------

  /// Registers a callback fired exactly once when the lease stops being
  /// active for any reason (expiry, revocation or release). Operations use
  /// this to cancel outstanding work and reclaim resources.
  void on_end(std::function<void(LeaseState)> fn);

  /// Transitions; each is idempotent and fires the end callbacks once.
  void expire() { finish(LeaseState::kExpired); }
  void revoke() { finish(LeaseState::kRevoked); }
  void release() { finish(LeaseState::kReleased); }

 private:
  void finish(LeaseState s);

  LeaseId id_;
  LeaseTerms terms_;
  transport::Time granted_at_;
  LeaseState state_ = LeaseState::kActive;
  std::uint32_t contacts_used_ = 0;
  std::uint64_t bytes_used_ = 0;
  std::vector<std::function<void(LeaseState)>> end_callbacks_;
};

}  // namespace tiamat::lease
