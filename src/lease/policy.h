// Lease-granting policies.
//
// "The final decision as to what lease is actually granted, or if a lease is
// granted at all, is made by the Tiamat instance" (§2.5). A policy inspects
// the requested terms and the instance's current resource usage and returns
// the offer the instance is willing to make, or refuses.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "lease/lease.h"

namespace tiamat::lease {

/// Snapshot of the granting instance's resource situation, provided by the
/// instance via a probe callback (see LeaseManager::set_usage_probe).
struct ResourceUsage {
  std::size_t stored_bytes = 0;   ///< local tuple-space footprint
  std::size_t stored_tuples = 0;
  std::size_t active_ops = 0;     ///< operations currently holding leases
  std::size_t active_leases = 0;
};

class LeasePolicy {
 public:
  virtual ~LeasePolicy() = default;

  /// The terms this instance offers for `requested` given `usage`, or
  /// nullopt to refuse outright.
  virtual std::optional<LeaseTerms> offer(const LeaseTerms& requested,
                                          const ResourceUsage& usage,
                                          transport::Time now) = 0;
};

/// The stock policy: clamps requests to per-dimension caps, substitutes
/// defaults for unbounded requests (every grant is bounded — the point of
/// the leasing model), shrinks offers as local storage fills, and refuses
/// when the instance is saturated. Suitable for the "resource-limited PDA"
/// end of the device spectrum with small caps, or a workstation with large
/// ones.
class DefaultLeasePolicy final : public LeasePolicy {
 public:
  struct Caps {
    transport::Duration max_ttl = transport::seconds(60);
    transport::Duration default_ttl = transport::seconds(10);
    std::uint32_t max_contacts = 32;
    std::uint32_t default_contacts = 8;
    std::uint64_t max_bytes = 1 << 20;      // 1 MiB per lease
    std::uint64_t default_bytes = 64 << 10; // 64 KiB per lease

    /// Saturation limits: refuse new leases beyond these.
    std::size_t max_stored_bytes = 8 << 20;
    std::size_t max_active_ops = 256;

    /// Offers shrink linearly once storage passes this fraction of
    /// max_stored_bytes (models "leases represent the effort the instance
    /// is willing to dedicate").
    double pressure_threshold = 0.5;
  };

  DefaultLeasePolicy() = default;
  explicit DefaultLeasePolicy(Caps caps) : caps_(caps) {}

  std::optional<LeaseTerms> offer(const LeaseTerms& requested,
                                  const ResourceUsage& usage,
                                  transport::Time now) override;

  const Caps& caps() const { return caps_; }
  void set_caps(Caps caps) { caps_ = caps; }

 private:
  Caps caps_;
};

/// Grants exactly what is asked (still bounded by nothing); for tests and
/// for modelling resource-rich fixed nodes.
class AcceptAllPolicy final : public LeasePolicy {
 public:
  std::optional<LeaseTerms> offer(const LeaseTerms& requested,
                                  const ResourceUsage&, transport::Time) override {
    return requested;
  }
};

/// Refuses everything; models a device that is out of resources (and drives
/// the Figure-2 "lease refused => no further work" path).
class DenyAllPolicy final : public LeasePolicy {
 public:
  std::optional<LeaseTerms> offer(const LeaseTerms&, const ResourceUsage&,
                                  transport::Time) override {
    return std::nullopt;
  }
};

std::unique_ptr<LeasePolicy> default_policy();
std::unique_ptr<LeasePolicy> default_policy(DefaultLeasePolicy::Caps caps);

}  // namespace tiamat::lease
