// Lease requesters: the application side of lease negotiation (§3.1.1).
//
// "The leasing of operations is performed by applications passing lease
// requester objects to the system along with their tuples. ... Firstly, a
// lease requester makes a request to the lease manager. The lease manager
// then informs the lease requester of what lease it is willing to offer. If
// the lease requester refuses this lease, then the operation fails."

#pragma once

#include "lease/lease.h"

namespace tiamat::lease {

class LeaseRequester {
 public:
  virtual ~LeaseRequester() = default;

  /// The terms the application would like.
  virtual LeaseTerms desired() const = 0;

  /// Second negotiation step: inspect the instance's offer and accept or
  /// refuse it (refusal fails the operation).
  virtual bool accept(const LeaseTerms& offer) const = 0;
};

/// Takes whatever the instance offers. The right default for best-effort
/// pervasive applications.
class FlexibleRequester final : public LeaseRequester {
 public:
  FlexibleRequester() = default;
  explicit FlexibleRequester(LeaseTerms desired) : desired_(std::move(desired)) {}

  LeaseTerms desired() const override { return desired_; }
  bool accept(const LeaseTerms&) const override { return true; }

 private:
  LeaseTerms desired_;
};

/// Refuses offers that fall below a fraction of what was requested in any
/// requested dimension — an application that would rather fail fast than
/// run with too little budget.
class StrictRequester final : public LeaseRequester {
 public:
  StrictRequester(LeaseTerms desired, double min_fraction = 1.0)
      : desired_(std::move(desired)), min_fraction_(min_fraction) {}

  LeaseTerms desired() const override { return desired_; }
  bool accept(const LeaseTerms& offer) const override;

 private:
  LeaseTerms desired_;
  double min_fraction_;
};

}  // namespace tiamat::lease
