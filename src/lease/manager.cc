#include "lease/manager.h"

#include <utility>
#include <vector>

#if TIAMAT_AUDIT_ENABLED
#include <sstream>
#endif

namespace tiamat::lease {

#if TIAMAT_AUDIT_ENABLED
void LeaseManager::audit_check(const char* checkpoint) const {
  auto trap = [&](const std::string& invariant, const std::string& detail) {
    std::ostringstream os;
    os << detail << " | active " << active_.size() << ", next id "
       << next_id_;
    audit::fail("LeaseManager", checkpoint, invariant, os.str());
  };
  for (const auto& [id, entry] : active_) {
    if (!entry.lease) {
      std::ostringstream os;
      os << "active table holds null lease under id " << id;
      trap("lease-live", os.str());
      return;
    }
    if (entry.lease->id() != id) {
      std::ostringstream os;
      os << "lease " << entry.lease->id() << " registered under id " << id;
      trap("lease-live", os.str());
      return;
    }
    if (id >= next_id_) {
      std::ostringstream os;
      os << "lease id " << id << " >= next id " << next_id_;
      trap("id-allocation", os.str());
      return;
    }
    // A terminal lease may only appear here mid-reclamation: the expiry
    // timer fired (event already cleared, deadline passed) and expire()'s
    // end callbacks are still running — one of them may re-enter the
    // manager and land on this checkpoint before finish_bookkeeping
    // erases the entry. Anything else is a stale entry that would keep
    // charging the policy's usage accounting forever.
    if (!entry.lease->active()) {
      const bool mid_expiry = entry.lease->state() == LeaseState::kExpired &&
                              entry.expiry_event == transport::kInvalidEvent &&
                              entry.lease->expiry_time() != transport::kNever &&
                              entry.lease->expiry_time() <= queue_.now();
      if (!mid_expiry) {
        std::ostringstream os;
        os << "lease " << id << " tracked as active but in a terminal state";
        trap("lease-live", os.str());
        return;
      }
      continue;
    }
    const transport::Time expiry = entry.lease->expiry_time();
    if (expiry != transport::kNever) {
      if (entry.expiry_event == transport::kInvalidEvent) {
        std::ostringstream os;
        os << "lease " << id << " has a TTL but no expiry timer armed";
        trap("expiry-armed", os.str());
        return;
      }
      if (expiry < queue_.now()) {
        std::ostringstream os;
        os << "lease " << id << " expiry " << expiry
           << " already passed (now " << queue_.now() << ")";
        trap("expiry-armed", os.str());
        return;
      }
    }
  }
}
#endif  // TIAMAT_AUDIT_ENABLED

LeaseManager::LeaseManager(transport::TimerService& queue,
                           std::unique_ptr<LeasePolicy> policy)
    : queue_(queue), policy_(std::move(policy)) {}

LeaseManager::~LeaseManager() {
  for (auto& [id, entry] : active_) {
    (void)id;
    if (entry.expiry_event != transport::kInvalidEvent) {
      queue_.cancel(entry.expiry_event);
    }
  }
}

std::shared_ptr<Lease> LeaseManager::negotiate(
    const LeaseRequester& requester) {
  ResourceUsage usage;
  if (usage_probe_) usage = usage_probe_();
  usage.active_leases = active_.size();
  usage.active_ops = active_.size();

  auto offer = policy_->offer(requester.desired(), usage, queue_.now());
  if (!offer) {
    ++stats_.refused_by_policy;
    if (metrics_.refused_by_policy) ++*metrics_.refused_by_policy;
    return nullptr;
  }
  if (!requester.accept(*offer)) {
    ++stats_.refused_by_requester;
    if (metrics_.refused_by_requester) ++*metrics_.refused_by_requester;
    return nullptr;
  }

  LeaseId id = next_id_++;
  auto lease = std::make_shared<Lease>(id, *offer, queue_.now());
  Active entry;
  entry.lease = lease;
  if (offer->ttl) {
    entry.expiry_event = queue_.schedule_at(
        lease->expiry_time(), [this, id] {
          auto it = active_.find(id);
          if (it == active_.end()) return;
          auto l = it->second.lease;
          it->second.expiry_event = transport::kInvalidEvent;
          l->expire();  // fires end callbacks; bookkeeping below
          finish_bookkeeping(id, LeaseState::kExpired);
        });
  }
  // Bookkeeping when the *holder* ends the lease (release) or it is revoked
  // through the Lease object directly.
  lease->on_end([this, id](LeaseState state) {
    if (state != LeaseState::kExpired) finish_bookkeeping(id, state);
  });
  active_.emplace(id, std::move(entry));
  ++stats_.granted;
  if (metrics_.granted) ++*metrics_.granted;
  if (metrics_.active) metrics_.active->set(static_cast<double>(active_.size()));
  TIAMAT_AUDIT_CHECK(audit_check("negotiate"));
  return lease;
}

void LeaseManager::finish_bookkeeping(LeaseId id, LeaseState state) {
  auto it = active_.find(id);
  if (it == active_.end()) return;
  if (it->second.expiry_event != transport::kInvalidEvent) {
    queue_.cancel(it->second.expiry_event);
  }
  active_.erase(it);
  switch (state) {
    case LeaseState::kExpired:
      ++stats_.expired;
      if (metrics_.expired) ++*metrics_.expired;
      break;
    case LeaseState::kRevoked:
      ++stats_.revoked;
      if (metrics_.revoked) ++*metrics_.revoked;
      break;
    case LeaseState::kReleased:
      ++stats_.released;
      if (metrics_.released) ++*metrics_.released;
      break;
    case LeaseState::kActive:
      break;
  }
  if (metrics_.active) metrics_.active->set(static_cast<double>(active_.size()));
  TIAMAT_AUDIT_CHECK(audit_check("finish_bookkeeping"));
}

std::optional<transport::Time> LeaseManager::renew(LeaseId id,
                                             transport::Duration extra) {
  auto it = active_.find(id);
  if (it == active_.end()) return std::nullopt;
  auto lease = it->second.lease;
  if (!lease->active()) return std::nullopt;

  // Re-negotiate the extension against current conditions.
  ResourceUsage usage;
  if (usage_probe_) usage = usage_probe_();
  usage.active_leases = active_.size();
  usage.active_ops = active_.size();
  const transport::Time now = queue_.now();
  const transport::Duration remaining =
      lease->expiry_time() == transport::kNever ? 0 : lease->expiry_time() - now;
  LeaseTerms ask;
  ask.ttl = (remaining > 0 ? remaining : 0) + extra;
  auto offer = policy_->offer(ask, usage, now);
  if (!offer || !offer->ttl) return std::nullopt;

  // Rebase the lease's TTL at `now` and reschedule expiry.
  const transport::Time new_expiry = now + *offer->ttl;
  lease->set_ttl(new_expiry - lease->granted_at());
  if (it->second.expiry_event != transport::kInvalidEvent) {
    queue_.cancel(it->second.expiry_event);
  }
  it->second.expiry_event =
      queue_.schedule_at(new_expiry, [this, id] {
        auto it2 = active_.find(id);
        if (it2 == active_.end()) return;
        auto l = it2->second.lease;
        it2->second.expiry_event = transport::kInvalidEvent;
        l->expire();
        finish_bookkeeping(id, LeaseState::kExpired);
      });
  TIAMAT_AUDIT_CHECK(audit_check("renew"));
  return new_expiry;
}

bool LeaseManager::revoke(LeaseId id) {
  auto it = active_.find(id);
  if (it == active_.end()) return false;
  auto lease = it->second.lease;  // keep alive across callbacks
  lease->revoke();                // triggers finish_bookkeeping via on_end
  return true;
}

void LeaseManager::revoke_all() {
  std::vector<std::shared_ptr<Lease>> leases;
  leases.reserve(active_.size());
  for (auto& [id, entry] : active_) {
    (void)id;
    leases.push_back(entry.lease);
  }
  for (auto& l : leases) l->revoke();
}

void LeaseManager::set_usage_probe(std::function<ResourceUsage()> probe) {
  usage_probe_ = std::move(probe);
}

void LeaseManager::bind_metrics(obs::Registry& r) {
  metrics_.granted = &r.counter("lease.granted");
  metrics_.refused_by_policy = &r.counter("lease.refused_by_policy");
  metrics_.refused_by_requester = &r.counter("lease.refused_by_requester");
  metrics_.expired = &r.counter("lease.expired");
  metrics_.revoked = &r.counter("lease.revoked");
  metrics_.released = &r.counter("lease.released");
  metrics_.active = &r.gauge("lease.active");
}

void LeaseManager::set_policy(std::unique_ptr<LeasePolicy> policy) {
  policy_ = std::move(policy);
}

ResourcePool& LeaseManager::pool(const std::string& name,
                                 std::size_t default_capacity) {
  auto it = pools_.find(name);
  if (it == pools_.end()) {
    it = pools_
             .emplace(name,
                      std::make_unique<ResourcePool>(name, default_capacity))
             .first;
  }
  return *it->second;
}

}  // namespace tiamat::lease
