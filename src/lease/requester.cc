#include "lease/requester.h"

namespace tiamat::lease {

bool StrictRequester::accept(const LeaseTerms& offer) const {
  if (desired_.ttl) {
    const double want = static_cast<double>(*desired_.ttl);
    const double got =
        offer.ttl ? static_cast<double>(*offer.ttl) : want;  // no TTL: fine
    if (got < want * min_fraction_) return false;
  }
  if (desired_.max_remote_contacts) {
    const double want = *desired_.max_remote_contacts;
    const double got = offer.max_remote_contacts
                           ? static_cast<double>(*offer.max_remote_contacts)
                           : want;
    if (got < want * min_fraction_) return false;
  }
  if (desired_.max_bytes) {
    const double want = static_cast<double>(*desired_.max_bytes);
    const double got =
        offer.max_bytes ? static_cast<double>(*offer.max_bytes) : want;
    if (got < want * min_fraction_) return false;
  }
  return true;
}

}  // namespace tiamat::lease
