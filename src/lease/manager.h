// The lease manager: first point of contact for every operation (§3.1,
// Figure 2). Performs the two-step negotiation with a LeaseRequester,
// schedules TTL expiry on the simulator clock, tracks active leases, owns
// named resource pools, and can revoke leases as a last resort.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "audit/audit.h"
#include "lease/factory.h"
#include "lease/lease.h"
#include "lease/policy.h"
#include "lease/requester.h"
#include "obs/metrics.h"
#include "transport/timer.h"

namespace tiamat::lease {

class LeaseManager {
 public:
  struct Stats {
    std::uint64_t granted = 0;
    std::uint64_t refused_by_policy = 0;
    std::uint64_t refused_by_requester = 0;
    std::uint64_t expired = 0;
    std::uint64_t revoked = 0;
    std::uint64_t released = 0;
  };

  LeaseManager(transport::TimerService& queue, std::unique_ptr<LeasePolicy> policy);

  /// Cancels every scheduled expiry event *without* firing lease-end
  /// callbacks: at destruction time the structures those callbacks touch
  /// are going away too.
  ~LeaseManager();

  LeaseManager(const LeaseManager&) = delete;
  LeaseManager& operator=(const LeaseManager&) = delete;

  /// Two-step negotiation (§3.1.1): the requester's desired terms go to the
  /// policy; the policy's offer goes back to the requester; acceptance
  /// produces an active lease with TTL expiry scheduled. Returns nullptr if
  /// either side refuses — in which case no further work may be performed
  /// on the operation.
  std::shared_ptr<Lease> negotiate(const LeaseRequester& requester);

  /// Renewal: extends an active lease's TTL by `extra` (re-negotiated
  /// against the policy: the instance may grant less than asked, or refuse
  /// — renewal is a fresh request, not a right). Returns the new expiry
  /// time, or nullopt if the lease is unknown/inactive or the policy
  /// refuses. Budgets (contacts/bytes) are unchanged.
  std::optional<transport::Time> renew(LeaseId id, transport::Duration extra);

  /// Last-resort revocation (§2.5): ends the lease early, firing its end
  /// callbacks so held resources are reclaimed.
  bool revoke(LeaseId id);

  /// Revokes every active lease; models a device about to power down.
  void revoke_all();

  /// The instance installs a probe so policies see live resource usage
  /// (local space footprint etc.). Ops/lease counts are added by the
  /// manager itself.
  void set_usage_probe(std::function<ResourceUsage()> probe);

  void set_policy(std::unique_ptr<LeasePolicy> policy);
  LeasePolicy& policy() { return *policy_; }

  /// Mirrors grant/refuse/expiry/revocation accounting into `r` under the
  /// "lease.*" namespace, so the owning instance's snapshot carries lease
  /// telemetry without a second bookkeeping path.
  void bind_metrics(obs::Registry& r);

  /// Named counting pools for instance-managed resources (threads, sockets,
  /// ...). Created on first use with `default_capacity`.
  ResourcePool& pool(const std::string& name,
                     std::size_t default_capacity = 16);

  std::size_t active() const { return active_.size(); }
  const Stats& stats() const { return stats_; }
  transport::Time now() const { return queue_.now(); }

#if TIAMAT_AUDIT_ENABLED
  /// Lease-table re-verification (audit builds only): every tracked lease
  /// is live (state kActive), registered under its own id, allocated below
  /// next_id_, and — when it carries a TTL — has its expiry timer armed
  /// with a non-past deadline. Traps through audit::fail on violation.
  void audit_check(const char* checkpoint) const;
#endif

 private:
  void finish_bookkeeping(LeaseId id, LeaseState state);

  transport::TimerService& queue_;
  std::unique_ptr<LeasePolicy> policy_;
  std::function<ResourceUsage()> usage_probe_;
  LeaseId next_id_ = 1;

  struct Active {
    std::shared_ptr<Lease> lease;
    transport::EventId expiry_event = transport::kInvalidEvent;
  };
  // Ordered so teardown and revoke_all fire in ascending-id (grant) order —
  // lease-end callbacks are observable, so their order must be
  // deterministic.
  std::map<LeaseId, Active> active_;
  std::map<std::string, std::unique_ptr<ResourcePool>> pools_;
  Stats stats_;

  struct Metrics {
    obs::Counter* granted = nullptr;
    obs::Counter* refused_by_policy = nullptr;
    obs::Counter* refused_by_requester = nullptr;
    obs::Counter* expired = nullptr;
    obs::Counter* revoked = nullptr;
    obs::Counter* released = nullptr;
    obs::Gauge* active = nullptr;
  } metrics_;
};

}  // namespace tiamat::lease
