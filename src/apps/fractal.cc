#include "apps/fractal.h"

namespace tiamat::apps::fractal {

using core::ReadResult;
using lease::FlexibleRequester;
using lease::LeaseTerms;
using tuples::any_blob;
using tuples::any_double;
using tuples::any_int;
using tuples::Pattern;
using tuples::Tuple;

std::vector<std::uint16_t> compute_row(const Params& p, int row) {
  std::vector<std::uint16_t> out(static_cast<std::size_t>(p.width));
  const double cy = p.y0 + (p.y1 - p.y0) * row / (p.height - 1.0);
  for (int col = 0; col < p.width; ++col) {
    const double cx = p.x0 + (p.x1 - p.x0) * col / (p.width - 1.0);
    double zx = 0.0, zy = 0.0;
    int it = 0;
    while (zx * zx + zy * zy <= 4.0 && it < p.max_iter) {
      const double nzx = zx * zx - zy * zy + cx;
      zy = 2.0 * zx * zy + cy;
      zx = nzx;
      ++it;
    }
    out[static_cast<std::size_t>(col)] = static_cast<std::uint16_t>(it);
  }
  return out;
}

tuples::Blob pack_row(const std::vector<std::uint16_t>& row) {
  tuples::Blob b;
  b.reserve(row.size() * 2);
  for (std::uint16_t v : row) {
    b.push_back(static_cast<std::uint8_t>(v));
    b.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  return b;
}

std::vector<std::uint16_t> unpack_row(const tuples::Blob& b) {
  std::vector<std::uint16_t> row(b.size() / 2);
  for (std::size_t i = 0; i < row.size(); ++i) {
    row[i] = static_cast<std::uint16_t>(b[2 * i] |
                                        (static_cast<std::uint16_t>(
                                             b[2 * i + 1])
                                         << 8));
  }
  return row;
}

Master::Master(core::Instance& instance, Params params, std::uint64_t job_id)
    : instance_(instance), params_(params), job_(job_id) {
  image_.resize(static_cast<std::size_t>(params_.height));
}

void Master::start(std::function<void()> done, transport::Duration task_ttl) {
  done_ = std::move(done);
  started_at_ = instance_.now();
  result_ttl_ = task_ttl;
  for (int row = 0; row < params_.height; ++row) {
    out_task(row, task_ttl);
  }
  collect_one();
}

void Master::out_task(int row, transport::Duration ttl) {
  LeaseTerms store;
  store.ttl = ttl;
  Tuple task{kTaskTag,
             static_cast<std::int64_t>(job_),
             row,
             params_.width,
             params_.height,
             params_.max_iter,
             params_.x0,
             params_.x1,
             params_.y0,
             params_.y1};
  instance_.out(std::move(task), FlexibleRequester{store});
}

void Master::collect_one() {
  if (complete()) {
    finished_at_ = instance_.now();
    if (done_) done_();
    return;
  }
  LeaseTerms wait;
  wait.ttl = reissue_interval;
  Pattern result{kResultTag, static_cast<std::int64_t>(job_), any_int(),
                 any_blob()};
  instance_.in(
      result,
      [this](std::optional<ReadResult> r) {
        if (r) {
          const int row = static_cast<int>(r->tuple[2].as_int());
          if (row >= 0 && row < params_.height &&
              image_[static_cast<std::size_t>(row)].empty()) {
            image_[static_cast<std::size_t>(row)] =
                unpack_row(r->tuple[3].as_blob());
            ++rows_done_;
          }
        } else if (!complete()) {
          // Stall: a worker may have taken a task tuple and died with it.
          // Re-out every missing row; duplicates are filtered on receipt.
          ++reissues_;
          for (int row = 0; row < params_.height; ++row) {
            if (image_[static_cast<std::size_t>(row)].empty()) {
              out_task(row, result_ttl_);
            }
          }
        }
        // Keep collecting (a lease expiry just re-arms the in).
        collect_one();
      },
      FlexibleRequester{wait});
}

Worker::~Worker() {
  auto& q = instance_.timers();
  for (transport::EventId ev : pending_) q.cancel(ev);
}

void Worker::start() {
  if (running_) return;
  running_ = true;
  await_task();
}

void Worker::await_task() {
  if (!running_) return;
  LeaseTerms wait;
  wait.ttl = transport::seconds(30);
  Pattern task{kTaskTag,      any_int(),    any_int(),
               any_int(),     any_int(),    any_int(),
               any_double(),  any_double(), any_double(),
               any_double()};
  instance_.in(
      task,
      [this](std::optional<ReadResult> r) {
        if (!running_) {
          if (r) instance_.out(r->tuple);  // hand the task back
          return;
        }
        if (!r) {
          await_task();  // lease lapsed with nothing to do; re-arm
          return;
        }
        const Tuple t = r->tuple;
        Params p;
        const auto job = t[1].as_int();
        const int row = static_cast<int>(t[2].as_int());
        p.width = static_cast<int>(t[3].as_int());
        p.height = static_cast<int>(t[4].as_int());
        p.max_iter = static_cast<int>(t[5].as_int());
        p.x0 = t[6].as_double();
        p.x1 = t[7].as_double();
        p.y0 = t[8].as_double();
        p.y1 = t[9].as_double();
        // The computation takes simulated time on this device...
        auto ev = std::make_shared<transport::EventId>(transport::kInvalidEvent);
        *ev = instance_.timers().schedule_after(
            row_cost_, [this, p, job, row, ev] {
              pending_.erase(*ev);
              if (!running_) return;
              // ...and is really performed.
              auto pixels = compute_row(p, row);
              ++stats_.rows_computed;
              LeaseTerms store;
              store.ttl = transport::seconds(120);
              instance_.out(Tuple{kResultTag, job, row, pack_row(pixels)},
                            FlexibleRequester{store});
              await_task();
            });
        pending_.insert(*ev);
      },
      FlexibleRequester{wait});
}

}  // namespace tiamat::apps::fractal
