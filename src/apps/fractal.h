// The fractal-generator application from §3.2: a Mandelbrot renderer whose
// load-balancing server was "removed and the data producers communicated
// with the entities performing the calculations through the space".
//
// Masters out one task tuple per row; anonymous workers take tasks, really
// compute the row (this is a genuine Mandelbrot implementation, not a stub),
// and out the result keyed by (job, row). "The number of entities performing
// calculations could be increased and decreased without perturbing the
// clients." E10 measures completion time vs worker count and mid-run churn;
// loadbalance.h is the directed-assignment baseline the space replaced.

#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "core/instance.h"
#include "tuple/value.h"

namespace tiamat::apps::fractal {

inline constexpr const char* kTaskTag = "frac:task";
inline constexpr const char* kResultTag = "frac:result";

struct Params {
  int width = 64;
  int height = 64;
  int max_iter = 64;
  double x0 = -2.0, x1 = 1.0;
  double y0 = -1.5, y1 = 1.5;
};

/// Actually computes one row of the escape-time Mandelbrot set.
std::vector<std::uint16_t> compute_row(const Params& p, int row);

/// Serialises a row of iteration counts into a tuple blob and back.
tuples::Blob pack_row(const std::vector<std::uint16_t>& row);
std::vector<std::uint16_t> unpack_row(const tuples::Blob& b);

/// The master: slices the image into row tasks, collects results.
class Master {
 public:
  Master(core::Instance& instance, Params params, std::uint64_t job_id);

  /// Outs every task tuple and blocks (logically) on results. `done` fires
  /// when the full image is assembled. `task_ttl` leases the task tuples.
  void start(std::function<void()> done,
             transport::Duration task_ttl = transport::seconds(120));

  std::size_t rows_done() const { return rows_done_; }

  /// If no result arrives for this long, the master re-outs task tuples
  /// for every missing row — the bag-of-tasks answer to a worker that took
  /// a task and then vanished. (Duplicate results are ignored.)
  transport::Duration reissue_interval = transport::seconds(5);
  std::uint64_t reissues() const { return reissues_; }
  bool complete() const { return rows_done_ == static_cast<std::size_t>(params_.height); }
  const std::vector<std::vector<std::uint16_t>>& image() const {
    return image_;
  }
  transport::Duration elapsed() const { return finished_at_ - started_at_; }
  const Params& params() const { return params_; }

 private:
  void collect_one();

  core::Instance& instance_;
  Params params_;
  std::uint64_t job_;
  std::vector<std::vector<std::uint16_t>> image_;
  std::size_t rows_done_ = 0;
  std::uint64_t reissues_ = 0;
  transport::Time started_at_ = 0;
  transport::Time finished_at_ = 0;
  transport::Duration result_ttl_ = transport::seconds(120);
  std::function<void()> done_;

  void out_task(int row, transport::Duration ttl);
};

/// An anonymous worker: takes any task tuple, computes, produces a result.
class Worker {
 public:
  struct Stats {
    std::uint64_t rows_computed = 0;
  };

  /// `row_cost` is the simulated wall time one row takes on this device —
  /// heterogeneous hardware is modelled by varying it per worker.
  Worker(core::Instance& instance,
         transport::Duration row_cost = transport::milliseconds(20))
      : instance_(instance), row_cost_(row_cost) {}
  ~Worker();

  void start();
  void stop() { running_ = false; }
  bool running() const { return running_; }

  const Stats& stats() const { return stats_; }

 private:
  void await_task();

  core::Instance& instance_;
  transport::Duration row_cost_;
  bool running_ = false;
  std::set<transport::EventId> pending_;
  Stats stats_;
};

}  // namespace tiamat::apps::fractal
