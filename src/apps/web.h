// The web client / proxy-server application from §3.2, rebuilt over the
// Tiamat public API.
//
// "Clients place their identified requests into the space as tuples. The
// client then performs a blocking operation attempting to retrieve a
// response tuple with the same identifying information. Proxy servers
// perform blocking operations awaiting requests. When a request is placed
// into the space it is removed and given to a proxy server, which obtains
// the relevant pages, wraps them up in a tuple along with the original
// identifying information. The proxy server then places this tuple back
// into the space allowing it to be retrieved by the client."
//
// The benefits the paper lists — proxies added/removed invisibly (load
// balancing and failover), and clients that keep issuing requests while
// disconnected — are exercised by E9 and examples/web_proxy.cpp.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "core/instance.h"
#include "sim/stats.h"

namespace tiamat::apps::web {

inline constexpr const char* kReqTag = "web:req";
inline constexpr const char* kRespTag = "web:resp";

/// The "rest of the web": a content universe proxies fetch from, with a
/// modelled fetch latency. Stands in for the third-party origin servers of
/// the paper's setup.
class OriginServer {
 public:
  explicit OriginServer(transport::TimerService& queue,
                        transport::Duration fetch_latency = transport::milliseconds(30))
      : queue_(queue), fetch_latency_(fetch_latency) {}

  void add_page(std::string url, std::string body) {
    pages_[std::move(url)] = std::move(body);
  }

  /// Fetches a page with simulated latency; nullopt for a 404.
  void fetch(const std::string& url,
             std::function<void(std::optional<std::string>)> cb) {
    ++fetches_;
    queue_.schedule_after(fetch_latency_, [this, url, cb = std::move(cb)] {
      auto it = pages_.find(url);
      if (it == pages_.end()) {
        cb(std::nullopt);
      } else {
        cb(it->second);
      }
    });
  }

  std::uint64_t fetches() const { return fetches_; }

 private:
  transport::TimerService& queue_;
  transport::Duration fetch_latency_;
  std::map<std::string, std::string> pages_;
  std::uint64_t fetches_ = 0;
};

/// A web client: unmodified "browser" logic glued to the space.
class WebClient {
 public:
  struct Stats {
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;  ///< lease expired before a response arrived
    sim::Summary latency;
  };

  explicit WebClient(core::Instance& instance) : instance_(instance) {}

  /// GETs a url through the space. `cb` receives the body (nullopt on
  /// 404/timeout). `patience` bounds how long the client waits — this is
  /// the lease it requests for the blocking retrieval.
  void get(const std::string& url,
           std::function<void(std::optional<std::string>)> cb,
           transport::Duration patience = transport::seconds(10));

  core::Instance& instance() { return instance_; }
  const Stats& stats() const { return stats_; }

 private:
  std::uint64_t request_id();

  core::Instance& instance_;
  std::uint64_t next_req_ = 1;
  Stats stats_;
};

/// A proxy server: loops on the space taking requests and producing
/// responses. Entirely anonymous to clients.
class ProxyServer {
 public:
  struct Stats {
    std::uint64_t served = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t not_found = 0;
  };

  ProxyServer(core::Instance& instance, OriginServer& origin,
              bool enable_cache = true)
      : instance_(instance), origin_(origin), cache_enabled_(enable_cache) {}

  /// Starts the in(request) -> fetch -> out(response) loop.
  void start();
  void stop() { running_ = false; }
  bool running() const { return running_; }

  /// How many requests this proxy handles concurrently (its "thread pool").
  /// The default single-threaded proxy is what makes adding proxies pay off.
  std::size_t max_concurrent = 1;

  core::Instance& instance() { return instance_; }
  const Stats& stats() const { return stats_; }

 private:
  void await_request();
  void serve(std::uint64_t req_id, const std::string& url,
             const core::ReadResult& request);

  core::Instance& instance_;
  OriginServer& origin_;
  bool cache_enabled_;
  bool running_ = false;
  std::size_t in_flight_ = 0;
  std::map<std::string, std::string> cache_;
  Stats stats_;
};

}  // namespace tiamat::apps::web
