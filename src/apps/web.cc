#include "apps/web.h"

namespace tiamat::apps::web {

using core::ReadResult;
using lease::FlexibleRequester;
using lease::LeaseTerms;
using tuples::any_int;
using tuples::any_string;
using tuples::Pattern;
using tuples::Tuple;

std::uint64_t WebClient::request_id() {
  // Unique across clients: node id in the high bits.
  return (static_cast<std::uint64_t>(instance_.node()) << 32) | next_req_++;
}

void WebClient::get(const std::string& url,
                    std::function<void(std::optional<std::string>)> cb,
                    transport::Duration patience) {
  ++stats_.issued;
  const std::uint64_t id = request_id();
  const transport::Time started = instance_.now();

  // The request tuple lives as long as the client is willing to wait; a
  // proxy that appears within that window can still serve it (§3.2's
  // disconnected-client benefit).
  LeaseTerms store;
  store.ttl = patience;
  instance_.out(Tuple{kReqTag, static_cast<std::int64_t>(id), url},
                FlexibleRequester{store});

  LeaseTerms wait;
  wait.ttl = patience;
  Pattern resp{kRespTag, static_cast<std::int64_t>(id), any_string()};
  bool started_op = instance_.in(
      resp,
      [this, cb = std::move(cb), started](std::optional<ReadResult> r) {
        if (r) {
          const std::string& body = r->tuple[2].as_string();
          if (body.empty()) {
            ++stats_.failed;  // proxy reported 404
            cb(std::nullopt);
          } else {
            ++stats_.completed;
            stats_.latency.add(
                static_cast<double>(instance_.now() - started));
            cb(body);
          }
        } else {
          ++stats_.failed;
          cb(std::nullopt);
        }
      },
      FlexibleRequester{wait});
  if (!started_op) {
    ++stats_.failed;
  }
}

void ProxyServer::start() {
  if (running_) return;
  running_ = true;
  await_request();
}

void ProxyServer::await_request() {
  if (!running_ || in_flight_ >= max_concurrent) return;
  ++in_flight_;
  LeaseTerms wait;
  wait.ttl = transport::seconds(30);  // renewed each loop iteration
  Pattern req{kReqTag, any_int(), any_string()};
  instance_.in(
      req,
      [this](std::optional<ReadResult> r) {
        --in_flight_;
        if (!running_) {
          // Stopped while blocked; if we consumed a request, put it back
          // for another proxy.
          if (r) {
            instance_.out(r->tuple);
          }
          return;
        }
        if (r) {
          const auto id = static_cast<std::uint64_t>(r->tuple[1].as_int());
          serve(id, r->tuple[2].as_string(), *r);
        } else {
          await_request();  // lease expiry: just re-arm
        }
      },
      FlexibleRequester{wait});
}

void ProxyServer::serve(std::uint64_t req_id, const std::string& url,
                        const ReadResult& request) {
  auto respond = [this, req_id, request](const std::string& body) {
    Tuple resp{kRespTag, static_cast<std::int64_t>(req_id), body};
    // This worker slot is free again only once the response is produced.
    // Place the response back into the space. Putting it at the
    // *requester's* space (out-to-origin, §2.4) means the client can read
    // it even if this proxy departs right afterwards; if the client is
    // briefly unreachable the tuple is routed when it reappears.
    core::Status s = instance_.out_to_origin(request, resp,
                                             core::UnavailablePolicy::kRoute);
    if (s == core::Status::kUnavailable) {
      instance_.out(std::move(resp));  // fall back to our own space
    }
    await_request();
  };

  if (cache_enabled_) {
    auto it = cache_.find(url);
    if (it != cache_.end()) {
      ++stats_.served;
      ++stats_.cache_hits;
      respond(it->second);
      return;
    }
  }
  origin_.fetch(url, [this, url, respond](std::optional<std::string> body) {
    ++stats_.served;
    if (!body) {
      ++stats_.not_found;
      respond("");  // empty body = 404 marker
      return;
    }
    if (cache_enabled_) cache_[url] = *body;
    respond(*body);
  });
}

}  // namespace tiamat::apps::web
