#include "apps/loadbalance.h"

#include <algorithm>

namespace tiamat::apps::loadbalance {

using fractal::compute_row;
using fractal::pack_row;
using fractal::Params;

// ---- Server ------------------------------------------------------------------

LoadBalancingServer::LoadBalancingServer(transport::Transport& net, transport::NodeOptions pos)
    : net_(net), endpoint_(net, net.add_node(pos)),
      timers_(net.timers(endpoint_.node())) {
  auto handler = [this](transport::NodeId from, const net::Message& m) {
    handle(from, m);
  };
  for (std::uint16_t t : {kLbRegister, kLbResult, kLbSubmit}) {
    endpoint_.on(t, handler);
  }
}

void LoadBalancingServer::handle(transport::NodeId from, const net::Message& m) {
  switch (m.type) {
    case kLbRegister: {
      if (std::find(workers_.begin(), workers_.end(), from) ==
          workers_.end()) {
        workers_.push_back(from);
      }
      pump();
      return;
    }
    case kLbSubmit: {
      Task t;
      t.id = next_task_++;
      t.payload = m;
      t.master = from;
      queue_.push_back(t.id);
      tasks_.emplace(t.id, std::move(t));
      pump();
      return;
    }
    case kLbResult: {
      // header 0 = server task id; the rest is forwarded to the master.
      if (m.headers.empty()) return;
      const auto task_id = static_cast<std::uint64_t>(m.hint(0));
      auto it = tasks_.find(task_id);
      if (it == tasks_.end()) return;  // duplicate after reassignment
      if (it->second.timeout != transport::kInvalidEvent) {
        timers_.cancel(it->second.timeout);
      }
      net::Message deliver = m;
      deliver.type = kLbDeliver;
      ++stats_.results_forwarded;
      endpoint_.send(it->second.master, deliver);
      tasks_.erase(it);
      return;
    }
    default:
      return;
  }
}

void LoadBalancingServer::pump() {
  while (!queue_.empty() && !workers_.empty()) {
    std::uint64_t id = queue_.front();
    queue_.pop_front();
    assign(id);
  }
}

void LoadBalancingServer::assign(std::uint64_t task_id) {
  auto it = tasks_.find(task_id);
  if (it == tasks_.end() || workers_.empty()) return;
  Task& t = it->second;
  transport::NodeId worker = workers_[next_worker_ % workers_.size()];
  ++next_worker_;
  t.assigned_to = worker;
  ++stats_.tasks_assigned;

  net::Message task = t.payload;
  task.type = kLbTask;
  task.op_id = task_id;
  endpoint_.send(worker, task);

  // Hand-rolled failover: if the worker never answers, drop it and retry.
  t.timeout = timers_.schedule_after(task_timeout, [this, task_id] {
    auto it2 = tasks_.find(task_id);
    if (it2 == tasks_.end()) return;
    ++stats_.reassignments;
    workers_.erase(std::remove(workers_.begin(), workers_.end(),
                               it2->second.assigned_to),
                   workers_.end());
    it2->second.assigned_to = transport::kNoNode;
    it2->second.timeout = transport::kInvalidEvent;
    queue_.push_back(task_id);
    pump();
  });
}

// ---- Worker ------------------------------------------------------------------

LbWorker::LbWorker(transport::Transport& net, transport::NodeId server,
                   transport::Duration row_cost, transport::NodeOptions pos)
    : net_(net),
      endpoint_(net, net.add_node(pos)),
      timers_(net.timers(endpoint_.node())),
      server_(server),
      row_cost_(row_cost) {
  endpoint_.on(kLbTask, [this](transport::NodeId from, const net::Message& m) {
    handle(from, m);
  });
}

LbWorker::~LbWorker() {
  for (transport::EventId ev : pending_) timers_.cancel(ev);
}

void LbWorker::start() {
  running_ = true;
  net::Message reg;
  reg.type = kLbRegister;
  reg.origin = node();
  endpoint_.send(server_, reg);
}

void LbWorker::handle(transport::NodeId, const net::Message& m) {
  if (!running_ || m.headers.size() < 9) return;
  if (busy_) {
    backlog_.push_back(m);  // one CPU: queue behind the current row
    return;
  }
  work_on(m);
}

void LbWorker::next_from_backlog() {
  if (backlog_.empty() || !running_) return;
  net::Message m = std::move(backlog_.front());
  backlog_.pop_front();
  work_on(m);
}

void LbWorker::work_on(const net::Message& m) {
  busy_ = true;
  Params p;
  const auto job = m.hint(0);
  const int row = static_cast<int>(m.hint(1));
  p.width = static_cast<int>(m.hint(2));
  p.height = static_cast<int>(m.hint(3));
  p.max_iter = static_cast<int>(m.hint(4));
  p.x0 = m.hdouble(5);
  p.x1 = m.hdouble(6);
  p.y0 = m.hdouble(7);
  p.y1 = m.hdouble(8);
  const std::uint64_t task_id = m.op_id;
  auto ev = std::make_shared<transport::EventId>(transport::kInvalidEvent);
  *ev = timers_.schedule_after(row_cost_, [this, p, job, row, task_id,
                                                ev] {
    pending_.erase(*ev);
    if (!running_) return;
    auto pixels = compute_row(p, row);
    ++rows_computed_;
    net::Message res;
    res.type = kLbResult;
    res.origin = node();
    res.h(static_cast<std::int64_t>(task_id));
    res.h(job);
    res.h(row);
    res.tuple = tuples::Tuple{tuples::Value(pack_row(pixels))};
    endpoint_.send(server_, res);
    busy_ = false;
    next_from_backlog();
  });
  pending_.insert(*ev);
}

// ---- Master ---------------------------------------------------------------------

LbMaster::LbMaster(transport::Transport& net, transport::NodeId server,
                   fractal::Params params, std::uint64_t job,
                   transport::NodeOptions pos)
    : net_(net),
      endpoint_(net, net.add_node(pos)),
      timers_(net.timers(endpoint_.node())),
      server_(server),
      params_(params),
      job_(job) {
  image_.resize(static_cast<std::size_t>(params_.height));
  endpoint_.on(kLbDeliver, [this](transport::NodeId from, const net::Message& m) {
    handle(from, m);
  });
}

void LbMaster::start(std::function<void()> done) {
  done_ = std::move(done);
  started_at_ = net_.now();
  for (int row = 0; row < params_.height; ++row) {
    net::Message submit;
    submit.type = kLbSubmit;
    submit.origin = node();
    submit.h(static_cast<std::int64_t>(job_));
    submit.h(row);
    submit.h(params_.width);
    submit.h(params_.height);
    submit.h(params_.max_iter);
    submit.h(params_.x0);
    submit.h(params_.x1);
    submit.h(params_.y0);
    submit.h(params_.y1);
    endpoint_.send(server_, submit);
  }
}

void LbMaster::handle(transport::NodeId, const net::Message& m) {
  if (m.headers.size() < 3 || !m.tuple) return;
  const int row = static_cast<int>(m.hint(2));
  if (row < 0 || row >= params_.height) return;
  auto& slot = image_[static_cast<std::size_t>(row)];
  if (!slot.empty()) return;  // duplicate after reassignment
  slot = fractal::unpack_row((*m.tuple)[0].as_blob());
  ++rows_done_;
  if (complete()) {
    finished_at_ = net_.now();
    if (done_) done_();
  }
}

}  // namespace tiamat::apps::loadbalance
