// tiamat-fuzz: the seeded chaos/fuzz harness (DESIGN.md §12, ROADMAP item 5).
//
//   tiamat-fuzz --seed N [--runs R] [--max-events E] [--instances I]
//               [--profile mixed|calm|crashy|hostile|mobile]
//               [--out-dir DIR] [--no-shrink] [--inject-corruption]
//       Expands seeds N..N+R-1 into fault-schedule plans (chaos/plan.h),
//       executes each against a fresh simulated fleet and checks the
//       oracle bank continuously (chaos/oracles.h). On the first trap it
//       writes repro_<seed>.json, delta-debugs the plan down to a
//       near-minimal schedule (chaos/shrink.h), rewrites the artifact with
//       the minimized plan, and exits 1.
//
//   tiamat-fuzz --replay=FILE
//       Re-runs the plan embedded in a repro artifact and verifies the
//       same oracle trips with byte-identical flight-recorder tails and
//       the same run fingerprint (the determinism contract of
//       chaos/runner.h). Exits 0 iff the trap reproduces exactly.
//
// Every run is a pure function of its seed: same seed, same build flags ⇒
// same fingerprint, same trap, same artifact. kInjectCorruption events
// only trap under the audit preset (-DTIAMAT_AUDIT=ON); elsewhere the
// corruption hook is compiled out and the event is counted as skipped.

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "chaos/artifact.h"
#include "chaos/plan.h"
#include "chaos/runner.h"
#include "chaos/shrink.h"

namespace {

using namespace tiamat::chaos;

int usage() {
  std::cerr << "usage:\n"
               "  tiamat-fuzz --seed N [--runs R] [--max-events E]\n"
               "              [--instances I] [--profile P] [--out-dir DIR]\n"
               "              [--no-shrink] [--inject-corruption]\n"
               "  tiamat-fuzz --replay=FILE\n";
  return 2;
}

struct Args {
  std::uint64_t seed = 1;
  std::uint64_t runs = 1;
  Options options;
  std::string out_dir = ".";
  std::string replay;
  bool shrink = true;
};

std::optional<std::uint64_t> parse_u64(const std::string& s) {
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

std::optional<Args> parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&](const std::string& flag) -> std::optional<std::string> {
      if (a.rfind(flag + "=", 0) == 0) return a.substr(flag.size() + 1);
      if (a == flag && i + 1 < argc) return std::string(argv[++i]);
      return std::nullopt;
    };
    if (auto v = value("--seed")) {
      auto n = parse_u64(*v);
      if (!n) return std::nullopt;
      args.seed = *n;
    } else if (auto v = value("--runs")) {
      auto n = parse_u64(*v);
      if (!n || *n == 0) return std::nullopt;
      args.runs = *n;
    } else if (auto v = value("--max-events")) {
      auto n = parse_u64(*v);
      if (!n || *n == 0) return std::nullopt;
      args.options.max_events = static_cast<std::uint32_t>(*n);
    } else if (auto v = value("--instances")) {
      auto n = parse_u64(*v);
      if (!n) return std::nullopt;
      args.options.instances = static_cast<std::uint32_t>(*n);
    } else if (auto v = value("--profile")) {
      args.options.profile = *v;
    } else if (auto v = value("--out-dir")) {
      args.out_dir = *v;
    } else if (auto v = value("--replay")) {
      args.replay = *v;
    } else if (a == "--no-shrink") {
      args.shrink = false;
    } else if (a == "--inject-corruption") {
      args.options.inject_corruption = true;
    } else {
      return std::nullopt;
    }
  }
  return args;
}

void print_summary(std::uint64_t seed, const RunResult& r) {
  std::cout << "seed " << seed << ": events=" << r.executed
            << " ops=" << r.ops << " faults=" << r.faults
            << " callbacks=" << r.callbacks << " delivered=" << r.delivered
            << " tainted=" << r.tainted << " fingerprint=" << std::hex
            << r.fingerprint << std::dec
            << (r.ok() ? " OK" : " TRAP[" + r.trap->oracle + "]") << "\n";
}

int replay(const std::string& path) {
  auto artifact = Artifact::load(path);
  if (!artifact) {
    std::cerr << "tiamat-fuzz: cannot load artifact " << path << "\n";
    return 2;
  }
  const RunResult r = Runner(artifact->plan).run();
  print_summary(artifact->plan.seed, r);
  if (!r.trap) {
    std::cerr << "replay FAILED: no trap (artifact oracle "
              << artifact->oracle << ")\n";
    return 1;
  }
  if (r.trap->oracle != artifact->oracle) {
    std::cerr << "replay FAILED: oracle " << r.trap->oracle
              << " != artifact oracle " << artifact->oracle << "\n";
    return 1;
  }
  if (r.fingerprint != artifact->fingerprint) {
    std::cerr << "replay FAILED: fingerprint mismatch\n";
    return 1;
  }
  if (r.trap->flight_tails != artifact->flight_tails) {
    std::cerr << "replay FAILED: flight-recorder tails differ\n";
    return 1;
  }
  std::cout << "replay OK: " << artifact->oracle
            << " reproduced with identical fingerprint and tails\n";
  return 0;
}

int fuzz(const Args& args) {
  for (std::uint64_t r = 0; r < args.runs; ++r) {
    const std::uint64_t seed = args.seed + r;
    const Plan plan = generate_plan(seed, args.options);
    const RunResult result = Runner(plan).run();
    print_summary(seed, result);
    if (result.ok()) continue;

    Artifact artifact = Artifact::from_run(plan, result);
    const std::string path =
        args.out_dir + "/" + artifact_filename(seed);
    if (!artifact.save(path)) {
      std::cerr << "tiamat-fuzz: cannot write " << path << "\n";
      return 2;
    }
    std::cout << "trap: " << result.trap->oracle << " at event "
              << result.trap->event_index << " — wrote " << path << "\n";
    std::cout << result.trap->detail << "\n";

    if (args.shrink) {
      const ShrinkResult shrunk = shrink(plan, result.trap->oracle);
      if (shrunk.plan.events.size() < plan.events.size()) {
        const RunResult again = Runner(shrunk.plan).run();
        Artifact min_artifact = Artifact::from_run(shrunk.plan, again);
        min_artifact.minimized = shrunk.minimal;
        min_artifact.original_events = plan.events.size();
        if (min_artifact.save(path)) {
          std::cout << "shrunk " << plan.events.size() << " -> "
                    << shrunk.plan.events.size() << " events ("
                    << shrunk.runs << " runs"
                    << (shrunk.minimal ? ", 1-minimal" : ", budget hit")
                    << "); rewrote " << path << "\n";
        }
      }
    }
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = parse_args(argc, argv);
  if (!args) return usage();
  if (!args->replay.empty()) return replay(args->replay);
  return fuzz(*args);
}
