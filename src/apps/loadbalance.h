// The directed load-balancing architecture the fractal application used
// *before* its port to Tiamat (§3.2): a central server that workers
// register with and that assigns tasks round-robin. Everything the tuple
// space gives for free — anonymous workers, failover, queueing while no
// worker is available — must be hand-rolled here; E10 compares the two.

#pragma once

#include <cstdint>
#include <deque>
#include <set>
#include <functional>
#include <map>
#include <vector>

#include "apps/fractal.h"
#include "net/endpoint.h"

namespace tiamat::apps::loadbalance {

enum LbMsg : std::uint16_t {
  kLbRegister = 601,  ///< worker -> server
  kLbTask = 602,      ///< server -> worker
  kLbResult = 603,    ///< worker -> server
  kLbSubmit = 604,    ///< master -> server
  kLbDeliver = 605,   ///< server -> master
};

class LoadBalancingServer {
 public:
  struct Stats {
    std::uint64_t tasks_assigned = 0;
    std::uint64_t reassignments = 0;  ///< worker presumed dead
    std::uint64_t results_forwarded = 0;
  };

  explicit LoadBalancingServer(transport::Transport& net, transport::NodeOptions pos = {});

  transport::NodeId node() const { return endpoint_.node(); }
  std::size_t workers() const { return workers_.size(); }
  const Stats& stats() const { return stats_; }

  /// How long a worker may sit on a task before it is reassigned.
  transport::Duration task_timeout = transport::seconds(2);

 private:
  struct Task {
    std::uint64_t id;
    net::Message payload;       // the original kLbSubmit
    transport::NodeId master;
    transport::NodeId assigned_to = transport::kNoNode;
    transport::EventId timeout = transport::kInvalidEvent;
  };

  void handle(transport::NodeId from, const net::Message& m);
  void pump();
  void assign(std::uint64_t task_id);

  transport::Transport& net_;
  net::Endpoint endpoint_;
  transport::TimerService& timers_;  ///< this node's timer strand
  std::vector<transport::NodeId> workers_;
  std::size_t next_worker_ = 0;
  std::uint64_t next_task_ = 1;
  std::deque<std::uint64_t> queue_;       // unassigned task ids
  std::map<std::uint64_t, Task> tasks_;   // outstanding
  Stats stats_;
};

class LbWorker {
 public:
  LbWorker(transport::Transport& net, transport::NodeId server,
           transport::Duration row_cost = transport::milliseconds(20),
           transport::NodeOptions pos = {});
  ~LbWorker();

  transport::NodeId node() const { return endpoint_.node(); }
  void start();  ///< registers with the server
  void stop() { running_ = false; }

  std::uint64_t rows_computed() const { return rows_computed_; }

 private:
  void handle(transport::NodeId from, const net::Message& m);

  transport::Transport& net_;
  net::Endpoint endpoint_;
  transport::TimerService& timers_;  ///< this node's timer strand
  transport::NodeId server_;
  transport::Duration row_cost_;
  bool running_ = false;
  bool busy_ = false;  ///< one CPU: tasks are computed serially
  std::deque<net::Message> backlog_;
  std::uint64_t rows_computed_ = 0;
  std::set<transport::EventId> pending_;

  void work_on(const net::Message& m);
  void next_from_backlog();
};

class LbMaster {
 public:
  LbMaster(transport::Transport& net, transport::NodeId server, fractal::Params params,
           std::uint64_t job, transport::NodeOptions pos = {});

  transport::NodeId node() const { return endpoint_.node(); }
  void start(std::function<void()> done);

  std::size_t rows_done() const { return rows_done_; }
  bool complete() const {
    return rows_done_ == static_cast<std::size_t>(params_.height);
  }
  transport::Duration elapsed() const { return finished_at_ - started_at_; }
  const std::vector<std::vector<std::uint16_t>>& image() const {
    return image_;
  }

 private:
  void handle(transport::NodeId from, const net::Message& m);

  transport::Transport& net_;
  net::Endpoint endpoint_;
  transport::TimerService& timers_;  ///< this node's timer strand
  transport::NodeId server_;
  fractal::Params params_;
  std::uint64_t job_;
  std::vector<std::vector<std::uint16_t>> image_;
  std::size_t rows_done_ = 0;
  transport::Time started_at_ = 0;
  transport::Time finished_at_ = 0;
  std::function<void()> done_;
};

}  // namespace tiamat::apps::loadbalance
