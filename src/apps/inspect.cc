// tiamat-inspect: offline analysis of the observability artifacts the sim
// and benches emit.
//
//   tiamat-inspect report [--slowest N] TRACE.jsonl...
//       joins JSONL trace dumps (from `--trace` bench runs or JsonlSink
//       tests) into causal per-op timelines and prints the aggregate
//       report: outcomes, per-op-kind stage latency attribution, the
//       slowest operations, orphans.
//
//   tiamat-inspect chrome [-o OUT.json] TRACE.jsonl...
//       exports the joined timelines as a Chrome trace-event document
//       (open in Perfetto / chrome://tracing): one track per instance,
//       flow arrows for the cross-instance protocol edges.
//
//   tiamat-inspect bench BENCH_*.json...
//       prints a metrics snapshot: counters/gauges, histogram count, mean
//       and derived p50/p95/p99, quantile-sketch p50/p90/p99/max, and flags
//       instrument names missing from the checked-in catalog
//       (src/obs/metric_names.h).
//
//   tiamat-inspect series SERIES_*.json...
//       renders continuous-telemetry documents (bench `--series` runs, or
//       BENCH_*.json files with an embedded `series` section): per scenario
//       and source, every recorded series with point counts and
//       min/mean/max/last, plus the health probes and their breach counts.
//
//   tiamat-inspect sched BENCH.json...
//       the series view restricted to the transport scheduler telemetry
//       (the transport.sched.* families recorded by bench_loopback
//       --contention): per-worker queue depth, strand lag, utilization,
//       lock-wait and tombstone series.
//
// Everything prints deterministically (ordered joins, ordered registry),
// so output is diffable across same-seed runs.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <optional>
#include <string>
#include <vector>

#include "obs/analysis.h"
#include "obs/chrome_trace.h"
#include "obs/json.h"
#include "obs/metric_names.h"

namespace {

using tiamat::obs::TraceAnalysis;
using tiamat::obs::json::Value;

int usage() {
  std::cerr
      << "usage:\n"
         "  tiamat-inspect report [--slowest N] TRACE.jsonl...\n"
         "  tiamat-inspect chrome [-o OUT.json] TRACE.jsonl...\n"
         "  tiamat-inspect bench BENCH.json...\n"
         "  tiamat-inspect series SERIES.json...\n"
         "  tiamat-inspect sched BENCH.json...\n";
  return 2;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::in | std::ios::binary);
  if (!f.is_open()) return std::nullopt;
  return std::string((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
}

/// Loads every trace file (argv order = deterministic tie-break order).
bool load_traces(const std::vector<std::string>& paths, TraceAnalysis& a) {
  if (paths.empty()) {
    std::cerr << "no trace files given\n";
    return false;
  }
  for (const std::string& p : paths) {
    const auto text = read_file(p);
    if (!text) {
      std::cerr << "cannot read " << p << "\n";
      return false;
    }
    std::size_t rejected = 0;
    const std::size_t n = a.add_jsonl(*text, &rejected);
    std::cerr << p << ": " << n << " events";
    if (rejected != 0) std::cerr << " (" << rejected << " lines rejected)";
    std::cerr << "\n";
  }
  return true;
}

int cmd_report(const std::vector<std::string>& args) {
  std::size_t slowest = 5;
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--slowest" && i + 1 < args.size()) {
      slowest = static_cast<std::size_t>(std::stoul(args[++i]));
    } else {
      paths.push_back(args[i]);
    }
  }
  TraceAnalysis a;
  if (!load_traces(paths, a)) return 1;
  std::cout << a.report_text(slowest);
  return 0;
}

int cmd_chrome(const std::vector<std::string>& args) {
  std::string out_path;
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if ((args[i] == "-o" || args[i] == "--out") && i + 1 < args.size()) {
      out_path = args[++i];
    } else {
      paths.push_back(args[i]);
    }
  }
  TraceAnalysis a;
  if (!load_traces(paths, a)) return 1;
  const Value doc = tiamat::obs::to_chrome_trace(a.timelines());
  if (out_path.empty()) {
    std::cout << doc.dump(1) << "\n";
  } else {
    std::ofstream f(out_path, std::ios::out | std::ios::trunc);
    f << doc.dump(1) << "\n";
    if (!f.good()) {
      std::cerr << "failed to write " << out_path << "\n";
      return 1;
    }
    std::cerr << "chrome trace written to " << out_path << "\n";
  }
  return 0;
}

std::string labels_text(const Value& instrument) {
  const Value* labels = instrument.find("labels");
  if (labels == nullptr || !labels->is_object() ||
      labels->as_object().empty()) {
    return "";
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels->as_object()) {
    if (!first) out += ",";
    first = false;
    out += k + "=" + (v.is_string() ? v.as_string() : v.dump());
  }
  return out + "}";
}

/// Name check against the catalog; bench-side names carry the same
/// contract as src/ instrumentation.
void check_catalogued(const Value& instrument, std::size_t& unknown) {
  const Value* name = instrument.find("name");
  if (name == nullptr || !name->is_string()) return;
  if (!tiamat::obs::metric_names::catalogued(name->as_string())) {
    std::cout << "  !! uncatalogued metric name: " << name->as_string()
              << " (add it to src/obs/metric_names.h)\n";
    ++unknown;
  }
}

int cmd_bench(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::cerr << "no bench files given\n";
    return 1;
  }
  std::size_t unknown = 0;
  for (const std::string& p : args) {
    const auto text = read_file(p);
    if (!text) {
      std::cerr << "cannot read " << p << "\n";
      return 1;
    }
    const auto doc = Value::parse(*text);
    if (!doc) {
      std::cerr << p << " is not valid JSON\n";
      return 1;
    }
    const Value* bench = doc->find("bench");
    const Value* metrics = doc->find("metrics");
    std::cout << p << " (bench "
              << (bench != nullptr && bench->is_string() ? bench->as_string()
                                                         : "?")
              << ")\n";
    if (metrics == nullptr) {
      std::cerr << "  no metrics section\n";
      return 1;
    }
    if (const Value* counters = metrics->find("counters")) {
      std::cout << " counters:\n";
      for (const Value& c : counters->as_array()) {
        const Value* name = c.find("name");
        const Value* value = c.find("value");
        if (name == nullptr || value == nullptr) continue;
        std::cout << "  " << name->as_string() << labels_text(c) << " = "
                  << value->dump() << "\n";
        check_catalogued(c, unknown);
      }
    }
    if (const Value* gauges = metrics->find("gauges")) {
      std::cout << " gauges:\n";
      for (const Value& g : gauges->as_array()) {
        const Value* name = g.find("name");
        const Value* value = g.find("value");
        if (name == nullptr || value == nullptr) continue;
        std::cout << "  " << name->as_string() << labels_text(g) << " = "
                  << value->dump() << "\n";
        check_catalogued(g, unknown);
      }
    }
    if (const Value* sketches = metrics->find("sketches")) {
      std::cout << " sketches (count / mean / p50 / p90 / p99 / max):\n";
      for (const Value& s : sketches->as_array()) {
        const Value* name = s.find("name");
        if (name == nullptr) continue;
        auto num = [&](const char* key) {
          const Value* v = s.find(key);
          return v != nullptr && v->is_number() ? v->as_double() : 0.0;
        };
        std::cout << "  " << name->as_string() << labels_text(s) << "  "
                  << static_cast<std::int64_t>(num("count")) << " / "
                  << num("mean") << " / " << num("p50") << " / " << num("p90")
                  << " / " << num("p99") << " / " << num("max") << "\n";
        check_catalogued(s, unknown);
      }
    }
    if (const Value* hists = metrics->find("histograms")) {
      std::cout << " histograms (count / mean / p50 / p95 / p99):\n";
      for (const Value& h : hists->as_array()) {
        const Value* name = h.find("name");
        if (name == nullptr) continue;
        auto num = [&](const char* key) {
          const Value* v = h.find(key);
          return v != nullptr && v->is_number() ? v->as_double() : 0.0;
        };
        std::cout << "  " << name->as_string() << labels_text(h) << "  "
                  << static_cast<std::int64_t>(num("count")) << " / "
                  << num("mean") << " / " << num("p50") << " / " << num("p95")
                  << " / " << num("p99") << "\n";
        check_catalogued(h, unknown);
      }
    }
  }
  if (unknown != 0) {
    std::cout << unknown << " uncatalogued metric name(s)\n";
    return 1;
  }
  return 0;
}

/// Summary line for one recorded series: raw-point min/mean/max/last plus
/// the evicted history folded in from the rollup windows.
void print_series_line(const Value& s, const std::string& title) {
  double mn = 0, mx = 0, sum = 0, last = 0;
  std::uint64_t n = 0;
  auto fold = [&](double v) {
    if (n == 0) {
      mn = mx = v;
    } else {
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    sum += v;
    ++n;
  };
  if (const Value* rollups = s.find("rollups")) {
    for (const Value& r : rollups->as_array()) {
      const auto& e = r.as_array();  // [from, to, min, max, sum, n]
      if (e.size() != 6) continue;
      const auto rn = static_cast<std::uint64_t>(e[5].as_int());
      if (rn == 0) continue;
      mn = n == 0 ? e[2].as_double() : std::min(mn, e[2].as_double());
      mx = n == 0 ? e[3].as_double() : std::max(mx, e[3].as_double());
      sum += e[4].as_double();
      n += rn;
    }
  }
  if (const Value* points = s.find("points")) {
    for (const Value& p : points->as_array()) {
      const auto& pair = p.as_array();  // [tick index, value]
      if (pair.size() != 2) continue;
      last = pair[1].as_double();
      fold(last);
    }
  }
  std::cout << "  " << title << "  " << n << " pts";
  if (n != 0) {
    std::cout << "  min " << mn << "  mean " << (sum / static_cast<double>(n))
              << "  max " << mx << "  last " << last;
  }
  if (const Value* dropped = s.find("dropped")) {
    std::cout << "  (" << dropped->dump() << " rollup windows dropped)";
  }
  std::cout << "\n";
}

/// Shared renderer for `series` (prefix empty: everything) and `sched`
/// (prefix "transport.sched.": scheduler families only, probes omitted).
int cmd_series_impl(const std::vector<std::string>& args,
                    const std::string& name_prefix) {
  if (args.empty()) {
    std::cerr << "no series files given\n";
    return 1;
  }
  for (const std::string& p : args) {
    const auto text = read_file(p);
    if (!text) {
      std::cerr << "cannot read " << p << "\n";
      return 1;
    }
    const auto doc = Value::parse(*text);
    if (!doc) {
      std::cerr << p << " is not valid JSON\n";
      return 1;
    }
    const Value* series = doc->find("series");
    const Value* runs = series != nullptr ? series->find("runs") : nullptr;
    if (runs == nullptr || !runs->is_array()) {
      std::cerr << p << " has no series section (run the bench with "
                   "--series)\n";
      return 1;
    }
    const Value* bench = doc->find("bench");
    std::cout << p << " (bench "
              << (bench != nullptr && bench->is_string() ? bench->as_string()
                                                         : "?")
              << ", " << runs->as_array().size() << " runs)\n";
    for (const Value& run : runs->as_array()) {
      const Value* scenario = run.find("scenario");
      const Value* data = run.find("data");
      if (data == nullptr) continue;
      auto num = [&](const char* key) {
        const Value* v = data->find(key);
        return v != nullptr && v->is_number() ? v->as_int() : 0;
      };
      std::cout << " scenario "
                << (scenario != nullptr && scenario->is_string()
                        ? scenario->as_string()
                        : "?")
                << ": interval " << num("interval_us") << "us, "
                << num("samples") << " samples, " << num("breaches")
                << " breaches\n";
      const Value* sources = data->find("sources");
      if (sources == nullptr) continue;
      std::size_t matched = 0;
      for (const Value& src : sources->as_array()) {
        const Value* label = src.find("source");
        std::cout << " source "
                  << (label != nullptr && label->is_string()
                          ? label->as_string()
                          : "?")
                  << ":\n";
        if (const Value* list = src.find("series")) {
          for (const Value& s : list->as_array()) {
            const Value* kind = s.find("kind");
            const Value* name = s.find("name");
            if (kind == nullptr || name == nullptr) continue;
            if (!name_prefix.empty() &&
                name->as_string().rfind(name_prefix, 0) != 0) {
              continue;
            }
            ++matched;
            print_series_line(
                s, kind->as_string() + " " + name->as_string() +
                       labels_text(s));
          }
        }
        if (!name_prefix.empty()) continue;  // sched view: no probes
        if (const Value* probes = src.find("probes")) {
          for (const Value& pr : probes->as_array()) {
            const Value* name = pr.find("name");
            const Value* threshold = pr.find("threshold");
            const Value* breaches = pr.find("breaches");
            if (name == nullptr) continue;
            print_series_line(
                pr, "probe " + name->as_string() + " (threshold " +
                        (threshold != nullptr ? threshold->dump() : "?") +
                        ", breaches " +
                        (breaches != nullptr ? breaches->dump() : "0") + ")");
          }
        }
      }
      if (!name_prefix.empty() && matched == 0) {
        std::cout << "  (no " << name_prefix
                  << "* series in this run; record with bench_loopback "
                     "--series --contention)\n";
      }
    }
  }
  return 0;
}

int cmd_series(const std::vector<std::string>& args) {
  return cmd_series_impl(args, "");
}

int cmd_sched(const std::vector<std::string>& args) {
  return cmd_series_impl(args, "transport.sched.");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (cmd == "report") return cmd_report(args);
  if (cmd == "chrome") return cmd_chrome(args);
  if (cmd == "bench") return cmd_bench(args);
  if (cmd == "series") return cmd_series(args);
  if (cmd == "sched") return cmd_sched(args);
  return usage();
}
