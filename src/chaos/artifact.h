// Repro artifacts: the self-contained JSON files (`repro_<seed>.json`) the
// fuzz harness writes when an oracle trips. An artifact carries everything
// a later `tiamat-fuzz --replay=<file>` needs to reproduce the trap with no
// other state: the full materialised plan, the violated oracle, the run
// fingerprint and the flight-recorder tails captured at the violation.
// Replay re-runs the embedded plan and compares all three — the tails must
// match byte-for-byte (the determinism contract of chaos/runner.h).

#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "chaos/plan.h"
#include "chaos/runner.h"
#include "obs/json.h"

namespace tiamat::chaos {

struct Artifact {
  static constexpr std::int64_t kVersion = 1;

  Plan plan;                   ///< minimized plan (or original if not shrunk)
  std::string oracle;          ///< Trap::oracle
  std::string detail;
  std::uint64_t at = 0;        ///< Trap::at (virtual ticks)
  std::uint64_t event_index = 0;
  std::uint64_t fingerprint = 0;
  std::string flight_tails;    ///< byte-compare target for --replay
  bool minimized = false;
  std::uint64_t original_events = 0;  ///< plan size before shrinking

  /// Builds an artifact from a trapped run.
  static Artifact from_run(const Plan& plan, const RunResult& result);

  obs::json::Value to_json() const;
  static std::optional<Artifact> from_json(const obs::json::Value& v);

  /// Writes the artifact as indented JSON. Returns false on I/O failure.
  bool save(const std::string& path) const;
  static std::optional<Artifact> load(const std::string& path);
};

/// Canonical artifact name for a seed: "repro_<seed>.json".
std::string artifact_filename(std::uint64_t seed);

}  // namespace tiamat::chaos
