// The chaos runner: executes one Plan against a fresh simulated fleet and
// reports the first oracle violation (if any) plus a run fingerprint.
//
// A run is hermetic: it owns its EventQueue, Network, SimTransport and
// Instances, schedules every plan event up-front at its virtual time, runs
// the horizon, then heals the world and drains until every lease and hold
// timer has fired. The oracle bank (chaos/oracles.h) is consulted
// continuously — per-op callback accounting, a sampled keyed-vs-linear
// differential, the compile-gated audit checkpoints — and once more in full
// at quiescence. The first violation becomes the Trap; everything after it
// still executes (so fingerprints stay comparable) but cannot re-trap.
//
// Determinism contract (P4): Runner(plan).run() is a pure function of the
// plan. Same plan ⇒ identical fingerprint, identical trap, byte-identical
// flight-recorder tails. This is what makes repro artifacts replayable and
// delta-debugging sound.

#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "chaos/plan.h"
#include "obs/json.h"

namespace tiamat::chaos {

/// The first oracle violation of a run.
struct Trap {
  std::string oracle;        ///< Finding::oracle, or "audit"
  std::string detail;
  std::uint64_t at = 0;      ///< virtual time (ticks) of the violation
  std::size_t event_index = 0;  ///< plan event in flight when it tripped
  /// obs::FlightRecorder::dump_all() captured at the violation — the
  /// last-K cross-instance history replay runs must reproduce byte-for-byte.
  std::string flight_tails;
};

struct RunResult {
  std::optional<Trap> trap;
  std::uint64_t fingerprint = 0;  ///< FNV-1a over the observable run
  std::uint64_t executed = 0;     ///< plan events that ran
  std::uint64_t faults = 0;       ///< fault-schedule events applied
  std::uint64_t ops = 0;          ///< op-stream events issued
  std::uint64_t skipped = 0;      ///< events with no live target / no hook
  std::uint64_t callbacks = 0;    ///< op callbacks observed
  std::uint64_t delivered = 0;    ///< callbacks carrying a tuple
  std::uint64_t empty = 0;        ///< callbacks reporting no match
  /// Destructive deliveries excluded from the exactly-once ledger because
  /// a connectivity fault overlapped their confirm window (the protocol
  /// only promises best-effort there; see runner.cc's taint rules).
  std::uint64_t tainted = 0;
  obs::json::Value metrics;       ///< chaos.* + net.drops.* registry snapshot

  bool ok() const { return !trap.has_value(); }
};

class Runner {
 public:
  explicit Runner(Plan plan) : plan_(std::move(plan)) {}

  const Plan& plan() const { return plan_; }

  /// Executes the plan once. Safe to call repeatedly (each call builds a
  /// fresh world); calls are independent and deterministic.
  RunResult run();

 private:
  Plan plan_;
};

}  // namespace tiamat::chaos
