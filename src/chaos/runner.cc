#include "chaos/runner.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "audit/audit.h"
#include "chaos/oracles.h"
#include "core/instance.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/clock.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "sim/random.h"
#include "space/eval.h"
#include "space/handle.h"
#include "transport/sim_transport.h"
#include "tuple/pattern.h"

namespace tiamat::chaos {
namespace {

// Exactly-once is only claimable while both ends of a destructive take stay
// connected through the confirm exchange: the originator delivers on the
// first response, then retries Confirm 6 × response_timeout (≈360ms) while
// the server parks the tuple for tentative_hold (750ms) before auto-
// releasing it. A partition, loss burst, offline window or crash that
// overlaps that exchange makes redelivery protocol-legal, so deliveries in
// a fault's shadow are counted (RunResult::tainted) but not ledgered.
constexpr transport::Duration kConfirmShadow = sim::milliseconds(1000);

// Keyed-vs-linear differential cadence (every Nth op-stream event).
constexpr std::uint64_t kDifferentialPeriod = 16;

// purge_recent sentinel: the fault affects every slot.
constexpr std::size_t kAllSlots = static_cast<std::size_t>(-1);

std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

core::Config fleet_config(std::size_t slot) {
  core::Config cfg;
  cfg.name = "f" + std::to_string(slot);
  cfg.lease_caps.default_ttl = sim::seconds(5);
  cfg.lease_caps.max_ttl = sim::seconds(10);
  cfg.lease_caps.default_contacts = 16;
  cfg.lease_caps.max_contacts = 32;
  return cfg;
}

struct Execution {
  const Plan& plan;
  const std::size_t fleet;
  const bool mobile;

  RunResult result;
  std::uint64_t fp = 1469598103934665603ull;  // FNV-1a offset basis

  sim::EventQueue queue;
  sim::Rng rng;
  sim::LinkModel base_model;
  sim::Network net;
  transport::SimTransport tx;
  obs::Registry registry;
  obs::FlightRecorder chaos_flight;  // fault-injection trail (kNoNode ring)

  // Restores the default (abort-on-trap) handler after the fleet is gone;
  // declared before `slots` so it outlives Instance teardown, where a
  // corrupted space may still hit audit checkpoints.
  struct HandlerGuard {
    ~HandlerGuard() { audit::set_failure_handler(nullptr); }
  } handler_guard;

  struct Slot {
    std::unique_ptr<core::Instance> inst;
    std::uint32_t incarnation = 0;
    /// Ledgered seqs delivered to the current incarnation — unwound if it
    /// crashes (redelivery after taker death is legitimate).
    std::vector<std::int64_t> held;
    bool offline = false;
    transport::Time shadow_until = 0;  ///< post-online confirm grace
  };
  std::vector<Slot> slots;
  std::map<transport::NodeId, std::size_t> node_to_slot;

  struct OpRec {
    std::size_t event_index = 0;
    std::uint32_t slot = 0;
    std::uint32_t incarnation = 0;
    bool destructive = false;
    bool granted = false;
    std::uint32_t callbacks = 0;
  };
  std::vector<OpRec> op_log;

  struct RecentTake {
    std::int64_t seq = 0;
    transport::Time at = 0;
    std::size_t taker_slot = 0;
    std::size_t source_slot = 0;
  };
  std::vector<RecentTake> recent_takes;  ///< remote takes, confirm window

  std::multiset<std::int64_t> taken;  ///< P1 ledger
  /// Per-seq delivery context, appended to exactly-once trap details.
  std::map<std::int64_t, std::vector<std::string>> delivery_log;
  std::vector<tuples::Pattern> probes;

  std::size_t current_event = 0;
  std::uint32_t burst_depth = 0;
  std::uint32_t partitions_active = 0;
  transport::Time global_shadow_until = 0;

  explicit Execution(const Plan& p)
      : plan(p),
        fleet(std::clamp<std::size_t>(p.options.instances, 2, 32)),
        mobile(p.options.profile == "mobile"),
        rng(p.seed),
        base_model{sim::milliseconds(2), 100, 300, 0.0},
        net(queue, rng, base_model),
        tx(net),
        chaos_flight(transport::kNoNode) {
    if (mobile) net.set_radio_range(120.0);
    audit::set_failure_handler(
        [this](const std::string& report) { on_trap("audit", report); });
    slots.resize(fleet);
    for (std::size_t i = 0; i < fleet; ++i) boot(i);
    build_probes();
  }

  void boot(std::size_t i) {
    transport::NodeOptions pos;
    if (mobile) {
      pos.x = static_cast<double>(i % 6) * 30.0;
      pos.y = static_cast<double>(i / 6) * 30.0;
    }
    slots[i].inst = std::make_unique<core::Instance>(tx, fleet_config(i),
                                                     nullptr, pos);
    // Thread-ring collection on the sim backend degenerates to one ring per
    // tracer (every strand runs on this thread), which makes the
    // trace-conservation oracle's final-drain equation exact per run.
    slots[i].inst->tracer().set_enabled(true);
    slots[i].inst->tracer().set_thread_rings(true);
    slots[i].offline = false;
    node_to_slot[slots[i].inst->node()] = i;
  }

  // The fixed differential probe set: the Zipf head keys, one adversarial
  // int key from the hostile collision family, an unkeyed scan and the
  // zero-arity probe.
  void build_probes() {
    const std::uint32_t keys = std::min<std::uint32_t>(4, plan.options.key_universe);
    for (std::uint32_t k = 0; k < keys; ++k) {
      probes.push_back(tuples::Pattern{
          tuples::Field("key" + std::to_string(k)), tuples::any_int()});
    }
    probes.push_back(tuples::Pattern{
        tuples::Field(std::int64_t{(0 << 16) | 0x5}), tuples::any_int()});
    probes.push_back(tuples::Pattern{tuples::any_string(), tuples::any_int()});
    probes.push_back(tuples::Pattern{});
  }

  void mix(std::uint64_t v) { fp = fnv1a_mix(fp, v); }
  void mix_str(const std::string& s) {
    for (const char c : s) fp = fnv1a_mix(fp, static_cast<std::uint8_t>(c));
  }

  void on_trap(const std::string& oracle, const std::string& detail) {
    if (result.trap) return;  // first violation wins; later ones are echoes
    Trap t;
    t.oracle = oracle;
    t.detail = detail;
    t.at = static_cast<std::uint64_t>(queue.now());
    t.event_index = current_event;
    t.flight_tails = obs::FlightRecorder::dump_all();
    result.trap = std::move(t);
  }

  void record_fault(std::size_t idx, const Event& ev,
                    transport::NodeId target) {
    chaos_flight.record(obs::TraceEvent{
        queue.now(), transport::kNoNode, transport::kNoNode,
        static_cast<std::uint64_t>(idx), obs::EventKind::kFaultInjected,
        target, static_cast<std::int64_t>(ev.kind)});
  }

  bool slot_shadowed(std::size_t i) const {
    return slots[i].offline || queue.now() < slots[i].shadow_until;
  }

  /// A connectivity fault just started: deliveries whose confirm exchange
  /// may still be in flight lose their exactly-once claim. `only_slot`
  /// restricts the purge to takes touching one endpoint (offline faults);
  /// npos purges every recent take (partitions, loss bursts).
  void purge_recent(std::size_t only_slot) {
    const transport::Time floor =
        queue.now() > kConfirmShadow ? queue.now() - kConfirmShadow : 0;
    auto it = recent_takes.begin();
    while (it != recent_takes.end()) {
      if (it->at < floor) {
        it = recent_takes.erase(it);
        continue;
      }
      const bool touched = only_slot == kAllSlots ||
                           it->taker_slot == only_slot ||
                           it->source_slot == only_slot;
      if (!touched) {
        ++it;
        continue;
      }
      if (auto l = taken.find(it->seq); l != taken.end()) taken.erase(l);
      auto& held = slots[it->taker_slot].held;
      if (auto h = std::find(held.begin(), held.end(), it->seq);
          h != held.end()) {
        held.erase(h);
      }
      ++result.tainted;
      it = recent_takes.erase(it);
    }
  }

  void on_callback(std::size_t op_index,
                   std::optional<core::ReadResult> r) {
    OpRec& rec = op_log[op_index];
    ++rec.callbacks;
    ++result.callbacks;
    if (rec.callbacks > 1) {
      on_trap("termination", "op at event " + std::to_string(rec.event_index) +
                                 " called back " +
                                 std::to_string(rec.callbacks) + " times");
      return;
    }
    mix(r ? 0xCBull : 0xEEull);
    mix(rec.event_index);
    if (!r) {
      ++result.empty;
      return;
    }
    ++result.delivered;
    if (!rec.destructive || r->tuple.arity() < 2 || !r->tuple[1].is_int() ||
        r->tuple[0].is_blob() || space::is_handle_tuple(r->tuple)) {
      // Not a ledgered shape: reads, zero-arity, the audit marker, or a
      // space-handle advertisement. Handle tuples live in every instance's
      // space from boot, so a catch-all {string,int,*,*} take can consume
      // one per node — and its field[1] is the node id, which would collide
      // with the plan's sequence numbers in the exactly-once ledger.
      return;
    }
    const std::int64_t seq = r->tuple[1].as_int();
    mix(static_cast<std::uint64_t>(seq));
    Slot& taker = slots[rec.slot];
    if (!taker.inst || taker.incarnation != rec.incarnation) return;
    const bool local = r->source == taker.inst->node();
    if (!local) {
      // Remote take: exactly-once holds only if no connectivity fault
      // shadows the confirm exchange, on either endpoint.
      const auto src = node_to_slot.find(r->source);
      const std::size_t source_slot =
          src == node_to_slot.end() ? rec.slot : src->second;
      if (queue.now() < global_shadow_until || partitions_active > 0 ||
          src == node_to_slot.end() || slot_shadowed(rec.slot) ||
          slot_shadowed(source_slot)) {
        ++result.tainted;
        return;
      }
      recent_takes.push_back(
          RecentTake{seq, queue.now(), rec.slot, source_slot});
    }
    taken.insert(seq);
    taker.held.push_back(seq);
    delivery_log[seq].push_back(
        "op event " + std::to_string(rec.event_index) + " on slot " +
        std::to_string(rec.slot) + " from node " + std::to_string(r->source) +
        (local ? " (local)" : "") + " at t=" + std::to_string(queue.now()));
  }

  void run_op(std::size_t idx, const Event& ev, std::size_t s) {
    core::Instance& inst = *slots[s].inst;
    ++result.ops;
    switch (ev.kind) {
      case EventKind::kOut:
        mix(static_cast<std::uint64_t>(inst.out(ev.tuple)));
        break;
      case EventKind::kEval: {
        space::ActiveTuple at;
        const auto cost = sim::milliseconds(std::max<std::int64_t>(ev.arg, 1));
        for (std::size_t f = 0; f < ev.tuple.arity(); ++f) {
          const tuples::Value v = ev.tuple[f];
          if (f == 0) {
            at.add(v);
          } else {
            at.add([v] { return v; }, cost);
          }
        }
        mix(static_cast<std::uint64_t>(inst.eval(std::move(at))));
        break;
      }
      default: {
        const bool destructive =
            ev.kind == EventKind::kTake || ev.kind == EventKind::kTakeNb;
        op_log.push_back(OpRec{idx, static_cast<std::uint32_t>(s),
                               slots[s].incarnation, destructive});
        const std::size_t oi = op_log.size() - 1;
        auto cb = [this, oi](std::optional<core::ReadResult> r) {
          on_callback(oi, std::move(r));
        };
        bool granted = false;
        switch (ev.kind) {
          case EventKind::kRead:
            granted = inst.rd(ev.pattern, std::move(cb));
            break;
          case EventKind::kReadNb:
            granted = inst.rdp(ev.pattern, std::move(cb));
            break;
          case EventKind::kTake:
            granted = inst.in(ev.pattern, std::move(cb));
            break;
          default:
            granted = inst.inp(ev.pattern, std::move(cb));
            break;
        }
        op_log[oi].granted = granted;
        mix(granted ? 0x6Aull : 0x4Eull);
        break;
      }
    }
    if (result.ops % kDifferentialPeriod == 0) {
      if (auto f = check_keyed_differential(inst.local_space(), probes)) {
        on_trap(f->oracle, f->detail);
      }
    }
#if TIAMAT_AUDIT_ENABLED
    inst.local_space().audit_check("chaos.step");
#endif
  }

  void run_fault(std::size_t idx, const Event& ev, std::size_t s) {
    Slot& slot = slots[s];
    const transport::NodeId target =
        slot.inst ? slot.inst->node() : transport::kNoNode;
    switch (ev.kind) {
      case EventKind::kLossBurst: {
        ++result.faults;
        record_fault(idx, ev, target);
        const auto dur = sim::milliseconds(std::max<std::int64_t>(ev.arg, 1));
        sim::LinkModel m = base_model;
        m.loss = static_cast<double>(std::clamp<std::int64_t>(ev.arg2, 0, 950)) /
                 1000.0;
        net.set_link_model(m);
        ++burst_depth;
        global_shadow_until = std::max(
            global_shadow_until, queue.now() + dur + kConfirmShadow);
        purge_recent(kAllSlots);
        queue.schedule_after(dur, [this] {
          if (burst_depth > 0 && --burst_depth == 0) {
            net.set_link_model(base_model);
          }
        });
        break;
      }
      case EventKind::kPartition: {
        ++result.faults;
        record_fault(idx, ev, target);
        const std::size_t pivot = static_cast<std::size_t>(
            std::clamp<std::int64_t>(ev.arg, 1,
                                     static_cast<std::int64_t>(fleet) - 1));
        for (std::size_t a = 0; a < pivot; ++a) {
          for (std::size_t b = pivot; b < fleet; ++b) {
            if (slots[a].inst && slots[b].inst) {
              net.set_link(slots[a].inst->node(), slots[b].inst->node(),
                           false);
            }
          }
        }
        ++partitions_active;
        purge_recent(kAllSlots);
        break;
      }
      case EventKind::kHeal:
        ++result.faults;
        record_fault(idx, ev, target);
        net.clear_all_link_overrides();
        if (partitions_active > 0) {
          partitions_active = 0;
          global_shadow_until =
              std::max(global_shadow_until, queue.now() + kConfirmShadow);
        }
        break;
      case EventKind::kCrash: {
        if (!slot.inst) {
          ++result.skipped;
          return;
        }
        ++result.faults;
        record_fault(idx, ev, target);
        purge_recent(s);
        for (const std::int64_t seq : slot.held) {
          if (auto it = taken.find(seq); it != taken.end()) taken.erase(it);
        }
        slot.held.clear();
        node_to_slot.erase(slot.inst->node());
        slot.inst.reset();  // dtor cancels ops and removes the node
        slot.offline = false;
        break;
      }
      case EventKind::kRestart:
        if (slot.inst) {
          ++result.skipped;
          return;
        }
        ++result.faults;
        boot(s);
        ++slot.incarnation;
        record_fault(idx, ev, slot.inst->node());
        break;
      case EventKind::kLeaseStorm:
        if (!slot.inst) {
          ++result.skipped;
          return;
        }
        ++result.faults;
        record_fault(idx, ev, target);
        slot.inst->leases().revoke_all();
        break;
      case EventKind::kOffline:
        if (!slot.inst || slot.offline) {
          ++result.skipped;
          return;
        }
        ++result.faults;
        record_fault(idx, ev, target);
        purge_recent(s);
        tx.set_online(target, false);
        slot.offline = true;
        break;
      case EventKind::kOnline:
        if (!slot.inst || !slot.offline) {
          ++result.skipped;
          return;
        }
        ++result.faults;
        record_fault(idx, ev, target);
        tx.set_online(target, true);
        slot.offline = false;
        slot.shadow_until = queue.now() + kConfirmShadow;
        break;
      case EventKind::kMove:
        if (!slot.inst) {
          ++result.skipped;
          return;
        }
        ++result.faults;
        record_fault(idx, ev, target);
        net.set_position(target, sim::Position{static_cast<double>(ev.arg),
                                               static_cast<double>(ev.arg2)});
        break;
      case EventKind::kInjectCorruption: {
#if TIAMAT_AUDIT_ENABLED
        if (!slot.inst) {
          ++result.skipped;
          return;
        }
        ++result.faults;
        record_fault(idx, ev, target);
        // Plant a marker tuple no generated pattern can match (blob first
        // field), then break its index bucket: the very next checkpoint
        // must trap, in this run and byte-identically in every replay.
        space::LocalTupleSpace& sp = slot.inst->local_space();
        const tuples::TupleId id =
            sp.out(tuples::Tuple{tuples::Value(tuples::Blob{0xC0, 0xDE}),
                                 tuples::Value(std::int64_t{-1})});
        if (id != tuples::kNoTuple) {
          sp.audit_index().audit_corrupt_bucket_for_test(id);
          sp.audit_check("chaos.inject_corruption");
        }
#else
        ++result.skipped;
#endif
        break;
      }
      default:
        ++result.skipped;
        break;
    }
  }

  void execute(std::size_t idx) {
    current_event = idx;
    const Event& ev = plan.events[idx];
    const std::size_t s = ev.slot % fleet;
    ++result.executed;
    mix(0xE1);
    mix(idx);
    mix(static_cast<std::uint64_t>(ev.kind));
    if (is_fault(ev.kind)) {
      run_fault(idx, ev, s);
    } else if (slots[s].inst) {
      run_op(idx, ev, s);
    } else {
      ++result.skipped;
    }
  }

  /// Drain precondition: overrides cleared, base link model restored,
  /// everyone alive back on the air — quiescence oracles assume a world
  /// where timers can actually finish their protocols.
  void heal_world() {
    net.clear_all_link_overrides();
    net.set_link_model(base_model);
    burst_depth = 0;
    partitions_active = 0;
    global_shadow_until =
        std::max(global_shadow_until, queue.now() + kConfirmShadow);
    for (Slot& slot : slots) {
      if (!slot.inst) continue;
      if (slot.offline) {
        tx.set_online(slot.inst->node(), true);
        slot.offline = false;
        slot.shadow_until = queue.now() + kConfirmShadow;
      }
    }
  }

  void end_oracles() {
    for (Slot& slot : slots) {
      if (!slot.inst) continue;
      for (const Finding& f : check_instance_quiescent(*slot.inst)) {
        on_trap(f.oracle, f.detail);
      }
      // Producers are quiet (the drain window ran to completion), so the
      // final drain must balance the ring ledgers exactly.
      obs::Tracer& tr = slot.inst->tracer();
      tr.drain();
      if (auto f = check_trace_conservation(tr.ring_pushed(),
                                            tr.ring_drained(),
                                            tr.ring_dropped(),
                                            slot.inst->name())) {
        on_trap(f->oracle, f->detail);
      }
    }
    if (auto f = check_exactly_once(taken)) {
      std::string detail = f->detail;
      for (auto it = taken.begin(); it != taken.end();
           it = taken.upper_bound(*it)) {
        if (taken.count(*it) < 2) continue;
        for (const std::string& d : delivery_log[*it]) detail += "\n  " + d;
        break;
      }
      on_trap(f->oracle, detail);
    }
    if (auto f = check_termination(result.callbacks, result.delivered,
                                   result.empty)) {
      on_trap(f->oracle, f->detail);
    }
    for (const OpRec& rec : op_log) {
      if (!rec.granted) continue;
      const Slot& slot = slots[rec.slot];
      if (!slot.inst || slot.incarnation != rec.incarnation) continue;
      if (rec.callbacks != 1) {
        on_trap("termination",
                "op at event " + std::to_string(rec.event_index) +
                    " granted but saw " + std::to_string(rec.callbacks) +
                    " callback(s) after drain");
      }
    }
  }

  void finalize() {
    for (const Slot& slot : slots) {
      mix(0x51);
      if (!slot.inst) {
        mix(0xDEAD);
        continue;
      }
      mix(slot.inst->local_space().size());
      mix(slot.inst->local_space().tentative_count());
      mix(slot.inst->serving_count());
      mix(slot.inst->open_ops());
      mix(slot.inst->leases().active());
    }
    const sim::NetStats& st = net.stats();
    mix(st.unicasts_sent);
    mix(st.multicasts_sent);
    mix(st.deliveries);
    mix(st.drops_invisible);
    mix(st.drops_loss);
    mix(st.drops_dead);
    mix(st.bytes_sent);
    for (const std::int64_t seq : taken) mix(static_cast<std::uint64_t>(seq));
    mix(result.callbacks);
    mix(result.delivered);
    mix(result.empty);
    mix(result.tainted);
    if (result.trap) mix_str(result.trap->oracle);
    result.fingerprint = fp;

    registry.counter("chaos.events").add(result.executed);
    registry.counter("chaos.faults").add(result.faults);
    registry.counter("chaos.ops").add(result.ops);
    registry.counter("chaos.skipped").add(result.skipped);
    registry.counter("chaos.traps").add(result.trap ? 1 : 0);
    registry.counter("net.drops.dead").add(st.drops_dead);
    registry.counter("net.drops.invisible").add(st.drops_invisible);
    registry.counter("net.drops.loss").add(st.drops_loss);
    result.metrics = registry.snapshot();
  }

  RunResult run() {
    for (std::size_t i = 0; i < plan.events.size(); ++i) {
      queue.schedule_at(sim::milliseconds(plan.events[i].at_ms),
                        [this, i] { execute(i); });
    }
    queue.run_until(sim::milliseconds(plan.options.horizon_ms));
    heal_world();
    queue.run_for(sim::milliseconds(plan.options.drain_ms));
    if (!result.trap) end_oracles();
    finalize();
    return std::move(result);
  }
};

}  // namespace

RunResult Runner::run() {
  Execution ex(plan_);
  return ex.run();
}

}  // namespace tiamat::chaos
