#include "chaos/shrink.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "chaos/runner.h"

namespace tiamat::chaos {
namespace {

Plan with_events(const Plan& base, std::vector<Event> events) {
  Plan p;
  p.seed = base.seed;
  p.options = base.options;
  p.events = std::move(events);
  return p;
}

bool still_traps(const Plan& candidate, const std::string& oracle) {
  const RunResult r = Runner(candidate).run();
  return r.trap.has_value() && r.trap->oracle == oracle;
}

}  // namespace

ShrinkResult shrink(const Plan& plan, const std::string& oracle,
                    std::uint64_t max_runs) {
  ShrinkResult out;
  std::vector<Event> events = plan.events;
  std::size_t granularity = 2;

  // Complement-removal ddmin: drop one of `granularity` chunks per
  // candidate; a surviving trap commits the smaller list, otherwise the
  // granularity doubles until single events are being removed.
  while (events.size() >= 2 && out.runs < max_runs) {
    const std::size_t n = std::min(granularity, events.size());
    const std::size_t chunk = (events.size() + n - 1) / n;
    bool reduced = false;
    for (std::size_t i = 0; i < n && out.runs < max_runs; ++i) {
      const std::size_t lo = i * chunk;
      if (lo >= events.size()) break;
      const std::size_t hi = std::min(lo + chunk, events.size());
      std::vector<Event> candidate;
      candidate.reserve(events.size() - (hi - lo));
      candidate.insert(candidate.end(), events.begin(),
                       events.begin() + static_cast<std::ptrdiff_t>(lo));
      candidate.insert(candidate.end(),
                       events.begin() + static_cast<std::ptrdiff_t>(hi),
                       events.end());
      if (candidate.empty()) continue;
      ++out.runs;
      if (still_traps(with_events(plan, candidate), oracle)) {
        events = std::move(candidate);
        granularity = std::max<std::size_t>(n - 1, 2);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (n >= events.size()) {
        out.minimal = true;  // every single-event removal failed
        break;
      }
      granularity = std::min(events.size(), n * 2);
    }
  }

  // A single surviving event is trivially 1-minimal (the empty plan cannot
  // trap — no event ever executes).
  if (events.size() <= 1) out.minimal = true;
  out.plan = with_events(plan, std::move(events));
  return out;
}

}  // namespace tiamat::chaos
