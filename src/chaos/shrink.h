// Delta-debugging shrinker (ddmin over the plan's event list).
//
// A trapping plan usually carries hundreds of irrelevant events; the
// shrinker reduces it to a near-1-minimal schedule that still trips the
// *same oracle*. Classic ddmin: try dropping chunks (complements first) at
// granularity 2, refine granularity on failure, stop at granularity ==
// remaining events or when the run budget is spent. Because plans are fully
// materialised, dropping events never invalidates the rest of the schedule
// — each candidate is just a subsequence re-run through a fresh Runner.

#pragma once

#include <cstdint>
#include <string>

#include "chaos/plan.h"

namespace tiamat::chaos {

struct ShrinkResult {
  Plan plan;               ///< smallest trapping plan found
  std::uint64_t runs = 0;  ///< candidate executions spent
  /// True when ddmin reached 1-minimality (every single-event removal was
  /// tried and failed); false when the run budget cut the search short.
  bool minimal = false;
};

/// Shrinks `plan` (which must trap with `oracle` when run) to a smaller
/// plan that still traps with the same oracle. `max_runs` bounds the total
/// candidate executions.
ShrinkResult shrink(const Plan& plan, const std::string& oracle,
                    std::uint64_t max_runs = 256);

}  // namespace tiamat::chaos
