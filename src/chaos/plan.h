// Chaos plans: the seeded fault-and-operation schedules the fuzz harness
// executes (ROADMAP item 5, DESIGN.md §12).
//
// A Plan is the *entire* input of a fuzz run: one uint64 seed expands — via
// generate_plan and nothing else — into a flat, time-sorted list of events
// mixing an application-shaped op stream (Zipf-keyed out/in/rd/eval over a
// fleet of Instances) with injected hostility (loss bursts, partitions,
// crash/restart, lease-revocation storms, mobility, adversarial tuple
// shapes). Everything a run needs is materialised here at generation time —
// concrete tuples, concrete patterns, concrete fault parameters — so that a
// plan replays bit-for-bit, survives JSON round-trips into repro artifacts,
// and shrinks by plain event-list subsetting (delta debugging needs events
// to be droppable without re-deriving the rest of the schedule).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.h"
#include "tuple/pattern.h"
#include "tuple/tuple.h"

namespace tiamat::chaos {

/// What one schedule entry does. The op stream and the fault schedule share
/// one vocabulary so the shrinker can treat a plan as a uniform event list.
enum class EventKind : std::uint8_t {
  // Op stream (executed against the slot's Instance).
  kOut = 0,           ///< out(tuple)
  kRead,              ///< rd(pattern, ...)   — blocking read
  kReadNb,            ///< rdp(pattern, ...)  — non-blocking read
  kTake,              ///< in(pattern, ...)   — blocking take
  kTakeNb,            ///< inp(pattern, ...)  — non-blocking take
  kEval,              ///< eval(active tuple); arg = per-field cost (ms)
  // Fault schedule (executed against the simulated world).
  kLossBurst,         ///< arg = duration (ms), arg2 = loss (permille)
  kPartition,         ///< arg = pivot: slots [0,pivot) cut from [pivot,n)
  kHeal,              ///< clear every link override
  kCrash,             ///< destroy the slot's Instance (node removed)
  kRestart,           ///< re-create a crashed slot (fresh node id)
  kLeaseStorm,        ///< revoke every lease the slot's Instance holds
  kOffline,           ///< radio off (node keeps state)
  kOnline,            ///< radio back on
  kMove,              ///< reposition: arg = x, arg2 = y
  kInjectCorruption,  ///< break a space invariant (audit builds trap)
};

const char* to_string(EventKind k);
std::optional<EventKind> event_kind_from_string(std::string_view name);

/// True for the fault-schedule half of the vocabulary.
bool is_fault(EventKind k);

/// One schedule entry. Field meaning is kind-specific (see EventKind);
/// unused fields stay zero/empty and are omitted from JSON.
struct Event {
  EventKind kind{};
  std::uint64_t at_ms = 0;  ///< virtual-time offset from run start
  std::uint32_t slot = 0;   ///< target instance slot
  std::int64_t arg = 0;
  std::int64_t arg2 = 0;
  tuples::Tuple tuple;      ///< kOut / kEval payload
  tuples::Pattern pattern;  ///< kRead* / kTake* probe

  obs::json::Value to_json() const;
  static std::optional<Event> from_json(const obs::json::Value& v);
};

/// Generation knobs. Plans embed a copy so artifacts are self-contained.
struct Options {
  std::uint32_t instances = 8;    ///< fleet size, clamped to [2, 32]
  std::uint32_t max_events = 320;
  /// Generation weights: "mixed" (default), "calm" (faults rare),
  /// "crashy" (crash/restart-heavy), "hostile" (adversarial tuple shapes),
  /// "mobile" (positions + radio range, movement faults).
  std::string profile = "mixed";
  std::uint32_t key_universe = 12;  ///< distinct Zipf-sampled keys
  double zipf_s = 1.1;              ///< Zipf skew (>1: head-heavy)
  std::uint64_t horizon_ms = 45000; ///< events spread over [0, horizon)
  std::uint64_t drain_ms = 30000;   ///< post-horizon quiescence window
  /// Appends one kInjectCorruption event mid-run. Only audit builds trap
  /// on it (elsewhere the hook is compiled out and the event is skipped).
  bool inject_corruption = false;

  obs::json::Value to_json() const;
  static std::optional<Options> from_json(const obs::json::Value& v);
};

struct Plan {
  std::uint64_t seed = 0;
  Options options;
  std::vector<Event> events;

  obs::json::Value to_json() const;
  static std::optional<Plan> from_json(const obs::json::Value& v);
};

/// Expands `seed` into a full schedule. Deterministic: same (seed, options)
/// always yields the same plan, on every platform the sim::Rng engine
/// behaves identically on.
Plan generate_plan(std::uint64_t seed, Options options = {});

// ---- Tuple/pattern JSON (shared by Event and the repro artifacts) ---------

obs::json::Value tuple_to_json(const tuples::Tuple& t);
std::optional<tuples::Tuple> tuple_from_json(const obs::json::Value& v);
obs::json::Value pattern_to_json(const tuples::Pattern& p);
std::optional<tuples::Pattern> pattern_from_json(const obs::json::Value& v);

}  // namespace tiamat::chaos
