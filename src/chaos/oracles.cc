#include "chaos/oracles.h"

namespace tiamat::chaos {

std::vector<Finding> check_instance_quiescent(core::Instance& inst) {
  std::vector<Finding> findings;
  const std::string& name = inst.name();
  if (const std::size_t n = inst.local_space().tentative_count(); n != 0) {
    findings.push_back({"tentative-leak",
                        name + ": " + std::to_string(n) +
                            " tentative removal(s) never confirmed/released"});
  }
  if (const std::size_t n = inst.open_ops(); n != 0) {
    findings.push_back({"termination",
                        name + ": " + std::to_string(n) +
                            " operation(s) outlived their leases"});
  }
  if (const std::size_t n = inst.serving_count(); n != 0) {
    findings.push_back({"lease-accounting",
                        name + ": " + std::to_string(n) +
                            " serving entr(ies) leaked"});
  }
  if (const std::size_t n = inst.leases().active(); n != 0) {
    findings.push_back({"lease-accounting",
                        name + ": " + std::to_string(n) +
                            " lease(s) still active after drain"});
  }
  return findings;
}

std::optional<Finding> check_exactly_once(
    const std::multiset<std::int64_t>& taken) {
  for (auto it = taken.begin(); it != taken.end();) {
    const std::size_t copies = taken.count(*it);
    if (copies > 1) {
      return Finding{"exactly-once",
                     "seq " + std::to_string(*it) + " delivered to " +
                         std::to_string(copies) + " destructive takers"};
    }
    it = taken.upper_bound(*it);
  }
  return std::nullopt;
}

std::optional<Finding> check_termination(std::uint64_t callbacks,
                                         std::uint64_t delivered,
                                         std::uint64_t empty) {
  if (callbacks == delivered + empty) return std::nullopt;
  return Finding{"termination",
                 "callbacks=" + std::to_string(callbacks) +
                     " != delivered=" + std::to_string(delivered) +
                     " + empty=" + std::to_string(empty)};
}

std::optional<Finding> check_trace_conservation(std::uint64_t pushed,
                                                std::uint64_t drained,
                                                std::uint64_t dropped,
                                                const std::string& who) {
  if (drained == pushed) return std::nullopt;
  return Finding{"trace-conservation",
                 who + ": " + std::to_string(pushed) +
                     " event(s) accepted into thread rings but " +
                     std::to_string(drained) + " drained (" +
                     std::to_string(dropped) + " dropped at push)"};
}

std::optional<Finding> check_keyed_differential(
    const space::LocalTupleSpace& space,
    const std::vector<tuples::Pattern>& probes) {
  const std::vector<tuples::Tuple> all = space.snapshot();
  for (const tuples::Pattern& p : probes) {
    std::size_t scan = 0;
    for (const tuples::Tuple& t : all) {
      if (p.matches(t)) ++scan;
    }
    const std::size_t engine = space.count_matches(p);
    if (engine != scan) {
      return Finding{"differential",
                     "count_matches(" + p.to_string() + ") = " +
                         std::to_string(engine) + " but linear scan found " +
                         std::to_string(scan)};
    }
    if (space.has_match(p) != (scan != 0)) {
      return Finding{"differential",
                     "has_match(" + p.to_string() +
                         ") disagrees with linear scan (" +
                         std::to_string(scan) + " match(es))"};
    }
  }
  return std::nullopt;
}

}  // namespace tiamat::chaos
