// The oracle bank: the reusable invariant checks the chaos runner (and the
// property-test suite) evaluate against a fleet of Instances.
//
// These are the P1-P5 properties of tests/test_properties.cc, factored out
// so one implementation serves both the gtest stress sweeps and the fuzz
// harness's per-step checking:
//
//   P1  exactly-once removal  (check_exactly_once)
//   P2  no tentative leaks    (check_instance_quiescent)
//   P3  termination           (check_termination + the runner's per-op
//                              double-callback guard)
//   P4  seed-determinism      (Runner fingerprints; compared by callers)
//   P5  lease accounting      (check_instance_quiescent)
//
// plus the keyed-probe-vs-linear-scan differential the audit build samples
// internally, exposed here as an on-demand oracle so non-audit builds get
// the same cross-check on fuzz schedules, and the trace-ring conservation
// law of DESIGN.md §13 (drained == pushed once producers quiesce).
//
// Every check returns findings instead of asserting, so the runner can turn
// a violation into a repro artifact and tests can turn it into EXPECT
// failures with context.

#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/instance.h"
#include "space/local_space.h"
#include "tuple/pattern.h"

namespace tiamat::chaos {

/// One violated invariant: which oracle tripped, and the specifics.
struct Finding {
  std::string oracle;  ///< "exactly-once" | "tentative-leak" | ...
  std::string detail;
};

/// P2/P5: after the drain window an instance must be fully quiescent — no
/// parked tentative removals, no open logical-space operations, no serving
/// entries, no active leases. Non-const: lease introspection is mutating
/// (expiry sweeps) on some paths.
std::vector<Finding> check_instance_quiescent(core::Instance& inst);

/// P1: no sequence id delivered to two destructive takers. `taken` is the
/// run's ledger of delivered ids, with ids held by crashed incarnations
/// already removed (a tuple re-served after its taker died mid-protocol is
/// legitimate redelivery, not a violation).
std::optional<Finding> check_exactly_once(
    const std::multiset<std::int64_t>& taken);

/// P3: every granted operation called back exactly once — the callback
/// total must equal delivered + empty outcomes.
std::optional<Finding> check_termination(std::uint64_t callbacks,
                                         std::uint64_t delivered,
                                         std::uint64_t empty);

/// Trace conservation (DESIGN.md §13): once producers are quiet and a final
/// Tracer::drain() has run, every event accepted into a thread ring must
/// have been drained exactly once — `drained == pushed`. Drops are rejected
/// at push time onto their own ledger, so bounded loss is legal; silent
/// loss or duplication inside the rings is not. The caller passes the
/// post-drain counter triple (Tracer::ring_pushed/ring_drained/ring_dropped).
std::optional<Finding> check_trace_conservation(std::uint64_t pushed,
                                                std::uint64_t drained,
                                                std::uint64_t dropped,
                                                const std::string& who);

/// Differential check: for each probe, the engine's keyed counting path
/// must agree with a linear scan over a space snapshot (count and
/// has_match). This is the audit preset's sampled cross-check, runnable on
/// demand in any build.
std::optional<Finding> check_keyed_differential(
    const space::LocalTupleSpace& space,
    const std::vector<tuples::Pattern>& probes);

}  // namespace tiamat::chaos
