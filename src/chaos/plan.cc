#include "chaos/plan.h"

#include <algorithm>
#include <utility>

#include "sim/random.h"

namespace tiamat::chaos {

using obs::json::Array;
using obs::json::Object;
using obs::json::Value;
using tuples::Field;
using tuples::Pattern;
using tuples::Tuple;

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kOut:
      return "out";
    case EventKind::kRead:
      return "rd";
    case EventKind::kReadNb:
      return "rdp";
    case EventKind::kTake:
      return "in";
    case EventKind::kTakeNb:
      return "inp";
    case EventKind::kEval:
      return "eval";
    case EventKind::kLossBurst:
      return "loss_burst";
    case EventKind::kPartition:
      return "partition";
    case EventKind::kHeal:
      return "heal";
    case EventKind::kCrash:
      return "crash";
    case EventKind::kRestart:
      return "restart";
    case EventKind::kLeaseStorm:
      return "lease_storm";
    case EventKind::kOffline:
      return "offline";
    case EventKind::kOnline:
      return "online";
    case EventKind::kMove:
      return "move";
    case EventKind::kInjectCorruption:
      return "inject_corruption";
  }
  return "?";
}

std::optional<EventKind> event_kind_from_string(std::string_view name) {
  for (int k = 0; k <= static_cast<int>(EventKind::kInjectCorruption); ++k) {
    const auto kind = static_cast<EventKind>(k);
    if (name == to_string(kind)) return kind;
  }
  return std::nullopt;
}

bool is_fault(EventKind k) {
  return static_cast<int>(k) >= static_cast<int>(EventKind::kLossBurst);
}

// ---- Tuple/pattern JSON -----------------------------------------------------

namespace {

Value value_to_json(const tuples::Value& v) {
  Object o;
  switch (v.type()) {
    case tuples::Type::kInt:
      o.emplace_back("t", Value("i"));
      o.emplace_back("v", Value(v.as_int()));
      break;
    case tuples::Type::kDouble:
      o.emplace_back("t", Value("d"));
      o.emplace_back("v", Value(v.as_double()));
      break;
    case tuples::Type::kBool:
      o.emplace_back("t", Value("b"));
      o.emplace_back("v", Value(v.as_bool()));
      break;
    case tuples::Type::kString:
      o.emplace_back("t", Value("s"));
      o.emplace_back("v", Value(v.as_string()));
      break;
    case tuples::Type::kBlob: {
      o.emplace_back("t", Value("x"));
      Array bytes;
      for (std::uint8_t b : v.as_blob()) {
        bytes.emplace_back(static_cast<std::int64_t>(b));
      }
      o.emplace_back("v", Value(std::move(bytes)));
      break;
    }
  }
  return Value(std::move(o));
}

std::optional<tuples::Value> value_from_json(const Value& j) {
  const Value* t = j.find("t");
  const Value* v = j.find("v");
  if (t == nullptr || !t->is_string() || v == nullptr) return std::nullopt;
  const std::string& tag = t->as_string();
  if (tag == "i" && v->is_int()) return tuples::Value(v->as_int());
  if (tag == "d" && v->is_number()) return tuples::Value(v->as_double());
  if (tag == "b" && v->is_bool()) return tuples::Value(v->as_bool());
  if (tag == "s" && v->is_string()) return tuples::Value(v->as_string());
  if (tag == "x" && v->is_array()) {
    tuples::Blob blob;
    for (const Value& b : v->as_array()) {
      if (!b.is_int()) return std::nullopt;
      blob.push_back(static_cast<std::uint8_t>(b.as_int()));
    }
    return tuples::Value(std::move(blob));
  }
  return std::nullopt;
}

Value field_to_json(const Field& f) {
  Object o;
  switch (f.kind()) {
    case Field::Kind::kActual:
      o.emplace_back("k", Value("a"));
      o.emplace_back("v", value_to_json(f.actual()));
      break;
    case Field::Kind::kFormal:
      o.emplace_back("k", Value("f"));
      o.emplace_back("t", Value(static_cast<int>(f.formal_type())));
      break;
    case Field::Kind::kWildcard:
      o.emplace_back("k", Value("w"));
      break;
    case Field::Kind::kRange:
      o.emplace_back("k", Value("r"));
      o.emplace_back("lo", Value(f.range_lo()));
      o.emplace_back("hi", Value(f.range_hi()));
      break;
    case Field::Kind::kPrefix:
      o.emplace_back("k", Value("p"));
      o.emplace_back("v", Value(f.prefix_str()));
      break;
  }
  return Value(std::move(o));
}

std::optional<Field> field_from_json(const Value& j) {
  const Value* k = j.find("k");
  if (k == nullptr || !k->is_string()) return std::nullopt;
  const std::string& tag = k->as_string();
  if (tag == "a") {
    const Value* v = j.find("v");
    if (v == nullptr) return std::nullopt;
    auto val = value_from_json(*v);
    if (!val) return std::nullopt;
    return Field(*val);
  }
  if (tag == "f") {
    const Value* t = j.find("t");
    if (t == nullptr || !t->is_int() || t->as_int() < 0 ||
        t->as_int() > static_cast<int>(tuples::Type::kBlob)) {
      return std::nullopt;
    }
    return Field::formal(static_cast<tuples::Type>(t->as_int()));
  }
  if (tag == "w") return Field::wildcard();
  if (tag == "r") {
    const Value* lo = j.find("lo");
    const Value* hi = j.find("hi");
    if (lo == nullptr || !lo->is_number() || hi == nullptr ||
        !hi->is_number()) {
      return std::nullopt;
    }
    return Field::range(lo->as_double(), hi->as_double());
  }
  if (tag == "p") {
    const Value* v = j.find("v");
    if (v == nullptr || !v->is_string()) return std::nullopt;
    return Field::prefix(v->as_string());
  }
  return std::nullopt;
}

}  // namespace

Value tuple_to_json(const Tuple& t) {
  Array a;
  for (const tuples::Value& v : t.fields()) a.push_back(value_to_json(v));
  return Value(std::move(a));
}

std::optional<Tuple> tuple_from_json(const Value& v) {
  if (!v.is_array()) return std::nullopt;
  std::vector<tuples::Value> fields;
  for (const Value& f : v.as_array()) {
    auto val = value_from_json(f);
    if (!val) return std::nullopt;
    fields.push_back(std::move(*val));
  }
  return Tuple(std::move(fields));
}

Value pattern_to_json(const Pattern& p) {
  Array a;
  for (const Field& f : p.fields()) a.push_back(field_to_json(f));
  return Value(std::move(a));
}

std::optional<Pattern> pattern_from_json(const Value& v) {
  if (!v.is_array()) return std::nullopt;
  std::vector<Field> fields;
  for (const Value& f : v.as_array()) {
    auto field = field_from_json(f);
    if (!field) return std::nullopt;
    fields.push_back(std::move(*field));
  }
  return Pattern(std::move(fields));
}

// ---- Event JSON -------------------------------------------------------------

Value Event::to_json() const {
  Object o;
  o.emplace_back("kind", Value(to_string(kind)));
  o.emplace_back("at_ms", Value(static_cast<std::int64_t>(at_ms)));
  o.emplace_back("slot", Value(static_cast<std::int64_t>(slot)));
  if (arg != 0) o.emplace_back("arg", Value(arg));
  if (arg2 != 0) o.emplace_back("arg2", Value(arg2));
  switch (kind) {
    case EventKind::kOut:
    case EventKind::kEval:
      o.emplace_back("tuple", tuple_to_json(tuple));
      break;
    case EventKind::kRead:
    case EventKind::kReadNb:
    case EventKind::kTake:
    case EventKind::kTakeNb:
      o.emplace_back("pattern", pattern_to_json(pattern));
      break;
    default:
      break;
  }
  return Value(std::move(o));
}

std::optional<Event> Event::from_json(const Value& v) {
  const Value* kind = v.find("kind");
  const Value* at = v.find("at_ms");
  const Value* slot = v.find("slot");
  if (kind == nullptr || !kind->is_string() || at == nullptr ||
      !at->is_int() || slot == nullptr || !slot->is_int()) {
    return std::nullopt;
  }
  auto k = event_kind_from_string(kind->as_string());
  if (!k) return std::nullopt;
  Event e;
  e.kind = *k;
  e.at_ms = static_cast<std::uint64_t>(at->as_int());
  e.slot = static_cast<std::uint32_t>(slot->as_int());
  if (const Value* a = v.find("arg"); a != nullptr && a->is_int()) {
    e.arg = a->as_int();
  }
  if (const Value* a = v.find("arg2"); a != nullptr && a->is_int()) {
    e.arg2 = a->as_int();
  }
  if (const Value* t = v.find("tuple")) {
    auto tup = tuple_from_json(*t);
    if (!tup) return std::nullopt;
    e.tuple = std::move(*tup);
  }
  if (const Value* p = v.find("pattern")) {
    auto pat = pattern_from_json(*p);
    if (!pat) return std::nullopt;
    e.pattern = std::move(*pat);
  }
  return e;
}

// ---- Options / Plan JSON ----------------------------------------------------

Value Options::to_json() const {
  Object o;
  o.emplace_back("instances", Value(static_cast<std::int64_t>(instances)));
  o.emplace_back("max_events", Value(static_cast<std::int64_t>(max_events)));
  o.emplace_back("profile", Value(profile));
  o.emplace_back("key_universe",
                 Value(static_cast<std::int64_t>(key_universe)));
  o.emplace_back("zipf_s", Value(zipf_s));
  o.emplace_back("horizon_ms", Value(static_cast<std::int64_t>(horizon_ms)));
  o.emplace_back("drain_ms", Value(static_cast<std::int64_t>(drain_ms)));
  o.emplace_back("inject_corruption", Value(inject_corruption));
  return Value(std::move(o));
}

std::optional<Options> Options::from_json(const Value& v) {
  if (!v.is_object()) return std::nullopt;
  Options o;
  const auto read_u32 = [&v](const char* key, std::uint32_t& out) {
    if (const Value* f = v.find(key); f != nullptr && f->is_int()) {
      out = static_cast<std::uint32_t>(f->as_int());
    }
  };
  const auto read_u64 = [&v](const char* key, std::uint64_t& out) {
    if (const Value* f = v.find(key); f != nullptr && f->is_int()) {
      out = static_cast<std::uint64_t>(f->as_int());
    }
  };
  read_u32("instances", o.instances);
  read_u32("max_events", o.max_events);
  read_u32("key_universe", o.key_universe);
  read_u64("horizon_ms", o.horizon_ms);
  read_u64("drain_ms", o.drain_ms);
  if (const Value* f = v.find("profile"); f != nullptr && f->is_string()) {
    o.profile = f->as_string();
  }
  if (const Value* f = v.find("zipf_s"); f != nullptr && f->is_number()) {
    o.zipf_s = f->as_double();
  }
  if (const Value* f = v.find("inject_corruption");
      f != nullptr && f->is_bool()) {
    o.inject_corruption = f->as_bool();
  }
  return o;
}

Value Plan::to_json() const {
  Object o;
  o.emplace_back("seed", Value(static_cast<std::int64_t>(seed)));
  o.emplace_back("options", options.to_json());
  Array evs;
  for (const Event& e : events) evs.push_back(e.to_json());
  o.emplace_back("events", Value(std::move(evs)));
  return Value(std::move(o));
}

std::optional<Plan> Plan::from_json(const Value& v) {
  const Value* seed = v.find("seed");
  const Value* options = v.find("options");
  const Value* events = v.find("events");
  if (seed == nullptr || !seed->is_int() || options == nullptr ||
      events == nullptr || !events->is_array()) {
    return std::nullopt;
  }
  auto opts = Options::from_json(*options);
  if (!opts) return std::nullopt;
  Plan p;
  p.seed = static_cast<std::uint64_t>(seed->as_int());
  p.options = std::move(*opts);
  for (const Value& e : events->as_array()) {
    auto ev = Event::from_json(e);
    if (!ev) return std::nullopt;
    p.events.push_back(std::move(*ev));
  }
  return p;
}

// ---- Generation -------------------------------------------------------------

namespace {

/// Zipf(s) sampler over [0, n): precomputed CDF + one uniform draw, so key
/// popularity is head-heavy the way real tuple traffic is.
class Zipf {
 public:
  Zipf(std::size_t n, double s) {
    cdf_.reserve(n);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      total += 1.0 / power(static_cast<double>(i + 1), s);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
  }

  std::size_t sample(sim::Rng& rng) const {
    const double r = rng.real();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), r);
    return it == cdf_.end() ? cdf_.size() - 1
                            : static_cast<std::size_t>(it - cdf_.begin());
  }

 private:
  // std::pow is not guaranteed bit-identical across libms; the exponents
  // here are small, so an exp/log-free ladder keeps plans portable.
  static double power(double base, double exp) {
    double out = 1.0;
    int whole = static_cast<int>(exp);
    for (int i = 0; i < whole; ++i) out *= base;
    // Fractional part via sqrt ladder (IEEE-exact): 8 bits of exponent.
    double frac = exp - whole;
    double root = base;
    for (int bit = 0; bit < 8; ++bit) {
      root = sqrt_newton(root);
      frac *= 2.0;
      if (frac >= 1.0) {
        out *= root;
        frac -= 1.0;
      }
    }
    return out;
  }

  static double sqrt_newton(double x) {
    if (x <= 0.0) return 0.0;
    double g = x > 1.0 ? x : 1.0;
    for (int i = 0; i < 32; ++i) g = 0.5 * (g + x / g);
    return g;
  }

  std::vector<double> cdf_;
};

/// Per-profile generation weights.
struct Weights {
  double fault = 0.14;    ///< P(entry is a fault, not an op)
  double hostile = 0.08;  ///< P(adversarial tuple/pattern shape)
  // Fault-kind mix (relative weights; normalised at draw time).
  double loss = 0.22;
  double partition = 0.12;
  double heal = 0.10;
  double crash = 0.16;
  double lease_storm = 0.14;
  double offline = 0.18;
  double move = 0.08;
};

Weights weights_for(const std::string& profile) {
  Weights w;
  if (profile == "calm") {
    w.fault = 0.05;
    w.hostile = 0.03;
  } else if (profile == "crashy") {
    w.fault = 0.25;
    w.crash = 0.40;
    w.offline = 0.10;
  } else if (profile == "hostile") {
    w.fault = 0.10;
    w.hostile = 0.35;
  } else if (profile == "mobile") {
    w.fault = 0.20;
    w.move = 0.35;
    w.offline = 0.25;
    w.crash = 0.08;
  }
  return w;
}

/// First-field key: Zipf-ranked strings, or (hostile) ints shaped to share
/// low-order hash bits so they pile into the same index buckets.
tuples::Value make_key(sim::Rng& rng, const Zipf& zipf, const Weights& w) {
  const std::size_t k = zipf.sample(rng);
  if (rng.chance(w.hostile)) {
    return tuples::Value(static_cast<std::int64_t>((k << 16) | 0x5));
  }
  return tuples::Value("key" + std::to_string(k));
}

tuples::Value pad_value(sim::Rng& rng, std::size_t i) {
  switch (rng.index(5)) {
    case 0:
      return tuples::Value(static_cast<std::int64_t>(i));
    case 1:
      return tuples::Value("pad" + std::to_string(i));
    case 2:
      return tuples::Value(0.5 * static_cast<double>(i));
    case 3:
      return tuples::Value(i % 2 == 0);
    default:
      return tuples::Value(tuples::Blob{0xde, 0xad, static_cast<std::uint8_t>(i)});
  }
}

/// {key, seq, padding...}: seq (field 1) is the plan-unique int the
/// exactly-once oracle ledgers. Hostile shapes: zero arity, huge arity.
Tuple make_tuple(sim::Rng& rng, const Zipf& zipf, const Weights& w,
                 std::int64_t& next_seq) {
  const double r = rng.real();
  if (r < w.hostile * 0.20) return Tuple{};  // zero-arity probe
  Tuple t;
  t.push_back(make_key(rng, zipf, w));
  t.push_back(tuples::Value(next_seq++));
  const std::size_t pad = r < w.hostile * 0.60
                              ? 6 + rng.index(34)  // huge arity, capped at 40
                              : rng.index(3);
  for (std::size_t i = 0; i < pad; ++i) t.push_back(pad_value(rng, i));
  return t;
}

/// Keyed {key, any_int, wildcards...} probes (plus unkeyed and zero-arity
/// shapes) whose arities line up with make_tuple's 0-2 padding fields.
Pattern make_pattern(sim::Rng& rng, const Zipf& zipf, const Weights& w) {
  const double r = rng.real();
  if (r < w.hostile * 0.15) return Pattern{};  // zero-arity probe
  std::vector<Field> fields;
  if (rng.chance(0.15)) {
    fields.emplace_back(tuples::any_string());  // unkeyed: scan path
  } else {
    fields.emplace_back(Field(make_key(rng, zipf, w)));
  }
  fields.emplace_back(tuples::any_int());
  const std::size_t tail = rng.index(3);
  for (std::size_t i = 0; i < tail; ++i) {
    fields.emplace_back(tuples::any());
  }
  return Pattern(std::move(fields));
}

}  // namespace

Plan generate_plan(std::uint64_t seed, Options options) {
  options.instances = std::clamp<std::uint32_t>(options.instances, 2, 32);
  if (options.max_events == 0) options.max_events = 1;
  if (options.key_universe == 0) options.key_universe = 1;
  if (options.horizon_ms == 0) options.horizon_ms = 1000;

  Plan plan;
  plan.seed = seed;
  plan.options = options;

  sim::Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  const Weights w = weights_for(options.profile);
  const Zipf zipf(options.key_universe, options.zipf_s);
  const std::uint32_t n = options.instances;
  std::int64_t next_seq = 1;

  for (std::uint32_t i = 0; i < options.max_events; ++i) {
    Event e;
    e.at_ms = static_cast<std::uint64_t>(
        rng.uniform(0, static_cast<std::int64_t>(options.horizon_ms) - 1));
    e.slot = static_cast<std::uint32_t>(rng.index(n));

    if (rng.chance(w.fault)) {
      const double total = w.loss + w.partition + w.heal + w.crash +
                           w.lease_storm + w.offline + w.move;
      double pick = rng.real(0.0, total);
      if ((pick -= w.loss) < 0) {
        e.kind = EventKind::kLossBurst;
        e.arg = rng.uniform(200, 3000);   // duration (ms)
        e.arg2 = rng.uniform(100, 900);   // loss (permille)
      } else if ((pick -= w.partition) < 0) {
        e.kind = EventKind::kPartition;
        e.arg = rng.uniform(1, n - 1);    // pivot
      } else if ((pick -= w.heal) < 0) {
        e.kind = EventKind::kHeal;
      } else if ((pick -= w.crash) < 0) {
        e.kind = EventKind::kCrash;
        if (rng.chance(0.75)) {
          Event restart;
          restart.kind = EventKind::kRestart;
          restart.slot = e.slot;
          restart.at_ms = e.at_ms + static_cast<std::uint64_t>(
                                        rng.uniform(500, 5000));
          if (restart.at_ms < options.horizon_ms) {
            plan.events.push_back(restart);
          }
        }
      } else if ((pick -= w.lease_storm) < 0) {
        e.kind = EventKind::kLeaseStorm;
      } else if ((pick -= w.offline) < 0) {
        e.kind = EventKind::kOffline;
        Event online;
        online.kind = EventKind::kOnline;
        online.slot = e.slot;
        online.at_ms = e.at_ms + static_cast<std::uint64_t>(
                                     rng.uniform(300, 4000));
        if (online.at_ms < options.horizon_ms) plan.events.push_back(online);
      } else {
        e.kind = EventKind::kMove;
        e.arg = rng.uniform(0, 200);   // x
        e.arg2 = rng.uniform(0, 200);  // y
      }
    } else {
      const double r = rng.real();
      if (r < 0.42) {
        e.kind = EventKind::kOut;
        e.tuple = make_tuple(rng, zipf, w, next_seq);
      } else if (r < 0.60) {
        e.kind = EventKind::kTake;
        e.pattern = make_pattern(rng, zipf, w);
      } else if (r < 0.72) {
        e.kind = EventKind::kTakeNb;
        e.pattern = make_pattern(rng, zipf, w);
      } else if (r < 0.80) {
        e.kind = EventKind::kRead;
        e.pattern = make_pattern(rng, zipf, w);
      } else if (r < 0.88) {
        e.kind = EventKind::kReadNb;
        e.pattern = make_pattern(rng, zipf, w);
      } else {
        e.kind = EventKind::kEval;
        e.tuple = make_tuple(rng, zipf, w, next_seq);
        e.arg = rng.uniform(1, 40);  // per-field compute cost (ms)
      }
    }
    plan.events.push_back(e);
  }

  if (options.inject_corruption) {
    // Mid-run, after the head of the op stream has stored keyed tuples the
    // corruption hook can bite on.
    Event e;
    e.kind = EventKind::kInjectCorruption;
    e.at_ms = options.horizon_ms / 2;
    e.slot = 0;
    plan.events.push_back(e);
  }

  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const Event& a, const Event& b) {
                     return a.at_ms < b.at_ms;
                   });
  return plan;
}

}  // namespace tiamat::chaos
