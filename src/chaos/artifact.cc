#include "chaos/artifact.h"

#include <fstream>
#include <sstream>
#include <utility>

namespace tiamat::chaos {

using obs::json::Object;
using obs::json::Value;

Artifact Artifact::from_run(const Plan& plan, const RunResult& result) {
  Artifact a;
  a.plan = plan;
  if (result.trap) {
    a.oracle = result.trap->oracle;
    a.detail = result.trap->detail;
    a.at = result.trap->at;
    a.event_index = result.trap->event_index;
    a.flight_tails = result.trap->flight_tails;
  }
  a.fingerprint = result.fingerprint;
  a.original_events = plan.events.size();
  return a;
}

Value Artifact::to_json() const {
  Object o{
      {"version", Value(kVersion)},
      {"oracle", Value(oracle)},
      {"detail", Value(detail)},
      {"at", Value(static_cast<std::int64_t>(at))},
      {"event_index", Value(static_cast<std::int64_t>(event_index))},
      {"fingerprint", Value(static_cast<std::int64_t>(fingerprint))},
      {"minimized", Value(minimized)},
      {"original_events", Value(static_cast<std::int64_t>(original_events))},
      {"flight_tails", Value(flight_tails)},
      {"plan", plan.to_json()},
  };
  return Value(std::move(o));
}

std::optional<Artifact> Artifact::from_json(const Value& v) {
  const Value* version = v.find("version");
  const Value* oracle = v.find("oracle");
  const Value* plan = v.find("plan");
  if (version == nullptr || !version->is_int() ||
      version->as_int() != kVersion || oracle == nullptr ||
      !oracle->is_string() || plan == nullptr) {
    return std::nullopt;
  }
  auto p = Plan::from_json(*plan);
  if (!p) return std::nullopt;
  Artifact a;
  a.plan = std::move(*p);
  a.oracle = oracle->as_string();
  if (const Value* d = v.find("detail"); d != nullptr && d->is_string()) {
    a.detail = d->as_string();
  }
  if (const Value* at = v.find("at"); at != nullptr && at->is_int()) {
    a.at = static_cast<std::uint64_t>(at->as_int());
  }
  if (const Value* e = v.find("event_index"); e != nullptr && e->is_int()) {
    a.event_index = static_cast<std::uint64_t>(e->as_int());
  }
  if (const Value* f = v.find("fingerprint"); f != nullptr && f->is_int()) {
    a.fingerprint = static_cast<std::uint64_t>(f->as_int());
  }
  if (const Value* m = v.find("minimized"); m != nullptr && m->is_bool()) {
    a.minimized = m->as_bool();
  }
  if (const Value* oe = v.find("original_events");
      oe != nullptr && oe->is_int()) {
    a.original_events = static_cast<std::uint64_t>(oe->as_int());
  }
  if (const Value* t = v.find("flight_tails");
      t != nullptr && t->is_string()) {
    a.flight_tails = t->as_string();
  }
  return a;
}

bool Artifact::save(const std::string& path) const {
  std::ofstream f(path, std::ios::out | std::ios::trunc);
  if (!f.good()) return false;
  f << to_json().dump(2) << '\n';
  return f.good();
}

std::optional<Artifact> Artifact::load(const std::string& path) {
  std::ifstream f(path);
  if (!f.good()) return std::nullopt;
  std::ostringstream buf;
  buf << f.rdbuf();
  auto v = Value::parse(buf.str());
  if (!v) return std::nullopt;
  return from_json(*v);
}

std::string artifact_filename(std::uint64_t seed) {
  return "repro_" + std::to_string(seed) + ".json";
}

}  // namespace tiamat::chaos
