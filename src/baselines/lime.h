// LIME baseline (§4.4): transiently shared tuple spaces with *global
// consistency* and *atomic engagement*, after Picco/Murphy/Roman.
//
// "Unlike Tiamat, LIME does not do this on an opportunistic basis, rather it
// tries to ensure global consistency across hosts ... LIME also requires the
// space engagement and disengagement operations to be atomic across all
// hosts in the federated space. This means that other operations cannot
// proceed while hosts are engaging/disengaging."
//
// The model here keeps exactly those two properties: every host maintains a
// consistent replica, mutations are sequenced through a coordinator with an
// all-member acknowledgement round (global consistency), and joins/leaves
// run a pause-the-world barrier with full state transfer to the newcomer
// (atomic engagement). E4 measures how both costs grow with host count —
// the paper reports the real prototype "cannot function with more than six
// hosts forming a single federated space".

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "baselines/common.h"
#include "net/endpoint.h"
#include "tuple/index.h"
#include "tuple/waiter_index.h"

namespace tiamat::baselines {

enum LimeMsg : std::uint16_t {
  kLimeJoinReq = net::kLimeBase + 1,    ///< newcomer -> group
  kLimePause = net::kLimeBase + 2,      ///< coordinator -> members
  kLimePauseAck = net::kLimeBase + 3,
  kLimeState = net::kLimeBase + 4,      ///< member state -> newcomer
  kLimeEngageEnd = net::kLimeBase + 5,  ///< coordinator -> everyone (+list)
  kLimeLeave = net::kLimeBase + 6,
  kLimeOpFwd = net::kLimeBase + 7,      ///< originator -> coordinator
  kLimeApply = net::kLimeBase + 8,      ///< coordinator -> members (seq)
  kLimeApplyAck = net::kLimeBase + 9,
  kLimeOpResult = net::kLimeBase + 10,  ///< coordinator -> originator
};

class LimeHost {
 public:
  struct Stats {
    std::uint64_t ops_completed = 0;
    std::uint64_t ops_failed = 0;
    std::uint64_t ops_stalled_by_engagement = 0;
    std::uint64_t engagements = 0;
    transport::Duration total_engagement_stall = 0;  ///< summed pause time
    std::uint64_t state_tuples_sent = 0;
  };

  /// The first host of a federation constructs with `first=true`; later
  /// hosts call `engage()` to join.
  LimeHost(transport::Transport& net, transport::GroupId federation, bool first,
           transport::NodeOptions pos = {});

  transport::NodeId node() const { return endpoint_.node(); }
  bool engaged() const { return engaged_; }
  bool engagement_in_progress() const { return pausing_ || joining_; }
  std::size_t members() const { return members_.size(); }
  std::size_t replica_tuples() const { return replica_.size(); }

  /// Joins the federated space (atomic engagement). `done(success)` fires
  /// when the barrier completes.
  void engage(std::function<void(bool)> done = nullptr);

  /// Leaves the federation (atomic disengagement barrier, without state
  /// transfer).
  void disengage();

  // ---- Federated operations (globally consistent) ------------------------

  void out(Tuple t, std::function<void(bool)> done = nullptr);
  void rdp(const Pattern& p, MatchCb cb);
  void inp(const Pattern& p, MatchCb cb);
  void rd(const Pattern& p, transport::Time deadline, MatchCb cb);
  void in(const Pattern& p, transport::Time deadline, MatchCb cb);

  const Stats& stats() const { return stats_; }

  /// Coordinator ack-collection timeout; a silent member is expelled so
  /// the federation does not deadlock (crude failure handling).
  transport::Duration ack_timeout = transport::milliseconds(400);

 private:
  struct PendingOp {
    std::uint64_t id = 0;
    bool is_out = false;
    bool destructive = false;
    Tuple tuple;                      // for out
    std::optional<Pattern> pattern;   // for inp
    std::function<void(bool)> out_done;
    MatchCb cb;
  };

  struct CoordOp {
    std::uint64_t seq = 0;
    transport::NodeId origin = 0;
    std::uint64_t origin_op = 0;
    bool is_out = false;
    Tuple tuple;          // out payload, or the tuple removed by inp
    std::uint64_t victim = 0;  // replica key removed (0 = none)
    bool found = false;
    std::set<transport::NodeId> awaiting;
    transport::EventId timeout = transport::kInvalidEvent;
  };

  transport::NodeId coordinator() const;
  bool is_coordinator() const { return coordinator() == node(); }
  void handle(transport::NodeId from, const net::Message& m);

  // originator side
  void submit(PendingOp op);
  void flush_queue();
  std::optional<Tuple> local_match(const Pattern& p) const;
  /// Insert-or-overwrite into the replica index (map semantics).
  void replica_put(std::uint64_t key, const Tuple& t);

  // coordinator side
  void coord_sequence(transport::NodeId origin, const net::Message& m);
  void coord_maybe_finish(std::uint64_t seq);
  void begin_engagement(transport::NodeId newcomer);
  void finish_engagement();

  // member side
  void apply(const net::Message& m);

  transport::Transport& net_;
  net::Endpoint endpoint_;
  transport::TimerService& timers_;  ///< this node's timer strand
  transport::GroupId group_;
  bool engaged_ = false;

  std::set<transport::NodeId> members_;  // includes self when engaged
  std::uint64_t epoch_ = 0;        // bumped on every membership change

  // Consistent replica, stored in the shared matching engine: tuple id =
  // the federation-wide key (creator<<40 ^ seq via coordinator sequence
  // numbers), so keyed rdp/inp probe one bucket instead of scanning and the
  // coordinator's victim pick stays deterministic (first match in ascending
  // key order, exactly the old std::map scan's answer).
  tuples::TupleIndex replica_;

  // Engagement state.
  bool pausing_ = false;   // coordinator barrier in progress (all hosts)
  bool joining_ = false;   // we are the newcomer waiting for ENGAGE_END
  transport::Time pause_started_ = 0;
  std::function<void(bool)> join_done_;
  // coordinator-only engagement bookkeeping
  std::set<transport::NodeId> pause_acks_pending_;
  transport::NodeId pending_newcomer_ = 0;
  transport::EventId engage_timeout_ = transport::kInvalidEvent;

  // Operation plumbing.
  std::uint64_t next_op_ = 1;
  std::deque<PendingOp> queued_;                 // stalled by engagement
  std::map<std::uint64_t, PendingOp> in_flight_; // sent to coordinator
  std::uint64_t next_seq_ = 1;                   // coordinator sequence
  std::map<std::uint64_t, CoordOp> coord_ops_;

  // Blocking waiters (local, replica is consistent), indexed by the shared
  // engine; the pattern lives in the WaiterIndex entry.
  struct Waiter {
    bool destructive;
    transport::Time deadline;
    transport::EventId deadline_event = transport::kInvalidEvent;
    MatchCb cb;
  };
  tuples::WaiterIndex<Waiter> waiters_;
  std::uint64_t next_waiter_ = 1;
  void serve_waiters_on_insert(const Tuple& t);
  void waiter_retry_in(std::uint64_t waiter_id);

  Stats stats_;
};

}  // namespace tiamat::baselines
