#include "baselines/peers.h"

namespace tiamat::baselines {

PeersNode::PeersNode(transport::Transport& net, transport::NodeOptions pos)
    : net_(net),
      endpoint_(net, net.add_node(pos)),
      timers_(net.timers(endpoint_.node())),
      rng_(net.fork_rng()),
      space_(timers_, rng_, space::SpaceOptions{"peer", false}) {
  endpoint_.on(kPeersRequest, [this](transport::NodeId from, const net::Message& m) {
    handle_request(from, m);
  });
  endpoint_.on(kPeersResponse,
               [this](transport::NodeId from, const net::Message& m) {
                 handle_response(from, m);
               });
}

void PeersNode::lookup(const Pattern& p, int ttl, transport::Duration lease,
                       MatchCb cb, bool destructive) {
  ++stats_.requests_originated;
  // Local space first — free.
  auto local = destructive ? space_.inp(p) : space_.rdp(p);
  if (local) {
    ++stats_.hits;
    cb(local);
    return;
  }
  const std::uint64_t op = next_op_++;
  Origin o;
  o.cb = std::move(cb);
  o.lease_event = timers_.schedule_after(lease, [this, op] {
    auto it = origins_.find(op);
    if (it == origins_.end()) return;
    auto cb2 = std::move(it->second.cb);
    origins_.erase(it);
    ++stats_.timeouts;
    cb2(std::nullopt);  // the fault-tolerance lease expired
  });
  origins_.emplace(op, std::move(o));

  net::Message m;
  m.type = kPeersRequest;
  m.op_id = op;
  m.origin = node();
  m.h(static_cast<std::int64_t>(ttl));
  m.h(destructive);
  m.pattern = p;
  seen_.insert(OpKeyHash{}(OpKey{node(), op}));
  forward(m, transport::kNoNode);
}

void PeersNode::forward(const net::Message& m, transport::NodeId except) {
  for (transport::NodeId n : net_.visible_from(node())) {
    if (n == except || n == m.origin) continue;
    ++stats_.requests_forwarded;
    endpoint_.send(n, m);
  }
}

void PeersNode::handle_request(transport::NodeId from, const net::Message& m) {
  if (!m.pattern || m.headers.size() < 2) return;
  const OpKey key{m.origin, m.op_id};
  const std::uint64_t kh = OpKeyHash{}(key);
  if (seen_.contains(kh)) {
    ++stats_.duplicates_suppressed;
    return;
  }
  seen_.insert(kh);
  route_back_[key] = from;

  const bool destructive = m.hbool(1);
  auto local = destructive ? space_.inp(*m.pattern) : space_.rdp(*m.pattern);
  if (local) {
    ++stats_.responses_sent;
    net::Message r;
    r.type = kPeersResponse;
    r.op_id = m.op_id;
    r.origin = m.origin;  // route target
    r.h(true);
    r.tuple = *local;
    endpoint_.send(from, r);  // back along the reverse path
    return;
  }

  const int ttl = static_cast<int>(m.hint(0));
  if (ttl <= 1) return;  // flood exhausted here
  net::Message fwd = m;
  fwd.headers[0] = tuples::Value(static_cast<std::int64_t>(ttl - 1));
  forward(fwd, from);
}

void PeersNode::handle_response(transport::NodeId, const net::Message& m) {
  if (m.origin == node()) {
    // It is ours.
    auto it = origins_.find(m.op_id);
    if (it == origins_.end()) return;  // late duplicate: dropped
    if (it->second.lease_event != transport::kInvalidEvent) {
      timers_.cancel(it->second.lease_event);
    }
    auto cb = std::move(it->second.cb);
    origins_.erase(it);
    ++stats_.hits;
    if (m.tuple) {
      cb(*m.tuple);
    } else {
      cb(std::nullopt);
    }
    return;
  }
  // Relay along the reverse path.
  auto it = route_back_.find(OpKey{m.origin, m.op_id});
  if (it == route_back_.end()) return;  // route evaporated
  ++stats_.responses_sent;
  endpoint_.send(it->second, m);
}

}  // namespace tiamat::baselines
