#include "baselines/corelime.h"

namespace tiamat::baselines {

CoreLimeHost::CoreLimeHost(transport::Transport& net, transport::NodeOptions pos)
    : net_(net),
      endpoint_(net, net.add_node(pos)),
      timers_(net.timers(endpoint_.node())),
      rng_(net.fork_rng()),
      space_(timers_, rng_, space::SpaceOptions{"corelime-host", false}),
      correlator_(timers_) {
  endpoint_.on(kAgentGo, [this](transport::NodeId from, const net::Message& m) {
    handle(from, m);
  });
  endpoint_.on(kAgentReturn,
               [this](transport::NodeId from, const net::Message& m) {
                 correlator_.route(from, m);
               });
}

void CoreLimeHost::agent_op(transport::NodeId dest, bool destructive,
                            const Pattern& p, MatchCb cb,
                            transport::Duration timeout) {
  ++stats_.agents_sent;
  const std::uint64_t id = correlator_.next_op_id();
  net::Message m;
  m.type = kAgentGo;
  m.op_id = id;
  m.origin = node();
  m.h(destructive);
  // Model the agent's code+state shipped with the migration.
  m.h(tuples::Value(tuples::Blob(agent_code_size, 0xA6)));
  m.pattern = p;
  correlator_.expect(
      id,
      [cb](transport::NodeId, const net::Message& r) {
        if (!r.headers.empty() && r.hbool(0) && r.tuple) {
          cb(*r.tuple);
        } else {
          cb(std::nullopt);
        }
        return false;
      },
      net_.now() + timeout,
      [this, cb] {
        ++stats_.agents_lost;
        cb(std::nullopt);
      });
  endpoint_.send(dest, m);
}

void CoreLimeHost::handle(transport::NodeId from, const net::Message& m) {
  if (!m.pattern || m.headers.empty()) return;
  ++stats_.agents_hosted;
  const bool destructive = m.hbool(0);
  // The agent engages with the host-level space and performs its op.
  std::optional<Tuple> result =
      destructive ? space_.inp(*m.pattern) : space_.rdp(*m.pattern);
  // ... then migrates home carrying the result (and its own code again —
  // the same payload it arrived with, not this host's default).
  const std::size_t incoming_code =
      m.headers.size() > 1 && m.headers[1].is_blob()
          ? m.headers[1].as_blob().size()
          : agent_code_size;
  net::Message back;
  back.type = kAgentReturn;
  back.op_id = m.op_id;
  back.origin = node();
  back.h(result.has_value());
  back.h(tuples::Value(tuples::Blob(incoming_code, 0xA6)));
  if (result) back.tuple = *result;
  endpoint_.send(from, back);
}

}  // namespace tiamat::baselines
