// Centralised client/server tuple space — the TSpaces / JavaSpaces shape
// (§4.2): "Both systems offer the tuple space abstraction to devices on a
// client/server basis. ... centralised architectures, where one machine must
// be visible to all others, are not appropriate in a mobile environment."
//
// One server node owns the space; clients RPC every operation to it. When
// the server is not visible the operation fails — exactly the availability
// weakness E11 measures.

#pragma once

#include <cstdint>

#include "baselines/common.h"
#include "net/endpoint.h"
#include "net/rpc.h"
#include "space/local_space.h"

namespace tiamat::baselines {

/// Message codes (central block).
enum CentralMsg : std::uint16_t {
  kCentralOut = net::kCentralBase + 1,
  kCentralRdp = net::kCentralBase + 2,
  kCentralInp = net::kCentralBase + 3,
  kCentralRd = net::kCentralBase + 4,
  kCentralIn = net::kCentralBase + 5,
  kCentralReply = net::kCentralBase + 6,
  kCentralOutAck = net::kCentralBase + 7,
};

class CentralServer {
 public:
  explicit CentralServer(sim::Network& net, sim::Position pos = {});

  sim::NodeId node() const { return endpoint_.node(); }
  space::LocalTupleSpace& space() { return space_; }

  struct Stats {
    std::uint64_t ops_served = 0;
    std::uint64_t waiters_created = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void handle(sim::NodeId from, const net::Message& m);
  void reply(sim::NodeId to, std::uint64_t op_id,
             const std::optional<Tuple>& t);

  sim::Network& net_;
  net::Endpoint endpoint_;
  sim::Rng rng_;
  space::LocalTupleSpace space_;
  Stats stats_;
};

class CentralClient {
 public:
  CentralClient(sim::Network& net, sim::NodeId server, sim::Position pos = {});

  sim::NodeId node() const { return endpoint_.node(); }

  /// Fire-and-forget out with ack tracking. `cb` (optional) reports whether
  /// the server acknowledged within the timeout.
  void out(Tuple t, std::function<void(bool)> cb = nullptr);

  void rdp(const Pattern& p, MatchCb cb);
  void inp(const Pattern& p, MatchCb cb);
  /// Blocking forms carry an absolute deadline enforced server-side; the
  /// client also times out locally (covers server loss).
  void rd(const Pattern& p, sim::Time deadline, MatchCb cb);
  void in(const Pattern& p, sim::Time deadline, MatchCb cb);

  struct Stats {
    std::uint64_t ops = 0;
    std::uint64_t failures = 0;  ///< timeout / server unreachable
  };
  const Stats& stats() const { return stats_; }

  /// Extra slack past the deadline before declaring the server lost.
  sim::Duration rpc_timeout = sim::milliseconds(200);

 private:
  void request(std::uint16_t type, const Pattern& p, sim::Time deadline,
               MatchCb cb);

  sim::Network& net_;
  net::Endpoint endpoint_;
  net::Correlator correlator_;
  sim::NodeId server_;
  Stats stats_;
};

}  // namespace tiamat::baselines
