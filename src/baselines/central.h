// Centralised client/server tuple space — the TSpaces / JavaSpaces shape
// (§4.2): "Both systems offer the tuple space abstraction to devices on a
// client/server basis. ... centralised architectures, where one machine must
// be visible to all others, are not appropriate in a mobile environment."
//
// One server node owns the space; clients RPC every operation to it. When
// the server is not visible the operation fails — exactly the availability
// weakness E11 measures.

#pragma once

#include <cstdint>

#include "baselines/common.h"
#include "net/endpoint.h"
#include "net/rpc.h"
#include "space/local_space.h"

namespace tiamat::baselines {

/// Message codes (central block).
enum CentralMsg : std::uint16_t {
  kCentralOut = net::kCentralBase + 1,
  kCentralRdp = net::kCentralBase + 2,
  kCentralInp = net::kCentralBase + 3,
  kCentralRd = net::kCentralBase + 4,
  kCentralIn = net::kCentralBase + 5,
  kCentralReply = net::kCentralBase + 6,
  kCentralOutAck = net::kCentralBase + 7,
};

class CentralServer {
 public:
  explicit CentralServer(transport::Transport& net, transport::NodeOptions pos = {});

  transport::NodeId node() const { return endpoint_.node(); }
  space::LocalTupleSpace& space() { return space_; }

  struct Stats {
    std::uint64_t ops_served = 0;
    std::uint64_t waiters_created = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void handle(transport::NodeId from, const net::Message& m);
  void reply(transport::NodeId to, std::uint64_t op_id,
             const std::optional<Tuple>& t);

  transport::Transport& net_;
  net::Endpoint endpoint_;
  transport::TimerService& timers_;  ///< this node's timer strand
  transport::Rng rng_;
  space::LocalTupleSpace space_;
  Stats stats_;
};

class CentralClient {
 public:
  CentralClient(transport::Transport& net, transport::NodeId server, transport::NodeOptions pos = {});

  transport::NodeId node() const { return endpoint_.node(); }

  /// Fire-and-forget out with ack tracking. `cb` (optional) reports whether
  /// the server acknowledged within the timeout.
  void out(Tuple t, std::function<void(bool)> cb = nullptr);

  void rdp(const Pattern& p, MatchCb cb);
  void inp(const Pattern& p, MatchCb cb);
  /// Blocking forms carry an absolute deadline enforced server-side; the
  /// client also times out locally (covers server loss).
  void rd(const Pattern& p, transport::Time deadline, MatchCb cb);
  void in(const Pattern& p, transport::Time deadline, MatchCb cb);

  struct Stats {
    std::uint64_t ops = 0;
    std::uint64_t failures = 0;  ///< timeout / server unreachable
  };
  const Stats& stats() const { return stats_; }

  /// Extra slack past the deadline before declaring the server lost.
  transport::Duration rpc_timeout = transport::milliseconds(200);

 private:
  void request(std::uint16_t type, const Pattern& p, transport::Time deadline,
               MatchCb cb);

  transport::Transport& net_;
  net::Endpoint endpoint_;
  transport::TimerService& timers_;  ///< this node's timer strand
  net::Correlator correlator_;
  transport::NodeId server_;
  Stats stats_;
};

}  // namespace tiamat::baselines
