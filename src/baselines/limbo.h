// L²imbo baseline (§4.3): a replicated tuple space over multicast with
// tuple ownership, after Davies et al.'s Distributed Tuple Space protocol.
//
// "Each tuple space has its own multicast group, and clients attempt to
// maintain a consistent replica of the space by multicasting a copy of every
// operation to the group. ... Each tuple has a single owner ... only the
// owner of a tuple may remove it from the space. ... The client must retain
// information as to which tuples were removed during its disconnection so
// that it can inform others ... After reconnection, the client ... requests
// copies of any new tuples."
//
// The paper's criticisms that E5 measures fall straight out of this design:
// every node stores the whole space (replica burden), a removed tuple can
// still be read at a node that missed the DEL (stale reads), and a departed
// owner's tuples are stuck forever.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "baselines/common.h"
#include "net/endpoint.h"
#include "tuple/index.h"
#include "tuple/waiter_index.h"

namespace tiamat::baselines {

enum LimboMsg : std::uint16_t {
  kLimboAdd = net::kLimboBase + 1,
  kLimboDel = net::kLimboBase + 2,
  kLimboSyncReq = net::kLimboBase + 3,
  kLimboSyncState = net::kLimboBase + 4,
  kLimboTransfer = net::kLimboBase + 5,
};

/// Globally unique tuple identity: creator node + creator-local sequence.
struct GlobalId {
  transport::NodeId creator = 0;
  std::uint64_t seq = 0;

  std::uint64_t key() const {
    return (static_cast<std::uint64_t>(creator) << 40) ^ seq;
  }
  friend bool operator==(const GlobalId& a, const GlobalId& b) {
    return a.creator == b.creator && a.seq == b.seq;
  }
};

class LimboNode {
 public:
  LimboNode(transport::Transport& net, transport::GroupId space_group,
            transport::NodeOptions pos = {});

  transport::NodeId node() const { return endpoint_.node(); }

  // ---- Operations (all answered from the local replica) -----------------

  GlobalId out(Tuple t);

  /// Read from the local replica — instant, but possibly stale.
  std::optional<Tuple> rd(const Pattern& p);

  /// Read that also reports identity (the stale-read oracle uses this).
  std::optional<std::pair<GlobalId, Tuple>> rd_with_id(const Pattern& p);

  /// Blocking read: waits for a replica insert until `deadline`.
  void rd_blocking(const Pattern& p, transport::Time deadline, MatchCb cb);

  /// Take: permitted only on tuples this node owns (§4.3).
  std::optional<Tuple> in_owned(const Pattern& p);

  /// Hands ownership of a tuple to another node. Requires knowing (and
  /// being able to reach) the recipient — the decoupling break the paper
  /// criticises. Returns false if the tuple is not present or not ours.
  bool transfer_ownership(const GlobalId& id, transport::NodeId new_owner);

  // ---- Disconnected operation -------------------------------------------

  /// Explicit disconnect: operations continue against the replica and are
  /// logged. The node's radio is switched off.
  void disconnect();

  /// Reconnect: replays the op log to the group and requests a state sync.
  void reconnect();

  bool connected() const { return connected_; }

  // ---- Introspection (E5) --------------------------------------------------

  std::size_t replica_tuples() const { return replica_.size(); }
  std::size_t replica_bytes() const { return replica_.total_footprint(); }
  std::size_t owned_tuples() const;
  std::size_t tombstones() const { return tombstones_.size(); }

  struct Stats {
    std::uint64_t adds_sent = 0;
    std::uint64_t dels_sent = 0;
    std::uint64_t sync_requests = 0;
    std::uint64_t sync_tuples_received = 0;
    std::uint64_t log_replays = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Waiter {
    MatchCb cb;
    transport::EventId deadline_event = transport::kInvalidEvent;
  };

  void apply_add(const GlobalId& id, Tuple t, transport::NodeId owner);
  void apply_del(const GlobalId& id);
  void broadcast_add(const GlobalId& id, const Tuple& t, transport::NodeId owner);
  void broadcast_del(const GlobalId& id);
  void handle(transport::NodeId from, const net::Message& m);
  void serve_waiters(const Tuple& t);

  transport::Transport& net_;
  net::Endpoint endpoint_;
  transport::TimerService& timers_;  ///< this node's timer strand
  transport::GroupId group_;
  bool connected_ = true;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_waiter_ = 1;

  // Replica stored in the shared matching engine, keyed by GlobalId::key():
  // keyed rd/in probe one hash bucket instead of scanning every tuple, and
  // ascending-key iteration reproduces the old std::map scan order. Owner
  // and full-id bookkeeping ride in side maps.
  tuples::TupleIndex replica_;
  std::map<std::uint64_t, transport::NodeId> owners_;  // key() -> owner
  std::map<std::uint64_t, GlobalId> ids_;        // key() -> full id
  std::set<std::uint64_t> tombstones_;
  tuples::WaiterIndex<Waiter> waiters_;

  /// Ops performed while disconnected, replayed on reconnect.
  std::vector<net::Message> oplog_;

  Stats stats_;
};

}  // namespace tiamat::baselines
