// Shared surface for the §4 baseline systems.
//
// Each baseline implements the paper's description of a competing
// distributed tuple-space architecture over the *same* simulator substrate
// as Tiamat, so the comparison benches measure architecture, not substrate.

#pragma once

#include <functional>
#include <optional>

#include "transport/types.h"
#include "transport/transport.h"
#include "tuple/pattern.h"
#include "tuple/tuple.h"

namespace tiamat::baselines {

using tuples::Pattern;
using tuples::Tuple;

/// Callback for read/take operations: the tuple, or nullopt on
/// miss/timeout/failure.
using MatchCb = std::function<void(std::optional<Tuple>)>;

}  // namespace tiamat::baselines
