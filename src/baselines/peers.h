// Peers baseline (§4.6): JXTA-style peer-to-peer tuple lookup by flooding.
//
// "Each JXTA node contains a tuple space and reading operations are sent out
// in a flooding broadcast to other nodes in the network in order to find
// matches. While Peers does include the concept of leasing while searching
// the network, it is included only to ensure fault-tolerance."
//
// Requests flood hop-by-hop with a TTL, duplicate-suppressed by op id;
// responses route back along the reverse path. The per-operation "lease" is
// just a timeout, exactly as the paper characterises it. E6 compares this
// traffic pattern against Tiamat's cached responder list.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "baselines/common.h"
#include "net/endpoint.h"
#include "space/local_space.h"

namespace tiamat::baselines {

enum PeersMsg : std::uint16_t {
  kPeersRequest = net::kPeersBase + 1,
  kPeersResponse = net::kPeersBase + 2,
};

class PeersNode {
 public:
  struct Stats {
    std::uint64_t requests_originated = 0;
    std::uint64_t requests_forwarded = 0;
    std::uint64_t duplicates_suppressed = 0;
    std::uint64_t responses_sent = 0;
    std::uint64_t hits = 0;
    std::uint64_t timeouts = 0;
  };

  explicit PeersNode(transport::Transport& net, transport::NodeOptions pos = {});

  transport::NodeId node() const { return endpoint_.node(); }
  space::LocalTupleSpace& space() { return space_; }

  void out(Tuple t) { space_.out(std::move(t)); }

  /// Flooding lookup. `destructive` removes at the responding node (naive:
  /// concurrent floods can remove several copies — a known weakness of the
  /// scheme). `lease` is the fault-tolerance timeout; the first response
  /// wins, later ones are dropped.
  void lookup(const Pattern& p, int ttl, transport::Duration lease, MatchCb cb,
              bool destructive = false);

  const Stats& stats() const { return stats_; }

 private:
  struct OpKey {
    transport::NodeId origin;
    std::uint64_t op;
    bool operator==(const OpKey& o) const {
      return origin == o.origin && op == o.op;
    }
  };
  struct OpKeyHash {
    std::size_t operator()(const OpKey& k) const {
      return (static_cast<std::size_t>(k.origin) << 32) ^ k.op;
    }
  };

  void handle_request(transport::NodeId from, const net::Message& m);
  void handle_response(transport::NodeId from, const net::Message& m);
  void forward(const net::Message& m, transport::NodeId except);

  transport::Transport& net_;
  net::Endpoint endpoint_;
  transport::TimerService& timers_;  ///< this node's timer strand
  transport::Rng rng_;
  space::LocalTupleSpace space_;
  std::uint64_t next_op_ = 1;

  /// Reverse-path routing state: who to send a response back through.
  std::unordered_map<OpKey, transport::NodeId, OpKeyHash> route_back_;
  std::unordered_set<std::uint64_t> seen_;  // OpKeyHash values (dedupe)

  struct Origin {
    MatchCb cb;
    transport::EventId lease_event = transport::kInvalidEvent;
  };
  std::unordered_map<std::uint64_t, Origin> origins_;  // my own op id -> cb

  Stats stats_;
};

}  // namespace tiamat::baselines
