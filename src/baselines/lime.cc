#include "baselines/lime.h"

#include <algorithm>

namespace tiamat::baselines {

LimeHost::LimeHost(transport::Transport& net, transport::GroupId federation, bool first,
                   transport::NodeOptions pos)
    : net_(net), endpoint_(net, net.add_node(pos)),
      timers_(net.timers(endpoint_.node())), group_(federation) {
  auto handler = [this](transport::NodeId from, const net::Message& m) {
    handle(from, m);
  };
  for (std::uint16_t t = net::kLimeBase + 1; t <= net::kLimeBase + 10; ++t) {
    endpoint_.on(t, handler);
  }
  if (first) {
    endpoint_.join_group(group_);
    engaged_ = true;
    members_.insert(node());
  }
}

transport::NodeId LimeHost::coordinator() const {
  if (members_.empty()) return node();
  return *members_.begin();  // lowest node id
}

// ---- Engagement -----------------------------------------------------------------

void LimeHost::engage(std::function<void(bool)> done) {
  if (engaged_) {
    if (done) done(true);
    return;
  }
  join_done_ = std::move(done);
  joining_ = true;
  pause_started_ = net_.now();
  endpoint_.join_group(group_);
  net::Message m;
  m.type = kLimeJoinReq;
  m.origin = node();
  endpoint_.multicast(group_, m);
  // Retry until some coordinator lets us in (it may be mid-engagement).
  engage_timeout_ = timers_.schedule_after(transport::seconds(1), [this] {
    engage_timeout_ = transport::kInvalidEvent;
    if (joining_) {
      joining_ = false;
      engage(std::move(join_done_));
    }
  });
}

void LimeHost::begin_engagement(transport::NodeId newcomer) {
  if (pausing_) return;  // barrier already running; newcomer will retry
  ++stats_.engagements;
  pausing_ = true;
  pause_started_ = net_.now();
  pending_newcomer_ = newcomer;
  pause_acks_pending_.clear();
  for (transport::NodeId m : members_) {
    if (m == node()) continue;
    pause_acks_pending_.insert(m);
    net::Message p;
    p.type = kLimePause;
    p.origin = node();
    p.h(static_cast<std::int64_t>(newcomer));
    endpoint_.send(m, p);
  }
  if (pause_acks_pending_.empty()) {
    finish_engagement();
  } else {
    // Expel silent members rather than deadlock.
    timers_.schedule_after(ack_timeout, [this, newcomer] {
      if (pausing_ && pending_newcomer_ == newcomer &&
          !pause_acks_pending_.empty()) {
        for (transport::NodeId dead : pause_acks_pending_) members_.erase(dead);
        pause_acks_pending_.clear();
        finish_engagement();
      }
    });
  }
}

void LimeHost::finish_engagement() {
  // Full state transfer to the newcomer (atomic engagement's big cost).
  replica_.for_each([&](tuples::TupleId key, const Tuple& t) {
    net::Message s;
    s.type = kLimeState;
    s.origin = node();
    s.h(static_cast<std::int64_t>(key));
    s.tuple = t;
    endpoint_.send(pending_newcomer_, s);
    ++stats_.state_tuples_sent;
  });
  members_.insert(pending_newcomer_);
  ++epoch_;
  net::Message end;
  end.type = kLimeEngageEnd;
  end.origin = node();
  for (transport::NodeId m : members_) end.h(static_cast<std::int64_t>(m));
  endpoint_.multicast(group_, end);
  // Apply locally too (multicast skips the sender).
  stats_.total_engagement_stall += net_.now() - pause_started_;
  pausing_ = false;
  pending_newcomer_ = 0;
  flush_queue();
}

void LimeHost::disengage() {
  if (!engaged_) return;
  net::Message m;
  m.type = kLimeLeave;
  m.origin = node();
  endpoint_.multicast(group_, m);
  endpoint_.leave_group(group_);
  engaged_ = false;
  members_.clear();
  replica_ = tuples::TupleIndex{};
}

// ---- Operations (originator side) ----------------------------------------------------

std::optional<Tuple> LimeHost::local_match(const Pattern& p) const {
  auto key = replica_.find_first(p);
  if (!key) return std::nullopt;
  return *replica_.get(*key);
}

void LimeHost::replica_put(std::uint64_t key, const Tuple& t) {
  // Replays (state transfer after re-engagement, duplicated applies) may
  // re-send a key the replica already holds; last write wins, as it did
  // when the replica was a plain map.
  replica_.erase(key);
  replica_.insert(key, t);
}

void LimeHost::out(Tuple t, std::function<void(bool)> done) {
  PendingOp op;
  op.is_out = true;
  op.tuple = std::move(t);
  op.out_done = std::move(done);
  submit(std::move(op));
}

void LimeHost::rdp(const Pattern& p, MatchCb cb) {
  PendingOp op;
  op.pattern = p;
  op.cb = std::move(cb);
  submit(std::move(op));
}

void LimeHost::inp(const Pattern& p, MatchCb cb) {
  PendingOp op;
  op.destructive = true;
  op.pattern = p;
  op.cb = std::move(cb);
  submit(std::move(op));
}

void LimeHost::submit(PendingOp op) {
  if (!engaged_ && !joining_) {
    ++stats_.ops_failed;
    if (op.is_out) {
      if (op.out_done) op.out_done(false);
    } else if (op.cb) {
      op.cb(std::nullopt);
    }
    return;
  }
  if (pausing_ || joining_) {
    // "Other operations cannot proceed while hosts are engaging."
    ++stats_.ops_stalled_by_engagement;
    queued_.push_back(std::move(op));
    return;
  }
  if (!op.is_out && !op.destructive) {
    // rdp: the replica is consistent; answer locally.
    ++stats_.ops_completed;
    op.cb(local_match(*op.pattern));
    return;
  }
  op.id = next_op_++;
  net::Message m;
  m.type = kLimeOpFwd;
  m.op_id = op.id;
  m.origin = node();
  m.h(op.is_out);
  if (op.is_out) {
    m.tuple = op.tuple;
  } else {
    m.pattern = *op.pattern;
  }
  const transport::NodeId coord = coordinator();
  in_flight_.emplace(op.id, std::move(op));
  if (coord == node()) {
    coord_sequence(node(), m);
  } else {
    endpoint_.send(coord, m);
  }
  // Originator-side failure timeout (coordinator loss).
  const std::uint64_t op_id = m.op_id;
  timers_.schedule_after(ack_timeout * 3, [this, op_id] {
    auto it = in_flight_.find(op_id);
    if (it == in_flight_.end()) return;
    PendingOp failed = std::move(it->second);
    in_flight_.erase(it);
    ++stats_.ops_failed;
    if (failed.is_out) {
      if (failed.out_done) failed.out_done(false);
    } else if (failed.cb) {
      failed.cb(std::nullopt);
    }
  });
}

void LimeHost::flush_queue() {
  auto q = std::move(queued_);
  queued_.clear();
  for (auto& op : q) submit(std::move(op));
}

// ---- Coordinator side ------------------------------------------------------------------

void LimeHost::coord_sequence(transport::NodeId origin, const net::Message& m) {
  CoordOp c;
  c.seq = next_seq_++;
  c.origin = origin;
  c.origin_op = m.op_id;
  c.is_out = !m.headers.empty() && m.hbool(0);

  net::Message apply;
  apply.type = kLimeApply;
  apply.op_id = c.seq;
  apply.origin = node();

  if (c.is_out) {
    if (!m.tuple) return;
    c.tuple = *m.tuple;
    c.found = true;
    const std::uint64_t key = (static_cast<std::uint64_t>(origin) << 40) ^
                              c.seq;
    c.victim = key;
    apply.h(true);
    apply.h(static_cast<std::int64_t>(key));
    apply.tuple = c.tuple;
    replica_put(key, c.tuple);
    serve_waiters_on_insert(c.tuple);
  } else {
    if (!m.pattern) return;
    // Pick the victim here so every member removes the *same* tuple. The
    // engine yields the first match in ascending key order — the same
    // tuple the old whole-replica scan chose.
    std::uint64_t victim = 0;
    if (auto key = replica_.find_first(*m.pattern)) {
      victim = *key;
      c.tuple = *replica_.get(*key);
    }
    if (victim == 0) {
      // No match federation-wide (replica is authoritative).
      net::Message res;
      res.type = kLimeOpResult;
      res.op_id = c.origin_op;
      res.origin = node();
      res.h(false);
      if (origin == node()) {
        handle(node(), res);
      } else {
        endpoint_.send(origin, res);
      }
      return;
    }
    c.victim = victim;
    c.found = true;
    apply.h(false);
    apply.h(static_cast<std::int64_t>(victim));
    replica_.erase(victim);
  }

  for (transport::NodeId member : members_) {
    if (member == node()) continue;
    c.awaiting.insert(member);
    endpoint_.send(member, apply);
  }
  const std::uint64_t seq = c.seq;
  if (!c.awaiting.empty()) {
    c.timeout = timers_.schedule_after(ack_timeout, [this, seq] {
      auto it = coord_ops_.find(seq);
      if (it == coord_ops_.end()) return;
      // Expel silent members and finish.
      for (transport::NodeId dead : it->second.awaiting) members_.erase(dead);
      it->second.awaiting.clear();
      ++epoch_;
      coord_maybe_finish(seq);
    });
  }
  coord_ops_.emplace(seq, std::move(c));
  coord_maybe_finish(seq);
}

void LimeHost::coord_maybe_finish(std::uint64_t seq) {
  auto it = coord_ops_.find(seq);
  if (it == coord_ops_.end() || !it->second.awaiting.empty()) return;
  CoordOp c = std::move(it->second);
  coord_ops_.erase(it);
  if (c.timeout != transport::kInvalidEvent) timers_.cancel(c.timeout);
  net::Message res;
  res.type = kLimeOpResult;
  res.op_id = c.origin_op;
  res.origin = node();
  res.h(c.found);
  if (c.found && !c.is_out) res.tuple = c.tuple;
  if (c.origin == node()) {
    handle(node(), res);
  } else {
    endpoint_.send(c.origin, res);
  }
}

// ---- Member side ---------------------------------------------------------------------------

void LimeHost::apply(const net::Message& m) {
  if (m.headers.size() < 2) return;
  const bool is_out = m.hbool(0);
  const std::uint64_t key = static_cast<std::uint64_t>(m.hint(1));
  if (is_out) {
    if (!m.tuple) return;
    replica_put(key, *m.tuple);
    serve_waiters_on_insert(*m.tuple);
  } else {
    replica_.erase(key);
  }
}

// ---- Blocking waiters -------------------------------------------------------------------------

void LimeHost::rd(const Pattern& p, transport::Time deadline, MatchCb cb) {
  if (auto t = local_match(p)) {
    cb(t);
    return;
  }
  if (deadline <= net_.now()) {
    cb(std::nullopt);
    return;
  }
  const std::uint64_t wid = next_waiter_++;
  Waiter w;
  w.destructive = false;
  w.deadline = deadline;
  w.cb = std::move(cb);
  w.deadline_event = timers_.schedule_at(deadline, [this, wid] {
    if (auto e = waiters_.extract(wid)) e->payload.cb(std::nullopt);
  });
  waiters_.add(wid, tuples::CompiledPattern(p), std::move(w));
}

void LimeHost::in(const Pattern& p, transport::Time deadline, MatchCb cb) {
  // Optimistic: try a coordinated take; if the federation has no match,
  // wait for an insert and retry.
  inp(p, [this, p, deadline, cb](std::optional<Tuple> t) {
    if (t) {
      cb(t);
      return;
    }
    if (deadline <= net_.now()) {
      cb(std::nullopt);
      return;
    }
    const std::uint64_t wid = next_waiter_++;
    Waiter w;
    w.destructive = true;
    w.deadline = deadline;
    w.cb = cb;
    w.deadline_event = timers_.schedule_at(deadline, [this, wid] {
      if (auto e = waiters_.extract(wid)) e->payload.cb(std::nullopt);
    });
    waiters_.add(wid, tuples::CompiledPattern(p), std::move(w));
  });
}

void LimeHost::serve_waiters_on_insert(const Tuple& t) {
  // Non-destructive waiters get copies; destructive waiters re-run their
  // coordinated take (they may lose the race and re-arm). The waiter index
  // yields candidates oldest-first from the tuple's bucket plus the
  // unkeyed overflow.
  std::vector<std::uint64_t> retries;
  for (std::uint64_t wid : waiters_.candidates(t)) {
    const tuples::CompiledPattern* cp = waiters_.pattern_of(wid);
    if (cp == nullptr || !cp->matches(t)) continue;
    if (waiters_.payload(wid)->destructive) {
      retries.push_back(wid);
      continue;
    }
    auto e = waiters_.extract(wid);
    if (e->payload.deadline_event != transport::kInvalidEvent) {
      timers_.cancel(e->payload.deadline_event);
    }
    e->payload.cb(t);
  }
  for (std::uint64_t wid : retries) waiter_retry_in(wid);
}

void LimeHost::waiter_retry_in(std::uint64_t waiter_id) {
  auto e = waiters_.extract(waiter_id);
  if (!e) return;
  if (e->payload.deadline_event != transport::kInvalidEvent) {
    timers_.cancel(e->payload.deadline_event);
  }
  // Re-runs the coordinated take.
  in(e->pattern.pattern(), e->payload.deadline, std::move(e->payload.cb));
}

// ---- Dispatch ------------------------------------------------------------------------------------

void LimeHost::handle(transport::NodeId from, const net::Message& m) {
  switch (m.type) {
    case kLimeJoinReq:
      if (engaged_ && is_coordinator()) begin_engagement(m.origin);
      return;
    case kLimePause: {
      if (!engaged_) return;
      if (!pausing_) {
        pausing_ = true;
        pause_started_ = net_.now();
      }
      net::Message ack;
      ack.type = kLimePauseAck;
      ack.origin = node();
      endpoint_.send(from, ack);
      return;
    }
    case kLimePauseAck: {
      pause_acks_pending_.erase(from);
      if (pausing_ && pending_newcomer_ != 0 && pause_acks_pending_.empty()) {
        finish_engagement();
      }
      return;
    }
    case kLimeState: {
      if (m.tuple && m.headers.size() >= 1) {
        replica_put(static_cast<std::uint64_t>(m.hint(0)), *m.tuple);
        serve_waiters_on_insert(*m.tuple);
      }
      return;
    }
    case kLimeEngageEnd: {
      members_.clear();
      for (const auto& h : m.headers) {
        members_.insert(static_cast<transport::NodeId>(h.as_int()));
      }
      ++epoch_;
      if (joining_ && members_.contains(node())) {
        joining_ = false;
        engaged_ = true;
        if (engage_timeout_ != transport::kInvalidEvent) {
          timers_.cancel(engage_timeout_);
          engage_timeout_ = transport::kInvalidEvent;
        }
        stats_.total_engagement_stall += net_.now() - pause_started_;
        if (join_done_) {
          auto d = std::move(join_done_);
          join_done_ = nullptr;
          d(true);
        }
      }
      if (pausing_) {
        pausing_ = false;
        stats_.total_engagement_stall += net_.now() - pause_started_;
      }
      flush_queue();
      return;
    }
    case kLimeLeave: {
      members_.erase(m.origin);
      ++epoch_;
      return;
    }
    case kLimeOpFwd:
      if (engaged_ && is_coordinator()) coord_sequence(m.origin, m);
      return;
    case kLimeApply: {
      apply(m);
      net::Message ack;
      ack.type = kLimeApplyAck;
      ack.op_id = m.op_id;
      ack.origin = node();
      if (from == node()) return;
      endpoint_.send(from, ack);
      return;
    }
    case kLimeApplyAck: {
      auto it = coord_ops_.find(m.op_id);
      if (it == coord_ops_.end()) return;
      it->second.awaiting.erase(m.origin);
      coord_maybe_finish(m.op_id);
      return;
    }
    case kLimeOpResult: {
      auto it = in_flight_.find(m.op_id);
      if (it == in_flight_.end()) return;
      PendingOp op = std::move(it->second);
      in_flight_.erase(it);
      ++stats_.ops_completed;
      const bool found = !m.headers.empty() && m.hbool(0);
      if (op.is_out) {
        if (op.out_done) op.out_done(found);
      } else if (op.cb) {
        if (found && m.tuple) {
          op.cb(*m.tuple);
        } else {
          op.cb(std::nullopt);
        }
      }
      return;
    }
    default:
      return;
  }
}

}  // namespace tiamat::baselines
