#include "baselines/central.h"

namespace tiamat::baselines {

CentralServer::CentralServer(transport::Transport& net, transport::NodeOptions pos)
    : net_(net),
      endpoint_(net, net.add_node(pos)),
      timers_(net.timers(endpoint_.node())),
      rng_(net.fork_rng()),
      space_(timers_, rng_, space::SpaceOptions{"central", true}) {
  auto handler = [this](transport::NodeId from, const net::Message& m) {
    handle(from, m);
  };
  for (std::uint16_t t :
       {kCentralOut, kCentralRdp, kCentralInp, kCentralRd, kCentralIn}) {
    endpoint_.on(t, handler);
  }
}

void CentralServer::reply(transport::NodeId to, std::uint64_t op_id,
                          const std::optional<Tuple>& t) {
  net::Message r;
  r.type = kCentralReply;
  r.op_id = op_id;
  r.origin = node();
  r.h(t.has_value());
  if (t) r.tuple = *t;
  endpoint_.send(to, r);
}

void CentralServer::handle(transport::NodeId from, const net::Message& m) {
  ++stats_.ops_served;
  switch (m.type) {
    case kCentralOut: {
      if (m.tuple) space_.out(*m.tuple);
      net::Message ack;
      ack.type = kCentralOutAck;
      ack.op_id = m.op_id;
      ack.origin = node();
      endpoint_.send(from, ack);
      return;
    }
    case kCentralRdp: {
      if (m.pattern) reply(from, m.op_id, space_.rdp(*m.pattern));
      return;
    }
    case kCentralInp: {
      if (m.pattern) reply(from, m.op_id, space_.inp(*m.pattern));
      return;
    }
    case kCentralRd:
    case kCentralIn: {
      if (!m.pattern || m.headers.empty()) return;
      const transport::Time deadline = static_cast<transport::Time>(m.hint(0));
      ++stats_.waiters_created;
      auto cb = [this, from, op_id = m.op_id](std::optional<Tuple> t) {
        reply(from, op_id, t);
      };
      if (m.type == kCentralRd) {
        space_.rd(*m.pattern, deadline, cb);
      } else {
        space_.in(*m.pattern, deadline, cb);
      }
      return;
    }
    default:
      return;
  }
}

CentralClient::CentralClient(transport::Transport& net, transport::NodeId server,
                             transport::NodeOptions pos)
    : net_(net),
      endpoint_(net, net.add_node(pos)),
      timers_(net.timers(endpoint_.node())),
      correlator_(timers_),
      server_(server) {
  endpoint_.on(kCentralReply, [this](transport::NodeId from, const net::Message& m) {
    correlator_.route(from, m);
  });
  endpoint_.on(kCentralOutAck,
               [this](transport::NodeId from, const net::Message& m) {
                 correlator_.route(from, m);
               });
}

void CentralClient::out(Tuple t, std::function<void(bool)> cb) {
  ++stats_.ops;
  const std::uint64_t id = correlator_.next_op_id();
  net::Message m;
  m.type = kCentralOut;
  m.op_id = id;
  m.origin = node();
  m.tuple = std::move(t);
  correlator_.expect(
      id,
      [this, cb](transport::NodeId, const net::Message&) {
        if (cb) cb(true);
        return false;  // one ack ends the exchange
      },
      net_.now() + rpc_timeout,
      [this, cb] {
        ++stats_.failures;
        if (cb) cb(false);
      });
  endpoint_.send(server_, m);
}

void CentralClient::request(std::uint16_t type, const Pattern& p,
                            transport::Time deadline, MatchCb cb) {
  ++stats_.ops;
  const std::uint64_t id = correlator_.next_op_id();
  net::Message m;
  m.type = type;
  m.op_id = id;
  m.origin = node();
  m.pattern = p;
  m.h(static_cast<std::int64_t>(deadline));
  const transport::Time local_timeout =
      (deadline == transport::kNever ? net_.now() + transport::seconds(3600) : deadline) +
      rpc_timeout;
  correlator_.expect(
      id,
      [cb](transport::NodeId, const net::Message& r) {
        if (!r.headers.empty() && r.hbool(0) && r.tuple) {
          cb(*r.tuple);
        } else {
          cb(std::nullopt);
        }
        return false;
      },
      local_timeout,
      [this, cb] {
        ++stats_.failures;
        cb(std::nullopt);
      });
  endpoint_.send(server_, m);
}

void CentralClient::rdp(const Pattern& p, MatchCb cb) {
  request(kCentralRdp, p, net_.now(), std::move(cb));
}
void CentralClient::inp(const Pattern& p, MatchCb cb) {
  request(kCentralInp, p, net_.now(), std::move(cb));
}
void CentralClient::rd(const Pattern& p, transport::Time deadline, MatchCb cb) {
  request(kCentralRd, p, deadline, std::move(cb));
}
void CentralClient::in(const Pattern& p, transport::Time deadline, MatchCb cb) {
  request(kCentralIn, p, deadline, std::move(cb));
}

}  // namespace tiamat::baselines
