// CoreLime baseline (§4.5): host-level tuple spaces only, no federation;
// remote access happens by migrating a mobile agent to the target host,
// performing the operation there, and migrating back.
//
// "If a client wants to perform an operation on a remote, host-level tuple
// space, it must create a new mobile agent and migrate it to the desired
// host. Once there, the agent would engage with the host-level space,
// perform the operation and finally migrate back to the originating host."
//
// "The burden ... is placed on the application developer. The application
// developer has to discover which tuple spaces are available, connect to
// them and begin making use of them." — hence agent_op takes an explicit
// destination; there is no discovery here by design.

#pragma once

#include <cstdint>

#include "baselines/common.h"
#include "net/endpoint.h"
#include "net/rpc.h"
#include "space/local_space.h"

namespace tiamat::baselines {

enum CoreLimeMsg : std::uint16_t {
  kAgentGo = net::kCoreLimeBase + 1,      ///< agent migrating out
  kAgentReturn = net::kCoreLimeBase + 2,  ///< agent migrating home
};

class CoreLimeHost {
 public:
  struct Stats {
    std::uint64_t agents_sent = 0;
    std::uint64_t agents_hosted = 0;
    std::uint64_t agents_lost = 0;  ///< migration failed / timed out
  };

  explicit CoreLimeHost(transport::Transport& net, transport::NodeOptions pos = {});

  transport::NodeId node() const { return endpoint_.node(); }

  /// The host-level tuple space; local agents/clients use it directly.
  space::LocalTupleSpace& space() { return space_; }

  /// Performs `destructive ? inp : rdp` at `dest` by migrating an agent
  /// there and back. `agent_code_size` pads the migration messages to model
  /// shipping the agent's code+state both ways. Times out (cb nullopt)
  /// after `timeout`.
  void agent_op(transport::NodeId dest, bool destructive, const Pattern& p,
                MatchCb cb, transport::Duration timeout = transport::milliseconds(500));

  /// Bytes of agent code/state shipped per migration leg.
  std::size_t agent_code_size = 2048;

  const Stats& stats() const { return stats_; }

 private:
  void handle(transport::NodeId from, const net::Message& m);

  transport::Transport& net_;
  net::Endpoint endpoint_;
  transport::TimerService& timers_;  ///< this node's timer strand
  transport::Rng rng_;
  space::LocalTupleSpace space_;
  net::Correlator correlator_;
  Stats stats_;
};

}  // namespace tiamat::baselines
