#include "baselines/limbo.h"

#include <set>

namespace tiamat::baselines {

LimboNode::LimboNode(sim::Network& net, sim::GroupId space_group,
                     sim::Position pos)
    : net_(net), endpoint_(net, net.add_node(pos)), group_(space_group) {
  endpoint_.join_group(group_);
  auto handler = [this](sim::NodeId from, const net::Message& m) {
    handle(from, m);
  };
  for (std::uint16_t t : {kLimboAdd, kLimboDel, kLimboSyncReq,
                          kLimboSyncState, kLimboTransfer}) {
    endpoint_.on(t, handler);
  }
}

// ---- Replica maintenance ------------------------------------------------------

void LimboNode::apply_add(const GlobalId& id, Tuple t, sim::NodeId owner) {
  const std::uint64_t k = id.key();
  if (tombstones_.count(k) != 0) return;  // deleted before we saw the add
  if (replica_.count(k) != 0) return;     // duplicate
  replica_bytes_ += t.footprint();
  serve_waiters(t);
  ids_[k] = id;
  replica_.emplace(k, Entry{std::move(t), owner});
}

void LimboNode::apply_del(const GlobalId& id) {
  const std::uint64_t k = id.key();
  tombstones_.insert(k);
  auto it = replica_.find(k);
  if (it == replica_.end()) return;
  replica_bytes_ -= it->second.tuple.footprint();
  replica_.erase(it);
  ids_.erase(k);
}

void LimboNode::broadcast_add(const GlobalId& id, const Tuple& t,
                              sim::NodeId owner) {
  net::Message m;
  m.type = kLimboAdd;
  m.origin = node();
  m.h(static_cast<std::int64_t>(id.creator));
  m.h(static_cast<std::int64_t>(id.seq));
  m.h(static_cast<std::int64_t>(owner));
  m.tuple = t;
  if (connected_) {
    ++stats_.adds_sent;
    endpoint_.multicast(group_, m);
  } else {
    oplog_.push_back(std::move(m));
  }
}

void LimboNode::broadcast_del(const GlobalId& id) {
  net::Message m;
  m.type = kLimboDel;
  m.origin = node();
  m.h(static_cast<std::int64_t>(id.creator));
  m.h(static_cast<std::int64_t>(id.seq));
  if (connected_) {
    ++stats_.dels_sent;
    endpoint_.multicast(group_, m);
  } else {
    // "The client must retain information as to which tuples were removed
    // during its disconnection so that it can inform others ... once it
    // reconnects."
    oplog_.push_back(std::move(m));
  }
}

// ---- Operations ------------------------------------------------------------------

GlobalId LimboNode::out(Tuple t) {
  GlobalId id{node(), next_seq_++};
  apply_add(id, t, node());
  broadcast_add(id, t, node());
  return id;
}

std::optional<Tuple> LimboNode::rd(const Pattern& p) {
  auto r = rd_with_id(p);
  if (!r) return std::nullopt;
  return r->second;
}

std::optional<std::pair<GlobalId, Tuple>> LimboNode::rd_with_id(
    const Pattern& p) {
  for (const auto& [k, e] : replica_) {
    if (p.matches(e.tuple)) return std::make_pair(ids_.at(k), e.tuple);
  }
  return std::nullopt;
}

void LimboNode::rd_blocking(const Pattern& p, sim::Time deadline,
                            MatchCb cb) {
  if (auto t = rd(p)) {
    cb(t);
    return;
  }
  if (deadline <= net_.now()) {
    cb(std::nullopt);
    return;
  }
  Waiter w;
  w.pattern = p;
  w.cb = std::move(cb);
  w.id = next_waiter_++;
  const std::uint64_t wid = w.id;
  w.deadline_event = net_.queue().schedule_at(deadline, [this, wid] {
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
      if (it->id == wid) {
        auto cb2 = std::move(it->cb);
        waiters_.erase(it);
        cb2(std::nullopt);
        return;
      }
    }
  });
  waiters_.push_back(std::move(w));
}

void LimboNode::serve_waiters(const Tuple& t) {
  for (auto it = waiters_.begin(); it != waiters_.end();) {
    if (it->pattern.matches(t)) {
      if (it->deadline_event != sim::kInvalidEvent) {
        net_.queue().cancel(it->deadline_event);
      }
      auto cb = std::move(it->cb);
      it = waiters_.erase(it);
      cb(t);
    } else {
      ++it;
    }
  }
}

std::optional<Tuple> LimboNode::in_owned(const Pattern& p) {
  for (const auto& [k, e] : replica_) {
    if (e.owner == node() && p.matches(e.tuple)) {
      GlobalId id = ids_.at(k);
      Tuple t = e.tuple;
      apply_del(id);
      broadcast_del(id);
      return t;
    }
  }
  return std::nullopt;  // nothing we own matches — even if others' do
}

bool LimboNode::transfer_ownership(const GlobalId& id, sim::NodeId new_owner) {
  auto it = replica_.find(id.key());
  if (it == replica_.end() || it->second.owner != node()) return false;
  // Ownership handover requires direct, synchronous contact with the
  // recipient — the identity/time/space decoupling break of §4.3.
  if (!net_.visible(node(), new_owner)) return false;
  it->second.owner = new_owner;
  net::Message m;
  m.type = kLimboTransfer;
  m.origin = node();
  m.h(static_cast<std::int64_t>(id.creator));
  m.h(static_cast<std::int64_t>(id.seq));
  m.h(static_cast<std::int64_t>(new_owner));
  endpoint_.multicast(group_, m);
  endpoint_.send(new_owner, m);  // make sure the recipient learns even if
                                 // it missed the multicast
  return true;
}

// ---- Disconnection ------------------------------------------------------------------

void LimboNode::disconnect() {
  connected_ = false;
  net_.set_online(node(), false);
}

void LimboNode::reconnect() {
  net_.set_online(node(), true);
  connected_ = true;
  // Replay the disconnected-op log.
  for (auto& m : oplog_) {
    ++stats_.log_replays;
    if (m.type == kLimboAdd) ++stats_.adds_sent;
    if (m.type == kLimboDel) ++stats_.dels_sent;
    endpoint_.multicast(group_, m);
  }
  oplog_.clear();
  // "After reconnection, the client ... subsequently requests copies of any
  // new tuples."
  net::Message req;
  req.type = kLimboSyncReq;
  req.origin = node();
  ++stats_.sync_requests;
  endpoint_.multicast(group_, req);
}

std::size_t LimboNode::owned_tuples() const {
  std::size_t n = 0;
  for (const auto& [k, e] : replica_) {
    (void)k;
    if (e.owner == node()) ++n;
  }
  return n;
}

// ---- Protocol -----------------------------------------------------------------------

void LimboNode::handle(sim::NodeId from, const net::Message& m) {
  switch (m.type) {
    case kLimboAdd: {
      if (!m.tuple || m.headers.size() < 3) return;
      GlobalId id{static_cast<sim::NodeId>(m.hint(0)),
                  static_cast<std::uint64_t>(m.hint(1))};
      apply_add(id, *m.tuple, static_cast<sim::NodeId>(m.hint(2)));
      return;
    }
    case kLimboDel: {
      if (m.headers.size() < 2) return;
      GlobalId id{static_cast<sim::NodeId>(m.hint(0)),
                  static_cast<std::uint64_t>(m.hint(1))};
      apply_del(id);
      return;
    }
    case kLimboTransfer: {
      if (m.headers.size() < 3) return;
      auto it = replica_.find(GlobalId{static_cast<sim::NodeId>(m.hint(0)),
                                       static_cast<std::uint64_t>(m.hint(1))}
                                  .key());
      if (it != replica_.end()) {
        it->second.owner = static_cast<sim::NodeId>(m.hint(2));
      }
      return;
    }
    case kLimboSyncReq: {
      // Ship our full replica to the requester, one tuple per message
      // (models the real per-tuple retransmission traffic).
      for (const auto& [k, e] : replica_) {
        const GlobalId& id = ids_.at(k);
        net::Message s;
        s.type = kLimboSyncState;
        s.origin = node();
        s.h(static_cast<std::int64_t>(id.creator));
        s.h(static_cast<std::int64_t>(id.seq));
        s.h(static_cast<std::int64_t>(e.owner));
        s.tuple = e.tuple;
        endpoint_.send(from, s);
      }
      return;
    }
    case kLimboSyncState: {
      if (!m.tuple || m.headers.size() < 3) return;
      ++stats_.sync_tuples_received;
      GlobalId id{static_cast<sim::NodeId>(m.hint(0)),
                  static_cast<std::uint64_t>(m.hint(1))};
      apply_add(id, *m.tuple, static_cast<sim::NodeId>(m.hint(2)));
      return;
    }
    default:
      return;
  }
}

}  // namespace tiamat::baselines
