#include "baselines/limbo.h"


namespace tiamat::baselines {

LimboNode::LimboNode(transport::Transport& net, transport::GroupId space_group,
                     transport::NodeOptions pos)
    : net_(net), endpoint_(net, net.add_node(pos)),
      timers_(net.timers(endpoint_.node())), group_(space_group) {
  endpoint_.join_group(group_);
  auto handler = [this](transport::NodeId from, const net::Message& m) {
    handle(from, m);
  };
  for (std::uint16_t t : {kLimboAdd, kLimboDel, kLimboSyncReq,
                          kLimboSyncState, kLimboTransfer}) {
    endpoint_.on(t, handler);
  }
}

// ---- Replica maintenance ------------------------------------------------------

void LimboNode::apply_add(const GlobalId& id, Tuple t, transport::NodeId owner) {
  const std::uint64_t k = id.key();
  if (tombstones_.contains(k)) return;  // deleted before we saw the add
  if (replica_.contains(k)) return;       // duplicate
  serve_waiters(t);
  ids_[k] = id;
  owners_[k] = owner;
  replica_.insert(k, std::move(t));
}

void LimboNode::apply_del(const GlobalId& id) {
  const std::uint64_t k = id.key();
  tombstones_.insert(k);
  replica_.erase(k);
  owners_.erase(k);
  ids_.erase(k);
}

void LimboNode::broadcast_add(const GlobalId& id, const Tuple& t,
                              transport::NodeId owner) {
  net::Message m;
  m.type = kLimboAdd;
  m.origin = node();
  m.h(static_cast<std::int64_t>(id.creator));
  m.h(static_cast<std::int64_t>(id.seq));
  m.h(static_cast<std::int64_t>(owner));
  m.tuple = t;
  if (connected_) {
    ++stats_.adds_sent;
    endpoint_.multicast(group_, m);
  } else {
    oplog_.push_back(std::move(m));
  }
}

void LimboNode::broadcast_del(const GlobalId& id) {
  net::Message m;
  m.type = kLimboDel;
  m.origin = node();
  m.h(static_cast<std::int64_t>(id.creator));
  m.h(static_cast<std::int64_t>(id.seq));
  if (connected_) {
    ++stats_.dels_sent;
    endpoint_.multicast(group_, m);
  } else {
    // "The client must retain information as to which tuples were removed
    // during its disconnection so that it can inform others ... once it
    // reconnects."
    oplog_.push_back(std::move(m));
  }
}

// ---- Operations ------------------------------------------------------------------

GlobalId LimboNode::out(Tuple t) {
  GlobalId id{node(), next_seq_++};
  apply_add(id, t, node());
  broadcast_add(id, t, node());
  return id;
}

std::optional<Tuple> LimboNode::rd(const Pattern& p) {
  auto r = rd_with_id(p);
  if (!r) return std::nullopt;
  return r->second;
}

std::optional<std::pair<GlobalId, Tuple>> LimboNode::rd_with_id(
    const Pattern& p) {
  auto k = replica_.find_first(p);
  if (!k) return std::nullopt;
  return std::make_pair(ids_.at(*k), *replica_.get(*k));
}

void LimboNode::rd_blocking(const Pattern& p, transport::Time deadline,
                            MatchCb cb) {
  if (auto t = rd(p)) {
    cb(t);
    return;
  }
  if (deadline <= net_.now()) {
    cb(std::nullopt);
    return;
  }
  const std::uint64_t wid = next_waiter_++;
  Waiter w;
  w.cb = std::move(cb);
  w.deadline_event = timers_.schedule_at(deadline, [this, wid] {
    if (auto e = waiters_.extract(wid)) e->payload.cb(std::nullopt);
  });
  waiters_.add(wid, tuples::CompiledPattern(p), std::move(w));
}

void LimboNode::serve_waiters(const Tuple& t) {
  // Collect-extract-then-fire: callbacks may re-enter (issue another
  // blocking rd), so the index must be settled before any cb runs.
  std::vector<Waiter> fired;
  for (std::uint64_t wid : waiters_.candidates(t)) {
    const tuples::CompiledPattern* cp = waiters_.pattern_of(wid);
    if (cp == nullptr || !cp->matches(t)) continue;
    auto e = waiters_.extract(wid);
    if (e->payload.deadline_event != transport::kInvalidEvent) {
      timers_.cancel(e->payload.deadline_event);
    }
    fired.push_back(std::move(e->payload));
  }
  for (auto& w : fired) w.cb(t);
}

std::optional<Tuple> LimboNode::in_owned(const Pattern& p) {
  // First owned match in ascending key order (what the old map scan chose);
  // deletion waits until the engine iteration has finished.
  std::optional<std::uint64_t> victim;
  replica_.for_each_match(
      tuples::CompiledPattern(p), [&](tuples::TupleId k, const Tuple&) {
        if (owners_.at(k) != node()) return true;  // someone else's — skip
        victim = k;
        return false;
      });
  if (!victim) {
    return std::nullopt;  // nothing we own matches — even if others' do
  }
  GlobalId id = ids_.at(*victim);
  Tuple t = *replica_.get(*victim);
  apply_del(id);
  broadcast_del(id);
  return t;
}

bool LimboNode::transfer_ownership(const GlobalId& id, transport::NodeId new_owner) {
  auto it = owners_.find(id.key());
  if (it == owners_.end() || it->second != node()) return false;
  // Ownership handover requires direct, synchronous contact with the
  // recipient — the identity/time/space decoupling break of §4.3.
  if (!net_.visible(node(), new_owner)) return false;
  it->second = new_owner;
  net::Message m;
  m.type = kLimboTransfer;
  m.origin = node();
  m.h(static_cast<std::int64_t>(id.creator));
  m.h(static_cast<std::int64_t>(id.seq));
  m.h(static_cast<std::int64_t>(new_owner));
  endpoint_.multicast(group_, m);
  endpoint_.send(new_owner, m);  // make sure the recipient learns even if
                                 // it missed the multicast
  return true;
}

// ---- Disconnection ------------------------------------------------------------------

void LimboNode::disconnect() {
  connected_ = false;
  net_.set_online(node(), false);
}

void LimboNode::reconnect() {
  net_.set_online(node(), true);
  connected_ = true;
  // Replay the disconnected-op log.
  for (auto& m : oplog_) {
    ++stats_.log_replays;
    if (m.type == kLimboAdd) ++stats_.adds_sent;
    if (m.type == kLimboDel) ++stats_.dels_sent;
    endpoint_.multicast(group_, m);
  }
  oplog_.clear();
  // "After reconnection, the client ... subsequently requests copies of any
  // new tuples."
  net::Message req;
  req.type = kLimboSyncReq;
  req.origin = node();
  ++stats_.sync_requests;
  endpoint_.multicast(group_, req);
}

std::size_t LimboNode::owned_tuples() const {
  std::size_t n = 0;
  for (const auto& [k, owner] : owners_) {
    (void)k;
    if (owner == node()) ++n;
  }
  return n;
}

// ---- Protocol -----------------------------------------------------------------------

void LimboNode::handle(transport::NodeId from, const net::Message& m) {
  switch (m.type) {
    case kLimboAdd: {
      if (!m.tuple || m.headers.size() < 3) return;
      GlobalId id{static_cast<transport::NodeId>(m.hint(0)),
                  static_cast<std::uint64_t>(m.hint(1))};
      apply_add(id, *m.tuple, static_cast<transport::NodeId>(m.hint(2)));
      return;
    }
    case kLimboDel: {
      if (m.headers.size() < 2) return;
      GlobalId id{static_cast<transport::NodeId>(m.hint(0)),
                  static_cast<std::uint64_t>(m.hint(1))};
      apply_del(id);
      return;
    }
    case kLimboTransfer: {
      if (m.headers.size() < 3) return;
      auto it = owners_.find(GlobalId{static_cast<transport::NodeId>(m.hint(0)),
                                      static_cast<std::uint64_t>(m.hint(1))}
                                 .key());
      if (it != owners_.end()) {
        it->second = static_cast<transport::NodeId>(m.hint(2));
      }
      return;
    }
    case kLimboSyncReq: {
      // Ship our full replica to the requester, one tuple per message
      // (models the real per-tuple retransmission traffic).
      replica_.for_each([&](tuples::TupleId k, const Tuple& t) {
        const GlobalId& id = ids_.at(k);
        net::Message s;
        s.type = kLimboSyncState;
        s.origin = node();
        s.h(static_cast<std::int64_t>(id.creator));
        s.h(static_cast<std::int64_t>(id.seq));
        s.h(static_cast<std::int64_t>(owners_.at(k)));
        s.tuple = t;
        endpoint_.send(from, s);
      });
      return;
    }
    case kLimboSyncState: {
      if (!m.tuple || m.headers.size() < 3) return;
      ++stats_.sync_tuples_received;
      GlobalId id{static_cast<transport::NodeId>(m.hint(0)),
                  static_cast<std::uint64_t>(m.hint(1))};
      apply_add(id, *m.tuple, static_cast<transport::NodeId>(m.hint(2)));
      return;
    }
    default:
      return;
  }
}

}  // namespace tiamat::baselines
