// The pluggable communication substrate (ROADMAP item 1).
//
// Every protocol path — discovery, fan-out, first-response-wins,
// reinsertion, leasing — runs against this interface and nothing below it.
// Two backends implement it:
//
//   SimTransport       adapter over sim::Network: deterministic virtual
//                      time, scripted visibility, seeded loss/jitter. The
//                      test substrate; byte-reproducible runs.
//   LoopbackTransport  in-process multi-threaded backend: per-node inbox
//                      queues drained by worker threads, steady-clock
//                      timers, configurable delivery delay/loss. Real
//                      concurrency; the stepping stone to sockets.
//
// Threading contract (what makes single-threaded protocol code safe on a
// concurrent backend): every callback belonging to node n — message
// delivery, timers from timers(n), closures via post(n, ...) — runs on n's
// *strand*: serialized, in order, never concurrently with each other.
// Callbacks of different nodes may run in parallel. send/multicast/post are
// safe to call from any strand (and from outside).

#pragma once

#include <functional>
#include <vector>

#include "transport/timer.h"
#include "transport/types.h"

namespace tiamat::transport {

class Transport : public Clock {
 public:
  ~Transport() override = default;

  // ---- Membership ----------------------------------------------------------

  /// Adds a node; it starts online with no handler bound. `opts` is a
  /// placement hint for spatial backends.
  virtual NodeId add_node(NodeOptions opts = {}) = 0;

  /// Permanently removes a node. In-flight deliveries to it are dropped,
  /// and — on concurrent backends — the call does not return while any of
  /// the node's callbacks is still executing (so the caller may destroy
  /// handler state immediately afterwards). Timers owned by the node are
  /// quiesced: none fires after remove_node returns. The node's
  /// TimerService stays valid (cancellation of stale handles remains safe).
  virtual void remove_node(NodeId id) = 0;

  virtual bool node_exists(NodeId id) const = 0;

  /// Radio on/off without forgetting state: an offline node is invisible
  /// and receives nothing.
  virtual void set_online(NodeId id, bool online) = 0;
  virtual bool online(NodeId id) const = 0;

  /// True when a and b could exchange a packet right now. Visibility is the
  /// paper's only connectivity concept (§2.2); the sim derives it from
  /// positions/range/overrides, loopback from liveness alone (a LAN).
  virtual bool visible(NodeId a, NodeId b) const = 0;

  /// All nodes visible from `id` (excluding itself), in ascending id order.
  virtual std::vector<NodeId> visible_from(NodeId id) const = 0;

  // ---- Traffic -------------------------------------------------------------

  /// Installs the function invoked on id's strand when a payload arrives.
  /// Binding nullptr detaches; on concurrent backends the call synchronizes
  /// with in-flight invocations of the previous handler.
  virtual void bind(NodeId id, DeliveryHandler handler) = 0;

  virtual void join_group(NodeId id, GroupId group) = 0;
  virtual void leave_group(NodeId id, GroupId group) = 0;

  /// Unicast. Delivery requires visibility; per-sender order is preserved
  /// for same-destination sends (absent jitter/loss).
  virtual void send(NodeId from, NodeId to, Payload payload) = 0;

  /// Multicast to every currently visible member of `group` except the
  /// sender. The sender need not be a member.
  virtual void multicast(NodeId from, GroupId group, Payload payload) = 0;

  // ---- Time, execution, randomness ----------------------------------------

  /// A cheap timestamp for high-frequency instrumentation (trace events,
  /// flight-recorder stamps). Same clock and unit as now(), but a backend
  /// may return a value cached at the start of the currently running strand
  /// callback instead of re-reading hardware time per call — the loopback
  /// backend does, turning ~10 clock reads per operation into none (the
  /// worker loop reads the clock once per task anyway). The sim clock is a
  /// field read, so the default of exact now() costs nothing there and
  /// keeps sim runs byte-identical.
  virtual Time now_coarse() const { return now(); }

  /// The node's clock + timer scheduler. Callbacks fire on id's strand. The
  /// returned reference stays valid until the Transport is destroyed (also
  /// across remove_node, so teardown-order cancellation is safe).
  virtual TimerService& timers(NodeId id) = 0;

  /// Runs `fn` on id's strand. This is how code *outside* a node's strand
  /// (tests, benchmark driver threads) interacts with protocol objects
  /// bound to a concurrent backend. The sim backend executes synchronously.
  virtual void post(NodeId id, std::function<void()> fn) = 0;

  /// Drives the backend until `pred()` holds, no further progress is
  /// possible, or `max_wait` of transport time passes; returns the final
  /// pred(). Sim: steps the event queue (max_wait rarely binds — an idle
  /// queue ends the wait). Loopback: polls with pred evaluated mutually
  /// exclusive with every strand, so the caller may read protocol state
  /// written by callbacks.
  virtual bool wait_until(const std::function<bool()>& pred,
                          Duration max_wait = 30 * kSecond) = 0;

  /// Derives an independent seeded random stream (per-instance streams keep
  /// runs reproducible under the sim; loopback forks from its option seed).
  virtual Rng fork_rng() = 0;
};

}  // namespace tiamat::transport
