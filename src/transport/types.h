// Vocabulary types of the transport layer.
//
// Protocol code (src/net, src/core, src/lease, src/space, src/obs) speaks
// these names exclusively; it never names `sim::` directly. The deterministic
// simulator remains the canonical definition of virtual time and seeded
// randomness, so the time/rng vocabulary re-exports sim's leaf headers
// (sim/clock.h, sim/random.h — pure value types, no event machinery); the
// addressing vocabulary (node/group ids, payloads) is defined here and
// structurally identical to the simulator's, which is what lets the
// SimTransport adapter pass them through unconverted.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/clock.h"
#include "sim/random.h"

namespace tiamat::transport {

// ---- Time (microseconds; virtual under sim, steady-clock under loopback) --
using Time = sim::Time;
using Duration = sim::Duration;
inline constexpr Duration kMicrosecond = sim::kMicrosecond;
inline constexpr Duration kMillisecond = sim::kMillisecond;
inline constexpr Duration kSecond = sim::kSecond;
inline constexpr Time kNever = sim::kNever;
using sim::milliseconds;
using sim::seconds;
using sim::to_seconds;

// ---- Seeded randomness -----------------------------------------------------
using Rng = sim::Rng;

// ---- Addressing ------------------------------------------------------------

/// Identifies a node for the lifetime of a transport. Never reused.
using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = 0;

/// Identifies a multicast group.
using GroupId = std::uint32_t;

using Payload = std::vector<std::uint8_t>;
using DeliveryHandler = std::function<void(NodeId from, const Payload&)>;

/// Placement hint passed to Transport::add_node. The simulated radio network
/// uses (x, y) as the node's position (visibility derives from positions and
/// radio range); backends without a spatial model ignore it.
struct NodeOptions {
  double x = 0.0;
  double y = 0.0;
};

// ---- Timers ----------------------------------------------------------------

/// Identifies a scheduled timer so it can be cancelled before it fires.
using TimerId = std::uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

// Compatibility spellings: protocol code predating the transport layer used
// the simulator's event vocabulary for timer handles.
using EventId = TimerId;
inline constexpr TimerId kInvalidEvent = kInvalidTimer;

}  // namespace tiamat::transport
