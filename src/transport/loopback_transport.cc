#include "transport/loopback_transport.h"

#include <algorithm>
#include <utility>

namespace tiamat::transport {

namespace {
constexpr Duration kMaxSleepSlice = kSecond;  // bound cv waits (kNever timers)
constexpr Duration kPollInterval = 200;       // wait_until poll cadence (us)

/// MutexLock that attributes contention: the fast path is a plain try_lock
/// (no clock read); only a sender that actually blocks pays two steady_clock
/// reads, and the time it sat out lands in `waited_us`. The overhead-gate
/// baseline (TIAMAT_OBS_OFF) compiles the accounting away entirely.
class TIAMAT_SCOPED_CAPABILITY TimedMutexLock {
 public:
  TimedMutexLock(Mutex& mu, std::atomic<std::uint64_t>& waited_us)
      TIAMAT_ACQUIRE(mu)
      : mu_(mu) {
#if defined(TIAMAT_OBS_OFF)
    (void)waited_us;
    mu_.lock();
#else
    if (mu_.try_lock()) return;
    const auto t0 = std::chrono::steady_clock::now();
    mu_.lock();
    waited_us.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()),
        std::memory_order_relaxed);
#endif
  }
  ~TimedMutexLock() TIAMAT_RELEASE() { mu_.unlock(); }

  TimedMutexLock(const TimedMutexLock&) = delete;
  TimedMutexLock& operator=(const TimedMutexLock&) = delete;

 private:
  Mutex& mu_;
};
}  // namespace

LoopbackTransport::LoopbackTransport(LoopbackOptions opts)
    : opts_(opts),
      start_(std::chrono::steady_clock::now()),
      rng_(opts.seed) {
  const unsigned n = std::max(1u, opts_.workers);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (unsigned i = 0; i < n; ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
}

LoopbackTransport::~LoopbackTransport() {
  for (auto& w : workers_) {
    {
      MutexLock lk(w->mu);
      w->stop = true;
    }
    w->cv.notify_all();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

Time LoopbackTransport::now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

namespace {
/// Task-start timestamp of the strand callback currently running on this
/// worker thread; negative outside any callback (external threads). Each
/// worker thread belongs to exactly one LoopbackTransport, so a plain
/// thread_local is unambiguous — and it is what lets now_coarse() serve a
/// per-op trace burst without touching the hardware clock.
thread_local Time t_task_start = -1;
}  // namespace

Time LoopbackTransport::now_coarse() const {
  // Inside a strand callback, reuse the stamp the worker loop took when it
  // dequeued the task (instrumentation precision becomes task-granular;
  // callbacks here run for microseconds). Anywhere else, read the clock.
  return t_task_start >= 0 ? t_task_start : now();
}

NodeId LoopbackTransport::add_node(NodeOptions) {
  MutexLock lk(mu_);
  const NodeId id = next_node_++;
  Node node;
  node.worker = (id - 1) % workers_.size();
  node.timers = std::make_unique<NodeTimers>(this, id, node.worker);
  nodes_.emplace(id, std::move(node));
  return id;
}

void LoopbackTransport::remove_node(NodeId id) {
  std::size_t worker;
  {
    MutexLock lk(mu_);
    auto it = nodes_.find(id);
    if (it == nodes_.end() || it->second.closed) return;
    it->second.closed = true;
    it->second.handler = nullptr;
    it->second.groups.clear();
    worker = it->second.worker;
  }
  // Quiesce: once the fence is acquired, no callback of this node is in
  // flight and none will start (execution checks `closed` first).
  fence(*workers_[worker]);
}

bool LoopbackTransport::node_exists(NodeId id) const {
  MutexLock lk(mu_);
  auto it = nodes_.find(id);
  return it != nodes_.end() && !it->second.closed;
}

void LoopbackTransport::set_online(NodeId id, bool online) {
  MutexLock lk(mu_);
  auto it = nodes_.find(id);
  if (it != nodes_.end() && !it->second.closed) it->second.online = online;
}

bool LoopbackTransport::online(NodeId id) const {
  MutexLock lk(mu_);
  auto it = nodes_.find(id);
  return it != nodes_.end() && !it->second.closed && it->second.online;
}

bool LoopbackTransport::visible(NodeId a, NodeId b) const {
  if (a == b) return false;
  MutexLock lk(mu_);
  auto ia = nodes_.find(a);
  auto ib = nodes_.find(b);
  return ia != nodes_.end() && !ia->second.closed && ia->second.online &&
         ib != nodes_.end() && !ib->second.closed && ib->second.online;
}

std::vector<NodeId> LoopbackTransport::visible_from(NodeId id) const {
  std::vector<NodeId> out;
  MutexLock lk(mu_);
  auto self = nodes_.find(id);
  if (self == nodes_.end() || self->second.closed || !self->second.online) {
    return out;
  }
  for (const auto& [nid, node] : nodes_) {
    if (nid != id && !node.closed && node.online) out.push_back(nid);
  }
  return out;
}

void LoopbackTransport::bind(NodeId id, DeliveryHandler handler) {
  std::size_t worker;
  {
    MutexLock lk(mu_);
    auto it = nodes_.find(id);
    if (it == nodes_.end() || it->second.closed) return;
    it->second.handler = std::move(handler);
    worker = it->second.worker;
  }
  // Synchronize with any in-flight invocation of the previous handler.
  fence(*workers_[worker]);
}

void LoopbackTransport::join_group(NodeId id, GroupId group) {
  MutexLock lk(mu_);
  auto it = nodes_.find(id);
  if (it != nodes_.end() && !it->second.closed) it->second.groups.insert(group);
}

void LoopbackTransport::leave_group(NodeId id, GroupId group) {
  MutexLock lk(mu_);
  auto it = nodes_.find(id);
  if (it != nodes_.end() && !it->second.closed) it->second.groups.erase(group);
}

void LoopbackTransport::deliver_one(NodeId from, NodeId to, const Node& dest,
                                    Payload payload) {
  // Caller holds mu_ (for the group walk / stats / rng draws).
  stats_.bytes_sent += payload.size();
  if (opts_.loss > 0.0 && rng_.chance(opts_.loss)) {
    ++stats_.drops_loss;
    return;
  }
  Duration delay = opts_.delivery_delay;
  if (opts_.delivery_jitter > 0) {
    delay += rng_.uniform(0, opts_.delivery_jitter);
  }
  Task task;
  task.due = now() + (delay < 0 ? 0 : delay);
  task.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  task.kind = TaskKind::kDeliver;
  task.node = to;
  task.from = from;
  task.payload = std::move(payload);
  enqueue(dest.worker, std::move(task));
}

void LoopbackTransport::send(NodeId from, NodeId to, Payload payload) {
  TimedMutexLock lk(mu_, lock_wait_us_);
  ++stats_.unicasts_sent;
  auto src = nodes_.find(from);
  auto dst = nodes_.find(to);
  if (src == nodes_.end() || src->second.closed || !src->second.online ||
      dst == nodes_.end() || dst->second.closed || !dst->second.online) {
    ++stats_.drops_dead;
    stats_.bytes_sent += payload.size();
    return;
  }
  deliver_one(from, to, dst->second, std::move(payload));
}

void LoopbackTransport::multicast(NodeId from, GroupId group, Payload payload) {
  TimedMutexLock lk(mu_, lock_wait_us_);
  ++stats_.multicasts_sent;
  auto src = nodes_.find(from);
  if (src == nodes_.end() || src->second.closed || !src->second.online) {
    ++stats_.drops_dead;
    return;
  }
  // Ordered map: members are reached in ascending node-id order, so equal
  // delays keep a deterministic per-multicast fan-out order.
  for (const auto& [nid, node] : nodes_) {
    if (nid == from || node.closed || !node.online) continue;
    if (!node.groups.contains(group)) continue;
    deliver_one(from, nid, node, payload);
  }
}

TimerService& LoopbackTransport::timers(NodeId id) {
  MutexLock lk(mu_);
  auto it = nodes_.find(id);
  // Nodes are never forgotten (only closed), so a live caller always finds
  // its service; a bogus id is a programming error.
  return *it->second.timers;
}

TimerId LoopbackTransport::schedule_timer(NodeId node, std::size_t worker,
                                          Time when, std::function<void()> fn) {
  Task task;
  const Time t = now();
  task.due = when < t ? t : when;
  task.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  task.kind = TaskKind::kTimer;
  task.node = node;
  task.timer = next_timer_.fetch_add(1, std::memory_order_relaxed);
  task.fn = std::move(fn);
  const TimerId id = task.timer;
  {
    Worker& w = *workers_[worker];
    MutexLock lk(w.mu);
    w.live_timers.insert(id);
    w.inbox.push_back(std::move(task));
    std::push_heap(w.inbox.begin(), w.inbox.end(), TaskLater{});
    if (w.inbox.size() > w.depth_max) w.depth_max = w.inbox.size();
  }
  workers_[worker]->cv.notify_all();
  return id;
}

bool LoopbackTransport::cancel_timer(std::size_t worker, TimerId id) {
  if (id == kInvalidTimer) return false;
  Worker& w = *workers_[worker];
  MutexLock lk(w.mu);
  // The heap entry becomes a tombstone, discarded when it surfaces.
  const bool hit = w.live_timers.erase(id) > 0;
  if (hit) w.sched.cancels.fetch_add(1, std::memory_order_relaxed);
  return hit;
}

void LoopbackTransport::post(NodeId id, std::function<void()> fn) {
  std::size_t worker;
  {
    MutexLock lk(mu_);
    auto it = nodes_.find(id);
    if (it == nodes_.end() || it->second.closed) return;
    worker = it->second.worker;
  }
  Task task;
  task.due = now();
  task.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  task.kind = TaskKind::kPost;
  task.node = id;
  task.fn = std::move(fn);
  enqueue(worker, std::move(task));
}

void LoopbackTransport::enqueue(std::size_t worker, Task task) {
  Worker& w = *workers_[worker];
  {
    MutexLock lk(w.mu);
    if (w.stop) return;
    w.inbox.push_back(std::move(task));
    std::push_heap(w.inbox.begin(), w.inbox.end(), TaskLater{});
    if (w.inbox.size() > w.depth_max) w.depth_max = w.inbox.size();
  }
  w.cv.notify_all();
}

bool LoopbackTransport::wait_until(const std::function<bool()>& pred,
                                   Duration max_wait) {
  // Exclusive with every strand: pred may read protocol state that
  // callbacks write, and the lock handoff orders those writes before the
  // read. TSA cannot model a lock set whose cardinality is only known at
  // run time (one exec_mu per worker), so this RAII scope is excluded from
  // the analysis and stays covered by the tsan gate.
  struct StrandExclusion {
    std::vector<std::unique_ptr<Worker>>& ws;
    explicit StrandExclusion(std::vector<std::unique_ptr<Worker>>& workers)
        TIAMAT_NO_THREAD_SAFETY_ANALYSIS : ws(workers) {
      for (auto& w : ws) w->exec_mu.lock();
    }
    ~StrandExclusion() TIAMAT_NO_THREAD_SAFETY_ANALYSIS {
      for (auto it = ws.rbegin(); it != ws.rend(); ++it) {
        (*it)->exec_mu.unlock();
      }
    }
  };
  const Time deadline = now() + (max_wait < 0 ? 0 : max_wait);
  for (;;) {
    {
      StrandExclusion locks(workers_);
      if (pred()) return true;
      if (now() >= deadline) return false;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(kPollInterval));
  }
}

Rng LoopbackTransport::fork_rng() {
  MutexLock lk(mu_);
  return rng_.fork();
}

LoopbackTransport::Stats LoopbackTransport::stats() const {
  MutexLock lk(mu_);
  return stats_;
}

LoopbackTransport::SchedStats LoopbackTransport::sched_stats() const {
  SchedStats out;
  out.workers.reserve(workers_.size());
  for (const auto& wp : workers_) {
    Worker& w = *wp;
    WorkerSched ws;
    ws.tasks = w.sched.tasks.load(std::memory_order_relaxed);
    ws.lag_us_sum = w.sched.lag_sum.load(std::memory_order_relaxed);
    ws.lag_us_max = w.sched.lag_max.load(std::memory_order_relaxed);
    ws.busy_us = w.sched.busy.load(std::memory_order_relaxed);
    ws.tombstones = w.sched.tombstones.load(std::memory_order_relaxed);
    ws.cancels = w.sched.cancels.load(std::memory_order_relaxed);
    {
      MutexLock lk(w.mu);
      ws.queue_depth = w.inbox.size();
      ws.queue_depth_max = w.depth_max;
    }
    out.workers.push_back(ws);
  }
  out.lock_wait_us = lock_wait_us_.load(std::memory_order_relaxed);
  out.uptime_us = now();
  return out;
}

void LoopbackTransport::fence(Worker& w) {
  if (std::this_thread::get_id() == w.thread.get_id()) return;
  MutexLock ex(w.exec_mu);
}

void LoopbackTransport::run_task(Worker& w, Task& task) {
  MutexLock ex(w.exec_mu);
  DeliveryHandler handler;
  {
    MutexLock lk(mu_);
    auto it = nodes_.find(task.node);
    if (it == nodes_.end() || it->second.closed) {
      // Delivery-after-close safety: a payload or timer racing with
      // remove_node is dropped here, on the strand, never observed by
      // protocol code.
      if (task.kind == TaskKind::kDeliver) ++stats_.drops_dead;
      return;
    }
    if (task.kind == TaskKind::kDeliver) {
      if (!it->second.online) {
        ++stats_.drops_dead;
        return;
      }
      handler = it->second.handler;  // copy out: handler may rebind
      ++stats_.deliveries;
    }
  }
  switch (task.kind) {
    case TaskKind::kDeliver:
      if (handler) handler(task.from, task.payload);
      break;
    case TaskKind::kTimer:
    case TaskKind::kPost:
      if (task.fn) task.fn();
      break;
  }
}

void LoopbackTransport::worker_loop(std::size_t index) {
  Worker& w = *workers_[index];
  // Manual lock/unlock rather than RAII: the lock is dropped around every
  // run_task call and reacquired after; TSA verifies the hold pattern is
  // consistent at every loop edge.
  w.mu.lock();
  for (;;) {
    if (w.stop) break;
    if (w.inbox.empty()) {
      w.cv.wait(w.mu);
      continue;
    }
    const Time due = w.inbox.front().due;
    const Time t = now();
    if (t < due) {
      const Duration wait = std::min(due - t, kMaxSleepSlice);
      w.cv.wait_for(w.mu, std::chrono::microseconds(wait));
      continue;
    }
    std::pop_heap(w.inbox.begin(), w.inbox.end(), TaskLater{});
    Task task = std::move(w.inbox.back());
    w.inbox.pop_back();
    if (task.kind == TaskKind::kTimer &&
        w.live_timers.erase(task.timer) == 0) {
      Worker::SchedCells::bump(w.sched.tombstones);
      continue;  // cancelled: discard the tombstone
    }
    w.mu.unlock();
    t_task_start = t;  // serves now_coarse() for the callback's trace burst
#if !defined(TIAMAT_OBS_OFF)
    // Strand lag: the task was due at `due` and starts now-ish (`t` was
    // read just before the pop; t >= due on this branch). The run itself is
    // bracketed with one extra clock read for the busy/utilization series.
    const auto lag = static_cast<std::uint64_t>(t - due);
    Worker::SchedCells::bump(w.sched.lag_sum, lag);
    if (lag > w.sched.lag_max.load(std::memory_order_relaxed)) {
      w.sched.lag_max.store(lag, std::memory_order_relaxed);  // single writer
    }
#endif
    run_task(w, task);
#if !defined(TIAMAT_OBS_OFF)
    Worker::SchedCells::bump(w.sched.busy,
                             static_cast<std::uint64_t>(now() - t));
#endif
    Worker::SchedCells::bump(w.sched.tasks);
    w.mu.lock();
  }
  w.mu.unlock();
}

}  // namespace tiamat::transport
