// In-process multi-threaded Transport backend.
//
// The second backend of ROADMAP item 1: the same protocol stack that runs
// on the deterministic simulator serves real concurrent traffic here. Nodes
// are multiplexed onto a small pool of worker threads; each node's inbox
// (deliveries, timers, posted closures) is a time-ordered queue drained by
// exactly one worker, which is what implements the strand contract from
// transport/transport.h — per-node callbacks are serialized without any
// locking inside protocol code, while distinct nodes run genuinely in
// parallel. Time is the machine's monotonic clock (microseconds since
// transport construction) behind the transport::Clock abstraction, so
// protocol code stays wall-clock-free by construction; delivery delay,
// jitter and loss are configurable to keep the sim's failure modes
// exercisable under real threads.
//
// This file (and the rest of src/transport/) is the only place in the tree
// where <thread>/<mutex>/<atomic>/steady_clock are permitted — the linter's
// concurrency rule keeps the simulator and the protocol layers
// deterministic by construction. The locking discipline itself is proven at
// compile time: every mutex here is a transport::Mutex carrying clang
// Thread Safety Analysis attributes (transport/thread_annotations.h), and
// the `tsa` preset builds with -Werror=thread-safety.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <unordered_set>
#include <vector>

#include "transport/thread_annotations.h"
#include "transport/transport.h"

namespace tiamat::transport {

struct LoopbackOptions {
  /// Worker threads the node strands are multiplexed onto (clamped to >=1).
  unsigned workers = 4;
  /// Fixed latency added to every delivery.
  Duration delivery_delay = 0;
  /// Uniform extra delivery latency in [0, jitter]. Non-zero jitter may
  /// reorder same-sender deliveries (per-sender FIFO holds at jitter 0).
  Duration delivery_jitter = 0;
  /// Independent per-delivery drop probability.
  double loss = 0.0;
  /// Seeds fork_rng() and the loss/jitter draws.
  std::uint64_t seed = 0x7113a7u;
};

class LoopbackTransport final : public Transport {
 public:
  /// Aggregate traffic counters (snapshot; maintained under the registry
  /// lock, so concurrent senders never lose updates).
  struct Stats {
    std::uint64_t unicasts_sent = 0;
    std::uint64_t multicasts_sent = 0;
    std::uint64_t deliveries = 0;
    std::uint64_t drops_loss = 0;
    std::uint64_t drops_dead = 0;    ///< destination removed/offline
    std::uint64_t bytes_sent = 0;
  };

  explicit LoopbackTransport(LoopbackOptions opts = {});
  ~LoopbackTransport() override;

  LoopbackTransport(const LoopbackTransport&) = delete;
  LoopbackTransport& operator=(const LoopbackTransport&) = delete;

  // ---- Transport -----------------------------------------------------------
  NodeId add_node(NodeOptions opts = {}) override;
  void remove_node(NodeId id) override;
  bool node_exists(NodeId id) const override;
  void set_online(NodeId id, bool online) override;
  bool online(NodeId id) const override;
  bool visible(NodeId a, NodeId b) const override;
  std::vector<NodeId> visible_from(NodeId id) const override;
  void bind(NodeId id, DeliveryHandler handler) override;
  void join_group(NodeId id, GroupId group) override;
  void leave_group(NodeId id, GroupId group) override;
  void send(NodeId from, NodeId to, Payload payload) override;
  void multicast(NodeId from, GroupId group, Payload payload) override;
  Time now() const override;
  Time now_coarse() const override;
  TimerService& timers(NodeId id) override;
  void post(NodeId id, std::function<void()> fn) override;
  bool wait_until(const std::function<bool()>& pred,
                  Duration max_wait = 30 * kSecond) override;
  Rng fork_rng() override;

  Stats stats() const;
  unsigned worker_count() const { return static_cast<unsigned>(workers_.size()); }

  /// Scheduler health of one worker (snapshot; cumulative since start).
  /// Strand lag is run-start minus due time — how long ready work sat in
  /// the inbox behind other strands' callbacks.
  struct WorkerSched {
    std::uint64_t tasks = 0;            ///< callbacks run to completion
    std::uint64_t lag_us_sum = 0;       ///< total strand lag
    std::uint64_t lag_us_max = 0;       ///< worst single strand lag
    std::uint64_t busy_us = 0;          ///< time spent inside callbacks
    std::uint64_t tombstones = 0;       ///< cancelled timer entries discarded
    std::uint64_t cancels = 0;          ///< cancel_timer hits
    std::uint64_t queue_depth = 0;      ///< inbox size right now
    std::uint64_t queue_depth_max = 0;  ///< high-water inbox size
  };
  struct SchedStats {
    std::vector<WorkerSched> workers;
    std::uint64_t lock_wait_us = 0;  ///< sender time blocked on mu_
    Time uptime_us = 0;              ///< wall time since construction
  };
  /// Snapshot of the scheduler telemetry (exported as the transport.sched.*
  /// metric families by obs::SchedExporter; see DESIGN.md §13).
  SchedStats sched_stats() const;

 private:
  enum class TaskKind : std::uint8_t { kDeliver, kTimer, kPost };

  /// One unit of strand work: a delivery, a due timer, or a posted closure.
  struct Task {
    Time due = 0;            ///< transport-time deadline
    std::uint64_t seq = 0;   ///< global enqueue order; FIFO tie-break
    TaskKind kind = TaskKind::kPost;
    NodeId node = kNoNode;   ///< strand owner (the destination)
    NodeId from = kNoNode;   ///< sender, for deliveries
    TimerId timer = kInvalidTimer;
    Payload payload;
    std::function<void()> fn;
  };
  struct TaskLater {
    bool operator()(const Task& a, const Task& b) const {
      if (a.due != b.due) return a.due > b.due;
      return a.seq > b.seq;
    }
  };

  /// One worker thread: the merged, time-ordered inbox of every node strand
  /// assigned to it, plus the execution lock that serializes its callbacks
  /// against fences (bind/remove_node) and wait_until.
  struct Worker {
    Mutex mu;
    CondVar cv;  ///< signaled on enqueue and stop; waits under mu
    std::vector<Task> inbox TIAMAT_GUARDED_BY(mu);  ///< min-heap by (due, seq)
    /// Scheduled, not yet fired; a cancelled id's heap entry is a tombstone.
    std::unordered_set<TimerId> live_timers TIAMAT_GUARDED_BY(mu);
    bool stop TIAMAT_GUARDED_BY(mu) = false;
    std::uint64_t depth_max TIAMAT_GUARDED_BY(mu) = 0;  ///< inbox high water
    /// Scheduler telemetry cells: written by the one worker thread (and
    /// cancel_timer for cancels), read by sched_stats() from anywhere —
    /// relaxed atomics, monotone, never torn. Cache-line aligned so the
    /// per-task bumps never invalidate the line senders hit through `mu`,
    /// and single-writer cells use load+store (no RMW) via `bump()`.
    struct alignas(64) SchedCells {
      std::atomic<std::uint64_t> tasks{0};
      std::atomic<std::uint64_t> lag_sum{0};
      std::atomic<std::uint64_t> lag_max{0};
      std::atomic<std::uint64_t> busy{0};
      std::atomic<std::uint64_t> tombstones{0};
      std::atomic<std::uint64_t> cancels{0};  ///< multi-writer: RMW only here

      /// Single-writer increment: plain load+store beats `lock xadd` on the
      /// hot path, and relaxed ordering is all a monotone gauge needs.
      static void bump(std::atomic<std::uint64_t>& c, std::uint64_t n = 1) {
        c.store(c.load(std::memory_order_relaxed) + n,
                std::memory_order_relaxed);
      }
    };
    SchedCells sched;
    /// Held for the duration of every callback. Guards no data — it exists
    /// so fence() and wait_until() can exclude themselves from the strand
    /// (see the TIAMAT_EXCLUDES contracts on run_task/fence below). Never
    /// nested with mu; run_task acquires it before the registry mu_.
    Mutex exec_mu;
    std::thread thread;
  };

  /// Per-node TimerService facade; lives until the transport dies (remove_
  /// node only quiesces it), so teardown-order cancels stay safe.
  class NodeTimers final : public TimerService {
   public:
    NodeTimers(LoopbackTransport* t, NodeId node, std::size_t worker)
        : t_(t), node_(node), worker_(worker) {}
    Time now() const override { return t_->now(); }
    TimerId schedule_at(Time when, std::function<void()> fn) override {
      return t_->schedule_timer(node_, worker_, when, std::move(fn));
    }
    bool cancel(TimerId id) override { return t_->cancel_timer(worker_, id); }

   private:
    LoopbackTransport* t_;
    NodeId node_;
    std::size_t worker_;
  };

  struct Node {
    std::size_t worker = 0;
    bool online = true;
    bool closed = false;
    DeliveryHandler handler;
    std::set<GroupId> groups;
    std::unique_ptr<NodeTimers> timers;
  };

  TimerId schedule_timer(NodeId node, std::size_t worker, Time when,
                         std::function<void()> fn);
  bool cancel_timer(std::size_t worker, TimerId id);
  void enqueue(std::size_t worker, Task task);
  void deliver_one(NodeId from, NodeId to, const Node& dest, Payload payload)
      TIAMAT_REQUIRES(mu_);
  void worker_loop(std::size_t index);
  /// Runs one task on its strand: exec_mu held across the callback, the
  /// registry lock only for the closed/online/handler snapshot.
  void run_task(Worker& w, Task& task) TIAMAT_EXCLUDES(w.mu, w.exec_mu, mu_);
  /// Blocks until no callback of `w`'s strand is in flight. No-op when
  /// already on that strand's worker thread (the caller IS the callback).
  void fence(Worker& w) TIAMAT_EXCLUDES(w.exec_mu);

  const LoopbackOptions opts_;
  const std::chrono::steady_clock::time_point start_;

  /// Registry lock: node table + groups + stats ledger + rng. Lock order
  /// is exec_mu -> mu_ -> Worker::mu (run_task snapshots the registry under
  /// the strand's exec_mu; the send path enqueues into a worker inbox while
  /// holding mu_); no path takes them in the reverse direction.
  mutable Mutex mu_;
  std::map<NodeId, Node> nodes_ TIAMAT_GUARDED_BY(mu_);
  NodeId next_node_ TIAMAT_GUARDED_BY(mu_) = 1;
  Rng rng_ TIAMAT_GUARDED_BY(mu_);
  Stats stats_ TIAMAT_GUARDED_BY(mu_);

  std::atomic<std::uint64_t> next_seq_{1};
  std::atomic<TimerId> next_timer_{1};
  /// Sender time spent blocked acquiring mu_ (send/multicast contention;
  /// uncontended acquisitions cost no clock read).
  std::atomic<std::uint64_t> lock_wait_us_{0};
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace tiamat::transport
