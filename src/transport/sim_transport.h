// Transport backend over the deterministic simulator.
//
// This adapter is the ONLY file outside src/sim that may include
// sim/network.h (enforced by scripts/lint_tiamat.py's layering rule): the
// simulated radio network, its scripted visibility and its discrete-event
// queue stay the canonical test substrate, and protocol code reaches them
// exclusively through the Transport interface. Scenario scripting (link
// overrides, mobility, positions) keeps full access via network().

#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "sim/network.h"
#include "transport/transport.h"

namespace tiamat::transport {

class SimTransport final : public Transport {
 public:
  explicit SimTransport(sim::Network& net) : net_(net) {}

  // ---- Transport -----------------------------------------------------------
  NodeId add_node(NodeOptions opts = {}) override {
    return net_.add_node(sim::Position{opts.x, opts.y});
  }
  void remove_node(NodeId id) override {
    if (net_.node_exists(id)) net_.remove_node(id);
  }
  bool node_exists(NodeId id) const override { return net_.node_exists(id); }
  void set_online(NodeId id, bool online) override {
    net_.set_online(id, online);
  }
  bool online(NodeId id) const override { return net_.online(id); }
  bool visible(NodeId a, NodeId b) const override {
    return net_.visible(a, b);
  }
  std::vector<NodeId> visible_from(NodeId id) const override {
    return net_.visible_from(id);
  }
  void bind(NodeId id, DeliveryHandler handler) override {
    net_.bind(id, std::move(handler));
  }
  void join_group(NodeId id, GroupId group) override {
    net_.join_group(id, group);
  }
  void leave_group(NodeId id, GroupId group) override {
    net_.leave_group(id, group);
  }
  void send(NodeId from, NodeId to, Payload payload) override {
    net_.send(from, to, std::move(payload));
  }
  void multicast(NodeId from, GroupId group, Payload payload) override {
    net_.multicast(from, group, std::move(payload));
  }
  Time now() const override { return net_.now(); }

  /// One shared TimerService: the event queue. Single-threaded, so strand
  /// affinity is vacuous.
  TimerService& timers(NodeId) override { return net_.queue(); }

  /// Synchronous: the caller IS the only strand.
  void post(NodeId, std::function<void()> fn) override {
    if (fn) fn();
  }

  bool wait_until(const std::function<bool()>& pred,
                  Duration max_wait = 30 * kSecond) override {
    const Time deadline = max_wait >= kNever - net_.now()
                              ? kNever
                              : net_.now() + (max_wait < 0 ? 0 : max_wait);
    while (!pred()) {
      if (net_.now() >= deadline) break;
      if (!net_.queue().step()) break;  // quiesced: no progress possible
    }
    return pred();
  }

  Rng fork_rng() override { return net_.rng().fork(); }

  // ---- Scenario scripting escape hatch ------------------------------------
  sim::Network& network() { return net_; }
  const sim::Network& network() const { return net_; }
  sim::EventQueue& queue() { return net_.queue(); }

 private:
  sim::Network& net_;
};

}  // namespace tiamat::transport
