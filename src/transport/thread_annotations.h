// Clang Thread Safety Analysis vocabulary for the threaded transport
// backends (DESIGN.md #11).
//
// The repo's concurrency story rests on one contract: protocol code is
// single-strand (lint-enforced — the `concurrency` rule confines thread
// machinery to src/transport/), and the transport backends that DO use
// threads prove their locking discipline at compile time with clang's
// -Wthread-safety. This header defines both halves of that proof:
//
//   1. TIAMAT_* attribute macros wrapping clang's thread-safety
//      attributes. Under any non-clang compiler they expand to nothing, so
//      the annotations are free documentation everywhere and a hard gate
//      under `cmake --preset tsa` (clang, -Werror=thread-safety).
//
//   2. Mutex / MutexLock / CondVar — thin, zero-overhead wrappers over
//      <mutex>/<condition_variable> that carry the capability attributes
//      std::mutex itself lacks. Every mutex in src/ must be a
//      transport::Mutex: the linter's `annotation-coverage` rule rejects
//      raw std::mutex members (TSA cannot see through them) and requires
//      every Mutex member to appear in at least one TIAMAT_GUARDED_BY /
//      TIAMAT_REQUIRES / TIAMAT_ACQUIRE / TIAMAT_EXCLUDES relationship.
//
// Convention (see DESIGN.md #11 for the full catalog):
//   - data members:   guarded data is declared `T x TIAMAT_GUARDED_BY(mu_);`
//   - private helpers called under a lock: `TIAMAT_REQUIRES(mu_)`
//   - functions that must NOT be entered with a lock held (they take it,
//     or they block on work that does): `TIAMAT_EXCLUDES(mu_)`
//   - the rare site TSA cannot model (a lock set whose cardinality is only
//     known at run time) is marked TIAMAT_NO_THREAD_SAFETY_ANALYSIS with a
//     comment and stays covered by the tsan preset.

#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define TIAMAT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TIAMAT_THREAD_ANNOTATION(x)  // no-op: gcc/msvc have no TSA
#endif

/// Marks a type as a lockable capability; `x` names it in diagnostics.
#define TIAMAT_CAPABILITY(x) TIAMAT_THREAD_ANNOTATION(capability(x))
/// Marks an RAII type whose constructor acquires and destructor releases.
#define TIAMAT_SCOPED_CAPABILITY TIAMAT_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable/writable only while holding `x`.
#define TIAMAT_GUARDED_BY(x) TIAMAT_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose *pointee* is guarded by `x`.
#define TIAMAT_PT_GUARDED_BY(x) TIAMAT_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function precondition: the listed capabilities are held by the caller.
#define TIAMAT_REQUIRES(...) \
  TIAMAT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the listed capabilities (and does not release them).
#define TIAMAT_ACQUIRE(...) \
  TIAMAT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the listed capabilities.
#define TIAMAT_RELEASE(...) \
  TIAMAT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns the given value.
#define TIAMAT_TRY_ACQUIRE(...) \
  TIAMAT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Function precondition: the listed capabilities are NOT held.
#define TIAMAT_EXCLUDES(...) \
  TIAMAT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Runtime assertion that the capability is held (no acquire/release).
#define TIAMAT_ASSERT_CAPABILITY(x) \
  TIAMAT_THREAD_ANNOTATION(assert_capability(x))
/// Function returns a reference to the capability guarding its result.
#define TIAMAT_RETURN_CAPABILITY(x) TIAMAT_THREAD_ANNOTATION(lock_returned(x))
/// Lock-ordering documentation: this capability is acquired before `...`.
#define TIAMAT_ACQUIRED_BEFORE(...) \
  TIAMAT_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
/// Lock-ordering documentation: this capability is acquired after `...`.
#define TIAMAT_ACQUIRED_AFTER(...) \
  TIAMAT_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
/// Escape hatch for the one shape TSA cannot model; always pair with a
/// comment saying why, and keep the site under the tsan gate.
#define TIAMAT_NO_THREAD_SAFETY_ANALYSIS \
  TIAMAT_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace tiamat::transport {

/// std::mutex with the capability attribute TSA needs. Same size, same
/// cost; the only addition is that -Wthread-safety now tracks it.
class TIAMAT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TIAMAT_ACQUIRE() { mu_.lock(); }
  void unlock() TIAMAT_RELEASE() { mu_.unlock(); }
  bool try_lock() TIAMAT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for Mutex (the annotated std::lock_guard).
class TIAMAT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TIAMAT_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() TIAMAT_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to Mutex. wait/wait_for atomically release and
/// reacquire the mutex, so — exactly like std::condition_variable — the
/// caller holds it across the call; TSA sees that through TIAMAT_REQUIRES.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) TIAMAT_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // ownership returns to the caller's scope
  }

  template <class Rep, class Period>
  void wait_for(Mutex& mu, std::chrono::duration<Rep, Period> d)
      TIAMAT_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait_for(lk, d);
    lk.release();
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace tiamat::transport
