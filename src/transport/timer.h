// Clock + timer scheduling, abstracted from the backend that drives them.
//
// Everything in Tiamat that "takes time" — lease expiry, ack timeouts,
// probe windows, store-and-forward retries — schedules through this
// interface. Under the deterministic simulator the implementation is the
// discrete-event queue (sim::EventQueue derives from TimerService), so a run
// is still a pure function of configuration and seed; under the loopback
// backend timers are driven by the machine's monotonic clock on the owning
// node's worker thread.

#pragma once

#include <functional>

#include "transport/types.h"

namespace tiamat::transport {

/// A clock: the current Time in microseconds. Virtual (simulated) or
/// steady-clock-derived, depending on the backend.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual Time now() const = 0;
};

/// Clock + one-shot timer scheduling with cancellation.
///
/// Callback execution contract: timers obtained from Transport::timers(n)
/// fire on n's delivery strand — never concurrently with n's message
/// handlers or other timers of n. Cancellation of a not-yet-fired timer
/// guarantees the callback never runs.
class TimerService : public Clock {
 public:
  /// Schedules `fn` at absolute time `when` (>= now; the past clamps to
  /// now). Returns a handle usable with `cancel`.
  virtual TimerId schedule_at(Time when, std::function<void()> fn) = 0;

  /// Schedules `fn` to run `delay` from now.
  TimerId schedule_after(Duration delay, std::function<void()> fn) {
    return schedule_at(now() + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Cancels a pending timer. Returns false if it already fired, was already
  /// cancelled, or never existed.
  virtual bool cancel(TimerId id) = 0;
};

}  // namespace tiamat::transport
