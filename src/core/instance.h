// A Tiamat instance (§3.1, Figure 2): lease manager + local tuple space +
// communications manager, presenting the *opportunistic logical tuple
// space* to applications.
//
// Public-API summary
// ------------------
//   Instance node(transport);                     // joins the environment
//   node.out({"greeting", "hello"});              // local space (default)
//   node.rd(Pattern{"greeting", any_string()},    // logical space: local +
//           [](auto r){ ... });                   //   every visible instance
//   node.in_at(handle, pattern, cb);              // directed at one space
//   node.out_to_origin(result, policy);           // §2.4 reply-to-source
//
// All read/take operations are continuation-style (the transport owns the
// clock); every operation is leased — a refused lease fails the operation
// before any other work happens (Figure 2's flow).

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "core/adaptation.h"
#include "core/config.h"
#include "core/monitor.h"
#include "core/routing.h"
#include "lease/manager.h"
#include "net/discovery.h"
#include "net/endpoint.h"
#include "net/responder_cache.h"
#include "net/rpc.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "transport/transport.h"
#include "space/eval.h"
#include "space/registry.h"
#include "space/handle.h"
#include "space/local_space.h"

namespace tiamat::obs {
class TimeSeriesRecorder;  // obs/series.h; only register_telemetry needs it
}

namespace tiamat::core {

using tuples::Pattern;
using tuples::Tuple;

/// Outcome of out/eval entry points (synchronous part).
enum class Status : std::uint8_t {
  kOk = 0,
  kLeaseRefused = 1,   ///< negotiation failed: no work performed (Fig. 2)
  kRefusedBySpace = 2, ///< lease byte budget cannot cover the tuple
  kUnavailable = 3,    ///< directed op abandoned (UnavailablePolicy::kAbandon)
  kQueued = 4,         ///< directed op handed to store-and-forward routing
};

const char* to_string(Status s);

/// A successful read/take: the tuple plus the node it came from, which is
/// what out_to_origin (§2.4) consumes.
struct ReadResult {
  Tuple tuple;
  transport::NodeId source = transport::kNoNode;
};

/// Invoked exactly once per read/take operation: a result, or nullopt when
/// the operation's lease expired / no match was reachable.
using ReadCallback = std::function<void(std::optional<ReadResult>)>;

class Instance {
 public:
  using Message = net::Message;
  /// Creates the instance on a fresh transport node. A null `policy` gets
  /// the stock DefaultLeasePolicy with cfg.lease_caps.
  Instance(transport::Transport& tx, Config cfg = {},
           std::unique_ptr<lease::LeasePolicy> policy = nullptr,
           transport::NodeOptions pos = {});

  ~Instance();

  Instance(const Instance&) = delete;
  Instance& operator=(const Instance&) = delete;

  // ---- Identity -----------------------------------------------------------

  transport::NodeId node() const { return node_; }
  const std::string& name() const { return cfg_.name; }
  space::SpaceHandle handle() const;

  // ---- out / eval (local space by default, §2.2) -------------------------

  /// Places `t` in the local space under a negotiated storage lease (the
  /// tuple's expiry is the lease's TTL; its footprint is charged against
  /// the byte budget — "the local space may be refusing to accept the tuple
  /// due to resource shortages").
  Status out(Tuple t);
  Status out(Tuple t, const lease::LeaseRequester& requester);

  /// Starts an active tuple; the resultant tuple appears in the local space
  /// when the computation completes, unless the lease expires first.
  Status eval(space::ActiveTuple at);
  Status eval(space::ActiveTuple at, const lease::LeaseRequester& requester);

  // ---- Logical-space read/take operations (§2.2) --------------------------

  /// Each returns false — without invoking `cb` — when the lease was
  /// refused; otherwise `cb` fires exactly once, possibly synchronously.
  bool rd(const Pattern& p, ReadCallback cb);
  bool rd(const Pattern& p, ReadCallback cb,
          const lease::LeaseRequester& requester);
  bool rdp(const Pattern& p, ReadCallback cb);
  bool rdp(const Pattern& p, ReadCallback cb,
           const lease::LeaseRequester& requester);
  bool in(const Pattern& p, ReadCallback cb);
  bool in(const Pattern& p, ReadCallback cb,
          const lease::LeaseRequester& requester);
  bool inp(const Pattern& p, ReadCallback cb);
  bool inp(const Pattern& p, ReadCallback cb,
           const lease::LeaseRequester& requester);

  // ---- Direct remote operations (§2.4) ------------------------------------

  /// out/eval directed at a specific space. `policy` governs the
  /// unreachable-destination case.
  Status out_at(const space::SpaceHandle& dest, Tuple t,
                UnavailablePolicy policy = UnavailablePolicy::kAbandon);
  Status out_at(const space::SpaceHandle& dest, Tuple t,
                const lease::LeaseRequester& requester,
                UnavailablePolicy policy);

  /// "These take in a tuple which was returned as a result of a prior in,
  /// inp, rd or rdp operation. Tiamat will then attempt to satisfy the
  /// operation at the remote instance where the given tuple was obtained."
  Status out_to_origin(const ReadResult& from, Tuple t,
                       UnavailablePolicy policy = UnavailablePolicy::kRoute);
  Status out_to_origin(const ReadResult& from, Tuple t,
                       const lease::LeaseRequester& requester,
                       UnavailablePolicy policy);

  /// eval directed at a specific space: the *named* computation (shared
  /// via ComputationRegistry — see space/registry.h for why names replace
  /// shipped code in C++) runs at the destination, consuming its leased
  /// resources; the resultant tuple appears in the destination's space.
  /// `done(accepted)` reports whether the destination took the job.
  Status eval_at(const space::SpaceHandle& dest, const std::string& name,
                 Tuple args, std::function<void(bool)> done = nullptr);

  /// Read/take directed at one specific remote space (no propagation).
  bool rd_at(const space::SpaceHandle& dest, const Pattern& p, ReadCallback cb);
  bool rdp_at(const space::SpaceHandle& dest, const Pattern& p,
              ReadCallback cb);
  bool in_at(const space::SpaceHandle& dest, const Pattern& p, ReadCallback cb);
  bool inp_at(const space::SpaceHandle& dest, const Pattern& p,
              ReadCallback cb);
  bool op_at(OpKind kind, const space::SpaceHandle& dest, const Pattern& p,
             ReadCallback cb, const lease::LeaseRequester& requester);

  // ---- Handle discovery (§2.4) ---------------------------------------------

  /// Probes for visible instances and collects their space-handle tuples
  /// (including this instance's own).
  void enumerate_handles(
      std::function<void(std::vector<space::SpaceHandle>)> cb);

  // ---- Introspection --------------------------------------------------------

  /// Named computations this instance can run for itself and for peers.
  space::ComputationRegistry& computations() { return registry_; }

  space::LocalTupleSpace& local_space() { return space_; }
  const space::LocalTupleSpace& local_space() const { return space_; }
  lease::LeaseManager& leases() { return leases_; }
  net::ResponderCache& responders() { return cache_; }
  net::Discovery& discovery() { return discovery_; }
  net::Endpoint& endpoint() { return endpoint_; }
  /// The transport this instance is attached to (backend-agnostic).
  transport::Transport& transport() { return tx_; }
  /// This node's timer strand: callbacks scheduled here run serialized with
  /// message delivery for the node (the simulator's event queue, or the
  /// node's owner worker under the loopback backend).
  transport::TimerService& timers() { return timers_; }
  space::EvalEngine& evals() { return evals_; }
  Monitor& monitor() { return monitor_; }
  /// The instance's metric registry (owned by the Monitor): every counter,
  /// gauge and histogram this instance emits, snapshot-able to JSON.
  obs::Registry& metrics() { return monitor_.registry(); }
  /// Per-instance operation tracer (ring buffer + optional sink).
  obs::Tracer& tracer() { return tracer_; }

  /// Always-on bounded tail of recent trace events; dumped by audit traps.
  const obs::FlightRecorder& flight_recorder() const { return flight_; }
  DeferredRouter& router() { return router_; }
  const Config& config() const { return cfg_; }
  transport::Time now() const { return tx_.now(); }

  /// Number of logical-space operations currently outstanding.
  std::size_t open_ops() const { return ops_.size(); }
  /// Remote requests this instance is currently serving.
  std::size_t serving_count() const { return serving_.size(); }
  /// Responder replies still outstanding: contacted responders that have
  /// not answered any open op, plus Confirms awaiting acknowledgement. The
  /// pending-ack health probe samples this.
  std::size_t pending_ack_count() const {
    std::size_t n = confirms_.size();
    for (const auto& [id, op] : ops_) {
      (void)id;
      n += op.awaiting_first.size();
    }
    return n;
  }

  /// Registers this instance with a telemetry recorder: its metric registry
  /// as a source (label = config().name, refreshing the space memory gauges
  /// each tick) plus the health-probe catalog — waiter backlog, pending-ack
  /// depth, per-tick lease-expiry rate and windowed match-latency p99, with
  /// thresholds from config().probe_thresholds. Breaches emit a
  /// kProbeBreach trace event and bump "probe.breaches". The instance must
  /// outlive the recorder (or the recorder must be stopped first).
  ///
  /// Strand contract (concurrent backends): the recorder must tick on THIS
  /// instance's strand — i.e. be built over tx.timers(node()) — because the
  /// probe lambdas and the memory-gauge refresh read strand-confined space
  /// and protocol state. Registries themselves are striped and safe to
  /// sample from any strand; it is the probe reads that are bound here.
  void register_telemetry(obs::TimeSeriesRecorder& rec);

 private:
  // ---- Originator side of the logical-space protocol (logical_space.cc) --
  struct LogicalOp {
    std::uint64_t id = 0;
    OpKind kind{};
    Pattern pattern;
    std::shared_ptr<lease::Lease> lease;
    ReadCallback cb;
    transport::Time started_at = 0;
    space::WaiterId local_waiter = space::kNoWaiter;
    std::set<transport::NodeId> contacted;        ///< OpRequest sent
    std::set<transport::NodeId> awaiting_first;   ///< no reply yet (ack timeout)
    std::set<transport::NodeId> exhausted;        ///< replied not-serving / no match
    std::vector<transport::NodeId> contact_queue; ///< responders still to try
    // Ordered: op teardown cancels these in node-id order (determinism).
    std::map<transport::NodeId, transport::EventId> ack_timers;
    transport::EventId repoll_timer = transport::kInvalidEvent;
    bool probing = false;
    bool probed_once = false;
    bool directed = false;  ///< §2.4 single-target op: no propagation
    bool done = false;
  };

  bool start_op(OpKind kind, const Pattern& p, ReadCallback cb,
                const lease::LeaseRequester& requester);
  void op_try_local(LogicalOp& op);
  void op_advance(std::uint64_t op_id);
  void op_contact(LogicalOp& op, transport::NodeId target);
  void op_probe(std::uint64_t op_id);
  void op_schedule_repoll(LogicalOp& op);
  void op_on_response(std::uint64_t op_id, transport::NodeId from, const Message& m);
  void op_ack_timeout(std::uint64_t op_id, transport::NodeId target);
  void op_finish(std::uint64_t op_id, std::optional<ReadResult> result);
  void op_lease_ended(std::uint64_t op_id, lease::LeaseState state);
  LogicalOp* find_op(std::uint64_t op_id);
  /// Decides whether a non-blocking op has run out of places to look.
  void op_maybe_conclude_nonblocking(LogicalOp& op);

  // ---- Serving side (remote_ops.cc) ---------------------------------------
  struct Serving {
    std::uint64_t op_id = 0;         ///< originator's op id
    transport::NodeId origin = transport::kNoNode;
    OpKind kind{};
    std::shared_ptr<lease::Lease> lease;
    space::WaiterId waiter = space::kNoWaiter;
    tuples::TupleId tentative = tuples::kNoTuple;
    transport::EventId hold_timer = transport::kInvalidEvent;
    Pattern pattern;          ///< for re-arming blocking in (lost reply)
    transport::Time deadline = 0;   ///< effective waiter deadline
  };

  /// (Re-)arms a blocking destructive waiter for a served `in` request;
  /// also the retransmission path when a "found" reply was lost.
  void arm_serving_in(std::uint64_t key);

  void install_handlers();
  void serve_op_request(transport::NodeId from, const Message& m);
  void serve_cancel(transport::NodeId from, const Message& m);
  void serve_confirm(transport::NodeId from, const Message& m);
  void serve_release(transport::NodeId from, const Message& m);
  void serve_remote_out(transport::NodeId from, const Message& m);
  void serve_remote_eval(transport::NodeId from, const Message& m);
  void serving_deliver(std::uint64_t key, std::optional<Tuple> t,
                       tuples::TupleId tentative_id);
  void serving_drop(std::uint64_t key, bool release_tentative);
  /// Serving table key: origin node + their op id (op ids are per-instance).
  static std::uint64_t serving_key(transport::NodeId origin, std::uint64_t op_id);

  Status do_out(Tuple t, const lease::LeaseRequester& requester);
  Status do_eval(space::ActiveTuple at, const lease::LeaseRequester& requester);
  Status do_directed_out(transport::NodeId dest, Tuple t,
                         const lease::LeaseRequester& requester,
                         UnavailablePolicy policy);
  void send_remote_out(transport::NodeId dest, const Tuple& t, std::uint64_t route_id,
                       transport::Duration ttl);

  /// Records one step of an operation's causal chain; `origin` + `op_id`
  /// identify the operation globally (also across instances, for served
  /// requests). The flight recorder always keeps the tail (bounded ring, a
  /// handful of stores per event); the full tracer runs only when enabled.
  void trace(obs::EventKind kind, transport::NodeId origin, std::uint64_t op_id,
             transport::NodeId peer = transport::kNoNode, std::int64_t detail = 0) {
#if defined(TIAMAT_OBS_OFF)
    // Overhead-gate baseline (scripts/obs_overhead_gate.sh): the whole
    // instrumentation point compiles away, clock read included.
    (void)kind;
    (void)origin;
    (void)op_id;
    (void)peer;
    (void)detail;
#else
    // now_coarse(): exact virtual time on the sim (byte-identical runs),
    // the cached task-start stamp on concurrent backends — a trace burst
    // of ~10 events per op costs zero hardware-clock reads there.
    const obs::TraceEvent e{tx_.now_coarse(), node_, origin, op_id,
                            kind,             peer,  detail};
    flight_.record(e);
    if (tracer_.enabled()) tracer_.record(e);
#endif
  }

  transport::Transport& tx_;
  Config cfg_;
  AdaptiveLeasePolicy* adaptive_ = nullptr;  ///< set iff the policy adapts
  transport::NodeId node_;
  transport::TimerService& timers_;  ///< tx_.timers(node_): this node's strand
  obs::Tracer tracer_;
  obs::FlightRecorder flight_;
  transport::Rng rng_;
  net::Endpoint endpoint_;
  lease::LeaseManager leases_;
  space::LocalTupleSpace space_;
  space::EvalEngine evals_;
  net::ResponderCache cache_;
  net::Discovery discovery_;
  net::Correlator correlator_;
  DeferredRouter router_;
  space::ComputationRegistry registry_;
  Monitor monitor_;

  std::map<std::uint64_t, LogicalOp> ops_;
  std::map<std::uint64_t, Serving> serving_;

  /// Confirm messages are retransmitted until acknowledged: a lost Confirm
  /// would otherwise make the serving side put an already-delivered tuple
  /// back (duplicate delivery).
  struct PendingConfirm {
    transport::NodeId winner = transport::kNoNode;
    int tries_left = 6;
    transport::EventId timer = transport::kInvalidEvent;
  };
  std::map<std::uint64_t, PendingConfirm> confirms_;  // op_id ->
  void send_confirm(std::uint64_t op_id);
};

// ---- Synchronous conveniences (block until resolution) --------------------

/// Waits on the transport until the operation completes; returns its result.
/// Steps the event queue under the sim backend, parks the calling thread
/// under loopback. Only for tests/examples — real applications stay
/// asynchronous.
std::optional<ReadResult> run_rd(Instance& i, const Pattern& p);
std::optional<ReadResult> run_rdp(Instance& i, const Pattern& p);
std::optional<ReadResult> run_in(Instance& i, const Pattern& p);
std::optional<ReadResult> run_inp(Instance& i, const Pattern& p);

}  // namespace tiamat::core
