#include "core/adaptation.h"

#include <algorithm>

namespace tiamat::core {

AdaptiveLeasePolicy::AdaptiveLeasePolicy(lease::DefaultLeasePolicy::Caps caps,
                                         Tuning tuning)
    : base_(caps),
      tuning_(tuning),
      ttl_(caps.default_ttl),
      contacts_(caps.default_contacts) {}

std::optional<lease::LeaseTerms> AdaptiveLeasePolicy::offer(
    const lease::LeaseTerms& requested, const lease::ResourceUsage& usage,
    transport::Time now) {
  // Resource pressure always wins (§5.6): delegate saturation/refusal and
  // clamping to the base policy, but substitute the *adapted* defaults for
  // unbounded request dimensions.
  lease::LeaseTerms effective = requested;
  if (!effective.ttl) effective.ttl = ttl_;
  if (!effective.max_remote_contacts) effective.max_remote_contacts = contacts_;
  return base_.offer(effective, usage, now);
}

void AdaptiveLeasePolicy::observe_match(transport::Duration used,
                                        transport::Duration granted) {
  ++observations_;
  if (granted > 0 && used * 4 <= granted) ++quick_matches_;
  maybe_adapt();
}

void AdaptiveLeasePolicy::observe_expiry() {
  ++observations_;
  ++expiries_;
  maybe_adapt();
}

void AdaptiveLeasePolicy::observe_budget_exhausted(bool found_anyway) {
  if (!found_anyway) ++budget_exhausted_;
  // Counted alongside the match/expiry observation that accompanies it.
}

void AdaptiveLeasePolicy::maybe_adapt() {
  if (observations_ < tuning_.window) return;
  ++rounds_;
  const double expiry_rate =
      static_cast<double>(expiries_) / observations_;
  const double quick_rate =
      static_cast<double>(quick_matches_) / observations_;
  const double exhausted_rate =
      static_cast<double>(budget_exhausted_) / observations_;

  if (expiry_rate > tuning_.expiry_rate_high) {
    // Matches take longer to appear than we wait: stretch grants.
    ttl_ = std::min<transport::Duration>(
        tuning_.max_ttl,
        static_cast<transport::Duration>(static_cast<double>(ttl_) * tuning_.grow));
  } else if (expiry_rate < tuning_.expiry_rate_low && quick_rate > 0.7) {
    // Nearly everything matches almost immediately: stop over-promising.
    ttl_ = std::max<transport::Duration>(
        tuning_.min_ttl, static_cast<transport::Duration>(static_cast<double>(ttl_) *
                                                    tuning_.shrink));
  }

  if (exhausted_rate > 0.5) {
    // Contacting more instances is not producing matches; widening the
    // budget further would just burn radio time — but a *high* expiry rate
    // alongside suggests the match exists somewhere we did not reach, so
    // widen; otherwise tighten.
    if (expiry_rate > tuning_.expiry_rate_high) {
      contacts_ = std::min(tuning_.max_contacts,
                           static_cast<std::uint32_t>(contacts_ * 2));
    } else {
      contacts_ = std::max(tuning_.min_contacts, contacts_ / 2);
    }
  } else if (quick_rate > 0.7 && contacts_ > tuning_.min_contacts) {
    contacts_ = std::max(tuning_.min_contacts,
                         static_cast<std::uint32_t>(contacts_ * 0.75));
  }

  observations_ = 0;
  expiries_ = 0;
  quick_matches_ = 0;
  budget_exhausted_ = 0;
}

}  // namespace tiamat::core
