// Instance construction, local out/eval, directed out, handle discovery and
// the synchronous test conveniences. The logical-space originator protocol
// lives in logical_space.cc; the serving side in remote_ops.cc.

#include "core/instance.h"

#include <utility>

#include "obs/series.h"
#include "tuple/codec.h"

namespace tiamat::core {

const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::kRd:
      return "rd";
    case OpKind::kRdp:
      return "rdp";
    case OpKind::kIn:
      return "in";
    case OpKind::kInp:
      return "inp";
  }
  return "?";
}

const char* to_string(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kLeaseRefused:
      return "lease-refused";
    case Status::kRefusedBySpace:
      return "refused-by-space";
    case Status::kUnavailable:
      return "unavailable";
    case Status::kQueued:
      return "queued";
  }
  return "?";
}

namespace {
std::unique_ptr<lease::LeasePolicy> make_policy(
    std::unique_ptr<lease::LeasePolicy> injected, const Config& cfg) {
  if (injected) return injected;
  return std::make_unique<lease::DefaultLeasePolicy>(cfg.lease_caps);
}
}  // namespace

Instance::Instance(transport::Transport& tx, Config cfg,
                   std::unique_ptr<lease::LeasePolicy> policy,
                   transport::NodeOptions pos)
    : tx_(tx),
      cfg_(std::move(cfg)),
      node_(tx_.add_node(pos)),
      timers_(tx_.timers(node_)),
      tracer_(node_, cfg_.trace_capacity),
      flight_(node_),
      rng_(tx_.fork_rng()),
      endpoint_(tx_, node_),
      leases_(timers_, make_policy(std::move(policy), cfg_)),
      space_(timers_, rng_,
             space::SpaceOptions{cfg_.name, cfg_.persistent_space}),
      evals_(timers_, space_),
      cache_(cfg_.cache_ordering),
      discovery_(endpoint_, timers_, cache_),
      correlator_(timers_),
      router_(timers_, cfg_.route_retry,
              [this](transport::NodeId dest, const Tuple& t, std::uint64_t id,
                     transport::Duration ttl) { send_remote_out(dest, t, id, ttl); }) {
  leases_.set_usage_probe([this] {
    lease::ResourceUsage u;
    u.stored_bytes = space_.footprint();
    u.stored_tuples = space_.size();
    return u;
  });
  // If the injected policy is the §5 adaptive one, feed it op outcomes.
  adaptive_ = dynamic_cast<AdaptiveLeasePolicy*>(&leases_.policy());
  // One registry (the Monitor's) aggregates every subsystem's telemetry.
  tracer_.set_enabled(cfg_.trace_ops);
  leases_.bind_metrics(monitor_.registry());
  space_.bind_metrics(monitor_.registry());
  cache_.bind_metrics(monitor_.registry());
  correlator_.bind_metrics(monitor_.registry());
  discovery_.enable_responder();
  // Endpoint drop paths surface in the metric snapshot and the trace.
  endpoint_.publish_stats(monitor_.registry());
  endpoint_.set_decode_failure_hook([this](transport::NodeId from) {
    trace(obs::EventKind::kDecodeFailure, node_, 0, from);
  });
  install_handlers();
  // Publish this space's handle tuple (§2.4). It carries no lease: the
  // handle lives exactly as long as the instance.
  space_.out(space::make_handle_tuple(handle()));
}

Instance::~Instance() {
  // Cancel every timer that captures `this` before members are torn down.
  transport::TimerService& q = timers_;
  for (auto& [id, op] : ops_) {
    (void)id;
    for (auto& [node, ev] : op.ack_timers) {
      (void)node;
      q.cancel(ev);
    }
    if (op.repoll_timer != transport::kInvalidEvent) q.cancel(op.repoll_timer);
  }
  for (auto& [key, s] : serving_) {
    (void)key;
    if (s.hold_timer != transport::kInvalidEvent) q.cancel(s.hold_timer);
  }
  for (auto& [id, pc] : confirms_) {
    (void)id;
    if (pc.timer != transport::kInvalidEvent) q.cancel(pc.timer);
  }
  // Model departure from the environment: in-flight packets to this node
  // are dropped and it stops being visible.
  if (tx_.node_exists(node_)) tx_.remove_node(node_);
}

space::SpaceHandle Instance::handle() const {
  return space::SpaceHandle{node_, cfg_.name, cfg_.persistent_space};
}

void Instance::register_telemetry(obs::TimeSeriesRecorder& rec) {
  const std::string label = cfg_.name;
  rec.add_source(label, &monitor_.registry(),
                 [this] { space_.export_memory_gauges(monitor_.registry()); });

  // Every breach leaves the same two footprints: a kProbeBreach trace event
  // (detail = the sampled value, truncated) and a per-probe breach counter.
  auto breach = [this](const char* probe) {
    return [this, probe](double value, transport::Time) {
      trace(obs::EventKind::kProbeBreach, node_, 0, transport::kNoNode,
            static_cast<std::int64_t>(value));
      ++monitor_.registry().counter("probe.breaches", {{"probe", probe}});
    };
  };

  const Config::ProbeThresholds& th = cfg_.probe_thresholds;
  rec.add_probe(label, obs::Probe{
                           "waiter_backlog",
                           th.waiter_backlog,
                           [this] {
                             return static_cast<double>(space_.waiter_count());
                           },
                           breach("waiter_backlog"),
                       });
  rec.add_probe(label, obs::Probe{
                           "pending_acks",
                           th.pending_acks,
                           [this] {
                             return static_cast<double>(pending_ack_count());
                           },
                           breach("pending_acks"),
                       });
  // Rate probes are windowed: each tick samples the change since the
  // previous tick, not the lifetime total.
  rec.add_probe(label,
                obs::Probe{
                    "lease_expiry_rate",
                    th.lease_expiry_per_tick,
                    [this, prev = std::uint64_t{0}]() mutable {
                      const std::uint64_t cur =
                          monitor_.counters().lease_expired.value();
                      const double d = static_cast<double>(cur - prev);
                      prev = cur;
                      return d;
                    },
                    breach("lease_expiry_rate"),
                });
  rec.add_probe(label,
                obs::Probe{
                    "match_latency_p99_us",
                    th.match_p99_us,
                    [this, prev = obs::QuantileSketch{}]() mutable {
                      const obs::QuantileSketch& cur = monitor_.op_latency();
                      const obs::QuantileSketch win = cur.delta_since(prev);
                      prev = cur;
                      return win.count() == 0 ? 0.0 : win.p99();
                    },
                    breach("match_latency_p99_us"),
                });
}

// ---- out / eval -------------------------------------------------------------

Status Instance::out(Tuple t) {
  return do_out(std::move(t), lease::FlexibleRequester{});
}

Status Instance::out(Tuple t, const lease::LeaseRequester& requester) {
  return do_out(std::move(t), requester);
}

Status Instance::do_out(Tuple t, const lease::LeaseRequester& requester) {
  auto l = leases_.negotiate(requester);
  if (!l) {
    ++monitor_.counters().outs_refused;
    return Status::kLeaseRefused;
  }
  if (!l->charge_bytes(t.footprint())) {
    // "The local space may be refusing to accept the tuple due to resource
    // shortages" (§2.4): the granted byte budget cannot cover the tuple.
    ++monitor_.counters().outs_refused;
    l->release();
    return Status::kRefusedBySpace;
  }
  tuples::TupleId id = space_.out(std::move(t));
  ++monitor_.counters().outs_local;
  if (id == tuples::kNoTuple) {
    // Consumed synchronously by a blocked waiter; storage never happened.
    l->release();
    return Status::kOk;
  }
  // The tuple lives exactly as long as its storage lease (§2.5): expiry or
  // revocation reclaims it; an explicit release would leave it (the holder
  // gave the lease back without asking for reclamation — not used by the
  // public API, which lets leases run their course).
  l->on_end([this, id](lease::LeaseState st) {
    if (st != lease::LeaseState::kReleased) space_.reclaim(id);
  });
  return Status::kOk;
}

Status Instance::eval(space::ActiveTuple at) {
  return do_eval(std::move(at), lease::FlexibleRequester{});
}

Status Instance::eval(space::ActiveTuple at,
                      const lease::LeaseRequester& requester) {
  return do_eval(std::move(at), requester);
}

Status Instance::do_eval(space::ActiveTuple at,
                         const lease::LeaseRequester& requester) {
  auto l = leases_.negotiate(requester);
  if (!l) {
    ++monitor_.counters().outs_refused;
    return Status::kLeaseRefused;
  }
  ++monitor_.counters().evals_started;
  const transport::Time halt_by = l->expiry_time();
  // The resultant tuple inherits the operation's lease horizon: "when the
  // lease expires the resultant computation (if it has not already
  // finished) may be halted and the tuple may be removed" (§2.5).
  space::EvalId eid = evals_.submit(std::move(at), halt_by, halt_by);
  l->on_end([this, eid](lease::LeaseState st) {
    if (st == lease::LeaseState::kRevoked) evals_.halt(eid);
  });
  return Status::kOk;
}

// ---- Directed out (§2.4) ------------------------------------------------------

Status Instance::out_at(const space::SpaceHandle& dest, Tuple t,
                        UnavailablePolicy policy) {
  return do_directed_out(dest.node, std::move(t), lease::FlexibleRequester{},
                         policy);
}

Status Instance::out_at(const space::SpaceHandle& dest, Tuple t,
                        const lease::LeaseRequester& requester,
                        UnavailablePolicy policy) {
  return do_directed_out(dest.node, std::move(t), requester, policy);
}

Status Instance::out_to_origin(const ReadResult& from, Tuple t,
                               UnavailablePolicy policy) {
  return do_directed_out(from.source, std::move(t),
                         lease::FlexibleRequester{}, policy);
}

Status Instance::out_to_origin(const ReadResult& from, Tuple t,
                               const lease::LeaseRequester& requester,
                               UnavailablePolicy policy) {
  return do_directed_out(from.source, std::move(t), requester, policy);
}

Status Instance::do_directed_out(transport::NodeId dest, Tuple t,
                                 const lease::LeaseRequester& requester,
                                 UnavailablePolicy policy) {
  if (dest == node_) return do_out(std::move(t), requester);

  auto l = leases_.negotiate(requester);
  if (!l) {
    ++monitor_.counters().outs_refused;
    return Status::kLeaseRefused;
  }
  const transport::Time expiry = l->expiry_time();
  // The local negotiation bounds *our* effort; the destination negotiates
  // its own storage lease when the tuple arrives (§2.5: leases are not
  // transferable across instances).
  l->release();

  if (tx_.visible(node_, dest)) {
    std::uint64_t route_id = router_.enqueue(dest, std::move(t), expiry);
    (void)route_id;  // first attempt fires inside enqueue
    ++monitor_.counters().remote_outs_delivered;
    return Status::kOk;
  }

  switch (policy) {
    case UnavailablePolicy::kAbandon:
      ++monitor_.counters().remote_outs_abandoned;
      return Status::kUnavailable;
    case UnavailablePolicy::kLocal: {
      Status s = do_out(std::move(t), requester);
      return s;
    }
    case UnavailablePolicy::kRoute:
      router_.enqueue(dest, std::move(t), expiry);
      ++monitor_.counters().remote_outs_routed;
      return Status::kQueued;
  }
  return Status::kUnavailable;
}

void Instance::send_remote_out(transport::NodeId dest, const Tuple& t,
                               std::uint64_t route_id, transport::Duration ttl) {
  Message m;
  m.type = net::kRemoteOut;
  m.op_id = route_id;
  m.origin = node_;
  m.h(static_cast<std::int64_t>(ttl == transport::kNever ? -1 : ttl));
  m.tuple = t;
  endpoint_.send(dest, m);
}

Status Instance::eval_at(const space::SpaceHandle& dest,
                         const std::string& name, Tuple args,
                         std::function<void(bool)> done) {
  if (dest.node == node_) {
    const auto* c = registry_.find(name);
    if (c == nullptr) {
      if (done) done(false);
      return Status::kUnavailable;
    }
    auto l = leases_.negotiate(lease::FlexibleRequester{});
    if (!l) {
      ++monitor_.counters().outs_refused;
      if (done) done(false);
      return Status::kLeaseRefused;
    }
    ++monitor_.counters().evals_started;
    const transport::Time halt_by = l->expiry_time();
    space::EvalId eid = evals_.submit_fn([c, args] { return c->fn(args); },
                                         c->cost(args), halt_by, halt_by);
    l->on_end([this, eid](lease::LeaseState st) {
      if (st == lease::LeaseState::kRevoked) evals_.halt(eid);
    });
    if (done) done(true);
    return Status::kOk;
  }

  auto l = leases_.negotiate(lease::FlexibleRequester{});
  if (!l) {
    ++monitor_.counters().outs_refused;
    if (done) done(false);
    return Status::kLeaseRefused;
  }
  const transport::Time expiry = l->expiry_time();
  l->release();  // local effort only; the destination leases the real work
  if (!tx_.visible(node_, dest.node)) {
    ++monitor_.counters().remote_outs_abandoned;
    if (done) done(false);
    return Status::kUnavailable;
  }
  const std::uint64_t id = correlator_.next_op_id();
  Message m;
  m.type = net::kRemoteEval;
  m.op_id = id;
  m.origin = node_;
  m.h(name);
  m.h(static_cast<std::int64_t>(
      expiry == transport::kNever ? -1 : expiry - tx_.now()));
  m.tuple = std::move(args);
  if (done) {
    correlator_.expect(
        id,
        [done](transport::NodeId, const Message& r) {
          done(!r.headers.empty() && r.hbool(0));
          return false;
        },
        tx_.now() + cfg_.response_timeout * 4,
        [done] { done(false); });
  }
  endpoint_.send(dest.node, m);
  return Status::kOk;
}

// ---- Logical-space entry points ----------------------------------------------

bool Instance::rd(const Pattern& p, ReadCallback cb) {
  return start_op(OpKind::kRd, p, std::move(cb), lease::FlexibleRequester{});
}
bool Instance::rd(const Pattern& p, ReadCallback cb,
                  const lease::LeaseRequester& requester) {
  return start_op(OpKind::kRd, p, std::move(cb), requester);
}
bool Instance::rdp(const Pattern& p, ReadCallback cb) {
  return start_op(OpKind::kRdp, p, std::move(cb), lease::FlexibleRequester{});
}
bool Instance::rdp(const Pattern& p, ReadCallback cb,
                   const lease::LeaseRequester& requester) {
  return start_op(OpKind::kRdp, p, std::move(cb), requester);
}
bool Instance::in(const Pattern& p, ReadCallback cb) {
  return start_op(OpKind::kIn, p, std::move(cb), lease::FlexibleRequester{});
}
bool Instance::in(const Pattern& p, ReadCallback cb,
                  const lease::LeaseRequester& requester) {
  return start_op(OpKind::kIn, p, std::move(cb), requester);
}
bool Instance::inp(const Pattern& p, ReadCallback cb) {
  return start_op(OpKind::kInp, p, std::move(cb), lease::FlexibleRequester{});
}
bool Instance::inp(const Pattern& p, ReadCallback cb,
                   const lease::LeaseRequester& requester) {
  return start_op(OpKind::kInp, p, std::move(cb), requester);
}

bool Instance::rd_at(const space::SpaceHandle& dest, const Pattern& p,
                     ReadCallback cb) {
  return op_at(OpKind::kRd, dest, p, std::move(cb),
               lease::FlexibleRequester{});
}
bool Instance::rdp_at(const space::SpaceHandle& dest, const Pattern& p,
                      ReadCallback cb) {
  return op_at(OpKind::kRdp, dest, p, std::move(cb),
               lease::FlexibleRequester{});
}
bool Instance::in_at(const space::SpaceHandle& dest, const Pattern& p,
                     ReadCallback cb) {
  return op_at(OpKind::kIn, dest, p, std::move(cb),
               lease::FlexibleRequester{});
}
bool Instance::inp_at(const space::SpaceHandle& dest, const Pattern& p,
                      ReadCallback cb) {
  return op_at(OpKind::kInp, dest, p, std::move(cb),
               lease::FlexibleRequester{});
}

// ---- Handle discovery ----------------------------------------------------------

void Instance::enumerate_handles(
    std::function<void(std::vector<space::SpaceHandle>)> cb) {
  discovery_.probe(cfg_.probe_window, [this, cb = std::move(cb)](std::size_t) {
    auto handles = std::make_shared<std::vector<space::SpaceHandle>>();
    handles->push_back(handle());
    const auto order = cache_.contact_order();
    auto remaining = std::make_shared<std::size_t>(order.size());
    if (order.empty()) {
      cb(*handles);
      return;
    }
    auto done_one = [handles, remaining, cb](std::optional<ReadResult> r) {
      if (r) {
        if (auto h = space::parse_handle_tuple(r->tuple)) {
          handles->push_back(*h);
        }
      }
      if (--*remaining == 0) cb(*handles);
    };
    for (transport::NodeId target : order) {
      space::SpaceHandle dest;
      dest.node = target;
      if (!rdp_at(dest, space::handle_pattern(), done_one)) {
        if (--*remaining == 0) cb(*handles);
      }
    }
  });
}

// ---- Synchronous conveniences ---------------------------------------------------

namespace {
std::optional<ReadResult> run_op(Instance& i, OpKind kind, const Pattern& p) {
  auto out = std::make_shared<std::optional<ReadResult>>();
  auto fired = std::make_shared<bool>(false);
  auto cb = [out, fired](std::optional<ReadResult> r) {
    *out = std::move(r);
    *fired = true;
  };
  bool granted = false;
  switch (kind) {
    case OpKind::kRd:
      granted = i.rd(p, cb);
      break;
    case OpKind::kRdp:
      granted = i.rdp(p, cb);
      break;
    case OpKind::kIn:
      granted = i.in(p, cb);
      break;
    case OpKind::kInp:
      granted = i.inp(p, cb);
      break;
  }
  if (!granted) return std::nullopt;
  // Blocking ops wait up to their lease TTL; leave headroom beyond it so the
  // expiry path itself can run before the wait gives up.
  i.transport().wait_until(
      [&] { return *fired; },
      i.config().lease_caps.max_ttl + 10 * transport::kSecond);
  if (!*fired) return std::nullopt;
  return *out;
}
}  // namespace

std::optional<ReadResult> run_rd(Instance& i, const Pattern& p) {
  return run_op(i, OpKind::kRd, p);
}
std::optional<ReadResult> run_rdp(Instance& i, const Pattern& p) {
  return run_op(i, OpKind::kRdp, p);
}
std::optional<ReadResult> run_in(Instance& i, const Pattern& p) {
  return run_op(i, OpKind::kIn, p);
}
std::optional<ReadResult> run_inp(Instance& i, const Pattern& p) {
  return run_op(i, OpKind::kInp, p);
}

}  // namespace tiamat::core
