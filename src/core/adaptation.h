// Adaptive lease policy — an implementation of the paper's §5.4/§5.5
// challenges ("Modelling Application Behaviour" / "Adapting to Application
// Behaviour").
//
// The policy watches the outcomes of the operations it leased:
//
//   * A high rate of *lease expiries* on blocking operations means the
//     granted TTLs are too short for how long matches actually take to
//     appear in this environment — the policy stretches its TTL grants.
//   * A high rate of operations satisfied within a small fraction of the
//     lease means grants are wastefully long (each blocked op pins remote
//     waiters and local state for its whole TTL) — the policy shrinks them.
//   * Remote-contact budgets adapt the same way: if operations keep
//     exhausting their contact budget without a match, there is no point
//     contacting even more instances; if matches consistently come from
//     the first contact or two, budgets shrink toward that.
//
// It also resolves the §5.6 conflict between applications and the RTS the
// simplest defensible way: resource pressure (from the usage probe) always
// wins — adaptation only ever adjusts *within* the configured caps.

#pragma once

#include <cstdint>
#include <memory>

#include "lease/policy.h"

namespace tiamat::core {

struct AdaptiveTuning {
  /// Bounds adaptation may move the default TTL within.
  transport::Duration min_ttl = transport::seconds(1);
  transport::Duration max_ttl = transport::seconds(120);
  /// Bounds for the default contact budget.
  std::uint32_t min_contacts = 2;
  std::uint32_t max_contacts = 64;
  /// Multiplicative step per adaptation round.
  double grow = 1.5;
  double shrink = 0.75;
  /// Observations per adaptation round.
  std::uint32_t window = 32;
  /// Expiry-rate thresholds driving TTL adaptation.
  double expiry_rate_high = 0.3;
  double expiry_rate_low = 0.05;
};

class AdaptiveLeasePolicy final : public lease::LeasePolicy {
 public:
  using Tuning = AdaptiveTuning;

  explicit AdaptiveLeasePolicy(lease::DefaultLeasePolicy::Caps caps = {},
                               Tuning tuning = {});

  // ---- LeasePolicy -------------------------------------------------------
  std::optional<lease::LeaseTerms> offer(const lease::LeaseTerms& requested,
                                         const lease::ResourceUsage& usage,
                                         transport::Time now) override;

  // ---- Behaviour feedback (§5.4: run-time monitoring) ---------------------

  /// An operation finished with a match, `used` of its `granted` TTL spent.
  void observe_match(transport::Duration used, transport::Duration granted);

  /// An operation's lease expired without a match.
  void observe_expiry();

  /// An operation exhausted its contact budget without finding a match at
  /// any of the contacted instances.
  void observe_budget_exhausted(bool found_anyway);

  // ---- Introspection --------------------------------------------------------

  transport::Duration current_ttl() const { return ttl_; }
  std::uint32_t current_contacts() const { return contacts_; }
  std::uint64_t adaptation_rounds() const { return rounds_; }

 private:
  void maybe_adapt();

  lease::DefaultLeasePolicy base_;
  Tuning tuning_;
  transport::Duration ttl_;
  std::uint32_t contacts_;

  // Current observation window.
  std::uint32_t observations_ = 0;
  std::uint32_t expiries_ = 0;
  std::uint32_t quick_matches_ = 0;  ///< matched within 25% of the TTL
  std::uint32_t budget_exhausted_ = 0;
  std::uint64_t rounds_ = 0;
};

}  // namespace tiamat::core
