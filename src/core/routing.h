// Store-and-forward routing for directed out/eval (§2.4, UnavailablePolicy
// ::kRoute): when the destination space is unreachable, the tuple is queued
// and delivery is re-attempted periodically for as long as its lease lasts.

#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "sim/clock.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "tuple/tuple.h"

namespace tiamat::core {

class DeferredRouter {
 public:
  struct Stats {
    std::uint64_t queued = 0;
    std::uint64_t delivered = 0;
    std::uint64_t expired = 0;
    std::uint64_t attempts = 0;
  };

  /// `attempt(dest, tuple, route_id, remaining_ttl)` transmits one delivery
  /// try; the owner must call `acked(route_id)` when the destination
  /// acknowledges.
  using AttemptFn = std::function<void(sim::NodeId, const tuples::Tuple&,
                                       std::uint64_t, sim::Duration)>;

  DeferredRouter(sim::EventQueue& queue, sim::Duration retry_interval,
                 AttemptFn attempt);
  ~DeferredRouter();

  DeferredRouter(const DeferredRouter&) = delete;
  DeferredRouter& operator=(const DeferredRouter&) = delete;

  /// Queues `t` for `dest`; tries immediately, then every retry interval
  /// until `expiry`. Returns the route id.
  std::uint64_t enqueue(sim::NodeId dest, tuples::Tuple t, sim::Time expiry);

  /// Destination acknowledged; stops retrying. False if unknown (stale ack).
  bool acked(std::uint64_t route_id);

  std::size_t pending() const { return entries_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    sim::NodeId dest;
    tuples::Tuple tuple;
    sim::Time expiry;
    sim::EventId timer = sim::kInvalidEvent;
  };

  void try_deliver(std::uint64_t id);

  sim::EventQueue& queue_;
  sim::Duration retry_interval_;
  AttemptFn attempt_;
  std::uint64_t next_id_ = 1;
  // Ordered: teardown cancels retry timers in ascending route-id order.
  std::map<std::uint64_t, Entry> entries_;
  Stats stats_;
};

}  // namespace tiamat::core
