// Store-and-forward routing for directed out/eval (§2.4, UnavailablePolicy
// ::kRoute): when the destination space is unreachable, the tuple is queued
// and delivery is re-attempted periodically for as long as its lease lasts.

#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "transport/types.h"
#include "transport/timer.h"
#include "transport/transport.h"
#include "tuple/tuple.h"

namespace tiamat::core {

class DeferredRouter {
 public:
  struct Stats {
    std::uint64_t queued = 0;
    std::uint64_t delivered = 0;
    std::uint64_t expired = 0;
    std::uint64_t attempts = 0;
  };

  /// `attempt(dest, tuple, route_id, remaining_ttl)` transmits one delivery
  /// try; the owner must call `acked(route_id)` when the destination
  /// acknowledges.
  using AttemptFn = std::function<void(transport::NodeId, const tuples::Tuple&,
                                       std::uint64_t, transport::Duration)>;

  DeferredRouter(transport::TimerService& queue, transport::Duration retry_interval,
                 AttemptFn attempt);
  ~DeferredRouter();

  DeferredRouter(const DeferredRouter&) = delete;
  DeferredRouter& operator=(const DeferredRouter&) = delete;

  /// Queues `t` for `dest`; tries immediately, then every retry interval
  /// until `expiry`. Returns the route id.
  std::uint64_t enqueue(transport::NodeId dest, tuples::Tuple t, transport::Time expiry);

  /// Destination acknowledged; stops retrying. False if unknown (stale ack).
  bool acked(std::uint64_t route_id);

  std::size_t pending() const { return entries_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    transport::NodeId dest;
    tuples::Tuple tuple;
    transport::Time expiry;
    transport::EventId timer = transport::kInvalidEvent;
  };

  void try_deliver(std::uint64_t id);

  transport::TimerService& queue_;
  transport::Duration retry_interval_;
  AttemptFn attempt_;
  std::uint64_t next_id_ = 1;
  // Ordered: teardown cancels retry timers in ascending route-id order.
  std::map<std::uint64_t, Entry> entries_;
  Stats stats_;
};

}  // namespace tiamat::core
