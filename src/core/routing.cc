#include "core/routing.h"

namespace tiamat::core {

DeferredRouter::DeferredRouter(transport::TimerService& queue,
                               transport::Duration retry_interval, AttemptFn attempt)
    : queue_(queue),
      retry_interval_(retry_interval),
      attempt_(std::move(attempt)) {}

DeferredRouter::~DeferredRouter() {
  for (auto& [id, e] : entries_) {
    (void)id;
    if (e.timer != transport::kInvalidEvent) queue_.cancel(e.timer);
  }
}

std::uint64_t DeferredRouter::enqueue(transport::NodeId dest, tuples::Tuple t,
                                      transport::Time expiry) {
  std::uint64_t id = next_id_++;
  Entry e;
  e.dest = dest;
  e.tuple = std::move(t);
  e.expiry = expiry;
  entries_.emplace(id, std::move(e));
  ++stats_.queued;
  try_deliver(id);
  return id;
}

void DeferredRouter::try_deliver(std::uint64_t id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  Entry& e = it->second;
  const transport::Time now = queue_.now();
  if (e.expiry != transport::kNever && now >= e.expiry) {
    ++stats_.expired;
    entries_.erase(it);
    return;
  }
  ++stats_.attempts;
  const transport::Duration remaining =
      e.expiry == transport::kNever ? transport::kNever : e.expiry - now;
  attempt_(e.dest, e.tuple, id, remaining);
  // Schedule the next retry; a successful ack cancels it.
  e.timer = queue_.schedule_after(retry_interval_,
                                  [this, id] { try_deliver(id); });
}

bool DeferredRouter::acked(std::uint64_t route_id) {
  auto it = entries_.find(route_id);
  if (it == entries_.end()) return false;
  if (it->second.timer != transport::kInvalidEvent) queue_.cancel(it->second.timer);
  entries_.erase(it);
  ++stats_.delivered;
  return true;
}

}  // namespace tiamat::core
