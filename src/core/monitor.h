// Run-time-support monitoring (§5.2/§6 extension).
//
// The Monitor owns the instance's obs::Registry — the single source of
// truth for every metric the instance emits. Counters keeps the familiar
// field-access API (++monitor.counters().x, monitor.counters().x == 1u) but
// every field is a reference into the registry, so the same numbers appear
// in JSON snapshots with no second bookkeeping path. Per-operation latency
// goes into log-bucketed quantile sketches (aggregate + per-op-kind):
// bounded memory on the hot path, and p50/p90/p99 queries with a fixed
// relative-error bound instead of the old coarse fixed-bucket interpolation.

#pragma once

#include <cstdint>

#include "obs/metrics.h"
#include "transport/types.h"

namespace tiamat::core {

class Monitor {
 public:
  struct Counters {
    explicit Counters(obs::Registry& r)
        : ops_started(r.counter("op.started")),
          ops_lease_refused(r.counter("op.lease_refused")),
          satisfied_local(r.counter("op.satisfied_local")),
          satisfied_remote(r.counter("op.satisfied_remote")),
          no_match(r.counter("op.no_match")),
          lease_expired(r.counter("op.lease_expired")),
          cancelled(r.counter("op.cancels_sent")),
          remote_requests_served(r.counter("serve.requests")),
          remote_serving_refused(r.counter("serve.refused")),
          outs_local(r.counter("out.local")),
          outs_refused(r.counter("out.refused")),
          evals_started(r.counter("eval.started")),
          remote_outs_delivered(r.counter("remote_out.delivered")),
          remote_outs_routed(r.counter("remote_out.routed")),
          remote_outs_abandoned(r.counter("remote_out.abandoned")),
          probes_triggered(r.counter("op.probes")),
          rpc_timeouts(r.counter("rpc.timeouts")),
          tuples_reinserted(r.counter("serve.reinserted")),
          // Same instrument LeaseManager::bind_metrics updates — one
          // source of truth, readable through either API.
          lease_revocations(r.counter("lease.revoked")) {}

    obs::Counter& ops_started;
    obs::Counter& ops_lease_refused;
    obs::Counter& satisfied_local;
    obs::Counter& satisfied_remote;
    obs::Counter& no_match;       ///< non-blocking miss everywhere
    obs::Counter& lease_expired;  ///< blocking op returned nothing
    obs::Counter& cancelled;  ///< CancelOp notices sent to armed responders
    obs::Counter& remote_requests_served;
    obs::Counter& remote_serving_refused;  ///< our policy refused to help
    obs::Counter& outs_local;
    obs::Counter& outs_refused;
    obs::Counter& evals_started;
    obs::Counter& remote_outs_delivered;
    obs::Counter& remote_outs_routed;  ///< deferred via store-and-forward
    obs::Counter& remote_outs_abandoned;
    obs::Counter& probes_triggered;
    obs::Counter& rpc_timeouts;        ///< responders that never answered
    obs::Counter& tuples_reinserted;   ///< tentative removals put back (§2.2)
    obs::Counter& lease_revocations;   ///< leases ended by force (§2.5)
  };

  Monitor()
      : counters_(registry_),
        op_latency_(registry_.sketch("op.latency_us")) {}

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  /// `kind` labels the per-op-kind sketch ("rd", "inp", ...).
  void op_finished(const char* kind, transport::Duration latency) {
#if defined(TIAMAT_OBS_OFF)
    (void)kind;  // overhead-gate baseline: latency sketches compiled out
    (void)latency;
#else
    const auto v = static_cast<double>(latency);
    op_latency_.observe(v);
    registry_.sketch("op.latency_us", {{"op", kind}}).observe(v);
#endif
  }

  /// Per-peer reliability accounting (ack timeouts by responder).
  void peer_timeout(std::uint32_t peer) {
    ++counters_.rpc_timeouts;
    ++registry_.counter("rpc.timeouts", {{"peer", std::to_string(peer)}});
  }

  Counters& counters() { return counters_; }
  const Counters& counters() const { return counters_; }
  obs::QuantileSketch& op_latency() { return op_latency_; }
  obs::Registry& registry() { return registry_; }
  const obs::Registry& registry() const { return registry_; }

 private:
  obs::Registry registry_;
  Counters counters_;
  obs::QuantileSketch& op_latency_;
};

}  // namespace tiamat::core
