// Run-time-support monitoring (§5.2/§6 extension).
//
// Collects the information an adapting instance needs: per-operation
// outcome/latency figures and per-peer reliability history (the latter lives
// in the ResponderCache and feeds the §6 stability-ordered contact list).

#pragma once

#include <cstdint>

#include "sim/clock.h"
#include "sim/stats.h"

namespace tiamat::core {

class Monitor {
 public:
  struct Counters {
    std::uint64_t ops_started = 0;
    std::uint64_t ops_lease_refused = 0;
    std::uint64_t satisfied_local = 0;
    std::uint64_t satisfied_remote = 0;
    std::uint64_t no_match = 0;       ///< non-blocking miss everywhere
    std::uint64_t lease_expired = 0;  ///< blocking op returned nothing
    std::uint64_t cancelled = 0;
    std::uint64_t remote_requests_served = 0;
    std::uint64_t remote_serving_refused = 0;  ///< our policy refused to help
    std::uint64_t outs_local = 0;
    std::uint64_t outs_refused = 0;
    std::uint64_t evals_started = 0;
    std::uint64_t remote_outs_delivered = 0;
    std::uint64_t remote_outs_routed = 0;    ///< deferred via store-and-forward
    std::uint64_t remote_outs_abandoned = 0;
    std::uint64_t probes_triggered = 0;
  };

  void op_finished(sim::Duration latency) {
    op_latency_.add(static_cast<double>(latency));
  }

  Counters& counters() { return counters_; }
  const Counters& counters() const { return counters_; }
  sim::Summary& op_latency() { return op_latency_; }

 private:
  Counters counters_;
  sim::Summary op_latency_;
};

}  // namespace tiamat::core
