// Originator side of the opportunistic logical tuple space (§2.2, §3.1.3).
//
// A logical-space operation runs this state machine:
//
//   negotiate lease ──refused──> fail (no work at all, Figure 2)
//        │
//   try local space ──hit──> finish(local)
//        │ miss
//   contact responder list from the top, removing non-responders;
//   destructive matches are removed *tentatively* at the responder:
//   first response wins (kConfirm), everyone else is released (kRelease /
//   kCancelOp);
//        │ list exhausted & unsatisfied
//   multicast probe; new responders join the bottom of the list; continue;
//        │ still unsatisfied
//   non-blocking: return nothing.
//   blocking: hold a local waiter + remote waiters; optionally re-probe so
//   instances that become visible during the operation participate (§2.2 —
//   the "model" behaviour; the paper's prototype omitted it);
//   lease expiry ends everything and returns nothing (§2.5).

#include "core/instance.h"

#include <algorithm>

namespace tiamat::core {

namespace {
constexpr std::int64_t kNoDeadline = -1;

std::int64_t encode_deadline(transport::Time t) {
  return t == transport::kNever ? kNoDeadline : static_cast<std::int64_t>(t);
}
}  // namespace

Instance::LogicalOp* Instance::find_op(std::uint64_t op_id) {
  auto it = ops_.find(op_id);
  return it == ops_.end() ? nullptr : &it->second;
}

bool Instance::start_op(OpKind kind, const Pattern& p, ReadCallback cb,
                        const lease::LeaseRequester& requester) {
  ++monitor_.counters().ops_started;
  const std::uint64_t id = correlator_.next_op_id();
  trace(obs::EventKind::kOpIssued, node_, id, transport::kNoNode,
        static_cast<std::int64_t>(kind));
  auto l = leases_.negotiate(requester);
  if (!l) {
    // Figure 2: "If a lease is refused, no further work is carried out on
    // the operation."
    ++monitor_.counters().ops_lease_refused;
    trace(obs::EventKind::kLeaseRefused, node_, id);
    return false;
  }
  trace(obs::EventKind::kLeaseGranted, node_, id, transport::kNoNode,
        static_cast<std::int64_t>(l->id()));

  LogicalOp& op = ops_[id];
  op.id = id;
  op.kind = kind;
  op.pattern = p;
  op.lease = l;
  op.cb = std::move(cb);
  op.started_at = tx_.now();

  l->on_end([this, id](lease::LeaseState st) { op_lease_ended(id, st); });

  op_try_local(op);
  // A synchronous local hit finishes the op and erases it from ops_,
  // invalidating `op` — re-find before touching it again.
  LogicalOp* live = find_op(id);
  if (live == nullptr || live->done) return true;

  // Route kOpResponse traffic for this op id. Lifetime is lease-driven, so
  // the correlator itself carries no deadline.
  correlator_.expect(id, [this, id](transport::NodeId from, const Message& m) {
    op_on_response(id, from, m);
    return ops_.contains(id);  // keep routing while the op is open
  });

  // Seed the contact queue from the responder list, top first (§3.1.3).
  live->contact_queue = cache_.contact_order();
  op_advance(id);
  return true;
}

bool Instance::op_at(OpKind kind, const space::SpaceHandle& dest,
                     const Pattern& p, ReadCallback cb,
                     const lease::LeaseRequester& requester) {
  ++monitor_.counters().ops_started;
  if (dest.node == node_) {
    // Directed at ourselves: equivalent to a purely local operation.
    return start_op(kind, p, std::move(cb), requester);
  }
  const std::uint64_t id = correlator_.next_op_id();
  trace(obs::EventKind::kOpIssued, node_, id, dest.node,
        static_cast<std::int64_t>(kind));
  auto l = leases_.negotiate(requester);
  if (!l) {
    ++monitor_.counters().ops_lease_refused;
    trace(obs::EventKind::kLeaseRefused, node_, id);
    return false;
  }
  trace(obs::EventKind::kLeaseGranted, node_, id, transport::kNoNode,
        static_cast<std::int64_t>(l->id()));
  LogicalOp& op = ops_[id];
  op.id = id;
  op.kind = kind;
  op.pattern = p;
  op.lease = l;
  op.cb = std::move(cb);
  op.started_at = tx_.now();
  op.directed = true;

  l->on_end([this, id](lease::LeaseState st) { op_lease_ended(id, st); });
  correlator_.expect(id, [this, id](transport::NodeId from, const Message& m) {
    op_on_response(id, from, m);
    return ops_.contains(id);
  });
  op.contact_queue.push_back(dest.node);
  op_advance(id);
  return true;
}

void Instance::op_try_local(LogicalOp& op) {
  const std::uint64_t id = op.id;
  switch (op.kind) {
    case OpKind::kRdp: {
      if (auto t = space_.rdp(op.pattern)) {
        op_finish(id, ReadResult{*t, node_});
      }
      return;
    }
    case OpKind::kInp: {
      if (auto t = space_.inp(op.pattern)) {
        op_finish(id, ReadResult{*t, node_});
      }
      return;
    }
    case OpKind::kRd: {
      // Register a deadline-less waiter; the lease governs its lifetime.
      auto wid = space_.rd(op.pattern, transport::kNever,
                           [this, id](std::optional<Tuple> t) {
                             if (!t) return;
                             if (LogicalOp* o = find_op(id)) {
                               o->local_waiter = space::kNoWaiter;
                               op_finish(id, ReadResult{*t, node_});
                             }
                           });
      if (LogicalOp* o = find_op(id); o != nullptr && !o->done) {
        o->local_waiter = wid;
      }
      return;
    }
    case OpKind::kIn: {
      auto wid = space_.in(op.pattern, transport::kNever,
                           [this, id](std::optional<Tuple> t) {
                             if (!t) return;
                             if (LogicalOp* o = find_op(id)) {
                               o->local_waiter = space::kNoWaiter;
                               op_finish(id, ReadResult{*t, node_});
                             }
                           });
      if (LogicalOp* o = find_op(id); o != nullptr && !o->done) {
        o->local_waiter = wid;
      }
      return;
    }
  }
}

void Instance::op_advance(std::uint64_t op_id) {
  LogicalOp* op = find_op(op_id);
  if (op == nullptr || op->done) return;

  // Contact the next responder(s). Non-blocking ops probe the list
  // sequentially (one outstanding contact); blocking ops arm a waiter at
  // every reachable instance at once.
  while (!op->contact_queue.empty()) {
    if (!is_blocking(op->kind) && !op->awaiting_first.empty()) return;

    transport::NodeId target = op->contact_queue.front();
    op->contact_queue.erase(op->contact_queue.begin());
    if (target == node_ || op->contacted.contains(target)) continue;

    if (!op->lease->charge_contact()) break;  // contact budget spent
    op_contact(*op, target);
    op = find_op(op_id);  // re-find: sends never reenter, but stay safe
    if (op == nullptr || op->done) return;
  }

  // Queue drained (or budget spent).
  if (!is_blocking(op->kind)) {
    op_maybe_conclude_nonblocking(*op);
    return;
  }

  // Blocking: if the whole reachable world is armed and the model asks for
  // late arrivals, keep re-probing on a timer. Directed ops never widen.
  if (op->directed) return;
  if (!op->probed_once && !op->probing && op->lease->contacts_remaining()) {
    op_probe(op_id);
  } else if (cfg_.propagate_to_late_arrivals) {
    op_schedule_repoll(*op);
  }
}

void Instance::op_contact(LogicalOp& op, transport::NodeId target) {
  op.contacted.insert(target);
  op.awaiting_first.insert(target);

  Message m;
  m.type = net::kOpRequest;
  m.op_id = op.id;
  m.origin = node_;
  m.h(static_cast<std::int64_t>(op.kind));
  m.h(encode_deadline(op.lease->expiry_time()));
  m.pattern = op.pattern;
  endpoint_.send(target, m);
  trace(obs::EventKind::kPeerRequest, node_, op.id, target);

  const std::uint64_t id = op.id;
  op.ack_timers[target] = timers_.schedule_after(
      cfg_.response_timeout,
      [this, id, target] { op_ack_timeout(id, target); });
}

void Instance::op_probe(std::uint64_t op_id) {
  LogicalOp* op = find_op(op_id);
  if (op == nullptr || op->done || op->probing) return;
  op->probing = true;
  ++monitor_.counters().probes_triggered;
  trace(obs::EventKind::kProbe, node_, op_id);
  discovery_.probe(cfg_.probe_window, [this, op_id](std::size_t) {
    LogicalOp* o = find_op(op_id);
    if (o == nullptr || o->done) return;
    o->probing = false;
    o->probed_once = true;
    // Anyone in the refreshed list we have not tried yet joins the queue.
    for (transport::NodeId n : cache_.contact_order()) {
      if (n != node_ && !o->contacted.contains(n) &&
          std::find(o->contact_queue.begin(), o->contact_queue.end(), n) ==
              o->contact_queue.end()) {
        o->contact_queue.push_back(n);
      }
    }
    op_advance(op_id);
  });
}

void Instance::op_schedule_repoll(LogicalOp& op) {
  if (op.repoll_timer != transport::kInvalidEvent) return;
  const std::uint64_t id = op.id;
  op.repoll_timer =
      timers_.schedule_after(cfg_.late_arrival_poll, [this, id] {
        LogicalOp* o = find_op(id);
        if (o == nullptr || o->done) return;
        o->repoll_timer = transport::kInvalidEvent;
        if (!o->lease->contacts_remaining()) {
          // Cannot contact anyone new; keep the armed waiters and stop
          // polling.
          return;
        }
        o->probed_once = false;  // allow another probe round
        op_probe(id);
        if (LogicalOp* o2 = find_op(id); o2 != nullptr && !o2->done) {
          op_schedule_repoll(*o2);
        }
      });
}

void Instance::op_on_response(std::uint64_t op_id, transport::NodeId from,
                              const Message& m) {
  LogicalOp* op = find_op(op_id);
  if (op == nullptr) return;
  if (m.type != net::kOpResponse || m.headers.size() < 2) return;

  const bool found = m.hbool(0);
  const bool serving = m.hbool(1);
  trace(obs::EventKind::kPeerResponse, node_, op_id, from,
        (found ? 2 : 0) | (serving ? 1 : 0));

  // First word from this responder: it is alive.
  op->awaiting_first.erase(from);
  auto at = op->ack_timers.find(from);
  if (at != op->ack_timers.end()) {
    timers_.cancel(at->second);
    op->ack_timers.erase(at);
  }
  cache_.record_success(from);

  if (found && m.tuple) {
    if (!op->done) {
      // First response wins (§3.1.3).
      op_finish(op_id, ReadResult{*m.tuple, from});
    } else if (is_destructive(op->kind)) {
      // Late winner: "the remaining instances place the tuples back into
      // their respective spaces."
      Message rel;
      rel.type = net::kRelease;
      rel.op_id = op_id;
      rel.origin = node_;
      endpoint_.send(from, rel);
      trace(obs::EventKind::kReinsert, node_, op_id, from);
    }
    return;
  }

  // No match (or the responder refused to serve).
  if (!serving) op->exhausted.insert(from);
  if (!is_blocking(op->kind)) {
    op->exhausted.insert(from);
    op_advance(op_id);
  }
}

void Instance::op_ack_timeout(std::uint64_t op_id, transport::NodeId target) {
  LogicalOp* op = find_op(op_id);
  if (op == nullptr || op->done) return;
  op->ack_timers.erase(target);
  if (op->awaiting_first.erase(target) == 0) return;  // it did reply
  // "...removing any which do not respond" (§3.1.3).
  monitor_.peer_timeout(target);
  trace(obs::EventKind::kPeerTimeout, node_, op_id, target);
  cache_.remove(target);
  cache_.record_failure(target);
  op->exhausted.insert(target);
  op_advance(op_id);
}

void Instance::op_maybe_conclude_nonblocking(LogicalOp& op) {
  if (op.done || is_blocking(op.kind)) return;
  if (!op.contact_queue.empty()) return;
  if (!op.awaiting_first.empty()) return;
  if (op.probing) return;
  // Directed ops never probe; propagated ops get one probe round if the
  // budget allows.
  if (!op.directed && !op.probed_once && op.lease->contacts_remaining()) {
    op_probe(op.id);
    return;
  }
  op_finish(op.id, std::nullopt);
}

void Instance::op_finish(std::uint64_t op_id,
                         std::optional<ReadResult> result) {
  auto it = ops_.find(op_id);
  if (it == ops_.end() || it->second.done) return;
  LogicalOp op = std::move(it->second);
  op.done = true;
  ops_.erase(it);

  // Tear down every pending arm of the operation.
  if (op.local_waiter != space::kNoWaiter) {
    space_.cancel_waiter(op.local_waiter);
  }
  if (op.repoll_timer != transport::kInvalidEvent) {
    timers_.cancel(op.repoll_timer);
  }
  for (auto& [node, ev] : op.ack_timers) {
    (void)node;
    timers_.cancel(ev);
  }
  correlator_.finish(op_id);

  const transport::NodeId winner =
      result && result->source != node_ ? result->source : transport::kNoNode;
  for (transport::NodeId contacted : op.contacted) {
    if (contacted == winner) continue;
    // Non-blocking responders that already reported a miss hold no state.
    if (!is_blocking(op.kind) && op.exhausted.contains(contacted)) continue;
    Message cancel;
    cancel.type = net::kCancelOp;
    cancel.op_id = op_id;
    cancel.origin = node_;
    endpoint_.send(contacted, cancel);
    ++monitor_.counters().cancelled;
    trace(obs::EventKind::kCancel, node_, op_id, contacted);
  }
  if (winner != transport::kNoNode && is_destructive(op.kind)) {
    confirms_[op_id] = PendingConfirm{winner, 6, transport::kInvalidEvent};
    send_confirm(op_id);
    trace(obs::EventKind::kConfirm, node_, op_id, winner);
  }

  // Account the outcome.
  auto& c = monitor_.counters();
  if (result) {
    if (result->source == node_) {
      ++c.satisfied_local;
    } else {
      ++c.satisfied_remote;
    }
    trace(obs::EventKind::kAccept, node_, op_id, result->source);
  } else if (op.lease->active()) {
    ++c.no_match;
    trace(obs::EventKind::kOpNoMatch, node_, op_id);
  } else {
    ++c.lease_expired;
    trace(obs::EventKind::kOpExpired, node_, op_id);
  }
  monitor_.op_finished(to_string(op.kind), tx_.now() - op.started_at);

  // §5.4/§5.5: feed the adaptive policy, if installed.
  if (adaptive_ != nullptr) {
    const transport::Duration granted =
        op.lease->terms().ttl ? *op.lease->terms().ttl : 0;
    if (result) {
      adaptive_->observe_match(tx_.now() - op.started_at, granted);
    } else if (!op.lease->active()) {
      adaptive_->observe_expiry();
    }
    if (!op.lease->contacts_remaining() && !op.lease->active()) {
      adaptive_->observe_budget_exhausted(result.has_value());
    }
  }

  if (op.lease->active()) op.lease->release();
  if (op.cb) op.cb(std::move(result));
}

void Instance::op_lease_ended(std::uint64_t op_id, lease::LeaseState state) {
  if (state == lease::LeaseState::kReleased) return;  // normal completion
  // Expired or revoked: "the Tiamat instance may stop trying to satisfy the
  // request and, assuming no match has already been found, return nothing."
  op_finish(op_id, std::nullopt);
}

void Instance::send_confirm(std::uint64_t op_id) {
  auto it = confirms_.find(op_id);
  if (it == confirms_.end()) return;
  PendingConfirm& pc = it->second;
  if (pc.tries_left-- <= 0) {
    // Give up: the winner is unreachable; its hold timer will decide.
    confirms_.erase(it);
    return;
  }
  Message confirm;
  confirm.type = net::kConfirm;
  confirm.op_id = op_id;
  confirm.origin = node_;
  endpoint_.send(pc.winner, confirm);
  pc.timer = timers_.schedule_after(
      cfg_.response_timeout, [this, op_id] { send_confirm(op_id); });
}

std::uint64_t Instance::serving_key(transport::NodeId origin, std::uint64_t op_id) {
  return (static_cast<std::uint64_t>(origin) << 32) ^ (op_id & 0xffffffffull);
}

}  // namespace tiamat::core
