// Configuration and shared enums for the Tiamat core.

#pragma once

#include <cstdint>
#include <string>

#include "lease/policy.h"
#include "net/responder_cache.h"
#include "transport/types.h"

namespace tiamat::core {

/// The four propagated operations (§2.1). out/eval are not listed: they act
/// on the local space by default and have dedicated entry points.
enum class OpKind : std::uint8_t { kRd = 0, kRdp = 1, kIn = 2, kInp = 3 };

constexpr bool is_destructive(OpKind k) {
  return k == OpKind::kIn || k == OpKind::kInp;
}
constexpr bool is_blocking(OpKind k) {
  return k == OpKind::kRd || k == OpKind::kIn;
}
const char* to_string(OpKind k);

/// What to do when an out/eval directed at a specific remote space cannot
/// reach it (§2.4): "a policy, either at the application or system level,
/// must be established as to whether there are attempts to route the tuple,
/// whether it is placed in the local space, or whether the operation is
/// abandoned altogether."
enum class UnavailablePolicy : std::uint8_t {
  kAbandon = 0,  ///< drop the tuple
  kLocal = 1,    ///< fall back to the local space
  kRoute = 2,    ///< store-and-forward: retry while the lease lasts
};

struct Config {
  std::string name = "tiamat";
  bool persistent_space = false;

  /// Model vs prototype (§3.1): the model propagates operations to
  /// "instances which become visible during the lifetime of the operation";
  /// the paper's prototype only contacted instances visible at the start.
  /// true = model behaviour (blocking ops re-probe for late arrivals).
  bool propagate_to_late_arrivals = true;

  /// How long a multicast probe collects replies.
  transport::Duration probe_window = transport::milliseconds(25);

  /// How long to wait for a responder's first reply to an OpRequest before
  /// declaring it unresponsive and dropping it from the responder list.
  transport::Duration response_timeout = transport::milliseconds(60);

  /// How long a serving instance parks a tentatively-removed tuple waiting
  /// for Confirm/Release before auto-releasing it (covers originator loss).
  transport::Duration tentative_hold = transport::milliseconds(750);

  /// Re-probe period for blocking ops when propagate_to_late_arrivals.
  transport::Duration late_arrival_poll = transport::milliseconds(250);

  /// Retry period for store-and-forward routing (UnavailablePolicy::kRoute).
  transport::Duration route_retry = transport::milliseconds(500);

  /// Lease caps handed to the default policy (ignored if a policy is
  /// injected at construction).
  lease::DefaultLeasePolicy::Caps lease_caps;

  /// Responder-list discipline (§3.1.3 list vs §6 stability extension).
  net::ResponderCache::Ordering cache_ordering =
      net::ResponderCache::Ordering::kPaperList;

  /// Operation tracing (obs/trace.h). Off by default — a disabled tracer
  /// costs one predicted branch per instrumentation point. Enable (or
  /// install a sink via Instance::tracer()) to capture the causal event
  /// chain of every logical-space operation.
  bool trace_ops = false;
  std::size_t trace_capacity = 512;  ///< ring-buffer size per instance

  /// Health-probe thresholds, evaluated once per telemetry sample tick when
  /// the instance is registered with a TimeSeriesRecorder
  /// (Instance::register_telemetry). A breach emits a kProbeBreach trace
  /// event and bumps the "probe.breaches" counter; it never changes
  /// behaviour. Probes fire when value >= threshold.
  struct ProbeThresholds {
    double waiter_backlog = 16;        ///< blocked rd/in waiters parked
    double pending_acks = 32;          ///< unresolved responder replies
    double lease_expiry_per_tick = 8;  ///< blocking ops timed out this tick
    double match_p99_us = 2e6;         ///< windowed op-latency p99 (µs)
  };
  ProbeThresholds probe_thresholds;
};

}  // namespace tiamat::core
