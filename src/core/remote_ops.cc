// Serving side of the logical-space protocol: how an instance satisfies
// operations propagated to it by others (§2.2), including the tentative
// removal / confirm / release dance (§3.1.3) and directed remote outs
// (§2.4). Per §2.5, "any Tiamat instance which, during the course of
// performing an operation, places demands on another, is responsible for
// negotiating any further leases": every request served here is covered by
// a lease negotiated with the *local* lease manager.

#include <algorithm>

#include "core/instance.h"

namespace tiamat::core {

namespace {
constexpr std::int64_t kNoDeadline = -1;

transport::Time decode_deadline(std::int64_t v) {
  return v == kNoDeadline ? transport::kNever : static_cast<transport::Time>(v);
}
}  // namespace

void Instance::install_handlers() {
  endpoint_.on(net::kOpRequest, [this](transport::NodeId from, const Message& m) {
    serve_op_request(from, m);
  });
  endpoint_.on(net::kOpResponse, [this](transport::NodeId from, const Message& m) {
    if (!correlator_.route(from, m)) {
      // Stale response to a finished operation. If it carried a match the
      // responder is holding a tentative tuple for us: release it.
      if (m.headers.size() >= 1 && m.hbool(0)) {
        Message rel;
        rel.type = net::kRelease;
        rel.op_id = m.op_id;
        rel.origin = node_;
        endpoint_.send(from, rel);
        trace(obs::EventKind::kReinsert, node_, m.op_id, from);
      }
    }
  });
  endpoint_.on(net::kCancelOp, [this](transport::NodeId from, const Message& m) {
    serve_cancel(from, m);
  });
  endpoint_.on(net::kConfirm, [this](transport::NodeId from, const Message& m) {
    serve_confirm(from, m);
  });
  endpoint_.on(net::kConfirmAck, [this](transport::NodeId, const Message& m) {
    auto it = confirms_.find(m.op_id);
    if (it != confirms_.end()) {
      if (it->second.timer != transport::kInvalidEvent) {
        timers_.cancel(it->second.timer);
      }
      confirms_.erase(it);
    }
  });
  endpoint_.on(net::kRelease, [this](transport::NodeId from, const Message& m) {
    serve_release(from, m);
  });
  endpoint_.on(net::kRemoteOut, [this](transport::NodeId from, const Message& m) {
    serve_remote_out(from, m);
  });
  endpoint_.on(net::kRemoteOutAck, [this](transport::NodeId, const Message& m) {
    if (!m.headers.empty() && m.hbool(0)) router_.acked(m.op_id);
  });
  endpoint_.on(net::kRemoteEval, [this](transport::NodeId from, const Message& m) {
    serve_remote_eval(from, m);
  });
  endpoint_.on(net::kRemoteEvalAck,
               [this](transport::NodeId from, const Message& m) {
                 correlator_.route(from, m);
               });
}

void Instance::serve_op_request(transport::NodeId from, const Message& m) {
  if (m.headers.size() < 2 || !m.pattern) return;
  const auto kind = static_cast<OpKind>(m.hint(0));
  const transport::Time requester_deadline = decode_deadline(m.hint(1));
  const transport::NodeId origin = m.origin != transport::kNoNode ? m.origin : from;
  const std::uint64_t op_id = m.op_id;
  const std::uint64_t key = serving_key(origin, op_id);

  auto reply = [this, origin, op_id](bool found, bool serving,
                                     const std::optional<Tuple>& t) {
    Message r;
    r.type = net::kOpResponse;
    r.op_id = op_id;
    r.origin = node_;
    r.h(found);
    r.h(serving);
    if (t) r.tuple = *t;
    endpoint_.send(origin, r);
  };

  // Negotiate a local lease covering the served work; refusal means this
  // instance declines to participate in the operation.
  lease::LeaseTerms want;
  if (requester_deadline != transport::kNever) {
    const transport::Duration remaining = requester_deadline - tx_.now();
    if (remaining <= 0) return;  // arrived after the originator gave up
    want.ttl = remaining;
  }
  auto l = leases_.negotiate(lease::FlexibleRequester{want});
  if (!l) {
    ++monitor_.counters().remote_serving_refused;
    trace(obs::EventKind::kServeRefused, origin, op_id, origin);
    reply(false, false, std::nullopt);
    return;
  }
  ++monitor_.counters().remote_requests_served;
  trace(obs::EventKind::kServeStart, origin, op_id, origin,
        static_cast<std::int64_t>(kind));

  const transport::Time deadline =
      std::min(requester_deadline, l->expiry_time());

  switch (kind) {
    case OpKind::kRdp: {
      auto t = space_.rdp(*m.pattern);
      if (t) trace(obs::EventKind::kServeMatch, origin, op_id, origin);
      reply(t.has_value(), true, t);
      l->release();
      return;
    }
    case OpKind::kInp: {
      auto taken = space_.take_tentative(*m.pattern);
      if (!taken) {
        reply(false, true, std::nullopt);
        l->release();
        return;
      }
      trace(obs::EventKind::kServeMatch, origin, op_id, origin);
      Serving s;
      s.op_id = op_id;
      s.origin = origin;
      s.kind = kind;
      s.lease = l;
      s.tentative = taken->first;
      s.hold_timer = timers_.schedule_after(
          cfg_.tentative_hold, [this, key] { serving_drop(key, true); });
      serving_[key] = std::move(s);
      reply(true, true, taken->second);
      return;
    }
    case OpKind::kRd: {
      Serving s;
      s.op_id = op_id;
      s.origin = origin;
      s.kind = kind;
      s.lease = l;
      // Arm the waiter first; if it fires synchronously the entry must
      // already exist, so stage it before calling into the space.
      serving_[key] = std::move(s);
      auto fired = std::make_shared<bool>(false);
      auto wid = space_.rd(
          *m.pattern, deadline,
          [this, key, origin, op_id, reply, fired](std::optional<Tuple> t) {
            *fired = true;
            if (t) {
              trace(obs::EventKind::kServeMatch, origin, op_id, origin);
              reply(true, true, t);
            }
            serving_drop(key, false);
          });
      if (*fired) return;  // matched (or timed out) synchronously
      // No immediate match: ack so the originator keeps us on its list.
      reply(false, true, std::nullopt);
      auto it = serving_.find(key);
      if (it != serving_.end()) {
        it->second.waiter = wid;
        auto lease_ref = it->second.lease;
        lease_ref->on_end([this, key](lease::LeaseState st) {
          if (st != lease::LeaseState::kReleased) serving_drop(key, true);
        });
      }
      return;
    }
    case OpKind::kIn: {
      Serving s;
      s.op_id = op_id;
      s.origin = origin;
      s.kind = kind;
      s.lease = l;
      s.pattern = *m.pattern;
      s.deadline = deadline;
      serving_[key] = std::move(s);
      const bool immediate = !space_.has_match(*m.pattern);  // will it block?
      if (immediate) {
        // No match yet: ack so the originator keeps us on its list.
        reply(false, true, std::nullopt);
      }
      arm_serving_in(key);
      auto it = serving_.find(key);
      if (it == serving_.end()) return;  // resolved synchronously
      auto lease_ref = it->second.lease;
      lease_ref->on_end([this, key](lease::LeaseState st) {
        if (st != lease::LeaseState::kReleased) serving_drop(key, true);
      });
      return;
    }
  }
}

void Instance::arm_serving_in(std::uint64_t key) {
  auto sit = serving_.find(key);
  if (sit == serving_.end()) return;
  Serving& s = sit->second;
  const transport::NodeId origin = s.origin;
  const std::uint64_t op_id = s.op_id;
  auto reply = [this, origin, op_id](bool found, const std::optional<Tuple>& t) {
    Message r;
    r.type = net::kOpResponse;
    r.op_id = op_id;
    r.origin = node_;
    r.h(found);
    r.h(true);
    if (t) r.tuple = *t;
    endpoint_.send(origin, r);
  };
  s.waiter = space_.take_tentative_blocking(
      s.pattern, s.deadline,
      [this, key, origin, op_id,
       reply](std::optional<std::pair<tuples::TupleId, Tuple>> r) {
        auto it = serving_.find(key);
        if (!r) {
          serving_drop(key, false);
          return;
        }
        if (it == serving_.end()) {
          // Entry vanished (cancelled) yet the waiter fired: put the tuple
          // straight back.
          space_.release_tentative(r->first);
          ++monitor_.counters().tuples_reinserted;
          trace(obs::EventKind::kServeReinsert, origin, op_id, origin);
          return;
        }
        it->second.tentative = r->first;
        it->second.waiter = space::kNoWaiter;
        // Hold the tentative removal awaiting Confirm/Release. If neither
        // arrives (the reply was lost — the originator moved out of range),
        // put the tuple back and re-arm: the next match retransmits the
        // reply, converging once the originator is reachable again.
        it->second.hold_timer = timers_.schedule_after(
            cfg_.tentative_hold, [this, key] {
              auto it2 = serving_.find(key);
              if (it2 == serving_.end()) return;
              it2->second.hold_timer = transport::kInvalidEvent;
              if (it2->second.tentative != tuples::kNoTuple) {
                space_.release_tentative(it2->second.tentative);
                it2->second.tentative = tuples::kNoTuple;
                ++monitor_.counters().tuples_reinserted;
                trace(obs::EventKind::kServeReinsert, it2->second.origin,
                      it2->second.op_id, it2->second.origin);
              }
              if (it2->second.deadline > tx_.now()) {
                arm_serving_in(key);
              } else {
                serving_drop(key, false);
              }
            });
        trace(obs::EventKind::kServeMatch, it->second.origin,
              it->second.op_id, it->second.origin);
        reply(true, r->second);
      });
  // If the waiter fired synchronously the entry may already be gone or
  // holding a tentative; nothing more to do either way.
}

void Instance::serving_drop(std::uint64_t key, bool release_tentative) {
  auto it = serving_.find(key);
  if (it == serving_.end()) return;
  Serving s = std::move(it->second);
  serving_.erase(it);
  if (s.waiter != space::kNoWaiter) space_.cancel_waiter(s.waiter);
  if (s.hold_timer != transport::kInvalidEvent) timers_.cancel(s.hold_timer);
  if (s.tentative != tuples::kNoTuple && release_tentative) {
    space_.release_tentative(s.tentative);
    // §2.2 multi-match protocol: we matched but another instance won the
    // operation (or the originator vanished) — the tuple goes back.
    ++monitor_.counters().tuples_reinserted;
    trace(obs::EventKind::kServeReinsert, s.origin, s.op_id, s.origin);
  }
  if (s.lease && s.lease->active()) s.lease->release();
}

void Instance::serve_cancel(transport::NodeId from, const Message& m) {
  // Originator is done with us; put any tentative tuple back.
  serving_drop(serving_key(from, m.op_id), true);
}

void Instance::serve_confirm(transport::NodeId from, const Message& m) {
  const std::uint64_t key = serving_key(from, m.op_id);
  auto it = serving_.find(key);
  if (it != serving_.end()) {
    if (it->second.tentative != tuples::kNoTuple) {
      space_.confirm_tentative(it->second.tentative);
      it->second.tentative = tuples::kNoTuple;
      trace(obs::EventKind::kServeConfirm, from, m.op_id, from);
    }
    serving_drop(key, false);
  }
  // Always acknowledge — the confirm may be a retransmission for an entry
  // we already settled, and the winner keeps retransmitting until acked.
  Message ack;
  ack.type = net::kConfirmAck;
  ack.op_id = m.op_id;
  ack.origin = node_;
  endpoint_.send(from, ack);
}

void Instance::serve_release(transport::NodeId from, const Message& m) {
  serving_drop(serving_key(from, m.op_id), true);
}

void Instance::serve_remote_out(transport::NodeId from, const Message& m) {
  if (m.headers.empty() || !m.tuple) return;
  const std::int64_t ttl = m.hint(0);

  auto ack = [this, from, &m](bool accepted) {
    Message a;
    a.type = net::kRemoteOutAck;
    a.op_id = m.op_id;
    a.origin = node_;
    a.h(accepted);
    endpoint_.send(from, a);
  };

  lease::LeaseTerms want;
  if (ttl >= 0) want.ttl = ttl;
  want.max_bytes = m.tuple->footprint();
  auto l = leases_.negotiate(lease::FlexibleRequester{want});
  if (!l || !l->charge_bytes(m.tuple->footprint())) {
    if (l) l->release();
    ack(false);
    return;
  }
  tuples::TupleId id = space_.out(*m.tuple);
  if (id != tuples::kNoTuple) {
    l->on_end([this, id](lease::LeaseState st) {
      if (st != lease::LeaseState::kReleased) space_.reclaim(id);
    });
  } else {
    l->release();  // consumed synchronously by a waiter
  }
  ack(true);
}

void Instance::serve_remote_eval(transport::NodeId from, const Message& m) {
  if (m.headers.size() < 2 || !m.tuple) return;
  const std::string& name = m.hstr(0);
  const std::int64_t ttl = m.hint(1);

  auto ack = [this, from, &m](bool accepted) {
    Message a;
    a.type = net::kRemoteEvalAck;
    a.op_id = m.op_id;
    a.origin = node_;
    a.h(accepted);
    endpoint_.send(from, a);
  };

  const auto* c = registry_.find(name);
  if (c == nullptr) {
    ack(false);  // we do not know this computation
    return;
  }
  // "Any Tiamat instance which ... places demands on another, is
  // responsible for negotiating any further leases" — the served eval runs
  // under a lease from *our* manager.
  lease::LeaseTerms want;
  if (ttl >= 0) want.ttl = ttl;
  auto l = leases_.negotiate(lease::FlexibleRequester{want});
  if (!l) {
    ++monitor_.counters().remote_serving_refused;
    ack(false);
    return;
  }
  ++monitor_.counters().evals_started;
  const transport::Time halt_by = l->expiry_time();
  const Tuple args = *m.tuple;
  space::EvalId eid = evals_.submit_fn([c, args] { return c->fn(args); },
                                       c->cost(args), halt_by, halt_by);
  l->on_end([this, eid](lease::LeaseState st) {
    if (st == lease::LeaseState::kRevoked) evals_.halt(eid);
  });
  ack(true);
}

}  // namespace tiamat::core
