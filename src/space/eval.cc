#include "space/eval.h"

namespace tiamat::space {

transport::Duration ActiveTuple::total_cost() const {
  transport::Duration total = 0;
  for (const auto& slot : slots_) {
    if (const auto* c = std::get_if<Computation>(&slot)) total += c->cost;
  }
  return total;
}

tuples::Tuple ActiveTuple::materialise() const {
  std::vector<tuples::Value> fields;
  fields.reserve(slots_.size());
  for (const auto& slot : slots_) {
    if (const auto* v = std::get_if<tuples::Value>(&slot)) {
      fields.push_back(*v);
    } else {
      fields.push_back(std::get<Computation>(slot).fn());
    }
  }
  return tuples::Tuple(std::move(fields));
}

EvalEngine::EvalEngine(transport::TimerService& queue, LocalTupleSpace& target)
    : queue_(queue), target_(target) {}

EvalEngine::~EvalEngine() {
  for (auto& [id, r] : running_) {
    (void)id;
    if (r.completion != transport::kInvalidEvent) queue_.cancel(r.completion);
    if (r.halt_event != transport::kInvalidEvent) queue_.cancel(r.halt_event);
  }
}

EvalId EvalEngine::submit(ActiveTuple at, transport::Time halt_by,
                          transport::Time tuple_expiry) {
  const transport::Duration cost = at.total_cost();
  return submit_fn(
      [at = std::move(at)] { return at.materialise(); }, cost, halt_by,
      tuple_expiry);
}

EvalId EvalEngine::submit_fn(std::function<tuples::Tuple()> fn,
                             transport::Duration cost, transport::Time halt_by,
                             transport::Time tuple_expiry) {
  EvalId id = next_id_++;
  ++stats_.started;
  Running r;
  r.tuple_expiry = tuple_expiry;
  r.job = std::move(fn);
  const transport::Time done_at = queue_.now() + cost;
  if (halt_by != transport::kNever && halt_by <= done_at) {
    // The lease will lapse before the computation finishes; schedule the
    // halt. (We still "run" until then — the effort is spent, the tuple
    // never appears.)
    r.halt_event = queue_.schedule_at(halt_by, [this, id] { halt(id); });
  } else {
    r.completion = queue_.schedule_at(done_at, [this, id] { complete(id); });
  }
  running_.emplace(id, std::move(r));
  return id;
}

void EvalEngine::complete(EvalId id) {
  auto it = running_.find(id);
  if (it == running_.end()) return;
  Running r = std::move(it->second);
  running_.erase(it);
  if (r.halt_event != transport::kInvalidEvent) queue_.cancel(r.halt_event);
  ++stats_.completed;
  target_.out(r.job(), r.tuple_expiry);
}

bool EvalEngine::halt(EvalId id) {
  auto it = running_.find(id);
  if (it == running_.end()) return false;
  Running r = std::move(it->second);
  running_.erase(it);
  if (r.completion != transport::kInvalidEvent) queue_.cancel(r.completion);
  if (r.halt_event != transport::kInvalidEvent) queue_.cancel(r.halt_event);
  ++stats_.halted;
  return true;
}

}  // namespace tiamat::space
