// Space-handle tuples (§2.4).
//
// "Each tuple space in Tiamat contains a special tuple. This tuple contains
// a handle on the space as well as some information about that space, e.g.
// whether the local space provides a persistence mechanism or not.
// Applications can read these tuples and use the handles to perform
// operations on specific remote spaces."
//
// A handle is encoded as an ordinary tuple with a reserved leading tag so it
// travels through every existing mechanism (matching, codec, propagation).

#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "tuple/pattern.h"
#include "tuple/tuple.h"

namespace tiamat::space {

/// Reserved first field of every space-handle tuple.
inline constexpr const char* kHandleTag = "__tiamat:space";

struct SpaceHandle {
  std::uint32_t node = 0;  ///< network address of the hosting instance
  std::string name;        ///< space name (usually the instance name)
  bool persistent = false; ///< does the space survive instance restarts?

  friend bool operator==(const SpaceHandle& a, const SpaceHandle& b) {
    return a.node == b.node && a.name == b.name &&
           a.persistent == b.persistent;
  }
};

/// The tuple form: (kHandleTag, node, name, persistent).
tuples::Tuple make_handle_tuple(const SpaceHandle& h);

/// Parses a handle tuple; nullopt if `t` is not one.
std::optional<SpaceHandle> parse_handle_tuple(const tuples::Tuple& t);

/// Matches every space-handle tuple.
tuples::Pattern handle_pattern();

/// True if `t` is shaped like a handle tuple (used to keep handle tuples
/// out of application-level wildcard matches where undesired).
bool is_handle_tuple(const tuples::Tuple& t);

}  // namespace tiamat::space
