// Named-computation registry: the substitution that makes *remote eval*
// (§2.4) possible in C++.
//
// The paper's Java prototype can ship an active tuple's code to another
// instance. C++ cannot serialise closures, so instances that want to run
// each other's computations share a registry of *named* computations
// (registered at both ends, like any RPC scheme); a remote eval ships the
// computation's name plus its argument tuple, and the serving instance
// materialises the result with its own registry entry. This preserves the
// behaviour that matters to the model: the computation runs *at the remote
// instance*, consumes that instance's (leased) resources, and its resultant
// tuple appears in that instance's space.

#pragma once

#include <functional>
#include <map>
#include <string>

#include "transport/types.h"
#include "space/eval.h"
#include "tuple/tuple.h"

namespace tiamat::space {

/// A named computation: args tuple -> result tuple, with a simulated cost
/// (which may depend on the arguments — e.g. proportional to input size).
struct NamedComputation {
  std::function<tuples::Tuple(const tuples::Tuple& args)> fn;
  std::function<transport::Duration(const tuples::Tuple& args)> cost =
      [](const tuples::Tuple&) { return transport::milliseconds(1); };
};

class ComputationRegistry {
 public:
  /// Registers (or replaces) a computation under `name`.
  void install(std::string name, NamedComputation c) {
    entries_[std::move(name)] = std::move(c);
  }

  /// Convenience: fixed cost.
  void install(std::string name,
               std::function<tuples::Tuple(const tuples::Tuple&)> fn,
               transport::Duration cost = transport::milliseconds(1)) {
    NamedComputation c;
    c.fn = std::move(fn);
    c.cost = [cost](const tuples::Tuple&) { return cost; };
    install(std::move(name), std::move(c));
  }

  bool knows(const std::string& name) const {
    return entries_.contains(name);
  }

  const NamedComputation* find(const std::string& name) const {
    auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : &it->second;
  }

  std::size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, NamedComputation> entries_;
};

}  // namespace tiamat::space
