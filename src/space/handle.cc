#include "space/handle.h"

namespace tiamat::space {

using tuples::any_bool;
using tuples::any_int;
using tuples::any_string;
using tuples::Pattern;
using tuples::Tuple;

Tuple make_handle_tuple(const SpaceHandle& h) {
  return Tuple{kHandleTag, static_cast<std::int64_t>(h.node), h.name,
               h.persistent};
}

std::optional<SpaceHandle> parse_handle_tuple(const Tuple& t) {
  if (!is_handle_tuple(t)) return std::nullopt;
  SpaceHandle h;
  h.node = static_cast<std::uint32_t>(t[1].as_int());
  h.name = t[2].as_string();
  h.persistent = t[3].as_bool();
  return h;
}

Pattern handle_pattern() {
  return Pattern{kHandleTag, any_int(), any_string(), any_bool()};
}

bool is_handle_tuple(const Tuple& t) {
  return t.arity() == 4 && t[0].is_string() && t[0].as_string() == kHandleTag &&
         t[1].is_int() && t[2].is_string() && t[3].is_bool();
}

}  // namespace tiamat::space
