#include "space/local_space.h"

#include <algorithm>

#if TIAMAT_AUDIT_ENABLED
#include <sstream>
#endif

namespace tiamat::space {

#if TIAMAT_AUDIT_ENABLED
void LocalTupleSpace::audit_check(const char* checkpoint) const {
  index_.audit_check(checkpoint);
  waiters_.audit_check(checkpoint);
  auto trap = [&](const std::string& invariant, const std::string& detail) {
    std::ostringstream os;
    os << detail << " | stored " << index_.size() << ", tentative "
       << tentative_.size() << ", waiters " << waiters_.size();
    audit::fail("LocalTupleSpace", checkpoint, invariant, os.str());
  };
  for (const auto& [id, expiry] : expiries_) {
    (void)expiry;
    if (!index_.contains(id)) {
      std::ostringstream os;
      os << "expiry recorded for id " << id << " which is not stored";
      trap("expiry-bookkeeping", os.str());
      return;
    }
  }
  for (const auto& [id, ev] : expiry_events_) {
    (void)ev;
    if (!expiries_.contains(id)) {
      std::ostringstream os;
      os << "expiry timer armed for id " << id << " with no expiry on file";
      trap("expiry-bookkeeping", os.str());
      return;
    }
  }
  std::size_t parked_bytes = 0;
  for (const auto& [id, t] : tentative_) {
    parked_bytes += t.footprint();
    if (index_.contains(id)) {
      std::ostringstream os;
      os << "tentative id " << id << " still visible in the index";
      trap("tentative-visibility", os.str());
      return;
    }
    if (id >= next_tuple_id_) {
      std::ostringstream os;
      os << "tentative id " << id << " >= next id " << next_tuple_id_;
      trap("id-allocation", os.str());
      return;
    }
  }
  if (parked_bytes != tentative_bytes_) {
    std::ostringstream os;
    os << "tentative_bytes_ " << tentative_bytes_ << " != parked footprints "
       << parked_bytes;
    trap("memory-accounting", os.str());
    return;
  }
  for (const auto& [id, expiry] : tentative_expiry_) {
    (void)expiry;
    if (!tentative_.contains(id)) {
      std::ostringstream os;
      os << "parked expiry for id " << id << " which is not tentative";
      trap("tentative-visibility", os.str());
      return;
    }
  }
  index_.for_each([&](TupleId id, const Tuple&) {
    if (id >= next_tuple_id_) {
      std::ostringstream os;
      os << "stored id " << id << " >= next id " << next_tuple_id_;
      trap("id-allocation", os.str());
    }
  });
}
#endif  // TIAMAT_AUDIT_ENABLED

LocalTupleSpace::LocalTupleSpace(transport::TimerService& queue, transport::Rng& rng,
                                 Options opts)
    : queue_(queue), rng_(rng), opts_(std::move(opts)) {}

LocalTupleSpace::~LocalTupleSpace() {
  // Cancel outstanding timers so no event fires into a dead object.
  for (auto& [id, ev] : expiry_events_) {
    (void)id;
    queue_.cancel(ev);
  }
  waiters_.for_each([this](WaiterId, Waiter& w) {
    if (w.deadline_event != transport::kInvalidEvent) queue_.cancel(w.deadline_event);
  });
}

// ---- out ------------------------------------------------------------------

TupleId LocalTupleSpace::out(Tuple t, transport::Time expiry) {
  ++stats_.outs;
  if (expiry != transport::kNever && expiry <= queue_.now()) {
    // Lease already expired: the tuple may be reclaimed at any time — and
    // "any time" includes immediately.
    ++stats_.tuples_expired;
    return tuples::kNoTuple;
  }
  TupleId id = next_tuple_id_++;
  if (offer_to_waiters(id, t)) {
    // A destructive waiter consumed the tuple before it hit storage.
    TIAMAT_AUDIT_CHECK(audit_check("out"));
    return tuples::kNoTuple;
  }
  index_.insert(id, std::move(t));
  if (expiry != transport::kNever) {
    expiries_[id] = expiry;
    schedule_tuple_expiry(id, expiry);
  }
  TIAMAT_AUDIT_CHECK(audit_check("out"));
  return id;
}

// ---- Selection & non-blocking ops ------------------------------------------

std::optional<TupleId> LocalTupleSpace::select_match(
    const tuples::CompiledPattern& p) {
  auto ids = index_.find_matches(p);
  if (ids.empty()) return std::nullopt;
  return ids[rng_.index(ids.size())];
}

std::optional<Tuple> LocalTupleSpace::rdp(const Pattern& p) {
  ++stats_.reads;
  auto id = select_match(tuples::CompiledPattern(p));
  if (!id) return std::nullopt;
  ++stats_.hits;
  return *index_.get(*id);
}

std::optional<Tuple> LocalTupleSpace::inp(const Pattern& p) {
  ++stats_.takes;
  auto id = select_match(tuples::CompiledPattern(p));
  if (!id) return std::nullopt;
  ++stats_.hits;
  drop_tuple_timer(*id);
  expiries_.erase(*id);
  auto t = index_.erase(*id);
  TIAMAT_AUDIT_CHECK(audit_check("inp"));
  return t;
}

// ---- Blocking ops -----------------------------------------------------------

WaiterId LocalTupleSpace::rd(const Pattern& p, transport::Time deadline,
                             MatchCallback cb) {
  ++stats_.reads;
  tuples::CompiledPattern cp(p);
  if (auto id = select_match(cp)) {
    ++stats_.hits;
    cb(*index_.get(*id));
    return kNoWaiter;
  }
  if (deadline <= queue_.now()) {
    ++stats_.waiter_timed_out;
    cb(std::nullopt);
    return kNoWaiter;
  }
  Waiter w;
  w.destructive = false;
  w.tentative = false;
  w.deadline = deadline;
  w.cb = std::move(cb);
  return add_waiter(std::move(cp), std::move(w));
}

WaiterId LocalTupleSpace::in(const Pattern& p, transport::Time deadline,
                             MatchCallback cb) {
  ++stats_.takes;
  tuples::CompiledPattern cp(p);
  if (auto id = select_match(cp)) {
    ++stats_.hits;
    drop_tuple_timer(*id);
    expiries_.erase(*id);
    cb(index_.erase(*id));
    return kNoWaiter;
  }
  if (deadline <= queue_.now()) {
    ++stats_.waiter_timed_out;
    cb(std::nullopt);
    return kNoWaiter;
  }
  Waiter w;
  w.destructive = true;
  w.tentative = false;
  w.deadline = deadline;
  w.cb = std::move(cb);
  return add_waiter(std::move(cp), std::move(w));
}

bool LocalTupleSpace::cancel_waiter(WaiterId id) {
  auto e = waiters_.extract(id);
  if (!e) return false;
  if (e->payload.deadline_event != transport::kInvalidEvent) {
    queue_.cancel(e->payload.deadline_event);
  }
  TIAMAT_AUDIT_CHECK(audit_check("cancel_waiter"));
  return true;
}

WaiterId LocalTupleSpace::add_waiter(tuples::CompiledPattern p, Waiter w) {
  const WaiterId id = next_waiter_id_++;
  if (w.deadline != transport::kNever) {
    w.deadline_event = queue_.schedule_at(
        w.deadline, [this, id] { waiter_deadline(id); });
  }
  waiters_.add(id, std::move(p), std::move(w));
  TIAMAT_AUDIT_CHECK(audit_check("add_waiter"));
  return id;
}

void LocalTupleSpace::waiter_deadline(WaiterId id) {
  auto e = waiters_.extract(id);
  if (!e) return;
  Waiter w = std::move(e->payload);
  ++stats_.waiter_timed_out;
  // "Once the lease expires ... assuming no match has already been
  // found, return nothing." (§2.5)
  if (w.tentative) {
    if (w.tcb) w.tcb(std::nullopt);
  } else if (w.cb) {
    w.cb(std::nullopt);
  }
}

bool LocalTupleSpace::offer_to_waiters(TupleId id, const Tuple& t) {
  // All matching non-destructive waiters are satisfied with copies; then
  // the oldest matching destructive waiter (if any) consumes the tuple.
  // Callbacks may re-enter the space (e.g. a proxy loop immediately issuing
  // its next `in`), so collect first, call after mutation is settled. The
  // waiter index yields candidates oldest-first from the tuple's bucket
  // plus the unkeyed overflow; no waiter outside that list can match.
  std::vector<Waiter> fired_readers;
  std::optional<Waiter> taker;
  for (WaiterId wid : waiters_.candidates(t)) {
    const tuples::CompiledPattern* cp = waiters_.pattern_of(wid);
    if (cp == nullptr || !cp->matches(t)) continue;
    if (taker && waiters_.payload(wid)->destructive) continue;
    auto e = waiters_.extract(wid);
    if (e->payload.deadline_event != transport::kInvalidEvent) {
      queue_.cancel(e->payload.deadline_event);
    }
    if (e->payload.destructive) {
      taker = std::move(e->payload);
    } else {
      fired_readers.push_back(std::move(e->payload));
    }
  }

  stats_.waiter_satisfied += fired_readers.size() + (taker ? 1 : 0);

  bool consumed = false;
  if (taker) {
    if (taker->tentative) {
      // The tuple is consumed from the visible space but parked as
      // tentative so a remote loser can put it back.
      tentative_bytes_ += t.footprint();
      tentative_.emplace(id, t);
      if (taker->tcb) taker->tcb(std::make_pair(id, t));
    } else {
      if (taker->cb) taker->cb(t);
    }
    consumed = true;
  }
  for (auto& r : fired_readers) {
    if (r.cb) r.cb(t);
  }
  return consumed;
}

// ---- Tentative removal -------------------------------------------------------

std::optional<std::pair<TupleId, Tuple>> LocalTupleSpace::take_tentative(
    const Pattern& p) {
  ++stats_.takes;
  auto id = select_match(tuples::CompiledPattern(p));
  if (!id) return std::nullopt;
  ++stats_.hits;
  // Keep the expiry on file: a released tuple resumes its old lease.
  auto expiry_it = expiries_.find(*id);
  if (expiry_it != expiries_.end()) {
    tentative_expiry_[*id] = expiry_it->second;
    expiries_.erase(expiry_it);
  }
  drop_tuple_timer(*id);
  auto t = index_.erase(*id);
  tentative_bytes_ += t->footprint();
  tentative_.emplace(*id, *t);
  TIAMAT_AUDIT_CHECK(audit_check("take_tentative"));
  return std::make_pair(*id, *t);
}

WaiterId LocalTupleSpace::take_tentative_blocking(
    const Pattern& p, transport::Time deadline,
    std::function<void(std::optional<std::pair<TupleId, Tuple>>)> cb) {
  if (auto taken = take_tentative(p)) {
    cb(taken);
    return kNoWaiter;
  }
  if (deadline <= queue_.now()) {
    ++stats_.waiter_timed_out;
    cb(std::nullopt);
    return kNoWaiter;
  }
  Waiter w;
  w.destructive = true;
  w.tentative = true;
  w.deadline = deadline;
  w.tcb = std::move(cb);
  return add_waiter(tuples::CompiledPattern(p), std::move(w));
}

bool LocalTupleSpace::release_tentative(TupleId id) {
  auto it = tentative_.find(id);
  if (it == tentative_.end()) return false;
  Tuple t = std::move(it->second);
  tentative_.erase(it);
  tentative_bytes_ -= t.footprint();
  ++stats_.tentative_released;

  transport::Time expiry = transport::kNever;
  auto eit = tentative_expiry_.find(id);
  if (eit != tentative_expiry_.end()) {
    expiry = eit->second;
    tentative_expiry_.erase(eit);
  }
  if (expiry != transport::kNever && expiry <= queue_.now()) {
    ++stats_.tuples_expired;
    return true;  // released, but its lease lapsed meanwhile: reclaim now
  }
  if (offer_to_waiters(id, t)) {
    TIAMAT_AUDIT_CHECK(audit_check("release_tentative"));
    return true;
  }
  index_.insert(id, std::move(t));
  if (expiry != transport::kNever) {
    expiries_[id] = expiry;
    schedule_tuple_expiry(id, expiry);
  }
  TIAMAT_AUDIT_CHECK(audit_check("release_tentative"));
  return true;
}

bool LocalTupleSpace::confirm_tentative(TupleId id) {
  auto it = tentative_.find(id);
  if (it == tentative_.end()) return false;
  tentative_bytes_ -= it->second.footprint();
  tentative_.erase(it);
  tentative_expiry_.erase(id);
  ++stats_.tentative_confirmed;
  TIAMAT_AUDIT_CHECK(audit_check("confirm_tentative"));
  return true;
}

// ---- Expiry ---------------------------------------------------------------------

void LocalTupleSpace::schedule_tuple_expiry(TupleId id, transport::Time expiry) {
  expiry_events_[id] = queue_.schedule_at(expiry, [this, id] {
    expiry_events_.erase(id);
    if (index_.contains(id)) {
      index_.erase(id);
      expiries_.erase(id);
      ++stats_.tuples_expired;
    }
    TIAMAT_AUDIT_CHECK(audit_check("expiry_timer"));
  });
}

void LocalTupleSpace::drop_tuple_timer(TupleId id) {
  auto it = expiry_events_.find(id);
  if (it != expiry_events_.end()) {
    queue_.cancel(it->second);
    expiry_events_.erase(it);
  }
}

void LocalTupleSpace::purge_expired() {
  const transport::Time now = queue_.now();
  std::vector<TupleId> doomed;
  for (const auto& [id, expiry] : expiries_) {
    if (expiry <= now) doomed.push_back(id);
  }
  for (TupleId id : doomed) {
    drop_tuple_timer(id);
    index_.erase(id);
    expiries_.erase(id);
    ++stats_.tuples_expired;
  }
  TIAMAT_AUDIT_CHECK(audit_check("purge_expired"));
}

bool LocalTupleSpace::reclaim(TupleId id) {
  if (!index_.contains(id)) return false;
  drop_tuple_timer(id);
  expiries_.erase(id);
  index_.erase(id);
  ++stats_.tuples_expired;
  TIAMAT_AUDIT_CHECK(audit_check("reclaim"));
  return true;
}

bool LocalTupleSpace::set_tuple_expiry(TupleId id, transport::Time expiry) {
  if (!index_.contains(id)) return false;
  drop_tuple_timer(id);
  if (expiry == transport::kNever) {
    expiries_.erase(id);
  } else {
    expiries_[id] = expiry;
    schedule_tuple_expiry(id, expiry);
  }
  TIAMAT_AUDIT_CHECK(audit_check("set_tuple_expiry"));
  return true;
}

// ---- Introspection ------------------------------------------------------------

std::vector<Tuple> LocalTupleSpace::snapshot() const {
  std::vector<Tuple> out;
  out.reserve(index_.size());
  index_.for_each([&](TupleId, const Tuple& t) { out.push_back(t); });
  return out;
}

std::vector<std::pair<Tuple, transport::Time>>
LocalTupleSpace::snapshot_with_expiry() const {
  std::vector<std::pair<Tuple, transport::Time>> out;
  out.reserve(index_.size());
  index_.for_each([&](TupleId id, const Tuple& t) {
    auto it = expiries_.find(id);
    out.emplace_back(t, it == expiries_.end() ? transport::kNever : it->second);
  });
  return out;
}

LocalTupleSpace::MemoryStats LocalTupleSpace::memory() const {
  MemoryStats m;
  m.tuple_count = index_.size();
  m.tuple_bytes = index_.approx_bytes();
  m.waiter_count = waiters_.size();
  m.waiter_bytes = waiters_.approx_bytes();
  m.tentative_count = tentative_.size();
  m.tentative_bytes = tentative_bytes_;
  return m;
}

void LocalTupleSpace::export_memory_gauges(obs::Registry& r) const {
  const MemoryStats m = memory();
  r.gauge("space.tuples").set(static_cast<double>(m.tuple_count));
  r.gauge("space.tuple_bytes").set(static_cast<double>(m.tuple_bytes));
  r.gauge("space.waiters").set(static_cast<double>(m.waiter_count));
  r.gauge("space.waiter_bytes").set(static_cast<double>(m.waiter_bytes));
  r.gauge("space.tentative").set(static_cast<double>(m.tentative_count));
  r.gauge("space.bytes").set(static_cast<double>(m.total_bytes()));
}

std::size_t LocalTupleSpace::count_matches(const Pattern& p) const {
  return index_.count_matches(p);
}

bool LocalTupleSpace::has_match(const Pattern& p) const {
  return index_.find_first(p).has_value();
}

}  // namespace tiamat::space
