// The local tuple space: one per Tiamat instance (§2.2, §3.1.2).
//
// Implements the six Linda operations with Tiamat's lease-aware extensions:
// per-tuple expiry times, deadline-bounded blocking operations (the paper's
// deliberate semantic deviation: a blocked in/rd returns nothing when its
// lease expires), nondeterministic selection among multiple matches, and a
// tentative-removal protocol used by the distributed first-response-wins
// resolution (§3.1.3) so that losing responders can put tuples back.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "audit/audit.h"
#include "obs/metrics.h"
#include "transport/types.h"
#include "transport/timer.h"
#include "tuple/index.h"
#include "tuple/matcher.h"
#include "tuple/pattern.h"
#include "tuple/tuple.h"
#include "tuple/waiter_index.h"

namespace tiamat::space {

using tuples::Pattern;
using tuples::Tuple;
using tuples::TupleId;

/// Invoked exactly once per blocking operation: with the matched tuple, or
/// with nullopt when the deadline passed or the waiter was cancelled.
using MatchCallback = std::function<void(std::optional<Tuple>)>;

using WaiterId = std::uint64_t;
inline constexpr WaiterId kNoWaiter = 0;

struct SpaceStats {
  std::uint64_t outs = 0;
  std::uint64_t reads = 0;          ///< rd/rdp attempts
  std::uint64_t takes = 0;          ///< in/inp attempts
  std::uint64_t hits = 0;           ///< non-blocking op satisfied
  std::uint64_t waiter_satisfied = 0;
  std::uint64_t waiter_timed_out = 0;
  std::uint64_t tuples_expired = 0;
  std::uint64_t tentative_released = 0;
  std::uint64_t tentative_confirmed = 0;
};

struct SpaceOptions {
  std::string name = "local";
  bool persistent = false;  ///< advertised in the space-handle tuple
};

class LocalTupleSpace {
 public:
  using Options = SpaceOptions;

  LocalTupleSpace(transport::TimerService& queue, transport::Rng& rng, Options opts = {});

  LocalTupleSpace(const LocalTupleSpace&) = delete;
  LocalTupleSpace& operator=(const LocalTupleSpace&) = delete;

  ~LocalTupleSpace();

  // ---- The six Linda operations (local forms) ---------------------------

  /// Places a tuple in the space. `expiry` is the lease-derived instant
  /// after which the tuple may be reclaimed (kNever = no expiry). If a
  /// blocked destructive waiter matches, the tuple goes straight to it and
  /// is never stored. Returns the stored tuple's id (kNoTuple when it was
  /// consumed immediately by a waiter).
  TupleId out(Tuple t, transport::Time expiry = transport::kNever);

  /// Non-blocking read: copy of a matching tuple, chosen nondeterministically
  /// among all matches, or nullopt.
  std::optional<Tuple> rdp(const Pattern& p);

  /// Non-blocking take: as rdp but removes the tuple.
  std::optional<Tuple> inp(const Pattern& p);

  /// Blocking read: calls back immediately on a present match, otherwise
  /// registers a waiter until `deadline` (the lease expiry). Returns a
  /// waiter id (kNoWaiter if satisfied synchronously).
  WaiterId rd(const Pattern& p, transport::Time deadline, MatchCallback cb);

  /// Blocking take; otherwise as rd.
  WaiterId in(const Pattern& p, transport::Time deadline, MatchCallback cb);

  /// Cancels a pending waiter without invoking its callback. Returns false
  /// if it already completed.
  bool cancel_waiter(WaiterId id);

  // ---- Tentative removal (first-response-wins support, §3.1.3) ----------

  /// Removes a matching tuple from visibility but keeps it recoverable.
  std::optional<std::pair<TupleId, Tuple>> take_tentative(const Pattern& p);

  /// Same, but waits until `deadline` for a match (remote blocking in).
  /// The callback receives the id+tuple once tentatively removed.
  WaiterId take_tentative_blocking(
      const Pattern& p, transport::Time deadline,
      std::function<void(std::optional<std::pair<TupleId, Tuple>>)> cb);

  /// Loser path: puts a tentatively-removed tuple back (it becomes visible
  /// again and may satisfy pending waiters).
  bool release_tentative(TupleId id);

  /// Winner path: the removal becomes permanent.
  bool confirm_tentative(TupleId id);

  std::size_t tentative_count() const { return tentative_.size(); }

  // ---- Maintenance & introspection ---------------------------------------

  /// Drops every tuple whose expiry has passed. Called automatically via
  /// per-tuple timers; exposed for tests.
  void purge_expired();

  /// Re-leases a stored tuple (e.g. its producer renewed).
  bool set_tuple_expiry(TupleId id, transport::Time expiry);

  /// Lease-driven reclamation: removes a stored tuple because its storage
  /// lease ended (counts as an expiry). False if it is no longer stored.
  bool reclaim(TupleId id);

  bool contains(TupleId id) const { return index_.contains(id); }

  std::size_t size() const { return index_.size(); }
  std::size_t footprint() const { return index_.total_footprint(); }
  std::size_t waiter_count() const { return waiters_.size(); }

  /// Approximate resident memory of the space engine's structures. Every
  /// figure is a deterministic formula over entry counts and tuple
  /// footprints (no allocator introspection), so the telemetry layer can
  /// sample it into gauges without breaking byte-determinism.
  struct MemoryStats {
    std::size_t tuple_count = 0;
    std::size_t tuple_bytes = 0;      ///< TupleIndex::approx_bytes
    std::size_t waiter_count = 0;
    std::size_t waiter_bytes = 0;     ///< WaiterIndex::approx_bytes
    std::size_t tentative_count = 0;
    std::size_t tentative_bytes = 0;  ///< parked tentative tuple footprints
    std::size_t total_bytes() const {
      return tuple_bytes + waiter_bytes + tentative_bytes;
    }
  };
  MemoryStats memory() const;

  /// Sets memory() into `r`'s "space.*" gauges (absolute set, so repeated
  /// sample-tick refreshes never accumulate).
  void export_memory_gauges(obs::Registry& r) const;

  /// Copy of every visible tuple (tests / examples).
  std::vector<Tuple> snapshot() const;

  /// Copy of every visible tuple with its absolute expiry instant
  /// (transport::kNever when unleased). Feeds the persistence mechanism.
  std::vector<std::pair<Tuple, transport::Time>> snapshot_with_expiry() const;

  /// Number of visible tuples matching `p`, via the engine's counting path
  /// (no match vector is materialized).
  std::size_t count_matches(const Pattern& p) const;

  /// True iff at least one visible tuple matches `p`; short-circuits on
  /// the first match.
  bool has_match(const Pattern& p) const;

  const SpaceStats& stats() const { return stats_; }
  const Options& options() const { return opts_; }
  transport::Time now() const { return queue_.now(); }

  /// Engine accounting: keyed bucket probes vs unkeyed scan fallbacks for
  /// tuple lookups and waiter wakeups.
  const tuples::MatchStats& index_stats() const {
    return index_.match_stats();
  }
  const tuples::MatchStats& waiter_stats() const {
    return waiters_.match_stats();
  }

  /// Mirrors the engine's accounting into `r` ("match.*", "waiters.*").
  void bind_metrics(obs::Registry& r) {
    index_.bind_metrics(r);
    waiters_.bind_metrics(r);
  }

#if TIAMAT_AUDIT_ENABLED
  /// Cross-structure re-verification (audit builds only): delegates to the
  /// engine audits, then checks the space's own bookkeeping — expiry
  /// timers only for leased stored tuples, tentative tuples invisible to
  /// the index, id allocation monotonic. Traps through audit::fail.
  void audit_check(const char* checkpoint) const;

  /// Test hooks: direct engine access so the corruption-trap tests can
  /// break an invariant and watch the next operation's checkpoint fire.
  tuples::TupleIndex& audit_index() { return index_; }
  void audit_corrupt_waiter_fifo_for_test() {
    waiters_.audit_corrupt_fifo_for_test();
  }
#endif

 private:
  /// Waiter bookkeeping; the pattern lives in the WaiterIndex entry.
  struct Waiter {
    bool destructive;
    bool tentative;  ///< deliver (id, tuple) and keep it recoverable
    transport::Time deadline;
    transport::EventId deadline_event = transport::kInvalidEvent;
    MatchCallback cb;  // used when !tentative
    std::function<void(std::optional<std::pair<TupleId, Tuple>>)> tcb;
  };

  /// Picks one candidate id uniformly at random (the paper: "one is
  /// selected in a non-deterministic manner").
  std::optional<TupleId> select_match(const tuples::CompiledPattern& p);

  WaiterId add_waiter(tuples::CompiledPattern p, Waiter w);
  void waiter_deadline(WaiterId id);
  /// Offers a newly visible tuple to waiters; returns true if a destructive
  /// waiter consumed it.
  bool offer_to_waiters(TupleId id, const Tuple& t);
  void schedule_tuple_expiry(TupleId id, transport::Time expiry);
  void drop_tuple_timer(TupleId id);

  transport::TimerService& queue_;
  transport::Rng& rng_;
  Options opts_;
  tuples::TupleIndex index_;
  TupleId next_tuple_id_ = 1;
  WaiterId next_waiter_id_ = 1;
  // Waiters indexed like tuples; monotonic ids preserve FIFO ("oldest
  // waiter wins") within and across buckets.
  tuples::WaiterIndex<Waiter> waiters_;
  std::unordered_map<TupleId, Tuple> tentative_;
  std::unordered_map<TupleId, transport::Time> tentative_expiry_;
  std::size_t tentative_bytes_ = 0;  ///< sum of parked tuple footprints
  // Ordered: purge_expired and teardown walk these, so reclamation order
  // must be ascending-id, not hash order.
  std::map<TupleId, transport::EventId> expiry_events_;
  std::map<TupleId, transport::Time> expiries_;
  SpaceStats stats_;
};

}  // namespace tiamat::space
