// Space persistence (§2.4): a space-handle tuple advertises "whether the
// local space provides a persistence mechanism or not". This module is that
// mechanism: a snapshot serialises every stored tuple together with the
// *remaining* life of its lease, and a restore re-leases each tuple
// relative to the new clock — so a device that sleeps and wakes (or an
// instance that restarts) honours exactly the storage promises it made.
//
// Tentative tuples are NOT persisted: a tentative removal belongs to an
// in-flight distributed operation that cannot survive a restart; losing it
// is equivalent to the originator's Confirm winning (the tuple was taken).
// Space-handle tuples are not persisted either — they are identity-bound
// and republished by the restarted instance.

#pragma once

#include <optional>

#include "space/local_space.h"
#include "tuple/codec.h"

namespace tiamat::space {

/// Serialises the visible contents of `space` at time `now`. Format:
/// varint count, then per tuple: varint remaining-ttl-plus-one (0 = no
/// expiry) and the encoded tuple.
tuples::Bytes snapshot(const LocalTupleSpace& space, transport::Time now);

/// Loads a snapshot into `space` (which need not be empty; tuples are
/// added). Tuples whose remaining lease was <= 0 at snapshot time are
/// dropped. Returns the number restored, or nullopt on a malformed image.
std::optional<std::size_t> restore(LocalTupleSpace& space,
                                   const tuples::Bytes& image);

}  // namespace tiamat::space
