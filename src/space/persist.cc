#include "space/persist.h"

#include "space/handle.h"

namespace tiamat::space {

tuples::Bytes snapshot(const LocalTupleSpace& space, transport::Time now) {
  tuples::Writer w;
  auto contents = space.snapshot_with_expiry();
  // Handle tuples are identity-bound (they name a node address); a
  // restarted instance publishes a fresh one, so they are not persisted.
  std::erase_if(contents,
                [](const auto& e) { return is_handle_tuple(e.first); });
  w.varint(contents.size());
  for (const auto& [t, expiry] : contents) {
    // 0 = unleased; otherwise remaining ttl + 1 (so a just-expiring tuple
    // is distinguishable and dropped on restore).
    std::uint64_t remaining = 0;
    if (expiry != transport::kNever) {
      const transport::Duration left = expiry - now;
      remaining = left > 0 ? static_cast<std::uint64_t>(left) + 1 : 1;
    }
    w.varint(remaining);
    tuples::encode(w, t);
  }
  return std::move(w).take();
}

std::optional<std::size_t> restore(LocalTupleSpace& space,
                                   const tuples::Bytes& image) {
  try {
    tuples::Reader r(image);
    const std::uint64_t count = r.varint();
    std::size_t restored = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t remaining = r.varint();
      tuples::Tuple t = tuples::decode_tuple(r);
      if (remaining == 1) continue;  // lease lapsed at snapshot time
      const transport::Time expiry =
          remaining == 0
              ? transport::kNever
              : space.now() + static_cast<transport::Duration>(remaining - 1);
      if (space.out(std::move(t), expiry) != tuples::kNoTuple) ++restored;
    }
    if (!r.done()) return std::nullopt;
    return restored;
  } catch (const tuples::DecodeError&) {
    return std::nullopt;
  }
}

}  // namespace tiamat::space
