// Active tuples and the eval engine (§2.1, §2.5).
//
// "In the case of eval the tuple is considered active and contains some
// computation which must be carried out before the resultant tuple becomes
// available." Computation cost is modelled as virtual time; when the lease
// expires first, "the resultant computation (if it has not already finished)
// may be halted and the tuple may be removed."

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <variant>
#include <vector>

#include "transport/types.h"
#include "transport/timer.h"
#include "space/local_space.h"
#include "tuple/tuple.h"

namespace tiamat::space {

/// One computed field of an active tuple: the function producing the value
/// and its simulated cost.
struct Computation {
  std::function<tuples::Value()> fn;
  transport::Duration cost = transport::milliseconds(1);
};

/// An active tuple: a mix of ready values and computations. The resultant
/// (passive) tuple becomes available only once every computation finishes.
class ActiveTuple {
 public:
  ActiveTuple() = default;

  ActiveTuple& add(tuples::Value v) {
    slots_.emplace_back(std::move(v));
    return *this;
  }
  ActiveTuple& add(Computation c) {
    slots_.emplace_back(std::move(c));
    return *this;
  }
  ActiveTuple& add(std::function<tuples::Value()> fn,
                   transport::Duration cost = transport::milliseconds(1)) {
    return add(Computation{std::move(fn), cost});
  }

  std::size_t arity() const { return slots_.size(); }

  /// Total simulated compute cost (computations are carried out serially).
  transport::Duration total_cost() const;

  /// Runs every computation now and materialises the passive tuple.
  tuples::Tuple materialise() const;

 private:
  std::vector<std::variant<tuples::Value, Computation>> slots_;
};

using EvalId = std::uint64_t;
inline constexpr EvalId kNoEval = 0;

/// Runs active tuples against a local space on the simulated clock.
class EvalEngine {
 public:
  struct Stats {
    std::uint64_t started = 0;
    std::uint64_t completed = 0;
    std::uint64_t halted = 0;  ///< lease expired mid-computation
  };

  EvalEngine(transport::TimerService& queue, LocalTupleSpace& target);
  ~EvalEngine();

  EvalEngine(const EvalEngine&) = delete;
  EvalEngine& operator=(const EvalEngine&) = delete;

  /// Starts the computation; the resultant tuple appears in the target
  /// space after the active tuple's total cost, with `tuple_expiry` as its
  /// storage lease. If `halt_by` (the operation lease's expiry) arrives
  /// first, the computation is halted and nothing appears.
  EvalId submit(ActiveTuple at, transport::Time halt_by = transport::kNever,
                transport::Time tuple_expiry = transport::kNever);

  /// Generalised form: an arbitrary whole-tuple computation with an
  /// explicit simulated cost. Used by remote eval (§2.4), where the
  /// computation comes from the ComputationRegistry.
  EvalId submit_fn(std::function<tuples::Tuple()> fn, transport::Duration cost,
                   transport::Time halt_by = transport::kNever,
                   transport::Time tuple_expiry = transport::kNever);

  /// Halts a running computation (lease revocation path). False if it
  /// already completed.
  bool halt(EvalId id);

  std::size_t running() const { return running_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  struct Running {
    std::function<tuples::Tuple()> job;
    transport::EventId completion = transport::kInvalidEvent;
    transport::EventId halt_event = transport::kInvalidEvent;
    transport::Time tuple_expiry;
  };

  void complete(EvalId id);

  transport::TimerService& queue_;
  LocalTupleSpace& target_;
  EvalId next_id_ = 1;
  // Ordered: teardown cancels completion/halt events in id order.
  std::map<EvalId, Running> running_;
  Stats stats_;
};

}  // namespace tiamat::space
