#include "audit/audit.h"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <utility>

namespace tiamat::audit {

namespace {

FailureHandler& handler_slot() {
  static FailureHandler handler;
  return handler;
}

std::uint64_t& sample_counter() {
  static std::uint64_t n = 0;
  return n;
}

std::uint64_t& failure_counter() {
  static std::uint64_t n = 0;
  return n;
}

ContextProvider& context_slot() {
  static ContextProvider provider;
  return provider;
}

}  // namespace

void set_failure_handler(FailureHandler handler) {
  handler_slot() = std::move(handler);
}

void set_context_provider(ContextProvider provider) {
  context_slot() = std::move(provider);
}

void fail(const std::string& component, const std::string& checkpoint,
          const std::string& invariant, const std::string& detail) {
  ++failure_counter();
  std::ostringstream out;
  out << "TIAMAT AUDIT TRAP\n"
      << "  component:  " << component << "\n"
      << "  checkpoint: " << checkpoint << "\n"
      << "  invariant:  " << invariant << "\n"
      << "  detail:     " << detail << "\n";
  if (context_slot()) out << context_slot()();
  const std::string report = out.str();
  if (handler_slot()) {
    handler_slot()(report);
    return;
  }
  // No return path and no registry left to report through: dump and trap.
  std::cerr << report << std::flush;
  std::abort();
}

bool sample(std::uint64_t period) {
  if (period == 0) return true;
  return ++sample_counter() % period == 0;
}

void reset_sampler() { sample_counter() = 0; }

std::uint64_t failure_count() { return failure_counter(); }

}  // namespace tiamat::audit
