// Invariant-audit infrastructure (DESIGN.md §9).
//
// The matching engine's correctness rests on structural invariants (every
// tuple in exactly one bucket, shard id lists sorted, waiter FIFO monotonic
// across the keyed/overflow merge, lease table entries live) that ordinary
// tests exercise only incidentally. The audit build (`cmake --preset
// audit`, which defines TIAMAT_AUDIT) compiles checkpoint calls into
// LocalTupleSpace, TupleIndex, WaiterIndex and LeaseManager that re-verify
// those invariants after every mutation, plus a sampled differential check
// of keyed bucket probes against a linear-scan oracle. Violations trap
// through audit::fail with a diagnostic dump.
//
// This header is dependency-free on purpose: the engine layers include it
// unconditionally (the macros must exist in every build), so it must sit
// below all of them. In non-audit builds the checkpoint macro expands to
// nothing — zero code, zero cost.

#pragma once

#include <cstdint>
#include <functional>
#include <string>

#if defined(TIAMAT_AUDIT)
#define TIAMAT_AUDIT_ENABLED 1
/// Statement-level checkpoint: compiled in only under the audit preset.
#define TIAMAT_AUDIT_CHECK(stmt) \
  do {                           \
    stmt;                        \
  } while (false)
#else
#define TIAMAT_AUDIT_ENABLED 0
#define TIAMAT_AUDIT_CHECK(stmt) \
  do {                           \
  } while (false)
#endif

namespace tiamat::audit {

/// Receives the formatted diagnostic on invariant violation. The default
/// handler writes the dump to stderr and aborts the process; tests install
/// their own to assert on trap content without dying.
using FailureHandler = std::function<void(const std::string& report)>;

/// Replaces the failure handler; pass nullptr to restore the default
/// (dump + abort). Returns nothing; not thread-safe (the engine is
/// single-threaded; see the tsan preset note in DESIGN.md §9).
void set_failure_handler(FailureHandler handler);

/// Supplies extra context appended to every trap report (the flight
/// recorders' recent causal history, registered by the obs layer). The
/// provider runs only on failure, so it may be arbitrarily expensive;
/// pass nullptr to detach.
using ContextProvider = std::function<std::string()>;
void set_context_provider(ContextProvider provider);

/// Reports an invariant violation: formats a diagnostic dump from the
/// pieces and routes it to the failure handler. `component` names the
/// structure ("TupleIndex"), `checkpoint` the call site ("out"),
/// `invariant` the broken rule ("bucket-membership"), `detail` the
/// specifics (ids, keys, sizes).
void fail(const std::string& component, const std::string& checkpoint,
          const std::string& invariant, const std::string& detail);

/// Deterministic sampler for the differential probe-vs-oracle check:
/// returns true on every `period`-th call (a plain counter — the audit
/// build must stay seed-reproducible, so no randomness here).
bool sample(std::uint64_t period = 64);

/// Resets the sampler (tests).
void reset_sampler();

/// Number of invariant violations reported since process start (whether or
/// not the installed handler aborted). Lets tests assert "no silent traps".
std::uint64_t failure_count();

}  // namespace tiamat::audit
