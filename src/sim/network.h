// Simulated radio network with first-class *visibility*.
//
// Tiamat's model (paper §2.2) depends only on the concept of visibility —
// "another instance is considered visible if it can be communicated with in
// some way". This network derives visibility from node positions and a radio
// range, with optional scripted per-link overrides for the Figure-1 style
// scenarios, and delivers unicast/multicast payloads with configurable
// latency, jitter and loss. It is the substitution for the paper's Java/IP
// multicast testbed (see DESIGN.md §2).

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/clock.h"
#include "sim/event_queue.h"
#include "sim/random.h"

namespace tiamat::sim {

/// Identifies a node for the lifetime of a run. Never reused.
using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = 0;

/// Identifies a multicast group.
using GroupId = std::uint32_t;

struct Position {
  double x = 0.0;
  double y = 0.0;
};

double distance(const Position& a, const Position& b);

/// Latency/loss model applied to every transmission.
struct LinkModel {
  Duration base_latency = 2 * kMillisecond;  ///< fixed per-hop latency
  Duration per_kilobyte = 250;               ///< added per KiB of payload
  Duration jitter = 500;                     ///< uniform extra in [0, jitter]
  double loss = 0.0;                         ///< independent drop probability
};

/// Aggregate traffic counters; the benches report these as the paper-shaped
/// "network cost" series.
struct NetStats {
  std::uint64_t unicasts_sent = 0;
  std::uint64_t multicasts_sent = 0;  ///< one per multicast *call*
  std::uint64_t deliveries = 0;       ///< payloads actually handed to a node
  std::uint64_t drops_invisible = 0;  ///< destination not visible
  std::uint64_t drops_loss = 0;       ///< random loss
  std::uint64_t drops_dead = 0;       ///< destination removed/offline
  std::uint64_t bytes_sent = 0;       ///< sum of payload sizes transmitted

  void reset() { *this = NetStats{}; }
};

/// Per-directed-link traffic (messages given to the medium and their bytes,
/// whether or not they were ultimately delivered). Keyed by (from, to), so
/// asymmetric traffic — one chatty peer, one silent — is visible.
struct LinkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

using Payload = std::vector<std::uint8_t>;
using DeliveryHandler = std::function<void(NodeId from, const Payload&)>;

/// The simulated network. Owns node state (position, liveness, group
/// membership, delivery handler) and performs all transmission.
class Network {
 public:
  Network(EventQueue& queue, Rng& rng, LinkModel model = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // ---- Topology & membership -------------------------------------------

  /// Adds a node at `pos`; it starts online with no handler bound.
  NodeId add_node(Position pos = {});

  /// Re-adds a previously removed node under its old id (crash/restart
  /// scenarios: the restarted device keeps its address). The node comes
  /// back in a clean state — online, no handler, no groups, no link
  /// overrides — and packets in flight to the dead incarnation stay
  /// dropped. Returns false when `id` is still present or was never
  /// allocated by add_node.
  bool add_node_at(NodeId id, Position pos = {});

  /// Removes a node: in-flight packets to it are dropped, and every link
  /// override naming it is cleared so a later add_node_at starts from a
  /// clean visibility state.
  void remove_node(NodeId id);

  bool node_exists(NodeId id) const { return nodes_.contains(id); }

  /// Radio on/off. An offline node is invisible and receives nothing, but
  /// keeps its state — models a device sleeping or moving out of coverage.
  void set_online(NodeId id, bool online);
  bool online(NodeId id) const;

  void set_position(NodeId id, Position pos);
  Position position(NodeId id) const;

  /// Radio range used to derive visibility from positions; <= 0 means
  /// every online pair is mutually visible (a LAN).
  void set_radio_range(double range) { radio_range_ = range; }
  double radio_range() const { return radio_range_; }

  /// Scripted symmetric override: forces the a<->b link up or down
  /// regardless of positions. Used by the Figure-1 scenarios.
  void set_link(NodeId a, NodeId b, bool up);
  void clear_link_override(NodeId a, NodeId b);
  void clear_all_link_overrides() { overrides_.clear(); }

  /// True when a and b could exchange a packet right now.
  bool visible(NodeId a, NodeId b) const;

  /// All nodes visible from `id` (excluding itself), in id order.
  std::vector<NodeId> visible_from(NodeId id) const;

  // ---- Traffic -----------------------------------------------------------

  /// Installs the function invoked when a payload arrives at `id`.
  void bind(NodeId id, DeliveryHandler handler);

  void join_group(NodeId id, GroupId group);
  void leave_group(NodeId id, GroupId group);

  /// Unicast. Delivery requires visibility both at send and arrival time.
  void send(NodeId from, NodeId to, Payload payload);

  /// Multicast to every *currently visible* member of `group` except the
  /// sender. The sender need not be a member.
  void multicast(NodeId from, GroupId group, Payload payload);

  // ---- Introspection -----------------------------------------------------

  NetStats& stats() { return stats_; }
  const NetStats& stats() const { return stats_; }

  /// Per-link traffic, keyed by directed (from, to). Iteration order is
  /// deterministic (ordered map) so exports are diffable run-over-run.
  const std::map<std::pair<NodeId, NodeId>, LinkStats>& link_stats() const {
    return link_stats_;
  }
  void reset_link_stats() { link_stats_.clear(); }
  EventQueue& queue() { return queue_; }
  Rng& rng() { return rng_; }
  Time now() const { return queue_.now(); }
  const LinkModel& link_model() const { return model_; }
  void set_link_model(LinkModel m) { model_ = m; }

  std::vector<NodeId> node_ids() const;

 private:
  struct NodeState {
    Position pos;
    bool online = true;
    /// Bumped on every (re-)add of this id: a packet captures the target's
    /// incarnation at transmission and is dropped on arrival if the node
    /// was removed (and possibly re-added) in between. A restarted node
    /// never receives traffic addressed to its previous life.
    std::uint64_t incarnation = 1;
    DeliveryHandler handler;
    std::unordered_set<GroupId> groups;
  };

  Duration transmission_delay(std::size_t bytes);
  void deliver_later(NodeId from, NodeId to, Payload payload);
  void account_link(NodeId from, NodeId to, std::size_t bytes);
  static std::uint64_t link_key(NodeId a, NodeId b);

  EventQueue& queue_;
  Rng& rng_;
  LinkModel model_;
  double radio_range_ = 0.0;  // <=0: everyone visible
  NodeId next_id_ = 1;
  std::map<NodeId, NodeState> nodes_;  // ordered: deterministic iteration
  // Last incarnation of every id ever allocated; survives removal so
  // add_node_at can restart the id with a fresh incarnation.
  std::map<NodeId, std::uint64_t> incarnations_;
  // Ordered: remove_node walks this to clear the dead node's entries.
  std::map<std::uint64_t, bool> overrides_;
  NetStats stats_;
  std::map<std::pair<NodeId, NodeId>, LinkStats> link_stats_;
};

}  // namespace tiamat::sim
