#include "sim/network.h"

#include <cmath>
#include <utility>

namespace tiamat::sim {

double distance(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

Network::Network(EventQueue& queue, Rng& rng, LinkModel model)
    : queue_(queue), rng_(rng), model_(model) {}

NodeId Network::add_node(Position pos) {
  NodeId id = next_id_++;
  NodeState& n = nodes_[id];
  n.pos = pos;
  n.incarnation = ++incarnations_[id];
  return id;
}

bool Network::add_node_at(NodeId id, Position pos) {
  if (nodes_.contains(id)) return false;
  auto it = incarnations_.find(id);
  if (it == incarnations_.end()) return false;  // never allocated
  NodeState& n = nodes_[id];
  n.pos = pos;
  n.incarnation = ++it->second;
  return true;
}

void Network::remove_node(NodeId id) {
  if (nodes_.erase(id) == 0) return;
  // A dead node keeps no scripted links: if the id is ever re-added it must
  // start from a clean visibility state, not inherit its past overrides.
  for (auto it = overrides_.begin(); it != overrides_.end();) {
    const NodeId a = static_cast<NodeId>(it->first >> 32);
    const NodeId b = static_cast<NodeId>(it->first & 0xFFFFFFFFu);
    if (a == id || b == id) {
      it = overrides_.erase(it);
    } else {
      ++it;
    }
  }
}

void Network::set_online(NodeId id, bool online) {
  auto it = nodes_.find(id);
  if (it != nodes_.end()) it->second.online = online;
}

bool Network::online(NodeId id) const {
  auto it = nodes_.find(id);
  return it != nodes_.end() && it->second.online;
}

void Network::set_position(NodeId id, Position pos) {
  auto it = nodes_.find(id);
  if (it != nodes_.end()) it->second.pos = pos;
}

Position Network::position(NodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? Position{} : it->second.pos;
}

std::uint64_t Network::link_key(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

void Network::set_link(NodeId a, NodeId b, bool up) {
  overrides_[link_key(a, b)] = up;
}

void Network::clear_link_override(NodeId a, NodeId b) {
  overrides_.erase(link_key(a, b));
}

bool Network::visible(NodeId a, NodeId b) const {
  if (a == b) return node_exists(a) && online(a);
  auto ia = nodes_.find(a);
  auto ib = nodes_.find(b);
  if (ia == nodes_.end() || ib == nodes_.end()) return false;
  if (!ia->second.online || !ib->second.online) return false;
  auto ov = overrides_.find(link_key(a, b));
  if (ov != overrides_.end()) return ov->second;
  if (radio_range_ <= 0.0) return true;
  return distance(ia->second.pos, ib->second.pos) <= radio_range_;
}

std::vector<NodeId> Network::visible_from(NodeId id) const {
  std::vector<NodeId> out;
  for (const auto& [other, state] : nodes_) {
    (void)state;
    if (other != id && visible(id, other)) out.push_back(other);
  }
  return out;
}

void Network::bind(NodeId id, DeliveryHandler handler) {
  auto it = nodes_.find(id);
  if (it != nodes_.end()) it->second.handler = std::move(handler);
}

void Network::join_group(NodeId id, GroupId group) {
  auto it = nodes_.find(id);
  if (it != nodes_.end()) it->second.groups.insert(group);
}

void Network::leave_group(NodeId id, GroupId group) {
  auto it = nodes_.find(id);
  if (it != nodes_.end()) it->second.groups.erase(group);
}

Duration Network::transmission_delay(std::size_t bytes) {
  Duration d = model_.base_latency;
  d += static_cast<Duration>(bytes) * model_.per_kilobyte / 1024;
  if (model_.jitter > 0) d += rng_.uniform(0, model_.jitter);
  return d;
}

void Network::account_link(NodeId from, NodeId to, std::size_t bytes) {
  LinkStats& ls = link_stats_[{from, to}];
  ++ls.messages;
  ls.bytes += bytes;
}

void Network::deliver_later(NodeId from, NodeId to, Payload payload) {
  stats_.bytes_sent += payload.size();
  account_link(from, to, payload.size());
  if (model_.loss > 0.0 && rng_.chance(model_.loss)) {
    ++stats_.drops_loss;
    return;
  }
  Duration delay = transmission_delay(payload.size());
  const auto target = nodes_.find(to);
  const std::uint64_t incarnation =
      target == nodes_.end() ? 0 : target->second.incarnation;
  queue_.schedule_after(
      delay,
      [this, from, to, incarnation, payload = std::move(payload)]() mutable {
        auto it = nodes_.find(to);
        // A packet addressed to an earlier incarnation of a restarted node
        // is as dead as one addressed to a removed node.
        if (it == nodes_.end() || !it->second.online ||
            it->second.incarnation != incarnation) {
          ++stats_.drops_dead;
          return;
        }
        // Packets in flight are lost if the pair moved apart before arrival.
        if (!visible(from, to)) {
          ++stats_.drops_invisible;
          return;
        }
        ++stats_.deliveries;
        if (it->second.handler) it->second.handler(from, payload);
      });
}

void Network::send(NodeId from, NodeId to, Payload payload) {
  ++stats_.unicasts_sent;
  if (!visible(from, to)) {
    stats_.bytes_sent += payload.size();
    account_link(from, to, payload.size());
    ++stats_.drops_invisible;
    return;
  }
  deliver_later(from, to, std::move(payload));
}

void Network::multicast(NodeId from, GroupId group, Payload payload) {
  ++stats_.multicasts_sent;
  for (const auto& [id, state] : nodes_) {
    if (id == from) continue;
    if (!state.groups.contains(group)) continue;
    if (!visible(from, id)) continue;
    deliver_later(from, id, payload);  // copy per receiver
  }
}

std::vector<NodeId> Network::node_ids() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (const auto& [id, state] : nodes_) {
    (void)state;
    out.push_back(id);
  }
  return out;
}

}  // namespace tiamat::sim
