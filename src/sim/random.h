// Seeded random-number utilities.
//
// Every stochastic decision in the simulator and in Tiamat itself
// (nondeterministic tuple selection, jitter, mobility) draws from an
// explicitly seeded Rng so that runs are reproducible.

#pragma once

#include <cstdint>
#include <random>

namespace tiamat::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x7113a7u) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Uniform real in [lo, hi).
  double real(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Bernoulli trial.
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return real() < p;
  }

  /// Exponentially distributed duration with the given mean (> 0).
  double exponential(double mean) {
    std::exponential_distribution<double> d(1.0 / mean);
    return d(engine_);
  }

  /// Derives an independent child stream; used to give each node its own
  /// stream so adding a node never perturbs the draws of existing ones.
  Rng fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ull); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tiamat::sim
