// Topology construction helpers: lay out N nodes in standard shapes so that
// the derived visibility graph has a known structure. Used by tests and by
// the flooding/scalability benches.

#pragma once

#include <vector>

#include "sim/network.h"

namespace tiamat::sim {

/// Creates n nodes that are all mutually visible (radio range disabled).
std::vector<NodeId> make_clique(Network& net, std::size_t n);

/// Creates n nodes on a line with `spacing` between neighbours and sets the
/// radio range so that only adjacent nodes see each other.
std::vector<NodeId> make_line(Network& net, std::size_t n,
                              double spacing = 10.0);

/// Creates an r x c grid with `spacing` between neighbours; radio range set
/// so each node sees its 4-neighbourhood.
std::vector<NodeId> make_grid(Network& net, std::size_t rows,
                              std::size_t cols, double spacing = 10.0);

/// Creates n nodes uniformly at random in a w x h arena with the given radio
/// range (a random geometric graph).
std::vector<NodeId> make_random_geometric(Network& net, Rng& rng,
                                          std::size_t n, double w, double h,
                                          double range);

/// Number of connected components of the current visibility graph over the
/// given nodes — handy for asserting that a generated topology is connected.
std::size_t connected_components(const Network& net,
                                 const std::vector<NodeId>& nodes);

}  // namespace tiamat::sim
