// Virtual-time primitives for the deterministic discrete-event simulator.
//
// All of Tiamat and every baseline protocol in this repository runs against
// simulated time, never the wall clock: a run is a pure function of its
// configuration and RNG seed, which is what makes the churn/mobility
// experiments reproducible.

#pragma once

#include <cstdint>

namespace tiamat::sim {

/// A point in virtual time, in microseconds since the start of the run.
using Time = std::int64_t;

/// A span of virtual time, in microseconds.
using Duration = std::int64_t;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;

/// Sentinel used for "no deadline" / "never expires".
inline constexpr Time kNever = INT64_MAX;

constexpr Duration milliseconds(std::int64_t n) { return n * kMillisecond; }
constexpr Duration seconds(std::int64_t n) { return n * kSecond; }
constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

}  // namespace tiamat::sim
