#include "sim/topology.h"

#include <queue>
#include <unordered_set>

namespace tiamat::sim {

std::vector<NodeId> make_clique(Network& net, std::size_t n) {
  net.set_radio_range(0.0);
  std::vector<NodeId> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(net.add_node(Position{static_cast<double>(i), 0.0}));
  }
  return ids;
}

std::vector<NodeId> make_line(Network& net, std::size_t n, double spacing) {
  net.set_radio_range(spacing * 1.5);
  std::vector<NodeId> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(
        net.add_node(Position{static_cast<double>(i) * spacing, 0.0}));
  }
  return ids;
}

std::vector<NodeId> make_grid(Network& net, std::size_t rows,
                              std::size_t cols, double spacing) {
  net.set_radio_range(spacing * 1.1);  // 4-neighbourhood, not diagonals
  std::vector<NodeId> ids;
  ids.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      ids.push_back(net.add_node(Position{static_cast<double>(c) * spacing,
                                          static_cast<double>(r) * spacing}));
    }
  }
  return ids;
}

std::vector<NodeId> make_random_geometric(Network& net, Rng& rng,
                                          std::size_t n, double w, double h,
                                          double range) {
  net.set_radio_range(range);
  std::vector<NodeId> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(net.add_node(Position{rng.real(0.0, w), rng.real(0.0, h)}));
  }
  return ids;
}

std::size_t connected_components(const Network& net,
                                 const std::vector<NodeId>& nodes) {
  // Each BFS starts from the first unvisited node in the caller's order, so
  // traversal (and any instrumentation hung off it) is deterministic; the
  // set is only probed, never iterated.
  std::unordered_set<NodeId> visited;
  std::size_t components = 0;
  for (NodeId start : nodes) {
    if (!visited.insert(start).second) continue;
    ++components;
    std::queue<NodeId> frontier;
    frontier.push(start);
    while (!frontier.empty()) {
      NodeId cur = frontier.front();
      frontier.pop();
      for (NodeId other : nodes) {
        if (!visited.contains(other) && net.visible(cur, other)) {
          visited.insert(other);
          frontier.push(other);
        }
      }
    }
  }
  return components;
}

}  // namespace tiamat::sim
