// Mobility models that drive node positions (and hence visibility) over
// virtual time. Used by the churn and scalability experiments (E4, E8).

#pragma once

#include <functional>
#include <map>
#include <vector>

#include "sim/network.h"

namespace tiamat::sim {

/// Classic random-waypoint mobility inside a rectangular arena: each node
/// picks a uniform destination, moves toward it at a uniform speed, pauses,
/// and repeats. Positions are updated on a fixed tick.
struct RandomWaypointParams {
  double arena_w = 500.0;
  double arena_h = 500.0;
  double min_speed = 1.0;   ///< units per second
  double max_speed = 10.0;  ///< units per second
  Duration pause = seconds(1);
  Duration tick = milliseconds(100);
};

class RandomWaypoint {
 public:
  using Params = RandomWaypointParams;

  RandomWaypoint(Network& net, Rng& rng, Params params = {});

  /// Starts moving `node`; its current network position is the origin.
  void add(NodeId node);
  void remove(NodeId node);

  /// Begins (or restarts) the periodic tick. `stop` halts it.
  void start();
  void stop();

  const Params& params() const { return params_; }

 private:
  struct State {
    Position target;
    double speed = 0.0;        // units per second
    Time pause_until = 0;
  };

  void tick();
  void pick_target(NodeId id, State& s);

  Network& net_;
  Rng& rng_;
  Params params_;
  // Ordered: tick() walks every node, and movement consumes rng_ draws,
  // so the walk order decides which node gets which draw.
  std::map<NodeId, State> states_;
  EventId tick_event_ = kInvalidEvent;
  bool running_ = false;
};

/// Membership churn: periodically toggles random nodes offline/online.
/// Models devices sleeping, dying, or roaming out of the environment
/// entirely — the paper's "devices come and go frequently".
struct ChurnParams {
  Duration interval = milliseconds(500);  ///< how often to act
  double leave_probability = 0.5;         ///< else a downed node rejoins
  std::size_t min_online = 1;             ///< never sink below this
};

class ChurnProcess {
 public:
  using Params = ChurnParams;

  ChurnProcess(Network& net, Rng& rng, Params params = {});

  void manage(NodeId node);
  void start();
  void stop();

  std::uint64_t transitions() const { return transitions_; }

  /// Invoked with (node, now_online) on every toggle.
  std::function<void(NodeId, bool)> on_toggle;

 private:
  void tick();

  Network& net_;
  Rng& rng_;
  Params params_;
  std::vector<NodeId> managed_;
  EventId tick_event_ = kInvalidEvent;
  bool running_ = false;
  std::uint64_t transitions_ = 0;
};

}  // namespace tiamat::sim
