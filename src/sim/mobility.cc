#include "sim/mobility.h"

#include <cmath>

namespace tiamat::sim {

RandomWaypoint::RandomWaypoint(Network& net, Rng& rng, Params params)
    : net_(net), rng_(rng), params_(params) {}

void RandomWaypoint::add(NodeId node) {
  State s;
  pick_target(node, s);
  states_[node] = s;
}

void RandomWaypoint::remove(NodeId node) { states_.erase(node); }

void RandomWaypoint::pick_target(NodeId, State& s) {
  s.target = Position{rng_.real(0.0, params_.arena_w),
                      rng_.real(0.0, params_.arena_h)};
  s.speed = rng_.real(params_.min_speed, params_.max_speed);
}

void RandomWaypoint::start() {
  if (running_) return;
  running_ = true;
  tick_event_ =
      net_.queue().schedule_after(params_.tick, [this] { tick(); });
}

void RandomWaypoint::stop() {
  running_ = false;
  if (tick_event_ != kInvalidEvent) {
    net_.queue().cancel(tick_event_);
    tick_event_ = kInvalidEvent;
  }
}

void RandomWaypoint::tick() {
  if (!running_) return;
  const Time now = net_.now();
  const double dt = to_seconds(params_.tick);
  // states_ is ordered, so this walk (and the rng_ draws it makes) visits
  // nodes in ascending id order.
  for (auto it = states_.begin(); it != states_.end();) {
    const NodeId id = it->first;
    if (!net_.node_exists(id)) {
      it = states_.erase(it);
      continue;
    }
    State& s = it->second;
    ++it;
    if (now < s.pause_until) continue;
    Position p = net_.position(id);
    const double dx = s.target.x - p.x;
    const double dy = s.target.y - p.y;
    const double dist = std::sqrt(dx * dx + dy * dy);
    const double step = s.speed * dt;
    if (dist <= step) {
      net_.set_position(id, s.target);
      s.pause_until = now + params_.pause;
      pick_target(id, s);
    } else {
      net_.set_position(id, Position{p.x + dx / dist * step,
                                     p.y + dy / dist * step});
    }
  }
  tick_event_ =
      net_.queue().schedule_after(params_.tick, [this] { tick(); });
}

ChurnProcess::ChurnProcess(Network& net, Rng& rng, Params params)
    : net_(net), rng_(rng), params_(params) {}

void ChurnProcess::manage(NodeId node) { managed_.push_back(node); }

void ChurnProcess::start() {
  if (running_) return;
  running_ = true;
  tick_event_ =
      net_.queue().schedule_after(params_.interval, [this] { tick(); });
}

void ChurnProcess::stop() {
  running_ = false;
  if (tick_event_ != kInvalidEvent) {
    net_.queue().cancel(tick_event_);
    tick_event_ = kInvalidEvent;
  }
}

void ChurnProcess::tick() {
  if (!running_) return;
  if (!managed_.empty()) {
    NodeId victim = managed_[rng_.index(managed_.size())];
    if (net_.node_exists(victim)) {
      const bool is_online = net_.online(victim);
      std::size_t online_count = 0;
      for (NodeId n : managed_) {
        if (net_.node_exists(n) && net_.online(n)) ++online_count;
      }
      if (is_online) {
        if (online_count > params_.min_online &&
            rng_.chance(params_.leave_probability)) {
          net_.set_online(victim, false);
          ++transitions_;
          if (on_toggle) on_toggle(victim, false);
        }
      } else {
        net_.set_online(victim, true);
        ++transitions_;
        if (on_toggle) on_toggle(victim, true);
      }
    }
  }
  tick_event_ =
      net_.queue().schedule_after(params_.interval, [this] { tick(); });
}

}  // namespace tiamat::sim
