// Small statistics accumulators used by the benchmark harnesses to report
// the latency/traffic series that stand in for the paper's (qualitative)
// performance claims.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace tiamat::sim {

/// Accumulates scalar samples and reports summary statistics.
class Summary {
 public:
  void add(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double sum() const {
    double s = 0.0;
    for (double v : samples_) s += v;
    return s;
  }

  double mean() const { return empty() ? 0.0 : sum() / count(); }

  double min() const {
    return empty() ? 0.0 : *std::min_element(samples_.begin(), samples_.end());
  }

  double max() const {
    return empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
  }

  double stddev() const {
    if (count() < 2) return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (double v : samples_) acc += (v - m) * (v - m);
    return std::sqrt(acc / (count() - 1));
  }

  /// Percentile in [0,100] by nearest-rank; 0 on empty.
  double percentile(double p) {
    if (empty()) return 0.0;
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    const double rank = p / 100.0 * (samples_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - lo;
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  double median() { return percentile(50.0); }
  double p95() { return percentile(95.0); }

  void clear() {
    samples_.clear();
    sorted_ = false;
  }

 private:
  std::vector<double> samples_;
  bool sorted_ = false;
};

/// Success/failure counter with a derived rate.
struct RateCounter {
  std::uint64_t ok = 0;
  std::uint64_t fail = 0;

  void success() { ++ok; }
  void failure() { ++fail; }
  std::uint64_t total() const { return ok + fail; }
  double rate() const {
    return total() == 0 ? 0.0 : static_cast<double>(ok) / total();
  }
};

}  // namespace tiamat::sim
