// Small statistics accumulators used by the benchmark harnesses to report
// the latency/traffic series that stand in for the paper's (qualitative)
// performance claims.
//
// Summary is for bench-side aggregation only: per-operation hot paths in
// the core use obs::Histogram (fixed buckets, no per-sample storage). Here,
// sum/min/max/mean are maintained incrementally, percentile sorts lazily
// (at most once per batch of adds), and an optional bounded mode keeps a
// uniform reservoir instead of growing without limit.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace tiamat::sim {

/// Accumulates scalar samples and reports summary statistics.
class Summary {
 public:
  Summary() = default;

  /// Bounded mode: retains at most `max_samples` via uniform reservoir
  /// sampling (deterministic — no external RNG). sum/mean/min/max/count
  /// always reflect every sample added; percentiles are estimated from the
  /// reservoir.
  explicit Summary(std::size_t max_samples) : max_samples_(max_samples) {
    samples_.reserve(max_samples);
  }

  void reserve(std::size_t n) { samples_.reserve(n); }

  void add(double v) {
    ++count_;
    sum_ += v;
    if (count_ == 1) {
      min_ = max_ = v;
    } else {
      min_ = std::min(min_, v);
      max_ = std::max(max_, v);
    }
    if (max_samples_ == 0 || samples_.size() < max_samples_) {
      samples_.push_back(v);
    } else {
      // Vitter's algorithm R: keep each of the `count_` samples with equal
      // probability `max_samples_ / count_`.
      const std::uint64_t j = next_random() % count_;
      if (j < max_samples_) samples_[static_cast<std::size_t>(j)] = v;
    }
    sorted_ = false;
  }

  std::size_t count() const { return static_cast<std::size_t>(count_); }
  bool empty() const { return count_ == 0; }

  double sum() const { return sum_; }
  double mean() const { return empty() ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return empty() ? 0.0 : min_; }
  double max() const { return empty() ? 0.0 : max_; }

  double stddev() const {
    if (samples_.size() < 2) return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (double v : samples_) acc += (v - m) * (v - m);
    return std::sqrt(acc / (samples_.size() - 1));
  }

  /// Percentile in [0,100] by nearest-rank over the retained samples; 0 on
  /// empty. Sorts lazily, so interleaved add/percentile batches pay one
  /// sort per batch, not one per call.
  double percentile(double p) {
    if (samples_.empty()) return 0.0;
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    const double rank = p / 100.0 * (samples_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - lo;
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  double median() { return percentile(50.0); }
  double p95() { return percentile(95.0); }

  /// Samples currently retained (== count() unless bounded mode kicked in).
  std::size_t retained() const { return samples_.size(); }
  std::size_t max_samples() const { return max_samples_; }

  void clear() {
    samples_.clear();
    sorted_ = false;
    count_ = 0;
    sum_ = 0.0;
    min_ = max_ = 0.0;
    rng_state_ = kRngSeed;
  }

 private:
  static constexpr std::uint64_t kRngSeed = 0x9e3779b97f4a7c15ull;

  std::uint64_t next_random() {
    // splitmix64: cheap, deterministic, good enough for reservoir indices.
    std::uint64_t z = (rng_state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  std::vector<double> samples_;
  bool sorted_ = false;
  std::size_t max_samples_ = 0;  ///< 0: unbounded
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t rng_state_ = kRngSeed;
};

/// Success/failure counter with a derived rate.
struct RateCounter {
  std::uint64_t ok = 0;
  std::uint64_t fail = 0;

  void success() { ++ok; }
  void failure() { ++fail; }
  std::uint64_t total() const { return ok + fail; }
  double rate() const {
    return total() == 0 ? 0.0 : static_cast<double>(ok) / total();
  }
};

}  // namespace tiamat::sim
