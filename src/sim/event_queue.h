// Deterministic discrete-event queue.
//
// Events scheduled for the same instant fire in scheduling order (a strictly
// increasing sequence number breaks ties), so a run never depends on
// container iteration order or any other incidental source of
// nondeterminism.

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/clock.h"
#include "transport/timer.h"

namespace tiamat::sim {

/// Identifies a scheduled event so it can be cancelled before it fires.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEvent = 0;

/// Priority queue of timed callbacks over virtual time.
///
/// The queue is the single driver of a simulation: everything that "takes
/// time" (message latency, lease expiry, compute delays, mobility ticks) is
/// an event. `run_until_idle` therefore terminates exactly when the modelled
/// system has quiesced.
///
/// The queue IS the simulator's transport::TimerService: protocol code that
/// schedules through the transport clock abstraction runs unchanged on
/// virtual time, and existing call sites can pass an EventQueue wherever a
/// TimerService is expected.
class EventQueue : public transport::TimerService {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Current virtual time. Starts at 0.
  Time now() const override { return now_; }

  /// Schedules `fn` to run at absolute time `when` (>= now) and returns a
  /// handle usable with `cancel`. Scheduling in the past clamps to `now`.
  EventId schedule_at(Time when, std::function<void()> fn) override;

  /// Schedules `fn` to run `delay` from now.
  EventId schedule_after(Duration delay, std::function<void()> fn) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Cancels a pending event. Returns false if it already fired, was already
  /// cancelled, or never existed. Cancellation is O(1); the tombstone is
  /// discarded when the event surfaces.
  bool cancel(EventId id) override;

  /// Runs events until the queue is empty. Returns the number fired.
  std::size_t run_until_idle();

  /// Runs events with firing time <= `deadline`, then advances the clock to
  /// `deadline` (even if the queue emptied earlier). Returns events fired.
  std::size_t run_until(Time deadline);

  /// Runs events for `d` of virtual time from now.
  std::size_t run_for(Duration d) { return run_until(now_ + d); }

  /// Fires the single earliest pending event, if any. Returns whether an
  /// event fired. Cancelled tombstones are skipped transparently.
  bool step();

  /// Number of live (non-cancelled) pending events.
  std::size_t pending() const { return live_; }

  bool idle() const { return live_ == 0; }

 private:
  struct Entry {
    Time when;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;  // ids are monotone, so earlier-scheduled wins
    }
  };

  bool pop_one(Entry& out);

  Time now_ = 0;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  // Ids of scheduled-but-not-yet-fired events; an id absent from this set is
  // either fired or cancelled. Entries for cancelled ids are discarded when
  // they surface from the heap.
  std::unordered_set<EventId> pending_ids_;
};

}  // namespace tiamat::sim
