#include "sim/event_queue.h"

#include <utility>

namespace tiamat::sim {

EventId EventQueue::schedule_at(Time when, std::function<void()> fn) {
  if (when < now_) when = now_;
  EventId id = next_id_++;
  heap_.push(Entry{when, id, std::move(fn)});
  pending_ids_.insert(id);
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (pending_ids_.erase(id) == 0) return false;  // fired, cancelled, bogus
  --live_;
  return true;
}

bool EventQueue::pop_one(Entry& out) {
  while (!heap_.empty()) {
    // priority_queue::top returns const&; we need to move the callback out.
    Entry& top = const_cast<Entry&>(heap_.top());
    Entry e{top.when, top.id, std::move(top.fn)};
    heap_.pop();
    if (pending_ids_.erase(e.id) == 0) continue;  // cancelled tombstone
    out = std::move(e);
    return true;
  }
  return false;
}

bool EventQueue::step() {
  Entry e;
  if (!pop_one(e)) return false;
  now_ = e.when;
  --live_;
  e.fn();
  return true;
}

std::size_t EventQueue::run_until_idle() {
  std::size_t fired = 0;
  while (step()) ++fired;
  return fired;
}

std::size_t EventQueue::run_until(Time deadline) {
  std::size_t fired = 0;
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    if (!pending_ids_.contains(top.id)) {  // cancelled tombstone
      heap_.pop();
      continue;
    }
    if (top.when > deadline) break;
    Entry e;
    if (!pop_one(e)) break;
    now_ = e.when;
    --live_;
    e.fn();
    ++fired;
  }
  if (now_ < deadline) now_ = deadline;
  return fired;
}

}  // namespace tiamat::sim
