// Always-on flight recorder: a bounded last-K-events ring per instance.
//
// The Tracer (obs/trace.h) is opt-in — off by default so the hot path stays
// within the <5% overhead budget. The flight recorder is the complement: it
// is ALWAYS recording, bounded to a small fixed K, and exists so that when
// something traps (an src/audit invariant violation, a test death path) the
// diagnostic comes with the recent cross-instance causal history attached —
// the last thing every instance was doing, not just the broken structure.
//
// Cost model: one TraceEvent copy into a pre-sized ring per instrumentation
// point. The ring is written only by its owning instance's strand (plain
// stores — the sim serializes everything, LoopbackTransport serializes per
// node), so record() needs no synchronization; there is nothing cheaper
// that still keeps history. Building with TIAMAT_OBS_OFF compiles record()
// down to nothing — the baseline the instrumentation-overhead gate
// (scripts/obs_overhead_gate.sh) measures against.
//
// Every live recorder registers itself in a process-wide table guarded by a
// mutex (instances on different loopback strands construct and destroy
// concurrently); the first registration installs an audit::ContextProvider
// so that audit::fail() dumps every recorder's tail alongside the invariant
// diagnostic with no further wiring. Dump order is (node id, registration
// sequence) — stable and deterministic across runs.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "transport/types.h"

namespace tiamat::obs {

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 64;

  explicit FlightRecorder(transport::NodeId node,
                          std::size_t capacity = kDefaultCapacity);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Unconditional ring store (the whole point: no enabled check).
  void record(const TraceEvent& e) {
#if defined(TIAMAT_OBS_OFF)
    (void)e;  // overhead-gate baseline: instrumentation compiled out
#else
    if (ring_.size() < capacity_) {
      ring_.push_back(e);
    } else {
      ring_[next_] = e;
    }
    // Compare-and-reset, not `% capacity_`: the modulo is a runtime integer
    // division on this hot path (capacity is not a compile-time constant).
    if (++next_ == capacity_) next_ = 0;
    ++recorded_;
#endif
  }

  /// Ring contents, oldest first.
  std::vector<TraceEvent> tail() const;

  transport::NodeId node() const { return node_; }
  std::uint64_t recorded() const { return recorded_; }
  std::size_t capacity() const { return capacity_; }

  /// Formatted tails of every live recorder, ordered by (node,
  /// registration); empty string when nothing was recorded. This is what
  /// the audit trap appends to its report.
  static std::string dump_all();

  /// Number of currently registered recorders (tests).
  static std::size_t live_count();

 private:
  transport::NodeId node_;
  std::size_t capacity_;
  std::uint64_t seq_;             ///< registration order (dump tiebreak)
  std::vector<TraceEvent> ring_;  ///< grows to capacity_, then wraps
  std::size_t next_ = 0;
  std::uint64_t recorded_ = 0;
};

}  // namespace tiamat::obs
