// Single-producer / single-consumer trace ring: the per-thread collection
// buffer behind Tracer's concurrent mode (DESIGN.md §13).
//
// Ownership protocol (the flight-recorder pattern, generalized):
//   - exactly one producer thread push()es; the thread registers with the
//     owning Tracer and gets a ring of its own, so no two producers ever
//     share one,
//   - exactly one consumer (Tracer::drain, serialized by the tracer's
//     mutex) drain()s,
//   - a full ring drops the event and counts it — recording never blocks
//     and never overwrites in place (an overwriting MPSC ring cannot be
//     made torn-read-free without widening every slot; bounded loss with an
//     exact dropped() ledger is the honest alternative, and the chaos
//     oracle checks drained == pushed once producers are quiet — drops
//     never enter the ring, so they sit outside that equation).
//
// Slots carry the tracer-wide sequence number stamped at record time; the
// drain merge sorts on (at, seq) so the merged history is deterministic
// given the interleaving that actually happened.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/trace.h"

namespace tiamat::obs {

class TraceRing {
 public:
  struct Entry {
    TraceEvent event;
    std::uint64_t seq = 0;  ///< tracer-wide record order (merge tiebreak)
  };

  explicit TraceRing(std::size_t capacity)
      : slots_(capacity == 0 ? 1 : capacity) {}

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Producer side. Returns false (and counts the drop) when full.
  bool push(const TraceEvent& e, std::uint64_t seq) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    if (h - t >= slots_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots_[h % slots_.size()] = Entry{e, seq};
    head_.store(h + 1, std::memory_order_release);
    pushed_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Consumer side: appends everything buffered to `out`, oldest first,
  /// and frees the slots. Returns the number of entries moved.
  std::size_t drain(std::vector<Entry>& out) {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    for (std::uint64_t i = t; i != h; ++i) {
      out.push_back(slots_[i % slots_.size()]);
    }
    tail_.store(h, std::memory_order_release);
    return static_cast<std::size_t>(h - t);
  }

  std::uint64_t pushed() const {
    return pushed_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return slots_.size(); }

 private:
  std::vector<Entry> slots_;
  std::atomic<std::uint64_t> head_{0};     ///< next write (producer-owned)
  std::atomic<std::uint64_t> tail_{0};     ///< next read (consumer-owned)
  std::atomic<std::uint64_t> pushed_{0};   ///< successful pushes, ever
  std::atomic<std::uint64_t> dropped_{0};  ///< full-ring rejections, ever
};

}  // namespace tiamat::obs
