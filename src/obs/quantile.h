// Log-bucketed quantile sketch (HDR-histogram style).
//
// Latency distributions in this codebase span five orders of magnitude
// (sub-millisecond local hits to multi-second churn waits). The fixed-bucket
// obs::Histogram needs its bounds chosen up front and interpolates inside
// whatever bucket the tail lands in; this sketch instead derives its buckets
// from the value itself — a power-of-two octave split into 2^kSubBits
// sub-buckets — so every value is recorded with bounded relative error
// (<= 2^-(kSubBits+1), ~1.6% at kSubBits = 5) with no configuration.
//
// Properties the telemetry layer depends on:
//   - Deterministic. Bucket indices are pure integer bit-math; quantile
//     queries and snapshots walk the occupied cells in ascending index
//     order. Two runs with the same sample sequence produce byte-identical
//     snapshots.
//   - Mergeable. Two sketches add bucket-wise (cross-instance rollups), and
//     `delta_since` subtracts an earlier snapshot of the *same* sketch to
//     recover a window — which is how the TimeSeriesRecorder and the
//     match-latency health probe compute per-interval p99 without ever
//     storing samples.
//   - Bounded. Storage is one 32-cell block per occupied octave group
//     (obs/cells.h), independent of sample count.
//   - Thread-safe to write. observe() is a handful of relaxed atomic adds
//     (obs/cells.h), so writers on loopback strands never contend with a
//     reader snapshotting the registry; every cell is monotone, so a
//     concurrent reader sees a possibly-stale but never-torn state.
//     Copying or restoring a sketch while another thread writes it is still
//     a data race — snapshots-by-value belong to the owning strand.

#pragma once

#include <cstdint>
#include <map>

#include "obs/cells.h"

namespace tiamat::obs {

class QuantileSketch {
 public:
  /// Sub-bucket resolution: 2^kSubBits linear sub-buckets per octave.
  static constexpr int kSubBits = 5;

  /// Index -> count for every occupied bucket, ascending index order.
  using Buckets = std::map<std::uint32_t, std::uint64_t>;

  /// Records one sample. Negative values clamp to 0 (latencies are
  /// non-negative; a clamped observation still counts).
  void observe(double v);

  std::uint64_t count() const { return count_.load(); }
  double sum() const { return sum_.load(); }
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  /// Largest observed sample, kept exactly. 0 on empty.
  double max() const { return max_.load(); }

  /// Quantile estimate, q in [0, 1]: the upper edge of the bucket holding
  /// the rank-ceil(q*count) sample (<= ~1.6% above the true value), except
  /// that the top-most occupied bucket reports the exact max. 0 on empty.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p90() const { return quantile(0.90); }
  double p99() const { return quantile(0.99); }

  /// Adds `o`'s samples to this sketch (cross-instance aggregation).
  void merge(const QuantileSketch& o);

  /// Sketch of the samples observed since `prev` was copied from this same
  /// sketch (bucket-wise subtraction). Returns an empty sketch when `prev`
  /// is not a prefix snapshot (its count exceeds ours). The window's max is
  /// approximated by its top occupied bucket edge.
  QuantileSketch delta_since(const QuantileSketch& prev) const;

  /// Occupied buckets as an ordered map (materialized view of the cells).
  Buckets buckets() const;

  /// Restores accumulated state from a snapshot (JSON round-trip).
  void restore(Buckets buckets, double sum, std::uint64_t count, double max);

  /// Bucket index covering value `v` (pure function of the value).
  static std::uint32_t bucket_of(double v);

  /// Inclusive upper edge of bucket `index` — the value quantile queries
  /// report for ranks landing in that bucket.
  static double upper_edge(std::uint32_t index);

 private:
  SketchCells cells_;
  AtomicF64 sum_;
  AtomicU64 count_;
  AtomicF64 max_;
};

}  // namespace tiamat::obs
