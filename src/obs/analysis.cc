#include "obs/analysis.h"

#include <algorithm>
#include <sstream>

namespace tiamat::obs {

namespace {

// Mirror of core::OpKind's to_string — obs sits below core in the layering,
// so the two-line table is duplicated here rather than inverting the
// dependency. The encoding is part of the trace schema (kOpIssued.detail).
const char* op_kind_name(std::int64_t kind) {
  switch (kind) {
    case 0:
      return "rd";
    case 1:
      return "rdp";
    case 2:
      return "in";
    case 3:
      return "inp";
    default:
      return "?";
  }
}

/// First event of `kind` in `events` (already time-ordered); nullptr if none.
const TraceEvent* first_of(const std::vector<TraceEvent>& events,
                           EventKind kind) {
  for (const TraceEvent& e : events) {
    if (e.kind == kind) return &e;
  }
  return nullptr;
}

transport::Duration clamp0(transport::Duration d) { return d < 0 ? 0 : d; }

json::Value stages_json(const StageLatency& s) {
  json::Object o;
  o.emplace_back("lease", json::Value(s.lease_us));
  o.emplace_back("queue", json::Value(s.queue_us));
  o.emplace_back("match", json::Value(s.match_us));
  o.emplace_back("network", json::Value(s.network_us));
  o.emplace_back("reinsert", json::Value(s.reinsert_us));
  o.emplace_back("total", json::Value(s.total_us));
  return json::Value(std::move(o));
}

/// Accumulates stage sums for mean reporting.
struct StageSums {
  double lease = 0, queue = 0, match = 0, network = 0, reinsert = 0,
         total = 0;
  std::size_t n = 0;

  void add(const StageLatency& s) {
    lease += static_cast<double>(s.lease_us);
    queue += static_cast<double>(s.queue_us);
    match += static_cast<double>(s.match_us);
    network += static_cast<double>(s.network_us);
    reinsert += static_cast<double>(s.reinsert_us);
    total += static_cast<double>(s.total_us);
    ++n;
  }

  json::Value mean_json() const {
    const double d = n == 0 ? 1.0 : static_cast<double>(n);
    json::Object o;
    o.emplace_back("lease", json::Value(lease / d));
    o.emplace_back("queue", json::Value(queue / d));
    o.emplace_back("match", json::Value(match / d));
    o.emplace_back("network", json::Value(network / d));
    o.emplace_back("reinsert", json::Value(reinsert / d));
    o.emplace_back("total", json::Value(total / d));
    return json::Value(std::move(o));
  }
};

}  // namespace

const char* to_string(OpOutcome o) {
  switch (o) {
    case OpOutcome::kAccepted:
      return "accepted";
    case OpOutcome::kNoMatch:
      return "no_match";
    case OpOutcome::kExpired:
      return "expired";
    case OpOutcome::kLeaseRefused:
      return "lease_refused";
    case OpOutcome::kOrphaned:
      return "orphaned";
  }
  return "?";
}

const char* OpTimeline::kind_name() const { return op_kind_name(kind); }

void TraceAnalysis::add(const TraceEvent& e) {
  by_op_[OpKey{e.origin, e.op_id}].push_back(e);
  ++total_events_;
}

void TraceAnalysis::add_all(const std::vector<TraceEvent>& events) {
  for (const TraceEvent& e : events) add(e);
}

std::size_t TraceAnalysis::add_jsonl(std::string_view text,
                                     std::size_t* rejected) {
  std::size_t added = 0;
  std::size_t bad = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? nl : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;
    auto doc = json::Value::parse(line);
    if (!doc) {
      ++bad;
      continue;
    }
    auto e = TraceEvent::from_json(*doc);
    if (!e) {
      ++bad;
      continue;
    }
    add(*e);
    ++added;
  }
  if (rejected != nullptr) *rejected = bad;
  return added;
}

std::vector<OpTimeline> TraceAnalysis::timelines() const {
  std::vector<OpTimeline> out;
  out.reserve(by_op_.size());
  for (const auto& [key, raw] : by_op_) {
    OpTimeline t;
    t.key = key;
    t.events = raw;
    // Stable: virtual-time ties resolve to arrival order, which the caller
    // controls (sinks added in node order / files in argv order).
    std::stable_sort(
        t.events.begin(), t.events.end(),
        [](const TraceEvent& a, const TraceEvent& b) { return a.at < b.at; });

    for (const TraceEvent& e : t.events) {
      if (std::find(t.nodes.begin(), t.nodes.end(), e.node) ==
          t.nodes.end()) {
        t.nodes.push_back(e.node);
      }
      switch (e.kind) {
        case EventKind::kPeerRequest:
          ++t.fanout;
          break;
        case EventKind::kReinsert:
        case EventKind::kServeReinsert:
          ++t.reinserts;
          break;
        default:
          break;
      }
    }
    std::sort(t.nodes.begin(), t.nodes.end());

    const TraceEvent* issued = first_of(t.events, EventKind::kOpIssued);
    const TraceEvent* lease = first_of(t.events, EventKind::kLeaseGranted);
    const TraceEvent* refused = first_of(t.events, EventKind::kLeaseRefused);
    const TraceEvent* accept = first_of(t.events, EventKind::kAccept);
    const TraceEvent* no_match = first_of(t.events, EventKind::kOpNoMatch);
    const TraceEvent* expired = first_of(t.events, EventKind::kOpExpired);
    if (issued != nullptr) t.kind = issued->detail;

    const TraceEvent* terminal = nullptr;
    if (accept != nullptr) {
      t.outcome = OpOutcome::kAccepted;
      t.accept_source = accept->peer;
      terminal = accept;
    } else if (no_match != nullptr) {
      t.outcome = OpOutcome::kNoMatch;
      terminal = no_match;
    } else if (expired != nullptr) {
      t.outcome = OpOutcome::kExpired;
      terminal = expired;
    } else if (refused != nullptr) {
      t.outcome = OpOutcome::kLeaseRefused;
      terminal = refused;
    } else {
      t.outcome = OpOutcome::kOrphaned;
    }

    // ---- Stage attribution (header comment documents the decomposition).
    StageLatency& s = t.stages;
    if (issued != nullptr && terminal != nullptr) {
      s.total_us = clamp0(terminal->at - issued->at);
      if (lease != nullptr) s.lease_us = clamp0(lease->at - issued->at);

      if (t.outcome == OpOutcome::kAccepted && lease != nullptr) {
        const bool local = t.accept_source == key.origin;
        if (local) {
          s.match_us = clamp0(terminal->at - lease->at);
        } else {
          // The peer_request that reached the eventual winner.
          const TraceEvent* win_req = nullptr;
          const TraceEvent* serve_start = nullptr;
          const TraceEvent* serve_match = nullptr;
          for (const TraceEvent& e : t.events) {
            if (win_req == nullptr && e.kind == EventKind::kPeerRequest &&
                e.peer == t.accept_source) {
              win_req = &e;
            }
            if (e.node == t.accept_source) {
              if (serve_start == nullptr &&
                  e.kind == EventKind::kServeStart) {
                serve_start = &e;
              }
              if (serve_match == nullptr &&
                  e.kind == EventKind::kServeMatch) {
                serve_match = &e;
              }
            }
          }
          if (win_req != nullptr) {
            s.queue_us = clamp0(win_req->at - lease->at);
          }
          if (serve_start != nullptr && serve_match != nullptr) {
            s.match_us = clamp0(serve_match->at - serve_start->at);
          }
          s.network_us =
              clamp0(s.total_us - s.lease_us - s.queue_us - s.match_us);
        }
      } else {
        // Unsatisfied (or partially observed): all post-lease time is
        // "looking for a match".
        s.queue_us = clamp0(s.total_us - s.lease_us);
      }

      // Cleanup tail: reinserts land after the terminal event.
      for (const TraceEvent& e : t.events) {
        if ((e.kind == EventKind::kReinsert ||
             e.kind == EventKind::kServeReinsert) &&
            e.at > terminal->at) {
          s.reinsert_us = std::max(s.reinsert_us, e.at - terminal->at);
        }
      }
    }
    out.push_back(std::move(t));
  }
  return out;
}

json::Value TraceAnalysis::report(std::size_t slowest_n) const {
  const std::vector<OpTimeline> tls = timelines();

  std::map<std::string, std::uint64_t> outcomes;
  // Per-kind aggregation keyed by kind name; std::map gives lexicographic,
  // deterministic section order.
  struct KindAgg {
    std::uint64_t count = 0;
    std::uint64_t accepted = 0;
    std::uint64_t reinserts = 0;
    double fanout = 0;
    transport::Duration max_total = 0;
    StageSums accepted_stages;
  };
  std::map<std::string, KindAgg> by_kind;

  for (const OpTimeline& t : tls) {
    ++outcomes[to_string(t.outcome)];
    KindAgg& k = by_kind[t.kind_name()];
    ++k.count;
    k.fanout += static_cast<double>(t.fanout);
    k.reinserts += t.reinserts;
    k.max_total = std::max(k.max_total, t.stages.total_us);
    if (t.outcome == OpOutcome::kAccepted) {
      ++k.accepted;
      k.accepted_stages.add(t.stages);
    }
  }

  auto timeline_json = [](const OpTimeline& t) {
    json::Object o;
    o.emplace_back("origin", json::Value(static_cast<std::int64_t>(t.key.origin)));
    o.emplace_back("op", json::Value(static_cast<std::int64_t>(t.key.op_id)));
    o.emplace_back("kind", json::Value(t.kind_name()));
    o.emplace_back("outcome", json::Value(to_string(t.outcome)));
    o.emplace_back("nodes", json::Value(static_cast<std::int64_t>(t.nodes.size())));
    o.emplace_back("fanout", json::Value(static_cast<std::int64_t>(t.fanout)));
    o.emplace_back("reinserts",
                   json::Value(static_cast<std::int64_t>(t.reinserts)));
    o.emplace_back("stages_us", stages_json(t.stages));
    return json::Value(std::move(o));
  };

  // Slowest accepted ops by total, ties broken by (origin, op) for
  // determinism.
  std::vector<const OpTimeline*> accepted;
  for (const OpTimeline& t : tls) {
    if (t.outcome == OpOutcome::kAccepted) accepted.push_back(&t);
  }
  std::sort(accepted.begin(), accepted.end(),
            [](const OpTimeline* a, const OpTimeline* b) {
              if (a->stages.total_us != b->stages.total_us) {
                return a->stages.total_us > b->stages.total_us;
              }
              return a->key < b->key;
            });
  if (accepted.size() > slowest_n) accepted.resize(slowest_n);

  json::Object doc;
  doc.emplace_back("events", json::Value(static_cast<std::int64_t>(total_events_)));
  doc.emplace_back("ops", json::Value(static_cast<std::int64_t>(tls.size())));
  {
    json::Object o;
    for (const auto& [name, n] : outcomes) o.emplace_back(name, json::Value(n));
    doc.emplace_back("outcomes", json::Value(std::move(o)));
  }
  {
    json::Array arr;
    for (const auto& [name, k] : by_kind) {
      json::Object o;
      o.emplace_back("kind", json::Value(name));
      o.emplace_back("count", json::Value(k.count));
      o.emplace_back("accepted", json::Value(k.accepted));
      o.emplace_back("fanout_mean",
                     json::Value(k.count == 0
                                     ? 0.0
                                     : k.fanout / static_cast<double>(k.count)));
      o.emplace_back("reinserts", json::Value(k.reinserts));
      o.emplace_back("max_total_us",
                     json::Value(static_cast<std::int64_t>(k.max_total)));
      o.emplace_back("accepted_stage_mean_us", k.accepted_stages.mean_json());
      arr.emplace_back(std::move(o));
    }
    doc.emplace_back("by_kind", json::Value(std::move(arr)));
  }
  {
    json::Array arr;
    for (const OpTimeline* t : accepted) arr.push_back(timeline_json(*t));
    doc.emplace_back("slowest", json::Value(std::move(arr)));
  }
  {
    // Orphans are the "never-confirmed" bucket the audit story cares
    // about; cap the listing, report the full count.
    json::Array arr;
    std::uint64_t orphan_count = 0;
    for (const OpTimeline& t : tls) {
      if (t.outcome != OpOutcome::kOrphaned) continue;
      ++orphan_count;
      if (arr.size() < 10) arr.push_back(timeline_json(t));
    }
    doc.emplace_back("orphan_count", json::Value(orphan_count));
    doc.emplace_back("orphans", json::Value(std::move(arr)));
  }
  return json::Value(std::move(doc));
}

std::string TraceAnalysis::report_text(std::size_t slowest_n) const {
  const json::Value r = report(slowest_n);
  std::ostringstream out;
  out << "trace analysis: " << r.find("events")->as_int() << " events, "
      << r.find("ops")->as_int() << " ops\n";

  out << "outcomes:";
  for (const auto& [name, v] : r.find("outcomes")->as_object()) {
    out << "  " << name << "=" << v.as_int();
  }
  out << "\n";

  auto stage_line = [&](const json::Value& s, bool mean) {
    const char* names[] = {"lease", "queue", "match", "network", "reinsert"};
    out << "total=" << (mean ? s.find("total")->as_double()
                             : static_cast<double>(s.find("total")->as_int()))
        << "us (";
    bool first = true;
    for (const char* n : names) {
      if (!first) out << " ";
      first = false;
      out << n << "="
          << (mean ? s.find(n)->as_double()
                   : static_cast<double>(s.find(n)->as_int()));
    }
    out << ")";
  };

  out << "per-kind stage breakdown (accepted ops, mean us):\n";
  for (const json::Value& k : r.find("by_kind")->as_array()) {
    out << "  " << k.find("kind")->as_string() << ": count="
        << k.find("count")->as_int() << " accepted="
        << k.find("accepted")->as_int() << " fanout_mean="
        << k.find("fanout_mean")->as_double() << " reinserts="
        << k.find("reinserts")->as_int() << "\n    ";
    stage_line(*k.find("accepted_stage_mean_us"), /*mean=*/true);
    out << " max_total=" << k.find("max_total_us")->as_int() << "us\n";
  }

  const auto& slowest = r.find("slowest")->as_array();
  if (!slowest.empty()) {
    out << "slowest accepted ops:\n";
    for (const json::Value& t : slowest) {
      out << "  " << t.find("kind")->as_string() << " "
          << t.find("origin")->as_int() << ":" << t.find("op")->as_int()
          << " across " << t.find("nodes")->as_int() << " node(s) ";
      stage_line(*t.find("stages_us"), /*mean=*/false);
      out << "\n";
    }
  }

  const std::int64_t orphans = r.find("orphan_count")->as_int();
  if (orphans > 0) {
    out << "ORPHANED ops (no terminal record): " << orphans << "\n";
    for (const json::Value& t : r.find("orphans")->as_array()) {
      out << "  " << t.find("kind")->as_string() << " "
          << t.find("origin")->as_int() << ":" << t.find("op")->as_int()
          << " nodes=" << t.find("nodes")->as_int() << "\n";
    }
  }
  return out.str();
}

}  // namespace tiamat::obs
