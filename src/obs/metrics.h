// Metrics registry: named counters, gauges and fixed-bucket histograms with
// optional labels (per-peer, per-op-kind, ...), snapshot-able to JSON.
//
// Design constraints, in order:
//   1. Hot-path cost. An instrument is looked up (or created) once and held
//      by reference; updating it is an integer add. Histograms use fixed
//      buckets so observation is a binary search plus two adds — no
//      unbounded sample vectors on per-op paths (transport::Summary keeps that
//      role for bench-side aggregation only).
//   2. Determinism. The registry iterates instruments in lexicographic
//      (name, labels) order, so two runs with the same seed produce
//      byte-identical snapshots — which is what makes BENCH_*.json
//      trajectories diffable PR-over-PR.
//   3. Stability. Instrument references remain valid for the registry's
//      lifetime (node-based map storage).

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/quantile.h"

namespace tiamat::obs {

/// Sorted key/value label pairs identifying one instrument of a metric.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing integer. Supports the increment idioms already
/// used throughout the codebase (++c.counters().x) and reads back as the
/// underlying integer.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_ += n; }
  Counter& operator++() {
    ++v_;
    return *this;
  }
  Counter& operator+=(std::uint64_t n) {
    v_ += n;
    return *this;
  }
  std::uint64_t value() const { return v_; }
  operator std::uint64_t() const { return v_; }  // NOLINT(runtime/explicit)

 private:
  std::uint64_t v_ = 0;
};

/// A value that can go up and down.
class Gauge {
 public:
  void set(double v) { v_ = v; }
  void add(double d) { v_ += d; }
  double value() const { return v_; }

 private:
  double v_ = 0.0;
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds of the first
/// N buckets; one implicit overflow bucket catches the rest. Percentiles are
/// estimated by linear interpolation inside the containing bucket, which is
/// exact enough for p50/p95/p99 latency tracking at a fraction of the cost
/// and memory of keeping every sample.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }

  /// Percentile estimate, p in [0,100]; 0 on empty.
  double percentile(double p) const;

  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

  /// Restores accumulated state from a snapshot (JSON round-trip).
  void restore(std::vector<std::uint64_t> counts, double sum,
               std::uint64_t count);

  /// Exponentially spaced bounds: start, start*factor, ... (n values).
  static std::vector<double> exponential_bounds(double start, double factor,
                                                std::size_t n);
  /// Default bounds for virtual-time latencies in microseconds
  /// (100us .. ~100s).
  static const std::vector<double>& latency_bounds_us();

 private:
  std::vector<double> bounds_;          ///< ascending upper bounds
  std::vector<std::uint64_t> counts_;   ///< bounds_.size() + 1 (overflow)
  double sum_ = 0.0;
  std::uint64_t count_ = 0;
};

/// Owns every instrument. Lookup-or-create by (name, labels); references
/// stay valid for the registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name, Labels labels = {});
  Gauge& gauge(const std::string& name, Labels labels = {});
  /// `bounds` is used on first creation only; later calls with the same
  /// (name, labels) return the existing histogram unchanged.
  Histogram& histogram(const std::string& name, Labels labels = {},
                       std::vector<double> bounds = {});
  /// Log-bucketed quantile sketch (obs/quantile.h): the instrument of
  /// choice for latency-shaped metrics — principled p50/p90/p99/max with
  /// no bound configuration, mergeable across instances and windows.
  QuantileSketch& sketch(const std::string& name, Labels labels = {});

  /// Serializes every instrument. Histograms carry bounds/counts/sum plus
  /// derived p50/p95/p99; sketches carry sparse buckets plus derived
  /// p50/p90/p99/max, so exported files are directly consumable.
  json::Value snapshot() const;
  std::string snapshot_json(int indent = 2) const;

  // ---- Deterministic iteration (lexicographic (name, labels) order) ------
  // The TimeSeriesRecorder samples registries through these each tick; the
  // ordered walk is what keeps series output byte-identical across runs.
  void for_each_counter(
      const std::function<void(const std::string&, const Labels&,
                               const Counter&)>& fn) const;
  void for_each_gauge(
      const std::function<void(const std::string&, const Labels&,
                               const Gauge&)>& fn) const;
  void for_each_sketch(
      const std::function<void(const std::string&, const Labels&,
                               const QuantileSketch&)>& fn) const;

  /// Rebuilds instruments from a snapshot() document. Returns false (and
  /// leaves the registry partially populated) on malformed input. Used to
  /// prove snapshots round-trip and to diff persisted BENCH_*.json files.
  bool load(const json::Value& doc);

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size() +
           sketches_.size();
  }

 private:
  using Key = std::pair<std::string, Labels>;

  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
  std::map<Key, std::unique_ptr<QuantileSketch>> sketches_;
};

}  // namespace tiamat::obs
