// Metrics registry: named counters, gauges and fixed-bucket histograms with
// optional labels (per-peer, per-op-kind, ...), snapshot-able to JSON.
//
// Design constraints, in order:
//   1. Hot-path cost. An instrument is looked up (or created) once and held
//      by reference; updating it is a relaxed atomic add (obs/cells.h) —
//      striped for counters so concurrent writers never share a cache
//      line. Histograms use fixed buckets so observation is a binary
//      search plus two adds — no unbounded sample vectors on per-op paths
//      (transport::Summary keeps that role for bench-side aggregation
//      only).
//   2. Determinism. The registry iterates instruments in lexicographic
//      (name, labels) order, so two runs with the same seed produce
//      byte-identical snapshots — which is what makes BENCH_*.json
//      trajectories diffable PR-over-PR.
//   3. Stability. Instrument references remain valid for the registry's
//      lifetime (node-based map storage).
//   4. Thread safety. Instrument updates through held references are
//      lock-free; the registry's instrument maps are guarded by a mutex
//      taken only on lookup-or-create and on iteration/snapshot, so lazy
//      minting from one loopback strand (Monitor's per-op sketches,
//      per-peer timeout counters) cannot race a TimeSeriesRecorder
//      sampling the same registry from another. Iteration callbacks run
//      with the lock released — re-entrant minting from a callback is
//      legal and writers are never stalled behind a serializing reader.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/cells.h"
#include "obs/json.h"
#include "obs/quantile.h"
#include "transport/thread_annotations.h"

namespace tiamat::obs {

/// Sorted key/value label pairs identifying one instrument of a metric.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing integer. Supports the increment idioms already
/// used throughout the codebase (++c.counters().x) and reads back as the
/// underlying integer. Writes land on a per-thread stripe; value() sums.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.add(n); }
  Counter& operator++() {
    v_.add(1);
    return *this;
  }
  Counter& operator+=(std::uint64_t n) {
    v_.add(n);
    return *this;
  }
  std::uint64_t value() const { return v_.value(); }
  operator std::uint64_t() const { return v_.value(); }  // NOLINT(runtime/explicit)

 private:
  StripedU64 v_;
};

/// A value that can go up and down.
class Gauge {
 public:
  void set(double v) { v_.store(v); }
  void add(double d) { v_.add(d); }
  double value() const { return v_.load(); }

 private:
  AtomicF64 v_;
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds of the first
/// N buckets; one implicit overflow bucket catches the rest. Percentiles are
/// estimated by linear interpolation inside the containing bucket, which is
/// exact enough for p50/p95/p99 latency tracking at a fraction of the cost
/// and memory of keeping every sample.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  std::uint64_t count() const { return count_.load(); }
  double sum() const { return sum_.load(); }
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }

  /// Percentile estimate, p in [0,100]; 0 on empty.
  double percentile(double p) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts, materialized (bounds().size() + 1 entries).
  std::vector<std::uint64_t> bucket_counts() const;

  /// Restores accumulated state from a snapshot (JSON round-trip).
  void restore(std::vector<std::uint64_t> counts, double sum,
               std::uint64_t count);

  /// Exponentially spaced bounds: start, start*factor, ... (n values).
  static std::vector<double> exponential_bounds(double start, double factor,
                                                std::size_t n);
  /// Default bounds for virtual-time latencies in microseconds
  /// (100us .. ~100s).
  static const std::vector<double>& latency_bounds_us();

 private:
  std::vector<double> bounds_;      ///< ascending upper bounds
  std::vector<AtomicU64> counts_;   ///< bounds_.size() + 1 (overflow)
  AtomicF64 sum_;
  AtomicU64 count_;
};

/// Owns every instrument. Lookup-or-create by (name, labels); references
/// stay valid for the registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name, Labels labels = {})
      TIAMAT_EXCLUDES(mu_);
  Gauge& gauge(const std::string& name, Labels labels = {})
      TIAMAT_EXCLUDES(mu_);
  /// `bounds` is used on first creation only; later calls with the same
  /// (name, labels) return the existing histogram unchanged.
  Histogram& histogram(const std::string& name, Labels labels = {},
                       std::vector<double> bounds = {}) TIAMAT_EXCLUDES(mu_);
  /// Log-bucketed quantile sketch (obs/quantile.h): the instrument of
  /// choice for latency-shaped metrics — principled p50/p90/p99/max with
  /// no bound configuration, mergeable across instances and windows.
  QuantileSketch& sketch(const std::string& name, Labels labels = {})
      TIAMAT_EXCLUDES(mu_);

  /// Serializes every instrument. Histograms carry bounds/counts/sum plus
  /// derived p50/p95/p99; sketches carry sparse buckets plus derived
  /// p50/p90/p99/max, so exported files are directly consumable.
  json::Value snapshot() const TIAMAT_EXCLUDES(mu_);
  std::string snapshot_json(int indent = 2) const TIAMAT_EXCLUDES(mu_);

  // ---- Deterministic iteration (lexicographic (name, labels) order) ------
  // The TimeSeriesRecorder samples registries through these each tick; the
  // ordered walk is what keeps series output byte-identical across runs.
  // The instrument list is captured under the lock, then fn runs with the
  // lock released (instrument nodes are stable, so the references stay
  // valid even if another thread mints concurrently).
  void for_each_counter(
      const std::function<void(const std::string&, const Labels&,
                               const Counter&)>& fn) const
      TIAMAT_EXCLUDES(mu_);
  void for_each_gauge(
      const std::function<void(const std::string&, const Labels&,
                               const Gauge&)>& fn) const TIAMAT_EXCLUDES(mu_);
  void for_each_sketch(
      const std::function<void(const std::string&, const Labels&,
                               const QuantileSketch&)>& fn) const
      TIAMAT_EXCLUDES(mu_);

  /// Rebuilds instruments from a snapshot() document. Returns false (and
  /// leaves the registry partially populated) on malformed input. Used to
  /// prove snapshots round-trip and to diff persisted BENCH_*.json files.
  bool load(const json::Value& doc);

  std::size_t size() const TIAMAT_EXCLUDES(mu_);

 private:
  using Key = std::pair<std::string, Labels>;

  mutable transport::Mutex mu_;
  std::map<Key, std::unique_ptr<Counter>> counters_ TIAMAT_GUARDED_BY(mu_);
  std::map<Key, std::unique_ptr<Gauge>> gauges_ TIAMAT_GUARDED_BY(mu_);
  std::map<Key, std::unique_ptr<Histogram>> histograms_
      TIAMAT_GUARDED_BY(mu_);
  std::map<Key, std::unique_ptr<QuantileSketch>> sketches_
      TIAMAT_GUARDED_BY(mu_);
};

}  // namespace tiamat::obs
