// Checked-in catalog of every metric name the codebase instruments.
//
// Why a catalog: instruments are created on first use by *string name*, so
// a typo'd name ("op.strated") silently creates a fresh, forever-zero
// instrument instead of failing. `scripts/lint_tiamat.py`'s `metric-name`
// rule cross-checks every `counter(...)` / `gauge(...)` / `histogram(...)` /
// `sketch(...)` call in src/ and bench/ against this list, making the name
// set a reviewed, diffable contract. Add the name here in the same PR that
// introduces the instrument.
//
// Names follow `<subsystem>.<what>` with label dimensions (peer, op,
// scenario, ...) supplied at the call site, never baked into the name.

#pragma once

#include <string_view>

namespace tiamat::obs::metric_names {

inline constexpr std::string_view kCatalog[] = {
    // engine accounting (src/tuple, mirrored by MatchMetrics under the
    // "match." / "waiters." prefixes; bench_match exports "engine.")
    "engine.bucket_probes",
    "engine.candidates",
    "engine.candidates_per_lookup",
    "engine.rejected",
    "engine.scan_fallbacks",
    "match.bucket_probes",
    "match.candidates",
    "match.rejected",
    "match.rejected_per_lookup",
    "match.scan_fallbacks",
    "waiters.bucket_probes",
    "waiters.candidates",
    "waiters.rejected",
    "waiters.rejected_per_lookup",
    "waiters.scan_fallbacks",
    // eval engine
    "eval.started",
    // chaos/fuzz harness (chaos::Runner): schedule-entry accounting, so a
    // run can assert its injected faults actually fired
    "chaos.events",
    "chaos.faults",
    "chaos.ops",
    "chaos.skipped",
    "chaos.traps",
    // lease subsystem (src/lease)
    "lease.active",
    "lease.expired",
    "lease.granted",
    "lease.refused_by_policy",
    "lease.refused_by_requester",
    "lease.released",
    "lease.revoked",
    // network cost (bench export, from sim::Network accounting)
    "net.bytes",
    // endpoint drop paths (net::Endpoint::publish_stats)
    "net.decode_failures",
    "net.deliveries",
    "net.drops",
    // per-cause drop counters from sim::Network accounting (bench export
    // and chaos::Runner): invisible = no visibility at send/arrival,
    // loss = random loss, dead = destination removed/offline/restarted
    "net.drops.dead",
    "net.drops.invisible",
    "net.drops.loss",
    "net.multicasts",
    "net.peer.bytes",
    "net.peer.messages",
    "net.unhandled",
    "net.unicasts",
    // logical-space operations (core::Monitor)
    "op.cancels_sent",
    "op.latency_us",
    "op.lease_expired",
    "op.lease_refused",
    "op.no_match",
    "op.probes",
    "op.satisfied_local",
    "op.satisfied_remote",
    "op.started",
    // local outs/evals
    "out.local",
    "out.refused",
    // health probes (core::Instance::register_telemetry)
    "probe.breaches",
    // responder cache / peer reliability (src/net)
    "peer.response_rate",
    "remote_out.abandoned",
    "remote_out.delivered",
    "remote_out.routed",
    "responders.added",
    "responders.removed",
    "responders.size",
    // rpc correlator (src/net)
    "rpc.deadline_expired",
    "rpc.open_exchanges",
    "rpc.routed",
    "rpc.stale",
    "rpc.timeouts",
    // serving side (core::Monitor)
    "serve.refused",
    "serve.reinserted",
    "serve.requests",
    // space memory accounting (LocalTupleSpace::export_memory_gauges and
    // the bench-side export_space_memory)
    "space.bytes",
    "space.tentative",
    "space.tuple_bytes",
    "space.tuples",
    "space.waiter_bytes",
    "space.waiters",
    // transport-backend accounting (bench_loopback: delivery totals from
    // the selected backend plus the wall-clock throughput headline)
    "transport.bytes",
    "transport.deliveries",
    "transport.multicasts",
    "transport.ops",
    "transport.ops_per_sec",
    // loopback scheduler telemetry (obs::SchedExporter over
    // LoopbackTransport::sched_stats(); labeled {worker} except lock_wait)
    "transport.sched.cancels",
    "transport.sched.lock_wait_us",
    "transport.sched.queue_depth",
    "transport.sched.queue_depth_max",
    "transport.sched.strand_lag_avg_us",
    "transport.sched.strand_lag_max_us",
    "transport.sched.tasks",
    "transport.sched.tombstones",
    "transport.sched.utilization",
    "transport.unicasts",
    "transport.workers",
};

/// True when `name` is a catalogued metric name (tiamat-inspect flags
/// snapshots containing uncatalogued instruments).
inline constexpr bool catalogued(std::string_view name) {
  for (std::string_view n : kCatalog) {
    if (n == name) return true;
  }
  return false;
}

}  // namespace tiamat::obs::metric_names
