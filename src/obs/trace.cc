#include "obs/trace.h"

namespace tiamat::obs {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kOpIssued:
      return "op_issued";
    case EventKind::kLeaseGranted:
      return "lease_granted";
    case EventKind::kLeaseRefused:
      return "lease_refused";
    case EventKind::kPeerRequest:
      return "peer_request";
    case EventKind::kPeerResponse:
      return "peer_response";
    case EventKind::kPeerTimeout:
      return "peer_timeout";
    case EventKind::kProbe:
      return "probe";
    case EventKind::kAccept:
      return "accept";
    case EventKind::kReinsert:
      return "reinsert";
    case EventKind::kCancel:
      return "cancel";
    case EventKind::kConfirm:
      return "confirm";
    case EventKind::kOpNoMatch:
      return "op_no_match";
    case EventKind::kOpExpired:
      return "op_expired";
    case EventKind::kServeStart:
      return "serve_start";
    case EventKind::kServeRefused:
      return "serve_refused";
    case EventKind::kServeMatch:
      return "serve_match";
    case EventKind::kServeReinsert:
      return "serve_reinsert";
    case EventKind::kServeConfirm:
      return "serve_confirm";
  }
  return "?";
}

json::Value TraceEvent::to_json() const {
  json::Object o;
  o.emplace_back("at", json::Value(at));
  o.emplace_back("node", json::Value(static_cast<std::int64_t>(node)));
  o.emplace_back("origin", json::Value(static_cast<std::int64_t>(origin)));
  o.emplace_back("op", json::Value(static_cast<std::int64_t>(op_id)));
  o.emplace_back("kind", json::Value(to_string(kind)));
  if (peer != sim::kNoNode) {
    o.emplace_back("peer", json::Value(static_cast<std::int64_t>(peer)));
  }
  if (detail != 0) o.emplace_back("detail", json::Value(detail));
  return json::Value(std::move(o));
}

void Tracer::record(sim::Time at, sim::NodeId origin, std::uint64_t op_id,
                    EventKind kind, sim::NodeId peer, std::int64_t detail) {
  if (!enabled_) return;
  TraceEvent e{at, node_, origin, op_id, kind, peer, detail};
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
  } else {
    ring_[next_] = e;
  }
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
  if (sink_) sink_->on_event(e);
}

std::vector<TraceEvent> Tracer::recent() const {
  if (ring_.size() < capacity_) return ring_;
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % capacity_]);
  }
  return out;
}

}  // namespace tiamat::obs
