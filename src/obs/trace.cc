#include "obs/trace.h"

#include <algorithm>
#include <fstream>

#include "obs/trace_ring.h"

namespace tiamat::obs {

namespace {

// Per-thread cache of (tracer -> its ring for this thread), so the ring-mode
// record() path is a vector scan (a handful of live tracers) instead of a
// lock. Entries are invalidated wholesale whenever any Tracer is destroyed:
// the generation bump makes a recycled Tracer address impossible to confuse
// with the tracer that cached the entry.
struct RingCacheEntry {
  const void* tracer;
  TraceRing* ring;
};

AtomicU64 g_tracer_generation{1};
thread_local std::uint64_t t_cache_generation = 0;
thread_local std::vector<RingCacheEntry> t_ring_cache;

}  // namespace

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kOpIssued:
      return "op_issued";
    case EventKind::kLeaseGranted:
      return "lease_granted";
    case EventKind::kLeaseRefused:
      return "lease_refused";
    case EventKind::kPeerRequest:
      return "peer_request";
    case EventKind::kPeerResponse:
      return "peer_response";
    case EventKind::kPeerTimeout:
      return "peer_timeout";
    case EventKind::kProbe:
      return "probe";
    case EventKind::kAccept:
      return "accept";
    case EventKind::kReinsert:
      return "reinsert";
    case EventKind::kCancel:
      return "cancel";
    case EventKind::kConfirm:
      return "confirm";
    case EventKind::kOpNoMatch:
      return "op_no_match";
    case EventKind::kOpExpired:
      return "op_expired";
    case EventKind::kServeStart:
      return "serve_start";
    case EventKind::kServeRefused:
      return "serve_refused";
    case EventKind::kServeMatch:
      return "serve_match";
    case EventKind::kServeReinsert:
      return "serve_reinsert";
    case EventKind::kServeConfirm:
      return "serve_confirm";
    case EventKind::kProbeBreach:
      return "probe_breach";
    case EventKind::kDecodeFailure:
      return "decode_failure";
    case EventKind::kFaultInjected:
      return "fault_injected";
  }
  return "?";
}

std::optional<EventKind> event_kind_from_string(std::string_view name) {
  // Walk the enum once; the table stays in one place (to_string's switch).
  for (int k = 0; k <= static_cast<int>(EventKind::kFaultInjected); ++k) {
    const auto kind = static_cast<EventKind>(k);
    if (name == to_string(kind)) return kind;
  }
  return std::nullopt;
}

json::Value TraceEvent::to_json() const {
  json::Object o;
  o.emplace_back("at", json::Value(at));
  o.emplace_back("node", json::Value(static_cast<std::int64_t>(node)));
  o.emplace_back("origin", json::Value(static_cast<std::int64_t>(origin)));
  o.emplace_back("op", json::Value(static_cast<std::int64_t>(op_id)));
  o.emplace_back("kind", json::Value(to_string(kind)));
  if (peer != transport::kNoNode) {
    o.emplace_back("peer", json::Value(static_cast<std::int64_t>(peer)));
  }
  if (detail != 0) o.emplace_back("detail", json::Value(detail));
  return json::Value(std::move(o));
}

std::optional<TraceEvent> TraceEvent::from_json(const json::Value& v) {
  const json::Value* at = v.find("at");
  const json::Value* node = v.find("node");
  const json::Value* origin = v.find("origin");
  const json::Value* op = v.find("op");
  const json::Value* kind = v.find("kind");
  if (at == nullptr || !at->is_int() || node == nullptr || !node->is_int() ||
      origin == nullptr || !origin->is_int() || op == nullptr ||
      !op->is_int() || kind == nullptr || !kind->is_string()) {
    return std::nullopt;
  }
  auto k = event_kind_from_string(kind->as_string());
  if (!k) return std::nullopt;
  TraceEvent e;
  e.at = at->as_int();
  e.node = static_cast<transport::NodeId>(node->as_int());
  e.origin = static_cast<transport::NodeId>(origin->as_int());
  e.op_id = static_cast<std::uint64_t>(op->as_int());
  e.kind = *k;
  if (const json::Value* peer = v.find("peer"); peer != nullptr && peer->is_int()) {
    e.peer = static_cast<transport::NodeId>(peer->as_int());
  }
  if (const json::Value* d = v.find("detail"); d != nullptr && d->is_int()) {
    e.detail = d->as_int();
  }
  return e;
}

// ---- JsonlSink --------------------------------------------------------------

struct JsonlSink::Out {
  explicit Out(const std::string& path)
      : f(path, std::ios::out | std::ios::trunc) {}
  std::ofstream f;
};

JsonlSink::JsonlSink(const std::string& path)
    : out_(std::make_unique<Out>(path)) {}

JsonlSink::~JsonlSink() = default;

void JsonlSink::on_event(const TraceEvent& e) {
  out_->f << e.to_json().dump() << '\n';
}

bool JsonlSink::ok() const { return out_->f.good(); }

// ---- Tracer -----------------------------------------------------------------

Tracer::Tracer(transport::NodeId node, std::size_t capacity)
    : node_(node), capacity_(capacity == 0 ? 1 : capacity) {}

Tracer::~Tracer() {
  // Flush every thread's ring cache: any entry pointing at this tracer's
  // rings dies with it, and a future Tracer at the same address must not
  // inherit them.
  g_tracer_generation.add(1);
}

void Tracer::record(transport::Time at, transport::NodeId origin, std::uint64_t op_id,
                    EventKind kind, transport::NodeId peer, std::int64_t detail) {
  if (!enabled_) return;
  record(TraceEvent{at, node_, origin, op_id, kind, peer, detail});
}

void Tracer::record(const TraceEvent& e) {
  if (!enabled_) return;
  if (thread_rings_) {
    thread_ring()->push(e, seq_.fetch_add(1));
    return;
  }
  commit(e);
}

void Tracer::commit(const TraceEvent& e) {
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
  } else {
    ring_[next_] = e;
  }
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
  if (sink_) sink_->on_event(e);
}

TraceRing* Tracer::thread_ring() {
  const std::uint64_t gen = g_tracer_generation.load();
  if (t_cache_generation != gen) {
    t_ring_cache.clear();
    t_cache_generation = gen;
  }
  for (const RingCacheEntry& entry : t_ring_cache) {
    if (entry.tracer == this) return entry.ring;
  }
  TraceRing* ring = nullptr;
  {
    transport::MutexLock lock(mu_);
    rings_.push_back(std::make_unique<TraceRing>(capacity_));
    ring = rings_.back().get();
  }
  t_ring_cache.push_back(RingCacheEntry{this, ring});
  return ring;
}

void Tracer::register_current_thread() { thread_ring(); }

std::size_t Tracer::drain() {
  std::vector<TraceRing::Entry> entries;
  {
    transport::MutexLock lock(mu_);
    for (const auto& ring : rings_) ring->drain(entries);
  }
  std::sort(entries.begin(), entries.end(),
            [](const TraceRing::Entry& a, const TraceRing::Entry& b) {
              return a.event.at != b.event.at ? a.event.at < b.event.at
                                              : a.seq < b.seq;
            });
  for (const TraceRing::Entry& entry : entries) commit(entry.event);
  ring_drained_.add(entries.size());
  return entries.size();
}

std::uint64_t Tracer::ring_pushed() const {
  transport::MutexLock lock(mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->pushed();
  return total;
}

std::uint64_t Tracer::ring_dropped() const {
  transport::MutexLock lock(mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->dropped();
  return total;
}

std::vector<TraceEvent> Tracer::recent() const {
  if (ring_.size() < capacity_) return ring_;
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % capacity_]);
  }
  return out;
}

}  // namespace tiamat::obs
