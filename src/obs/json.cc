#include "obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace tiamat::obs::json {

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : as_object()) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Value::set(std::string key, Value v) {
  as_object().emplace_back(std::move(key), std::move(v));
}

// ---- dump -------------------------------------------------------------------

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_double(double d, std::string& out) {
  if (!std::isfinite(d)) {  // JSON has no inf/nan; null is the least-bad
    out += "null";
    return;
  }
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  out.append(buf, ptr);
  // Keep doubles distinguishable from ints after a round trip.
  if (out.find_first_of(".eE", out.size() - (ptr - buf)) == std::string::npos) {
    out += ".0";
  }
}

void dump_value(const Value& v, std::string& out, int indent, int depth) {
  const bool pretty = indent >= 0;
  auto newline = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };

  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_int()) {
    char buf[24];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v.as_int());
    out.append(buf, ptr);
  } else if (v.is_double()) {
    dump_double(v.as_double(), out);
  } else if (v.is_string()) {
    dump_string(v.as_string(), out);
  } else if (v.is_array()) {
    const auto& a = v.as_array();
    if (a.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (i) out += ',';
      newline(depth + 1);
      dump_value(a[i], out, indent, depth + 1);
    }
    newline(depth);
    out += ']';
  } else {
    const auto& o = v.as_object();
    if (o.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    for (std::size_t i = 0; i < o.size(); ++i) {
      if (i) out += ',';
      newline(depth + 1);
      dump_string(o[i].first, out);
      out += pretty ? ": " : ":";
      dump_value(o[i].second, out, indent, depth + 1);
    }
    newline(depth);
    out += '}';
  }
}

}  // namespace

std::string Value::dump(int indent) const {
  std::string out;
  dump_value(*this, out, indent, 0);
  return out;
}

// ---- parse ------------------------------------------------------------------

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) == word) {
      pos += word.size();
      return true;
    }
    return false;
  }

  std::optional<std::string> parse_string() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos >= text.size()) return std::nullopt;
        char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return std::nullopt;
            }
            // Only the escapes we emit (< 0x20) need exactness; encode the
            // rest as UTF-8 best-effort.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Value> parse_number() {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    std::string_view tok = text.substr(start, pos - start);
    if (tok.empty()) return std::nullopt;
    const bool is_float =
        tok.find_first_of(".eE") != std::string_view::npos;
    if (!is_float) {
      std::int64_t n = 0;
      auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), n);
      if (ec == std::errc() && ptr == tok.data() + tok.size()) return Value(n);
    }
    double d = 0;
    auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (ec != std::errc() || ptr != tok.data() + tok.size()) {
      return std::nullopt;
    }
    return Value(d);
  }

  std::optional<Value> parse_value(int depth) {
    if (depth > 128) return std::nullopt;
    skip_ws();
    if (pos >= text.size()) return std::nullopt;
    char c = text[pos];
    if (c == 'n') return literal("null") ? std::optional<Value>(Value())
                                         : std::nullopt;
    if (c == 't') return literal("true") ? std::optional<Value>(Value(true))
                                         : std::nullopt;
    if (c == 'f') return literal("false") ? std::optional<Value>(Value(false))
                                          : std::nullopt;
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      return Value(std::move(*s));
    }
    if (c == '[') {
      ++pos;
      Array a;
      skip_ws();
      if (eat(']')) return Value(std::move(a));
      while (true) {
        auto v = parse_value(depth + 1);
        if (!v) return std::nullopt;
        a.push_back(std::move(*v));
        if (eat(']')) return Value(std::move(a));
        if (!eat(',')) return std::nullopt;
      }
    }
    if (c == '{') {
      ++pos;
      Object o;
      skip_ws();
      if (eat('}')) return Value(std::move(o));
      while (true) {
        skip_ws();
        auto k = parse_string();
        if (!k) return std::nullopt;
        if (!eat(':')) return std::nullopt;
        auto v = parse_value(depth + 1);
        if (!v) return std::nullopt;
        o.emplace_back(std::move(*k), std::move(*v));
        if (eat('}')) return Value(std::move(o));
        if (!eat(',')) return std::nullopt;
      }
    }
    return parse_number();
  }
};

}  // namespace

std::optional<Value> Value::parse(std::string_view text) {
  Parser p{text};
  auto v = p.parse_value(0);
  if (!v) return std::nullopt;
  p.skip_ws();
  if (p.pos != text.size()) return std::nullopt;  // trailing garbage
  return v;
}

}  // namespace tiamat::obs::json
