// Span-style operation tracing.
//
// Every record links one step of an operation's lifecycle to the (origin
// node, op id) pair that identifies the operation globally, so traces
// captured at different instances can be joined into one causal chain:
//
//   op issued -> lease granted -> per-peer request fan-out -> per-peer
//   response -> exactly one accept (+ a reinsert at every other peer that
//   tentatively removed a match) -> confirm / expiry.
//
// The Tracer is a per-instance fixed-capacity ring buffer with a pluggable
// sink. Tracing is off by default; a disabled tracer costs one predictable
// branch per instrumentation point (the acceptance bar for the null path is
// <5% overhead on the hot benches).

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/cells.h"
#include "obs/json.h"
#include "transport/thread_annotations.h"
#include "transport/types.h"

namespace tiamat::obs {

enum class EventKind : std::uint8_t {
  // Originator side of a logical-space operation.
  kOpIssued = 0,     ///< rd/rdp/in/inp entered; detail = OpKind
  kLeaseGranted,     ///< negotiation succeeded; detail = lease id
  kLeaseRefused,     ///< negotiation failed; operation dead on arrival
  kPeerRequest,      ///< OpRequest sent to `peer`
  kPeerResponse,     ///< OpResponse from `peer`; detail = found<<1 | serving
  kPeerTimeout,      ///< `peer` never answered within the response timeout
  kProbe,            ///< multicast probe fired to widen the fan-out
  kAccept,           ///< the winning tuple; peer = source (self if local)
  kReinsert,         ///< Release sent: `peer` must put its match back
  kCancel,           ///< CancelOp sent to `peer` on completion/expiry
  kConfirm,          ///< Confirm sent to the winning `peer`
  kOpNoMatch,        ///< non-blocking op concluded with nothing
  kOpExpired,        ///< lease ended before a match (blocking op)
  // Serving side (events recorded at the remote instance; origin/op_id
  // still identify the originator's operation).
  kServeStart,       ///< request admitted under a local lease
  kServeRefused,     ///< local lease policy declined to help
  kServeMatch,       ///< match sent back; destructive ops hold it tentative
  kServeReinsert,    ///< tentative tuple placed back into the local space
  kServeConfirm,     ///< tentative removal made permanent
  // Continuous telemetry (obs/series.h).
  kProbeBreach,      ///< health probe crossed its threshold; detail = value
  // Endpoint drop paths (net::Endpoint).
  kDecodeFailure,    ///< arriving payload failed to decode; peer = sender
  // Chaos harness (src/chaos): one record per executed fault-schedule
  // entry, so flight-recorder tails show the injected hostility inline
  // with the protocol's causal history. detail = chaos::EventKind.
  kFaultInjected,
};

const char* to_string(EventKind k);

/// Inverse of to_string; nullopt for unknown names (forward compatibility:
/// analysis tools skip records they do not understand).
std::optional<EventKind> event_kind_from_string(std::string_view name);

struct TraceEvent {
  transport::Time at = 0;             ///< virtual time of the step
  transport::NodeId node = transport::kNoNode;    ///< instance that recorded the event
  transport::NodeId origin = transport::kNoNode;  ///< operation's originating instance
  std::uint64_t op_id = 0;      ///< originator-scoped operation id
  EventKind kind{};
  transport::NodeId peer = transport::kNoNode;    ///< counterparty, when applicable
  std::int64_t detail = 0;      ///< kind-specific extra (see EventKind)

  json::Value to_json() const;

  /// Inverse of to_json (JSONL trace dumps). Rejects records missing a
  /// required field or naming an unknown event kind.
  static std::optional<TraceEvent> from_json(const json::Value& v);
};

/// Receives every recorded event. Implementations must not re-enter the
/// tracer.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& e) = 0;
};

/// Test sink: keeps everything.
class MemorySink : public TraceSink {
 public:
  void on_event(const TraceEvent& e) override { events_.push_back(e); }
  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

/// Streams one compact JSON object per event (JSONL), suitable for `jq` and
/// for `tiamat-inspect`. The file handle lives behind a pimpl so that the
/// many includers of this header do not all pay for <fstream>.
class JsonlSink : public TraceSink {
 public:
  explicit JsonlSink(const std::string& path);
  ~JsonlSink() override;
  void on_event(const TraceEvent& e) override;
  bool ok() const;

 private:
  struct Out;
  std::unique_ptr<Out> out_;
};

class TraceRing;

/// Per-instance recorder: bounded ring of recent events plus an optional
/// sink fed with every event. Disabled (the default) it records nothing.
///
/// Two collection modes (DESIGN.md §13):
///   - Direct (the default, and the only mode the sim backend ever uses):
///     record() appends to the ring and the sink inline on the calling
///     strand. Single-threaded behavior is exactly the pre-ring Tracer's,
///     byte for byte.
///   - Thread rings (set_thread_rings(true), for multi-threaded transport
///     backends): each recording thread registers lazily and gets a
///     private fixed-capacity SPSC ring (obs/trace_ring.h); record() is a
///     lock-free push stamped with a tracer-wide sequence number, and the
///     shared ring/sink are only touched by drain(), which merges every
///     thread ring in (at, seq) order. The sink therefore sees events from
///     exactly one thread at a time — that is the fix for the shared-sink
///     race under LoopbackTransport.
///
/// Mode and enablement are configuration: flip them before concurrent
/// recording starts (thread creation / strand hand-off publishes them).
/// Destroying a tracer while another thread is still recording into it is
/// a use-after-free in either mode, same as any other member.
class Tracer {
 public:
  explicit Tracer(transport::NodeId node, std::size_t capacity = 512);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Installing a sink implies enabling; a null sink keeps the ring only.
  void set_sink(std::shared_ptr<TraceSink> sink) {
    sink_ = std::move(sink);
    if (sink_) enabled_ = true;
  }

  /// Switches per-thread SPSC collection on or off. Call on the owning
  /// strand with no concurrent recorders; buffered events survive (they
  /// drain on the next drain() call).
  void set_thread_rings(bool on) { thread_rings_ = on; }
  bool thread_rings() const { return thread_rings_; }

  /// Registers the calling thread (idempotent): allocates its private ring
  /// on first use. record() does this lazily; explicit registration just
  /// front-loads the one-time lock acquisition.
  void register_current_thread() TIAMAT_EXCLUDES(mu_);

  /// Merges every thread ring into the legacy ring + sink in (at, seq)
  /// order and returns the number of events moved. Safe to call while
  /// producers are still recording (each ring is SPSC; the caller is the
  /// one consumer) — concurrent pushes simply wait for the next drain.
  std::size_t drain() TIAMAT_EXCLUDES(mu_);

  void record(transport::Time at, transport::NodeId origin, std::uint64_t op_id,
              EventKind kind, transport::NodeId peer = transport::kNoNode,
              std::int64_t detail = 0);

  /// Records a pre-built event as-is (the caller stamps every field,
  /// including `node`); shared path with the always-on FlightRecorder.
  void record(const TraceEvent& e);

  /// Ring contents, oldest first.
  std::vector<TraceEvent> recent() const;

  std::uint64_t recorded() const { return recorded_; }
  std::size_t capacity() const { return capacity_; }

  /// Thread-ring accounting. Drops are rejected at push time and counted
  /// separately, so the conservation law the chaos oracle checks is
  /// `drained == pushed` once producers are quiet and a final drain ran:
  /// every accepted event reaches the sink exactly once, and every loss is
  /// on the dropped ledger.
  std::uint64_t ring_pushed() const TIAMAT_EXCLUDES(mu_);
  std::uint64_t ring_dropped() const TIAMAT_EXCLUDES(mu_);
  std::uint64_t ring_drained() const { return ring_drained_.load(); }

 private:
  void commit(const TraceEvent& e);  ///< legacy ring + sink append
  TraceRing* thread_ring() TIAMAT_EXCLUDES(mu_);

  transport::NodeId node_;
  std::size_t capacity_;
  bool enabled_ = false;
  bool thread_rings_ = false;     ///< collection mode (config-time)
  std::shared_ptr<TraceSink> sink_;
  std::vector<TraceEvent> ring_;  ///< grows to capacity_, then wraps
  std::size_t next_ = 0;          ///< ring insertion cursor
  std::uint64_t recorded_ = 0;    ///< total events ever recorded
  AtomicU64 seq_;                 ///< record-order stamp (merge tiebreak)
  AtomicU64 ring_drained_;        ///< events moved out of thread rings
  mutable transport::Mutex mu_;
  std::vector<std::unique_ptr<TraceRing>> rings_ TIAMAT_GUARDED_BY(mu_);
};

}  // namespace tiamat::obs
