// Chrome trace-event export: turns joined OpTimelines into a JSON document
// loadable in Perfetto / chrome://tracing.
//
// Mapping:
//   - one process (pid 1, "tiamat sim"), one track (tid) per instance,
//     named via metadata events;
//   - per (op, node): a complete event ("ph":"X") spanning that instance's
//     slice of the operation, named "<kind> <origin>:<op>";
//   - every TraceEvent: an instant event ("ph":"i") on its node's track;
//   - cross-node causality: flow events ("ph":"s" start / "ph":"f" finish,
//     bp:"e") for the four protocol edges —
//       peer_request @origin  -> serve_start    @peer   (fan-out)
//       serve_match  @peer    -> accept         @origin (winning reply)
//       confirm      @origin  -> serve_confirm  @winner
//       cancel/reinsert @origin -> serve_reinsert @peer (loser cleanup)
//
// Timestamps are virtual-time microseconds, which is exactly the unit the
// trace-event format wants; exported documents are deterministic (ordered
// timelines in, ordered events out, sequential flow ids).

#pragma once

#include <vector>

#include "obs/analysis.h"
#include "obs/json.h"

namespace tiamat::obs {

/// Builds the {"traceEvents": [...]} document from joined timelines.
json::Value to_chrome_trace(const std::vector<OpTimeline>& timelines);

}  // namespace tiamat::obs
