// Causal trace analysis: joins TraceEvents captured at many instances into
// per-operation timelines and aggregate reports.
//
// The protocol's whole point (§2.2–§2.5) is that one logical operation is a
// *distributed* story — fan-out to the responder list, tentative removes at
// several instances, exactly one accept, reinserts everywhere else, a lease
// governing the lot. A per-instance span ring shows only one instance's
// slice of that story; this layer joins the slices on the global
// (origin node, op id) key and attributes each operation's latency to
// protocol stages:
//
//   lease    op_issued -> lease_granted (negotiation)
//   queue    lease_granted -> the peer_request that eventually won
//            (local try + walking earlier responders)
//   match    serve_start -> serve_match at the winning instance
//            (includes remote blocking time for `in`/`rd`)
//   network  the remainder of issued -> accept (wire time both ways)
//   reinsert accept -> last (serve_)reinsert — cleanup tail, *after* the
//            operation completed, so it is reported next to `total`, not
//            inside it
//
// For locally satisfied ops `match` is lease_granted -> accept and the
// network stages are zero. For unsatisfied ops everything after `lease`
// is `queue` (time spent looking).
//
// Everything here is deterministic: inputs are added in caller order, ties
// in virtual time are broken by that order, and reports serialize through
// the ordered obs JSON — same seed, byte-identical report.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"
#include "obs/trace.h"
#include "transport/types.h"

namespace tiamat::obs {

/// Global identity of one logical-space operation.
struct OpKey {
  transport::NodeId origin = transport::kNoNode;
  std::uint64_t op_id = 0;

  bool operator<(const OpKey& o) const {
    return origin != o.origin ? origin < o.origin : op_id < o.op_id;
  }
  bool operator==(const OpKey& o) const {
    return origin == o.origin && op_id == o.op_id;
  }
};

/// How the operation's story ended, as far as the joined trace can tell.
enum class OpOutcome : std::uint8_t {
  kAccepted = 0,      ///< exactly one accept record
  kNoMatch,           ///< non-blocking op concluded empty
  kExpired,           ///< lease ended before a match
  kLeaseRefused,      ///< dead on arrival (Figure 2)
  kOrphaned,          ///< no terminal record — lost, or trace truncated
};

const char* to_string(OpOutcome o);

/// Per-stage latency attribution, virtual-time microseconds.
struct StageLatency {
  transport::Duration lease_us = 0;
  transport::Duration queue_us = 0;
  transport::Duration match_us = 0;
  transport::Duration network_us = 0;
  transport::Duration reinsert_us = 0;  ///< cleanup tail beyond `total_us`
  transport::Duration total_us = 0;     ///< issued -> terminal
};

/// One operation's joined, time-ordered causal story.
struct OpTimeline {
  OpKey key;
  std::int64_t kind = -1;  ///< core::OpKind as recorded (0 rd, 1 rdp, 2 in,
                           ///< 3 inp); -1 when op_issued was not captured
  OpOutcome outcome = OpOutcome::kOrphaned;
  transport::NodeId accept_source = transport::kNoNode;
  std::size_t fanout = 0;     ///< peer_request records
  std::size_t reinserts = 0;  ///< reinsert + serve_reinsert records
  std::vector<transport::NodeId> nodes;  ///< instances that recorded events, sorted
  StageLatency stages;
  std::vector<TraceEvent> events;  ///< merged, time-ordered

  /// Operation kind as text ("rd", "in", ... or "?").
  const char* kind_name() const;
};

/// Accumulates trace records (from live sinks or JSONL dumps), joins them
/// by (origin, op_id) and derives timelines + aggregate reports.
class TraceAnalysis {
 public:
  void add(const TraceEvent& e);
  void add_all(const std::vector<TraceEvent>& events);

  /// Parses a JSONL trace dump (one event object per line; blank lines
  /// allowed). Returns the number of events added; malformed or unknown
  /// lines are counted in `rejected` when non-null.
  std::size_t add_jsonl(std::string_view text, std::size_t* rejected = nullptr);

  std::size_t event_count() const { return total_events_; }

  /// Joined per-op timelines, ordered by (origin, op_id).
  std::vector<OpTimeline> timelines() const;

  /// Aggregate machine-readable report: outcome counts, per-op-kind stage
  /// breakdown, the slowest-N accepted timelines, orphaned ops.
  json::Value report(std::size_t slowest_n = 5) const;

  /// The same report rendered for humans (tiamat-inspect).
  std::string report_text(std::size_t slowest_n = 5) const;

 private:
  // Events per op in arrival order; arrival order breaks virtual-time ties
  // so a deterministic input order yields a deterministic join.
  std::map<OpKey, std::vector<TraceEvent>> by_op_;
  std::size_t total_events_ = 0;
};

}  // namespace tiamat::obs
