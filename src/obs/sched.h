// Transport scheduler telemetry -> metrics bridge.
//
// LoopbackTransport keeps its scheduler health in cheap relaxed-atomic
// cells (queue depth, strand lag, callback busy time, lock contention,
// timer-cancel tombstones); this exporter folds a sched_stats() snapshot
// into an obs::Registry under the transport.sched.* catalog names, so the
// numbers flow through the same machinery as every other metric — registry
// snapshots, TimeSeriesRecorder sampling, `tiamat-inspect sched`.
//
// The layering matters: src/transport/ must not know about src/obs/ (the
// linter's layer rule), so the transport only exposes a plain-struct
// snapshot and this file — on the obs side, where obs -> transport includes
// are legal — does the minting. Window-shaped series (average strand lag,
// utilization) are computed from the delta between consecutive update()
// calls, which is exactly one recorder tick when update() is installed as
// the source's refresh hook.

#pragma once

#include "obs/metrics.h"
#include "transport/loopback_transport.h"

namespace tiamat::obs {

/// Exports one LoopbackTransport's scheduler telemetry into `registry`.
/// Both must outlive the exporter. Not thread-safe: call update() from one
/// thread at a time (the recorder tick, or the bench main loop).
class SchedExporter {
 public:
  SchedExporter(Registry& registry, const transport::LoopbackTransport& t)
      : registry_(registry), transport_(t) {}

  SchedExporter(const SchedExporter&) = delete;
  SchedExporter& operator=(const SchedExporter&) = delete;

  /// Takes a sched_stats() snapshot and folds it into the registry:
  /// counters advance by the delta since the previous update(), gauges are
  /// set to the snapshot (or window-derived) value.
  void update();

 private:
  Registry& registry_;
  const transport::LoopbackTransport& transport_;
  transport::LoopbackTransport::SchedStats prev_;
};

}  // namespace tiamat::obs
