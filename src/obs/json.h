// Minimal JSON value used by the observability layer for machine-readable
// export (metrics snapshots, JSONL trace sinks) and for round-tripping
// snapshots in tests. Deliberately small: objects preserve insertion order
// so dumps are deterministic and diffable PR-over-PR; numbers are kept as
// int64 where possible so counter values survive a round trip exactly.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace tiamat::obs::json {

class Value;

using Array = std::vector<Value>;
using Object = std::vector<std::pair<std::string, Value>>;

class Value {
 public:
  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}  // NOLINT(runtime/explicit)
  Value(bool b) : v_(b) {}                // NOLINT(runtime/explicit)
  Value(std::int64_t n) : v_(n) {}        // NOLINT(runtime/explicit)
  Value(std::uint64_t n) : v_(static_cast<std::int64_t>(n)) {}  // NOLINT
  Value(int n) : v_(static_cast<std::int64_t>(n)) {}            // NOLINT
  Value(double d) : v_(d) {}              // NOLINT(runtime/explicit)
  Value(std::string s) : v_(std::move(s)) {}        // NOLINT(runtime/explicit)
  Value(const char* s) : v_(std::string(s)) {}      // NOLINT(runtime/explicit)
  Value(Array a) : v_(std::move(a)) {}    // NOLINT(runtime/explicit)
  Value(Object o) : v_(std::move(o)) {}   // NOLINT(runtime/explicit)

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  bool as_bool() const { return std::get<bool>(v_); }
  std::int64_t as_int() const {
    if (is_double()) return static_cast<std::int64_t>(std::get<double>(v_));
    return std::get<std::int64_t>(v_);
  }
  double as_double() const {
    if (is_int()) return static_cast<double>(std::get<std::int64_t>(v_));
    return std::get<double>(v_);
  }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const Array& as_array() const { return std::get<Array>(v_); }
  Array& as_array() { return std::get<Array>(v_); }
  const Object& as_object() const { return std::get<Object>(v_); }
  Object& as_object() { return std::get<Object>(v_); }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;

  /// Appends (object) — no de-duplication; callers keep keys unique.
  void set(std::string key, Value v);

  /// Serialization. indent < 0 produces a compact single line; >= 0 pretty
  /// prints with that many spaces per level.
  std::string dump(int indent = -1) const;

  /// Parses a single JSON document (surrounding whitespace allowed).
  /// Returns nullopt on any syntax error or trailing garbage.
  static std::optional<Value> parse(std::string_view text);

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      v_;
};

}  // namespace tiamat::obs::json
