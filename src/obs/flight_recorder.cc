#include "obs/flight_recorder.h"

#include <map>
#include <sstream>
#include <utility>

#include "audit/audit.h"
#include "transport/thread_annotations.h"

namespace tiamat::obs {

namespace {

// Live recorders keyed (node, registration seq): node ids restart per
// simulated world, so the monotonic sequence disambiguates instances from
// different worlds while keeping dump order deterministic.
using RecorderKey = std::pair<transport::NodeId, std::uint64_t>;

// Guards the process-wide recorder table and its sequence counter.
// Instances on different loopback strands construct and destroy recorders
// concurrently; the per-instance ring itself stays lock-free (record() is
// strand-serialized by the owning instance).
transport::Mutex& registry_mu() {
  static transport::Mutex mu;
  return mu;
}

std::map<RecorderKey, const FlightRecorder*>& registry() {
  static std::map<RecorderKey, const FlightRecorder*> recorders;
  return recorders;
}

std::uint64_t next_seq() {
  static std::uint64_t seq = 0;
  return ++seq;
}

void install_audit_context_once() {
  static bool installed = false;
  if (installed) return;
  installed = true;
  audit::set_context_provider([] { return FlightRecorder::dump_all(); });
}

}  // namespace

FlightRecorder::FlightRecorder(transport::NodeId node, std::size_t capacity)
    : node_(node), capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
  transport::MutexLock lock(registry_mu());
  seq_ = next_seq();
  install_audit_context_once();
  registry().emplace(RecorderKey{node_, seq_}, this);
}

FlightRecorder::~FlightRecorder() {
  transport::MutexLock lock(registry_mu());
  registry().erase(RecorderKey{node_, seq_});
}

std::vector<TraceEvent> FlightRecorder::tail() const {
  if (ring_.size() < capacity_) return ring_;
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % capacity_]);
  }
  return out;
}

std::string FlightRecorder::dump_all() {
  std::ostringstream out;
  bool any = false;
  transport::MutexLock lock(registry_mu());
  for (const auto& [key, rec] : registry()) {
    const auto tail = rec->tail();
    if (tail.empty()) continue;
    if (!any) out << "  flight recorder (last events per instance):\n";
    any = true;
    out << "    node " << key.first << " (" << rec->recorded()
        << " recorded, showing " << tail.size() << "):\n";
    for (const TraceEvent& e : tail) {
      out << "      at=" << e.at << " " << to_string(e.kind) << " op="
          << e.origin << ":" << e.op_id;
      if (e.peer != transport::kNoNode) out << " peer=" << e.peer;
      if (e.detail != 0) out << " detail=" << e.detail;
      out << "\n";
    }
  }
  return out.str();
}

std::size_t FlightRecorder::live_count() {
  transport::MutexLock lock(registry_mu());
  return registry().size();
}

}  // namespace tiamat::obs
