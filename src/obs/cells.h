// Relaxed-atomic metric cells: the storage layer that makes the obs plane
// safe under the multi-threaded transport backends (DESIGN.md §13).
//
// The instruments in obs/metrics.h and obs/quantile.h keep their exact
// single-threaded API and byte-identical JSON output on the sim path; only
// the cells underneath change. Three shapes cover every instrument:
//
//   AtomicU64 / AtomicF64   one relaxed cell. Copyable (a relaxed load) so
//                           instruments that are snapshot-by-value —
//                           QuantileSketch windows, Histogram::restore —
//                           keep working.
//   StripedU64              a Counter's cell: kStripes cache-line-padded
//                           adders selected by a per-thread hash, so
//                           concurrent writers never share a line. value()
//                           sums the stripes; with one thread exactly one
//                           stripe is ever touched and the total is the
//                           plain sum it always was.
//   SketchCells             a QuantileSketch's bucket table: 64 lazily
//                           CAS-installed octave groups of 32 cells each,
//                           replacing the std::map. Writers fetch_add one
//                           cell; readers walk occupied cells in ascending
//                           index order, which is what keeps snapshots
//                           deterministic.
//
// Memory order is relaxed throughout: each cell is an independent monotone
// accumulator, and the consistency a Registry snapshot promises is
// per-cell (no torn values, no going backwards) — not a cross-instrument
// cut. The lint `concurrency` rule allowlists <atomic> for exactly this
// header and obs/trace_ring.h; everything else in obs stays lock- and
// atomic-free.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace tiamat::obs {

/// Monotone u64 cell; relaxed everywhere. Copy = relaxed load (snapshots).
class AtomicU64 {
 public:
  constexpr AtomicU64(std::uint64_t v = 0) noexcept : v_(v) {}  // NOLINT
  AtomicU64(const AtomicU64& o) noexcept
      : v_(o.v_.load(std::memory_order_relaxed)) {}
  AtomicU64& operator=(const AtomicU64& o) noexcept {
    v_.store(o.v_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
    return *this;
  }

  void add(std::uint64_t n) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t fetch_add(std::uint64_t n) noexcept {
    return v_.fetch_add(n, std::memory_order_relaxed);
  }
  void store(std::uint64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  std::uint64_t load() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_;
};

/// Double cell: set/load are relaxed stores/loads, add and max are CAS
/// loops. Single-threaded the CAS never retries, so the arithmetic (and
/// the serialized bytes) match the plain `double` it replaces.
class AtomicF64 {
 public:
  constexpr AtomicF64(double v = 0.0) noexcept : v_(v) {}  // NOLINT
  AtomicF64(const AtomicF64& o) noexcept
      : v_(o.v_.load(std::memory_order_relaxed)) {}
  AtomicF64& operator=(const AtomicF64& o) noexcept {
    v_.store(o.v_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
    return *this;
  }

  void store(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  double load() const noexcept { return v_.load(std::memory_order_relaxed); }
  void add(double d) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
    }
  }
  /// Raises the cell to `v` if larger (sketch max tracking).
  void max_with(double v) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (cur < v && !v_.compare_exchange_weak(cur, v,
                                                std::memory_order_relaxed,
                                                std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<double> v_;
};

/// Index of the calling thread's stripe. Derived from the address of a
/// thread_local anchor (unique per live thread) — no <thread> needed, and
/// the value is stable for the thread's lifetime.
inline std::size_t thread_stripe(std::size_t stripes) noexcept {
  static thread_local const char anchor = 0;
  auto h = reinterpret_cast<std::uintptr_t>(&anchor);
  h ^= h >> 17;  // TLS blocks are aligned; fold high entropy into low bits
  h ^= h >> 7;
  return static_cast<std::size_t>(h) % stripes;
}

/// Striped monotone adder: writers on different threads land on different
/// cache lines (with high probability) and never contend; value() sums.
class StripedU64 {
 public:
  static constexpr std::size_t kStripes = 8;

  StripedU64() noexcept = default;

  void add(std::uint64_t n) noexcept {
    cells_[thread_stripe(kStripes)].v.add(n);
  }
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load();
    return total;
  }

 private:
  // 64 is the destructive-interference size everywhere this builds; the
  // std:: constant is avoided because gcc warns it is ABI-unstable.
  static constexpr std::size_t kLine = 64;
  struct alignas(kLine) Cell {
    AtomicU64 v;
  };
  Cell cells_[kStripes] = {};
};

/// QuantileSketch bucket storage: a two-level table over the bounded index
/// space of QuantileSketch::bucket_of (64 octave groups x 32 sub-buckets;
/// real indices never exceed ~1888 because values clamp at 2^62). Groups
/// are 256-byte blocks CAS-installed on first touch, so an idle sketch
/// costs one pointer array and a hot one stays within a few cache lines —
/// the same "pay for occupied buckets" footprint the map had.
class SketchCells {
 public:
  static constexpr std::uint32_t kSubBits = 5;
  static constexpr std::uint32_t kSub = 1u << kSubBits;
  static constexpr std::uint32_t kGroups = 64;
  static constexpr std::uint32_t kCells = kGroups << kSubBits;

  SketchCells() noexcept : groups_{} {}
  ~SketchCells() { clear(); }
  SketchCells(const SketchCells& o) : groups_{} { add_all(o); }
  SketchCells& operator=(const SketchCells& o) {
    if (this != &o) {
      clear();
      add_all(o);
    }
    return *this;
  }

  void add(std::uint32_t index, std::uint64_t n = 1) noexcept {
    if (index >= kCells) index = kCells - 1;  // malformed restore() input
    ensure(index >> kSubBits)->cells[index & (kSub - 1)].add(n);
  }

  std::uint64_t get(std::uint32_t index) const noexcept {
    if (index >= kCells) index = kCells - 1;
    const Group* g =
        groups_[index >> kSubBits].load(std::memory_order_acquire);
    return g == nullptr ? 0 : g->cells[index & (kSub - 1)].load();
  }

  /// Visits every occupied cell as fn(index, count), ascending index order
  /// (the determinism contract snapshots rely on).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::uint32_t gi = 0; gi < kGroups; ++gi) {
      const Group* g = groups_[gi].load(std::memory_order_acquire);
      if (g == nullptr) continue;
      for (std::uint32_t si = 0; si < kSub; ++si) {
        const std::uint64_t n = g->cells[si].load();
        if (n != 0) fn((gi << kSubBits) | si, n);
      }
    }
  }

  void clear() noexcept {
    for (auto& slot : groups_) {
      delete slot.load(std::memory_order_relaxed);
      slot.store(nullptr, std::memory_order_relaxed);
    }
  }

 private:
  struct Group {
    AtomicU64 cells[kSub] = {};
  };

  Group* ensure(std::uint32_t gi) noexcept {
    Group* g = groups_[gi].load(std::memory_order_acquire);
    if (g != nullptr) return g;
    auto* fresh = new Group();
    if (groups_[gi].compare_exchange_strong(g, fresh,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
      return fresh;
    }
    delete fresh;  // another writer won the install race
    return g;
  }

  void add_all(const SketchCells& o) {
    o.for_each([this](std::uint32_t index, std::uint64_t n) {
      add(index, n);
    });
  }

  std::atomic<Group*> groups_[kGroups];
};

}  // namespace tiamat::obs
