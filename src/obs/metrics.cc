#include "obs/metrics.h"

#include <algorithm>

namespace tiamat::obs {

// ---- Histogram --------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_.assign(bounds_.size() + 1, AtomicU64{});
}

void Histogram::observe(double v) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  counts_[static_cast<std::size_t>(it - bounds_.begin())].add(1);
  sum_.add(v);
  count_.add(1);
}

double Histogram::percentile(double p) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t n = counts_[i].load();
    if (n == 0) continue;
    const double lo_edge = i == 0 ? 0.0 : bounds_[i - 1];
    const double hi_edge = i < bounds_.size() ? bounds_[i]
                                              // Overflow bucket: no upper
                                              // bound; report its lower edge.
                                              : lo_edge;
    const std::uint64_t next = seen + n;
    if (static_cast<double>(next) >= target) {
      const double into =
          (target - static_cast<double>(seen)) / static_cast<double>(n);
      return lo_edge + (hi_edge - lo_edge) * std::clamp(into, 0.0, 1.0);
    }
    seen = next;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(counts_.size());
  for (const AtomicU64& c : counts_) out.push_back(c.load());
  return out;
}

void Histogram::restore(std::vector<std::uint64_t> counts, double sum,
                        std::uint64_t count) {
  if (counts.size() == counts_.size()) {
    for (std::size_t i = 0; i < counts.size(); ++i) counts_[i].store(counts[i]);
  }
  sum_.store(sum);
  count_.store(count);
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  std::size_t n) {
  std::vector<double> out;
  out.reserve(n);
  double v = start;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(v);
    v *= factor;
  }
  return out;
}

const std::vector<double>& Histogram::latency_bounds_us() {
  // 100us * 2^k, 21 buckets: top bound ~104.8s of virtual time.
  static const std::vector<double> kBounds =
      exponential_bounds(100.0, 2.0, 21);
  return kBounds;
}

// ---- Registry ---------------------------------------------------------------

namespace {

template <typename Map, typename Make>
decltype(auto) lookup(Map& map, const std::string& name, Labels labels,
                      Make make) {
  std::sort(labels.begin(), labels.end());
  auto key = std::make_pair(name, std::move(labels));
  auto it = map.find(key);
  if (it == map.end()) it = map.emplace(std::move(key), make()).first;
  return *it->second;
}

// Ordered (key, instrument) pointer list, captured under the registry lock.
// Map nodes are stable and instruments are never destroyed before the
// registry, so the pointers stay valid after the lock is released — which
// is what lets iteration callbacks run unlocked.
template <typename Map, typename T>
std::vector<std::pair<const std::pair<std::string, Labels>*, const T*>>
collect(const Map& map) {
  std::vector<std::pair<const std::pair<std::string, Labels>*, const T*>> out;
  out.reserve(map.size());
  for (const auto& [key, v] : map) out.emplace_back(&key, v.get());
  return out;
}

json::Value labels_json(const Labels& labels) {
  json::Object o;
  for (const auto& [k, v] : labels) o.emplace_back(k, json::Value(v));
  return json::Value(std::move(o));
}

bool labels_from_json(const json::Value& v, Labels& out) {
  if (!v.is_object()) return false;
  for (const auto& [k, lv] : v.as_object()) {
    if (!lv.is_string()) return false;
    out.emplace_back(k, lv.as_string());
  }
  return true;
}

}  // namespace

Counter& Registry::counter(const std::string& name, Labels labels) {
  transport::MutexLock lock(mu_);
  return lookup(counters_, name, std::move(labels),
                [] { return std::make_unique<Counter>(); });
}

Gauge& Registry::gauge(const std::string& name, Labels labels) {
  transport::MutexLock lock(mu_);
  return lookup(gauges_, name, std::move(labels),
                [] { return std::make_unique<Gauge>(); });
}

Histogram& Registry::histogram(const std::string& name, Labels labels,
                               std::vector<double> bounds) {
  transport::MutexLock lock(mu_);
  return lookup(histograms_, name, std::move(labels), [&] {
    return std::make_unique<Histogram>(
        bounds.empty() ? Histogram::latency_bounds_us() : std::move(bounds));
  });
}

QuantileSketch& Registry::sketch(const std::string& name, Labels labels) {
  transport::MutexLock lock(mu_);
  return lookup(sketches_, name, std::move(labels),
                [] { return std::make_unique<QuantileSketch>(); });
}

void Registry::for_each_counter(
    const std::function<void(const std::string&, const Labels&,
                             const Counter&)>& fn) const {
  std::vector<std::pair<const Key*, const Counter*>> items;
  {
    transport::MutexLock lock(mu_);
    items = collect<decltype(counters_), Counter>(counters_);
  }
  for (const auto& [key, c] : items) fn(key->first, key->second, *c);
}

void Registry::for_each_gauge(
    const std::function<void(const std::string&, const Labels&, const Gauge&)>&
        fn) const {
  std::vector<std::pair<const Key*, const Gauge*>> items;
  {
    transport::MutexLock lock(mu_);
    items = collect<decltype(gauges_), Gauge>(gauges_);
  }
  for (const auto& [key, g] : items) fn(key->first, key->second, *g);
}

void Registry::for_each_sketch(
    const std::function<void(const std::string&, const Labels&,
                             const QuantileSketch&)>& fn) const {
  std::vector<std::pair<const Key*, const QuantileSketch*>> items;
  {
    transport::MutexLock lock(mu_);
    items = collect<decltype(sketches_), QuantileSketch>(sketches_);
  }
  for (const auto& [key, s] : items) fn(key->first, key->second, *s);
}

json::Value Registry::snapshot() const {
  std::vector<std::pair<const Key*, const Counter*>> counter_items;
  std::vector<std::pair<const Key*, const Gauge*>> gauge_items;
  std::vector<std::pair<const Key*, const Histogram*>> histogram_items;
  std::vector<std::pair<const Key*, const QuantileSketch*>> sketch_items;
  {
    transport::MutexLock lock(mu_);
    counter_items = collect<decltype(counters_), Counter>(counters_);
    gauge_items = collect<decltype(gauges_), Gauge>(gauges_);
    histogram_items = collect<decltype(histograms_), Histogram>(histograms_);
    sketch_items = collect<decltype(sketches_), QuantileSketch>(sketches_);
  }
  json::Array counters;
  for (const auto& [key, c] : counter_items) {
    json::Object e;
    e.emplace_back("name", json::Value(key->first));
    e.emplace_back("labels", labels_json(key->second));
    e.emplace_back("value", json::Value(c->value()));
    counters.emplace_back(std::move(e));
  }
  json::Array gauges;
  for (const auto& [key, g] : gauge_items) {
    json::Object e;
    e.emplace_back("name", json::Value(key->first));
    e.emplace_back("labels", labels_json(key->second));
    e.emplace_back("value", json::Value(g->value()));
    gauges.emplace_back(std::move(e));
  }
  json::Array histograms;
  for (const auto& [key, h] : histogram_items) {
    json::Object e;
    e.emplace_back("name", json::Value(key->first));
    e.emplace_back("labels", labels_json(key->second));
    json::Array bounds;
    for (double b : h->bounds()) bounds.emplace_back(b);
    e.emplace_back("bounds", json::Value(std::move(bounds)));
    json::Array counts;
    for (std::uint64_t c : h->bucket_counts()) counts.emplace_back(c);
    e.emplace_back("counts", json::Value(std::move(counts)));
    e.emplace_back("count", json::Value(h->count()));
    e.emplace_back("sum", json::Value(h->sum()));
    e.emplace_back("mean", json::Value(h->mean()));
    e.emplace_back("p50", json::Value(h->percentile(50)));
    e.emplace_back("p95", json::Value(h->percentile(95)));
    e.emplace_back("p99", json::Value(h->percentile(99)));
    histograms.emplace_back(std::move(e));
  }
  json::Array sketches;
  for (const auto& [key, s] : sketch_items) {
    json::Object e;
    e.emplace_back("name", json::Value(key->first));
    e.emplace_back("labels", labels_json(key->second));
    json::Array buckets;
    for (const auto& [index, n] : s->buckets()) {
      json::Array pair;
      pair.emplace_back(static_cast<std::int64_t>(index));
      pair.emplace_back(n);
      buckets.emplace_back(std::move(pair));
    }
    e.emplace_back("buckets", json::Value(std::move(buckets)));
    e.emplace_back("count", json::Value(s->count()));
    e.emplace_back("sum", json::Value(s->sum()));
    e.emplace_back("mean", json::Value(s->mean()));
    e.emplace_back("p50", json::Value(s->p50()));
    e.emplace_back("p90", json::Value(s->p90()));
    e.emplace_back("p99", json::Value(s->p99()));
    e.emplace_back("max", json::Value(s->max()));
    sketches.emplace_back(std::move(e));
  }
  json::Object doc;
  doc.emplace_back("counters", json::Value(std::move(counters)));
  doc.emplace_back("gauges", json::Value(std::move(gauges)));
  doc.emplace_back("histograms", json::Value(std::move(histograms)));
  doc.emplace_back("sketches", json::Value(std::move(sketches)));
  return json::Value(std::move(doc));
}

std::string Registry::snapshot_json(int indent) const {
  return snapshot().dump(indent);
}

std::size_t Registry::size() const {
  transport::MutexLock lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size() +
         sketches_.size();
}

bool Registry::load(const json::Value& doc) {
  if (!doc.is_object()) return false;

  auto each = [&](const char* section, auto&& fn) {
    const json::Value* arr = doc.find(section);
    if (arr == nullptr || !arr->is_array()) return false;
    for (const json::Value& e : arr->as_array()) {
      const json::Value* name = e.find("name");
      const json::Value* labels = e.find("labels");
      if (name == nullptr || !name->is_string() || labels == nullptr) {
        return false;
      }
      Labels l;
      if (!labels_from_json(*labels, l)) return false;
      if (!fn(e, name->as_string(), std::move(l))) return false;
    }
    return true;
  };

  bool ok = each("counters", [&](const json::Value& e, const std::string& name,
                                 Labels l) {
    const json::Value* v = e.find("value");
    if (v == nullptr || !v->is_number()) return false;
    counter(name, std::move(l)).add(static_cast<std::uint64_t>(v->as_int()));
    return true;
  });
  ok = ok && each("gauges", [&](const json::Value& e, const std::string& name,
                                Labels l) {
    const json::Value* v = e.find("value");
    if (v == nullptr || !v->is_number()) return false;
    gauge(name, std::move(l)).set(v->as_double());
    return true;
  });
  ok = ok && each("histograms", [&](const json::Value& e,
                                    const std::string& name, Labels l) {
    const json::Value* bounds = e.find("bounds");
    const json::Value* counts = e.find("counts");
    const json::Value* count = e.find("count");
    const json::Value* sum = e.find("sum");
    if (bounds == nullptr || !bounds->is_array() || counts == nullptr ||
        !counts->is_array() || count == nullptr || !count->is_number() ||
        sum == nullptr || !sum->is_number()) {
      return false;
    }
    std::vector<double> b;
    for (const json::Value& x : bounds->as_array()) {
      if (!x.is_number()) return false;
      b.push_back(x.as_double());
    }
    std::vector<std::uint64_t> c;
    for (const json::Value& x : counts->as_array()) {
      if (!x.is_number()) return false;
      c.push_back(static_cast<std::uint64_t>(x.as_int()));
    }
    histogram(name, std::move(l), std::move(b))
        .restore(std::move(c), sum->as_double(),
                 static_cast<std::uint64_t>(count->as_int()));
    return true;
  });
  // Sketches are optional so pre-sketch snapshots still load (the schema
  // grows without invalidating committed BENCH_*.json files).
  if (doc.find("sketches") != nullptr) {
    ok = ok && each("sketches", [&](const json::Value& e,
                                    const std::string& name, Labels l) {
      const json::Value* buckets = e.find("buckets");
      const json::Value* count = e.find("count");
      const json::Value* sum = e.find("sum");
      const json::Value* max = e.find("max");
      if (buckets == nullptr || !buckets->is_array() || count == nullptr ||
          !count->is_number() || sum == nullptr || !sum->is_number() ||
          max == nullptr || !max->is_number()) {
        return false;
      }
      QuantileSketch::Buckets b;
      for (const json::Value& pair : buckets->as_array()) {
        if (!pair.is_array() || pair.as_array().size() != 2 ||
            !pair.as_array()[0].is_number() ||
            !pair.as_array()[1].is_number()) {
          return false;
        }
        b.emplace(static_cast<std::uint32_t>(pair.as_array()[0].as_int()),
                  static_cast<std::uint64_t>(pair.as_array()[1].as_int()));
      }
      sketch(name, std::move(l))
          .restore(std::move(b), sum->as_double(),
                   static_cast<std::uint64_t>(count->as_int()),
                   max->as_double());
      return true;
    });
  }
  return ok;
}

}  // namespace tiamat::obs
