#include "obs/quantile.h"

#include <bit>
#include <cmath>
#include <utility>

namespace tiamat::obs {

namespace {

constexpr std::uint64_t kSub = std::uint64_t{1} << QuantileSketch::kSubBits;

// Values at or beyond 2^62 all land in one terminal bucket; virtual-time
// latencies are microseconds, so this is ~146k years of headroom.
constexpr double kValueCap = 4.6e18;

}  // namespace

std::uint32_t QuantileSketch::bucket_of(double v) {
  if (!(v > 0.0)) return 0;  // negatives, zero and NaN clamp to bucket 0
  const auto x = static_cast<std::uint64_t>(v >= kValueCap ? kValueCap : v);
  if (x < kSub) return static_cast<std::uint32_t>(x);
  const int msb = 63 - std::countl_zero(x);
  const int shift = msb - kSubBits;
  const auto sub = static_cast<std::uint32_t>((x >> shift) & (kSub - 1));
  return (static_cast<std::uint32_t>(msb - kSubBits + 1) << kSubBits) | sub;
}

double QuantileSketch::upper_edge(std::uint32_t index) {
  const std::uint32_t group = index >> kSubBits;
  const std::uint64_t sub = index & (kSub - 1);
  if (group == 0) return static_cast<double>(sub);  // exact linear region
  const int shift = static_cast<int>(group) - 1;
  return static_cast<double>(((kSub + sub + 1) << shift) - 1);
}

void QuantileSketch::observe(double v) {
  // Bucket cell first, total count last: a concurrent reader that saw the
  // incremented count may still miss the cell, but one that sums the cells
  // always covers every counted sample up to its earlier count read.
  cells_.add(bucket_of(v));
  const double clamped = v < 0.0 ? 0.0 : v;
  sum_.add(clamped);
  max_.max_with(clamped);
  count_.add(1);
}

double QuantileSketch::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  const double clamped = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  auto rank = static_cast<std::uint64_t>(
      std::ceil(clamped * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  double result = -1.0;
  cells_.for_each([&](std::uint32_t index, std::uint64_t n) {
    if (result >= 0.0) return;
    seen += n;
    if (seen >= rank) {
      // The top occupied bucket's edge may overshoot the true maximum; the
      // exact max is tracked, so report it instead.
      const double edge = upper_edge(index);
      result = seen == total && edge > max() ? max() : edge;
    }
  });
  return result >= 0.0 ? result : max();
}

void QuantileSketch::merge(const QuantileSketch& o) {
  o.cells_.for_each([this](std::uint32_t index, std::uint64_t n) {
    cells_.add(index, n);
  });
  sum_.add(o.sum());
  count_.add(o.count());
  max_.max_with(o.max());
}

QuantileSketch QuantileSketch::delta_since(const QuantileSketch& prev) const {
  QuantileSketch out;
  if (prev.count() > count()) return out;
  std::uint32_t top = 0;
  bool any = false;
  cells_.for_each([&](std::uint32_t index, std::uint64_t n) {
    const std::uint64_t before = prev.cells_.get(index);
    if (n > before) {
      out.cells_.add(index, n - before);
      top = index;
      any = true;
    }
  });
  out.count_.store(count() - prev.count());
  out.sum_.store(sum() - prev.sum());
  // The window's true max is unknown (only cumulative max is tracked);
  // the top occupied bucket's edge is the tightest deterministic bound.
  double wmax = any ? upper_edge(top) : 0.0;
  if (wmax > max()) wmax = max();
  out.max_.store(wmax);
  return out;
}

QuantileSketch::Buckets QuantileSketch::buckets() const {
  Buckets out;
  cells_.for_each([&](std::uint32_t index, std::uint64_t n) {
    out.emplace_hint(out.end(), index, n);
  });
  return out;
}

void QuantileSketch::restore(Buckets buckets, double sum, std::uint64_t count,
                             double max) {
  cells_.clear();
  for (const auto& [index, n] : buckets) cells_.add(index, n);
  sum_.store(sum);
  count_.store(count);
  max_.store(max);
}

}  // namespace tiamat::obs
