#include "obs/quantile.h"

#include <bit>
#include <cmath>

namespace tiamat::obs {

namespace {

constexpr std::uint64_t kSub = std::uint64_t{1} << QuantileSketch::kSubBits;

// Values at or beyond 2^62 all land in one terminal bucket; virtual-time
// latencies are microseconds, so this is ~146k years of headroom.
constexpr double kValueCap = 4.6e18;

}  // namespace

std::uint32_t QuantileSketch::bucket_of(double v) {
  if (!(v > 0.0)) return 0;  // negatives, zero and NaN clamp to bucket 0
  const auto x = static_cast<std::uint64_t>(v >= kValueCap ? kValueCap : v);
  if (x < kSub) return static_cast<std::uint32_t>(x);
  const int msb = 63 - std::countl_zero(x);
  const int shift = msb - kSubBits;
  const auto sub = static_cast<std::uint32_t>((x >> shift) & (kSub - 1));
  return (static_cast<std::uint32_t>(msb - kSubBits + 1) << kSubBits) | sub;
}

double QuantileSketch::upper_edge(std::uint32_t index) {
  const std::uint32_t group = index >> kSubBits;
  const std::uint64_t sub = index & (kSub - 1);
  if (group == 0) return static_cast<double>(sub);  // exact linear region
  const int shift = static_cast<int>(group) - 1;
  return static_cast<double>(((kSub + sub + 1) << shift) - 1);
}

void QuantileSketch::observe(double v) {
  ++buckets_[bucket_of(v)];
  const double clamped = v < 0.0 ? 0.0 : v;
  sum_ += clamped;
  ++count_;
  if (clamped > max_) max_ = clamped;
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return 0.0;
  const double clamped = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  auto rank = static_cast<std::uint64_t>(
      std::ceil(clamped * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (const auto& [index, n] : buckets_) {
    seen += n;
    if (seen >= rank) {
      // The top occupied bucket's edge may overshoot the true maximum; the
      // exact max is tracked, so report it instead.
      const double edge = upper_edge(index);
      return seen == count_ && edge > max_ ? max_ : edge;
    }
  }
  return max_;  // unreachable when bucket counts sum to count_
}

void QuantileSketch::merge(const QuantileSketch& o) {
  for (const auto& [index, n] : o.buckets_) buckets_[index] += n;
  sum_ += o.sum_;
  count_ += o.count_;
  if (o.max_ > max_) max_ = o.max_;
}

QuantileSketch QuantileSketch::delta_since(const QuantileSketch& prev) const {
  QuantileSketch out;
  if (prev.count_ > count_) return out;
  for (const auto& [index, n] : buckets_) {
    auto it = prev.buckets_.find(index);
    const std::uint64_t before = it == prev.buckets_.end() ? 0 : it->second;
    if (n > before) out.buckets_.emplace(index, n - before);
  }
  out.count_ = count_ - prev.count_;
  out.sum_ = sum_ - prev.sum_;
  // The window's true max is unknown (only cumulative max is tracked);
  // the top occupied bucket's edge is the tightest deterministic bound.
  out.max_ = out.buckets_.empty()
                 ? 0.0
                 : upper_edge(out.buckets_.rbegin()->first);
  if (out.max_ > max_) out.max_ = max_;
  return out;
}

void QuantileSketch::restore(Buckets buckets, double sum, std::uint64_t count,
                             double max) {
  buckets_ = std::move(buckets);
  sum_ = sum;
  count_ = count;
  max_ = max;
}

}  // namespace tiamat::obs
