#include "obs/chrome_trace.h"

#include <algorithm>
#include <map>
#include <string>
#include <utility>

namespace tiamat::obs {

namespace {

constexpr std::int64_t kPid = 1;

json::Value base_event(const char* ph, const std::string& name,
                       const char* cat, transport::Time ts, transport::NodeId tid) {
  json::Object o;
  o.emplace_back("name", json::Value(name));
  o.emplace_back("cat", json::Value(cat));
  o.emplace_back("ph", json::Value(ph));
  o.emplace_back("ts", json::Value(static_cast<std::int64_t>(ts)));
  o.emplace_back("pid", json::Value(kPid));
  o.emplace_back("tid", json::Value(static_cast<std::int64_t>(tid)));
  return json::Value(std::move(o));
}

/// Emits one flow-start/flow-finish pair binding `from` to `to`.
void emit_flow(json::Array& events, const std::string& name,
               const TraceEvent& from, const TraceEvent& to,
               std::int64_t& next_flow_id) {
  const std::int64_t id = next_flow_id++;
  json::Value s = base_event("s", name, "flow", from.at, from.node);
  s.set("id", json::Value(id));
  events.push_back(std::move(s));
  json::Value f = base_event("f", name, "flow", to.at, to.node);
  f.set("id", json::Value(id));
  f.set("bp", json::Value("e"));  // bind to the enclosing slice
  events.push_back(std::move(f));
}

}  // namespace

json::Value to_chrome_trace(const std::vector<OpTimeline>& timelines) {
  json::Array events;
  std::int64_t next_flow_id = 1;

  // Track metadata: every node that appears anywhere, named once.
  std::map<transport::NodeId, bool> nodes;
  for (const OpTimeline& t : timelines) {
    for (transport::NodeId n : t.nodes) nodes[n] = true;
  }
  for (const auto& [n, unused] : nodes) {
    (void)unused;
    json::Object o;
    o.emplace_back("name", json::Value("thread_name"));
    o.emplace_back("ph", json::Value("M"));
    o.emplace_back("pid", json::Value(kPid));
    o.emplace_back("tid", json::Value(static_cast<std::int64_t>(n)));
    json::Object args;
    args.emplace_back("name",
                      json::Value("instance " + std::to_string(n)));
    o.emplace_back("args", json::Value(std::move(args)));
    events.emplace_back(std::move(o));
  }
  {
    json::Object o;
    o.emplace_back("name", json::Value("process_name"));
    o.emplace_back("ph", json::Value("M"));
    o.emplace_back("pid", json::Value(kPid));
    o.emplace_back("tid", json::Value(std::int64_t{0}));
    json::Object args;
    args.emplace_back("name", json::Value("tiamat sim"));
    o.emplace_back("args", json::Value(std::move(args)));
    events.emplace_back(std::move(o));
  }

  for (const OpTimeline& t : timelines) {
    const std::string op_name = std::string(t.kind_name()) + " " +
                                std::to_string(t.key.origin) + ":" +
                                std::to_string(t.key.op_id);

    // Per-node slice: first..last event this node recorded for the op.
    std::map<transport::NodeId, std::pair<transport::Time, transport::Time>> spans;
    for (const TraceEvent& e : t.events) {
      auto it = spans.find(e.node);
      if (it == spans.end()) {
        spans.emplace(e.node, std::make_pair(e.at, e.at));
      } else {
        it->second.second = std::max(it->second.second, e.at);
      }
    }
    for (const auto& [node, span] : spans) {
      json::Value x = base_event("X", op_name, "op", span.first, node);
      x.set("dur", json::Value(span.second - span.first));
      json::Object args;
      args.emplace_back("outcome", json::Value(to_string(t.outcome)));
      x.set("args", json::Value(std::move(args)));
      events.push_back(std::move(x));
    }

    // Instant markers for every recorded step.
    for (const TraceEvent& e : t.events) {
      json::Value i = base_event("i", to_string(e.kind), "event", e.at, e.node);
      i.set("s", json::Value("t"));  // thread-scoped instant
      events.push_back(std::move(i));
    }

    // Cross-node flow edges. For each edge we pair the first qualifying
    // source with the first qualifying destination after it; events are
    // time-ordered, so a linear scan per peer suffices.
    auto first_at_node_after = [&](EventKind kind, transport::NodeId node,
                                   transport::Time at) -> const TraceEvent* {
      for (const TraceEvent& e : t.events) {
        if (e.kind == kind && e.node == node && e.at >= at) return &e;
      }
      return nullptr;
    };
    for (const TraceEvent& e : t.events) {
      if (e.node != t.key.origin) continue;
      switch (e.kind) {
        case EventKind::kPeerRequest: {
          if (const TraceEvent* d = first_at_node_after(EventKind::kServeStart,
                                                        e.peer, e.at)) {
            emit_flow(events, "fan-out", e, *d, next_flow_id);
          }
          break;
        }
        case EventKind::kAccept: {
          if (e.peer == t.key.origin) break;  // local hit: no wire edge
          // Winning reply: serve_match at the source precedes the accept.
          const TraceEvent* match = nullptr;
          for (const TraceEvent& m : t.events) {
            if (m.kind == EventKind::kServeMatch && m.node == e.peer &&
                m.at <= e.at) {
              match = &m;  // latest qualifying match
            }
          }
          if (match != nullptr) {
            emit_flow(events, "accept", *match, e, next_flow_id);
          }
          break;
        }
        case EventKind::kConfirm: {
          if (const TraceEvent* d = first_at_node_after(
                  EventKind::kServeConfirm, e.peer, e.at)) {
            emit_flow(events, "confirm", e, *d, next_flow_id);
          }
          break;
        }
        case EventKind::kCancel:
        case EventKind::kReinsert: {
          if (const TraceEvent* d = first_at_node_after(
                  EventKind::kServeReinsert, e.peer, e.at)) {
            emit_flow(events, "reinsert", e, *d, next_flow_id);
          }
          break;
        }
        default:
          break;
      }
    }
  }

  json::Object doc;
  doc.emplace_back("traceEvents", json::Value(std::move(events)));
  doc.emplace_back("displayTimeUnit", json::Value("ms"));
  return json::Value(std::move(doc));
}

}  // namespace tiamat::obs
