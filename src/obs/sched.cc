#include "obs/sched.h"

#include <string>

namespace tiamat::obs {

void SchedExporter::update() {
  using SchedStats = transport::LoopbackTransport::SchedStats;
  using WorkerSched = transport::LoopbackTransport::WorkerSched;

  SchedStats cur = transport_.sched_stats();
  for (std::size_t i = 0; i < cur.workers.size(); ++i) {
    const WorkerSched& w = cur.workers[i];
    const WorkerSched prev =
        i < prev_.workers.size() ? prev_.workers[i] : WorkerSched{};
    const Labels labels{{"worker", std::to_string(i)}};

    const std::uint64_t tasks = w.tasks - prev.tasks;
    registry_.counter("transport.sched.tasks", labels).add(tasks);
    registry_.counter("transport.sched.tombstones", labels)
        .add(w.tombstones - prev.tombstones);
    registry_.counter("transport.sched.cancels", labels)
        .add(w.cancels - prev.cancels);

    registry_.gauge("transport.sched.queue_depth", labels)
        .set(static_cast<double>(w.queue_depth));
    registry_.gauge("transport.sched.queue_depth_max", labels)
        .set(static_cast<double>(w.queue_depth_max));
    registry_.gauge("transport.sched.strand_lag_max_us", labels)
        .set(static_cast<double>(w.lag_us_max));

    // Window shapes: lag averaged over the tasks of this window, busy time
    // as a fraction of the wall time this window spanned.
    const double lag_avg =
        tasks == 0 ? 0.0
                   : static_cast<double>(w.lag_us_sum - prev.lag_us_sum) /
                         static_cast<double>(tasks);
    registry_.gauge("transport.sched.strand_lag_avg_us", labels).set(lag_avg);

    const auto wall = static_cast<double>(cur.uptime_us - prev_.uptime_us);
    double util = wall <= 0.0 ? 0.0
                              : static_cast<double>(w.busy_us - prev.busy_us) /
                                    wall;
    if (util < 0.0) util = 0.0;
    if (util > 1.0) util = 1.0;
    registry_.gauge("transport.sched.utilization", labels).set(util);
  }
  registry_.counter("transport.sched.lock_wait_us")
      .add(cur.lock_wait_us - prev_.lock_wait_us);
  prev_ = std::move(cur);
}

}  // namespace tiamat::obs
