// Continuous telemetry: a sim-clock-driven time-series recorder.
//
// End-of-run registry snapshots say *where* a run ended up; scale and chaos
// work needs to see *how it got there* — queue depths building, waiter
// backlogs draining after a partition heals, memory growing with churn. The
// TimeSeriesRecorder samples registered metric registries (and derived
// health probes) at a fixed sim-time interval, keeping each series in a
// bounded ring with rollup windows so memory never grows with run length.
//
// Design constraints, in order:
//   1. Determinism. Sampling is driven entirely by the sim event queue
//      (never a wall clock); sources are walked in registration order and
//      instruments in the registry's lexicographic order, so two seeded
//      runs emit byte-identical series JSON.
//   2. Bounded memory. Each series keeps at most `capacity` raw points;
//      evicted points fold into rollup windows of `rollup_width` samples
//      (min/max/sum/n), themselves capped at `rollup_capacity` with an
//      explicit dropped count — never a silent truncation.
//   3. ~Zero cost when absent. The recorder is opt-in and external to the
//      instrumented code: nothing in core/space/net pays anything unless a
//      recorder is constructed and started.
//
// Health probes ride the same tick: a probe is a named sampler with a
// threshold; each sample is recorded as its own series and every breach is
// counted and reported through the probe's (and the recorder's) breach
// hook — the oracle surface the chaos harness will assert on.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/quantile.h"
#include "transport/types.h"
#include "transport/timer.h"

namespace tiamat::obs {

struct SeriesOptions {
  /// Sim-time distance between samples.
  transport::Duration interval = 250 * transport::kMillisecond;
  /// Raw points kept per series before eviction into rollups.
  std::size_t capacity = 64;
  /// Evicted points folded per rollup window.
  std::size_t rollup_width = 8;
  /// Rollup windows kept per series; older ones are dropped (and counted).
  std::size_t rollup_capacity = 64;
};

/// A derived health signal evaluated every sample tick. A breach is a
/// sampled value >= threshold; `on_breach` (optional) lets the owner emit a
/// trace event / bump a counter at the breach site.
struct Probe {
  std::string name;
  double threshold = 0.0;
  std::function<double()> value;
  std::function<void(double value, transport::Time at)> on_breach;
};

class TimeSeriesRecorder {
 public:
  TimeSeriesRecorder(transport::TimerService& queue, SeriesOptions opts = {});
  ~TimeSeriesRecorder();

  TimeSeriesRecorder(const TimeSeriesRecorder&) = delete;
  TimeSeriesRecorder& operator=(const TimeSeriesRecorder&) = delete;

  /// Registers a source registry under `label` (one per instance, or the
  /// bench-global registry). `refresh`, when given, runs before each sample
  /// so the source can update derived gauges (e.g. space memory). The
  /// registry must outlive the recorder or be deregistered by stop() before
  /// destruction — the recorder only touches it inside a tick.
  void add_source(std::string label, const Registry* registry,
                  std::function<void()> refresh = nullptr);

  /// Attaches a probe to the source registered under `label` (sources
  /// without probes are fine; probes for unknown labels get their own
  /// source entry).
  void add_probe(const std::string& label, Probe p);

  /// Invoked for every breach, after the probe's own on_breach.
  using BreachHandler = std::function<void(
      const std::string& source, const std::string& probe, double value,
      transport::Time at)>;
  void set_breach_handler(BreachHandler h) { on_breach_ = std::move(h); }

  /// Schedules the periodic tick (first sample one interval from now).
  ///
  /// Strand contract (concurrent backends): the recorder is confined to the
  /// strand its TimerService belongs to. start()/stop() — like every other
  /// mutating call — must run on that strand (post() there), because the
  /// tick re-arms by writing the same timer handle start() assigns: an
  /// off-strand start() races with its own first tick. On the sim this is
  /// moot (one thread).
  void start();
  /// Cancels the pending tick; sampling stops until start() again.
  void stop();
  bool running() const { return timer_ != transport::kInvalidEvent; }

  /// Takes one sample immediately (the timer path calls this too).
  void sample_now();

  std::uint64_t samples() const { return samples_; }
  std::uint64_t breaches() const { return breaches_; }

  /// Full series document (see file comment for the shape); deterministic
  /// byte-for-byte for seeded runs.
  json::Value to_json() const;

  /// Largest number of raw points currently held by any one series plus its
  /// rollup windows — the figure the memory-bound tests assert on.
  std::size_t max_series_points() const;

  const SeriesOptions& options() const { return opts_; }

 private:
  struct Point {
    std::uint64_t index;
    double value;
  };
  struct Rollup {
    std::uint64_t from;
    std::uint64_t to;
    double min;
    double max;
    double sum;
    std::uint64_t n;
  };
  struct SeriesData {
    bool integral = false;  ///< emit points as ints (counter values)
    std::deque<Point> points;
    std::deque<Rollup> rollups;
    std::uint64_t dropped = 0;      ///< rollup windows evicted entirely
    QuantileSketch prev;            ///< sketch series: last tick's snapshot
  };
  /// (kind, name, labels): ordered so emission order is deterministic.
  using SeriesKey = std::tuple<std::string, std::string, Labels>;
  struct ProbeState {
    Probe probe;
    SeriesData data;
    std::uint64_t breaches = 0;
  };
  struct Source {
    std::string label;
    const Registry* registry = nullptr;
    std::function<void()> refresh;
    std::map<SeriesKey, SeriesData> series;
    std::vector<ProbeState> probes;  ///< registration order
  };

  void append(SeriesData& d, std::uint64_t index, double v);
  void tick();
  Source& source_of(const std::string& label);

  static json::Value series_json(const SeriesData& d);

  transport::TimerService& queue_;
  SeriesOptions opts_;
  std::vector<Source> sources_;  ///< registration order
  std::deque<std::pair<std::uint64_t, transport::Time>> ticks_;
  std::uint64_t ticks_dropped_ = 0;
  std::uint64_t samples_ = 0;
  std::uint64_t breaches_ = 0;
  transport::EventId timer_ = transport::kInvalidEvent;
  BreachHandler on_breach_;
};

}  // namespace tiamat::obs
